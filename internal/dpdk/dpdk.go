// Package dpdk models the kernel-bypass packet framework and NIC driver
// underneath the NFs, so BOLT can analyse the software stack at two
// levels (paper §3.5): NF-only (the framework contributes nothing) and
// full stack (driver RX, mbuf management, and TX/drop costs included).
//
// The model follows the structure the verified-NAT-stack work [paper
// ref 34] exploited: the subset of the framework a simple NF exercises
// has simple control flow — per packet the driver reads an RX
// descriptor, takes an mbuf from the pool, hands the buffer to the NF,
// and either writes a TX descriptor (plus the tail-register doorbell) or
// recycles the mbuf. Device registers live in a dedicated MMIO address
// range with no cacheable locality, so both hardware models charge them
// as uncached accesses.
package dpdk

import (
	"fmt"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

// AnalysisLevel selects how much of the stack a contract covers.
type AnalysisLevel int

const (
	// NFOnly analyses just the NF logic atop the framework (§3.5 level 1).
	NFOnly AnalysisLevel = iota
	// FullStack includes the framework and driver costs (§3.5 level 2).
	FullStack
)

// String names the level.
func (l AnalysisLevel) String() string {
	if l == FullStack {
		return "full-stack"
	}
	return "nf-only"
}

// MMIO addresses of the modelled NIC registers (outside any cache-warm
// region).
const (
	mmioBase   = 0x8000_0000
	regRDT     = mmioBase + 0x2818 // RX descriptor tail
	regTDT     = mmioBase + 0x6018 // TX descriptor tail
	descRing   = 0x0040_0000       // descriptor rings (DMA region)
	ringSize   = 512
	descBytes  = 16
	mbufBytes  = 2048
	mbufRegion = 0x0080_0000
)

// Step costs of the per-packet framework work. Constants; the driver
// subset the NFs exercise has no data-dependent loops.
var (
	rxCost = dsStep{ // poll descriptor, fetch mbuf, prefetch header
		alu: 34, branch: 6, load: 7, store: 3,
	}
	txCost = dsStep{ // write TX descriptor, bump tail doorbell
		alu: 26, branch: 4, load: 4, store: 5,
	}
	dropCost = dsStep{ // return mbuf to the pool
		alu: 12, branch: 2, load: 2, store: 2,
	}
)

type dsStep struct {
	alu, branch, load, store uint64
}

func (s dsStep) ic() uint64 { return s.alu + s.branch + s.load + s.store }
func (s dsStep) ma() uint64 { return s.load + s.store }

// Stack is one port pair's framework state: descriptor rings and an mbuf
// pool. It is charged around each packet by the production runner when
// measuring at FullStack level.
type Stack struct {
	rxHead, txHead uint64
	freeMbufs      []uint64
	inFlight       uint64
}

// NewStack builds a stack with a full mbuf pool.
func NewStack() *Stack {
	s := &Stack{}
	for i := uint64(0); i < ringSize; i++ {
		s.freeMbufs = append(s.freeMbufs, mbufRegion+i*mbufBytes)
	}
	return s
}

// ChargeRx meters the driver receive path for one packet and returns the
// mbuf address the packet landed in.
func (s *Stack) ChargeRx(env *nfir.Env) (uint64, error) {
	if len(s.freeMbufs) == 0 {
		return 0, fmt.Errorf("dpdk: mbuf pool exhausted (%d in flight)", s.inFlight)
	}
	m := env.Meter
	slot := s.rxHead % ringSize
	s.rxHead++
	mbuf := s.freeMbufs[len(s.freeMbufs)-1]
	s.freeMbufs = s.freeMbufs[:len(s.freeMbufs)-1]
	s.inFlight++

	m.Exec(perf.OpALU, rxCost.alu)
	m.Exec(perf.OpBranch, rxCost.branch)
	// Descriptor read + register poll + mbuf header touches.
	m.Load(descRing+slot*descBytes, 8, false)
	m.Load(regRDT, 4, false)
	for i := uint64(2); i < rxCost.load; i++ {
		m.Load(mbuf+i*8, 8, true)
	}
	for i := uint64(0); i < rxCost.store; i++ {
		m.Store(descRing+slot*descBytes+8, 8)
	}
	return mbuf, nil
}

// ChargeTx meters the transmit path and recycles the mbuf.
func (s *Stack) ChargeTx(env *nfir.Env, mbuf uint64) {
	m := env.Meter
	slot := s.txHead % ringSize
	s.txHead++
	m.Exec(perf.OpALU, txCost.alu)
	m.Exec(perf.OpBranch, txCost.branch)
	for i := uint64(0); i < txCost.load; i++ {
		m.Load(descRing+(ringSize+slot)*descBytes, 8, false)
	}
	for i := uint64(1); i < txCost.store; i++ {
		m.Store(descRing+(ringSize+slot)*descBytes+8, 8)
	}
	m.Store(regTDT, 4) // doorbell
	s.recycle(mbuf)
}

// ChargeDrop meters the drop path (mbuf recycle only).
func (s *Stack) ChargeDrop(env *nfir.Env, mbuf uint64) {
	m := env.Meter
	m.Exec(perf.OpALU, dropCost.alu)
	m.Exec(perf.OpBranch, dropCost.branch)
	for i := uint64(0); i < dropCost.load; i++ {
		m.Load(mbuf+i*8, 8, false)
	}
	for i := uint64(0); i < dropCost.store; i++ {
		m.Store(mbuf+i*8, 8)
	}
	s.recycle(mbuf)
}

func (s *Stack) recycle(mbuf uint64) {
	s.freeMbufs = append(s.freeMbufs, mbuf)
	s.inFlight--
}

// FreeMbufs reports the pool level (for leak tests).
func (s *Stack) FreeMbufs() int { return len(s.freeMbufs) }

// Contract terms the generator adds to every path when analysing at
// FullStack level: RX on every path, plus TX or drop by terminal action.

// RxCost is the expert contract for the receive path.
func RxCost() map[perf.Metric]expr.Poly { return stepCost(rxCost) }

// TxCost is the expert contract for the transmit path.
func TxCost() map[perf.Metric]expr.Poly { return stepCost(txCost) }

// DropCost is the expert contract for the drop path.
func DropCost() map[perf.Metric]expr.Poly { return stepCost(dropCost) }

func stepCost(s dsStep) map[perf.Metric]expr.Poly {
	// Conservative cycles: every access charged as DRAM, worst-case
	// compute latencies (same rule as dslib contracts).
	cycles := s.alu + 3*s.branch + s.ma()*201
	return map[perf.Metric]expr.Poly{
		perf.Instructions: expr.Const(s.ic()),
		perf.MemAccesses:  expr.Const(s.ma()),
		perf.Cycles:       expr.Const(cycles),
	}
}
