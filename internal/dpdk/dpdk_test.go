package dpdk

import (
	"testing"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

func newEnv() *nfir.Env {
	env := nfir.NewEnv()
	env.Meter = perf.NewMeter(nil)
	env.ResetPacket(nil, 0, 0)
	return env
}

func TestStackRxTxCycle(t *testing.T) {
	env := newEnv()
	s := NewStack()
	full := s.FreeMbufs()

	mbuf, err := s.ChargeRx(env)
	if err != nil {
		t.Fatal(err)
	}
	if s.FreeMbufs() != full-1 {
		t.Errorf("pool = %d, want %d", s.FreeMbufs(), full-1)
	}
	s.ChargeTx(env, mbuf)
	if s.FreeMbufs() != full {
		t.Errorf("pool after tx = %d, want %d (no leak)", s.FreeMbufs(), full)
	}

	mbuf, _ = s.ChargeRx(env)
	s.ChargeDrop(env, mbuf)
	if s.FreeMbufs() != full {
		t.Errorf("pool after drop = %d (leak)", s.FreeMbufs())
	}
}

func TestStackPoolExhaustion(t *testing.T) {
	env := newEnv()
	s := NewStack()
	n := s.FreeMbufs()
	for i := 0; i < n; i++ {
		if _, err := s.ChargeRx(env); err != nil {
			t.Fatalf("rx %d: %v", i, err)
		}
	}
	if _, err := s.ChargeRx(env); err == nil {
		t.Fatal("expected mbuf exhaustion")
	}
}

func TestChargesMatchContracts(t *testing.T) {
	// The metered cost of each framework step must equal its contract
	// exactly (the framework has no data-dependent paths to coalesce).
	env := newEnv()
	s := NewStack()

	before := env.Meter.Snapshot()
	mbuf, _ := s.ChargeRx(env)
	d := env.Meter.Since(before)
	if d.Instructions != RxCost()[perf.Instructions].ConstTerm() {
		t.Errorf("rx IC %d != contract %d", d.Instructions, RxCost()[perf.Instructions].ConstTerm())
	}
	if d.MemAccesses != RxCost()[perf.MemAccesses].ConstTerm() {
		t.Errorf("rx MA %d != contract %d", d.MemAccesses, RxCost()[perf.MemAccesses].ConstTerm())
	}

	before = env.Meter.Snapshot()
	s.ChargeTx(env, mbuf)
	d = env.Meter.Since(before)
	if d.Instructions != TxCost()[perf.Instructions].ConstTerm() {
		t.Errorf("tx IC %d != contract %d", d.Instructions, TxCost()[perf.Instructions].ConstTerm())
	}

	mbuf, _ = s.ChargeRx(env)
	before = env.Meter.Snapshot()
	s.ChargeDrop(env, mbuf)
	d = env.Meter.Since(before)
	if d.Instructions != DropCost()[perf.Instructions].ConstTerm() {
		t.Errorf("drop IC %d != contract %d", d.Instructions, DropCost()[perf.Instructions].ConstTerm())
	}
	if d.MemAccesses != DropCost()[perf.MemAccesses].ConstTerm() {
		t.Errorf("drop MA %d != contract %d", d.MemAccesses, DropCost()[perf.MemAccesses].ConstTerm())
	}
}

func TestCycleContractsDominateIC(t *testing.T) {
	for name, c := range map[string]map[perf.Metric]expr.Poly{
		"rx":   RxCost(),
		"tx":   TxCost(),
		"drop": DropCost(),
	} {
		if c[perf.Cycles].ConstTerm() < c[perf.Instructions].ConstTerm() {
			t.Errorf("%s: cycle bound below IC", name)
		}
	}
}

func TestAnalysisLevelString(t *testing.T) {
	if NFOnly.String() != "nf-only" || FullStack.String() != "full-stack" {
		t.Error("level names")
	}
}
