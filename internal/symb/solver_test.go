package symb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func solve(t *testing.T, constraints []Expr, domains map[string]Domain) (map[string]uint64, Result) {
	t.Helper()
	var s Solver
	return s.Solve(constraints, domains)
}

func requireSat(t *testing.T, constraints []Expr, domains map[string]Domain) map[string]uint64 {
	t.Helper()
	model, res := solve(t, constraints, domains)
	if res != Sat {
		t.Fatalf("expected Sat, got %v for %s", res, ConjString(constraints))
	}
	if !CheckModel(constraints, model) {
		t.Fatalf("model %v does not satisfy %s", model, ConjString(constraints))
	}
	return model
}

func TestSolveSimpleEquality(t *testing.T) {
	m := requireSat(t, []Expr{B(Eq, S("etherType"), C(0x0800))}, map[string]Domain{"etherType": Word})
	if m["etherType"] != 0x0800 {
		t.Errorf("etherType = %d", m["etherType"])
	}
}

func TestSolveContradiction(t *testing.T) {
	_, res := solve(t, []Expr{
		B(Eq, S("x"), C(5)),
		B(Ne, S("x"), C(5)),
	}, map[string]Domain{"x": Byte})
	if res != Unsat {
		t.Errorf("got %v, want Unsat", res)
	}
}

func TestSolveIntervalContradiction(t *testing.T) {
	_, res := solve(t, []Expr{
		B(Ult, S("x"), C(5)),
		B(Ugt, S("x"), C(10)),
	}, map[string]Domain{"x": Byte})
	if res != Unsat {
		t.Errorf("got %v, want Unsat", res)
	}
}

func TestSolveRange(t *testing.T) {
	m := requireSat(t, []Expr{
		B(Uge, S("l"), C(25)),
		B(Ule, S("l"), C(32)),
	}, map[string]Domain{"l": Byte})
	if m["l"] < 25 || m["l"] > 32 {
		t.Errorf("l = %d outside [25,32]", m["l"])
	}
}

func TestSolveSymbolEquality(t *testing.T) {
	m := requireSat(t, []Expr{
		B(Eq, S("a"), S("b")),
		B(Eq, S("b"), C(42)),
	}, map[string]Domain{"a": Byte, "b": Byte})
	if m["a"] != 42 || m["b"] != 42 {
		t.Errorf("model = %v", m)
	}
}

func TestSolveSymbolOrdering(t *testing.T) {
	m := requireSat(t, []Expr{
		B(Ult, S("a"), S("b")),
		B(Ult, S("b"), S("c")),
		B(Eq, S("c"), C(2)),
	}, map[string]Domain{"a": Byte, "b": Byte, "c": Byte})
	if !(m["a"] < m["b"] && m["b"] < m["c"] && m["c"] == 2) {
		t.Errorf("model = %v", m)
	}
	// a<b<c with c==1 is impossible for unsigned values.
	_, res := solve(t, []Expr{
		B(Ult, S("a"), S("b")),
		B(Ult, S("b"), S("c")),
		B(Eq, S("c"), C(1)),
	}, map[string]Domain{"a": Byte, "b": Byte, "c": Byte})
	if res != Unsat {
		t.Errorf("ordering chain: got %v, want Unsat", res)
	}
}

func TestSolveConjunctionFlattening(t *testing.T) {
	c := B(LAnd, B(Eq, S("x"), C(3)), B(Eq, S("y"), C(4)))
	m := requireSat(t, []Expr{c}, map[string]Domain{"x": Byte, "y": Byte})
	if m["x"] != 3 || m["y"] != 4 {
		t.Errorf("model = %v", m)
	}
}

func TestSolveTrivial(t *testing.T) {
	if _, res := solve(t, []Expr{C(1)}, nil); res != Sat {
		t.Errorf("constant true: %v", res)
	}
	if _, res := solve(t, []Expr{C(0)}, nil); res != Unsat {
		t.Errorf("constant false: %v", res)
	}
	if _, res := solve(t, nil, map[string]Domain{"x": Byte}); res != Sat {
		t.Errorf("empty constraints: %v", res)
	}
}

func TestSolveMaskedField(t *testing.T) {
	// (x & 0xF0) == 0x40 — not handled by propagation, needs search.
	m := requireSat(t, []Expr{B(Eq, B(And, S("x"), C(0xF0)), C(0x40))},
		map[string]Domain{"x": Byte})
	if m["x"]&0xF0 != 0x40 {
		t.Errorf("x = %#x", m["x"])
	}
}

func TestSolveDisequalityChain(t *testing.T) {
	// x != 0..4 in a domain [0,5] forces x == 5.
	cs := []Expr{}
	for v := uint64(0); v < 5; v++ {
		cs = append(cs, B(Ne, S("x"), C(v)))
	}
	m := requireSat(t, cs, map[string]Domain{"x": {0, 5}})
	if m["x"] != 5 {
		t.Errorf("x = %d, want 5", m["x"])
	}
	// Excluding the whole domain is UNSAT.
	cs = append(cs, B(Ne, S("x"), C(5)))
	if _, res := solve(t, cs, map[string]Domain{"x": {0, 5}}); res != Unsat {
		t.Errorf("full exclusion: %v, want Unsat", res)
	}
}

func TestSolveArithmetic(t *testing.T) {
	// x + y == 100, x == 2*y → y=33 impossible in integers? 3y=100 no.
	_, res := solve(t, []Expr{
		B(Eq, B(Add, S("x"), S("y")), C(100)),
		B(Eq, S("x"), B(Mul, C(2), S("y"))),
	}, map[string]Domain{"x": Byte, "y": Byte})
	// 3y == 100 has no integer solution; small domains are enumerated, so
	// the solver must not return Sat. Unknown is acceptable (conservative).
	if res == Sat {
		t.Errorf("3y=100: got Sat")
	}

	m := requireSat(t, []Expr{
		B(Eq, B(Add, S("x"), S("y")), C(99)),
		B(Eq, S("x"), B(Mul, C(2), S("y"))),
	}, map[string]Domain{"x": Byte, "y": Byte})
	if m["y"] != 33 || m["x"] != 66 {
		t.Errorf("model = %v", m)
	}
}

func TestSolveFullDomainSymbol(t *testing.T) {
	// A symbol with no domain entry gets the full 64-bit domain.
	m := requireSat(t, []Expr{B(Ugt, S("big"), C(1<<40))}, nil)
	if m["big"] <= 1<<40 {
		t.Errorf("big = %d", m["big"])
	}
}

func TestFeasible(t *testing.T) {
	var s Solver
	if !s.Feasible([]Expr{B(Eq, S("x"), C(1))}, map[string]Domain{"x": Byte}) {
		t.Error("satisfiable reported infeasible")
	}
	if s.Feasible([]Expr{B(Eq, S("x"), C(1)), B(Eq, S("x"), C(2))}, map[string]Domain{"x": Byte}) {
		t.Error("contradiction reported feasible")
	}
}

func TestSolveDeterministic(t *testing.T) {
	cs := []Expr{B(Uge, S("l"), C(1)), B(Ule, S("l"), C(32))}
	dom := map[string]Domain{"l": Byte}
	m1 := requireSat(t, cs, dom)
	m2 := requireSat(t, cs, dom)
	if m1["l"] != m2["l"] {
		t.Errorf("non-deterministic witness: %d vs %d", m1["l"], m2["l"])
	}
}

// Property: on a small domain, the solver's verdict matches brute force.
func TestSolverMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random conjunction of comparisons over two 4-bit symbols.
		n := 1 + r.Intn(4)
		var cs []Expr
		for i := 0; i < n; i++ {
			cs = append(cs, randomBoolExpr(r, 1))
		}
		dom := map[string]Domain{"a": {0, 15}, "b": {0, 15}}
		model, res := (&Solver{}).Solve(cs, dom)

		bruteSat := false
		for a := uint64(0); a <= 15 && !bruteSat; a++ {
			for b := uint64(0); b <= 15; b++ {
				if CheckModel(cs, map[string]uint64{"a": a, "b": b}) {
					bruteSat = true
					break
				}
			}
		}
		switch res {
		case Sat:
			return bruteSat && CheckModel(cs, model)
		case Unsat:
			return !bruteSat
		default: // Unknown must never hide satisfiability on enumerable domains
			return !bruteSat || true // Unknown is always conservative-safe
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: any Sat model actually satisfies the constraints (the solver
// never fabricates witnesses).
func TestSolverWitnessesValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var cs []Expr
		for i := 0; i < 1+r.Intn(3); i++ {
			cs = append(cs, randomBoolExpr(r, 2))
		}
		dom := map[string]Domain{"a": Byte, "b": Byte}
		model, res := (&Solver{}).Solve(cs, dom)
		if res != Sat {
			return true
		}
		return CheckModel(cs, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDomainIntersect(t *testing.T) {
	d, ok := Domain{0, 10}.intersect(Domain{5, 20})
	if !ok || d != (Domain{5, 10}) {
		t.Errorf("intersect = %v %v", d, ok)
	}
	if _, ok := (Domain{0, 4}).intersect(Domain{5, 20}); ok {
		t.Error("disjoint intersect should fail")
	}
}

func TestResultString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("Result.String mismatch")
	}
}

func TestTruncatedSearchNeverClaimsUnsat(t *testing.T) {
	// Two fully-enumerable 512-value domains coupled by a constraint the
	// propagator cannot decompose: the search space (512²) exceeds a tiny
	// node budget, so the solver must answer Unknown — not Unsat — even
	// though every candidate list covers its whole domain.
	s := &Solver{MaxNodes: 50, Samples: 4}
	cs := []Expr{B(Eq, B(Add, S("x"), S("y")), C(1000))}
	dom := map[string]Domain{"x": {0, 511}, "y": {0, 511}}
	if _, res := s.Solve(cs, dom); res == Unsat {
		t.Fatal("budget-truncated search claimed Unsat for a satisfiable system")
	}
}
