package symb

// This file is the public face of the compilation layer for callers
// outside the solver: an Evaluator owns a private evaluation stack and a
// private value array over a CompiledSet's slots, so many goroutines can
// evaluate the same compiled constraint set concurrently (the online
// monitor classifies packets against one shared compiled contract). The
// CompiledSet itself stays immutable after CompileSet returns.

// NumPrograms reports how many expressions the set compiled.
func (cs *CompiledSet) NumPrograms() int { return len(cs.progs) }

// ProgramSlots returns the slot indices the i-th compiled expression
// reads, deduplicated, in first-use order. Callers that bind only a
// subset of the symbol table use it to decide which programs are fully
// bound and therefore evaluable.
func (cs *CompiledSet) ProgramSlots(i int) []int {
	var out []int
	seen := make(map[int]bool)
	for _, in := range cs.progs[i].code {
		if in.kind != insSym {
			continue
		}
		s := int(in.arg)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// Evaluator evaluates one CompiledSet's programs against its own value
// array. Unlike CompiledSet.Eval it is safe to use one Evaluator per
// goroutine over a shared set.
type Evaluator struct {
	cs    *CompiledSet
	vals  []uint64
	stack []uint64
}

// NewEvaluator returns an evaluator with all slots bound to zero.
func (cs *CompiledSet) NewEvaluator() *Evaluator {
	return &Evaluator{
		cs:    cs,
		vals:  make([]uint64, len(cs.slots)),
		stack: make([]uint64, len(cs.stack)),
	}
}

// Bind sets the value of one slot (see CompiledSet.Slots for the
// slot-index ↔ symbol-name mapping).
func (ev *Evaluator) Bind(slot int, v uint64) { ev.vals[slot] = v }

// Reset zeroes every slot.
func (ev *Evaluator) Reset() {
	for i := range ev.vals {
		ev.vals[i] = 0
	}
}

// Eval evaluates the i-th program under the current binding. Logical
// operators are eager, which coincides with Expr.Eval's short-circuit
// semantics because every slot holds a defined value and ApplyOp is
// total.
func (ev *Evaluator) Eval(i int) uint64 {
	return evalProgram(&ev.cs.progs[i], ev.cs.consts, ev.vals, ev.stack)
}
