package symb

import (
	"math/rand"
	"sync"
)

// This file is the compilation layer of the solver: Expr trees are
// lowered once into flat postfix programs whose symbol operands are
// integer slot indices, so the inner backtracking loop evaluates
// constraints by slice indexing instead of string-keyed map lookups.
// It also hosts the deterministic per-symbol sample cache: the search's
// pseudo-random candidate values depend only on (symbol name, sample
// count), so the raw streams are computed once per process instead of
// re-seeding a generator on every solve (which dominated solve cost).

// Instruction kinds of the postfix machine.
const (
	insConst uint8 = iota // push consts[arg]
	insSym                // push vals[arg] (slot index)
	insBin                // pop r, pop l, push ApplyOp(Op(arg), l, r)
	insNot                // replace top with boolVal(top == 0)
)

type instr struct {
	kind uint8
	arg  uint32
}

// program is one constraint lowered to postfix code. Constants live in a
// shared per-prepared pool so instructions stay two words.
type program struct {
	code     []instr
	maxStack int
}

// evalProgram runs a compiled constraint against the slot-indexed
// binding vals. stack must have at least p.maxStack capacity. Logical
// operators are evaluated eagerly; that is observationally identical to
// Expr.Eval's short-circuiting because every operand is defined (all
// slots are bound) and ApplyOp is total.
func evalProgram(p *program, consts, vals, stack []uint64) uint64 {
	sp := 0
	for _, in := range p.code {
		switch in.kind {
		case insConst:
			stack[sp] = consts[in.arg]
			sp++
		case insSym:
			stack[sp] = vals[in.arg]
			sp++
		case insBin:
			sp--
			stack[sp-1] = ApplyOp(Op(in.arg), stack[sp-1], stack[sp])
		default: // insNot
			if stack[sp-1] == 0 {
				stack[sp-1] = 1
			} else {
				stack[sp-1] = 0
			}
		}
	}
	return stack[0]
}

// CompiledSet is a batch of expressions lowered to slot-indexed postfix
// programs sharing one symbol table. It is the exported face of the
// compilation layer, used by benchmarks and differential tests; the
// solver maintains the same representation internally.
type CompiledSet struct {
	progs  []program
	consts []uint64
	symtab map[string]int32
	slots  []string
	stack  []uint64
}

// CompileSet lowers the expressions. Symbol slots are assigned in first-
// encounter order; Slots reports the mapping.
func CompileSet(exprs ...Expr) *CompiledSet {
	cs := &CompiledSet{symtab: make(map[string]int32)}
	maxStack := 1
	for _, e := range exprs {
		p := compileExpr(e, func(name string) int32 {
			if s, ok := cs.symtab[name]; ok {
				return s
			}
			s := int32(len(cs.slots))
			cs.symtab[name] = s
			cs.slots = append(cs.slots, name)
			return s
		}, &cs.consts)
		if p.maxStack > maxStack {
			maxStack = p.maxStack
		}
		cs.progs = append(cs.progs, p)
	}
	cs.stack = make([]uint64, maxStack)
	return cs
}

// Slots returns the symbol names in slot order; Eval's vals argument is
// indexed the same way.
func (cs *CompiledSet) Slots() []string { return cs.slots }

// Eval evaluates the i-th compiled expression under the slot-indexed
// binding vals. It is not safe for concurrent use (the evaluation stack
// is shared).
func (cs *CompiledSet) Eval(i int, vals []uint64) uint64 {
	return evalProgram(&cs.progs[i], cs.consts, vals, cs.stack)
}

// compileExpr lowers one expression. slot assigns (or reuses) the slot
// index of a symbol; constants are interned into the shared pool.
func compileExpr(e Expr, slot func(string) int32, consts *[]uint64) program {
	var code []instr
	depth, maxDepth := 0, 0
	push := func(in instr, d int) {
		code = append(code, in)
		depth += d
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Const:
			*consts = append(*consts, x.V)
			push(instr{kind: insConst, arg: uint32(len(*consts) - 1)}, 1)
		case Sym:
			push(instr{kind: insSym, arg: uint32(slot(x.Name))}, 1)
		case Bin:
			walk(x.L)
			walk(x.R)
			push(instr{kind: insBin, arg: uint32(x.Op)}, -1)
		case Not:
			walk(x.X)
			push(instr{kind: insNot}, 0)
		default:
			panic("symb: unknown expression type")
		}
	}
	walk(e)
	return program{code: code, maxStack: maxDepth}
}

// exprInfo walks a compiled-ready expression once, collecting its
// distinct symbol names (in first-encounter order) and every constant it
// mentions. The solver caches the result per flat constraint so symbol
// sets are never recomputed inside a solve.
func exprInfo(e Expr) (syms []string, consts []uint64) {
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Const:
			consts = append(consts, x.V)
		case Sym:
			for _, s := range syms {
				if s == x.Name {
					return
				}
			}
			syms = append(syms, x.Name)
		case Bin:
			walk(x.L)
			walk(x.R)
		case Not:
			walk(x.X)
		}
	}
	walk(e)
	return syms, consts
}

// --- structural digests (memo keys) ---

// lanes is a 128-bit structural digest split into two independently
// mixed 64-bit lanes. Constraint-set keys are built by summing per-
// constraint digests, which makes the key order-independent (the
// solver's verdict does not depend on constraint order) without letting
// duplicate constraints cancel out the way XOR would.
type lanes struct{ a, b uint64 }

func (l *lanes) add(o lanes) { l.a += o.a; l.b += o.b }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mix64 is splitmix64's finalizer; it drives the second lane so the two
// lanes fail independently.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type hasher lanes

func newHasher() hasher { return hasher{a: fnvOffset64, b: 0x9e3779b97f4a7c15} }

func (h *hasher) word(v uint64) {
	w := v
	for i := 0; i < 8; i++ {
		h.a = (h.a ^ (w & 0xff)) * fnvPrime64
		w >>= 8
	}
	h.b = mix64(h.b + v + 0x9e3779b97f4a7c15)
}

func (h *hasher) bytes(s string) {
	for i := 0; i < len(s); i++ {
		h.a = (h.a ^ uint64(s[i])) * fnvPrime64
		h.b = mix64(h.b + uint64(s[i]) + 1)
	}
	h.word(uint64(len(s)))
}

func (h *hasher) sum() lanes { return lanes{a: h.a, b: mix64(h.b ^ h.a)} }

// exprDigest structurally hashes an expression (pre-order walk with node
// tags), for use in canonical constraint-set memo keys.
func exprDigest(e Expr) lanes {
	h := newHasher()
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Const:
			h.word(1)
			h.word(x.V)
		case Sym:
			h.word(2)
			h.bytes(x.Name)
		case Bin:
			h.word(3)
			h.word(uint64(x.Op))
			walk(x.L)
			walk(x.R)
		case Not:
			h.word(4)
			walk(x.X)
		}
	}
	walk(e)
	return h.sum()
}

// domainDigest hashes one (symbol, domain) entry for the memo key.
func domainDigest(name string, d Domain) lanes {
	h := newHasher()
	h.bytes(name)
	h.word(d.Lo)
	h.word(d.Hi)
	return h.sum()
}

// --- deterministic sample cache ---

// The search's pseudo-random candidates are drawn from a generator
// seeded by the symbol's name hash, so the raw 64-bit stream depends
// only on (name, sample count). Re-seeding math/rand's lagged-Fibonacci
// state per symbol per solve used to dominate solve cost; the cache
// computes each stream once per process. Values are mapped into the
// symbol's current domain at use, exactly as before, so witnesses are
// byte-identical.
type sampleKey struct {
	name    string
	samples int
}

var sampleCache sync.Map // sampleKey -> []uint64

func rawSamples(name string, samples int) []uint64 {
	key := sampleKey{name: name, samples: samples}
	if v, ok := sampleCache.Load(key); ok {
		return v.([]uint64)
	}
	rng := rand.New(rand.NewSource(int64(hashName(name))))
	out := make([]uint64, samples)
	for i := range out {
		out[i] = rng.Uint64()
	}
	v, _ := sampleCache.LoadOrStore(key, out)
	return v.([]uint64)
}
