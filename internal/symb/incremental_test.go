package symb

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
)

// Regression for the zero-search-variable case: a provably false ground
// constraint must be Unsat, not Unknown. The legacy solver built a
// search over zero variables, found every (vacuous) candidate list
// "incomplete", and punted to Unknown.
func TestSolveGroundFalseIsUnsat(t *testing.T) {
	var s Solver
	cases := [][]Expr{
		{Bin{Op: Eq, L: Const{V: 1}, R: Const{V: 2}}},
		{B(Ult, C(10), C(5))},
		{B(Eq, S("x"), C(3)), Bin{Op: Ne, L: Const{V: 7}, R: Const{V: 7}}},
	}
	for i, cs := range cases {
		if _, res := s.Solve(cs, map[string]Domain{"x": Byte}); res != Unsat {
			t.Errorf("case %d: ground-false constraints gave %v, want Unsat", i, res)
		}
	}
	// Ground-true constraints must not poison an otherwise-Sat system.
	m, res := s.Solve([]Expr{C(1), Bin{Op: Eq, L: Const{V: 4}, R: Const{V: 4}}, B(Eq, S("x"), C(9))},
		map[string]Domain{"x": Byte})
	if res != Sat || m["x"] != 9 {
		t.Errorf("ground-true mixed system: %v %v", m, res)
	}
}

// A session must reach the same verdict and witness as a fresh solve
// over the same constraints and domains.
func sessionVsFresh(t *testing.T, cs []Expr, dom map[string]Domain) {
	t.Helper()
	eng := NewIncremental()
	sess := eng.NewSession()
	for n, d := range dom {
		sess.SetDomain(n, d)
	}
	for _, c := range cs {
		sess.Assert(c)
	}
	var sv Solver
	gotM, gotR := sess.SolveContext(context.Background(), &sv)
	wantM, wantR := sv.Solve(cs, dom)
	if gotR != wantR {
		t.Fatalf("session verdict %v, fresh %v for %s", gotR, wantR, ConjString(cs))
	}
	if len(gotM) != len(wantM) {
		t.Fatalf("session model %v, fresh %v", gotM, wantM)
	}
	for k, v := range wantM {
		if gotM[k] != v {
			t.Fatalf("session model %v, fresh %v", gotM, wantM)
		}
	}
}

func TestSessionMatchesFreshSolve(t *testing.T) {
	sessionVsFresh(t, []Expr{B(Eq, S("etherType"), C(0x0800))}, map[string]Domain{"etherType": Word})
	sessionVsFresh(t, []Expr{B(Ult, S("x"), C(5)), B(Ugt, S("x"), C(10))}, map[string]Domain{"x": Byte})
	sessionVsFresh(t, []Expr{B(Uge, S("l"), C(25)), B(Ule, S("l"), C(32))}, map[string]Domain{"l": Byte})
	// Symbol-symbol equality exercises the union-find rebuild.
	sessionVsFresh(t, []Expr{
		B(Eq, S("a"), S("b")),
		B(Eq, S("b"), C(42)),
	}, map[string]Domain{"a": Byte, "b": Byte})
	// A union asserted after other constraints rebuilds the prepared state.
	sessionVsFresh(t, []Expr{
		B(Ult, S("a"), C(50)),
		B(Eq, S("b"), C(42)),
		B(Eq, S("a"), S("b")),
	}, map[string]Domain{"a": Byte, "b": Byte})
	// Conjunction flattening inside a session.
	sessionVsFresh(t, []Expr{B(LAnd, B(Eq, S("x"), C(3)), B(Eq, S("y"), C(4)))},
		map[string]Domain{"x": Byte, "y": Byte})
}

// Property: incremental sessions agree with fresh solves on random
// conjunctions, constraint by constraint as they accumulate.
func TestSessionMatchesFreshProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dom := map[string]Domain{"a": {0, 15}, "b": {0, 15}}
		eng := NewIncremental()
		sess := eng.NewSession()
		for n, d := range dom {
			sess.SetDomain(n, d)
		}
		var cs []Expr
		for i := 0; i < 1+r.Intn(4); i++ {
			c := randomBoolExpr(r, 1)
			cs = append(cs, c)
			sess.Assert(c)
			var sv Solver
			gotM, gotR := sess.Fork().SolveContext(context.Background(), &sv)
			wantM, wantR := sv.Solve(cs, dom)
			if gotR != wantR {
				return false
			}
			for k, v := range wantM {
				if gotM[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// Forked sessions must not observe each other's asserts.
func TestSessionForkIsolation(t *testing.T) {
	eng := NewIncremental()
	root := eng.NewSession()
	root.SetDomain("x", Byte)
	root.Assert(B(Ult, S("x"), C(100)))

	tr := root.Fork()
	fa := root.Fork()
	tr.Assert(B(Eq, S("x"), C(7)))
	fa.Assert(B(Eq, S("x"), C(8)))

	var sv Solver
	ctx := context.Background()
	if m, r := tr.SolveContext(ctx, &sv); r != Sat || m["x"] != 7 {
		t.Fatalf("true branch: %v %v", m, r)
	}
	if m, r := fa.SolveContext(ctx, &sv); r != Sat || m["x"] != 8 {
		t.Fatalf("false branch: %v %v", m, r)
	}
	// The parent is untouched by either child.
	if m, r := root.SolveContext(ctx, &sv); r != Sat || m["x"] >= 100 {
		t.Fatalf("root after forks: %v %v", m, r)
	}

	// Contradiction in one child must not leak into its sibling.
	c1 := root.Fork()
	c1.Assert(B(Ugt, S("x"), C(200)))
	if _, r := c1.SolveContext(ctx, &sv); r != Unsat {
		t.Fatalf("contradicted child: %v", r)
	}
	c2 := root.Fork()
	if _, r := c2.SolveContext(ctx, &sv); r != Sat {
		t.Fatalf("sibling after contradiction: %v", r)
	}
}

func TestSessionNilFork(t *testing.T) {
	var s *Session
	if s.Fork() != nil {
		t.Fatal("Fork of nil session must be nil")
	}
}

// Two sessions with the same constraint set share one memo entry; the
// second solve is a hit and returns an identical verdict and model.
func TestIncrementalMemoHit(t *testing.T) {
	eng := NewIncremental()
	build := func() *Session {
		s := eng.NewSession()
		s.SetDomain("x", Byte)
		s.SetDomain("y", Byte)
		// Assert in different orders: the memo key is order-independent.
		return s
	}
	a := build()
	a.Assert(B(Ult, S("x"), C(50)))
	a.Assert(B(Eq, S("y"), C(4)))
	b := build()
	b.Assert(B(Eq, S("y"), C(4)))
	b.Assert(B(Ult, S("x"), C(50)))

	var sv Solver
	ctx := context.Background()
	m1, r1 := a.SolveContext(ctx, &sv)
	m2, r2 := b.SolveContext(ctx, &sv)
	if r1 != r2 || m1["x"] != m2["x"] || m1["y"] != m2["y"] {
		t.Fatalf("memo replay diverged: %v %v vs %v %v", m1, r1, m2, r2)
	}
	st := eng.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	// The replayed model is a copy: mutating it must not corrupt the memo.
	m2["x"] = 999
	m3, _ := build().SolveContext(ctx, &sv)
	_ = m3 // building asserts nothing; just exercise the path
	c := build()
	c.Assert(B(Ult, S("x"), C(50)))
	c.Assert(B(Eq, S("y"), C(4)))
	m4, _ := c.SolveContext(ctx, &sv)
	if m4["x"] == 999 {
		t.Fatal("memo entry aliased a returned model")
	}
}

// A cancelled solve must never be memoized: a later uncancelled solve of
// the same set must run for real and find the right verdict.
func TestIncrementalCancelledNotMemoized(t *testing.T) {
	eng := NewIncremental()
	build := func() *Session {
		s := eng.NewSession()
		s.SetDomain("x", Byte)
		s.Assert(B(Eq, B(And, S("x"), C(0xF0)), C(0x40)))
		return s
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, r := build().SolveContext(cancelled, &Solver{}); r != Unknown {
		t.Fatalf("cancelled solve: %v, want Unknown", r)
	}
	if st := eng.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled solve was memoized: %+v", st)
	}
	if m, r := build().SolveContext(context.Background(), &Solver{}); r != Sat || m["x"]&0xF0 != 0x40 {
		t.Fatalf("post-cancel solve: %v %v", m, r)
	}
}

// Truncated (budget-exhausted) memo entries may only be replayed as
// Unknown, and only for budgets no larger than the recorded one; a
// bigger budget must re-search and may find the witness.
func TestIncrementalTruncationSoundness(t *testing.T) {
	eng := NewIncremental()
	build := func() *Session {
		s := eng.NewSession()
		s.SetDomain("x", Domain{0, 511})
		s.SetDomain("y", Domain{0, 511})
		s.Assert(B(Eq, B(Add, S("x"), S("y")), C(1000)))
		return s
	}
	ctx := context.Background()
	small := &Solver{MaxNodes: 50, Samples: 4}
	if _, r := build().SolveContext(ctx, small); r != Unknown {
		t.Fatalf("tiny budget: %v, want Unknown", r)
	}
	// Same budget again: replayed as Unknown from the memo.
	if _, r := build().SolveContext(ctx, small); r != Unknown {
		t.Fatalf("replayed tiny budget: %v, want Unknown", r)
	}
	if st := eng.Stats(); st.Hits != 1 {
		t.Fatalf("truncated entry not replayed: %+v", st)
	}
	// A larger budget must not reuse the truncated entry.
	big := &Solver{MaxNodes: 2_000_000, Samples: 4}
	m, r := build().SolveContext(ctx, big)
	if r != Sat || m["x"]+m["y"] != 1000 {
		t.Fatalf("big budget after truncated memo: %v %v, want Sat", m, r)
	}
	// And the completed search upgrades the entry: the tiny budget now
	// replays the recorded verdict only if it fits, else re-searches.
	if _, r := build().SolveContext(ctx, small); r == Sat {
		// Only legal if the completed search used <= 50 nodes, which it
		// did not for a 512x512 space.
		t.Fatalf("tiny budget claimed Sat it could not have found")
	}
}

// Sessions must replicate the ground-false Unsat through Known().
func TestSessionKnownUnsat(t *testing.T) {
	eng := NewIncremental()
	s := eng.NewSession()
	if r, ok := s.Known(); ok || r != Unknown {
		t.Fatalf("empty session Known = %v %v", r, ok)
	}
	s.SetDomain("x", Byte)
	s.Assert(B(Ult, S("x"), C(5)))
	s.Assert(B(Ugt, S("x"), C(10)))
	if r, ok := s.Known(); !ok || r != Unsat {
		t.Fatalf("contradiction Known = %v %v, want Unsat", r, ok)
	}
	if s.FeasibleContext(context.Background(), &Solver{}) {
		t.Fatal("contradicted session reported feasible")
	}
}

// The compiled evaluator must agree with the tree-walking Eval on
// random expressions and bindings (unit form of FuzzSolverEquivalence).
func TestCompiledEvalMatchesTree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomBoolExpr(r, 3)
		cs := CompileSet(e)
		vals := make([]uint64, len(cs.Slots()))
		bind := make(map[string]uint64, len(vals))
		for i, n := range cs.Slots() {
			v := uint64(r.Intn(64))
			vals[i] = v
			bind[n] = v
		}
		return cs.Eval(0, vals) == e.Eval(bind)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}
