package symb

import (
	"context"
	"testing"
)

func TestSolveContextPreCancelledReturnsUnknown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var s Solver
	model, res := s.SolveContext(ctx, []Expr{B(Eq, S("x"), C(7))}, map[string]Domain{"x": Word})
	if res != Unknown {
		t.Errorf("result = %v, want Unknown for cancelled context", res)
	}
	if model != nil {
		t.Errorf("model = %v, want nil", model)
	}
}

// FeasibleContext must stay conservative under cancellation: an
// interrupted search can never prove Unsat, so the path stays feasible.
func TestFeasibleContextConservativeOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var s Solver
	contradiction := []Expr{
		B(Eq, S("x"), C(1)),
		B(Eq, S("x"), C(2)),
	}
	if !s.FeasibleContext(ctx, contradiction, map[string]Domain{"x": Word}) {
		t.Error("cancelled feasibility check must not report Unsat")
	}
	if s.Feasible(contradiction, map[string]Domain{"x": Word}) {
		t.Error("uncancelled solver should refute the contradiction")
	}
}

func TestSolveContextMatchesSolve(t *testing.T) {
	cs := []Expr{B(Eq, S("etherType"), C(0x0800)), B(Ult, S("port"), C(4))}
	dom := map[string]Domain{"etherType": Word, "port": Byte}
	var s1, s2 Solver
	m1, r1 := s1.Solve(cs, dom)
	m2, r2 := s2.SolveContext(context.Background(), cs, dom)
	if r1 != r2 {
		t.Fatalf("results differ: %v vs %v", r1, r2)
	}
	for k, v := range m1 {
		if m2[k] != v {
			t.Errorf("witness %s: %d vs %d (solver must stay deterministic)", k, v, m2[k])
		}
	}
}
