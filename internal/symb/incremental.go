package symb

import (
	"context"
	"maps"
	"sort"
	"sync"
)

// Incremental is a solver engine shared by one exploration (or any other
// unit of related solving work). It owns the feasibility memo: a table
// keyed by the canonical digest of (constraint set, propagated domains,
// sample count), so repeated checks of an identical set — common when
// sibling branches reconverge — are O(1) hits. Sessions created from the
// engine carry incrementally maintained solver state across branch
// forks, so each fork pays only for its newly added constraint.
//
// Safe for concurrent use: pipeline workers solving different sessions
// share the memo under a mutex. Individual Sessions are NOT concurrency-
// safe; fork before handing one to another goroutine.
type Incremental struct {
	mu     sync.Mutex
	memo   map[memoKey]*memoEntry
	hits   int
	misses int
}

// NewIncremental returns an engine with an empty memo.
func NewIncremental() *Incremental {
	return &Incremental{memo: make(map[memoKey]*memoEntry)}
}

// memoKey canonically identifies a feasibility query. The two digest
// lanes summarize the constraint set and the propagated domains
// (order-independently); nc/ns guard against coincidental sums, and
// samples is part of the key because candidate sets — and hence verdicts
// — depend on it.
type memoKey struct {
	a, b    uint64
	nc, ns  int32
	samples int32
}

// memoEntry records one completed solve. Soundness discipline:
//   - truncated entries (budget ran out) prove nothing; they may only be
//     reused as Unknown, and only for queries whose budget is <= the
//     recorded one (the search is deterministic, so a smaller budget
//     explores a prefix of the same node sequence and also truncates).
//   - non-truncated entries replay exactly for any budget >= nodes.
//   - cancelled solves are never stored at all (the caller checks
//     ctx.Err() before storing), so a cancellation can never masquerade
//     as Unsat.
type memoEntry struct {
	res       Result
	model     map[string]uint64
	nodes     int
	budget    int
	truncated bool
}

// MemoStats reports memo-table effectiveness counters.
type MemoStats struct {
	Hits, Misses, Entries int
}

// Stats returns a snapshot of the memo counters.
func (in *Incremental) Stats() MemoStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return MemoStats{Hits: in.hits, Misses: in.misses, Entries: len(in.memo)}
}

func (in *Incremental) lookup(key memoKey, budget int) (map[string]uint64, Result, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	e, ok := in.memo[key]
	if ok {
		if e.truncated {
			if budget <= e.budget {
				in.hits++
				return nil, Unknown, true
			}
		} else if e.nodes <= budget {
			in.hits++
			return maps.Clone(e.model), e.res, true
		}
	}
	in.misses++
	return nil, Unknown, false
}

func (in *Incremental) store(key memoKey, model map[string]uint64, res Result, st solveStats, budget int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if old, ok := in.memo[key]; ok {
		// Keep the more informative entry: a completed search beats a
		// truncated one; among truncated entries, the larger budget
		// serves more future queries.
		if !old.truncated {
			return
		}
		if st.truncated && budget <= old.budget {
			return
		}
	}
	in.memo[key] = &memoEntry{
		res:       res,
		model:     maps.Clone(model),
		nodes:     st.nodes,
		budget:    budget,
		truncated: st.truncated,
	}
}

// Session is incrementally maintained solver state: the flattened
// constraint set, union-find, compiled programs and propagated domains
// of one exploration path. Fork it at a branch, Assert the branch
// condition on the child, and each feasibility query costs only the
// propagation of what changed (plus the search, which the memo
// frequently elides).
type Session struct {
	eng  *Incremental
	prep *prepared
}

// NewSession starts an empty session on the engine.
func (in *Incremental) NewSession() *Session {
	return &Session{eng: in, prep: newPrepared()}
}

// Fork returns an independent copy of the session sharing the parent's
// immutable prefix. Cost is linear in the number of symbols, not in the
// number of constraints. Fork of a nil session is nil, so state clones
// outside an engine-backed exploration stay session-free.
func (s *Session) Fork() *Session {
	if s == nil {
		return nil
	}
	return &Session{eng: s.eng, prep: s.prep.fork()}
}

// Assert adds a constraint (conjunctions are flattened) and propagates
// its consequences through the domains. Assert on a nil session is a
// no-op, so exploration code can run session-free (the NoIncremental
// ablation) without guarding every call.
func (s *Session) Assert(c Expr) {
	if s == nil {
		return
	}
	s.prep.assert(c)
}

// AssertAll asserts each constraint of the slice in order — the batch
// form callers use to seed a session from an existing constraint set
// (chain composition prepares one session per upstream path this way).
// No-op on a nil session, like Assert.
func (s *Session) AssertAll(cs []Expr) {
	if s == nil {
		return
	}
	for _, c := range cs {
		s.prep.assert(c)
	}
}

// SetDomain bounds a symbol, intersecting with any bound already
// present. No-op on a nil session, like Assert.
func (s *Session) SetDomain(name string, d Domain) {
	if s == nil {
		return
	}
	s.prep.setDomain(name, d)
}

// SetDomains applies every binding of the map through SetDomain, in
// sorted-name order so session construction is deterministic regardless
// of map iteration. The verdict does not depend on the order (domain
// propagation is confluent), but determinism is cheap insurance, as in
// prepare. No-op on a nil session.
func (s *Session) SetDomains(domains map[string]Domain) {
	if s == nil || len(domains) == 0 {
		return
	}
	names := make([]string, 0, len(domains))
	for n := range domains {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.prep.setDomain(n, domains[n])
	}
}

// Known reports a verdict derivable without searching: Unsat when
// flattening or propagation already refuted the set. (Sat is never
// claimed without a search.)
func (s *Session) Known() (Result, bool) {
	if s.prep.unsat {
		return Unsat, true
	}
	return Unknown, false
}

// SolveContext searches for a witness of the session's constraint set
// under sv's budget, consulting and feeding the engine's memo. Verdicts
// are identical to a fresh Solver.SolveContext over the same
// constraints and domains.
func (s *Session) SolveContext(ctx context.Context, sv *Solver) (map[string]uint64, Result) {
	if ctx.Err() != nil {
		return nil, Unknown
	}
	if s.prep.unsat {
		return nil, Unsat
	}
	budget, samples := sv.maxNodes(), sv.sampleCount()
	key := s.prep.memoKey(samples)
	if model, res, ok := s.eng.lookup(key, budget); ok {
		return model, res
	}
	model, res, st := solvePrepared(ctx, s.prep, budget, samples)
	if ctx.Err() == nil {
		s.eng.store(key, model, res, st, budget)
	}
	return model, res
}

// FeasibleContext reports whether the session's constraints might be
// satisfiable (Sat or Unknown), mirroring Solver.FeasibleContext.
func (s *Session) FeasibleContext(ctx context.Context, sv *Solver) bool {
	_, r := s.SolveContext(ctx, sv)
	return r != Unsat
}
