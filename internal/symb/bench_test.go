package symb

import (
	"context"
	"testing"
)

// The path-shaped constraint system the exploration engine issues per
// branch, mirroring bench_test.go's BenchmarkSolverPathFeasibility.
func benchConstraints() ([]Expr, map[string]Domain) {
	cs := []Expr{
		B(Eq, S("pkt_12_2"), C(0x0800)),
		B(Ne, S("pkt_23_1"), C(6)),
		B(Eq, S("pkt_23_1"), C(17)),
		B(Ult, S("in_port"), C(2)),
	}
	dom := map[string]Domain{
		"pkt_12_2": Word, "pkt_23_1": Byte, "in_port": Byte,
	}
	return cs, dom
}

// From-scratch feasibility: flatten, compile, propagate and search on
// every call — the cost exploration paid per branch before sessions.
func BenchmarkFeasibilityFromScratch(b *testing.B) {
	cs, dom := benchConstraints()
	s := &Solver{MaxNodes: 4000, Samples: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Feasible(append(cs[:len(cs):len(cs)], benchFresh(i)), dom) {
			b.Fatal("infeasible")
		}
	}
}

// benchFresh yields a per-iteration unique disequality on the already
// pinned Word symbol: the search work is unchanged, but every iteration
// has a distinct constraint set, defeating the memo so the incremental
// machinery itself is measured.
func benchFresh(i int) Expr {
	v := uint64(i) + 1
	if v >= 0x0800 {
		v++ // never contradict pkt_12_2 == 0x0800
	}
	return B(Ne, S("pkt_12_2"), C(v))
}

// The same check on the reference (pre-incremental) implementation: the
// baseline the incremental engine replaced.
func BenchmarkFeasibilityReference(b *testing.B) {
	cs, dom := benchConstraints()
	s := &Solver{MaxNodes: 4000, Samples: 8, Reference: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Feasible(append(cs[:len(cs):len(cs)], benchFresh(i)), dom) {
			b.Fatal("infeasible")
		}
	}
}

// Incremental feasibility: fork an already-prepared parent, assert one
// new constraint, solve. This is the per-branch cost with sessions.
func BenchmarkFeasibilityIncremental(b *testing.B) {
	cs, dom := benchConstraints()
	eng := NewIncremental()
	parent := eng.NewSession()
	for n, d := range dom {
		parent.SetDomain(n, d)
	}
	for _, c := range cs {
		parent.Assert(c)
	}
	sv := &Solver{MaxNodes: 4000, Samples: 8}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		child := parent.Fork()
		child.Assert(benchFresh(i))
		if !child.FeasibleContext(ctx, sv) {
			b.Fatal("infeasible")
		}
	}
}

// Memo-hit feasibility: the same constraint set re-checked — the case
// where sibling branches reconverge on an identical set.
func BenchmarkFeasibilityMemoHit(b *testing.B) {
	cs, dom := benchConstraints()
	eng := NewIncremental()
	parent := eng.NewSession()
	for n, d := range dom {
		parent.SetDomain(n, d)
	}
	for _, c := range cs {
		parent.Assert(c)
	}
	sv := &Solver{MaxNodes: 4000, Samples: 8}
	ctx := context.Background()
	parent.Fork().FeasibleContext(ctx, sv) // populate the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !parent.Fork().FeasibleContext(ctx, sv) {
			b.Fatal("infeasible")
		}
	}
}

// Compiled postfix evaluation vs the tree-walking interpreter, on one
// representative path constraint.
func BenchmarkEvalCompiled(b *testing.B) {
	cs, _ := benchConstraints()
	comp := CompileSet(cs...)
	vals := make([]uint64, len(comp.Slots()))
	for i, n := range comp.Slots() {
		switch n {
		case "pkt_12_2":
			vals[i] = 0x0800
		case "pkt_23_1":
			vals[i] = 17
		case "in_port":
			vals[i] = 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cs {
			if comp.Eval(j, vals) == 0 {
				b.Fatal("unexpected false")
			}
		}
	}
}

func BenchmarkEvalTree(b *testing.B) {
	cs, _ := benchConstraints()
	bind := map[string]uint64{"pkt_12_2": 0x0800, "pkt_23_1": 17, "in_port": 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cs {
			if c.Eval(bind) == 0 {
				b.Fatal("unexpected false")
			}
		}
	}
}

// Session fork cost alone: what each explored branch pays up front.
func BenchmarkSessionFork(b *testing.B) {
	cs, dom := benchConstraints()
	eng := NewIncremental()
	parent := eng.NewSession()
	for n, d := range dom {
		parent.SetDomain(n, d)
	}
	for _, c := range cs {
		parent.Assert(c)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if parent.Fork() == nil {
			b.Fatal("nil fork")
		}
	}
}
