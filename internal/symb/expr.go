// Package symb provides the symbolic-value substrate for BOLT's symbolic
// execution engine: 64-bit symbolic expressions, path constraints, and a
// small constraint solver that checks path feasibility and produces
// concrete witnesses for replay (paper §3.1, §3.3).
//
// The paper's prototype uses a KLEE-derived engine with an SMT solver
// (Z3/STP). NF stateless code induces constraints of modest shape —
// packet-field comparisons against constants, equalities between symbols,
// and range bounds on model-introduced symbols — so this package
// implements interval propagation plus a bounded backtracking search,
// which is complete for that fragment and conservative (never reports
// UNSAT for a satisfiable set) beyond it.
package symb

import (
	"fmt"
	"sort"
	"strings"
)

// Op enumerates binary operators. Comparison and logical operators yield
// 0 or 1. All arithmetic is unsigned 64-bit with wraparound, matching the
// IR's value domain.
type Op int

const (
	Add Op = iota
	Sub
	Mul
	Div // x/0 = 0, mirroring a guarded division in the IR
	Mod // x%0 = x
	And
	Or
	Xor
	Shl
	Shr
	Eq
	Ne
	Ult
	Ule
	Ugt
	Uge
	LAnd
	LOr
)

var opNames = map[Op]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Mod: "%",
	And: "&", Or: "|", Xor: "^", Shl: "<<", Shr: ">>",
	Eq: "==", Ne: "!=", Ult: "<", Ule: "<=", Ugt: ">", Uge: ">=",
	LAnd: "&&", LOr: "||",
}

// String returns the operator's source-level spelling.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// opBySpelling inverts opNames for ParseOp.
var opBySpelling = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, s := range opNames {
		m[s] = op
	}
	return m
}()

// ParseOp resolves an operator's String spelling back to the Op. It is
// the strict inverse the contract codec decodes stored expressions with:
// unknown spellings report ok=false rather than defaulting.
func ParseOp(s string) (Op, bool) {
	op, ok := opBySpelling[s]
	return op, ok
}

// IsComparison reports whether the operator yields a boolean (0/1).
func (o Op) IsComparison() bool {
	switch o {
	case Eq, Ne, Ult, Ule, Ugt, Uge, LAnd, LOr:
		return true
	}
	return false
}

// Expr is a symbolic 64-bit expression. Implementations are immutable.
type Expr interface {
	// Eval computes the expression under a total binding of its symbols.
	Eval(binding map[string]uint64) uint64
	// String renders the expression legibly.
	String() string
	exprNode()
}

// Const is a literal value.
type Const struct{ V uint64 }

// Sym is a free symbolic variable, e.g. a packet field or a value
// returned by a data-structure model.
type Sym struct{ Name string }

// Bin is a binary operation.
type Bin struct {
	Op   Op
	L, R Expr
}

// Not is logical negation: 1 if X evaluates to 0, else 0.
type Not struct{ X Expr }

func (Const) exprNode() {}
func (Sym) exprNode()   {}
func (Bin) exprNode()   {}
func (Not) exprNode()   {}

// Eval implements Expr.
func (c Const) Eval(map[string]uint64) uint64 { return c.V }

// Eval implements Expr. It panics on unbound symbols: a partial binding
// reaching evaluation is a solver bug.
func (s Sym) Eval(b map[string]uint64) uint64 {
	v, ok := b[s.Name]
	if !ok {
		panic("symb: unbound symbol " + s.Name)
	}
	return v
}

// Eval implements Expr.
func (e Bin) Eval(b map[string]uint64) uint64 {
	l := e.L.Eval(b)
	// Short-circuit logical operators like the IR interpreter does.
	switch e.Op {
	case LAnd:
		if l == 0 {
			return 0
		}
		return boolVal(e.R.Eval(b) != 0)
	case LOr:
		if l != 0 {
			return 1
		}
		return boolVal(e.R.Eval(b) != 0)
	}
	r := e.R.Eval(b)
	return ApplyOp(e.Op, l, r)
}

// Eval implements Expr.
func (n Not) Eval(b map[string]uint64) uint64 { return boolVal(n.X.Eval(b) == 0) }

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ApplyOp computes a single binary operation on concrete values; it is the
// shared semantics of both interpreters.
func ApplyOp(op Op, l, r uint64) uint64 {
	switch op {
	case Add:
		return l + r
	case Sub:
		return l - r
	case Mul:
		return l * r
	case Div:
		if r == 0 {
			return 0
		}
		return l / r
	case Mod:
		if r == 0 {
			return l
		}
		return l % r
	case And:
		return l & r
	case Or:
		return l | r
	case Xor:
		return l ^ r
	case Shl:
		if r >= 64 {
			return 0
		}
		return l << r
	case Shr:
		if r >= 64 {
			return 0
		}
		return l >> r
	case Eq:
		return boolVal(l == r)
	case Ne:
		return boolVal(l != r)
	case Ult:
		return boolVal(l < r)
	case Ule:
		return boolVal(l <= r)
	case Ugt:
		return boolVal(l > r)
	case Uge:
		return boolVal(l >= r)
	case LAnd:
		return boolVal(l != 0 && r != 0)
	case LOr:
		return boolVal(l != 0 || r != 0)
	default:
		panic("symb: unknown op " + op.String())
	}
}

// String implements Expr.
func (c Const) String() string { return fmt.Sprintf("%d", c.V) }

// String implements Expr.
func (s Sym) String() string { return s.Name }

// String implements Expr.
func (e Bin) String() string {
	return "(" + e.L.String() + " " + e.Op.String() + " " + e.R.String() + ")"
}

// String implements Expr.
func (n Not) String() string { return "!" + n.X.String() }

// C is shorthand for a constant expression.
func C(v uint64) Expr { return Const{V: v} }

// S is shorthand for a symbol expression.
func S(name string) Expr { return Sym{Name: name} }

// B builds a binary expression with constant folding and a few local
// simplifications; it is the preferred constructor.
func B(op Op, l, r Expr) Expr {
	lc, lOK := l.(Const)
	rc, rOK := r.(Const)
	if lOK && rOK {
		return Const{V: ApplyOp(op, lc.V, rc.V)}
	}
	switch op {
	case Add:
		if lOK && lc.V == 0 {
			return r
		}
		if rOK && rc.V == 0 {
			return l
		}
	case Sub, Shl, Shr, Or, Xor:
		if rOK && rc.V == 0 {
			return l
		}
	case Mul:
		if lOK && lc.V == 1 {
			return r
		}
		if rOK && rc.V == 1 {
			return l
		}
		if (lOK && lc.V == 0) || (rOK && rc.V == 0) {
			return Const{V: 0}
		}
	case LAnd:
		if lOK {
			if lc.V == 0 {
				return Const{V: 0}
			}
			return truthy(r)
		}
		if rOK {
			if rc.V == 0 {
				return Const{V: 0}
			}
			return truthy(l)
		}
	case LOr:
		if lOK {
			if lc.V != 0 {
				return Const{V: 1}
			}
			return truthy(r)
		}
		if rOK {
			if rc.V != 0 {
				return Const{V: 1}
			}
			return truthy(l)
		}
	case Eq:
		if sameSym(l, r) {
			return Const{V: 1}
		}
	case Ne, Ult, Ugt:
		if sameSym(l, r) {
			return Const{V: 0}
		}
	case Ule, Uge:
		if sameSym(l, r) {
			return Const{V: 1}
		}
	}
	return Bin{Op: op, L: l, R: r}
}

// truthy coerces an expression to 0/1 without double-negating booleans.
func truthy(e Expr) Expr {
	if isBoolean(e) {
		return e
	}
	return B(Ne, e, C(0))
}

func isBoolean(e Expr) bool {
	switch x := e.(type) {
	case Bin:
		return x.Op.IsComparison()
	case Not:
		return true
	case Const:
		return x.V == 0 || x.V == 1
	}
	return false
}

func sameSym(l, r Expr) bool {
	ls, ok1 := l.(Sym)
	rs, ok2 := r.(Sym)
	return ok1 && ok2 && ls.Name == rs.Name
}

// Negate returns the logical negation of a condition, pushing the
// negation into comparisons where possible to keep constraints solvable
// by interval propagation.
func Negate(e Expr) Expr {
	switch x := e.(type) {
	case Const:
		return Const{V: boolVal(x.V == 0)}
	case Not:
		return truthy(x.X)
	case Bin:
		switch x.Op {
		case Eq:
			return B(Ne, x.L, x.R)
		case Ne:
			return B(Eq, x.L, x.R)
		case Ult:
			return B(Uge, x.L, x.R)
		case Ule:
			return B(Ugt, x.L, x.R)
		case Ugt:
			return B(Ule, x.L, x.R)
		case Uge:
			return B(Ult, x.L, x.R)
		case LAnd:
			return B(LOr, Negate(x.L), Negate(x.R))
		case LOr:
			return B(LAnd, Negate(x.L), Negate(x.R))
		}
	}
	return Not{X: e}
}

// Symbols returns the sorted set of symbol names appearing in the
// expressions.
func Symbols(exprs ...Expr) []string {
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Sym:
			seen[x.Name] = true
		case Bin:
			walk(x.L)
			walk(x.R)
		case Not:
			walk(x.X)
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Substitute replaces symbols per the map, leaving unmapped symbols
// intact. Used by chain composition to connect one NF's output packet
// expression to the next NF's input symbols.
func Substitute(e Expr, m map[string]Expr) Expr {
	switch x := e.(type) {
	case Const:
		return x
	case Sym:
		if r, ok := m[x.Name]; ok {
			return r
		}
		return x
	case Bin:
		return B(x.Op, Substitute(x.L, m), Substitute(x.R, m))
	case Not:
		sub := Substitute(x.X, m)
		if c, ok := sub.(Const); ok {
			return Const{V: boolVal(c.V == 0)}
		}
		return Not{X: sub}
	default:
		panic("symb: unknown expression type")
	}
}

// RenameSymbols rewrites every symbol name through fn; used to namespace
// the two NFs of a chain before joining their constraint sets.
func RenameSymbols(e Expr, fn func(string) string) Expr {
	m := make(map[string]Expr)
	for _, n := range Symbols(e) {
		m[n] = S(fn(n))
	}
	return Substitute(e, m)
}

// ConjString renders a constraint set legibly for contract output.
func ConjString(constraints []Expr) string {
	if len(constraints) == 0 {
		return "true"
	}
	parts := make([]string, len(constraints))
	for i, c := range constraints {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}
