package symb

import (
	"context"
	"math/rand"
	"testing"
)

// FuzzSolverEquivalence is the differential check behind the incremental
// engine: for a random constraint system it requires that
//
//  1. the compiled (postfix) evaluator agrees with the tree-walking
//     Eval on every constraint under a random binding,
//  2. an incremental Session built constraint-by-constraint reaches the
//     same verdict and witness as a fresh Solver.SolveContext,
//  3. re-solving through a Fork (memo hit path) never flips a Sat/Unsat
//     verdict, and
//  4. the compiled engine agrees with the independent reference
//     implementation (the pre-incremental solver kept in reference.go)
//     on verdict and witness.
//
// Run with `go test -fuzz=FuzzSolverEquivalence ./internal/symb/`; the
// seed corpus below also runs under plain `go test`.
func FuzzSolverEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(42), uint8(4))
	f.Add(int64(-7877226890531368631), uint8(3)) // store-truncation regression seed
	f.Add(int64(987654321), uint8(1))

	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		r := rand.New(rand.NewSource(seed))
		nc := 1 + int(n%5)
		cs := make([]Expr, 0, nc)
		for i := 0; i < nc; i++ {
			cs = append(cs, randomBoolExpr(r, 1+r.Intn(2)))
		}
		dom := map[string]Domain{"a": {0, 15}, "b": {0, 63}}

		// (1) Compiled evaluation == tree evaluation.
		comp := CompileSet(cs...)
		bind := map[string]uint64{"a": uint64(r.Intn(16)), "b": uint64(r.Intn(64))}
		vals := make([]uint64, len(comp.Slots()))
		for i, name := range comp.Slots() {
			vals[i] = bind[name]
		}
		for i, c := range cs {
			got, want := comp.Eval(i, vals), c.Eval(bind)
			if (got != 0) != (want != 0) {
				t.Fatalf("constraint %d: compiled=%d tree=%d for %s under %v", i, got, want, c, bind)
			}
		}

		// (2) Session == fresh solve.
		var sv Solver
		ctx := context.Background()
		freshM, freshR := sv.SolveContext(ctx, cs, dom)

		eng := NewIncremental()
		sess := eng.NewSession()
		for name, d := range dom {
			sess.SetDomain(name, d)
		}
		for _, c := range cs {
			sess.Assert(c)
		}
		sessM, sessR := sess.Fork().SolveContext(ctx, &sv)
		if sessR != freshR {
			t.Fatalf("session verdict %v, fresh %v for %s", sessR, freshR, ConjString(cs))
		}
		if freshR == Sat {
			if !CheckModel(cs, sessM) {
				t.Fatalf("session model %v does not satisfy %s", sessM, ConjString(cs))
			}
			for k, v := range freshM {
				if sessM[k] != v {
					t.Fatalf("witness diverged: session %v, fresh %v", sessM, freshM)
				}
			}
		}

		// (4) The reference implementation agrees on verdict and witness.
		refM, refR := (&Solver{Reference: true}).SolveContext(ctx, cs, dom)
		if refR != freshR {
			t.Fatalf("reference verdict %v, compiled %v for %s", refR, freshR, ConjString(cs))
		}
		if freshR == Sat {
			for k, v := range freshM {
				if refM[k] != v {
					t.Fatalf("reference witness %v, compiled %v", refM, freshM)
				}
			}
		}

		// (3) Memo replay never flips a definite verdict.
		againM, againR := sess.Fork().SolveContext(ctx, &sv)
		if againR != sessR {
			t.Fatalf("memo replay flipped %v to %v", sessR, againR)
		}
		if sessR == Sat && !CheckModel(cs, againM) {
			t.Fatalf("replayed model %v does not satisfy %s", againM, ConjString(cs))
		}
	})
}
