package symb

import (
	"math/rand"
	"sort"
)

// This file preserves the pre-incremental solver verbatim (modulo
// renames): flatten → substitute → propagate-to-fixpoint → backtracking
// search, all over Expr trees and map[string]uint64 bindings, with no
// state carried between calls.
//
// It exists for two reasons:
//
//   - it is the baseline of the solver ablation (experiments.SolverBench
//     and Solver.Reference), so the incremental engine's speedup is
//     measured against the real predecessor algorithm rather than a
//     strawman;
//   - it is the oracle for the differential tests (FuzzSolverEquivalence
//     and friends): two independent implementations agreeing on verdict
//     and witness is much stronger evidence than one implementation
//     agreeing with itself.
//
// Keep it dumb. Performance work belongs in prepared.go/solver.go.

// referenceSolve is the legacy Solve: identical verdicts and witnesses
// to Solver.Solve, built from scratch on every call.
func referenceSolve(constraints []Expr, domains map[string]Domain, maxNodes, samples int) (map[string]uint64, Result) {
	st := &refSearchState{maxNodes: maxNodes, samples: samples}

	// 1. Flatten conjunctions and fold trivial constraints.
	var flat []Expr
	var flatten func(e Expr) bool
	flatten = func(e Expr) bool {
		if b, ok := e.(Bin); ok && b.Op == LAnd {
			return flatten(b.L) && flatten(b.R)
		}
		if c, ok := e.(Const); ok {
			return c.V != 0
		}
		flat = append(flat, e)
		return true
	}
	for _, c := range constraints {
		if !flatten(c) {
			return nil, Unsat
		}
	}
	// Ground constraints (no symbols) are decided immediately; the
	// original returned Unknown for false ones when some domain was too
	// wide to enumerate, which the incremental engine fixed. Mirror the
	// fix so the two implementations stay witness-identical.
	kept := flat[:0]
	for _, c := range flat {
		if len(Symbols(c)) == 0 {
			if c.Eval(nil) == 0 {
				return nil, Unsat
			}
			continue
		}
		kept = append(kept, c)
	}
	flat = kept

	// 2. Union symbol equalities so equal symbols share one search
	// variable, then substitute representatives everywhere.
	uf := newUnionFind()
	for _, c := range flat {
		if b, ok := c.(Bin); ok && b.Op == Eq && sameKind(b.L, b.R) {
			if ls, ok1 := b.L.(Sym); ok1 {
				uf.union(ls.Name, b.R.(Sym).Name)
			}
		}
	}
	subst := make(map[string]Expr)
	allSyms := Symbols(flat...)
	for name := range domains {
		allSyms = append(allSyms, name)
	}
	allSyms = refDedupe(allSyms)
	for _, n := range allSyms {
		if rep := uf.find(n); rep != n {
			subst[n] = S(rep)
		}
	}
	if len(subst) > 0 {
		for i, c := range flat {
			flat[i] = Substitute(c, subst)
		}
		// Substitution folds (e.g. Ne(rep,rep) → 0); decide those folds
		// immediately, as the incremental engine's insert does.
		kept2 := flat[:0]
		for _, c := range flat {
			if len(Symbols(c)) == 0 {
				if c.Eval(nil) == 0 {
					return nil, Unsat
				}
				continue
			}
			kept2 = append(kept2, c)
		}
		flat = kept2
	}

	// 3. Initialise domains, merging via representatives.
	dom := make(map[string]Domain)
	excluded := make(map[string]map[uint64]bool)
	for _, n := range allSyms {
		rep := uf.find(n)
		d, ok := dom[rep]
		if !ok {
			d = Full
		}
		if nd, has := domains[n]; has {
			var okInt bool
			d, okInt = d.intersect(nd)
			if !okInt {
				return nil, Unsat
			}
		}
		dom[rep] = d
	}
	for _, n := range Symbols(flat...) {
		if _, ok := dom[n]; !ok {
			dom[n] = Full
		}
	}

	// 4. Interval propagation to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, c := range flat {
			verdict, chg := refPropagate(c, dom, excluded)
			if verdict == Unsat {
				return nil, Unsat
			}
			changed = changed || chg
		}
	}

	// 5. Backtracking search over the remaining variables, narrowest
	// domain first, names breaking ties for determinism.
	vars := make([]string, 0, len(dom))
	for n := range dom {
		vars = append(vars, n)
	}
	sort.Slice(vars, func(i, j int) bool {
		wi := dom[vars[i]].Hi - dom[vars[i]].Lo
		wj := dom[vars[j]].Hi - dom[vars[j]].Lo
		if wi != wj {
			return wi < wj
		}
		return vars[i] < vars[j]
	})

	st.vars = vars
	st.dom = dom
	st.excluded = excluded
	st.constraints = flat
	st.candidates = refBuildCandidates(flat, dom, excluded, st.samples)
	st.assignment = make(map[string]uint64, len(vars))
	st.constraintSyms = make([][]string, len(flat))
	for i, c := range flat {
		st.constraintSyms[i] = Symbols(c)
	}

	if st.search(0) {
		model := make(map[string]uint64, len(allSyms))
		for _, n := range allSyms {
			model[n] = st.assignment[uf.find(n)]
		}
		return model, Sat
	}
	if st.exhausted && st.complete && !st.truncated {
		return nil, Unsat
	}
	return nil, Unknown
}

type refSearchState struct {
	vars           []string
	dom            map[string]Domain
	excluded       map[string]map[uint64]bool
	constraints    []Expr
	constraintSyms [][]string
	candidates     map[string][]uint64
	assignment     map[string]uint64
	maxNodes       int
	samples        int
	nodes          int
	exhausted      bool
	complete       bool
	truncated      bool
}

func (st *refSearchState) search(i int) bool {
	if st.nodes >= st.maxNodes {
		st.truncated = true
		return false
	}
	st.nodes++
	if i == len(st.vars) {
		return CheckModel(st.constraints, st.assignment)
	}
	v := st.vars[i]
	for _, cand := range st.candidates[v] {
		st.assignment[v] = cand
		if st.partialOK(i) && st.search(i+1) {
			return true
		}
	}
	delete(st.assignment, v)
	if i == 0 {
		st.exhausted = true
		st.complete = st.allCandidatesComplete()
	}
	return false
}

// partialOK evaluates every constraint whose symbols are all assigned
// after the i-th variable got its value.
func (st *refSearchState) partialOK(i int) bool {
	assigned := make(map[string]bool, i+1)
	for j := 0; j <= i; j++ {
		assigned[st.vars[j]] = true
	}
	for ci, c := range st.constraints {
		ready := true
		uses := false
		for _, s := range st.constraintSyms[ci] {
			if s == st.vars[i] {
				uses = true
			}
			if !assigned[s] {
				ready = false
				break
			}
		}
		if ready && uses && c.Eval(st.assignment) == 0 {
			return false
		}
	}
	return true
}

func (st *refSearchState) allCandidatesComplete() bool {
	for _, v := range st.vars {
		d := st.dom[v]
		width := d.Hi - d.Lo
		if width+1 == 0 {
			return false
		}
		if uint64(len(st.candidates[v])) < width+1 {
			return false
		}
	}
	return true
}

func refPropagate(c Expr, dom map[string]Domain, excluded map[string]map[uint64]bool) (Result, bool) {
	b, ok := c.(Bin)
	if !ok {
		return refPropagateEnum(c, dom, excluded)
	}
	if verdict, changed, handled := refTryPropagateBin(b, dom, excluded); handled {
		return verdict, changed
	}
	return refPropagateEnum(c, dom, excluded)
}

func refPropagateEnum(c Expr, dom map[string]Domain, excluded map[string]map[uint64]bool) (Result, bool) {
	syms := Symbols(c)
	if len(syms) != 1 {
		return Unknown, false
	}
	name := syms[0]
	d := dom[name]
	width := d.Hi - d.Lo
	if width >= enumWidth {
		return Unknown, false
	}
	lo, hi := d.Hi, d.Lo
	any := false
	binding := map[string]uint64{}
	for v := d.Lo; ; v++ {
		if !excluded[name][v] {
			binding[name] = v
			if c.Eval(binding) != 0 {
				any = true
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		if v == d.Hi {
			break
		}
	}
	if !any {
		return Unsat, false
	}
	if lo > d.Lo || hi < d.Hi {
		dom[name] = Domain{Lo: lo, Hi: hi}
		return Unknown, true
	}
	return Unknown, false
}

func refTryPropagateBin(b Bin, dom map[string]Domain, excluded map[string]map[uint64]bool) (Result, bool, bool) {
	l, r := b.L, b.R
	op := b.Op
	if _, lc := l.(Const); lc {
		l, r = r, l
		op = flipOp(op)
	}
	ls, lIsSym := l.(Sym)
	if !lIsSym {
		return Unknown, false, false
	}
	if rc, rIsConst := r.(Const); rIsConst {
		d := dom[ls.Name]
		nd := d
		switch op {
		case Eq:
			if !d.contains(rc.V) || excluded[ls.Name][rc.V] {
				return Unsat, false, true
			}
			nd = Domain{rc.V, rc.V}
		case Ne:
			if excluded[ls.Name] == nil {
				excluded[ls.Name] = make(map[uint64]bool)
			}
			changed := false
			if !excluded[ls.Name][rc.V] {
				excluded[ls.Name][rc.V] = true
				changed = true
			}
			for nd.Lo <= nd.Hi && excluded[ls.Name][nd.Lo] {
				if nd.Lo == ^uint64(0) {
					return Unsat, false, true
				}
				nd.Lo++
				changed = true
			}
			for nd.Hi >= nd.Lo && excluded[ls.Name][nd.Hi] {
				if nd.Hi == 0 {
					return Unsat, false, true
				}
				nd.Hi--
				changed = true
			}
			if nd.Lo > nd.Hi {
				return Unsat, false, true
			}
			dom[ls.Name] = nd
			return Unknown, changed, true
		case Ult:
			if rc.V == 0 {
				return Unsat, false, true
			}
			if rc.V-1 < nd.Hi {
				nd.Hi = rc.V - 1
			}
		case Ule:
			if rc.V < nd.Hi {
				nd.Hi = rc.V
			}
		case Ugt:
			if rc.V == ^uint64(0) {
				return Unsat, false, true
			}
			if rc.V+1 > nd.Lo {
				nd.Lo = rc.V + 1
			}
		case Uge:
			if rc.V > nd.Lo {
				nd.Lo = rc.V
			}
		default:
			return Unknown, false, false
		}
		if nd.Lo > nd.Hi {
			return Unsat, false, true
		}
		if nd != d {
			dom[ls.Name] = nd
			return Unknown, true, true
		}
		return Unknown, false, true
	}
	if rs, rIsSym := r.(Sym); rIsSym {
		dl, dr := dom[ls.Name], dom[rs.Name]
		changed := false
		switch op {
		case Ult:
			if dr.Hi == 0 {
				return Unsat, false, true
			}
			changed = refTightenHi(dom, ls.Name, dr.Hi-1) || changed
			if dl.Lo == ^uint64(0) {
				return Unsat, false, true
			}
			changed = refTightenLo(dom, rs.Name, dl.Lo+1) || changed
		case Ule:
			changed = refTightenHi(dom, ls.Name, dr.Hi) || changed
			changed = refTightenLo(dom, rs.Name, dl.Lo) || changed
		case Ugt:
			if dl.Hi == 0 {
				return Unsat, false, true
			}
			changed = refTightenLo(dom, ls.Name, dr.Lo+1) || changed
			changed = refTightenHi(dom, rs.Name, dl.Hi-1) || changed
		case Uge:
			changed = refTightenLo(dom, ls.Name, dr.Lo) || changed
			changed = refTightenHi(dom, rs.Name, dl.Hi) || changed
		case Eq:
			nd, ok := dl.intersect(dr)
			if !ok {
				return Unsat, false, true
			}
			if nd != dl || nd != dr {
				dom[ls.Name], dom[rs.Name] = nd, nd
				changed = true
			}
		default:
			return Unknown, false, false
		}
		if dom[ls.Name].Lo > dom[ls.Name].Hi || dom[rs.Name].Lo > dom[rs.Name].Hi {
			return Unsat, false, true
		}
		return Unknown, changed, true
	}
	return Unknown, false, false
}

func refTightenLo(dom map[string]Domain, name string, lo uint64) bool {
	d := dom[name]
	if lo > d.Lo {
		d.Lo = lo
		dom[name] = d
		return true
	}
	return false
}

func refTightenHi(dom map[string]Domain, name string, hi uint64) bool {
	d := dom[name]
	if hi < d.Hi {
		d.Hi = hi
		dom[name] = d
		return true
	}
	return false
}

func refBuildCandidates(constraints []Expr, dom map[string]Domain, excluded map[string]map[uint64]bool, samples int) map[string][]uint64 {
	mentioned := make(map[string][]uint64)
	collect := func(e Expr) (consts []uint64, syms []string) {
		var rec func(Expr)
		rec = func(e Expr) {
			switch x := e.(type) {
			case Const:
				consts = append(consts, x.V)
			case Sym:
				syms = append(syms, x.Name)
			case Bin:
				rec(x.L)
				rec(x.R)
			case Not:
				rec(x.X)
			}
		}
		rec(e)
		return
	}
	for _, c := range constraints {
		consts, syms := collect(c)
		for _, s := range syms {
			mentioned[s] = append(mentioned[s], consts...)
		}
	}

	out := make(map[string][]uint64, len(dom))
	for name, d := range dom {
		seen := make(map[uint64]bool)
		var cands []uint64
		add := func(v uint64) {
			if d.contains(v) && !excluded[name][v] && !seen[v] {
				seen[v] = true
				cands = append(cands, v)
			}
		}
		add(d.Lo)
		add(d.Hi)
		add(d.Lo + (d.Hi-d.Lo)/2)
		for _, v := range mentioned[name] {
			add(v)
			if v > 0 {
				add(v - 1)
			}
			if v < ^uint64(0) {
				add(v + 1)
			}
		}
		if width := d.Hi - d.Lo; width < 512 {
			for v := d.Lo; ; v++ {
				add(v)
				if v == d.Hi {
					break
				}
			}
		} else {
			rng := rand.New(rand.NewSource(int64(hashName(name))))
			for i := 0; i < samples; i++ {
				if width == ^uint64(0) {
					add(rng.Uint64())
				} else {
					add(d.Lo + rng.Uint64()%(width+1))
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		out[name] = cands
	}
	return out
}

func refDedupe(ss []string) []string {
	sort.Strings(ss)
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || ss[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
