package symb

import (
	"maps"
	"sort"
)

// prepared is the solver's front-half state: flattened constraints,
// union-found symbol classes, slot-indexed propagated domains, and the
// compiled program for every constraint. A fresh solve builds one from
// scratch; an incremental Session maintains one across branch forks so
// each fork pays only for the newly added constraint.
//
// Fork sharing: append-only slices (flat, progs, csyms, cconsts, consts,
// names, slotName) are shared between parent and children through
// three-index slicing, so a child's append copies on write. Index-
// mutated state (dom, excluded, symCons, the maps) is copied eagerly.
type prepared struct {
	// names lists every original (pre-substitution) symbol seen, in
	// first-encounter order; a Sat model binds each of them through its
	// union-find representative. nameSet dedupes.
	names   []string
	nameSet map[string]bool

	uf *unionFind

	// symtab assigns a slot to every representative symbol; slotName is
	// the inverse. dom and excluded are indexed by slot and hold the
	// propagated (not original) domains.
	symtab   map[string]int32
	slotName []string
	dom      []Domain
	excluded []map[uint64]bool

	// flat holds the flattened, representative-substituted constraints.
	// progs, csyms (slots mentioned, deduped) and cconsts (constants
	// mentioned) are parallel caches computed once per constraint.
	flat    []Expr
	progs   []program
	csyms   [][]int32
	cconsts [][]uint64
	consts  []uint64 // shared constant pool for progs

	// symCons indexes slot -> constraints mentioning it (the propagation
	// worklist fan-out and the candidate "mentioned constants" source).
	symCons [][]int32

	// hasUnion records whether any symbol equality merged two distinct
	// classes. It gates representative substitution: the legacy solver
	// only rewrote (and thereby constant-folded) constraints when its
	// substitution map was non-empty, and verdict-identical behaviour
	// requires reproducing that, folding included.
	hasUnion bool

	// key accumulates per-constraint structural digests; with the domain
	// digests it forms the canonical memo key for this constraint set.
	key lanes

	// maxStack sizes the shared evaluation stack.
	maxStack int

	// unsat is set as soon as flattening, domain intersection or
	// propagation proves the set unsatisfiable.
	unsat bool

	// Propagation scratch, grown lazily and reused across asserts. Never
	// shared with forks (fork leaves them nil): no live data survives a
	// propagate call.
	pvals   []uint64
	pstack  []uint64
	pqueue  []int32
	pqueued []bool
}

func newPrepared() *prepared {
	return &prepared{
		nameSet:  make(map[string]bool),
		uf:       newUnionFind(),
		symtab:   make(map[string]int32),
		maxStack: 1,
	}
}

// prepare builds the state for one fresh solve, mirroring the staged
// legacy pipeline: flatten everything, union symbol equalities, apply
// the caller's domains, then add each constraint with worklist
// propagation. The fixpoint is identical to sweeping all constraints
// repeatedly (the propagators are monotone and reductive, so chaotic
// iteration order does not change the result).
func prepare(constraints []Expr, domains map[string]Domain) *prepared {
	p := newPrepared()
	var flat []Expr
	for _, c := range constraints {
		if !flattenInto(c, &flat) {
			p.unsat = true
			return p
		}
	}
	// Union symbol equalities first so every constraint is substituted
	// with its final representative on insertion.
	for _, c := range flat {
		if b, ok := c.(Bin); ok && b.Op == Eq && sameKind(b.L, b.R) {
			la, rb := b.L.(Sym).Name, b.R.(Sym).Name
			if p.uf.find(la) != p.uf.find(rb) {
				p.uf.union(la, rb)
				p.hasUnion = true
			}
		}
	}
	// Sorted order keeps slot numbering deterministic; the verdict does
	// not depend on it, but determinism is cheap insurance.
	domNames := make([]string, 0, len(domains))
	for n := range domains {
		domNames = append(domNames, n)
	}
	sort.Strings(domNames)
	for _, n := range domNames {
		p.setDomain(n, domains[n])
		if p.unsat {
			return p
		}
	}
	for _, c := range flat {
		p.addConstraint(c)
		if p.unsat {
			return p
		}
	}
	return p
}

// flattenInto splits conjunctions and folds constant constraints; it
// reports false when a constraint is constant-false.
func flattenInto(e Expr, out *[]Expr) bool {
	if b, ok := e.(Bin); ok && b.Op == LAnd {
		return flattenInto(b.L, out) && flattenInto(b.R, out)
	}
	if c, ok := e.(Const); ok {
		return c.V != 0
	}
	*out = append(*out, e)
	return true
}

// fork clones the prepared state for a child branch. Cost is linear in
// the number of symbols (slot tables) but shares all per-constraint
// data with the parent.
func (p *prepared) fork() *prepared {
	q := &prepared{
		names:    p.names[:len(p.names):len(p.names)],
		nameSet:  maps.Clone(p.nameSet),
		uf:       p.uf.clone(),
		symtab:   maps.Clone(p.symtab),
		slotName: p.slotName[:len(p.slotName):len(p.slotName)],
		dom:      append([]Domain(nil), p.dom...),
		excluded: make([]map[uint64]bool, len(p.excluded)),
		flat:     p.flat[:len(p.flat):len(p.flat)],
		progs:    p.progs[:len(p.progs):len(p.progs)],
		csyms:    p.csyms[:len(p.csyms):len(p.csyms)],
		cconsts:  p.cconsts[:len(p.cconsts):len(p.cconsts)],
		consts:   p.consts[:len(p.consts):len(p.consts)],
		symCons:  make([][]int32, len(p.symCons)),
		key:      p.key,
		maxStack: p.maxStack,
		hasUnion: p.hasUnion,
		unsat:    p.unsat,
	}
	for i, m := range p.excluded {
		if m != nil {
			q.excluded[i] = maps.Clone(m)
		}
	}
	for i, cs := range p.symCons {
		q.symCons[i] = cs[:len(cs):len(cs)]
	}
	return q
}

func (p *prepared) addName(n string) {
	if !p.nameSet[n] {
		p.nameSet[n] = true
		p.names = append(p.names, n)
	}
}

// slot returns (allocating if needed) the slot of a representative
// symbol. New slots start with the full 64-bit domain, mirroring the
// legacy "every symbol in the constraints has a domain" rule.
func (p *prepared) slot(name string) int32 {
	if s, ok := p.symtab[name]; ok {
		return s
	}
	s := int32(len(p.slotName))
	p.symtab[name] = s
	p.slotName = append(p.slotName, name)
	p.dom = append(p.dom, Full)
	p.excluded = append(p.excluded, nil)
	p.symCons = append(p.symCons, nil)
	return s
}

// setDomain intersects a symbol's domain with d (through its
// representative) and re-propagates constraints watching the symbol.
// Exploration sets each symbol's domain exactly once, which makes this
// coincide with the legacy map semantics.
func (p *prepared) setDomain(name string, d Domain) {
	if p.unsat {
		return
	}
	p.addName(name)
	s := p.slot(p.uf.find(name))
	nd, ok := p.dom[s].intersect(d)
	if !ok {
		p.unsat = true
		return
	}
	if nd != p.dom[s] {
		p.dom[s] = nd
		p.propagate(nil, []int32{s})
	}
}

// assert adds one constraint (flattening conjunctions) and propagates.
func (p *prepared) assert(c Expr) {
	if p.unsat {
		return
	}
	var flat []Expr
	if !flattenInto(c, &flat) {
		p.unsat = true
		return
	}
	for _, e := range flat {
		p.addConstraint(e)
		if p.unsat {
			return
		}
	}
}

// addConstraint inserts one flattened constraint. A symbol-symbol
// equality that merges two union-find classes invalidates the
// representative substitution of everything already inserted, so that
// (rare) case rebuilds the state; every other constraint is substituted,
// compiled, indexed and propagated incrementally.
func (p *prepared) addConstraint(e Expr) {
	if b, ok := e.(Bin); ok && b.Op == Eq && sameKind(b.L, b.R) {
		la, rb := b.L.(Sym).Name, b.R.(Sym).Name
		p.addName(la)
		p.addName(rb)
		if p.uf.find(la) != p.uf.find(rb) {
			p.rebuildWith(e)
			return
		}
	}
	// Every symbol of the original constraint becomes (via its
	// representative) a search variable, even when substitution folds the
	// constraint away entirely — the legacy solver kept such symbols as
	// Full-domain variables, and models must keep binding them.
	for _, n := range Symbols(e) {
		p.addName(n)
		p.slot(p.uf.find(n))
	}
	ci := p.insert(p.substitute(e))
	if p.unsat || ci < 0 {
		return
	}
	p.propagate([]int32{int32(ci)}, nil)
}

// substitute rewrites symbols to their union-find representatives.
// Matching the legacy pipeline exactly: when no union ever merged two
// classes the expression is left untouched; when one did, the whole
// expression is rebuilt through the folding constructors (Substitute
// uses B), so e.g. Eq(rep, rep) folds to Const{1} — even in constraints
// that mention no renamed symbol.
func (p *prepared) substitute(e Expr) Expr {
	if !p.hasUnion {
		return e
	}
	m := make(map[string]Expr)
	for _, n := range Symbols(e) {
		if rep := p.uf.find(n); rep != n {
			m[n] = Sym{Name: rep}
		}
	}
	return Substitute(e, m)
}

// insert compiles and indexes one substituted constraint, returning its
// index, or -1 for a ground constraint (no symbols), which is decided
// immediately: evaluating to false proves UNSAT — the legacy search
// could only answer Unknown here because exhaustion was never recorded
// for a zero-variable search. Ground-true constraints are dropped.
func (p *prepared) insert(e Expr) int {
	syms, consts := exprInfo(e)
	if len(syms) == 0 {
		if e.Eval(nil) == 0 {
			p.unsat = true
		}
		return -1
	}
	prog := compileExpr(e, func(name string) int32 { return p.slot(name) }, &p.consts)
	if prog.maxStack > p.maxStack {
		p.maxStack = prog.maxStack
	}
	slots := make([]int32, len(syms))
	for i, n := range syms {
		slots[i] = p.symtab[n] // compiled above, so present
	}
	ci := len(p.flat)
	p.flat = append(p.flat, e)
	p.progs = append(p.progs, prog)
	p.csyms = append(p.csyms, slots)
	p.cconsts = append(p.cconsts, consts)
	for _, s := range slots {
		p.symCons[s] = append(p.symCons[s], int32(ci))
	}
	p.key.add(exprDigest(e))
	return ci
}

// rebuildWith reprocesses the whole constraint set after eq united two
// symbol classes. Starting domains are the already-propagated ones —
// sound, and convergent to the same fixpoint a from-scratch build
// reaches, because the propagators are monotone. Union-find
// representatives are the lexicographic minimum of each class, so the
// rebuilt substitution matches what a fresh batch build would produce.
func (p *prepared) rebuildWith(eq Expr) {
	oldFlat := p.flat
	oldDom := p.dom
	oldNames := p.slotName
	b := eq.(Bin)
	p.uf.union(b.L.(Sym).Name, b.R.(Sym).Name)
	p.hasUnion = true

	p.symtab = make(map[string]int32, len(oldNames))
	p.slotName = nil
	p.dom = nil
	p.excluded = nil
	p.symCons = nil
	p.flat = nil
	p.progs = nil
	p.csyms = nil
	p.cconsts = nil
	p.consts = nil
	p.key = lanes{}
	p.maxStack = 1

	for i, name := range oldNames {
		p.setDomain(name, oldDom[i])
		if p.unsat {
			return
		}
	}
	for _, c := range append(append([]Expr(nil), oldFlat...), eq) {
		p.addConstraint(c)
		if p.unsat {
			return
		}
	}
}

// memoKey canonically identifies (constraint set, propagated domains,
// candidate sampling) for the feasibility memo. Constraint and domain
// digests are summed, so the key is independent of insertion order —
// and so is the verdict: candidates are sorted, propagation is
// confluent, and the search's variable order depends only on domains
// and names.
func (p *prepared) memoKey(samples int) memoKey {
	k := p.key
	for s, name := range p.slotName {
		k.add(domainDigest(name, p.dom[s]))
	}
	return memoKey{
		a:       k.a,
		b:       k.b,
		nc:      int32(len(p.flat)),
		ns:      int32(len(p.slotName)),
		samples: int32(samples),
	}
}

// --- worklist interval propagation ---

// propagate runs constraint propagation to fixpoint from the given seed
// constraints and/or changed slots. Every constraint is re-examined
// whenever a domain or exclusion set of a symbol it mentions changes,
// which reaches the same fixpoint as the legacy sweep-until-stable loop.
func (p *prepared) propagate(seedCons, seedSlots []int32) {
	n := len(p.flat)
	if n == 0 {
		return
	}
	if cap(p.pqueued) < n {
		p.pqueued = make([]bool, n)
	}
	queued := p.pqueued[:n]
	for i := range queued {
		queued[i] = false
	}
	queue := p.pqueue[:0]
	push := func(ci int32) {
		if !queued[ci] {
			queued[ci] = true
			queue = append(queue, ci)
		}
	}
	for _, ci := range seedCons {
		push(ci)
	}
	for _, s := range seedSlots {
		for _, ci := range p.symCons[s] {
			push(ci)
		}
	}
	for head := 0; head < len(queue); head++ {
		ci := queue[head]
		queued[ci] = false
		changed := p.propagateOne(int(ci))
		if p.unsat {
			p.pqueue = queue[:0]
			return
		}
		for _, s := range changed {
			for _, cj := range p.symCons[s] {
				push(cj)
			}
		}
	}
	p.pqueue = queue[:0]
}

// propagateOne narrows domains using one constraint, returning the slots
// whose domain or exclusion set changed. It mirrors the legacy
// propagate(): structurally recognised comparison shapes first, then
// exact enumeration for single-symbol constraints over small domains.
func (p *prepared) propagateOne(ci int) []int32 {
	if b, ok := p.flat[ci].(Bin); ok {
		if changed, handled := p.propagateBin(b); handled {
			return changed
		}
	}
	return p.propagateEnum(ci)
}

// enumWidth is the largest domain propagateEnum will fully enumerate for
// single-symbol constraints (masked-field comparisons and similar).
const enumWidth = 4096

// EnumWidth exports the enumeration cutoff: both engines fully decide
// any single-symbol constraint whose symbol's domain is narrower than
// this during propagation. Join-index pruning (internal/core) relies on
// exactly that guarantee, so it must mirror the same cutoff.
const EnumWidth = enumWidth

// propagateEnum decides a constraint mentioning exactly one symbol with
// a small domain by trying every value, tightening the domain to the
// satisfying hull (or proving UNSAT).
func (p *prepared) propagateEnum(ci int) []int32 {
	if len(p.csyms[ci]) != 1 {
		return nil
	}
	s := p.csyms[ci][0]
	d := p.dom[s]
	width := d.Hi - d.Lo
	if width >= enumWidth {
		return nil
	}
	lo, hi := d.Hi, d.Lo
	any := false
	if cap(p.pvals) < len(p.slotName) {
		p.pvals = make([]uint64, len(p.slotName))
	}
	if cap(p.pstack) < p.maxStack {
		p.pstack = make([]uint64, p.maxStack)
	}
	vals, stack := p.pvals[:len(p.slotName)], p.pstack[:p.maxStack]
	excl := p.excluded[s]
	for v := d.Lo; ; v++ {
		if !excl[v] {
			vals[s] = v
			if evalProgram(&p.progs[ci], p.consts, vals, stack) != 0 {
				any = true
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		if v == d.Hi {
			break
		}
	}
	if !any {
		p.unsat = true
		return nil
	}
	if lo > d.Lo || hi < d.Hi {
		p.dom[s] = Domain{Lo: lo, Hi: hi}
		return []int32{s}
	}
	return nil
}

// propagateBin handles the structurally recognised comparison shapes;
// handled is false when the constraint matches none of them.
func (p *prepared) propagateBin(b Bin) (changed []int32, handled bool) {
	l, r := b.L, b.R
	op := b.Op
	if _, lc := l.(Const); lc {
		l, r = r, l
		op = flipOp(op)
	}
	ls, lIsSym := l.(Sym)
	if !lIsSym {
		return nil, false
	}
	sl := p.symtab[ls.Name]
	if rc, rIsConst := r.(Const); rIsConst {
		d := p.dom[sl]
		nd := d
		switch op {
		case Eq:
			if !d.contains(rc.V) || p.excluded[sl][rc.V] {
				p.unsat = true
				return nil, true
			}
			nd = Domain{Lo: rc.V, Hi: rc.V}
		case Ne:
			if p.excluded[sl] == nil {
				p.excluded[sl] = make(map[uint64]bool)
			}
			chg := false
			if !p.excluded[sl][rc.V] {
				p.excluded[sl][rc.V] = true
				chg = true
			}
			for nd.Lo <= nd.Hi && p.excluded[sl][nd.Lo] {
				if nd.Lo == ^uint64(0) {
					p.unsat = true
					return nil, true
				}
				nd.Lo++
				chg = true
			}
			for nd.Hi >= nd.Lo && p.excluded[sl][nd.Hi] {
				if nd.Hi == 0 {
					p.unsat = true
					return nil, true
				}
				nd.Hi--
				chg = true
			}
			if nd.Lo > nd.Hi {
				p.unsat = true
				return nil, true
			}
			p.dom[sl] = nd
			if chg {
				return []int32{sl}, true
			}
			return nil, true
		case Ult:
			if rc.V == 0 {
				p.unsat = true
				return nil, true
			}
			if rc.V-1 < nd.Hi {
				nd.Hi = rc.V - 1
			}
		case Ule:
			if rc.V < nd.Hi {
				nd.Hi = rc.V
			}
		case Ugt:
			if rc.V == ^uint64(0) {
				p.unsat = true
				return nil, true
			}
			if rc.V+1 > nd.Lo {
				nd.Lo = rc.V + 1
			}
		case Uge:
			if rc.V > nd.Lo {
				nd.Lo = rc.V
			}
		default:
			return nil, false
		}
		if nd.Lo > nd.Hi {
			p.unsat = true
			return nil, true
		}
		if nd != d {
			p.dom[sl] = nd
			return []int32{sl}, true
		}
		return nil, true
	}
	if rs, rIsSym := r.(Sym); rIsSym {
		sr := p.symtab[rs.Name]
		dl, dr := p.dom[sl], p.dom[sr]
		switch op {
		case Ult:
			if dr.Hi == 0 {
				p.unsat = true
				return nil, true
			}
			changed = p.tightenHi(sl, dr.Hi-1, changed)
			if dl.Lo == ^uint64(0) {
				p.unsat = true
				return nil, true
			}
			changed = p.tightenLo(sr, dl.Lo+1, changed)
		case Ule:
			changed = p.tightenHi(sl, dr.Hi, changed)
			changed = p.tightenLo(sr, dl.Lo, changed)
		case Ugt:
			if dl.Hi == 0 {
				p.unsat = true
				return nil, true
			}
			changed = p.tightenLo(sl, dr.Lo+1, changed)
			changed = p.tightenHi(sr, dl.Hi-1, changed)
		case Uge:
			changed = p.tightenLo(sl, dr.Lo, changed)
			changed = p.tightenHi(sr, dl.Hi, changed)
		case Eq:
			nd, ok := dl.intersect(dr)
			if !ok {
				p.unsat = true
				return nil, true
			}
			if nd != dl || nd != dr {
				p.dom[sl], p.dom[sr] = nd, nd
				changed = append(changed, sl, sr)
			}
		default:
			return nil, false
		}
		if p.dom[sl].Lo > p.dom[sl].Hi || p.dom[sr].Lo > p.dom[sr].Hi {
			p.unsat = true
			return nil, true
		}
		return changed, true
	}
	return nil, false
}

func (p *prepared) tightenLo(s int32, lo uint64, changed []int32) []int32 {
	if lo > p.dom[s].Lo {
		p.dom[s].Lo = lo
		return append(changed, s)
	}
	return changed
}

func (p *prepared) tightenHi(s int32, hi uint64, changed []int32) []int32 {
	if hi < p.dom[s].Hi {
		p.dom[s].Hi = hi
		return append(changed, s)
	}
	return changed
}

func flipOp(op Op) Op {
	switch op {
	case Ult:
		return Ugt
	case Ule:
		return Uge
	case Ugt:
		return Ult
	case Uge:
		return Ule
	default:
		return op // Eq, Ne and bitwise ops are symmetric enough here
	}
}
