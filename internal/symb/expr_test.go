package symb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestApplyOpSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		l, r uint64
		want uint64
	}{
		{Add, 3, 4, 7},
		{Add, ^uint64(0), 1, 0}, // wraparound
		{Sub, 3, 5, ^uint64(0) - 1},
		{Mul, 6, 7, 42},
		{Div, 7, 2, 3},
		{Div, 7, 0, 0}, // guarded
		{Mod, 7, 3, 1},
		{Mod, 7, 0, 7},
		{And, 0b1100, 0b1010, 0b1000},
		{Or, 0b1100, 0b1010, 0b1110},
		{Xor, 0b1100, 0b1010, 0b0110},
		{Shl, 1, 8, 256},
		{Shl, 1, 64, 0},
		{Shr, 256, 8, 1},
		{Shr, 1, 99, 0},
		{Eq, 5, 5, 1},
		{Eq, 5, 6, 0},
		{Ne, 5, 6, 1},
		{Ult, 5, 6, 1},
		{Ult, 6, 5, 0},
		{Ule, 5, 5, 1},
		{Ugt, 6, 5, 1},
		{Uge, 5, 5, 1},
		{LAnd, 2, 3, 1},
		{LAnd, 2, 0, 0},
		{LOr, 0, 3, 1},
		{LOr, 0, 0, 0},
	}
	for _, c := range cases {
		if got := ApplyOp(c.op, c.l, c.r); got != c.want {
			t.Errorf("ApplyOp(%v, %d, %d) = %d, want %d", c.op, c.l, c.r, got, c.want)
		}
	}
}

func TestExprEval(t *testing.T) {
	// (x + 1) * 2 == 10  with x = 4
	e := B(Eq, B(Mul, B(Add, S("x"), C(1)), C(2)), C(10))
	if got := e.Eval(map[string]uint64{"x": 4}); got != 1 {
		t.Errorf("eval = %d, want 1", got)
	}
	if got := e.Eval(map[string]uint64{"x": 5}); got != 0 {
		t.Errorf("eval = %d, want 0", got)
	}
}

func TestEvalUnboundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unbound symbol should panic")
		}
	}()
	S("ghost").Eval(map[string]uint64{})
}

func TestConstantFolding(t *testing.T) {
	if e := B(Add, C(2), C(3)); e != (Const{V: 5}) {
		t.Errorf("2+3 = %v", e)
	}
	if e := B(Add, S("x"), C(0)); e != (Sym{Name: "x"}) {
		t.Errorf("x+0 = %v", e)
	}
	if e := B(Mul, S("x"), C(0)); e != (Const{V: 0}) {
		t.Errorf("x*0 = %v", e)
	}
	if e := B(Mul, C(1), S("x")); e != (Sym{Name: "x"}) {
		t.Errorf("1*x = %v", e)
	}
	if e := B(Eq, S("x"), S("x")); e != (Const{V: 1}) {
		t.Errorf("x==x = %v", e)
	}
	if e := B(Ult, S("x"), S("x")); e != (Const{V: 0}) {
		t.Errorf("x<x = %v", e)
	}
	if e := B(LAnd, C(0), S("x")); e != (Const{V: 0}) {
		t.Errorf("0&&x = %v", e)
	}
	if e := B(LOr, C(7), S("x")); e != (Const{V: 1}) {
		t.Errorf("7||x = %v", e)
	}
}

func TestShortCircuitEval(t *testing.T) {
	// The right side references an unbound symbol; short-circuiting must
	// avoid evaluating it.
	e := Bin{Op: LAnd, L: C(0), R: S("unbound")}
	if got := e.Eval(map[string]uint64{}); got != 0 {
		t.Errorf("0 && unbound = %d", got)
	}
	e2 := Bin{Op: LOr, L: C(1), R: S("unbound")}
	if got := e2.Eval(map[string]uint64{}); got != 1 {
		t.Errorf("1 || unbound = %d", got)
	}
}

func TestNegate(t *testing.T) {
	b := map[string]uint64{"x": 7, "y": 3}
	exprs := []Expr{
		B(Eq, S("x"), C(7)),
		B(Ne, S("x"), C(7)),
		B(Ult, S("x"), S("y")),
		B(Ule, S("x"), C(10)),
		B(Ugt, S("y"), C(3)),
		B(Uge, S("y"), C(3)),
		B(LAnd, B(Eq, S("x"), C(7)), B(Eq, S("y"), C(3))),
		B(LOr, B(Eq, S("x"), C(0)), B(Eq, S("y"), C(0))),
		Not{X: S("x")},
		S("x"),
	}
	for _, e := range exprs {
		n := Negate(e)
		ev, nv := e.Eval(b) != 0, n.Eval(b) != 0
		if ev == nv {
			t.Errorf("Negate(%s) = %s not a negation", e, n)
		}
	}
}

// Property: Negate is a semantic negation for random expressions and
// random bindings.
func TestNegateProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomBoolExpr(r, 3)
		b := map[string]uint64{"a": uint64(r.Intn(10)), "b": uint64(r.Intn(10))}
		return (e.Eval(b) != 0) != (Negate(e).Eval(b) != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomBoolExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 {
		ops := []Op{Eq, Ne, Ult, Ule, Ugt, Uge}
		return B(ops[r.Intn(len(ops))], randomArith(r), randomArith(r))
	}
	switch r.Intn(3) {
	case 0:
		return B(LAnd, randomBoolExpr(r, depth-1), randomBoolExpr(r, depth-1))
	case 1:
		return B(LOr, randomBoolExpr(r, depth-1), randomBoolExpr(r, depth-1))
	default:
		return randomBoolExpr(r, 0)
	}
}

func randomArith(r *rand.Rand) Expr {
	switch r.Intn(3) {
	case 0:
		return C(uint64(r.Intn(10)))
	case 1:
		return S([]string{"a", "b"}[r.Intn(2)])
	default:
		return Bin{Op: Add, L: S("a"), R: C(uint64(r.Intn(5)))}
	}
}

func TestSymbols(t *testing.T) {
	e := B(LAnd, B(Eq, S("b"), C(1)), Not{X: B(Add, S("a"), S("c"))})
	got := Symbols(e)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Symbols = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Symbols[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSubstitute(t *testing.T) {
	e := B(Add, S("x"), S("y"))
	got := Substitute(e, map[string]Expr{"x": C(10)})
	if got.Eval(map[string]uint64{"y": 5}) != 15 {
		t.Errorf("Substitute = %v", got)
	}
	// Substitution that folds to a constant.
	cond := B(Eq, S("x"), C(10))
	folded := Substitute(cond, map[string]Expr{"x": C(10)})
	if c, ok := folded.(Const); !ok || c.V != 1 {
		t.Errorf("folded = %v", folded)
	}
}

func TestRenameSymbols(t *testing.T) {
	e := B(Add, S("x"), S("y"))
	r := RenameSymbols(e, func(s string) string { return "nf1." + s })
	syms := Symbols(r)
	if len(syms) != 2 || syms[0] != "nf1.x" || syms[1] != "nf1.y" {
		t.Errorf("renamed symbols = %v", syms)
	}
}

func TestExprString(t *testing.T) {
	e := B(Eq, S("etherType"), C(2048))
	if got := e.String(); got != "(etherType == 2048)" {
		t.Errorf("String = %q", got)
	}
	if got := ConjString([]Expr{e, B(Ult, S("l"), C(25))}); got != "(etherType == 2048) ∧ (l < 25)" {
		t.Errorf("ConjString = %q", got)
	}
	if got := ConjString(nil); got != "true" {
		t.Errorf("empty ConjString = %q", got)
	}
}
