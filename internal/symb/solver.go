package symb

import (
	"context"
	"hash/fnv"
	"maps"
	"sort"
	"sync"
)

// Domain is an inclusive value range for a symbol. The zero Domain is the
// single value 0; Full is the unconstrained 64-bit domain.
type Domain struct{ Lo, Hi uint64 }

// Full is the unconstrained domain.
var Full = Domain{Lo: 0, Hi: ^uint64(0)}

// Byte, Word, DWord and QWord are the domains of the common packet-field
// widths.
var (
	Byte  = Domain{0, 0xff}
	Word  = Domain{0, 0xffff}
	DWord = Domain{0, 0xffffffff}
	QWord = Full
)

func (d Domain) contains(v uint64) bool { return v >= d.Lo && v <= d.Hi }

func (d Domain) intersect(o Domain) (Domain, bool) {
	if o.Lo > d.Lo {
		d.Lo = o.Lo
	}
	if o.Hi < d.Hi {
		d.Hi = o.Hi
	}
	return d, d.Lo <= d.Hi
}

// Result classifies a solver verdict.
type Result int

const (
	// Unsat: the constraints are proved unsatisfiable.
	Unsat Result = iota
	// Sat: a witness was found.
	Sat
	// Unknown: the bounded search found no witness but could not prove
	// unsatisfiability. Callers treat Unknown paths as feasible
	// (conservative for contract soundness) but cannot replay them.
	Unknown
)

// String names the verdict.
func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	default:
		return "unknown"
	}
}

// Solver finds witnesses for conjunctions of constraints. The zero value
// is ready to use with default limits.
type Solver struct {
	// MaxNodes bounds the backtracking search; 0 means DefaultMaxNodes.
	MaxNodes int
	// Samples is the number of pseudo-random candidate values tried per
	// symbol beyond the structurally derived ones; 0 means DefaultSamples.
	Samples int
	// Reference switches Solve to the pre-incremental tree-walking
	// implementation (reference.go): same verdicts and witnesses, no
	// compilation, no state reuse. It is the baseline of the solver
	// ablation (experiments.SolverBench) and the oracle for differential
	// tests; production code leaves it false.
	Reference bool
}

// DefaultMaxNodes and DefaultSamples are the default search limits.
const (
	DefaultMaxNodes = 200000
	DefaultSamples  = 48
)

func (s *Solver) maxNodes() int {
	if s.MaxNodes == 0 {
		return DefaultMaxNodes
	}
	return s.MaxNodes
}

func (s *Solver) sampleCount() int {
	if s.Samples == 0 {
		return DefaultSamples
	}
	return s.Samples
}

// Solve searches for an assignment satisfying every constraint (each must
// evaluate non-zero). domains bounds symbols (missing symbols get Full).
// On Sat the returned model binds every symbol appearing in constraints
// and every symbol listed in domains.
func (s *Solver) Solve(constraints []Expr, domains map[string]Domain) (map[string]uint64, Result) {
	return s.SolveContext(context.Background(), constraints, domains)
}

// SolveContext is Solve with cancellation: the backtracking search polls
// ctx periodically and returns Unknown once it is cancelled (Unknown is
// the sound verdict for an interrupted search — the constraints were
// neither satisfied nor refuted). Callers that need to distinguish
// cancellation from an ordinary budget exhaustion check ctx.Err().
func (s *Solver) SolveContext(ctx context.Context, constraints []Expr, domains map[string]Domain) (map[string]uint64, Result) {
	if ctx.Err() != nil {
		return nil, Unknown
	}
	if s.Reference {
		return referenceSolve(constraints, domains, s.maxNodes(), s.sampleCount())
	}
	p := prepare(constraints, domains)
	model, res, _ := solvePrepared(ctx, p, s.maxNodes(), s.sampleCount())
	return model, res
}

// Feasible reports whether the constraints might be satisfiable (Sat or
// Unknown). Symbolic execution uses it to prune provably dead paths while
// keeping uncertain ones, which is the conservative direction.
func (s *Solver) Feasible(constraints []Expr, domains map[string]Domain) bool {
	_, r := s.Solve(constraints, domains)
	return r != Unsat
}

// FeasibleContext is Feasible with cancellation; a cancelled check
// reports feasible (the conservative direction), so exploration keeps the
// path and the caller notices the cancellation via ctx.Err().
func (s *Solver) FeasibleContext(ctx context.Context, constraints []Expr, domains map[string]Domain) bool {
	_, r := s.SolveContext(ctx, constraints, domains)
	return r != Unsat
}

// CheckModel reports whether the binding satisfies every constraint.
func CheckModel(constraints []Expr, model map[string]uint64) bool {
	for _, c := range constraints {
		if c.Eval(model) == 0 {
			return false
		}
	}
	return true
}

// solveStats reports how a search ended, for memoization: nodes is the
// node count consumed, truncated whether the node budget (or a
// cancellation) cut the search short — a truncated verdict proves
// nothing and must never be upgraded to Unsat.
type solveStats struct {
	nodes     int
	truncated bool
}

// solvePrepared runs the backtracking search over a prepared state.
// The result is a pure function of (prepared state, maxNodes, samples):
// variable order, candidate sets and node accounting are deterministic,
// which is what makes both memoization and incremental reuse sound.
func solvePrepared(ctx context.Context, p *prepared, maxNodes, samples int) (map[string]uint64, Result, solveStats) {
	if p.unsat {
		return nil, Unsat, solveStats{}
	}
	sc := scratchPool.Get().(*scratch)
	defer func() {
		sc.p, sc.ctx = nil, nil // don't pin solver state from the pool
		scratchPool.Put(sc)
	}()
	sc.init(p, samples)
	sc.ctx = ctx
	sc.maxNodes = maxNodes
	if sc.search(0) {
		// Extend the model to the original (pre-substitution) symbols.
		model := make(map[string]uint64, len(p.names))
		for _, n := range p.names {
			model[n] = sc.vals[p.symtab[p.uf.find(n)]]
		}
		return model, Sat, solveStats{nodes: sc.nodes}
	}
	if sc.exhausted && sc.complete && !sc.truncated {
		// Every candidate list covered its whole domain and the search
		// ran to completion, so exhaustion is a proof of UNSAT. A
		// node-budget cutoff (truncated) proves nothing — reporting
		// Unsat then could prune feasible paths, which would be unsound.
		return nil, Unsat, solveStats{nodes: sc.nodes}
	}
	return nil, Unknown, solveStats{nodes: sc.nodes, truncated: sc.truncated}
}

// scratch is the reusable search workspace: variable order, per-variable
// candidate lists, per-depth constraint watch lists, and the slot-indexed
// assignment vector. Pooled so steady-state solving allocates nothing
// beyond the Sat model itself.
type scratch struct {
	p     *prepared
	ctx   context.Context
	order []int32     // search position -> slot
	pos   []int32     // slot -> search position
	cands [][]uint64  // search position -> sorted candidate values
	watch [][]int32   // search position -> constraints fully bound there
	vals  []uint64    // slot -> assigned value
	stack []uint64    // shared evaluation stack
	seen  map[uint64]bool

	maxNodes  int
	nodes     int
	exhausted bool
	complete  bool
	truncated bool
}

var scratchPool = sync.Pool{New: func() any { return &scratch{seen: make(map[uint64]bool)} }}

// init rebuilds the workspace for one solve of p, reusing prior
// capacity. The variable order is the legacy one — narrow domains first
// to fail fast, names breaking ties for determinism.
func (sc *scratch) init(p *prepared, samples int) {
	n := len(p.slotName)
	sc.p = p
	sc.nodes = 0
	sc.exhausted = false
	sc.complete = false
	sc.truncated = false
	sc.order = resizeI32(sc.order, n)
	sc.pos = resizeI32(sc.pos, n)
	sc.vals = resizeU64(sc.vals, n)
	if cap(sc.stack) < p.maxStack {
		sc.stack = make([]uint64, p.maxStack)
	} else {
		sc.stack = sc.stack[:p.maxStack]
	}
	for i := range sc.order {
		sc.order[i] = int32(i)
	}
	sort.Slice(sc.order, func(i, j int) bool {
		a, b := sc.order[i], sc.order[j]
		wa := p.dom[a].Hi - p.dom[a].Lo
		wb := p.dom[b].Hi - p.dom[b].Lo
		if wa != wb {
			return wa < wb
		}
		return p.slotName[a] < p.slotName[b]
	})
	for i, s := range sc.order {
		sc.pos[s] = int32(i)
	}

	// Candidate lists, reusing each position's backing array.
	if cap(sc.cands) < n {
		sc.cands = append(sc.cands[:cap(sc.cands)], make([][]uint64, n-cap(sc.cands))...)
	}
	sc.cands = sc.cands[:n]
	for i, s := range sc.order {
		sc.cands[i] = sc.buildCandidates(s, sc.cands[i][:0], samples)
	}

	// Watch lists: each constraint is checked exactly when the last of
	// its symbols (deepest search position) gets a value — the same
	// schedule the legacy per-node "all assigned and uses current var"
	// scan produced, computed once instead of per node.
	if cap(sc.watch) < n {
		sc.watch = append(sc.watch[:cap(sc.watch)], make([][]int32, n-cap(sc.watch))...)
	}
	sc.watch = sc.watch[:n]
	for i := range sc.watch {
		sc.watch[i] = sc.watch[i][:0]
	}
	for ci, slots := range p.csyms {
		w := int32(0)
		for _, s := range slots {
			if sc.pos[s] > w {
				w = sc.pos[s]
			}
		}
		sc.watch[w] = append(sc.watch[w], int32(ci))
	}
}

// buildCandidates assembles the concrete values the search tries for one
// slot: domain endpoints and midpoint, constants mentioned alongside the
// symbol (and their neighbours), full enumeration for small domains, and
// deterministic pseudo-random samples (process-cached raw streams) for
// large ones. Sorted ascending; identical to the legacy candidate sets.
func (sc *scratch) buildCandidates(s int32, out []uint64, samples int) []uint64 {
	p := sc.p
	d := p.dom[s]
	excl := p.excluded[s]
	clear(sc.seen)
	add := func(v uint64) {
		if d.contains(v) && !excl[v] && !sc.seen[v] {
			sc.seen[v] = true
			out = append(out, v)
		}
	}
	add(d.Lo)
	add(d.Hi)
	add(d.Lo + (d.Hi-d.Lo)/2)
	for _, ci := range p.symCons[s] {
		for _, v := range p.cconsts[ci] {
			add(v)
			if v > 0 {
				add(v - 1)
			}
			if v < ^uint64(0) {
				add(v + 1)
			}
		}
	}
	// Small domains: enumerate fully so exhaustion implies UNSAT.
	if width := d.Hi - d.Lo; width < 512 {
		for v := d.Lo; ; v++ {
			add(v)
			if v == d.Hi {
				break
			}
		}
	} else {
		for _, raw := range rawSamples(p.slotName[s], samples) {
			if width == ^uint64(0) { // full domain: width+1 overflows
				add(raw)
			} else {
				add(d.Lo + raw%(width+1))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ctxPollInterval is how many search nodes pass between context checks;
// a power of two keeps the check a cheap mask.
const ctxPollInterval = 1024

func (sc *scratch) search(i int) bool {
	if sc.nodes >= sc.maxNodes {
		sc.truncated = true
		return false
	}
	if sc.ctx != nil && sc.nodes&(ctxPollInterval-1) == 0 && sc.ctx.Err() != nil {
		sc.truncated = true // cancelled: result must be Unknown, not Unsat
		return false
	}
	sc.nodes++
	if i == len(sc.order) {
		// Every constraint was already checked at the depth where its
		// last symbol was bound, so reaching a leaf is a witness.
		return true
	}
	s := sc.order[i]
	for _, cand := range sc.cands[i] {
		sc.vals[s] = cand
		if sc.watchOK(i) && sc.search(i+1) {
			return true
		}
	}
	if i == 0 {
		sc.exhausted = true
		sc.complete = sc.allCandidatesComplete()
	}
	return false
}

// watchOK evaluates the compiled constraints whose deepest symbol is the
// i-th search variable; shallower slots are already bound and deeper
// slots are never referenced by these constraints.
func (sc *scratch) watchOK(i int) bool {
	p := sc.p
	for _, ci := range sc.watch[i] {
		if evalProgram(&p.progs[ci], p.consts, sc.vals, sc.stack) == 0 {
			return false
		}
	}
	return true
}

// allCandidatesComplete reports whether every variable's candidate list
// covers its entire domain, in which case exhaustion proves UNSAT.
func (sc *scratch) allCandidatesComplete() bool {
	for i, s := range sc.order {
		d := sc.p.dom[s]
		width := d.Hi - d.Lo
		if width+1 == 0 { // full 64-bit domain
			return false
		}
		if uint64(len(sc.cands[i])) < width+1 {
			return false
		}
	}
	return true
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func resizeU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func hashName(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func sameKind(l, r Expr) bool {
	_, ok1 := l.(Sym)
	_, ok2 := r.(Sym)
	return ok1 && ok2
}

type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) clone() *unionFind { return &unionFind{parent: maps.Clone(u.parent)} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	// Deterministic: smaller name becomes the representative.
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}
