package symb

import (
	"context"
	"hash/fnv"
	"math/rand"
	"sort"
)

// Domain is an inclusive value range for a symbol. The zero Domain is the
// single value 0; Full is the unconstrained 64-bit domain.
type Domain struct{ Lo, Hi uint64 }

// Full is the unconstrained domain.
var Full = Domain{Lo: 0, Hi: ^uint64(0)}

// Byte, Word, DWord and QWord are the domains of the common packet-field
// widths.
var (
	Byte  = Domain{0, 0xff}
	Word  = Domain{0, 0xffff}
	DWord = Domain{0, 0xffffffff}
	QWord = Full
)

func (d Domain) contains(v uint64) bool { return v >= d.Lo && v <= d.Hi }

func (d Domain) intersect(o Domain) (Domain, bool) {
	if o.Lo > d.Lo {
		d.Lo = o.Lo
	}
	if o.Hi < d.Hi {
		d.Hi = o.Hi
	}
	return d, d.Lo <= d.Hi
}

// Result classifies a solver verdict.
type Result int

const (
	// Unsat: the constraints are proved unsatisfiable.
	Unsat Result = iota
	// Sat: a witness was found.
	Sat
	// Unknown: the bounded search found no witness but could not prove
	// unsatisfiability. Callers treat Unknown paths as feasible
	// (conservative for contract soundness) but cannot replay them.
	Unknown
)

// String names the verdict.
func (r Result) String() string {
	switch r {
	case Unsat:
		return "unsat"
	case Sat:
		return "sat"
	default:
		return "unknown"
	}
}

// Solver finds witnesses for conjunctions of constraints. The zero value
// is ready to use with default limits.
type Solver struct {
	// MaxNodes bounds the backtracking search; 0 means DefaultMaxNodes.
	MaxNodes int
	// Samples is the number of pseudo-random candidate values tried per
	// symbol beyond the structurally derived ones; 0 means DefaultSamples.
	Samples int
}

// DefaultMaxNodes and DefaultSamples are the default search limits.
const (
	DefaultMaxNodes = 200000
	DefaultSamples  = 48
)

// Solve searches for an assignment satisfying every constraint (each must
// evaluate non-zero). domains bounds symbols (missing symbols get Full).
// On Sat the returned model binds every symbol appearing in constraints
// and every symbol listed in domains.
func (s *Solver) Solve(constraints []Expr, domains map[string]Domain) (map[string]uint64, Result) {
	return s.SolveContext(context.Background(), constraints, domains)
}

// SolveContext is Solve with cancellation: the backtracking search polls
// ctx periodically and returns Unknown once it is cancelled (Unknown is
// the sound verdict for an interrupted search — the constraints were
// neither satisfied nor refuted). Callers that need to distinguish
// cancellation from an ordinary budget exhaustion check ctx.Err().
func (s *Solver) SolveContext(ctx context.Context, constraints []Expr, domains map[string]Domain) (map[string]uint64, Result) {
	if ctx.Err() != nil {
		return nil, Unknown
	}
	st := &searchState{
		ctx:      ctx,
		maxNodes: s.MaxNodes,
		samples:  s.Samples,
	}
	if st.maxNodes == 0 {
		st.maxNodes = DefaultMaxNodes
	}
	if st.samples == 0 {
		st.samples = DefaultSamples
	}

	// 1. Flatten conjunctions and fold trivial constraints.
	var flat []Expr
	var flatten func(e Expr) bool
	flatten = func(e Expr) bool {
		if b, ok := e.(Bin); ok && b.Op == LAnd {
			return flatten(b.L) && flatten(b.R)
		}
		if c, ok := e.(Const); ok {
			return c.V != 0
		}
		flat = append(flat, e)
		return true
	}
	for _, c := range constraints {
		if !flatten(c) {
			return nil, Unsat
		}
	}

	// 2. Union symbol equalities so equal symbols share one search
	// variable, then substitute representatives everywhere.
	uf := newUnionFind()
	for _, c := range flat {
		if b, ok := c.(Bin); ok && b.Op == Eq && sameKind(b.L, b.R) {
			if ls, ok1 := b.L.(Sym); ok1 {
				uf.union(ls.Name, b.R.(Sym).Name)
			}
		}
	}
	subst := make(map[string]Expr)
	allSyms := Symbols(flat...)
	for name := range domains {
		allSyms = append(allSyms, name)
	}
	allSyms = dedupe(allSyms)
	for _, n := range allSyms {
		if rep := uf.find(n); rep != n {
			subst[n] = S(rep)
		}
	}
	if len(subst) > 0 {
		for i, c := range flat {
			flat[i] = Substitute(c, subst)
		}
	}

	// 3. Initialise domains, merging via representatives.
	dom := make(map[string]Domain)
	excluded := make(map[string]map[uint64]bool)
	for _, n := range allSyms {
		rep := uf.find(n)
		d, ok := dom[rep]
		if !ok {
			d = Full
		}
		if nd, has := domains[n]; has {
			var okInt bool
			d, okInt = d.intersect(nd)
			if !okInt {
				return nil, Unsat
			}
		}
		dom[rep] = d
	}
	// Ensure every symbol in the constraints has a domain.
	for _, n := range Symbols(flat...) {
		if _, ok := dom[n]; !ok {
			dom[n] = Full
		}
	}

	// 4. Interval propagation to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, c := range flat {
			verdict, chg := propagate(c, dom, excluded)
			if verdict == Unsat {
				return nil, Unsat
			}
			changed = changed || chg
		}
	}

	// 5. Backtracking search over the remaining variables.
	vars := make([]string, 0, len(dom))
	for n := range dom {
		vars = append(vars, n)
	}
	// Order variables: singletons first, then narrow domains, to fail
	// fast; names break ties for determinism.
	sort.Slice(vars, func(i, j int) bool {
		wi := dom[vars[i]].Hi - dom[vars[i]].Lo
		wj := dom[vars[j]].Hi - dom[vars[j]].Lo
		if wi != wj {
			return wi < wj
		}
		return vars[i] < vars[j]
	})

	st.vars = vars
	st.dom = dom
	st.excluded = excluded
	st.constraints = flat
	st.candidates = buildCandidates(flat, dom, excluded, st.samples)
	st.assignment = make(map[string]uint64, len(vars))
	st.constraintSyms = make([][]string, len(flat))
	for i, c := range flat {
		st.constraintSyms[i] = Symbols(c)
	}

	if st.search(0) {
		// Extend the model to the original (pre-substitution) symbols.
		model := make(map[string]uint64, len(allSyms))
		for _, n := range allSyms {
			model[n] = st.assignment[uf.find(n)]
		}
		return model, Sat
	}
	if st.exhausted && st.complete && !st.truncated {
		// Every candidate list covered its whole domain and the search
		// ran to completion, so exhaustion is a proof of UNSAT. A
		// node-budget cutoff (truncated) proves nothing — reporting
		// Unsat then could prune feasible paths, which would be unsound.
		return nil, Unsat
	}
	return nil, Unknown
}

// Feasible reports whether the constraints might be satisfiable (Sat or
// Unknown). Symbolic execution uses it to prune provably dead paths while
// keeping uncertain ones, which is the conservative direction.
func (s *Solver) Feasible(constraints []Expr, domains map[string]Domain) bool {
	_, r := s.Solve(constraints, domains)
	return r != Unsat
}

// FeasibleContext is Feasible with cancellation; a cancelled check
// reports feasible (the conservative direction), so exploration keeps the
// path and the caller notices the cancellation via ctx.Err().
func (s *Solver) FeasibleContext(ctx context.Context, constraints []Expr, domains map[string]Domain) bool {
	_, r := s.SolveContext(ctx, constraints, domains)
	return r != Unsat
}

// CheckModel reports whether the binding satisfies every constraint.
func CheckModel(constraints []Expr, model map[string]uint64) bool {
	for _, c := range constraints {
		if c.Eval(model) == 0 {
			return false
		}
	}
	return true
}

type searchState struct {
	ctx            context.Context
	vars           []string
	dom            map[string]Domain
	excluded       map[string]map[uint64]bool
	constraints    []Expr
	constraintSyms [][]string
	candidates     map[string][]uint64
	assignment     map[string]uint64
	maxNodes       int
	samples        int
	nodes          int
	exhausted      bool
	complete       bool
	truncated      bool
}

// ctxPollInterval is how many search nodes pass between context checks;
// a power of two keeps the check a cheap mask.
const ctxPollInterval = 1024

func (st *searchState) search(i int) bool {
	if st.nodes >= st.maxNodes {
		st.truncated = true
		return false
	}
	if st.ctx != nil && st.nodes&(ctxPollInterval-1) == 0 && st.ctx.Err() != nil {
		st.truncated = true // cancelled: result must be Unknown, not Unsat
		return false
	}
	st.nodes++
	if i == len(st.vars) {
		return CheckModel(st.constraints, st.assignment)
	}
	v := st.vars[i]
	for _, cand := range st.candidates[v] {
		st.assignment[v] = cand
		if st.partialOK(i) && st.search(i+1) {
			return true
		}
	}
	delete(st.assignment, v)
	if i == 0 {
		st.exhausted = true
		st.complete = st.allCandidatesComplete()
	}
	return false
}

// partialOK evaluates every constraint whose symbols are all assigned
// after the i-th variable got its value.
func (st *searchState) partialOK(i int) bool {
	assigned := make(map[string]bool, i+1)
	for j := 0; j <= i; j++ {
		assigned[st.vars[j]] = true
	}
	for ci, c := range st.constraints {
		ready := true
		uses := false
		for _, s := range st.constraintSyms[ci] {
			if s == st.vars[i] {
				uses = true
			}
			if !assigned[s] {
				ready = false
				break
			}
		}
		if ready && uses && c.Eval(st.assignment) == 0 {
			return false
		}
	}
	return true
}

// allCandidatesComplete reports whether every variable's candidate list
// covers its entire domain, in which case exhaustion proves UNSAT.
func (st *searchState) allCandidatesComplete() bool {
	for _, v := range st.vars {
		d := st.dom[v]
		width := d.Hi - d.Lo
		if width+1 == 0 { // full 64-bit domain
			return false
		}
		if uint64(len(st.candidates[v])) < width+1 {
			return false
		}
	}
	return true
}

// enumWidth is the largest domain propagate will fully enumerate for
// single-symbol constraints (masked-field comparisons and similar).
const enumWidth = 4096

// propagate narrows domains using one constraint. It recognises
// comparisons between a symbol and a constant, symbol-symbol orderings,
// and disequalities; single-symbol constraints over small domains are
// decided exactly by enumeration; everything else is left to the search.
func propagate(c Expr, dom map[string]Domain, excluded map[string]map[uint64]bool) (Result, bool) {
	b, ok := c.(Bin)
	if !ok {
		return propagateEnum(c, dom, excluded)
	}
	if verdict, changed, handled := tryPropagateBin(b, dom, excluded); handled {
		return verdict, changed
	}
	return propagateEnum(c, dom, excluded)
}

// propagateEnum decides a constraint that mentions exactly one symbol
// with a small domain by trying every value, tightening the domain to
// the satisfying range (or proving UNSAT).
func propagateEnum(c Expr, dom map[string]Domain, excluded map[string]map[uint64]bool) (Result, bool) {
	syms := Symbols(c)
	if len(syms) != 1 {
		return Unknown, false
	}
	name := syms[0]
	d := dom[name]
	width := d.Hi - d.Lo
	if width >= enumWidth {
		return Unknown, false
	}
	lo, hi := d.Hi, d.Lo
	any := false
	binding := map[string]uint64{}
	for v := d.Lo; ; v++ {
		if !excluded[name][v] {
			binding[name] = v
			if c.Eval(binding) != 0 {
				any = true
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		if v == d.Hi {
			break
		}
	}
	if !any {
		return Unsat, false
	}
	if lo > d.Lo || hi < d.Hi {
		dom[name] = Domain{Lo: lo, Hi: hi}
		return Unknown, true
	}
	return Unknown, false
}

// tryPropagateBin handles the structurally recognised comparison shapes;
// handled is false when the constraint does not match any of them.
func tryPropagateBin(b Bin, dom map[string]Domain, excluded map[string]map[uint64]bool) (Result, bool, bool) {
	// Normalise: symbol on the left.
	l, r := b.L, b.R
	op := b.Op
	if _, lc := l.(Const); lc {
		l, r = r, l
		op = flipOp(op)
	}
	ls, lIsSym := l.(Sym)
	if !lIsSym {
		return Unknown, false, false
	}
	if rc, rIsConst := r.(Const); rIsConst {
		d := dom[ls.Name]
		nd := d
		switch op {
		case Eq:
			if !d.contains(rc.V) || excluded[ls.Name][rc.V] {
				return Unsat, false, true
			}
			nd = Domain{rc.V, rc.V}
		case Ne:
			if excluded[ls.Name] == nil {
				excluded[ls.Name] = make(map[uint64]bool)
			}
			changed := false
			if !excluded[ls.Name][rc.V] {
				excluded[ls.Name][rc.V] = true
				changed = true
			}
			// Tighten bounds that became excluded.
			for nd.Lo <= nd.Hi && excluded[ls.Name][nd.Lo] {
				if nd.Lo == ^uint64(0) {
					return Unsat, false, true
				}
				nd.Lo++
				changed = true
			}
			for nd.Hi >= nd.Lo && excluded[ls.Name][nd.Hi] {
				if nd.Hi == 0 {
					return Unsat, false, true
				}
				nd.Hi--
				changed = true
			}
			if nd.Lo > nd.Hi {
				return Unsat, false, true
			}
			dom[ls.Name] = nd
			return Unknown, changed, true
		case Ult:
			if rc.V == 0 {
				return Unsat, false, true
			}
			if rc.V-1 < nd.Hi {
				nd.Hi = rc.V - 1
			}
		case Ule:
			if rc.V < nd.Hi {
				nd.Hi = rc.V
			}
		case Ugt:
			if rc.V == ^uint64(0) {
				return Unsat, false, true
			}
			if rc.V+1 > nd.Lo {
				nd.Lo = rc.V + 1
			}
		case Uge:
			if rc.V > nd.Lo {
				nd.Lo = rc.V
			}
		default:
			return Unknown, false, false
		}
		if nd.Lo > nd.Hi {
			return Unsat, false, true
		}
		if nd != d {
			dom[ls.Name] = nd
			return Unknown, true, true
		}
		return Unknown, false, true
	}
	if rs, rIsSym := r.(Sym); rIsSym {
		// Symbol-symbol ordering: propagate bounds both ways.
		dl, dr := dom[ls.Name], dom[rs.Name]
		changed := false
		switch op {
		case Ult:
			if dr.Hi == 0 {
				return Unsat, false, true
			}
			changed = tightenHi(dom, ls.Name, dr.Hi-1) || changed
			if dl.Lo == ^uint64(0) {
				return Unsat, false, true
			}
			changed = tightenLo(dom, rs.Name, dl.Lo+1) || changed
		case Ule:
			changed = tightenHi(dom, ls.Name, dr.Hi) || changed
			changed = tightenLo(dom, rs.Name, dl.Lo) || changed
		case Ugt:
			if dl.Hi == 0 {
				return Unsat, false, true
			}
			changed = tightenLo(dom, ls.Name, dr.Lo+1) || changed
			changed = tightenHi(dom, rs.Name, dl.Hi-1) || changed
		case Uge:
			changed = tightenLo(dom, ls.Name, dr.Lo) || changed
			changed = tightenHi(dom, rs.Name, dl.Hi) || changed
		case Eq:
			nd, ok := dl.intersect(dr)
			if !ok {
				return Unsat, false, true
			}
			if nd != dl || nd != dr {
				dom[ls.Name], dom[rs.Name] = nd, nd
				changed = true
			}
		default:
			return Unknown, false, false
		}
		if dom[ls.Name].Lo > dom[ls.Name].Hi || dom[rs.Name].Lo > dom[rs.Name].Hi {
			return Unsat, false, true
		}
		return Unknown, changed, true
	}
	return Unknown, false, false
}

func tightenLo(dom map[string]Domain, name string, lo uint64) bool {
	d := dom[name]
	if lo > d.Lo {
		d.Lo = lo
		dom[name] = d
		return true
	}
	return false
}

func tightenHi(dom map[string]Domain, name string, hi uint64) bool {
	d := dom[name]
	if hi < d.Hi {
		d.Hi = hi
		dom[name] = d
		return true
	}
	return false
}

func flipOp(op Op) Op {
	switch op {
	case Ult:
		return Ugt
	case Ule:
		return Uge
	case Ugt:
		return Ult
	case Uge:
		return Ule
	default:
		return op // Eq, Ne and bitwise ops are symmetric enough here
	}
}

// buildCandidates assembles, per symbol, the concrete values the search
// will try: domain endpoints, constants mentioned alongside the symbol
// (and their neighbours), and deterministic pseudo-random samples.
func buildCandidates(constraints []Expr, dom map[string]Domain, excluded map[string]map[uint64]bool, samples int) map[string][]uint64 {
	mentioned := make(map[string][]uint64)
	collect := func(e Expr) (consts []uint64, syms []string) {
		var rec func(Expr)
		rec = func(e Expr) {
			switch x := e.(type) {
			case Const:
				consts = append(consts, x.V)
			case Sym:
				syms = append(syms, x.Name)
			case Bin:
				rec(x.L)
				rec(x.R)
			case Not:
				rec(x.X)
			}
		}
		rec(e)
		return
	}
	for _, c := range constraints {
		consts, syms := collect(c)
		for _, s := range syms {
			mentioned[s] = append(mentioned[s], consts...)
		}
	}

	out := make(map[string][]uint64, len(dom))
	for name, d := range dom {
		seen := make(map[uint64]bool)
		var cands []uint64
		add := func(v uint64) {
			if d.contains(v) && !excluded[name][v] && !seen[v] {
				seen[v] = true
				cands = append(cands, v)
			}
		}
		add(d.Lo)
		add(d.Hi)
		add(d.Lo + (d.Hi-d.Lo)/2)
		for _, v := range mentioned[name] {
			add(v)
			if v > 0 {
				add(v - 1)
			}
			if v < ^uint64(0) {
				add(v + 1)
			}
		}
		// Small domains: enumerate fully so exhaustion implies UNSAT.
		if width := d.Hi - d.Lo; width < 512 {
			for v := d.Lo; ; v++ {
				add(v)
				if v == d.Hi {
					break
				}
			}
		} else {
			rng := rand.New(rand.NewSource(int64(hashName(name))))
			for i := 0; i < samples; i++ {
				if width == ^uint64(0) { // full domain: width+1 overflows
					add(rng.Uint64())
				} else {
					add(d.Lo + rng.Uint64()%(width+1))
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		out[name] = cands
	}
	return out
}

func hashName(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

func sameKind(l, r Expr) bool {
	_, ok1 := l.(Sym)
	_, ok2 := r.(Sym)
	return ok1 && ok2
}

func dedupe(ss []string) []string {
	sort.Strings(ss)
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || ss[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	// Deterministic: smaller name becomes the representative.
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}
