// Package packet builds and parses the packet formats the evaluated NFs
// process: Ethernet II, IPv4 (including IP options, which the static
// router of §5.2 handles), UDP and TCP.
//
// The API follows the gopacket idioms the Go networking ecosystem
// established: explicit layer types, lazy field access on a shared
// buffer, and zero-copy decoding into caller-owned structs
// (DecodeLayers-style), but implemented on the standard library alone.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// LayerType identifies a protocol layer.
type LayerType int

// Layer types understood by the decoder.
const (
	LayerEthernet LayerType = iota
	LayerIPv4
	LayerUDP
	LayerTCP
	LayerPayload
)

// String names the layer.
func (lt LayerType) String() string {
	switch lt {
	case LayerEthernet:
		return "Ethernet"
	case LayerIPv4:
		return "IPv4"
	case LayerUDP:
		return "UDP"
	case LayerTCP:
		return "TCP"
	case LayerPayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", int(lt))
	}
}

// EtherType values.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
)

// Well-known byte offsets within an Ethernet+IPv4 frame (no VLAN). The
// NFs written in the IR read these with PktLoad.
const (
	OffDstMAC     = 0
	OffSrcMAC     = 6
	OffEtherType  = 12
	OffIPVerIHL   = 14
	OffIPTotLen   = 16
	OffIPTTL      = 22
	OffIPProto    = 23
	OffIPChecksum = 24
	OffSrcIP      = 26
	OffDstIP      = 30
	// L4 offsets assume a 20-byte IPv4 header (IHL=5); NFs must check
	// IHL before using them, or compute the real offset.
	OffSrcPort = 34
	OffDstPort = 36
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// Uint64 packs the MAC into the low 48 bits, big-endian, the form the IR
// NFs handle.
func (m MAC) Uint64() uint64 {
	var v uint64
	for _, b := range m {
		v = v<<8 | uint64(b)
	}
	return v
}

// MACFromUint64 unpacks a MAC from the low 48 bits.
func MACFromUint64(v uint64) MAC {
	var m MAC
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// String renders the usual colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Broadcast is the all-ones MAC.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Ethernet is the decoded Ethernet II header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
}

// IPv4 is the decoded IPv4 header.
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words (5 = no options)
	TotalLen uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr
	// Options holds the raw option bytes ((IHL-5)*4 of them).
	Options []byte
}

// UDP is the decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// TCP is the decoded TCP header (the fields NFs use).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          uint8
	Flags            uint8
	Window           uint16
	Checksum         uint16
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPAck = 1 << 4
)

// Decoded is the result of decoding a frame: which layers were found and
// their contents. Reuse one Decoded across packets to avoid allocation
// (the DecodingLayerParser pattern).
type Decoded struct {
	Layers []LayerType
	Eth    Ethernet
	IP     IPv4
	UDP    UDP
	TCP    TCP
	// Payload is the undecoded remainder (aliases the input buffer).
	Payload []byte
}

// Decode errors.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrBadHeader = errors.New("packet: malformed header")
)

// Decode parses an Ethernet frame into d, stopping at the first layer it
// does not understand (which becomes Payload). It never copies packet
// bytes except the IPv4 options slice header.
func Decode(frame []byte, d *Decoded) error {
	d.Layers = d.Layers[:0]
	d.Payload = nil
	if len(frame) < 14 {
		return fmt.Errorf("%w: ethernet header needs 14 bytes, have %d", ErrTruncated, len(frame))
	}
	copy(d.Eth.Dst[:], frame[0:6])
	copy(d.Eth.Src[:], frame[6:12])
	d.Eth.EtherType = binary.BigEndian.Uint16(frame[12:14])
	d.Layers = append(d.Layers, LayerEthernet)
	rest := frame[14:]

	if d.Eth.EtherType != EtherTypeIPv4 {
		d.Payload = rest
		d.Layers = append(d.Layers, LayerPayload)
		return nil
	}
	if len(rest) < 20 {
		return fmt.Errorf("%w: ipv4 header needs 20 bytes, have %d", ErrTruncated, len(rest))
	}
	verIHL := rest[0]
	if verIHL>>4 != 4 {
		return fmt.Errorf("%w: ipv4 version %d", ErrBadHeader, verIHL>>4)
	}
	ihl := verIHL & 0x0f
	if ihl < 5 {
		return fmt.Errorf("%w: ihl %d < 5", ErrBadHeader, ihl)
	}
	hdrLen := int(ihl) * 4
	if len(rest) < hdrLen {
		return fmt.Errorf("%w: ihl %d needs %d bytes, have %d", ErrTruncated, ihl, hdrLen, len(rest))
	}
	d.IP.IHL = ihl
	d.IP.TotalLen = binary.BigEndian.Uint16(rest[2:4])
	d.IP.TTL = rest[8]
	d.IP.Protocol = rest[9]
	d.IP.Checksum = binary.BigEndian.Uint16(rest[10:12])
	d.IP.Src = netip.AddrFrom4([4]byte(rest[12:16]))
	d.IP.Dst = netip.AddrFrom4([4]byte(rest[16:20]))
	d.IP.Options = rest[20:hdrLen]
	d.Layers = append(d.Layers, LayerIPv4)
	rest = rest[hdrLen:]

	switch d.IP.Protocol {
	case ProtoUDP:
		if len(rest) < 8 {
			return fmt.Errorf("%w: udp header needs 8 bytes, have %d", ErrTruncated, len(rest))
		}
		d.UDP.SrcPort = binary.BigEndian.Uint16(rest[0:2])
		d.UDP.DstPort = binary.BigEndian.Uint16(rest[2:4])
		d.UDP.Length = binary.BigEndian.Uint16(rest[4:6])
		d.UDP.Checksum = binary.BigEndian.Uint16(rest[6:8])
		d.Layers = append(d.Layers, LayerUDP)
		d.Payload = rest[8:]
	case ProtoTCP:
		if len(rest) < 20 {
			return fmt.Errorf("%w: tcp header needs 20 bytes, have %d", ErrTruncated, len(rest))
		}
		d.TCP.SrcPort = binary.BigEndian.Uint16(rest[0:2])
		d.TCP.DstPort = binary.BigEndian.Uint16(rest[2:4])
		d.TCP.Seq = binary.BigEndian.Uint32(rest[4:8])
		d.TCP.Ack = binary.BigEndian.Uint32(rest[8:12])
		d.TCP.DataOff = rest[12] >> 4
		d.TCP.Flags = rest[13]
		d.TCP.Window = binary.BigEndian.Uint16(rest[14:16])
		d.TCP.Checksum = binary.BigEndian.Uint16(rest[16:18])
		d.Layers = append(d.Layers, LayerTCP)
		off := int(d.TCP.DataOff) * 4
		if off < 20 || off > len(rest) {
			return fmt.Errorf("%w: tcp data offset %d", ErrBadHeader, d.TCP.DataOff)
		}
		d.Payload = rest[off:]
	default:
		d.Payload = rest
		d.Layers = append(d.Layers, LayerPayload)
		return nil
	}
	d.Layers = append(d.Layers, LayerPayload)
	return nil
}

// Has reports whether the decode found the given layer.
func (d *Decoded) Has(lt LayerType) bool {
	for _, l := range d.Layers {
		if l == lt {
			return true
		}
	}
	return false
}

// Builder assembles frames. Methods return the builder for chaining; Bytes
// finalises lengths and checksums.
type Builder struct {
	buf     []byte
	ipStart int // -1 when no IPv4 layer
	l4Start int
	l4Proto uint8
}

// NewBuilder starts an empty frame.
func NewBuilder() *Builder {
	return &Builder{buf: make([]byte, 0, 128), ipStart: -1, l4Start: -1}
}

// Ethernet appends an Ethernet II header.
func (b *Builder) Ethernet(dst, src MAC, etherType uint16) *Builder {
	b.buf = append(b.buf, dst[:]...)
	b.buf = append(b.buf, src[:]...)
	b.buf = binary.BigEndian.AppendUint16(b.buf, etherType)
	return b
}

// IPv4 appends an IPv4 header with the given options (padded to 4 bytes).
// TotalLen and the checksum are fixed up in Bytes.
func (b *Builder) IPv4(src, dst netip.Addr, proto uint8, ttl uint8, options []byte) *Builder {
	for len(options)%4 != 0 {
		options = append(options, 0) // EOL padding
	}
	ihl := 5 + len(options)/4
	b.ipStart = len(b.buf)
	hdr := make([]byte, 20)
	hdr[0] = 0x40 | uint8(ihl)
	hdr[8] = ttl
	hdr[9] = proto
	s4 := src.As4()
	d4 := dst.As4()
	copy(hdr[12:16], s4[:])
	copy(hdr[16:20], d4[:])
	b.buf = append(b.buf, hdr...)
	b.buf = append(b.buf, options...)
	return b
}

// UDP appends a UDP header; Length and checksum are fixed up in Bytes.
func (b *Builder) UDP(srcPort, dstPort uint16) *Builder {
	b.l4Start = len(b.buf)
	b.l4Proto = ProtoUDP
	b.buf = binary.BigEndian.AppendUint16(b.buf, srcPort)
	b.buf = binary.BigEndian.AppendUint16(b.buf, dstPort)
	b.buf = append(b.buf, 0, 0, 0, 0) // length, checksum
	return b
}

// TCP appends a minimal TCP header (no options).
func (b *Builder) TCP(srcPort, dstPort uint16, seq, ack uint32, flags uint8) *Builder {
	b.l4Start = len(b.buf)
	b.l4Proto = ProtoTCP
	b.buf = binary.BigEndian.AppendUint16(b.buf, srcPort)
	b.buf = binary.BigEndian.AppendUint16(b.buf, dstPort)
	b.buf = binary.BigEndian.AppendUint32(b.buf, seq)
	b.buf = binary.BigEndian.AppendUint32(b.buf, ack)
	b.buf = append(b.buf, 5<<4, flags)
	b.buf = binary.BigEndian.AppendUint16(b.buf, 65535) // window
	b.buf = append(b.buf, 0, 0, 0, 0)                   // checksum, urgent
	return b
}

// Payload appends raw bytes.
func (b *Builder) Payload(p []byte) *Builder {
	b.buf = append(b.buf, p...)
	return b
}

// Bytes finalises the frame: IPv4 total length and checksum, UDP length,
// and L4 checksums (with pseudo-header), then returns the buffer.
func (b *Builder) Bytes() []byte {
	if b.ipStart >= 0 {
		ip := b.buf[b.ipStart:]
		binary.BigEndian.PutUint16(ip[2:4], uint16(len(ip)))
		binary.BigEndian.PutUint16(ip[10:12], 0)
		binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:int(ip[0]&0x0f)*4]))
	}
	if b.l4Start >= 0 && b.ipStart >= 0 {
		l4 := b.buf[b.l4Start:]
		ip := b.buf[b.ipStart:]
		if b.l4Proto == ProtoUDP {
			binary.BigEndian.PutUint16(l4[4:6], uint16(len(l4)))
			binary.BigEndian.PutUint16(l4[6:8], 0)
			binary.BigEndian.PutUint16(l4[6:8], pseudoChecksum(ip, l4, ProtoUDP))
		} else if b.l4Proto == ProtoTCP {
			binary.BigEndian.PutUint16(l4[16:18], 0)
			binary.BigEndian.PutUint16(l4[16:18], pseudoChecksum(ip, l4, ProtoTCP))
		}
	}
	return b.buf
}

// Checksum is the Internet checksum (RFC 1071) over data.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoChecksum computes a TCP/UDP checksum including the IPv4
// pseudo-header.
func pseudoChecksum(ipHdr, l4 []byte, proto uint8) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], ipHdr[12:16])
	copy(pseudo[4:8], ipHdr[16:20])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(l4)))
	var sum uint32
	addBytes := func(data []byte) {
		for i := 0; i+1 < len(data); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
		}
		if len(data)%2 == 1 {
			sum += uint32(data[len(data)-1]) << 8
		}
	}
	addBytes(pseudo[:])
	addBytes(l4)
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// IPOption type values used by the static-router experiment (§5.2). The
// timestamp option is RFC 781's.
const (
	IPOptEnd       = 0
	IPOptNop       = 1
	IPOptTimestamp = 68
)

// TimestampOption builds an IP timestamp option with n empty 4-byte
// slots, as the static router of §5.2 processes.
func TimestampOption(n int) []byte {
	length := 4 + 4*n
	opt := make([]byte, length)
	opt[0] = IPOptTimestamp
	opt[1] = byte(length)
	opt[2] = 5 // pointer to first free slot
	opt[3] = 0 // flags: timestamps only
	return opt
}
