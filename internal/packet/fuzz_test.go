package packet

import (
	"net/netip"
	"testing"
)

// FuzzDecode checks that the decoder never panics and that accepted
// frames satisfy basic structural invariants — the property a parser at
// the edge of the trust boundary must have.
func FuzzDecode(f *testing.F) {
	f.Add(NewBuilder().
		Ethernet(MAC{1}, MAC{2}, EtherTypeIPv4).
		IPv4(netip.AddrFrom4([4]byte{10, 0, 0, 1}), netip.AddrFrom4([4]byte{10, 0, 0, 2}), ProtoUDP, 64, nil).
		UDP(1, 2).Bytes())
	f.Add(NewBuilder().
		Ethernet(MAC{1}, MAC{2}, EtherTypeIPv4).
		IPv4(netip.AddrFrom4([4]byte{1, 1, 1, 1}), netip.AddrFrom4([4]byte{2, 2, 2, 2}), ProtoTCP, 3, TimestampOption(2)).
		TCP(80, 443, 7, 9, TCPSyn).Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 13))
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d Decoded
		if err := Decode(data, &d); err != nil {
			return // rejected inputs are fine; panics are not
		}
		if !d.Has(LayerEthernet) {
			t.Fatal("accepted frame without Ethernet layer")
		}
		if d.Has(LayerIPv4) {
			if d.IP.IHL < 5 || d.IP.IHL > 15 {
				t.Fatalf("accepted IHL %d", d.IP.IHL)
			}
			if len(d.IP.Options) != int(d.IP.IHL-5)*4 {
				t.Fatalf("options length %d for IHL %d", len(d.IP.Options), d.IP.IHL)
			}
		}
		if d.Has(LayerUDP) && !d.Has(LayerIPv4) {
			t.Fatal("UDP without IPv4")
		}
	})
}
