package packet

import (
	"encoding/binary"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x02, 0, 0, 0, 0, 0x01}
	macB = MAC{0x02, 0, 0, 0, 0, 0x02}
	ipA  = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	ipB  = netip.AddrFrom4([4]byte{192, 168, 1, 7})
)

func TestMACRoundTrip(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x42}
	if got := MACFromUint64(m.Uint64()); got != m {
		t.Errorf("round trip: %v → %v", m, got)
	}
	if m.Uint64() != 0xdeadbeef0042 {
		t.Errorf("Uint64 = %#x", m.Uint64())
	}
	if m.String() != "de:ad:be:ef:00:42" {
		t.Errorf("String = %q", m.String())
	}
}

func TestBuildDecodeUDP(t *testing.T) {
	frame := NewBuilder().
		Ethernet(macB, macA, EtherTypeIPv4).
		IPv4(ipA, ipB, ProtoUDP, 64, nil).
		UDP(1234, 53).
		Payload([]byte("hello")).
		Bytes()

	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Has(LayerEthernet) || !d.Has(LayerIPv4) || !d.Has(LayerUDP) {
		t.Fatalf("layers = %v", d.Layers)
	}
	if d.Eth.Src != macA || d.Eth.Dst != macB || d.Eth.EtherType != EtherTypeIPv4 {
		t.Errorf("eth = %+v", d.Eth)
	}
	if d.IP.Src != ipA || d.IP.Dst != ipB || d.IP.Protocol != ProtoUDP || d.IP.IHL != 5 {
		t.Errorf("ip = %+v", d.IP)
	}
	if d.UDP.SrcPort != 1234 || d.UDP.DstPort != 53 {
		t.Errorf("udp = %+v", d.UDP)
	}
	if string(d.Payload) != "hello" {
		t.Errorf("payload = %q", d.Payload)
	}
}

func TestBuildDecodeTCP(t *testing.T) {
	frame := NewBuilder().
		Ethernet(macB, macA, EtherTypeIPv4).
		IPv4(ipA, ipB, ProtoTCP, 64, nil).
		TCP(4000, 443, 1000, 2000, TCPSyn|TCPAck).
		Bytes()

	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Has(LayerTCP) {
		t.Fatalf("layers = %v", d.Layers)
	}
	if d.TCP.SrcPort != 4000 || d.TCP.DstPort != 443 ||
		d.TCP.Seq != 1000 || d.TCP.Ack != 2000 ||
		d.TCP.Flags != TCPSyn|TCPAck || d.TCP.DataOff != 5 {
		t.Errorf("tcp = %+v", d.TCP)
	}
}

func TestBuildWithIPOptions(t *testing.T) {
	opts := TimestampOption(3)
	frame := NewBuilder().
		Ethernet(macB, macA, EtherTypeIPv4).
		IPv4(ipA, ipB, ProtoUDP, 64, opts).
		UDP(1, 2).
		Bytes()

	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	if d.IP.IHL != 9 { // 5 + 16/4
		t.Errorf("IHL = %d, want 9", d.IP.IHL)
	}
	if len(d.IP.Options) != 16 || d.IP.Options[0] != IPOptTimestamp {
		t.Errorf("options = %v", d.IP.Options)
	}
	if d.UDP.SrcPort != 1 || d.UDP.DstPort != 2 {
		t.Errorf("udp after options = %+v", d.UDP)
	}
}

func TestDecodeNonIPv4(t *testing.T) {
	frame := NewBuilder().Ethernet(Broadcast, macA, EtherTypeARP).Payload([]byte{1, 2, 3}).Bytes()
	var d Decoded
	if err := Decode(frame, &d); err != nil {
		t.Fatal(err)
	}
	if d.Has(LayerIPv4) {
		t.Error("ARP frame decoded as IPv4")
	}
	if len(d.Payload) != 3 {
		t.Errorf("payload = %v", d.Payload)
	}
}

func TestDecodeTruncated(t *testing.T) {
	frame := NewBuilder().
		Ethernet(macB, macA, EtherTypeIPv4).
		IPv4(ipA, ipB, ProtoUDP, 64, nil).
		UDP(1234, 53).
		Bytes()
	for _, cut := range []int{0, 5, 13, 20, 33, 40} {
		if cut >= len(frame) {
			continue
		}
		var d Decoded
		if err := Decode(frame[:cut], &d); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded", cut)
		}
	}
}

func TestDecodeBadVersion(t *testing.T) {
	frame := NewBuilder().
		Ethernet(macB, macA, EtherTypeIPv4).
		IPv4(ipA, ipB, ProtoUDP, 64, nil).
		UDP(1234, 53).
		Bytes()
	frame[14] = 0x65 // version 6
	var d Decoded
	if err := Decode(frame, &d); err == nil {
		t.Error("version 6 must fail IPv4 decode")
	}
	frame[14] = 0x44 // IHL 4
	if err := Decode(frame, &d); err == nil {
		t.Error("IHL 4 must fail")
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	frame := NewBuilder().
		Ethernet(macB, macA, EtherTypeIPv4).
		IPv4(ipA, ipB, ProtoUDP, 64, nil).
		UDP(9, 9).
		Bytes()
	// Verifying the checksum over the header must yield zero.
	if got := Checksum(frame[14:34]); got != 0 {
		t.Errorf("header checksum verify = %#x, want 0", got)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 → checksum 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#x, want 0x220d", got)
	}
	// Odd length handling.
	if got := Checksum([]byte{0xff}); got != ^uint16(0xff00) {
		t.Errorf("odd Checksum = %#x", got)
	}
}

func TestWellKnownOffsets(t *testing.T) {
	frame := NewBuilder().
		Ethernet(macB, macA, EtherTypeIPv4).
		IPv4(ipA, ipB, ProtoUDP, 64, nil).
		UDP(1234, 53).
		Bytes()
	if got := binary.BigEndian.Uint16(frame[OffEtherType:]); got != EtherTypeIPv4 {
		t.Errorf("ethertype at offset = %#x", got)
	}
	if frame[OffIPProto] != ProtoUDP {
		t.Errorf("proto at offset = %d", frame[OffIPProto])
	}
	if got := binary.BigEndian.Uint32(frame[OffSrcIP:]); got != 0x0A000001 {
		t.Errorf("src ip at offset = %#x", got)
	}
	if got := binary.BigEndian.Uint16(frame[OffSrcPort:]); got != 1234 {
		t.Errorf("src port at offset = %d", got)
	}
}

func TestTimestampOption(t *testing.T) {
	opt := TimestampOption(2)
	if len(opt) != 12 || opt[0] != IPOptTimestamp || opt[1] != 12 {
		t.Errorf("opt = %v", opt)
	}
}

// Property: build→decode round trips for random UDP flows.
func TestBuildDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
		dst := netip.AddrFrom4([4]byte{byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
		sp, dp := uint16(r.Intn(65536)), uint16(r.Intn(65536))
		payload := make([]byte, r.Intn(64))
		r.Read(payload)
		frame := NewBuilder().
			Ethernet(macB, macA, EtherTypeIPv4).
			IPv4(src, dst, ProtoUDP, 64, nil).
			UDP(sp, dp).
			Payload(payload).
			Bytes()
		var d Decoded
		if err := Decode(frame, &d); err != nil {
			return false
		}
		return d.IP.Src == src && d.IP.Dst == dst &&
			d.UDP.SrcPort == sp && d.UDP.DstPort == dp &&
			len(d.Payload) == len(payload) &&
			Checksum(frame[14:34]) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayerTypeString(t *testing.T) {
	for _, lt := range []LayerType{LayerEthernet, LayerIPv4, LayerUDP, LayerTCP, LayerPayload} {
		if lt.String() == "" {
			t.Errorf("LayerType(%d) has empty name", int(lt))
		}
	}
}
