package ring_test

import (
	"sync"
	"testing"

	"gobolt/internal/ring"
)

// The handoff microbenchmark: one producer, one consumer, a pointer
// per op, buffers recycled the way the sharded monitor recycles
// batches. BenchmarkHandoffRing is the SPSC queue+freelist pair;
// BenchmarkHandoffChan is the channel + sync.Pool hop it replaced.
// The ring must report 0 allocs/op — the freelist recycles without
// sync.Pool or GC involvement.

type hopBuf struct {
	seq uint64
	pad [7]uint64
}

func BenchmarkHandoffRing(b *testing.B) {
	queue, err := ring.New[*hopBuf](4)
	if err != nil {
		b.Fatal(err)
	}
	free, err := ring.New[*hopBuf](8)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < free.Cap(); i++ {
		free.TryPush(&hopBuf{})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			buf, ok := queue.Pop()
			if !ok {
				return
			}
			free.TryPush(buf)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, ok := free.TryPop()
		if !ok {
			buf = &hopBuf{}
		}
		buf.seq = uint64(i)
		queue.Push(buf)
	}
	queue.Close()
	wg.Wait()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/handoff")
}

func BenchmarkHandoffChan(b *testing.B) {
	queue := make(chan *hopBuf, 4)
	var pool sync.Pool
	pool.New = func() any { return &hopBuf{} }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for buf := range queue {
			pool.Put(buf)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := pool.Get().(*hopBuf)
		buf.seq = uint64(i)
		queue <- buf
	}
	close(queue)
	wg.Wait()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/handoff")
}
