// Package ring provides a bounded lock-free single-producer
// single-consumer queue — the shard-ingest hop of the sharded monitor
// (DESIGN.md §5j). One goroutine may push, one may pop; under that
// discipline every operation is wait-free when the queue is neither
// full nor empty, and the boundary cases spin briefly before parking so
// an idle consumer (or a producer against a stalled consumer) does not
// burn a core.
//
// The memory-ordering argument is the classic SPSC one, expressed in
// Go's memory model: slots are plain memory; `tail` is written only by
// the producer and `head` only by the consumer, both via sync/atomic
// (sequentially consistent, hence at least release/acquire). A
// producer writes slots[t&mask] and THEN stores tail=t+1; a consumer
// that loads tail and observes t+1 therefore observes the slot write
// too. Symmetrically the consumer clears the slot and THEN stores
// head=h+1, so a producer observing the new head may reuse the slot.
// Head and tail live on separate cache lines (padded below) and each
// side keeps a local snapshot of the other's cursor, so the fast path
// touches the shared line only when the snapshot says full/empty.
package ring

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

const (
	cacheLine = 64
	// MaxCap bounds a ring's capacity; rings are queue hops, not buffers.
	MaxCap = 1 << 20
	// spinPasses bounds the busy-wait at the full/empty boundary before
	// the waiter parks. Every few passes it yields the processor, which
	// on a single-P runtime hands the core straight to the peer — the
	// common resolution — while still bounding the burn before a real
	// park when the peer is genuinely stalled.
	spinPasses = 64
)

// SPSC is a bounded lock-free single-producer single-consumer ring.
// Exactly one goroutine may call the producer side (TryPush, Push,
// Close) and exactly one the consumer side (TryPop, Pop); the two may
// be — and usually are — different goroutines. The zero value is not
// usable; construct with New.
type SPSC[T any] struct {
	mask  uint64
	slots []T

	_         [cacheLine]byte
	head      atomic.Uint64 // next slot to pop; written by the consumer only
	tailCache uint64        // consumer's snapshot of tail
	_         [cacheLine]byte
	tail      atomic.Uint64 // next slot to push; written by the producer only
	headCache uint64        // producer's snapshot of head
	_         [cacheLine]byte

	closed     atomic.Bool
	consParked atomic.Bool
	prodParked atomic.Bool
	consWake   chan struct{}
	prodWake   chan struct{}
}

// New returns an SPSC ring holding at least capacity elements, rounded
// up to the next power of two (mask indexing needs it; the extra slots
// only deepen the queue).
func New[T any](capacity int) (*SPSC[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("ring: capacity %d must be positive", capacity)
	}
	if capacity > MaxCap {
		return nil, fmt.Errorf("ring: capacity %d exceeds the %d cap", capacity, MaxCap)
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &SPSC[T]{
		mask:     uint64(c - 1),
		slots:    make([]T, c),
		consWake: make(chan struct{}, 1),
		prodWake: make(chan struct{}, 1),
	}, nil
}

// Cap is the ring's slot count (the rounded-up capacity).
func (r *SPSC[T]) Cap() int { return len(r.slots) }

// Len is the number of queued elements at some instant during the
// call; exact only from the producer or consumer goroutine.
func (r *SPSC[T]) Len() int { return int(r.tail.Load() - r.head.Load()) }

// TryPush enqueues v without blocking. It fails (returns false) when
// the ring is full or closed. Producer side.
func (r *SPSC[T]) TryPush(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.headCache >= uint64(len(r.slots)) {
		r.headCache = r.head.Load()
		if t-r.headCache >= uint64(len(r.slots)) {
			return false
		}
	}
	r.slots[t&r.mask] = v
	r.tail.Store(t + 1) // publishes the slot write (release)
	if r.consParked.Load() {
		select {
		case r.consWake <- struct{}{}:
		default:
		}
	}
	return true
}

// Push enqueues v, spinning then parking while the ring is full. It
// returns false only when the ring is (or becomes) closed. Producer
// side.
func (r *SPSC[T]) Push(v T) bool {
	for {
		if r.TryPush(v) {
			return true
		}
		if r.closed.Load() {
			return false
		}
		r.waitNotFull()
	}
}

// TryPop dequeues without blocking; ok is false when the ring is
// empty. Consumer side.
func (r *SPSC[T]) TryPop() (v T, ok bool) {
	h := r.head.Load()
	if h == r.tailCache {
		r.tailCache = r.tail.Load()
		if h == r.tailCache {
			return v, false
		}
	}
	var zero T
	v = r.slots[h&r.mask]
	r.slots[h&r.mask] = zero
	r.head.Store(h + 1) // releases the slot back to the producer
	if r.prodParked.Load() {
		select {
		case r.prodWake <- struct{}{}:
		default:
		}
	}
	return v, true
}

// Pop dequeues, spinning then parking while the ring is empty. ok is
// false only once the ring is closed AND fully drained — every element
// pushed before Close is still delivered. Consumer side.
func (r *SPSC[T]) Pop() (v T, ok bool) {
	for {
		if v, ok = r.TryPop(); ok {
			return v, true
		}
		if r.closed.Load() {
			// Close happens after the producer's final Push; re-reading
			// tail (inside TryPop) after observing closed therefore sees
			// every pushed element.
			return r.TryPop()
		}
		r.waitNotEmpty()
	}
}

// Close marks the ring closed and wakes both sides. Pending elements
// remain poppable; further pushes fail. Producer side (or any
// goroutine once the producer has stopped pushing).
func (r *SPSC[T]) Close() {
	r.closed.Store(true)
	select {
	case r.consWake <- struct{}{}:
	default:
	}
	select {
	case r.prodWake <- struct{}{}:
	default:
	}
}

// Closed reports whether Close has been called.
func (r *SPSC[T]) Closed() bool { return r.closed.Load() }

// waitNotEmpty spins briefly, then parks until a push or Close. The
// park is lost-wakeup-free by the flag/recheck protocol: the consumer
// stores consParked=true, re-checks the condition, and only then
// blocks; a producer that makes the condition true afterwards must —
// by sequential consistency of the atomics — observe consParked=true
// and send the (buffered, never-dropped) wake token.
func (r *SPSC[T]) waitNotEmpty() {
	h := r.head.Load()
	for i := 0; i < spinPasses; i++ {
		if r.tail.Load() != h || r.closed.Load() {
			return
		}
		if i&7 == 7 {
			runtime.Gosched()
		}
	}
	r.consParked.Store(true)
	if r.tail.Load() != h || r.closed.Load() {
		r.consParked.Store(false)
		return
	}
	<-r.consWake
	r.consParked.Store(false)
}

// waitNotFull is waitNotEmpty's producer-side mirror.
func (r *SPSC[T]) waitNotFull() {
	t := r.tail.Load()
	for i := 0; i < spinPasses; i++ {
		if r.head.Load()+uint64(len(r.slots)) != t || r.closed.Load() {
			return
		}
		if i&7 == 7 {
			runtime.Gosched()
		}
	}
	r.prodParked.Store(true)
	if r.head.Load()+uint64(len(r.slots)) != t || r.closed.Load() {
		r.prodParked.Store(false)
		return
	}
	<-r.prodWake
	r.prodParked.Store(false)
}
