package ring_test

import (
	"sync"
	"testing"

	"gobolt/internal/ring"
)

func mustNew(t *testing.T, cap int) *ring.SPSC[int] {
	t.Helper()
	r, err := ring.New[int](cap)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {7, 8}, {8, 8}, {9, 16}, {1000, 1024},
	} {
		if got := mustNew(t, tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if _, err := ring.New[int](0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := ring.New[int](-3); err == nil {
		t.Error("New(-3) should fail")
	}
	if _, err := ring.New[int](ring.MaxCap + 1); err == nil {
		t.Error("New(MaxCap+1) should fail")
	}
}

// TestFIFOWraparound pushes and pops many more elements than the
// capacity through a tiny ring, single-threaded, so the cursors wrap
// the slot array hundreds of times; order and content must survive.
func TestFIFOWraparound(t *testing.T) {
	r := mustNew(t, 4)
	next := 0
	for pushed := 0; pushed < 1000; {
		// Fill to capacity, then drain half — exercises every occupancy.
		for r.Len() < r.Cap() && pushed < 1000 {
			if !r.TryPush(pushed) {
				t.Fatalf("TryPush(%d) failed below capacity (len %d)", pushed, r.Len())
			}
			pushed++
		}
		for r.Len() > r.Cap()/2 {
			v, ok := r.TryPop()
			if !ok {
				t.Fatalf("TryPop failed with %d queued", r.Len())
			}
			if v != next {
				t.Fatalf("popped %d, want %d", v, next)
			}
			next++
		}
	}
	for {
		v, ok := r.TryPop()
		if !ok {
			break
		}
		if v != next {
			t.Fatalf("drain popped %d, want %d", v, next)
		}
		next++
	}
	if next != 1000 {
		t.Fatalf("popped %d elements, want 1000", next)
	}
}

// TestFullEmptyBoundary pins the boundary semantics: TryPush fails
// exactly at capacity, TryPop exactly at empty, and both recover after
// the other side moves.
func TestFullEmptyBoundary(t *testing.T) {
	r := mustNew(t, 4)
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on an empty ring succeeded")
	}
	for i := 0; i < r.Cap(); i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) failed below capacity", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("TryPush on a full ring succeeded")
	}
	if v, ok := r.TryPop(); !ok || v != 0 {
		t.Fatalf("TryPop after full = (%d, %v), want (0, true)", v, ok)
	}
	if !r.TryPush(99) {
		t.Fatal("TryPush failed right after a pop freed a slot")
	}
	if r.Len() != r.Cap() {
		t.Fatalf("Len %d, want %d", r.Len(), r.Cap())
	}
}

// TestCloseDrain: elements pushed before Close remain poppable; Pop
// reports done only once drained; pushes after Close fail.
func TestCloseDrain(t *testing.T) {
	r := mustNew(t, 8)
	for i := 0; i < 5; i++ {
		r.TryPush(i)
	}
	r.Close()
	if r.TryPush(5) {
		t.Fatal("TryPush after Close succeeded")
	}
	if r.Push(5) {
		t.Fatal("Push after Close succeeded")
	}
	for i := 0; i < 5; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop %d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on a closed, drained ring succeeded")
	}
	if !r.Closed() {
		t.Fatal("Closed() false after Close")
	}
}

// TestCloseWhileFull closes the ring under a producer blocked in Push
// against a full ring: the push must unblock reporting failure, and
// the consumer must still drain every slot that made it in.
func TestCloseWhileFull(t *testing.T) {
	r := mustNew(t, 2)
	for i := 0; i < r.Cap(); i++ {
		r.TryPush(i)
	}
	pushed := make(chan bool)
	go func() { pushed <- r.Push(100) }() // blocks: ring is full
	r.Close()
	if ok := <-pushed; ok {
		t.Fatal("Push into a full ring succeeded despite Close")
	}
	for i := 0; i < r.Cap(); i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("drain %d = (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("closed ring yielded an element beyond the drain")
	}
}

// TestConcurrentTransfer streams a large sequence through a tiny ring
// with blocking Push/Pop on separate goroutines — the real usage shape,
// exercising wraparound, both park paths, and (under -race) the
// slot-handover ordering.
func TestConcurrentTransfer(t *testing.T) {
	const n = 200_000
	r := mustNew(t, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	var got []int
	go func() {
		defer wg.Done()
		for {
			v, ok := r.Pop()
			if !ok {
				return
			}
			got = append(got, v)
		}
	}()
	for i := 0; i < n; i++ {
		if !r.Push(i) {
			t.Fatalf("Push(%d) failed on an open ring", i)
		}
	}
	r.Close()
	wg.Wait()
	if len(got) != n {
		t.Fatalf("received %d elements, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d = %d, out of order", i, v)
		}
	}
}

// payload is the freelist test's canary: a batch-like value whose
// contents must stay internally consistent through recycling.
type payload struct {
	seq  uint64
	body [6]uint64
}

// TestFreelistReuseAfterPublish runs the monitor's paired-ring recycle
// protocol: the producer draws buffers from a freelist ring (allocating
// only when it is empty), stamps and publishes them on the queue ring;
// the consumer validates and recycles them. A slot reused before the
// consumer finished, or a publish that outruns the slot write, shows up
// as a torn payload; the freelist must also bound allocations to
// queue-depth + in-flight, proving buffers genuinely recycle.
func TestFreelistReuseAfterPublish(t *testing.T) {
	const n = 100_000
	queue, err := ring.New[*payload](4)
	if err != nil {
		t.Fatal(err)
	}
	free, err := ring.New[*payload](8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var consumed int
	go func() {
		defer wg.Done()
		for {
			p, ok := queue.Pop()
			if !ok {
				return
			}
			for i, v := range p.body {
				if v != p.seq+uint64(i) {
					t.Errorf("seq %d: torn payload at %d: got %d", p.seq, i, v)
					return
				}
			}
			consumed++
			p.seq = 0 // dirty the buffer so stale reuse is visible
			free.TryPush(p)
		}
	}()
	allocs := 0
	for i := uint64(0); i < n; i++ {
		p, ok := free.TryPop()
		if !ok {
			p = &payload{}
			allocs++
		}
		p.seq = i
		for j := range p.body {
			p.body[j] = i + uint64(j)
		}
		if !queue.Push(p) {
			t.Fatal("queue closed early")
		}
	}
	queue.Close()
	wg.Wait()
	if consumed != n {
		t.Fatalf("consumed %d of %d payloads", consumed, n)
	}
	// Queue cap (4) in flight + freelist cap (8) parked + 1 in each
	// hand: anything near n means recycling never happened.
	if max := queue.Cap() + free.Cap() + 2; allocs > max {
		t.Errorf("%d allocations for %d handoffs; freelist recycling is broken (want <= %d)", allocs, n, max)
	}
}

// FuzzSPSC drives a fuzzer-chosen op sequence against a slice-backed
// model queue, single-threaded (the SPSC contract allows one goroutine
// to play both roles): TryPush/TryPop results and contents must match
// the model exactly, across wraparound, boundaries, and Close.
func FuzzSPSC(f *testing.F) {
	f.Add(uint8(2), []byte{0, 0, 1, 0, 1, 1, 2})
	f.Add(uint8(1), []byte{0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(uint8(5), []byte{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 0, 1})
	f.Fuzz(func(t *testing.T, capIn uint8, ops []byte) {
		capacity := int(capIn)%16 + 1
		r, err := ring.New[int](capacity)
		if err != nil {
			t.Fatal(err)
		}
		var model []int
		closed := false
		next := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				ok := r.TryPush(next)
				wantOK := !closed && len(model) < r.Cap()
				if ok != wantOK {
					t.Fatalf("TryPush(%d) = %v, want %v (len %d, cap %d, closed %v)",
						next, ok, wantOK, len(model), r.Cap(), closed)
				}
				if ok {
					model = append(model, next)
				}
				next++
			case 1: // pop
				v, ok := r.TryPop()
				if wantOK := len(model) > 0; ok != wantOK {
					t.Fatalf("TryPop = %v, want %v (model len %d)", ok, wantOK, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("TryPop = %d, want %d", v, model[0])
					}
					model = model[1:]
				}
			case 2: // close (idempotent)
				r.Close()
				closed = true
			}
			if r.Len() != len(model) {
				t.Fatalf("Len = %d, model %d", r.Len(), len(model))
			}
		}
		// Drain: everything still in the model must come out in order.
		r.Close()
		for _, want := range model {
			v, ok := r.Pop()
			if !ok || v != want {
				t.Fatalf("drain Pop = (%d, %v), want (%d, true)", v, ok, want)
			}
		}
		if _, ok := r.Pop(); ok {
			t.Fatal("Pop past the drain succeeded")
		}
	})
}
