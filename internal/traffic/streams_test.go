package traffic

import (
	"bytes"
	"testing"
)

// streamTag identifies which stream a packet came from by its full wire
// bytes minus the timestamp (stream generators never reuse Data slices
// across streams, but comparing bytes keeps the test honest).
func findStream(streams [][]Packet, p Packet) (stream, pos int) {
	for si, s := range streams {
		for pi, sp := range s {
			if bytes.Equal(sp.Data, p.Data) && sp.InPort == p.InPort {
				return si, pi
			}
		}
	}
	return -1, -1
}

func TestInterleavePreservesPerStreamOrder(t *testing.T) {
	streams := UDPStreams(StreamConfig{Streams: 5, PacketsPerStream: 40, Seed: 1})
	merged := Interleave(7, 1_000, 500, streams...)
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	if len(merged) != total {
		t.Fatalf("merged %d packets, want %d", len(merged), total)
	}
	// Per-stream order: each stream's packets appear as a subsequence.
	next := make([]int, len(streams))
	for i, p := range merged {
		matched := false
		for si, s := range streams {
			if next[si] < len(s) && &s[next[si]].Data[0] == &p.Data[0] {
				next[si]++
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("merged packet %d is not the next packet of any stream", i)
		}
	}
	for si, n := range next {
		if n != len(streams[si]) {
			t.Fatalf("stream %d: consumed %d of %d packets", si, n, len(streams[si]))
		}
	}
	// Timestamps are re-stamped monotonically.
	for i, p := range merged {
		want := uint64(1_000) + uint64(i)*500
		if p.Time != want {
			t.Fatalf("packet %d time = %d, want %d", i, p.Time, want)
		}
	}
}

func TestInterleaveDeterministicAndSeedSensitive(t *testing.T) {
	streams := BridgeStreams(StreamConfig{Streams: 4, PacketsPerStream: 25, Seed: 2})
	a := Interleave(11, 0, 0, streams...)
	b := Interleave(11, 0, 0, streams...)
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) || a[i].InPort != b[i].InPort {
			t.Fatalf("same seed diverges at packet %d", i)
		}
	}
	c := Interleave(12, 0, 0, streams...)
	same := true
	for i := range a {
		if !bytes.Equal(a[i].Data, c[i].Data) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the identical interleaving (possible but wildly unlikely)")
	}
}

func TestUDPStreamsDistinctFlowIdentity(t *testing.T) {
	streams := UDPStreams(StreamConfig{Streams: 8, PacketsPerStream: 3, InPorts: 2, Seed: 0})
	if len(streams) != 8 {
		t.Fatalf("streams = %d", len(streams))
	}
	// Each stream's packets share one L3 identity; identities are
	// pairwise distinct across streams. FlowKey-relevant bytes for IPv4:
	// protocol (offset 23) and addresses (26:34).
	ids := make(map[string]int)
	for si, s := range streams {
		id := string(s[0].Data[23:24]) + string(s[0].Data[26:34])
		for pi, p := range s {
			got := string(p.Data[23:24]) + string(p.Data[26:34])
			if got != id {
				t.Fatalf("stream %d packet %d changes flow identity", si, pi)
			}
		}
		if prev, dup := ids[id]; dup {
			t.Fatalf("streams %d and %d share a flow identity", prev, si)
		}
		ids[id] = si
	}
}

func TestBridgeStreamsFixedIPPairBothDirections(t *testing.T) {
	streams := BridgeStreams(StreamConfig{Streams: 6, PacketsPerStream: 10, Seed: 0})
	ids := make(map[string]int)
	for si, s := range streams {
		id := string(s[0].Data[23:24]) + string(s[0].Data[26:34])
		macs := make(map[string]bool)
		for pi, p := range s {
			got := string(p.Data[23:24]) + string(p.Data[26:34])
			if got != id {
				t.Fatalf("stream %d packet %d changes L3 identity across direction flip", si, pi)
			}
			macs[string(p.Data[6:12])] = true
		}
		if len(macs) != 2 {
			t.Fatalf("stream %d uses %d source MACs, want 2 (both directions)", si, len(macs))
		}
		if prev, dup := ids[id]; dup {
			t.Fatalf("streams %d and %d share an L3 identity", prev, si)
		}
		ids[id] = si
	}
}
