// Package traffic generates the workloads the evaluation replays — the
// stand-in for the paper's MoonGen traffic generator and, for the
// adversarial generators, for CASTAN [paper ref 32].
//
// All generators are deterministic given their seed, produce one packet
// at a time with explicit timestamps (the paper replays "one packet at a
// time, to avoid any queuing or pipelining effects"), and can be
// exported to PCAP.
package traffic

import (
	"math/rand"
	"net/netip"
	"time"

	"gobolt/internal/dslib"
	"gobolt/internal/packet"
	"gobolt/internal/pcap"
)

// Packet is one workload packet: wire bytes plus arrival metadata.
type Packet struct {
	Data   []byte
	Time   uint64 // arrival time, ns
	InPort uint64
}

// ToPCAP converts a workload to pcap records (for cmd/trafficgen and the
// Distiller's file-based interface).
func ToPCAP(pkts []Packet) []pcap.Record {
	recs := make([]pcap.Record, len(pkts))
	for i, p := range pkts {
		recs[i] = pcap.Record{
			Time: time.Unix(0, int64(p.Time)).UTC(),
			Data: p.Data,
		}
	}
	return recs
}

// FromPCAP converts pcap records into a workload arriving on inPort.
func FromPCAP(recs []pcap.Record, inPort uint64) []Packet {
	pkts := make([]Packet, len(recs))
	for i, r := range recs {
		pkts[i] = Packet{Data: r.Data, Time: uint64(r.Time.UnixNano()), InPort: inPort}
	}
	return pkts
}

// UDPFlowConfig drives the general-purpose flow workload generator.
type UDPFlowConfig struct {
	// Packets to generate.
	Packets int
	// Flows is the size of the flow population packets are drawn from.
	Flows int
	// NewFlowEvery inserts a brand-new flow every k packets (churn);
	// 0 disables churn.
	NewFlowEvery int
	// StartNS and GapNS control timestamps (GapNS per packet).
	StartNS, GapNS uint64
	// InPort for every packet.
	InPort uint64
	// Seed for determinism.
	Seed int64
	// Proto defaults to UDP.
	TCP bool
	// RoundRobin draws flows in order instead of randomly, guaranteeing
	// every flow in the population is visited (class-pure warmups).
	RoundRobin bool
}

// UDPFlows generates uniform-random traffic over a flow population, the
// paper's "uniform random test workload".
func UDPFlows(cfg UDPFlowConfig) []Packet {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.GapNS == 0 {
		cfg.GapNS = 10_000 // 100 kpps
	}
	type flow struct {
		src, dst [4]byte
		sp, dp   uint16
	}
	newFlow := func() flow {
		return flow{
			src: [4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
			dst: [4]byte{192, 168, byte(rng.Intn(256)), byte(rng.Intn(256))},
			sp:  uint16(1024 + rng.Intn(60000)),
			dp:  uint16(1 + rng.Intn(1024)),
		}
	}
	flows := make([]flow, cfg.Flows)
	for i := range flows {
		flows[i] = newFlow()
	}
	var out []Packet
	now := cfg.StartNS
	for i := 0; i < cfg.Packets; i++ {
		if cfg.NewFlowEvery > 0 && i%cfg.NewFlowEvery == 0 {
			flows[rng.Intn(len(flows))] = newFlow()
		}
		f := flows[rng.Intn(len(flows))]
		if cfg.RoundRobin {
			f = flows[i%len(flows)]
		}
		b := packet.NewBuilder().Ethernet(
			packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2}, packet.EtherTypeIPv4)
		src := addr4(f.src)
		dst := addr4(f.dst)
		if cfg.TCP {
			b = b.IPv4(src, dst, packet.ProtoTCP, 64, nil).TCP(f.sp, f.dp, 1, 1, packet.TCPAck)
		} else {
			b = b.IPv4(src, dst, packet.ProtoUDP, 64, nil).UDP(f.sp, f.dp)
		}
		out = append(out, Packet{Data: b.Bytes(), Time: now, InPort: cfg.InPort})
		now += cfg.GapNS
	}
	return out
}

// BridgeConfig drives the L2 workload generator.
type BridgeConfig struct {
	Packets int
	// MACs is the station population size.
	MACs int
	// BroadcastFraction in [0,1] of frames with the broadcast DST.
	BroadcastFraction float64
	// Ports the stations are spread over.
	Ports          uint64
	StartNS, GapNS uint64
	Seed           int64
	// RoundRobin pairs stations deterministically (src i, dst i+1), so a
	// warmup pass visits every station.
	RoundRobin bool
}

// BridgeFrames generates L2 learning-bridge traffic: random known
// stations talking to each other, with an optional broadcast share.
func BridgeFrames(cfg BridgeConfig) []Packet {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.GapNS == 0 {
		cfg.GapNS = 10_000
	}
	if cfg.Ports == 0 {
		cfg.Ports = 4
	}
	macs := make([]packet.MAC, cfg.MACs)
	for i := range macs {
		macs[i] = packet.MAC{0x02, byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i), byte(rng.Intn(256))}
	}
	var out []Packet
	now := cfg.StartNS
	for i := 0; i < cfg.Packets; i++ {
		src := macs[rng.Intn(len(macs))]
		dst := macs[rng.Intn(len(macs))]
		if cfg.RoundRobin {
			src = macs[i%len(macs)]
			dst = macs[(i+1)%len(macs)]
		}
		if rng.Float64() < cfg.BroadcastFraction {
			dst = packet.Broadcast
		}
		frame := packet.NewBuilder().
			Ethernet(dst, src, packet.EtherTypeIPv4).
			IPv4(addr4([4]byte{10, 0, 0, 1}), addr4([4]byte{10, 0, 0, 2}), packet.ProtoUDP, 64, nil).
			UDP(uint16(1000+i%100), 80).
			Bytes()
		out = append(out, Packet{Data: frame, Time: now, InPort: uint64(rng.Intn(int(cfg.Ports)))})
		now += cfg.GapNS
	}
	return out
}

// LPMConfig drives the router workload generator.
type LPMConfig struct {
	Packets int
	// Dsts lists destination addresses to draw from (e.g. addresses
	// matching ≤24-bit prefixes for the LPM2 class, or >24-bit ones for
	// LPM1 — the CASTAN-style constrained classes).
	Dsts           []uint32
	StartNS, GapNS uint64
	Seed           int64
}

// LPMPackets generates IPv4 traffic towards the given destinations.
func LPMPackets(cfg LPMConfig) []Packet {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.GapNS == 0 {
		cfg.GapNS = 10_000
	}
	var out []Packet
	now := cfg.StartNS
	for i := 0; i < cfg.Packets; i++ {
		dst := cfg.Dsts[rng.Intn(len(cfg.Dsts))]
		frame := packet.NewBuilder().
			Ethernet(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2}, packet.EtherTypeIPv4).
			IPv4(addr4([4]byte{10, 9, 9, 9}), addr4(u32bytes(dst)), packet.ProtoUDP, 64, nil).
			UDP(5000, 53).
			Bytes()
		out = append(out, Packet{Data: frame, Time: now, InPort: 0})
		now += cfg.GapNS
	}
	return out
}

// Heartbeat builds one LB backend heartbeat packet (UDP to the
// heartbeat port, backend index in the low byte of the source address).
func Heartbeat(backend uint64, hbPort uint16, t uint64) Packet {
	frame := packet.NewBuilder().
		Ethernet(packet.MAC{2, 0, 0, 0, 0, 9}, packet.MAC{2, 0, 0, 0, 1, byte(backend)}, packet.EtherTypeIPv4).
		IPv4(addr4([4]byte{172, 16, 0, byte(backend)}), addr4([4]byte{172, 16, 0, 254}), packet.ProtoUDP, 64, nil).
		UDP(4000, hbPort).
		Bytes()
	return Packet{Data: frame, Time: t, InPort: 1}
}

// NonIPv4 builds an invalid (ARP) frame — the paper's "invalid packets"
// class.
func NonIPv4(t, inPort uint64) Packet {
	frame := packet.NewBuilder().
		Ethernet(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2}, packet.EtherTypeARP).
		Payload(make([]byte, 28)).
		Bytes()
	return Packet{Data: frame, Time: t, InPort: inPort}
}

// WithOptions builds an IPv4 packet carrying n timestamp-option slots
// (the §5.2 chain workload).
func WithOptions(n int, t, inPort uint64) Packet {
	var opts []byte
	for i := 0; i < n; i++ {
		opts = append(opts, 68, 4, 5, 0) // one 4-byte timestamp slot each
	}
	frame := packet.NewBuilder().
		Ethernet(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2}, packet.EtherTypeIPv4).
		IPv4(addr4([4]byte{10, 1, 2, 3}), addr4([4]byte{192, 168, 1, 1}), packet.ProtoUDP, 64, opts).
		UDP(1234, 80).
		Bytes()
	return Packet{Data: frame, Time: t, InPort: inPort}
}

// AdversarialLPM is the CASTAN-substitute for the LPM router: given
// whitebox access to the DIR-24-8 table, it emits traffic whose every
// packet takes the expensive two-read path (the paper's "unconstrained
// traffic" class LPM1, which CASTAN generated). It returns nil when the
// table has no extended slots to attack.
func AdversarialLPM(table *dslib.Dir248, packets int, startNS, gapNS uint64, seed int64) []Packet {
	slots := table.ExtendedSlots()
	if len(slots) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	dsts := make([]uint32, 0, packets)
	for i := 0; i < packets; i++ {
		slot := slots[rng.Intn(len(slots))]
		dsts = append(dsts, slot<<8|uint32(rng.Intn(256)))
	}
	return LPMPackets(LPMConfig{
		Packets: packets, Dsts: dsts, StartNS: startNS, GapNS: gapNS, Seed: seed,
	})
}

// CollidingMACs is the CASTAN-substitute for the bridge: it brute-force
// searches source MACs that fall into the same bucket of the target
// table (knowing the hash algorithm, and — white-box worst case — the
// current secret). With requireTag it additionally demands equal 16-bit
// tags (full hash collisions, the c PCV); that search is only feasible
// for small tables.
func CollidingMACs(table *dslib.FlowTable, count int, requireTag bool, seed int64) []packet.MAC {
	rng := rand.New(rand.NewSource(seed))
	var out []packet.MAC
	wantBucket, wantTag := -1, uint16(0)
	for tries := 0; len(out) < count && tries < 200_000_000; tries++ {
		raw := rng.Uint64() & 0xFFFF_FFFF_FFFF
		bucket, tag := table.BucketOf([]uint64{raw})
		if wantBucket < 0 {
			wantBucket, wantTag = bucket, tag
			out = append(out, packet.MACFromUint64(raw))
			continue
		}
		if bucket != wantBucket {
			continue
		}
		if requireTag && tag != wantTag {
			continue
		}
		out = append(out, packet.MACFromUint64(raw))
	}
	return out
}

// CollidingFrames turns CollidingMACs into a replayable bridge workload:
// each attack station (a source MAC colliding into one bucket of the
// target table) sends one learnable frame towards a fixed victim, so the
// bucket's chain grows by one per frame — the §5.2 rehash attack trace.
// Returns nil when the collision search finds nothing.
func CollidingFrames(table *dslib.FlowTable, packets int, startNS, gapNS uint64, seed int64) []Packet {
	macs := CollidingMACs(table, packets, false, seed)
	if len(macs) == 0 {
		return nil
	}
	if gapNS == 0 {
		gapNS = 10_000
	}
	var out []Packet
	now := startNS
	for i := 0; i < packets; i++ {
		frame := packet.NewBuilder().
			Ethernet(packet.MAC{2, 0, 0, 0, 0, 2}, macs[i%len(macs)], packet.EtherTypeIPv4).
			IPv4(addr4([4]byte{10, 0, 0, 1}), addr4([4]byte{10, 0, 0, 2}), packet.ProtoUDP, 64, nil).
			UDP(uint16(1000+i%100), 80).
			Bytes()
		out = append(out, Packet{Data: frame, Time: now, InPort: uint64(i % 2)})
		now += gapNS
	}
	return out
}

func addr4(b [4]byte) netip.Addr { return netip.AddrFrom4(b) }

func u32bytes(v uint32) [4]byte {
	return [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}
