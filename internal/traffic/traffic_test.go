package traffic

import (
	"bytes"
	"testing"

	"gobolt/internal/dslib"
	"gobolt/internal/nfir"
	"gobolt/internal/packet"
	"gobolt/internal/pcap"
	"gobolt/internal/perf"
)

func decodeAll(t *testing.T, pkts []Packet) []packet.Decoded {
	t.Helper()
	out := make([]packet.Decoded, len(pkts))
	for i, p := range pkts {
		if err := packet.Decode(p.Data, &out[i]); err != nil {
			t.Fatalf("packet %d does not decode: %v", i, err)
		}
	}
	return out
}

func TestUDPFlowsWellFormed(t *testing.T) {
	pkts := UDPFlows(UDPFlowConfig{Packets: 200, Flows: 16, Seed: 1, StartNS: 100, GapNS: 50})
	if len(pkts) != 200 {
		t.Fatalf("packets = %d", len(pkts))
	}
	ds := decodeAll(t, pkts)
	flows := map[[2]uint32]bool{}
	for i, d := range ds {
		if !d.Has(packet.LayerUDP) {
			t.Fatalf("packet %d not UDP", i)
		}
		src := d.IP.Src.As4()
		dst := d.IP.Dst.As4()
		flows[[2]uint32{be32(src), be32(dst)}] = true
	}
	if len(flows) > 16 {
		t.Errorf("flow population = %d, want ≤ 16", len(flows))
	}
	// Timestamps are monotone with the configured gap.
	for i := 1; i < len(pkts); i++ {
		if pkts[i].Time != pkts[i-1].Time+50 {
			t.Fatalf("gap broken at %d", i)
		}
	}
}

func be32(b [4]byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func TestUDPFlowsDeterministic(t *testing.T) {
	a := UDPFlows(UDPFlowConfig{Packets: 50, Flows: 8, Seed: 42})
	b := UDPFlows(UDPFlowConfig{Packets: 50, Flows: 8, Seed: 42})
	for i := range a {
		if !bytes.Equal(a[i].Data, b[i].Data) {
			t.Fatalf("packet %d differs across identical seeds", i)
		}
	}
	c := UDPFlows(UDPFlowConfig{Packets: 50, Flows: 8, Seed: 43})
	same := true
	for i := range a {
		if !bytes.Equal(a[i].Data, c[i].Data) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical traffic")
	}
}

func TestUDPFlowsRoundRobinCoversPopulation(t *testing.T) {
	pkts := UDPFlows(UDPFlowConfig{Packets: 32, Flows: 32, RoundRobin: true, Seed: 7})
	ds := decodeAll(t, pkts)
	seen := map[[2]uint16]bool{}
	for _, d := range ds {
		seen[[2]uint16{d.UDP.SrcPort, d.UDP.DstPort}] = true
	}
	if len(seen) != 32 {
		t.Errorf("round robin covered %d flows, want 32", len(seen))
	}
}

func TestUDPFlowsChurn(t *testing.T) {
	noChurn := UDPFlows(UDPFlowConfig{Packets: 500, Flows: 8, Seed: 3})
	churn := UDPFlows(UDPFlowConfig{Packets: 500, Flows: 8, NewFlowEvery: 5, Seed: 3})
	count := func(pkts []Packet) int {
		seen := map[string]bool{}
		for _, p := range pkts {
			seen[string(p.Data[26:38])] = true
		}
		return len(seen)
	}
	if count(churn) <= count(noChurn) {
		t.Errorf("churn should produce more distinct flows: %d vs %d", count(churn), count(noChurn))
	}
}

func TestBridgeFramesClasses(t *testing.T) {
	pkts := BridgeFrames(BridgeConfig{Packets: 300, MACs: 16, BroadcastFraction: 0.5, Ports: 4, Seed: 2})
	ds := decodeAll(t, pkts)
	var bcast int
	for i, d := range ds {
		if d.Eth.Dst == packet.Broadcast {
			bcast++
		}
		if pkts[i].InPort > 3 {
			t.Fatalf("packet %d in-port %d", i, pkts[i].InPort)
		}
	}
	if bcast < 100 || bcast > 200 {
		t.Errorf("broadcast fraction off: %d/300", bcast)
	}

	rr := BridgeFrames(BridgeConfig{Packets: 16, MACs: 16, Ports: 4, RoundRobin: true, Seed: 2})
	srcs := map[packet.MAC]bool{}
	for _, d := range decodeAll(t, rr) {
		srcs[d.Eth.Src] = true
	}
	if len(srcs) != 16 {
		t.Errorf("round robin covered %d stations, want 16", len(srcs))
	}
}

func TestLPMPacketsTargetDsts(t *testing.T) {
	dsts := []uint32{0x0A000001, 0xC0A80101}
	pkts := LPMPackets(LPMConfig{Packets: 100, Dsts: dsts, Seed: 1})
	for i, d := range decodeAll(t, pkts) {
		got := be32(d.IP.Dst.As4())
		if got != dsts[0] && got != dsts[1] {
			t.Fatalf("packet %d dst %#x not in set", i, got)
		}
	}
}

func TestHeartbeatShape(t *testing.T) {
	hb := Heartbeat(5, 9999, 1234)
	var d packet.Decoded
	if err := packet.Decode(hb.Data, &d); err != nil {
		t.Fatal(err)
	}
	if d.UDP.DstPort != 9999 {
		t.Errorf("dst port = %d", d.UDP.DstPort)
	}
	if src := d.IP.Src.As4(); src[3] != 5 {
		t.Errorf("backend id byte = %d", src[3])
	}
	if hb.InPort != 1 {
		t.Errorf("in port = %d", hb.InPort)
	}
}

func TestNonIPv4IsInvalid(t *testing.T) {
	p := NonIPv4(1, 0)
	var d packet.Decoded
	if err := packet.Decode(p.Data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Has(packet.LayerIPv4) {
		t.Error("NonIPv4 decodes as IPv4")
	}
}

func TestWithOptionsCarriesOptions(t *testing.T) {
	p := WithOptions(3, 1, 0)
	var d packet.Decoded
	if err := packet.Decode(p.Data, &d); err != nil {
		t.Fatal(err)
	}
	if d.IP.IHL != 8 { // 5 + 3 slots × 4B / 4
		t.Errorf("IHL = %d, want 8", d.IP.IHL)
	}
	if d.IP.Options[0] != packet.IPOptTimestamp {
		t.Errorf("first option = %d", d.IP.Options[0])
	}
}

func TestPCAPRoundTrip(t *testing.T) {
	pkts := UDPFlows(UDPFlowConfig{Packets: 30, Flows: 4, Seed: 9, StartNS: 1_000_000, GapNS: 1_000_000})
	var buf bytes.Buffer
	if err := pcap.WriteAll(&buf, ToPCAP(pkts)); err != nil {
		t.Fatal(err)
	}
	recs, err := pcap.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := FromPCAP(recs, 3)
	if len(back) != len(pkts) {
		t.Fatalf("round trip count %d", len(back))
	}
	for i := range back {
		if !bytes.Equal(back[i].Data, pkts[i].Data) {
			t.Fatalf("packet %d bytes differ", i)
		}
		if back[i].InPort != 3 {
			t.Fatalf("packet %d in-port %d", i, back[i].InPort)
		}
		// Times survive at microsecond resolution.
		if back[i].Time/1000 != pkts[i].Time/1000 {
			t.Fatalf("packet %d time %d vs %d", i, back[i].Time, pkts[i].Time)
		}
	}
}

func TestCollidingMACsCollide(t *testing.T) {
	env := nfir.NewEnv()
	env.Meter = perf.NewMeter(nil)
	table := dslib.NewFlowTable(env, dslib.FlowTableConfig{
		Name: "mac", Capacity: 256, KeyWords: 1, TimeoutNS: 1, Costs: dslib.BridgeCosts(),
	})
	macs := CollidingMACs(table, 6, false, 11)
	if len(macs) != 6 {
		t.Fatalf("found %d colliding MACs", len(macs))
	}
	wantBucket, _ := table.BucketOf([]uint64{macs[0].Uint64()})
	for i, m := range macs {
		b, _ := table.BucketOf([]uint64{m.Uint64()})
		if b != wantBucket {
			t.Fatalf("mac %d in bucket %d, want %d", i, b, wantBucket)
		}
	}
	// With requireTag on a tiny table, full-hash collisions are feasible.
	small := dslib.NewFlowTable(env, dslib.FlowTableConfig{
		Name: "tiny", Capacity: 4, KeyWords: 1, TimeoutNS: 1, Costs: dslib.BridgeCosts(),
	})
	tagged := CollidingMACs(small, 3, true, 12)
	if len(tagged) != 3 {
		t.Skipf("tag search found only %d (acceptable: probabilistic)", len(tagged))
	}
	_, wantTag := small.BucketOf([]uint64{tagged[0].Uint64()})
	for _, m := range tagged {
		if _, tag := small.BucketOf([]uint64{m.Uint64()}); tag != wantTag {
			t.Fatal("tag collision violated")
		}
	}
}

func TestAdversarialLPMForcesLongPath(t *testing.T) {
	env := nfir.NewEnv()
	env.Meter = perf.NewMeter(nil)
	table := dslib.NewDir248(env, 0, 16)
	if err := table.AddRoute(0xC0A80180, 25, 1); err != nil {
		t.Fatal(err)
	}
	if err := table.AddRoute(0x0A000080, 26, 2); err != nil {
		t.Fatal(err)
	}
	pkts := AdversarialLPM(table, 100, 1_000, 1_000, 3)
	if len(pkts) != 100 {
		t.Fatalf("packets = %d", len(pkts))
	}
	for i, p := range pkts {
		var d packet.Decoded
		if err := packet.Decode(p.Data, &d); err != nil {
			t.Fatal(err)
		}
		dst := be32(d.IP.Dst.As4())
		// Every destination must land in an extended tbl24 slot.
		slot := dst >> 8
		if slot != 0xC0A801 && slot != 0x0A0000 {
			t.Fatalf("packet %d dst %#x outside extended slots", i, dst)
		}
	}
	// A table with only short routes yields no attack surface.
	empty := dslib.NewDir248(env, 0, 4)
	if err := empty.AddRoute(0x0A000000, 8, 1); err != nil {
		t.Fatal(err)
	}
	if got := AdversarialLPM(empty, 10, 0, 0, 1); got != nil {
		t.Error("short-only table should have no adversarial traffic")
	}
}
