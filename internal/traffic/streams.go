package traffic

import (
	"math/rand"

	"gobolt/internal/packet"
)

// This file holds the multi-stream workload mode used by the sharded
// monitor: generators that emit several independent per-flow streams
// (each stream is one flow — one consistent set of headers — so a
// flow-hash maps the whole stream to one shard), and Interleave, which
// merges streams into a single replayable trace while preserving each
// stream's internal packet order.
//
// The contract the sharded-monitor tests rely on: a trace built from
// per-flow streams via Interleave is *stream-consistent* for any flow
// hash that keys only on per-stream-constant fields (monitor.FlowKey
// keys on protocol + IPv4 addresses, or the Ethernet header for
// non-IPv4), so the sharded monitor's merged Report() is byte-identical
// to the serial monitor's on these traces at every shard count.

// Interleave deterministically merges streams into one trace:
//   - per-stream packet order is preserved (stream packets appear as a
//     subsequence of the output),
//   - the merge order is a seeded weighted shuffle — at each step one of
//     the non-empty streams is picked with probability proportional to
//     its remaining length, which is exactly a uniform random interleaving
//     over all order-preserving merges,
//   - timestamps are re-stamped as startNS + i*gapNS so the merged trace
//     looks like a single arrival sequence (gapNS 0 defaults to 10µs).
//
// The output is a fresh slice; Packet.Data is shared with the inputs
// (generators never mutate emitted packets).
func Interleave(seed int64, startNS, gapNS uint64, streams ...[]Packet) []Packet {
	if gapNS == 0 {
		gapNS = 10_000
	}
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Packet, 0, total)
	next := make([]int, len(streams)) // next unconsumed index per stream
	now := startNS
	for len(out) < total {
		// Pick a stream weighted by remaining packets: this makes every
		// order-preserving merge equally likely.
		remaining := total - len(out)
		pick := rng.Intn(remaining)
		for si, s := range streams {
			left := len(s) - next[si]
			if pick < left {
				p := s[next[si]]
				p.Time = now
				out = append(out, p)
				next[si]++
				break
			}
			pick -= left
		}
		now += gapNS
	}
	return out
}

// StreamConfig drives the per-flow stream generators.
type StreamConfig struct {
	// Streams is the number of independent flows to generate.
	Streams int
	// PacketsPerStream is each stream's length.
	PacketsPerStream int
	// InPort assigns stream i to port i % InPorts (0 means 1 port).
	InPorts uint64
	// Seed for determinism (per-stream derived seeds).
	Seed int64
}

// UDPStreams generates Streams independent single-flow UDP streams. Each
// stream has its own (src IP, dst IP, src port, dst port) 4-tuple with a
// distinct IP pair, so any hash over the IP addresses spreads streams
// across shards while keeping each stream on exactly one shard.
func UDPStreams(cfg StreamConfig) [][]Packet {
	if cfg.InPorts == 0 {
		cfg.InPorts = 1
	}
	streams := make([][]Packet, cfg.Streams)
	for si := 0; si < cfg.Streams; si++ {
		src := addr4([4]byte{10, 1, byte(si >> 8), byte(si)})
		dst := addr4([4]byte{192, 168, byte(si >> 8), byte(si)})
		sp := uint16(2000 + si)
		pkts := make([]Packet, cfg.PacketsPerStream)
		for i := range pkts {
			pkts[i] = Packet{
				Data: packet.NewBuilder().
					Ethernet(packet.MAC{2, 0, 0, 0, 0, 2}, packet.MAC{2, 0, 0, 1, byte(si >> 8), byte(si)}, packet.EtherTypeIPv4).
					IPv4(src, dst, packet.ProtoUDP, 64, nil).
					UDP(sp, 80).
					Bytes(),
				InPort: uint64(si) % cfg.InPorts,
			}
		}
		streams[si] = pkts
	}
	return streams
}

// BridgeStreams generates Streams independent L2 conversations: stream i
// is station-pair (A_i, B_i) exchanging frames (direction alternates, so
// both MACs get learned). The encapsulated IPv4 pair is fixed per stream
// in both directions — monitor.FlowKey hashes (proto, src IP, dst IP)
// order-sensitively, and the bridge NF never reads L3 — so each stream
// is exactly one flow to an IP-keyed hash.
func BridgeStreams(cfg StreamConfig) [][]Packet {
	if cfg.InPorts == 0 {
		cfg.InPorts = 2
	}
	streams := make([][]Packet, cfg.Streams)
	for si := 0; si < cfg.Streams; si++ {
		a := packet.MAC{0x02, 0xA0, 0, 0, byte(si >> 8), byte(si)}
		b := packet.MAC{0x02, 0xB0, 0, 0, byte(si >> 8), byte(si)}
		srcIP := addr4([4]byte{10, 2, byte(si >> 8), byte(si)})
		dstIP := addr4([4]byte{10, 3, byte(si >> 8), byte(si)})
		portA := uint64(2*si) % cfg.InPorts
		portB := uint64(2*si+1) % cfg.InPorts
		pkts := make([]Packet, cfg.PacketsPerStream)
		for i := range pkts {
			src, dst, inPort := a, b, portA
			if i%2 == 1 {
				src, dst, inPort = b, a, portB
			}
			pkts[i] = Packet{
				Data: packet.NewBuilder().
					Ethernet(dst, src, packet.EtherTypeIPv4).
					IPv4(srcIP, dstIP, packet.ProtoUDP, 64, nil).
					UDP(uint16(1000+i%100), 80).
					Bytes(),
				InPort: inPort,
			}
		}
		streams[si] = pkts
	}
	return streams
}
