// Package par provides the bounded deterministic-order parallelism
// primitive the contract pipeline runs on: a parallel for over an index
// range. Results are communicated through slices the caller indexes by
// the loop variable, so output order never depends on scheduling.
package par

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Workers normalises a parallelism setting: values below 1 mean "one
// worker" so that the zero value of any config degrades to serial
// execution rather than a deadlocked pool.
func Workers(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// ForEach runs fn(0) … fn(n-1), using up to workers goroutines. With
// workers <= 1 it is a plain inline loop — byte-for-byte the serial
// semantics, including stopping at the first error. With more workers,
// items are dispatched dynamically; on error or context cancellation the
// remaining items are abandoned (in-flight calls finish).
//
// The reported error is deterministic regardless of scheduling: the
// item error with the smallest index wins, and only if no item failed is
// a context error reported (wrapped with how many items completed, the
// partial-progress report for cancelled generations).
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if Workers(workers) == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("cancelled after %d/%d items: %w", i, n, err)
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}

	var (
		next    atomic.Int64
		done    atomic.Int64
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstI  = n // smallest failed index
		itemErr error
		stopped atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstI {
						firstI, itemErr = i, err
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if itemErr != nil {
		return itemErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cancelled after %d/%d items: %w", done.Load(), n, err)
	}
	return nil
}
