package par

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		hits := make([]atomic.Int32, 64)
		err := ForEach(context.Background(), workers, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachSmallestErrorWins(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("item %d failed", i) }
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), workers, 32, func(i int) error {
			if i == 5 || i == 20 {
				return boom(i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 5 failed" {
			t.Fatalf("workers=%d: got %v, want item 5's error", workers, err)
		}
	}
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	for _, workers := range []int{1, 4} {
		err := ForEach(ctx, workers, 16, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled context still ran %d items", ran.Load())
	}
}

func TestForEachMidwayCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEach(ctx, 4, 1000, func(i int) error {
		if i == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestWorkers(t *testing.T) {
	for in, want := range map[int]int{-3: 1, 0: 1, 1: 1, 7: 7} {
		if got := Workers(in); got != want {
			t.Fatalf("Workers(%d) = %d, want %d", in, got, want)
		}
	}
}
