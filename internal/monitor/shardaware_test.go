package monitor_test

import (
	"strings"
	"testing"

	"gobolt/internal/monitor"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// TestShardAwareBudgetAndBounds pins the opt-in shard-aware monitor
// semantics on the roster NAT:
//
//   - a ClockHz/TargetPPS-derived budget splits across the deployment:
//     at S shards each core need only sustain TargetPPS/S, so the
//     per-shard per-packet allowance is S× the single-core one;
//   - the checked cycle bound becomes the contract's shard-aware bound,
//     which only grows with S — a trace that is violation-free under
//     the serial monitor stays violation-free shard-aware;
//   - with ShardAware left false (the default), sharded output stays
//     byte-identical to the serial monitor's, so the derived budget is
//     the single-core one.
func TestShardAwareBudgetAndBounds(t *testing.T) {
	const (
		clockHz   = 3.2e9
		targetPPS = 1.0e6 // 3200 cycles/packet on one core
		shards    = 4
	)
	_, ct := buildRoster(t, "nat")
	stream := traffic.UDPStreams(traffic.StreamConfig{Streams: 4, PacketsPerStream: 80, Seed: 9})
	meas := traffic.Interleave(1, 1_000, 1_000, stream...)
	warm, meas := meas[:120], meas[120:]

	serial, serialReport := runMonitored(t, rebuildRoster(t, "nat"), ct,
		monitor.Config{ClockHz: clockHz, TargetPPS: targetPPS, Shards: shards}, warm, meas)
	aware, awareReport := runMonitored(t, rebuildRoster(t, "nat"), ct,
		monitor.Config{ClockHz: clockHz, TargetPPS: targetPPS, Shards: shards, ShardAware: true}, warm, meas)

	if !strings.Contains(serialReport, "budget 3200") {
		t.Errorf("default monitor should budget ClockHz/TargetPPS = 3200 cycles:\n%s", serialReport)
	}
	if !strings.Contains(awareReport, "budget 12800") {
		t.Errorf("shard-aware monitor should budget S*ClockHz/TargetPPS = 12800 cycles:\n%s", awareReport)
	}
	if serial.Violations() != 0 || aware.Violations() != 0 {
		t.Fatalf("violations on benign traffic: serial %d, shard-aware %d",
			serial.Violations(), aware.Violations())
	}
	// The shard-aware bound dominates the serial one on every alert-free
	// packet too; spot-check via the per-class windows being identical
	// while the predictions differ (the report embeds max predictions).
	if awareReport == serialReport {
		t.Error("shard-aware report identical to serial; the contention term priced in nothing")
	}
	for _, a := range aware.Alerts() {
		if a.Kind == monitor.AlertViolation && a.Metric == perf.Cycles {
			t.Errorf("shard-aware cycle violation: %s", a.String())
		}
	}
}
