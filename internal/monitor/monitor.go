package monitor

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/dpdk"
	"gobolt/internal/expr"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// AlertKind distinguishes what a fired alert means.
type AlertKind int

const (
	// AlertViolation: a packet's measured cost exceeded the bound its own
	// contract path predicts at the observed PCVs — the contract's
	// soundness promise is broken (a modelling bug or the wrong contract
	// for the deployed build). Fired immediately, no hysteresis.
	AlertViolation AlertKind = iota
	// AlertOverload: the contract-predicted bound for the traffic being
	// received exceeds the provisioned budget — the §5.2 signal that
	// adversarial traffic is pushing the NF towards a performance cliff,
	// raised from the *prediction*, before throughput actually collapses.
	// Debounced by hysteresis.
	AlertOverload
	// AlertCleared: a previously raised overload page returned to quiet.
	AlertCleared
	// AlertUnclassified: a packet matched no contract path (traffic the
	// contract does not cover). Reported once, then counted.
	AlertUnclassified
)

func (k AlertKind) String() string {
	switch k {
	case AlertViolation:
		return "VIOLATION"
	case AlertOverload:
		return "OVERLOAD"
	case AlertCleared:
		return "cleared"
	case AlertUnclassified:
		return "unclassified"
	}
	return "?"
}

// Alert is one monitor event. Violation and overload alerts carry the
// observed PCVs and the predicted bound, so the report is reproducible
// offline: feed the PCVs to PathContract.BoundAt and the same numbers
// come out.
type Alert struct {
	Kind AlertKind
	// PacketIndex counts packets across the monitor's lifetime, in
	// arrival order — sharding never renumbers it.
	PacketIndex int
	// Time is the packet's arrival timestamp (ns).
	Time uint64
	// Class and PathID name the triggering contract path.
	Class  string
	PathID int
	Metric perf.Metric
	// Observed is the packet's measured cost; Predicted the contract
	// bound at the observed PCVs; Budget the provisioned threshold
	// (overload alerts only).
	Observed, Predicted, Budget uint64
	// PCVs are the Distiller-observed PCV values for the packet.
	PCVs map[string]uint64
	// Window is the class's recent observed-cost history, oldest first
	// (the owning shard's view in sharded mode).
	Window []uint64
}

func (a Alert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] pkt %d t=%d class %q path %d %s",
		a.Kind, a.PacketIndex, a.Time, a.Class, a.PathID, a.Metric)
	switch a.Kind {
	case AlertViolation:
		fmt.Fprintf(&b, " observed %d > predicted %d", a.Observed, a.Predicted)
	case AlertOverload:
		fmt.Fprintf(&b, " predicted %d > budget %d (observed %d)", a.Predicted, a.Budget, a.Observed)
	case AlertCleared:
		fmt.Fprintf(&b, " predicted %d <= budget %d", a.Predicted, a.Budget)
	}
	if len(a.PCVs) > 0 {
		fmt.Fprintf(&b, " pcvs %s", renderPCVs(a.PCVs))
	}
	return b.String()
}

// Config tunes a Monitor.
type Config struct {
	// Metric is the budgeted metric (default Instructions — deterministic
	// and hardware-independent, the paper's headline metric).
	Metric perf.Metric
	// Budget is the overload threshold on the *predicted* bound; 0
	// disables overload alerting (violation detection stays on).
	Budget uint64
	// ClockHz and TargetPPS derive a cycle budget when Budget is zero:
	// the per-packet cycles one core must not exceed to sustain
	// TargetPPS — Contract.Provision solved for cycles. Setting them
	// forces Metric to Cycles and Detailed on.
	ClockHz, TargetPPS float64
	// Trigger and Clear set the overload hysteresis: Trigger consecutive
	// over-budget packets page (default 3), Clear consecutive calm
	// packets un-page (default 8).
	Trigger, Clear int
	// RingSize bounds the per-class recent-sample window (default 32).
	RingSize int
	// Quantile is the per-class tail sketch's target (default 0.99).
	Quantile float64
	// Level selects NF-only or full-stack measurement for Run.
	Level dpdk.AnalysisLevel
	// Detailed attaches the detailed hardware model so cycles are
	// measured and checked.
	Detailed bool

	// Shards splits classification across this many flow-hashed shards
	// (default 1 — the serial monitor). Each shard owns its own
	// classifier scratch, per-class ring/P²/hysteresis state and
	// compiled-bound value vector; Run feeds them fixed-size batches over
	// buffered channels, and Report/Alerts merge shard states
	// deterministically (classes by label, alerts by packet index). On a
	// trace whose flows are stream-consistent — every input class's
	// packets hash to one shard — the merged output is byte-identical to
	// the serial monitor's at any shard count.
	Shards int
	// Batch is the sharded ingest granularity in packets (default 64;
	// 1 hands every packet off individually). Batch size never changes
	// the merged output, only the amortization of the handoff.
	Batch int
	// Queue is each shard's ingest queue depth in batches (default 4).
	// The ring backend rounds it up to a power of two. Like Batch it is
	// invisible in the merged output; it trades producer stalls against
	// buffered memory.
	Queue int
	// FlushStall bounds the adaptive flush: a partially-filled batch is
	// handed off once FlushStall further packets have been ingested
	// monitor-wide without it filling (default 4×Batch; the round-robin
	// stall probe adds at most Shards packets of slack). This bounds a
	// trickling class's worst-case detection delay — measured in ingest
	// progress — instead of letting a sub-Batch group sit until Close.
	// Never changes the merged output, only when alerts fire relative to
	// ingest.
	FlushStall int
	// NoRing carries the sharded hop over buffered channels with
	// sync.Pool batch recycling — the PR-7 ingest path, kept as the
	// measured ablation for the lock-free SPSC ring + freelist pair
	// that is now the default. Absent from report semantics: routing,
	// per-shard order, and the merged output are identical either way.
	NoRing bool
	// FlowHash overrides the RSS-style flow hash assigning packets to
	// shards (default FlowKey). Packets with equal hashes share a shard;
	// the merge-layer identity guarantee is conditional on the hash
	// keeping each input class on one shard.
	FlowHash func(pkt []byte, inPort uint64) uint64
	// NoPool disables the pooled allocation-free fast path (reused
	// observations, arena-backed call records, keyed classification) and
	// replays the original per-packet allocating path — the ablation
	// lever monitorbench uses. Serial only.
	NoPool bool
	// ShardAware prices the deployment's parallelism into the checks:
	// with S = Shards > 1, the cycle bound each packet is held to
	// becomes the contract's shard-aware bound (base plus the
	// contention term at S shards, expr.ShardPCV bound to S−1), and a
	// ClockHz/TargetPPS-derived budget becomes the per-shard budget
	// S·ClockHz/TargetPPS — S cores each need only sustain TargetPPS/S,
	// so every shard gets S× the per-packet cycle allowance. Default
	// false: bounds and budgets stay the serial ones and the sharded
	// monitor's output is byte-identical to the serial monitor's.
	ShardAware bool

	// OnAlert, when set, sees every alert as it fires (the pluggable
	// pager hook); alerts are also retained on the monitor. In sharded
	// mode it is called from shard goroutines — concurrently — as soon
	// as a shard pages; the hook must be safe for concurrent use there.
	OnAlert func(Alert)
	// OnClassify, when set, sees every packet's classification (path is
	// nil when no contract path matched) — the differential-test and
	// debugging tap. The observation is reused between packets; copy
	// anything retained past the call. Called from shard goroutines in
	// sharded mode.
	OnClassify func(obs *core.PacketObservation, path *core.PathContract)
}

// Monitor watches a packet stream against one contract, optionally
// sharded across flow-hashed engines.
type Monitor struct {
	ct       *core.Contract
	cfg      Config
	runner   *distill.Runner
	detailed *hwmodel.Detailed
	pcvNames []string
	// bounds holds each path's cost polynomials compiled onto the
	// pcvNames order (shared read-only across shards; CompiledPoly.Eval
	// is pure). BoundAt re-walks monomial strings and maps on every call
	// — far too slow for the per-packet hot path.
	bounds  map[*core.PathContract]*[perf.NumMetrics]*expr.CompiledPoly
	classOf map[*core.PathContract]string // Class() concatenates per call
	// shardIdx is expr.ShardPCV's slot in pcvNames when the monitor is
	// shard-aware (every engine pins it to Shards−1), -1 otherwise.
	shardIdx int

	engines []*engine
	// packets counts ingested packets across the monitor's lifetime and
	// assigns each its global index before sharding.
	packets int
	// partialFlushes counts batches the adaptive flush handed off
	// below Config.Batch, accumulated across Runs.
	partialFlushes int

	log core.CallLog // pooled per-packet call recorder scratch
	obs core.PacketObservation

	ing *ingester // non-nil while a sharded Run is draining
}

// New compiles the contract's classifier and returns a monitor.
func New(ct *core.Contract, cfg Config) (*Monitor, error) {
	if cfg.Trigger <= 0 {
		cfg.Trigger = 3
	}
	if cfg.Clear <= 0 {
		cfg.Clear = 8
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 32
	}
	if cfg.Quantile <= 0 || cfg.Quantile >= 1 {
		cfg.Quantile = 0.99
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > maxShards {
		return nil, fmt.Errorf("monitor: %d shards exceeds the %d-shard cap", cfg.Shards, maxShards)
	}
	if cfg.Batch <= 0 {
		cfg.Batch = defaultBatch
	}
	if cfg.Queue <= 0 {
		cfg.Queue = defaultQueue
	}
	if cfg.Queue > maxQueue {
		return nil, fmt.Errorf("monitor: queue depth %d exceeds the %d-batch cap", cfg.Queue, maxQueue)
	}
	if cfg.FlushStall <= 0 {
		cfg.FlushStall = 4 * cfg.Batch
	}
	if cfg.FlowHash == nil {
		cfg.FlowHash = FlowKey
	}
	if cfg.NoPool && cfg.Shards > 1 {
		return nil, fmt.Errorf("monitor: NoPool is a serial-only ablation (got %d shards)", cfg.Shards)
	}
	shardAware := cfg.ShardAware && cfg.Shards > 1
	if cfg.Budget == 0 && cfg.ClockHz > 0 && cfg.TargetPPS > 0 {
		cfg.Metric = perf.Cycles
		budget := cfg.ClockHz / cfg.TargetPPS
		if shardAware {
			// S cores each sustain TargetPPS/S, so the per-shard
			// per-packet allowance is S× the single-core one.
			budget *= float64(cfg.Shards)
		}
		cfg.Budget = uint64(budget)
		cfg.Detailed = true
	}
	m := &Monitor{ct: ct, cfg: cfg, shardIdx: -1}
	pcvSet := make(map[string]bool)
	for _, p := range ct.Paths {
		for v := range p.PCVRanges {
			pcvSet[v] = true
		}
	}
	if shardAware {
		pcvSet[expr.ShardPCV] = true
	}
	for v := range pcvSet {
		m.pcvNames = append(m.pcvNames, v)
	}
	sort.Strings(m.pcvNames)
	if shardAware {
		for i, v := range m.pcvNames {
			if v == expr.ShardPCV {
				m.shardIdx = i
			}
		}
	}
	m.bounds = make(map[*core.PathContract]*[perf.NumMetrics]*expr.CompiledPoly, len(ct.Paths))
	m.classOf = make(map[*core.PathContract]string, len(ct.Paths))
	for _, p := range ct.Paths {
		m.classOf[p] = p.Class()
		var cb [perf.NumMetrics]*expr.CompiledPoly
		for _, metric := range perf.Metrics {
			poly := p.Cost[metric]
			if shardAware && metric == perf.Cycles {
				poly = p.ShardCost(metric)
			}
			if cp, err := poly.Compile(m.pcvNames); err == nil {
				cb[metric] = cp
			}
			// else: the cost mentions a variable outside the contract's
			// PCV ranges; boundAt falls back to map-based BoundAt there.
		}
		m.bounds[p] = &cb
	}
	m.engines = make([]*engine, cfg.Shards)
	for i := range m.engines {
		e, err := newEngine(m)
		if err != nil {
			return nil, err
		}
		m.engines[i] = e
	}
	m.runner = &distill.Runner{Level: cfg.Level}
	if cfg.Detailed {
		m.detailed = hwmodel.NewDetailed()
		m.runner.Detailed = m.detailed
	}
	return m, nil
}

// Run replays a workload through the instance with monitoring on: every
// packet is measured, classified, and checked. State persists across
// calls (same-monitor Warm/Run sequences share hardware-model warmth).
// With Shards > 1 the classification work drains through the shard
// goroutines and is fully merged before Run returns.
func (m *Monitor) Run(ctx context.Context, inst *nf.Instance, pkts []traffic.Packet) ([]distill.Record, error) {
	if m.cfg.NoPool {
		return m.runUnpooled(ctx, inst, pkts)
	}
	restore := core.AttachCallLog(inst.Env, &m.log)
	defer restore()
	m.log.Reset()
	if m.cfg.Shards > 1 {
		m.startIngest()
	}
	m.runner.Observer = func(_ int, pkt traffic.Packet, rec *distill.Record) {
		if m.ing != nil {
			m.ing.enqueue(pkt, rec, m.log.Records())
		} else {
			m.observePooled(pkt, rec, m.log.Records())
		}
		m.log.Reset()
	}
	defer func() { m.runner.Observer = nil }()
	defer m.finishIngest() // idempotent; drains even on a cancelled run
	recs, err := m.runner.RunContext(ctx, inst, pkts)
	m.finishIngest()
	return recs, err
}

// runUnpooled is the pre-pooling per-packet path, kept verbatim as the
// monitorbench ablation baseline: a fresh observation and copied call
// records per packet, string-keyed classification.
func (m *Monitor) runUnpooled(ctx context.Context, inst *nf.Instance, pkts []traffic.Packet) ([]distill.Record, error) {
	var calls []core.CallRecord
	restore := core.AttachRecorder(inst.Env, &calls)
	defer restore()
	m.runner.Observer = func(_ int, pkt traffic.Packet, rec *distill.Record) {
		m.Observe(pkt, rec, calls)
		calls = calls[:0]
	}
	defer func() { m.runner.Observer = nil }()
	return m.runner.RunContext(ctx, inst, pkts)
}

// Warm replays a workload with monitoring off: the instance's state and
// the monitor's hardware model see the traffic, but nothing is
// classified or checked. Use it for the warmup phase of a measurement.
func (m *Monitor) Warm(ctx context.Context, inst *nf.Instance, pkts []traffic.Packet) error {
	_, err := m.runner.RunContext(ctx, inst, pkts)
	return err
}

// Observe feeds one measured packet directly and synchronously (exposed
// for harnesses that drive their own runner). In sharded configurations
// the packet still lands on its flow-hashed shard's state, processed
// inline on the caller's goroutine.
func (m *Monitor) Observe(pkt traffic.Packet, rec *distill.Record, calls []core.CallRecord) {
	idx := m.packets
	m.packets++
	e := m.engines[m.shardOf(pkt.Data, pkt.InPort)]
	obs := &core.PacketObservation{
		Pkt: pkt.Data, InPort: pkt.InPort, Time: pkt.Time, PktLen: obsPktLen(pkt.Data),
		Action: rec.Action.Kind, Calls: calls,
	}
	e.observe(idx, obs, rec.IC, rec.MA, rec.Cycles, rec.PCVs)
}

// observePooled is Observe on the reused observation — the serial fast
// path Run drives.
func (m *Monitor) observePooled(pkt traffic.Packet, rec *distill.Record, calls []core.CallRecord) {
	idx := m.packets
	m.packets++
	e := m.engines[m.shardOf(pkt.Data, pkt.InPort)]
	m.obs = core.PacketObservation{
		Pkt: pkt.Data, InPort: pkt.InPort, Time: pkt.Time, PktLen: obsPktLen(pkt.Data),
		Action: rec.Action.Kind, Calls: calls,
	}
	e.observe(idx, &m.obs, rec.IC, rec.MA, rec.Cycles, rec.PCVs)
}

func (m *Monitor) shardOf(pkt []byte, inPort uint64) int {
	if len(m.engines) == 1 {
		return 0
	}
	return int(m.cfg.FlowHash(pkt, inPort) % uint64(len(m.engines)))
}

func obsPktLen(data []byte) uint64 {
	n := uint64(len(data))
	if n > nfir.MaxPacket {
		n = nfir.MaxPacket
	}
	return n
}

func metricValue(ic, ma, cycles uint64, metric perf.Metric) uint64 {
	switch metric {
	case perf.MemAccesses:
		return ma
	case perf.Cycles:
		return cycles
	}
	return ic
}

func renderPCVs(pcvs map[string]uint64) string {
	names := make([]string, 0, len(pcvs))
	for v := range pcvs {
		names = append(names, v)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, v := range names {
		parts[i] = fmt.Sprintf("%s=%d", v, pcvs[v])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Alerts returns every fired alert, merged across shards by packet
// index (per-shard firing order preserved; the unclassified page is
// deduplicated to the globally first uncovered packet).
func (m *Monitor) Alerts() []Alert { return m.mergedAlerts() }

// Violations counts soundness violations seen so far, across shards.
func (m *Monitor) Violations() int {
	n := 0
	for _, e := range m.engines {
		n += e.violations
	}
	return n
}

// Unclassified counts packets no contract path matched, across shards.
func (m *Monitor) Unclassified() int {
	n := 0
	for _, e := range m.engines {
		n += e.unclassified
	}
	return n
}

// Packets counts observed packets.
func (m *Monitor) Packets() int { return m.packets }

// PartialFlushes counts ingest batches the adaptive flush handed off
// before they filled (sharded Runs only) — the observable that a
// trickling class's detection delay was bounded by Config.FlushStall
// rather than by Batch.
func (m *Monitor) PartialFlushes() int { return m.partialFlushes }

// MaxPredicted reports the largest predicted bound observed on the
// budgeted metric — Calibrate uses it to turn a benign run into a
// budget.
func (m *Monitor) MaxPredicted() uint64 {
	var worst uint64
	for _, e := range m.engines {
		if e.maxPred > worst {
			worst = e.maxPred
		}
	}
	return worst
}

// Overloaded reports whether any class on any shard currently has a
// raised page — the fleet-level overload signal.
func (m *Monitor) Overloaded() bool {
	for _, e := range m.engines {
		for _, st := range e.classes {
			if st.hys.Paged() {
				return true
			}
		}
	}
	return false
}

// Calibrate derives an overload budget from a benign workload: replay it
// through an unbudgeted monitor and scale the worst predicted bound by
// factor (the operator's provisioning margin). This is the §5.2
// workflow: the contract plus expected traffic tells the operator what
// "normal" costs, and the monitor pages when predictions leave that
// envelope.
//
// The probe measures the same metric the budgeted monitor will: a
// ClockHz/TargetPPS configuration budgets Cycles on the detailed model,
// so the probe runs with Metric=Cycles and Detailed on before the
// derivation fields are cleared (clearing them first made the probe
// measure Instructions while the real monitor budgeted Cycles).
func Calibrate(ctx context.Context, ct *core.Contract, cfg Config, inst *nf.Instance, benign []traffic.Packet, factor float64) (uint64, error) {
	if cfg.ClockHz > 0 && cfg.TargetPPS > 0 {
		cfg.Metric = perf.Cycles
		cfg.Detailed = true
	}
	cfg.Budget = 0
	cfg.ClockHz, cfg.TargetPPS = 0, 0
	probe, err := New(ct, cfg)
	if err != nil {
		return 0, err
	}
	if _, err := probe.Run(ctx, inst, benign); err != nil {
		return 0, err
	}
	if probe.MaxPredicted() == 0 {
		return 0, fmt.Errorf("monitor: calibration run predicted nothing (no packets classified?)")
	}
	if factor < 1 {
		factor = 1
	}
	return uint64(float64(probe.MaxPredicted()) * factor), nil
}

// Report renders the monitor's state deterministically: classes sorted
// by label, alerts in packet order. Byte-identical for identical traces,
// and — on stream-consistent traces — byte-identical at any shard count.
func (m *Monitor) Report() string {
	var b strings.Builder
	alerts := m.mergedAlerts()
	fmt.Fprintf(&b, "Monitor report: %s (metric %s", m.ct.NF, m.cfg.Metric)
	if m.cfg.Budget > 0 {
		fmt.Fprintf(&b, ", budget %d", m.cfg.Budget)
	}
	fmt.Fprintf(&b, ")\n")
	fmt.Fprintf(&b, "  packets %d, unclassified %d, violations %d, alerts %d\n",
		m.packets, m.Unclassified(), m.Violations(), len(alerts))
	rows := m.mergedClasses()
	labels := make([]string, 0, len(rows))
	for l := range rows {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		st := rows[l]
		fmt.Fprintf(&b, "  class %-52s pkts %6d  max obs %8d  max pred %8d  p%02.0f %8.0f",
			l, st.packets, st.maxObserved, st.maxPred, m.cfg.Quantile*100, st.quantile)
		if m.cfg.Budget > 0 {
			fmt.Fprintf(&b, "  headroom %8d", st.minHeadroom)
		}
		if st.paged {
			fmt.Fprintf(&b, "  PAGED")
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, a := range alerts {
		fmt.Fprintf(&b, "  %s\n", a.String())
	}
	return b.String()
}
