package monitor

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/dpdk"
	"gobolt/internal/expr"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// AlertKind distinguishes what a fired alert means.
type AlertKind int

const (
	// AlertViolation: a packet's measured cost exceeded the bound its own
	// contract path predicts at the observed PCVs — the contract's
	// soundness promise is broken (a modelling bug or the wrong contract
	// for the deployed build). Fired immediately, no hysteresis.
	AlertViolation AlertKind = iota
	// AlertOverload: the contract-predicted bound for the traffic being
	// received exceeds the provisioned budget — the §5.2 signal that
	// adversarial traffic is pushing the NF towards a performance cliff,
	// raised from the *prediction*, before throughput actually collapses.
	// Debounced by hysteresis.
	AlertOverload
	// AlertCleared: a previously raised overload page returned to quiet.
	AlertCleared
	// AlertUnclassified: a packet matched no contract path (traffic the
	// contract does not cover). Reported once, then counted.
	AlertUnclassified
)

func (k AlertKind) String() string {
	switch k {
	case AlertViolation:
		return "VIOLATION"
	case AlertOverload:
		return "OVERLOAD"
	case AlertCleared:
		return "cleared"
	case AlertUnclassified:
		return "unclassified"
	}
	return "?"
}

// Alert is one monitor event. Violation and overload alerts carry the
// observed PCVs and the predicted bound, so the report is reproducible
// offline: feed the PCVs to PathContract.BoundAt and the same numbers
// come out.
type Alert struct {
	Kind AlertKind
	// PacketIndex counts packets across the monitor's lifetime.
	PacketIndex int
	// Time is the packet's arrival timestamp (ns).
	Time uint64
	// Class and PathID name the triggering contract path.
	Class  string
	PathID int
	Metric perf.Metric
	// Observed is the packet's measured cost; Predicted the contract
	// bound at the observed PCVs; Budget the provisioned threshold
	// (overload alerts only).
	Observed, Predicted, Budget uint64
	// PCVs are the Distiller-observed PCV values for the packet.
	PCVs map[string]uint64
	// Window is the class's recent observed-cost history, oldest first.
	Window []uint64
}

func (a Alert) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] pkt %d t=%d class %q path %d %s",
		a.Kind, a.PacketIndex, a.Time, a.Class, a.PathID, a.Metric)
	switch a.Kind {
	case AlertViolation:
		fmt.Fprintf(&b, " observed %d > predicted %d", a.Observed, a.Predicted)
	case AlertOverload:
		fmt.Fprintf(&b, " predicted %d > budget %d (observed %d)", a.Predicted, a.Budget, a.Observed)
	case AlertCleared:
		fmt.Fprintf(&b, " predicted %d <= budget %d", a.Predicted, a.Budget)
	}
	if len(a.PCVs) > 0 {
		fmt.Fprintf(&b, " pcvs %s", renderPCVs(a.PCVs))
	}
	return b.String()
}

// Config tunes a Monitor.
type Config struct {
	// Metric is the budgeted metric (default Instructions — deterministic
	// and hardware-independent, the paper's headline metric).
	Metric perf.Metric
	// Budget is the overload threshold on the *predicted* bound; 0
	// disables overload alerting (violation detection stays on).
	Budget uint64
	// ClockHz and TargetPPS derive a cycle budget when Budget is zero:
	// the per-packet cycles one core must not exceed to sustain
	// TargetPPS — Contract.Provision solved for cycles. Setting them
	// forces Metric to Cycles and Detailed on.
	ClockHz, TargetPPS float64
	// Trigger and Clear set the overload hysteresis: Trigger consecutive
	// over-budget packets page (default 3), Clear consecutive calm
	// packets un-page (default 8).
	Trigger, Clear int
	// RingSize bounds the per-class recent-sample window (default 32).
	RingSize int
	// Quantile is the per-class tail sketch's target (default 0.99).
	Quantile float64
	// Level selects NF-only or full-stack measurement for Run.
	Level dpdk.AnalysisLevel
	// Detailed attaches the detailed hardware model so cycles are
	// measured and checked.
	Detailed bool
	// OnAlert, when set, sees every alert as it fires (the pluggable
	// pager hook); alerts are also retained on the monitor.
	OnAlert func(Alert)
	// OnClassify, when set, sees every packet's classification (path is
	// nil when no contract path matched) — the differential-test and
	// debugging tap. The observation is reused between packets; copy
	// anything retained past the call.
	OnClassify func(obs *core.PacketObservation, path *core.PathContract)
}

// classState is the streaming state for one input class.
type classState struct {
	class       string
	packets     int
	violations  int
	maxObserved uint64
	maxPred     uint64
	minHeadroom int64
	ring        *ring
	sketch      *quantileSketch
	hys         hysteresis
}

// Monitor watches a packet stream against one contract.
type Monitor struct {
	ct       *core.Contract
	cls      *core.Classifier
	cfg      Config
	runner   *distill.Runner
	detailed *hwmodel.Detailed
	pcvNames []string
	// bounds holds each path's cost polynomials compiled onto the
	// pcvNames order; vals is the per-packet value vector they read.
	// BoundAt re-walks monomial strings and maps on every call — far too
	// slow for the per-packet hot path (it dominated the whole replay).
	bounds  map[*core.PathContract]*[perf.NumMetrics]*expr.CompiledPoly
	classOf map[*core.PathContract]string // Class() concatenates per call
	vals    []uint64

	packets      int
	unclassified int
	firstUnclass int
	violations   int
	maxPred      uint64
	classes      map[string]*classState
	alerts       []Alert
}

// New compiles the contract's classifier and returns a monitor.
func New(ct *core.Contract, cfg Config) (*Monitor, error) {
	cls, err := core.NewClassifier(ct)
	if err != nil {
		return nil, err
	}
	if cfg.Budget == 0 && cfg.ClockHz > 0 && cfg.TargetPPS > 0 {
		cfg.Metric = perf.Cycles
		cfg.Budget = uint64(cfg.ClockHz / cfg.TargetPPS)
		cfg.Detailed = true
	}
	if cfg.Trigger <= 0 {
		cfg.Trigger = 3
	}
	if cfg.Clear <= 0 {
		cfg.Clear = 8
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 32
	}
	if cfg.Quantile <= 0 || cfg.Quantile >= 1 {
		cfg.Quantile = 0.99
	}
	m := &Monitor{
		ct: ct, cls: cls, cfg: cfg,
		firstUnclass: -1,
		classes:      make(map[string]*classState),
	}
	pcvSet := make(map[string]bool)
	for _, p := range ct.Paths {
		for v := range p.PCVRanges {
			pcvSet[v] = true
		}
	}
	for v := range pcvSet {
		m.pcvNames = append(m.pcvNames, v)
	}
	sort.Strings(m.pcvNames)
	m.vals = make([]uint64, len(m.pcvNames))
	m.bounds = make(map[*core.PathContract]*[perf.NumMetrics]*expr.CompiledPoly, len(ct.Paths))
	m.classOf = make(map[*core.PathContract]string, len(ct.Paths))
	for _, p := range ct.Paths {
		m.classOf[p] = p.Class()
		var cb [perf.NumMetrics]*expr.CompiledPoly
		for _, metric := range perf.Metrics {
			if cp, err := p.Cost[metric].Compile(m.pcvNames); err == nil {
				cb[metric] = cp
			}
			// else: the cost mentions a variable outside the contract's
			// PCV ranges; boundAt falls back to map-based BoundAt there.
		}
		m.bounds[p] = &cb
	}
	m.runner = &distill.Runner{Level: cfg.Level}
	if cfg.Detailed {
		m.detailed = hwmodel.NewDetailed()
		m.runner.Detailed = m.detailed
	}
	return m, nil
}

// Run replays a workload through the instance with monitoring on: every
// packet is measured, classified, and checked. State persists across
// calls (same-monitor Warm/Run sequences share hardware-model warmth).
func (m *Monitor) Run(ctx context.Context, inst *nf.Instance, pkts []traffic.Packet) ([]distill.Record, error) {
	var calls []core.CallRecord
	restore := core.AttachRecorder(inst.Env, &calls)
	defer restore()
	m.runner.Observer = func(_ int, pkt traffic.Packet, rec *distill.Record) {
		m.Observe(pkt, rec, calls)
		calls = calls[:0]
	}
	defer func() { m.runner.Observer = nil }()
	return m.runner.RunContext(ctx, inst, pkts)
}

// Warm replays a workload with monitoring off: the instance's state and
// the monitor's hardware model see the traffic, but nothing is
// classified or checked. Use it for the warmup phase of a measurement.
func (m *Monitor) Warm(ctx context.Context, inst *nf.Instance, pkts []traffic.Packet) error {
	_, err := m.runner.RunContext(ctx, inst, pkts)
	return err
}

// Observe feeds one measured packet directly (Run calls it per packet;
// exposed for harnesses that drive their own runner).
func (m *Monitor) Observe(pkt traffic.Packet, rec *distill.Record, calls []core.CallRecord) {
	idx := m.packets
	m.packets++

	pktLen := uint64(len(pkt.Data))
	if pktLen > nfir.MaxPacket {
		pktLen = nfir.MaxPacket
	}
	obs := &core.PacketObservation{
		Pkt: pkt.Data, InPort: pkt.InPort, Time: pkt.Time, PktLen: pktLen,
		Action: rec.Action.Kind, Calls: calls,
	}
	path, ok := m.cls.Classify(obs)
	if m.cfg.OnClassify != nil {
		m.cfg.OnClassify(obs, path)
	}
	if !ok {
		m.unclassified++
		if m.firstUnclass < 0 {
			m.firstUnclass = idx
			m.fire(Alert{Kind: AlertUnclassified, PacketIndex: idx, Time: pkt.Time, Metric: m.cfg.Metric})
		}
		return
	}

	// The observed-PCV vector, exactly as the offline soundness check
	// binds it: every PCV the contract mentions, 0 when unobserved.
	for i, v := range m.pcvNames {
		m.vals[i] = rec.PCVs[v]
	}

	// Violation detection on every measured metric.
	checks := [perf.NumMetrics]struct {
		metric   perf.Metric
		observed uint64
	}{
		{perf.Instructions, rec.IC},
		{perf.MemAccesses, rec.MA},
	}
	nChecks := 2
	if m.detailed != nil {
		checks[nChecks] = struct {
			metric   perf.Metric
			observed uint64
		}{perf.Cycles, rec.Cycles}
		nChecks++
	}
	st := m.classState(m.classOf[path])
	st.packets++
	for _, c := range checks[:nChecks] {
		pred := m.boundAt(path, c.metric)
		if c.observed > pred {
			st.violations++
			m.violations++
			m.fire(Alert{
				Kind: AlertViolation, PacketIndex: idx, Time: pkt.Time,
				Class: m.classOf[path], PathID: path.ID, Metric: c.metric,
				Observed: c.observed, Predicted: pred,
				PCVs: m.pcvMap(), Window: st.ring.Snapshot(),
			})
		}
	}

	// Streaming per-class state and overload alerting on the budgeted
	// metric: the *predicted* bound at the observed PCVs is the signal —
	// it rises with the PCVs adversarial traffic inflates, ahead of any
	// measurable collapse.
	observed := metricValue(rec, m.cfg.Metric)
	predicted := m.boundAt(path, m.cfg.Metric)
	st.ring.Add(observed)
	st.sketch.Add(float64(observed))
	if observed > st.maxObserved {
		st.maxObserved = observed
	}
	if predicted > st.maxPred {
		st.maxPred = predicted
	}
	if predicted > m.maxPred {
		m.maxPred = predicted
	}
	if m.cfg.Budget > 0 {
		headroom := int64(m.cfg.Budget) - int64(predicted)
		if st.packets == 1 || headroom < st.minHeadroom {
			st.minHeadroom = headroom
		}
		fired, cleared := st.hys.Observe(predicted > m.cfg.Budget)
		if fired {
			m.fire(Alert{
				Kind: AlertOverload, PacketIndex: idx, Time: pkt.Time,
				Class: m.classOf[path], PathID: path.ID, Metric: m.cfg.Metric,
				Observed: observed, Predicted: predicted, Budget: m.cfg.Budget,
				PCVs: m.pcvMap(), Window: st.ring.Snapshot(),
			})
		}
		if cleared {
			m.fire(Alert{
				Kind: AlertCleared, PacketIndex: idx, Time: pkt.Time,
				Class: m.classOf[path], PathID: path.ID, Metric: m.cfg.Metric,
				Predicted: predicted, Budget: m.cfg.Budget,
			})
		}
	}
}

func (m *Monitor) classState(class string) *classState {
	st, ok := m.classes[class]
	if !ok {
		st = &classState{
			class:  class,
			ring:   newRing(m.cfg.RingSize),
			sketch: newQuantileSketch(m.cfg.Quantile),
			hys:    hysteresis{Trigger: m.cfg.Trigger, Clear: m.cfg.Clear},
		}
		m.classes[class] = st
	}
	return st
}

func (m *Monitor) fire(a Alert) {
	m.alerts = append(m.alerts, a)
	if m.cfg.OnAlert != nil {
		m.cfg.OnAlert(a)
	}
}

func metricValue(rec *distill.Record, metric perf.Metric) uint64 {
	switch metric {
	case perf.MemAccesses:
		return rec.MA
	case perf.Cycles:
		return rec.Cycles
	}
	return rec.IC
}

// boundAt evaluates a path's bound at the current PCV vector via the
// pre-compiled polynomial, falling back to BoundAt for the rare path
// whose cost mentions a variable outside the PCV-range set.
func (m *Monitor) boundAt(p *core.PathContract, metric perf.Metric) uint64 {
	if cp := m.bounds[p][metric]; cp != nil {
		return cp.Eval(m.vals)
	}
	return p.BoundAt(metric, m.pcvMap())
}

// pcvMap materialises the current PCV vector as the map form alerts
// carry; BoundAt over it reproduces exactly what boundAt computed.
func (m *Monitor) pcvMap() map[string]uint64 {
	out := make(map[string]uint64, len(m.pcvNames))
	for i, v := range m.pcvNames {
		out[v] = m.vals[i]
	}
	return out
}

func renderPCVs(pcvs map[string]uint64) string {
	names := make([]string, 0, len(pcvs))
	for v := range pcvs {
		names = append(names, v)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, v := range names {
		parts[i] = fmt.Sprintf("%s=%d", v, pcvs[v])
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Alerts returns every fired alert in order.
func (m *Monitor) Alerts() []Alert { return m.alerts }

// Violations counts soundness violations seen so far.
func (m *Monitor) Violations() int { return m.violations }

// Unclassified counts packets no contract path matched.
func (m *Monitor) Unclassified() int { return m.unclassified }

// Packets counts observed packets.
func (m *Monitor) Packets() int { return m.packets }

// MaxPredicted reports the largest predicted bound observed on the
// budgeted metric — Calibrate uses it to turn a benign run into a
// budget.
func (m *Monitor) MaxPredicted() uint64 { return m.maxPred }

// Overloaded reports whether any class currently has a raised page.
func (m *Monitor) Overloaded() bool {
	for _, st := range m.classes {
		if st.hys.Paged() {
			return true
		}
	}
	return false
}

// Calibrate derives an overload budget from a benign workload: replay it
// through an unbudgeted monitor and scale the worst predicted bound by
// factor (the operator's provisioning margin). This is the §5.2
// workflow: the contract plus expected traffic tells the operator what
// "normal" costs, and the monitor pages when predictions leave that
// envelope.
func Calibrate(ctx context.Context, ct *core.Contract, cfg Config, inst *nf.Instance, benign []traffic.Packet, factor float64) (uint64, error) {
	cfg.Budget = 0
	cfg.ClockHz, cfg.TargetPPS = 0, 0
	probe, err := New(ct, cfg)
	if err != nil {
		return 0, err
	}
	if _, err := probe.Run(ctx, inst, benign); err != nil {
		return 0, err
	}
	if probe.MaxPredicted() == 0 {
		return 0, fmt.Errorf("monitor: calibration run predicted nothing (no packets classified?)")
	}
	if factor < 1 {
		factor = 1
	}
	return uint64(float64(probe.MaxPredicted()) * factor), nil
}

// Report renders the monitor's state deterministically: classes sorted
// by label, alerts in firing order. Byte-identical for identical traces.
func (m *Monitor) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Monitor report: %s (metric %s", m.ct.NF, m.cfg.Metric)
	if m.cfg.Budget > 0 {
		fmt.Fprintf(&b, ", budget %d", m.cfg.Budget)
	}
	fmt.Fprintf(&b, ")\n")
	fmt.Fprintf(&b, "  packets %d, unclassified %d, violations %d, alerts %d\n",
		m.packets, m.unclassified, m.violations, len(m.alerts))
	labels := make([]string, 0, len(m.classes))
	for l := range m.classes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		st := m.classes[l]
		fmt.Fprintf(&b, "  class %-52s pkts %6d  max obs %8d  max pred %8d  p%02.0f %8.0f",
			l, st.packets, st.maxObserved, st.maxPred, m.cfg.Quantile*100, st.sketch.Quantile())
		if m.cfg.Budget > 0 {
			fmt.Fprintf(&b, "  headroom %8d", st.minHeadroom)
		}
		if st.hys.Paged() {
			fmt.Fprintf(&b, "  PAGED")
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, a := range m.alerts {
		fmt.Fprintf(&b, "  %s\n", a.String())
	}
	return b.String()
}
