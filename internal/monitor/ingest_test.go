package monitor_test

import (
	"context"
	"strings"
	"testing"

	"gobolt/internal/experiments"
	"gobolt/internal/monitor"
	"gobolt/internal/traffic"
)

// This file pins the sharded ingest hop itself: the lock-free SPSC
// ring backend against its channel ablation (Config.NoRing), the queue
// depth and flush-stall levers' absence from report semantics, and the
// adaptive flush's bounded detection delay.

// straddlingWorkload builds a warm/measure pair whose eight UDP flows
// deliberately straddle shards at every shard count — identity between
// the two ingest backends must hold on ANY trace (same routing, same
// per-shard order), not just stream-consistent ones.
func straddlingWorkload() (warm, meas []traffic.Packet) {
	streams := traffic.UDPStreams(traffic.StreamConfig{Streams: 8, PacketsPerStream: 40, Seed: 3})
	var warmStreams, measStreams [][]traffic.Packet
	for _, s := range streams {
		warmStreams = append(warmStreams, s[:10])
		measStreams = append(measStreams, s[10:])
	}
	warm = traffic.Interleave(1, 1_000, 1_000, warmStreams...)
	meas = traffic.Interleave(2, 1_000+uint64(len(warm))*1_000, 1_000, measStreams...)
	return warm, meas
}

// TestRingChannelReportIdentity pins the tentpole's semantic bar: the
// SPSC-ring ingest and the channel ingest produce byte-identical
// reports at every shard count, on a workload whose classes straddle
// shards. The hop is a transport, not a detector.
func TestRingChannelReportIdentity(t *testing.T) {
	_, ct := buildRoster(t, "nat")
	warm, meas := straddlingWorkload()
	for _, shards := range shardCounts {
		_, ringRep := runMonitored(t, rebuildRoster(t, "nat"), ct,
			monitor.Config{Shards: shards, Budget: 600}, warm, meas)
		_, chanRep := runMonitored(t, rebuildRoster(t, "nat"), ct,
			monitor.Config{Shards: shards, Budget: 600, NoRing: true}, warm, meas)
		if ringRep != chanRep {
			t.Errorf("shards=%d: ring and channel ingest reports differ\nring:\n%s\nchannel:\n%s",
				shards, ringRep, chanRep)
		}
	}
}

// TestQueueDepthAndFlushStallInvariance pins that the new ingest
// levers — queue depth (including the ring's power-of-two rounding)
// and the adaptive flush threshold, on both backends — never appear in
// the merged output. FlushStall=1 degenerates nearly every batch to a
// partial handoff; the report must not care.
func TestQueueDepthAndFlushStallInvariance(t *testing.T) {
	_, ct := buildRoster(t, "nat")
	warm, meas := straddlingWorkload()
	var want string
	for _, cfg := range []monitor.Config{
		{Shards: 4},
		{Shards: 4, Queue: 1},
		{Shards: 4, Queue: 3}, // rounds up to 4 slots
		{Shards: 4, Queue: 64},
		{Shards: 4, Queue: 1, NoRing: true},
		{Shards: 4, Queue: 64, NoRing: true},
		{Shards: 4, FlushStall: 1},
		{Shards: 4, FlushStall: 7},
		{Shards: 4, FlushStall: 1, NoRing: true},
		{Shards: 4, Batch: 5, Queue: 2, FlushStall: 3},
	} {
		_, got := runMonitored(t, rebuildRoster(t, "nat"), ct, cfg, warm, meas)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("config %+v report differs\nfirst:\n%s\nthis:\n%s", cfg, want, got)
		}
	}
}

// TestAdaptiveFlushBoundsDetection is the trailing-partial-batch
// latency fix's pin. The §5.2 attack trace is 32 packets of one flow;
// with Batch=64 the whole attack fits one never-full batch, which
// before the adaptive flush only reached its shard at Close — correct
// report, unbounded detection delay. The test routes the attack flow
// to shard 0 and a benign tail to shard 1, and asserts:
//
//   - with FlushStall=16 the attack batch is handed off partially
//     filled (PartialFlushes > 0) and the monitor still pages at
//     packet 7 — the same packet the serial monitor pages at;
//   - with the stall bound effectively off (huge FlushStall), no
//     partial handoff happens before Close, demonstrating the lever is
//     what bounds the delay.
func TestAdaptiveFlushBoundsDetection(t *testing.T) {
	sc := experiments.QuickScale()
	ctx := context.Background()

	// Mirror the §5.2 pipeline's shapes: quick scale has a 512-entry
	// table, a 128-MAC benign population, and a 200-packet warmup; the
	// budget is calibrated at 1.25× the worst benign prediction, exactly
	// as experiments.AttackDetection does it.
	benign := func(packets int, startNS uint64, seed int64) []traffic.Packet {
		return traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: packets, MACs: 128, Ports: 4,
			StartNS: startNS, GapNS: 1_000, Seed: seed,
		})
	}
	calBr, calCt, err := experiments.AttackBridge(sc)
	if err != nil {
		t.Fatal(err)
	}
	budget, err := monitor.Calibrate(ctx, calCt, monitor.Config{Trigger: 3, Clear: 8},
		calBr.Instance, benign(200+sc.Packets, 1_000, 41), 1.25)
	if err != nil {
		t.Fatal(err)
	}

	run := func(cfg monitor.Config) (*monitor.Monitor, string) {
		cfg.Budget = budget
		br, ct, err := experiments.AttackBridge(sc)
		if err != nil {
			t.Fatal(err)
		}
		warm := benign(200, 1_000, 42)
		attackStart := 1_000 + uint64(len(warm))*1_000
		attack := traffic.CollidingFrames(br.Table, 32, attackStart, 1_000, 43)
		if attack == nil {
			t.Fatal("collision search found no attack trace")
		}
		tail := benign(192, attackStart+uint64(len(attack))*1_000, 45)
		trace := append(append([]traffic.Packet{}, attack...), tail...)
		if cfg.Shards > 1 {
			// Deterministic routing for the test: the attack flow owns
			// shard 0, everything else shard 1.
			attackKey := monitor.FlowKey(attack[0].Data, attack[0].InPort)
			cfg.FlowHash = func(pkt []byte, inPort uint64) uint64 {
				if monitor.FlowKey(pkt, inPort) == attackKey {
					return 0
				}
				return 1
			}
		}
		mon, err := monitor.New(ct, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := mon.Warm(ctx, br.Instance, warm); err != nil {
			t.Fatal(err)
		}
		if _, err := mon.Run(ctx, br.Instance, trace); err != nil {
			t.Fatal(err)
		}
		return mon, mon.Report()
	}

	firstOverload := func(mon *monitor.Monitor) int {
		for _, a := range mon.Alerts() {
			if a.Kind == monitor.AlertOverload {
				return a.PacketIndex
			}
		}
		return -1
	}

	serial, _ := run(monitor.Config{Trigger: 3, Clear: 8})
	want := firstOverload(serial)
	if want != 7 {
		t.Fatalf("serial attack pages at packet %d, expected the pinned packet 7", want)
	}

	sharded, _ := run(monitor.Config{
		Trigger: 3, Clear: 8,
		Shards: 2, Batch: 64, FlushStall: 16,
	})
	if got := firstOverload(sharded); got != want {
		t.Errorf("sharded Batch=64 pages at packet %d, serial at %d", got, want)
	}
	if sharded.PartialFlushes() == 0 {
		t.Error("FlushStall=16 with a 32-packet sub-Batch attack handed off no partial batch; the adaptive flush never engaged")
	}
	if sharded.Violations() != serial.Violations() {
		t.Errorf("violations: sharded %d, serial %d", sharded.Violations(), serial.Violations())
	}

	lazy, _ := run(monitor.Config{
		Trigger: 3, Clear: 8,
		Shards: 2, Batch: 64, FlushStall: 1 << 20,
	})
	if got := firstOverload(lazy); got != want {
		t.Errorf("stall-unbounded run pages at packet %d, serial at %d (drain at Close must still merge identically)", got, want)
	}
	if lazy.PartialFlushes() != 0 {
		t.Errorf("FlushStall=2^20 handed off %d partial batches; the lever is not what bounds the delay", lazy.PartialFlushes())
	}
}

// TestPartialFlushCountsAccumulate pins PartialFlushes across multiple
// Runs of one monitor: each sharded Run's adaptive handoffs add up, and
// a serial monitor reports zero.
func TestPartialFlushCountsAccumulate(t *testing.T) {
	_, ct := buildRoster(t, "nat")
	warm, meas := straddlingWorkload()
	inst := rebuildRoster(t, "nat")
	mon, err := monitor.New(ct, monitor.Config{Shards: 4, FlushStall: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := mon.Warm(ctx, inst, warm); err != nil {
		t.Fatal(err)
	}
	if _, err := mon.Run(ctx, inst, meas); err != nil {
		t.Fatal(err)
	}
	after1 := mon.PartialFlushes()
	if after1 == 0 {
		t.Fatal("FlushStall=4 over an 8-flow straddling trace produced no partial handoffs")
	}
	if _, err := mon.Run(ctx, inst, meas); err != nil {
		t.Fatal(err)
	}
	if after2 := mon.PartialFlushes(); after2 <= after1 {
		t.Errorf("second Run did not accumulate partial flushes: %d then %d", after1, after2)
	}

	serialMon, report := runMonitored(t, rebuildRoster(t, "nat"), ct, monitor.Config{}, warm, meas)
	if serialMon.PartialFlushes() != 0 {
		t.Errorf("serial monitor reports %d partial flushes, want 0\n%s", serialMon.PartialFlushes(), report)
	}
	if !strings.Contains(report, "packets") {
		t.Fatalf("sanity: report rendered empty:\n%s", report)
	}
}
