package monitor_test

import (
	"context"
	"strings"
	"testing"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/experiments"
	"gobolt/internal/monitor"
	"gobolt/internal/nf"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// shardCounts is the sweep every identity test runs: serial (the default
// config) plus the sharded engine at 1, 2, 4, and 8 shards.
var shardCounts = []int{1, 2, 4, 8}

// buildRoster builds a roster NF with its contract (QuickScale, shared
// contract cache — generation runs once per NF per test binary).
func buildRoster(t *testing.T, name string) (*nf.Instance, *core.Contract) {
	t.Helper()
	sc := experiments.QuickScale()
	inst, err := nf.Build(name, nf.BuildParams{Capacity: sc.TableCapacity})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sc.Generator().Generate(inst.Prog, inst.Models)
	if err != nil {
		t.Fatal(err)
	}
	return inst, ct
}

// rebuildRoster returns a fresh instance of the same NF (replays mutate
// NF state, so every monitored run needs its own instance).
func rebuildRoster(t *testing.T, name string) *nf.Instance {
	t.Helper()
	inst, err := nf.Build(name, nf.BuildParams{Capacity: experiments.QuickScale().TableCapacity})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// streamConsistentCase is one NF plus a purpose-built stream-consistent
// workload: every input class's packets carry one constant flow
// identity, so monitor.FlowKey lands each class on exactly one shard at
// any shard count — the precondition for merged-report byte-identity.
type streamConsistentCase struct {
	nf         string
	warm, meas []traffic.Packet
}

// streamConsistentCases builds the Figure-1 roster coverage: each case
// mixes a single-flow stream (one steady class once warmed) with an
// invalid-frame stream (the contract's non-IPv4 class; every frame is
// byte-identical, hence one shard).
func streamConsistentCases() []streamConsistentCase {
	var cases []streamConsistentCase
	for _, name := range []string{"nat", "bridge", "firewall", "static-router"} {
		var flowStream []traffic.Packet
		if name == "bridge" {
			flowStream = traffic.BridgeStreams(traffic.StreamConfig{Streams: 1, PacketsPerStream: 160, Seed: 5})[0]
		} else {
			flowStream = traffic.UDPStreams(traffic.StreamConfig{Streams: 1, PacketsPerStream: 160, Seed: 5})[0]
		}
		warm, tail := flowStream[:60], flowStream[60:]
		for i := range warm {
			warm[i].Time = 1_000 + uint64(i)*1_000
		}
		invalid := make([]traffic.Packet, 40)
		for i := range invalid {
			invalid[i] = traffic.NonIPv4(0, 0)
		}
		meas := traffic.Interleave(9, 1_000+uint64(len(warm))*1_000, 1_000, tail, invalid)
		cases = append(cases, streamConsistentCase{nf: name, warm: warm, meas: meas})
	}
	return cases
}

// runMonitored replays warm then meas through a fresh monitor over inst
// and returns the rendered report.
func runMonitored(t *testing.T, inst *nf.Instance, ct *core.Contract, cfg monitor.Config, warm, meas []traffic.Packet) (*monitor.Monitor, string) {
	t.Helper()
	ctx := context.Background()
	mon, err := monitor.New(ct, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm) > 0 {
		if err := mon.Warm(ctx, inst, warm); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mon.Run(ctx, inst, meas); err != nil {
		t.Fatal(err)
	}
	return mon, mon.Report()
}

// TestShardReportIdentityStreamConsistent pins the merge layer's
// headline guarantee across the roster: on stream-consistent traces the
// sharded Report() is byte-identical to the serial monitor's at every
// shard count in {1,2,4,8}.
func TestShardReportIdentityStreamConsistent(t *testing.T) {
	for _, tc := range streamConsistentCases() {
		tc := tc
		t.Run(tc.nf, func(t *testing.T) {
			_, ct := buildRoster(t, tc.nf)
			_, want := runMonitored(t, rebuildRoster(t, tc.nf), ct, monitor.Config{}, tc.warm, tc.meas)
			if strings.Count(want, "class ") < 2 {
				t.Fatalf("workload exercised fewer than 2 classes — the merge has nothing to merge:\n%s", want)
			}
			for _, shards := range shardCounts {
				_, got := runMonitored(t, rebuildRoster(t, tc.nf), ct,
					monitor.Config{Shards: shards}, tc.warm, tc.meas)
				if got != want {
					t.Errorf("shards=%d report differs from serial\nserial:\n%s\nsharded:\n%s", shards, want, got)
				}
			}
		})
	}
}

// TestShardUnclassifiedDedupIdentity monitors an instance with the
// wrong contract (nat's contract over the bridge — the "wrong contract
// for the deployed build" scenario): every packet is unclassified, on
// every shard. The merged report must still be byte-identical to the
// serial one at every shard count — in particular the once-only
// unclassified page must dedup to the globally first packet, not fire
// once per shard.
func TestShardUnclassifiedDedupIdentity(t *testing.T) {
	_, natCT := buildRoster(t, "nat")
	streams := traffic.BridgeStreams(traffic.StreamConfig{Streams: 6, PacketsPerStream: 20, Seed: 21})
	meas := traffic.Interleave(22, 1_000, 1_000, streams...)
	serialMon, want := runMonitored(t, rebuildRoster(t, "bridge"), natCT, monitor.Config{}, nil, meas)
	if serialMon.Unclassified() != len(meas) {
		t.Fatalf("expected every packet unclassified, got %d of %d:\n%s",
			serialMon.Unclassified(), len(meas), want)
	}
	if !strings.Contains(want, "unclassified] pkt 0 ") {
		t.Fatalf("serial report should page on packet 0:\n%s", want)
	}
	for _, shards := range shardCounts {
		mon, got := runMonitored(t, rebuildRoster(t, "bridge"), natCT,
			monitor.Config{Shards: shards}, nil, meas)
		if got != want {
			t.Errorf("shards=%d report differs from serial\nserial:\n%s\nsharded:\n%s", shards, want, got)
		}
		if n := len(mon.Alerts()); n != 1 {
			t.Errorf("shards=%d: %d unclassified pages, want the deduped 1", shards, n)
		}
	}
}

// TestShardAttackReportIdentity runs the §5.2 collision-attack trace —
// fixed IP pair, so every frame is one flow — under a paging budget at
// every shard count: the overload/cleared alert stream and the PAGED
// class rows must merge byte-identically to the serial monitor.
func TestShardAttackReportIdentity(t *testing.T) {
	sc := experiments.QuickScale()
	ctx := context.Background()
	run := func(shards int) string {
		br, ct, err := experiments.AttackBridge(sc)
		if err != nil {
			t.Fatal(err)
		}
		cfg := monitor.Config{Budget: 400, Trigger: 3, Clear: 8, Shards: shards}
		mon, err := monitor.New(ct, cfg)
		if err != nil {
			t.Fatal(err)
		}
		warm := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: 64, MACs: 16, Ports: 4, StartNS: 1_000, GapNS: 1_000, Seed: 42,
		})
		if err := mon.Warm(ctx, br.Instance, warm); err != nil {
			t.Fatal(err)
		}
		attack := traffic.CollidingFrames(br.Table, 32, 70_000, 1_000, 43)
		if attack == nil {
			t.Fatal("collision search found no attack trace")
		}
		if _, err := mon.Run(ctx, br.Instance, attack); err != nil {
			t.Fatal(err)
		}
		return mon.Report()
	}
	want := run(0) // serial
	if !strings.Contains(want, "OVERLOAD") {
		t.Fatalf("attack run never paged — budget too high for the identity test to bite:\n%s", want)
	}
	for _, shards := range shardCounts {
		if got := run(shards); got != want {
			t.Errorf("shards=%d attack report differs from serial\nserial:\n%s\nsharded:\n%s", shards, want, got)
		}
	}
}

// TestShardBatchInvariance pins that batch size is invisible in the
// merged output: the shard assignment and per-shard order never depend
// on batching, so shards=4 at batch {1,7,64} — and the synchronous
// Observe-driven ingest, which batches nothing — all produce the
// identical report, even on a workload whose classes straddle shards.
func TestShardBatchInvariance(t *testing.T) {
	_, ct := buildRoster(t, "nat")
	streams := traffic.UDPStreams(traffic.StreamConfig{Streams: 8, PacketsPerStream: 40, Seed: 3})
	var warmStreams, measStreams [][]traffic.Packet
	for _, s := range streams {
		warmStreams = append(warmStreams, s[:10])
		measStreams = append(measStreams, s[10:])
	}
	warm := traffic.Interleave(1, 1_000, 1_000, warmStreams...)
	meas := traffic.Interleave(2, 1_000+uint64(len(warm))*1_000, 1_000, measStreams...)

	var want string
	for _, batch := range []int{1, 7, 64} {
		_, got := runMonitored(t, rebuildRoster(t, "nat"), ct,
			monitor.Config{Shards: 4, Batch: batch}, warm, meas)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("batch=%d report differs\nfirst:\n%s\nthis:\n%s", batch, want, got)
		}
	}

	// Synchronous ingest: drive the same sharded monitor through Observe
	// (no batches, no shard goroutines — routing and state only).
	inst := rebuildRoster(t, "nat")
	mon, err := monitor.New(ct, monitor.Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := mon.Warm(ctx, inst, warm); err != nil {
		t.Fatal(err)
	}
	var calls []core.CallRecord
	restore := core.AttachRecorder(inst.Env, &calls)
	defer restore()
	runner := &distill.Runner{Observer: func(_ int, pkt traffic.Packet, rec *distill.Record) {
		mon.Observe(pkt, rec, calls)
		calls = calls[:0]
	}}
	if _, err := runner.RunContext(ctx, inst, meas); err != nil {
		t.Fatal(err)
	}
	if got := mon.Report(); got != want {
		t.Errorf("Observe-driven ingest differs from batched Run\nbatched:\n%s\nobserve:\n%s", want, got)
	}
}

// TestPooledMatchesUnpooled pins the pooled fast path against the
// original allocating path: the default Run, the NoPool ablation, and
// they must agree byte-for-byte on the same workload.
func TestPooledMatchesUnpooled(t *testing.T) {
	_, ct := buildRoster(t, "nat")
	streams := traffic.UDPStreams(traffic.StreamConfig{Streams: 4, PacketsPerStream: 50, Seed: 8})
	var warmStreams, measStreams [][]traffic.Packet
	for _, s := range streams {
		warmStreams = append(warmStreams, s[:15])
		measStreams = append(measStreams, s[15:])
	}
	warm := traffic.Interleave(4, 1_000, 1_000, warmStreams...)
	meas := traffic.Interleave(5, 1_000+uint64(len(warm))*1_000, 1_000, measStreams...)

	_, pooled := runMonitored(t, rebuildRoster(t, "nat"), ct, monitor.Config{Budget: 600}, warm, meas)
	_, unpooled := runMonitored(t, rebuildRoster(t, "nat"), ct, monitor.Config{Budget: 600, NoPool: true}, warm, meas)
	if pooled != unpooled {
		t.Errorf("pooled and unpooled reports differ\npooled:\n%s\nunpooled:\n%s", pooled, unpooled)
	}
}

// TestCalibrateMetricAgreement is the regression for the Calibrate
// metric bug: with ClockHz/TargetPPS set, New derives a Cycles budget on
// the detailed model — the calibration probe must measure Cycles too
// (it used to zero the derivation fields before New, so the probe
// measured Instructions and the budget landed in the wrong metric).
func TestCalibrateMetricAgreement(t *testing.T) {
	_, ct := buildRoster(t, "nat")
	benign := traffic.UDPStreams(traffic.StreamConfig{Streams: 2, PacketsPerStream: 60, Seed: 11})
	trace := traffic.Interleave(12, 1_000, 1_000, benign...)
	ctx := context.Background()

	cfg := monitor.Config{ClockHz: 3e9, TargetPPS: 1e6}
	got, err := monitor.Calibrate(ctx, ct, cfg, rebuildRoster(t, "nat"), trace, 1.25)
	if err != nil {
		t.Fatal(err)
	}

	// The probe must agree with an explicit Cycles monitor over the same
	// replay: budget = ceil-free 1.25 × max predicted cycles.
	ref, err := monitor.New(ct, monitor.Config{Metric: perf.Cycles, Detailed: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(ctx, rebuildRoster(t, "nat"), trace); err != nil {
		t.Fatal(err)
	}
	want := uint64(float64(ref.MaxPredicted()) * 1.25)
	if got != want {
		t.Fatalf("calibrated budget %d, want %d (1.25 × max predicted cycles %d)", got, want, ref.MaxPredicted())
	}

	// Guard the regression is meaningful: the Instructions-metric answer
	// must actually differ, or the old bug would be invisible here.
	icRef, err := monitor.New(ct, monitor.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := icRef.Run(ctx, rebuildRoster(t, "nat"), trace); err != nil {
		t.Fatal(err)
	}
	if icBudget := uint64(float64(icRef.MaxPredicted()) * 1.25); icBudget == want {
		t.Skipf("IC and cycle bounds coincide on this workload (budget %d); regression not distinguishable", want)
	}
}

// FuzzShardMerge drives random stream compositions through the serial
// and sharded monitors. Invariants asserted on every input: packet,
// unclassified, and violation counts match, and the violation +
// unclassified alert sets match exactly (those are per-packet signals —
// partition-independent). When the run happens to be stream-consistent
// (every class's packets landed on one shard), the entire report must be
// byte-identical.
func FuzzShardMerge(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(12), true, false, uint8(0))
	f.Add(int64(7), uint8(4), uint8(1), uint8(30), false, true, uint8(1))
	f.Add(int64(42), uint8(8), uint8(5), uint8(8), true, false, uint8(3))
	f.Add(int64(99), uint8(3), uint8(2), uint8(20), false, true, uint8(64))

	sc := experiments.QuickScale()
	inst0, err := nf.Build("nat", nf.BuildParams{Capacity: sc.TableCapacity})
	if err != nil {
		f.Fatal(err)
	}
	ct, err := sc.Generator().Generate(inst0.Prog, inst0.Models)
	if err != nil {
		f.Fatal(err)
	}
	ctx := context.Background()

	f.Fuzz(func(t *testing.T, seed int64, shardsIn, streamsIn, perStreamIn uint8, budgeted, noring bool, queueIn uint8) {
		shards := int(shardsIn)%8 + 1
		nStreams := int(streamsIn)%6 + 1
		perStream := int(perStreamIn)%28 + 4
		streams := traffic.UDPStreams(traffic.StreamConfig{
			Streams: nStreams, PacketsPerStream: perStream, Seed: seed,
		})
		// Mix in an invalid-frame stream on odd seeds so the unclassified
		// dedup path gets fuzzed too (nat classifies non-IPv4 as its
		// invalid class; truly unclassifiable traffic needs a foreign
		// packet shape — UDP with options does it for the nat contract).
		if seed%2 != 0 {
			foreign := make([]traffic.Packet, 6)
			for i := range foreign {
				foreign[i] = traffic.WithOptions(2, 0, 0)
			}
			streams = append(streams, foreign)
		}
		trace := traffic.Interleave(seed+1, 1_000, 1_000, streams...)
		var budget uint64
		if budgeted {
			budget = 500
		}

		run := func(shardCount int) (*monitor.Monitor, map[int]string) {
			inst, err := nf.Build("nat", nf.BuildParams{Capacity: sc.TableCapacity})
			if err != nil {
				t.Fatal(err)
			}
			classes := make(map[int]string)
			idx := 0
			// The ingest backend and queue depth are transport knobs; the
			// serial baseline never sees them, so any divergence they cause
			// fails the merge oracle below.
			cfg := monitor.Config{
				Shards: shardCount, Budget: budget, Batch: 8,
				NoRing: noring, Queue: int(queueIn)%9 + 1,
			}
			if shardCount <= 1 {
				cfg.OnClassify = func(_ *core.PacketObservation, path *core.PathContract) {
					if path != nil {
						classes[idx] = path.Class()
					}
					idx++
				}
			}
			mon, err := monitor.New(ct, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mon.Run(ctx, inst, trace); err != nil {
				t.Fatal(err)
			}
			return mon, classes
		}

		serial, classes := run(1)
		sharded, _ := run(shards)

		if serial.Packets() != sharded.Packets() {
			t.Fatalf("packets: serial %d, sharded %d", serial.Packets(), sharded.Packets())
		}
		if serial.Unclassified() != sharded.Unclassified() {
			t.Fatalf("unclassified: serial %d, sharded %d", serial.Unclassified(), sharded.Unclassified())
		}
		if serial.Violations() != sharded.Violations() {
			t.Fatalf("violations: serial %d, sharded %d", serial.Violations(), sharded.Violations())
		}
		filter := func(alerts []monitor.Alert) []monitor.Alert {
			var out []monitor.Alert
			for _, a := range alerts {
				if a.Kind == monitor.AlertViolation || a.Kind == monitor.AlertUnclassified {
					out = append(out, a)
				}
			}
			return out
		}
		sa, ba := filter(serial.Alerts()), filter(sharded.Alerts())
		if len(sa) != len(ba) {
			t.Fatalf("per-packet alert count: serial %d, sharded %d", len(sa), len(ba))
		}
		for i := range sa {
			if sa[i].Kind != ba[i].Kind || sa[i].PacketIndex != ba[i].PacketIndex ||
				sa[i].Observed != ba[i].Observed || sa[i].Predicted != ba[i].Predicted {
				t.Fatalf("per-packet alert %d differs: serial %+v, sharded %+v", i, sa[i], ba[i])
			}
		}

		// Stream-consistency check from the serial run's ground truth:
		// does every class's packet set hash to one shard?
		consistent := true
		classShard := make(map[string]int)
		for i, p := range trace {
			class, ok := classes[i]
			if !ok {
				continue // unclassified: merge dedups, counts checked above
			}
			sh := int(monitor.FlowKey(p.Data, p.InPort) % uint64(shards))
			if prev, seen := classShard[class]; seen && prev != sh {
				consistent = false
				break
			}
			classShard[class] = sh
		}
		if consistent {
			if sr, br := serial.Report(), sharded.Report(); sr != br {
				t.Fatalf("stream-consistent trace, reports differ\nserial:\n%s\nsharded:\n%s", sr, br)
			}
		}
	})
}
