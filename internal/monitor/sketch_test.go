package monitor

import (
	"math"
	"sort"
	"testing"
)

func TestQuantileSketchExactBelowFiveSamples(t *testing.T) {
	s := newQuantileSketch(0.5)
	if got := s.Quantile(); got != 0 {
		t.Fatalf("empty sketch: got %v, want 0", got)
	}
	for _, v := range []float64{30, 10, 20} {
		s.Add(v)
	}
	if got := s.Quantile(); got != 20 {
		t.Fatalf("median of {10,20,30}: got %v, want 20", got)
	}
	if s.Count() != 3 {
		t.Fatalf("Count() = %d, want 3", s.Count())
	}
}

func TestQuantileSketchTracksLargeStreams(t *testing.T) {
	for _, q := range []float64{0.5, 0.9, 0.99} {
		s := newQuantileSketch(q)
		// Deterministic LCG stream; the P² estimate must stay within a
		// loose band of the exact sample quantile.
		var exact []float64
		x := uint64(42)
		for i := 0; i < 5000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			v := float64(x >> 40) // uniform-ish in [0, 2^24)
			s.Add(v)
			exact = append(exact, v)
		}
		sort.Float64s(exact)
		want := exact[int(q*float64(len(exact)-1))]
		got := s.Quantile()
		if math.Abs(got-want) > 0.2*want {
			t.Errorf("q=%v: sketch %v, exact %v (off by more than 20%%)", q, got, want)
		}
	}
}

func TestQuantileSketchMonotoneStream(t *testing.T) {
	s := newQuantileSketch(0.99)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	got := s.Quantile()
	if got < 900 || got > 1000 {
		t.Fatalf("p99 of 1..1000: got %v, want within [900, 1000]", got)
	}
}

func TestRingWraparound(t *testing.T) {
	r := newWindow(4)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot: %v", got)
	}
	for v := uint64(1); v <= 2; v++ {
		r.Add(v)
	}
	if got := r.Snapshot(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("partial ring snapshot: %v, want [1 2]", got)
	}
	for v := uint64(3); v <= 6; v++ {
		r.Add(v)
	}
	got := r.Snapshot()
	want := []uint64{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("wrapped snapshot: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wrapped snapshot: %v, want %v (oldest first)", got, want)
		}
	}
}

func TestRingZeroSize(t *testing.T) {
	r := newWindow(0) // clamped to one slot
	r.Add(7)
	if got := r.Snapshot(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("snapshot: %v, want [7]", got)
	}
}

func TestHysteresisTransitions(t *testing.T) {
	h := &hysteresis{Trigger: 3, Clear: 2}
	steps := []struct {
		hot            bool
		fired, cleared bool
		paged          bool
	}{
		{true, false, false, false},  // streak 1
		{true, false, false, false},  // streak 2
		{false, false, false, false}, // outlier resets the streak
		{true, false, false, false},
		{true, false, false, false},
		{true, true, false, true}, // third consecutive hot pages
		{true, false, false, true},
		{false, false, false, true},  // one lull never clears
		{true, false, false, true},   // lull streak resets
		{false, false, false, true},  // cool 1
		{false, false, true, false},  // cool 2 clears
		{false, false, false, false}, // already quiet: no re-clear
	}
	for i, st := range steps {
		fired, cleared := h.Observe(st.hot)
		if fired != st.fired || cleared != st.cleared || h.Paged() != st.paged {
			t.Fatalf("step %d (hot=%v): fired=%v cleared=%v paged=%v, want %v/%v/%v",
				i, st.hot, fired, cleared, h.Paged(), st.fired, st.cleared, st.paged)
		}
	}
}
