package monitor_test

import (
	"context"
	"testing"

	"gobolt/internal/distill"
	"gobolt/internal/experiments"
	"gobolt/internal/monitor"
	"gobolt/internal/traffic"
)

// BenchmarkMonitoredReplay vs BenchmarkBareReplay is the per-packet
// price of online monitoring (classification + bound evaluation +
// streaming state); BENCH_monitor.json reports the same comparison via
// cmd/boltmon -benchjson. The Unpooled and Sharded variants are the
// ablation: the pre-pooling per-packet path, and the flow-hashed batched
// fan-out.
func BenchmarkMonitoredReplay(b *testing.B)         { benchMonitored(b, monitor.Config{}) }
func BenchmarkMonitoredReplayUnpooled(b *testing.B) { benchMonitored(b, monitor.Config{NoPool: true}) }
func BenchmarkMonitoredReplaySharded2(b *testing.B) {
	benchMonitored(b, monitor.Config{Shards: 2, Batch: 64})
}
func BenchmarkMonitoredReplaySharded4(b *testing.B) {
	benchMonitored(b, monitor.Config{Shards: 4, Batch: 64})
}
func BenchmarkMonitoredReplaySharded2Chan(b *testing.B) {
	benchMonitored(b, monitor.Config{Shards: 2, Batch: 64, NoRing: true})
}

func benchMonitored(b *testing.B, cfg monitor.Config) {
	sc := experiments.QuickScale()
	br, ct, err := experiments.AttackBridge(sc)
	if err != nil {
		b.Fatal(err)
	}
	mon, err := monitor.New(ct, cfg)
	if err != nil {
		b.Fatal(err)
	}
	pkts := benchFrames(sc, 2048)
	if err := mon.Warm(context.Background(), br.Instance, pkts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.Run(context.Background(), br.Instance, pkts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pkts)), "ns/pkt")
}

func BenchmarkBareReplay(b *testing.B) {
	sc := experiments.QuickScale()
	br, _, err := experiments.AttackBridge(sc)
	if err != nil {
		b.Fatal(err)
	}
	runner := &distill.Runner{}
	pkts := benchFrames(sc, 2048)
	if _, err := runner.Run(br.Instance, pkts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(br.Instance, pkts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pkts)), "ns/pkt")
}

func benchFrames(sc experiments.Scale, n int) []traffic.Packet {
	return traffic.BridgeFrames(traffic.BridgeConfig{
		Packets: n, MACs: 64, Ports: 4,
		StartNS: 1_000, GapNS: 1_000, Seed: 21,
	})
}
