package monitor

import (
	"sync"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/ring"
	"gobolt/internal/traffic"
)

// This file is the sharded half of the monitor: the per-shard engine
// (classifier scratch, per-class streaming state, compiled-bound value
// vector), the RSS-style flow hash, the batched ingest path, and the
// deterministic merge layer behind Report()/Alerts().
//
// The flow-hash contract: a packet's shard is FlowHash(pkt, inPort) mod
// Shards, fixed for the monitor's lifetime. Each shard processes its
// packets in global arrival order (the ingest path is order-preserving
// per shard), so per-class streaming state on a shard evolves exactly as
// the serial monitor's would — provided every packet of that class lands
// on that one shard. Traces with that property are *stream-consistent*,
// and on them the merged report is byte-identical to the serial
// monitor's at any shard count. On other traces the merge is still
// deterministic (and violation/unclassified accounting is still exact —
// those are per-packet signals), but hysteresis and tail sketches see
// per-shard subsequences.

const (
	maxShards    = 1024
	defaultBatch = 64
	// defaultQueue bounds each shard's ingest queue, in batches: enough
	// to keep a shard busy while the replay fills the next batch, small
	// enough to bound memory. Config.Queue overrides it.
	defaultQueue = 4
	// maxQueue caps Config.Queue; the queue is a hop, not a buffer.
	maxQueue = 1 << 16
)

// FlowKey is the default RSS-style flow hash (FNV-1a). IPv4 packets
// hash their L3 flow identity — source address, destination address,
// protocol — so one L3 stream stays one flow even as L4 ports churn
// (and so CASTAN-style attack streams varying only L2/L4 fields stay on
// one shard). Non-IPv4 frames hash the Ethernet header plus arrival
// port.
func FlowKey(pkt []byte, inPort uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	if len(pkt) >= 34 && pkt[12] == 0x08 && pkt[13] == 0x00 {
		h = (h ^ uint64(pkt[23])) * prime64 // protocol
		for _, c := range pkt[26:34] {      // src, dst IPv4
			h = (h ^ uint64(c)) * prime64
		}
		return h
	}
	n := 14
	if len(pkt) < n {
		n = len(pkt)
	}
	for _, c := range pkt[:n] {
		h = (h ^ uint64(c)) * prime64
	}
	return (h ^ inPort) * prime64
}

// classState is the streaming state for one input class on one shard.
type classState struct {
	class       string
	packets     int
	violations  int
	maxObserved uint64
	maxPred     uint64
	minHeadroom int64
	win         *window
	sketch      *quantileSketch
	hys         hysteresis
}

// engine is one shard's worth of monitor: a classifier (matcher scratch
// is not goroutine-safe, so each shard compiles its own), the reused
// observation and PCV value vector, per-class streaming state, and the
// shard's alert log. An engine is only ever touched by one goroutine at
// a time: the caller's for the serial monitor, its shard worker during a
// sharded Run.
type engine struct {
	m      *Monitor
	cls    *core.Classifier
	keyBuf []byte
	vals   []uint64
	obs    core.PacketObservation

	packets      int
	unclassified int
	firstUnclass int
	violations   int
	maxPred      uint64
	classes      map[string]*classState
	alerts       []Alert
}

func newEngine(m *Monitor) (*engine, error) {
	cls, err := core.NewClassifier(m.ct)
	if err != nil {
		return nil, err
	}
	return &engine{
		m: m, cls: cls,
		vals:         make([]uint64, len(m.pcvNames)),
		firstUnclass: -1,
		classes:      make(map[string]*classState),
	}, nil
}

// observe classifies and checks one measured packet. idx is the global
// packet index assigned at ingest; pcvs is the Distiller's per-packet
// PCV observation map.
func (e *engine) observe(idx int, obs *core.PacketObservation, ic, ma, cycles uint64, pcvs map[string]uint64) {
	m := e.m
	e.packets++

	var path *core.PathContract
	var ok bool
	if m.cfg.NoPool {
		path, ok = e.cls.Classify(obs)
	} else {
		path, ok = e.cls.ClassifyKeyed(obs, &e.keyBuf)
	}
	if m.cfg.OnClassify != nil {
		m.cfg.OnClassify(obs, path)
	}
	if !ok {
		e.unclassified++
		if e.firstUnclass < 0 {
			e.firstUnclass = idx
			e.fire(Alert{Kind: AlertUnclassified, PacketIndex: idx, Time: obs.Time, Metric: m.cfg.Metric})
		}
		return
	}

	// The observed-PCV vector, exactly as the offline soundness check
	// binds it: every PCV the contract mentions, 0 when unobserved.
	for i, v := range m.pcvNames {
		e.vals[i] = pcvs[v]
	}
	if m.shardIdx >= 0 {
		// Shard-aware checks price in the deployment's contenders.
		e.vals[m.shardIdx] = uint64(m.cfg.Shards - 1)
	}

	// Violation detection on every measured metric.
	checks := [perf.NumMetrics]struct {
		metric   perf.Metric
		observed uint64
	}{
		{perf.Instructions, ic},
		{perf.MemAccesses, ma},
	}
	nChecks := 2
	if m.detailed != nil {
		checks[nChecks] = struct {
			metric   perf.Metric
			observed uint64
		}{perf.Cycles, cycles}
		nChecks++
	}
	st := e.classState(m.classOf[path])
	st.packets++
	for _, c := range checks[:nChecks] {
		pred := e.boundAt(path, c.metric)
		if c.observed > pred {
			st.violations++
			e.violations++
			e.fire(Alert{
				Kind: AlertViolation, PacketIndex: idx, Time: obs.Time,
				Class: m.classOf[path], PathID: path.ID, Metric: c.metric,
				Observed: c.observed, Predicted: pred,
				PCVs: e.pcvMap(), Window: st.win.Snapshot(),
			})
		}
	}

	// Streaming per-class state and overload alerting on the budgeted
	// metric: the *predicted* bound at the observed PCVs is the signal —
	// it rises with the PCVs adversarial traffic inflates, ahead of any
	// measurable collapse.
	observed := metricValue(ic, ma, cycles, m.cfg.Metric)
	predicted := e.boundAt(path, m.cfg.Metric)
	st.win.Add(observed)
	st.sketch.Add(float64(observed))
	if observed > st.maxObserved {
		st.maxObserved = observed
	}
	if predicted > st.maxPred {
		st.maxPred = predicted
	}
	if predicted > e.maxPred {
		e.maxPred = predicted
	}
	if m.cfg.Budget > 0 {
		headroom := int64(m.cfg.Budget) - int64(predicted)
		if st.packets == 1 || headroom < st.minHeadroom {
			st.minHeadroom = headroom
		}
		fired, cleared := st.hys.Observe(predicted > m.cfg.Budget)
		if fired {
			e.fire(Alert{
				Kind: AlertOverload, PacketIndex: idx, Time: obs.Time,
				Class: m.classOf[path], PathID: path.ID, Metric: m.cfg.Metric,
				Observed: observed, Predicted: predicted, Budget: m.cfg.Budget,
				PCVs: e.pcvMap(), Window: st.win.Snapshot(),
			})
		}
		if cleared {
			e.fire(Alert{
				Kind: AlertCleared, PacketIndex: idx, Time: obs.Time,
				Class: m.classOf[path], PathID: path.ID, Metric: m.cfg.Metric,
				Predicted: predicted, Budget: m.cfg.Budget,
			})
		}
	}
}

func (e *engine) classState(class string) *classState {
	st, ok := e.classes[class]
	if !ok {
		st = &classState{
			class:  class,
			win:    newWindow(e.m.cfg.RingSize),
			sketch: newQuantileSketch(e.m.cfg.Quantile),
			hys:    hysteresis{Trigger: e.m.cfg.Trigger, Clear: e.m.cfg.Clear},
		}
		e.classes[class] = st
	}
	return st
}

func (e *engine) fire(a Alert) {
	e.alerts = append(e.alerts, a)
	if e.m.cfg.OnAlert != nil {
		e.m.cfg.OnAlert(a)
	}
}

// boundAt evaluates a path's bound at the engine's current PCV vector
// via the pre-compiled polynomial, falling back to BoundAt for the rare
// path whose cost mentions a variable outside the PCV-range set.
func (e *engine) boundAt(p *core.PathContract, metric perf.Metric) uint64 {
	if cp := e.m.bounds[p][metric]; cp != nil {
		return cp.Eval(e.vals)
	}
	if e.m.shardIdx >= 0 {
		return p.ShardBoundAt(metric, e.m.cfg.Shards, e.pcvMap())
	}
	return p.BoundAt(metric, e.pcvMap())
}

// pcvMap materialises the engine's current PCV vector as the map form
// alerts carry; BoundAt over it reproduces exactly what boundAt computed.
func (e *engine) pcvMap() map[string]uint64 {
	out := make(map[string]uint64, len(e.m.pcvNames))
	for i, v := range e.m.pcvNames {
		out[v] = e.vals[i]
	}
	return out
}

// pObs is one packet's worth of pooled observation state inside a batch:
// everything engine.observe needs, owned by the batch (call records are
// copied into the batch's arena; packet bytes reference the replayed
// trace, which the interpreter never mutates).
type pObs struct {
	idx          int
	pkt          []byte
	inPort, time uint64
	pktLen       uint64
	action       nfir.ActionKind
	ic, ma, cyc  uint64
	pcvs         map[string]uint64
	calls        []core.CallRecord
}

// batch is a fixed-size packet batch bound for one shard. Batches are
// pooled: reset keeps the observation slice and the call-record arenas.
type batch struct {
	obs  []pObs
	logs core.CallLog
}

func (b *batch) reset() {
	b.obs = b.obs[:0]
	b.logs.Reset()
}

// ingester is the batched fan-out state for one sharded Run: a queue
// and worker goroutine per shard, the under-construction batch per
// shard, and the adaptive-flush bookkeeping. Two interchangeable
// backends carry the hop — identical routing, per-shard order, and
// merged output either way (TestRingChannelReportIdentity):
//
//   - the default is a lock-free SPSC ring per shard paired with an
//     SPSC freelist ring recycling batch buffers consumer→producer, so
//     the steady-state hop crosses no mutex, no sync.Pool, and feeds
//     the GC nothing (DESIGN.md §5j);
//   - Config.NoRing keeps the PR-7 buffered-channel + sync.Pool path
//     as the measured ablation.
type ingester struct {
	m    *Monitor
	pend []*batch
	// start[sh] is the global index of pend[sh]'s first packet, -1 when
	// no batch is pending; probe is the adaptive flush's round-robin
	// cursor over shards.
	start   []int
	probe   int
	partial int // batches handed off by the adaptive flush

	// ring backend: queues carry filled batches replay→shard, frees
	// recycle emptied buffers shard→replay.
	queues []*ring.SPSC[*batch]
	frees  []*ring.SPSC[*batch]

	// channel backend (Config.NoRing).
	chans []chan *batch
	pool  sync.Pool

	wg sync.WaitGroup
}

func (m *Monitor) startIngest() {
	n := len(m.engines)
	ing := &ingester{
		m:     m,
		pend:  make([]*batch, n),
		start: make([]int, n),
	}
	for i := range ing.start {
		ing.start[i] = -1
	}
	if m.cfg.NoRing {
		ing.chans = make([]chan *batch, n)
		ing.pool.New = func() any { return &batch{} }
		for i, e := range m.engines {
			ch := make(chan *batch, m.cfg.Queue)
			ing.chans[i] = ch
			ing.wg.Add(1)
			go func(e *engine, ch chan *batch) {
				defer ing.wg.Done()
				for b := range ch {
					for j := range b.obs {
						e.observeP(&b.obs[j])
					}
					b.reset()
					ing.pool.Put(b)
				}
			}(e, ch)
		}
		m.ing = ing
		return
	}
	ing.queues = make([]*ring.SPSC[*batch], n)
	ing.frees = make([]*ring.SPSC[*batch], n)
	for i, e := range m.engines {
		q, err := ring.New[*batch](m.cfg.Queue)
		if err != nil {
			panic(err) // New validated Queue <= maxQueue <= ring.MaxCap
		}
		// The freelist holds every buffer the shard can have in flight:
		// the queue's worth, the pending one, and the one being drained.
		f, err := ring.New[*batch](q.Cap() + 2)
		if err != nil {
			panic(err)
		}
		ing.queues[i], ing.frees[i] = q, f
		ing.wg.Add(1)
		go func(e *engine, q, f *ring.SPSC[*batch]) {
			defer ing.wg.Done()
			for {
				b, ok := q.Pop()
				if !ok {
					return
				}
				for j := range b.obs {
					e.observeP(&b.obs[j])
				}
				b.reset()
				// A full freelist (impossible by capacity, but cheap to
				// tolerate) drops the buffer to the GC.
				f.TryPush(b)
			}
		}(e, q, f)
	}
	m.ing = ing
}

// observeP replays one pooled observation through the engine's reused
// core.PacketObservation.
func (e *engine) observeP(po *pObs) {
	e.obs = core.PacketObservation{
		Pkt: po.pkt, InPort: po.inPort, Time: po.time, PktLen: po.pktLen,
		Action: po.action, Calls: po.calls,
	}
	e.observe(po.idx, &e.obs, po.ic, po.ma, po.cyc, po.pcvs)
}

// acquire returns an empty batch for a shard: recycled off the shard's
// freelist ring (or the shared pool on the channel backend), freshly
// allocated only when nothing has come back yet.
func (ing *ingester) acquire(sh int) *batch {
	if ing.chans != nil {
		return ing.pool.Get().(*batch)
	}
	if b, ok := ing.frees[sh].TryPop(); ok {
		return b
	}
	return &batch{}
}

// handoff publishes a shard's pending batch to its worker. Push blocks
// (spin, then park) when the shard is Queue batches behind — the same
// backpressure the buffered channel applies.
func (ing *ingester) handoff(sh int) {
	b := ing.pend[sh]
	ing.pend[sh] = nil
	ing.start[sh] = -1
	if ing.chans != nil {
		ing.chans[sh] <- b
		return
	}
	ing.queues[sh].Push(b)
}

// enqueue adds one measured packet to its shard's pending batch,
// handing the batch off when full — or, via the adaptive flush, once it
// has stalled partially filled for FlushStall packets, so a trickling
// class's worst-case detection delay is bounded by ingest progress
// rather than by Batch (see Config.FlushStall). Runs on the replay
// goroutine.
func (ing *ingester) enqueue(pkt traffic.Packet, rec *distill.Record, calls []core.CallRecord) {
	m := ing.m
	idx := m.packets
	m.packets++
	sh := m.shardOf(pkt.Data, pkt.InPort)
	b := ing.pend[sh]
	if b == nil {
		b = ing.acquire(sh)
		ing.pend[sh] = b
		ing.start[sh] = idx
	}
	b.obs = append(b.obs, pObs{
		idx: idx, pkt: pkt.Data, inPort: pkt.InPort, time: pkt.Time,
		pktLen: obsPktLen(pkt.Data), action: rec.Action.Kind,
		ic: rec.IC, ma: rec.MA, cyc: rec.Cycles, pcvs: rec.PCVs,
		calls: b.logs.Append(calls),
	})
	if len(b.obs) >= m.cfg.Batch {
		ing.handoff(sh)
	}
	// Adaptive flush: probe one shard per ingested packet, round-robin,
	// and hand off any batch that has waited FlushStall packets without
	// filling. The probe is O(1) per packet and visits every shard
	// within Shards packets, so a stalled partial batch is in flight
	// within FlushStall+Shards packets of its first observation.
	ing.probe++
	if ing.probe >= len(ing.pend) {
		ing.probe = 0
	}
	if p := ing.probe; ing.pend[p] != nil && idx-ing.start[p] >= m.cfg.FlushStall {
		ing.partial++
		ing.handoff(p)
	}
}

// finishIngest flushes partial batches, closes the shard queues, and
// waits for every shard to drain. Idempotent; after it returns the
// merged accessors reflect every ingested packet.
func (m *Monitor) finishIngest() {
	ing := m.ing
	if ing == nil {
		return
	}
	for sh, b := range ing.pend {
		if b != nil && len(b.obs) > 0 {
			ing.handoff(sh)
		}
		ing.pend[sh] = nil
	}
	if ing.chans != nil {
		for _, ch := range ing.chans {
			close(ch)
		}
	} else {
		for _, q := range ing.queues {
			q.Close()
		}
	}
	ing.wg.Wait()
	m.partialFlushes += ing.partial
	m.ing = nil
}

// mergedAlerts merges the shards' alert logs by global packet index
// (each shard's log is already index-sorted: shards process their
// packets in arrival order). The per-shard "first unclassified" pages
// collapse to the globally first one, matching the serial monitor's
// report-once semantics.
func (m *Monitor) mergedAlerts() []Alert {
	if len(m.engines) == 1 {
		return m.engines[0].alerts
	}
	firstUnclass := -1
	for _, e := range m.engines {
		if e.firstUnclass >= 0 && (firstUnclass < 0 || e.firstUnclass < firstUnclass) {
			firstUnclass = e.firstUnclass
		}
	}
	idxs := make([]int, len(m.engines))
	total := 0
	for _, e := range m.engines {
		total += len(e.alerts)
	}
	out := make([]Alert, 0, total)
	for {
		best := -1
		for ei, e := range m.engines {
			for idxs[ei] < len(e.alerts) &&
				e.alerts[idxs[ei]].Kind == AlertUnclassified &&
				e.alerts[idxs[ei]].PacketIndex != firstUnclass {
				idxs[ei]++ // a later shard-local first; the global first covers it
			}
			if idxs[ei] >= len(e.alerts) {
				continue
			}
			if best < 0 || e.alerts[idxs[ei]].PacketIndex < m.engines[best].alerts[idxs[best]].PacketIndex {
				best = ei
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, m.engines[best].alerts[idxs[best]])
		idxs[best]++
	}
}

// classRow is one merged per-class line of Report().
type classRow struct {
	packets     int
	violations  int
	maxObserved uint64
	maxPred     uint64
	minHeadroom int64
	quantile    float64
	paged       bool
}

// mergedClasses combines per-shard class states by label: counts sum,
// maxima max, headroom min, paged ORs. The tail quantile is the shard's
// own estimate when the label lives on one shard (the stream-consistent
// case — byte-identical to serial); when a label straddles shards the
// merge takes the largest shard estimate, a conservative tail.
func (m *Monitor) mergedClasses() map[string]*classRow {
	rows := make(map[string]*classRow)
	for _, e := range m.engines {
		for l, st := range e.classes {
			r, ok := rows[l]
			if !ok {
				r = &classRow{minHeadroom: st.minHeadroom, quantile: st.sketch.Quantile()}
				rows[l] = r
			} else {
				if st.minHeadroom < r.minHeadroom {
					r.minHeadroom = st.minHeadroom
				}
				if q := st.sketch.Quantile(); q > r.quantile {
					r.quantile = q
				}
			}
			r.packets += st.packets
			r.violations += st.violations
			if st.maxObserved > r.maxObserved {
				r.maxObserved = st.maxObserved
			}
			if st.maxPred > r.maxPred {
				r.maxPred = st.maxPred
			}
			r.paged = r.paged || st.hys.Paged()
		}
	}
	return rows
}
