package monitor_test

import (
	"context"
	"strings"
	"testing"

	"gobolt/internal/core"
	"gobolt/internal/experiments"
	"gobolt/internal/monitor"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/symb"
	"gobolt/internal/traffic"
)

// TestFigure1ScenariosZeroFalsePositives replays all 14 Figure-1
// scenarios through the monitor: every packet must classify to a
// contract path, no violation may fire (the offline soundness result of
// §5.1 must survive the move online), and — the differential check —
// each packet's assigned path must be one the symbolic exploration
// considers feasible for that packet's concrete inputs (classifier vs
// ConstraintFilter ground truth).
func TestFigure1ScenariosZeroFalsePositives(t *testing.T) {
	scens, err := experiments.Scenarios(experiments.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 14 {
		t.Fatalf("expected 14 scenarios, got %d", len(scens))
	}
	ctx := context.Background()
	for _, s := range scens {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			solverOK := core.ConstraintFilter(nil)
			classMatched := s.Filter == nil
			var diffErr string
			checked := 0
			cfg := monitor.Config{
				Detailed: true,
				OnClassify: func(obs *core.PacketObservation, path *core.PathContract) {
					if path == nil || diffErr != "" {
						return
					}
					if s.Filter != nil && s.Filter(path) {
						classMatched = true
					}
					// Sample the solver cross-check: pin the path's observable
					// input symbols to the packet's concrete values and ask the
					// symbolic side whether the path is feasible for them.
					if checked%7 != 0 {
						checked++
						return
					}
					checked++
					extras := pinInputs(path, obs)
					filter := solverOK
					if len(extras) > 0 {
						filter = core.ConstraintFilter(nil, extras...)
					}
					if !filter(path) {
						diffErr = "classifier assigned path " + path.Class() +
							" but the solver finds it infeasible for the packet's inputs"
					}
				},
			}
			mon, err := monitor.New(s.Contract, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Warmup) > 0 {
				if err := mon.Warm(ctx, s.Instance, s.Warmup); err != nil {
					t.Fatal(err)
				}
			}
			if s.Prepare != nil {
				if err := s.Prepare(); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := mon.Run(ctx, s.Instance, s.Measure); err != nil {
				t.Fatal(err)
			}
			if diffErr != "" {
				t.Fatal(diffErr)
			}
			if mon.Unclassified() != 0 {
				t.Errorf("%d of %d packets unclassified", mon.Unclassified(), mon.Packets())
			}
			if mon.Violations() != 0 {
				t.Errorf("false positives: %d violation alerts\n%s", mon.Violations(), mon.Report())
			}
			if !classMatched {
				t.Errorf("no packet classified into the scenario's target class")
			}
		})
	}
}

// pinInputs builds equality constraints binding a path's observable
// input symbols (packet fields, metadata) to the observation's concrete
// values; model-result symbols stay free (existentially witnessed by
// the concrete run).
func pinInputs(p *core.PathContract, obs *core.PacketObservation) []symb.Expr {
	resultSyms := make(map[string]bool)
	for _, ev := range p.Trace {
		for _, r := range ev.Outcome.Results {
			if s, ok := r.(symb.Sym); ok {
				resultSyms[s.Name] = true
			}
		}
	}
	var extras []symb.Expr
	for _, name := range symb.Symbols(p.Constraints...) {
		if resultSyms[name] {
			continue
		}
		var v uint64
		if off, size, ok := nfir.ParseFieldSym(name); ok {
			v = core.FieldValue(obs.Pkt, off, size)
		} else {
			switch name {
			case nfir.SymInPort:
				v = obs.InPort
			case nfir.SymNow:
				v = obs.Time
			case nfir.SymPktLen:
				v = obs.PktLen
			default:
				continue // fresh heap symbol: leave free
			}
		}
		extras = append(extras, symb.B(symb.Eq, symb.S(name), symb.C(v)))
	}
	return extras
}

// TestAttackDetection is the §5.2 online result: the colliding-MAC
// trace must page — with the triggering class, observed PCVs, and the
// exceeded bound in the alert — before the first rehash, while the
// equal-rate benign burst stays quiet.
func TestAttackDetection(t *testing.T) {
	res, err := experiments.AttackDetection(experiments.QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatalf("attack not detected:\n%s", experiments.RenderAttackDetection(res))
	}
	if res.RehashPacket < 0 {
		t.Fatal("attack trace never reached the rehash cliff; the experiment shows nothing")
	}
	if res.AlertPacket >= res.RehashPacket {
		t.Fatalf("alert at packet %d did not precede the rehash cliff at %d", res.AlertPacket, res.RehashPacket)
	}
	a := res.Alert
	if a == nil {
		t.Fatal("no overload alert retained")
	}
	if a.Class == "" || !strings.Contains(a.Class, "mac.put") {
		t.Errorf("alert class %q does not name the triggering bridge class", a.Class)
	}
	if a.Predicted <= a.Budget {
		t.Errorf("alert predicted %d does not exceed budget %d", a.Predicted, a.Budget)
	}
	if a.PCVs["t"] == 0 {
		t.Errorf("alert PCVs %v do not carry the traversal count the attack inflates", a.PCVs)
	}
	if res.BenignOverloads != 0 {
		t.Errorf("benign control paged %d times", res.BenignOverloads)
	}
	if res.Violations != 0 {
		t.Errorf("%d soundness violations during the attack experiment", res.Violations)
	}
}

// TestAlertReproducibility pins the soundness contract of an alert:
// the reported PCVs plus the named path re-derive the reported bound
// offline, via PathContract.BoundAt, exactly.
func TestAlertReproducibility(t *testing.T) {
	sc := experiments.QuickScale()
	br, ct, err := experiments.AttackBridge(sc)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.New(ct, monitor.Config{Budget: 300, Trigger: 1})
	if err != nil {
		t.Fatal(err)
	}
	attack := traffic.CollidingFrames(br.Table, 24, 1_000, 1_000, 43)
	if attack == nil {
		t.Fatal("no colliding MACs found")
	}
	if _, err := mon.Run(context.Background(), br.Instance, attack); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, a := range mon.Alerts() {
		if a.Kind != monitor.AlertOverload && a.Kind != monitor.AlertViolation {
			continue
		}
		var path *core.PathContract
		for _, p := range ct.Paths {
			if p.ID == a.PathID {
				path = p
			}
		}
		if path == nil {
			t.Fatalf("alert names path %d, not in the contract", a.PathID)
		}
		if got := path.BoundAt(a.Metric, a.PCVs); got != a.Predicted {
			t.Errorf("alert predicted %d, but BoundAt(%v) re-derives %d", a.Predicted, a.PCVs, got)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("attack trace with Trigger=1 fired no alerts to check")
	}
}

// TestMonitorDeterministicAcrossParallelism pins the acceptance
// criterion that the monitor's output for a fixed trace is identical at
// any contract-generation pool width: contracts are byte-identical
// across -parallel (PR 1), and everything downstream is serial.
func TestMonitorDeterministicAcrossParallelism(t *testing.T) {
	trace := traffic.BridgeFrames(traffic.BridgeConfig{
		Packets: 400, MACs: 48, Ports: 4, BroadcastFraction: 0.15,
		StartNS: 1_000, GapNS: 1_000, Seed: 99,
	})
	run := func(parallelism int) string {
		br := nf.NewBridge(nf.BridgeConfig{
			Ports: 4, Capacity: 256,
			TimeoutNS: 3_600_000_000_000, GranularityNS: 1_000_000,
			RehashThreshold: 16, Seed: 77,
		})
		g := core.NewGenerator()
		g.Parallelism = parallelism // no cache: force a full pipeline run per width
		ct, err := g.Generate(br.Prog, br.Models)
		if err != nil {
			t.Fatal(err)
		}
		mon, err := monitor.New(ct, monitor.Config{Budget: 400, Detailed: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mon.Run(context.Background(), br.Instance, trace); err != nil {
			t.Fatal(err)
		}
		return mon.Report()
	}
	first := run(1)
	for _, par := range []int{2, 4} {
		if got := run(par); got != first {
			t.Fatalf("monitor report differs between -parallel 1 and %d:\n--- parallel 1\n%s\n--- parallel %d\n%s",
				par, first, par, got)
		}
	}
}
