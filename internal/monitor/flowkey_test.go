package monitor_test

import (
	"testing"

	"gobolt/internal/monitor"
	"gobolt/internal/traffic"
)

// FlowKey's contract (shard.go): frames that parse as IPv4 — EtherType
// 0x0800 AND at least 34 bytes, the fixed-position IPv4 flow fields —
// hash (protocol, src, dst) only; everything else falls back to the
// first min(len, 14) bytes plus the arrival port. These tests pin the
// edges of that split: truncated frames, non-IPv4 EtherTypes, and the
// 34-byte IPv4 boundary.

// ipv4Frame builds a minimal Ethernet+IPv4 byte image with the flow
// fields at their fixed offsets (EtherType 12:14, protocol 23, src
// 26:30, dst 30:34), long enough to carry trailing L4 bytes.
func ipv4Frame(proto byte, src, dst [4]byte, extra int) []byte {
	f := make([]byte, 34+extra)
	f[12], f[13] = 0x08, 0x00
	f[14] = 0x45 // version 4, IHL 5
	f[23] = proto
	copy(f[26:30], src[:])
	copy(f[30:34], dst[:])
	for i := 34; i < len(f); i++ {
		f[i] = byte(i * 7)
	}
	return f
}

func TestFlowKeyTruncatedFrames(t *testing.T) {
	// Shorter than any header: must not panic, must still be usable.
	for _, n := range []int{0, 1, 5, 13} {
		pkt := make([]byte, n)
		for i := range pkt {
			pkt[i] = byte(i + 1)
		}
		k0 := monitor.FlowKey(pkt, 0)
		if k1 := monitor.FlowKey(pkt, 1); k0 == k1 {
			t.Errorf("len %d: fallback key ignores the arrival port (both %d)", n, k0)
		}
		if again := monitor.FlowKey(pkt, 0); again != k0 {
			t.Errorf("len %d: key not deterministic", n)
		}
	}
	// The empty frame and a 1-byte frame must differ (the port mix alone
	// cannot collapse them for every port; pin one concrete pair).
	if monitor.FlowKey(nil, 3) == monitor.FlowKey([]byte{0x55}, 3) {
		t.Error("empty and 1-byte frames collide on the same port")
	}
	// A 13-byte frame sees only its 13 bytes; a 14-byte extension with a
	// differing 14th byte must (for this concrete pair) hash differently.
	prefix := make([]byte, 13)
	ext := append(append([]byte{}, prefix...), 0x99)
	if monitor.FlowKey(prefix, 0) == monitor.FlowKey(ext, 0) {
		t.Error("13- and 14-byte frames with differing tails collide")
	}
}

func TestFlowKeyNonIPv4EtherTypes(t *testing.T) {
	base := ipv4Frame(17, [4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 8)
	for _, et := range [][2]byte{
		{0x08, 0x06}, // ARP
		{0x81, 0x00}, // VLAN
		{0x86, 0xDD}, // IPv6
		{0x00, 0x2E}, // length-typed 802.3
	} {
		f := append([]byte{}, base...)
		f[12], f[13] = et[0], et[1]
		// Non-IPv4 frames take the fallback: the arrival port matters...
		if monitor.FlowKey(f, 0) == monitor.FlowKey(f, 9) {
			t.Errorf("EtherType %02x%02x: key ignores the arrival port — took the IPv4 path", et[0], et[1])
		}
		// ...and the L3 addresses beyond byte 14 do not.
		g := append([]byte{}, f...)
		g[30] = 0xAA // dst first octet
		if monitor.FlowKey(f, 0) != monitor.FlowKey(g, 0) {
			t.Errorf("EtherType %02x%02x: key read IPv4 addresses from a non-IPv4 frame", et[0], et[1])
		}
	}
	// The generator's ARP frame (the roster's invalid class) must be
	// deterministic and port-sensitive too.
	arp := traffic.NonIPv4(0, 0)
	arp2 := traffic.NonIPv4(99, 2) // same bytes, different time and port
	if monitor.FlowKey(arp.Data, arp.InPort) == monitor.FlowKey(arp2.Data, arp2.InPort) {
		t.Error("NonIPv4 frames on different ports share a key")
	}
}

// TestFlowKeyIPv4Boundary pins the 34-byte threshold: at 33 bytes an
// EtherType-0x0800 frame cannot carry the full flow fields and must
// fall back; at exactly 34 it must take the IPv4 path.
func TestFlowKeyIPv4Boundary(t *testing.T) {
	full := ipv4Frame(6, [4]byte{192, 168, 0, 1}, [4]byte{192, 168, 0, 2}, 0)
	if len(full) != 34 {
		t.Fatalf("test frame is %d bytes, want exactly 34", len(full))
	}
	// 34 bytes: IPv4 path — port-insensitive.
	if monitor.FlowKey(full, 0) != monitor.FlowKey(full, 5) {
		t.Error("exact-34-byte IPv4 frame fell back to the port-mixed hash")
	}
	// 33 bytes: truncated mid-dst — fallback, port-sensitive.
	trunc := full[:33]
	if monitor.FlowKey(trunc, 0) == monitor.FlowKey(trunc, 5) {
		t.Error("33-byte IPv4 frame took the fixed-offset path past its end")
	}
}

// TestFlowKeyIPv4Identity pins what the IPv4 key is made of: protocol,
// src, dst — and nothing else. MACs, L4 ports, payload, arrival port,
// and IPv4 options must all be invisible; each flow field must matter.
func TestFlowKeyIPv4Identity(t *testing.T) {
	src, dst := [4]byte{10, 1, 2, 3}, [4]byte{192, 168, 1, 1}
	base := ipv4Frame(17, src, dst, 12)
	key := monitor.FlowKey(base, 0)

	mutate := func(f func(p []byte)) uint64 {
		p := append([]byte{}, base...)
		f(p)
		return monitor.FlowKey(p, 0)
	}
	if mutate(func(p []byte) { p[0], p[7] = 0xFE, 0xFE }) != key {
		t.Error("MAC bytes leak into the IPv4 flow key")
	}
	if mutate(func(p []byte) { p[34], p[35] = 0xBE, 0xEF }) != key {
		t.Error("L4 bytes leak into the IPv4 flow key")
	}
	if monitor.FlowKey(base, 7) != key {
		t.Error("arrival port leaks into the IPv4 flow key")
	}
	if mutate(func(p []byte) { p[23] = 6 }) == key {
		t.Error("protocol does not contribute to the IPv4 flow key")
	}
	if mutate(func(p []byte) { p[29] = 9 }) == key {
		t.Error("src address does not contribute to the IPv4 flow key")
	}
	if mutate(func(p []byte) { p[33] = 9 }) == key {
		t.Error("dst address does not contribute to the IPv4 flow key")
	}

	// Options boundary: the flow fields sit at fixed offsets inside the
	// 20-byte mandatory header, so an options-bearing header (IHL > 5)
	// keeps the same flow identity — the generator's option packets pin
	// it end-to-end (same addresses, differing IHL and length).
	none := traffic.WithOptions(0, 0, 0)
	two := traffic.WithOptions(2, 0, 0)
	if len(none.Data) == len(two.Data) {
		t.Fatal("option generator produced equal-length frames; boundary not exercised")
	}
	if monitor.FlowKey(none.Data, 0) != monitor.FlowKey(two.Data, 0) {
		t.Error("IPv4 options change the flow key; one L3 conversation would straddle shards")
	}
}
