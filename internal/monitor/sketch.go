// Package monitor is the runtime half of the paper's story (§1, §5.2):
// operators hold a generated performance contract, and this package
// watches live traffic against it — classifying each packet to its
// contract path, checking the observed cost against the bound the
// contract predicts for the observed PCVs, and raising alerts when the
// predicted load approaches provisioned capacity, well before
// throughput collapses.
package monitor

import "sort"

// quantileSketch estimates a single quantile in O(1) space with the P²
// algorithm (Jain & Chlamtac, 1985): five markers track the running
// min, max, target quantile and its two neighbours, nudged towards
// their desired positions with parabolic interpolation. It is exact
// until five observations arrive and fully deterministic — the monitor
// report must be byte-stable across runs.
type quantileSketch struct {
	q     float64
	n     int
	h     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based counts)
	want  [5]float64 // desired positions
	dwant [5]float64 // desired-position increments per observation
}

func newQuantileSketch(q float64) *quantileSketch {
	s := &quantileSketch{q: q}
	s.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	s.dwant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return s
}

// Add feeds one observation.
func (s *quantileSketch) Add(v float64) {
	if s.n < 5 {
		s.h[s.n] = v
		s.n++
		if s.n == 5 {
			sort.Float64s(s.h[:])
			for i := range s.pos {
				s.pos[i] = float64(i + 1)
			}
		}
		return
	}
	s.n++

	// Find the cell v falls into, stretching the extremes.
	var k int
	switch {
	case v < s.h[0]:
		s.h[0], k = v, 0
	case v >= s.h[4]:
		s.h[4], k = v, 3
	default:
		for k = 0; k < 3; k++ {
			if v < s.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.dwant[i]
	}

	// Nudge the three interior markers towards their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			step := 1.0
			if d < 0 {
				step = -1.0
			}
			h := s.parabolic(i, step)
			if s.h[i-1] < h && h < s.h[i+1] {
				s.h[i] = h
			} else {
				s.h[i] = s.linear(i, step)
			}
			s.pos[i] += step
		}
	}
}

func (s *quantileSketch) parabolic(i int, d float64) float64 {
	return s.h[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.h[i+1]-s.h[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.h[i]-s.h[i-1])/(s.pos[i]-s.pos[i-1]))
}

func (s *quantileSketch) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.h[i] + d*(s.h[j]-s.h[i])/(s.pos[j]-s.pos[i])
}

// Quantile reports the current estimate (exact below five samples).
func (s *quantileSketch) Quantile() float64 {
	if s.n == 0 {
		return 0
	}
	if s.n < 5 {
		tmp := append([]float64(nil), s.h[:s.n]...)
		sort.Float64s(tmp)
		idx := int(s.q * float64(s.n-1))
		return tmp[idx]
	}
	return s.h[2]
}

// Count reports how many observations were fed.
func (s *quantileSketch) Count() int { return s.n }

// window is a fixed-size buffer of the most recent samples, so a fired
// alert can carry the immediate history that led up to it.
type window struct {
	buf  []uint64
	next int
	full bool
}

func newWindow(size int) *window {
	if size <= 0 {
		size = 1
	}
	return &window{buf: make([]uint64, size)}
}

func (r *window) Add(v uint64) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// Snapshot returns the buffered samples oldest-first.
func (r *window) Snapshot() []uint64 {
	if !r.full {
		return append([]uint64(nil), r.buf[:r.next]...)
	}
	out := make([]uint64, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// hysteresis turns a per-packet hot/cool signal into paged/quiet state
// transitions: Trigger consecutive hot packets page, Clear consecutive
// cool packets un-page. One outlier never pages; one lull never clears.
type hysteresis struct {
	Trigger, Clear int
	hotStreak      int
	coolStreak     int
	paged          bool
}

// Observe feeds one signal; fired is true on the cool→paged transition,
// cleared on the paged→cool one.
func (h *hysteresis) Observe(hot bool) (fired, cleared bool) {
	if hot {
		h.hotStreak++
		h.coolStreak = 0
		if !h.paged && h.hotStreak >= h.Trigger {
			h.paged = true
			return true, false
		}
		return false, false
	}
	h.coolStreak++
	h.hotStreak = 0
	if h.paged && h.coolStreak >= h.Clear {
		h.paged = false
		return false, true
	}
	return false, false
}

// Paged reports whether the alert is currently raised.
func (h *hysteresis) Paged() bool { return h.paged }
