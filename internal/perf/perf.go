// Package perf defines the performance metrics that contracts are written
// in, and the Meter used by the concrete interpreter and the stateful
// data-structure library to account per-packet cost.
//
// The paper (§1, §3) quantifies NF performance in three units: the number
// of executed instructions (IC), the number of memory accesses (MA), and
// the number of execution cycles. IC and MA are hardware-independent and
// are accounted directly by the Meter; cycles are derived from the
// Meter's access trace by a hardware model (package hwmodel).
package perf

import "fmt"

// Metric identifies one of the performance units a contract can be
// expressed in.
type Metric int

const (
	// Instructions is the dynamic instruction count (paper: "IC").
	Instructions Metric = iota
	// MemAccesses is the number of memory accesses (paper: "MA").
	MemAccesses
	// Cycles is the number of execution cycles; it depends on the
	// hardware model in use.
	Cycles
	numMetrics
)

// NumMetrics is the number of defined metrics.
const NumMetrics = int(numMetrics)

// Metrics lists all metrics in canonical order.
var Metrics = [NumMetrics]Metric{Instructions, MemAccesses, Cycles}

// String returns the short name used in reports ("IC", "MA", "cycles").
func (m Metric) String() string {
	switch m {
	case Instructions:
		return "IC"
	case MemAccesses:
		return "MA"
	case Cycles:
		return "cycles"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// ParseMetric resolves the command-line spellings of a metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "instructions", "ic":
		return Instructions, nil
	case "memaccesses", "ma":
		return MemAccesses, nil
	case "cycles":
		return Cycles, nil
	default:
		return 0, fmt.Errorf("unknown metric %q", s)
	}
}

// ParseOpClass resolves an OpClass's String name; unknown names report
// ok=false. It is the strict inverse the contract codec decodes stored
// per-path operation tallies with.
func ParseOpClass(s string) (OpClass, bool) {
	for c := OpClass(0); c < OpClass(NumOpClasses); c++ {
		if c.String() == s {
			return c, true
		}
	}
	return 0, false
}

// OpClass classifies an executed operation for the purpose of cycle-cost
// lookup in a hardware model. The classes mirror the broad x86 cost
// buckets of the Intel optimisation manual that the paper's conservative
// model draws from: simple ALU ops, multiplies, divides, branches, and
// memory operations.
type OpClass int

const (
	// OpALU covers add/sub/logic/shift/compare and register moves.
	OpALU OpClass = iota
	// OpMul covers integer multiplication.
	OpMul
	// OpDiv covers integer division and modulo.
	OpDiv
	// OpBranch covers conditional and unconditional jumps.
	OpBranch
	// OpLoad is a memory read.
	OpLoad
	// OpStore is a memory write.
	OpStore
	// OpCall covers call/return linkage overhead.
	OpCall
	numOpClasses
)

// NumOpClasses is the number of defined operation classes.
const NumOpClasses = int(numOpClasses)

// String names the class for debugging output.
func (c OpClass) String() string {
	switch c {
	case OpALU:
		return "alu"
	case OpMul:
		return "mul"
	case OpDiv:
		return "div"
	case OpBranch:
		return "branch"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpCall:
		return "call"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// Access records one executed operation in the trace a Meter gathers.
// Non-memory operations carry only the class and count; memory operations
// additionally carry the touched address range and whether the address
// computation depended on the result of an earlier load (pointer chasing),
// which the detailed hardware model uses to decide whether misses may
// overlap (memory-level parallelism).
type Access struct {
	Class OpClass
	// Count is the number of consecutive operations of this class this
	// event stands for. Bulk charging keeps traces compact.
	Count uint64
	// Addr and Size describe the touched bytes for OpLoad/OpStore.
	Addr uint64
	Size uint8
	// LoadDependent marks a memory operation whose address derives from
	// the value returned by a previous load.
	LoadDependent bool
}

// TraceSink receives the operation stream of a metered execution.
// Implementations must be cheap: the concrete interpreter calls this for
// every executed operation.
type TraceSink interface {
	Op(ev Access)
}

// Meter accumulates IC and MA for one measured execution and forwards the
// operation stream to an optional TraceSink (used by hardware models).
// A nil *Meter is valid and discards all charges, so deep call sites can
// charge unconditionally.
type Meter struct {
	instructions uint64
	memAccesses  uint64
	sink         TraceSink
}

// NewMeter returns a Meter forwarding to sink; sink may be nil.
func NewMeter(sink TraceSink) *Meter { return &Meter{sink: sink} }

// Instructions returns the accumulated dynamic instruction count.
func (m *Meter) Instructions() uint64 {
	if m == nil {
		return 0
	}
	return m.instructions
}

// MemAccesses returns the accumulated memory access count.
func (m *Meter) MemAccesses() uint64 {
	if m == nil {
		return 0
	}
	return m.memAccesses
}

// Get returns the accumulated value of a hardware-independent metric.
// Requesting Cycles panics: cycles are computed by a hardware model, not
// accounted by the Meter.
func (m *Meter) Get(metric Metric) uint64 {
	switch metric {
	case Instructions:
		return m.Instructions()
	case MemAccesses:
		return m.MemAccesses()
	default:
		panic("perf: Meter does not account metric " + metric.String())
	}
}

// Reset clears the accumulated counts. The sink is kept.
func (m *Meter) Reset() {
	if m == nil {
		return
	}
	m.instructions = 0
	m.memAccesses = 0
}

// Exec charges count non-memory instructions of the given class.
func (m *Meter) Exec(class OpClass, count uint64) {
	if m == nil || count == 0 {
		return
	}
	m.instructions += count
	if m.sink != nil {
		m.sink.Op(Access{Class: class, Count: count})
	}
}

// Load charges one load instruction touching size bytes at addr.
func (m *Meter) Load(addr uint64, size uint8, loadDependent bool) {
	if m == nil {
		return
	}
	m.instructions++
	m.memAccesses++
	if m.sink != nil {
		m.sink.Op(Access{Class: OpLoad, Count: 1, Addr: addr, Size: size, LoadDependent: loadDependent})
	}
}

// Store charges one store instruction touching size bytes at addr.
func (m *Meter) Store(addr uint64, size uint8) {
	if m == nil {
		return
	}
	m.instructions++
	m.memAccesses++
	if m.sink != nil {
		m.sink.Op(Access{Class: OpStore, Count: 1, Addr: addr, Size: size})
	}
}

// Snapshot captures the counters of a Meter at one instant, so callers can
// compute deltas around a region of interest.
type Snapshot struct {
	Instructions uint64
	MemAccesses  uint64
}

// Snapshot returns the current counter values.
func (m *Meter) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	return Snapshot{Instructions: m.instructions, MemAccesses: m.memAccesses}
}

// Since returns the counters accumulated since an earlier snapshot.
func (m *Meter) Since(s Snapshot) Snapshot {
	cur := m.Snapshot()
	return Snapshot{
		Instructions: cur.Instructions - s.Instructions,
		MemAccesses:  cur.MemAccesses - s.MemAccesses,
	}
}
