package perf

import (
	"testing"
	"testing/quick"
)

type recordingSink struct {
	events []Access
}

func (r *recordingSink) Op(ev Access) { r.events = append(r.events, ev) }

func TestMetricString(t *testing.T) {
	cases := map[Metric]string{
		Instructions: "IC",
		MemAccesses:  "MA",
		Cycles:       "cycles",
		Metric(42):   "Metric(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Metric(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestOpClassString(t *testing.T) {
	for c := OpClass(0); c < OpClass(NumOpClasses); c++ {
		if got := c.String(); got == "" || got[0] == 'O' {
			t.Errorf("OpClass(%d).String() = %q, want lowercase name", int(c), got)
		}
	}
	if got := OpClass(99).String(); got != "OpClass(99)" {
		t.Errorf("unknown class = %q", got)
	}
}

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.Exec(OpALU, 5)
	m.Load(0x100, 8, false)
	m.Store(0x100, 8)
	m.Reset()
	if m.Instructions() != 0 || m.MemAccesses() != 0 {
		t.Fatal("nil meter must report zero")
	}
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil meter snapshot = %+v", s)
	}
}

func TestMeterCounts(t *testing.T) {
	m := NewMeter(nil)
	m.Exec(OpALU, 3)
	m.Exec(OpBranch, 1)
	m.Load(0x1000, 8, true)
	m.Store(0x1008, 4)
	if got, want := m.Instructions(), uint64(6); got != want {
		t.Errorf("Instructions = %d, want %d", got, want)
	}
	if got, want := m.MemAccesses(), uint64(2); got != want {
		t.Errorf("MemAccesses = %d, want %d", got, want)
	}
	if got := m.Get(Instructions); got != 6 {
		t.Errorf("Get(Instructions) = %d", got)
	}
	if got := m.Get(MemAccesses); got != 2 {
		t.Errorf("Get(MemAccesses) = %d", got)
	}
	m.Reset()
	if m.Instructions() != 0 || m.MemAccesses() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestMeterGetCyclesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(Cycles) should panic")
		}
	}()
	NewMeter(nil).Get(Cycles)
}

func TestMeterZeroCountExec(t *testing.T) {
	sink := &recordingSink{}
	m := NewMeter(sink)
	m.Exec(OpALU, 0)
	if len(sink.events) != 0 {
		t.Error("zero-count Exec must not emit events")
	}
	if m.Instructions() != 0 {
		t.Error("zero-count Exec must not charge")
	}
}

func TestMeterSinkEvents(t *testing.T) {
	sink := &recordingSink{}
	m := NewMeter(sink)
	m.Exec(OpMul, 2)
	m.Load(0xdead, 8, true)
	m.Store(0xbeef, 2)
	want := []Access{
		{Class: OpMul, Count: 2},
		{Class: OpLoad, Count: 1, Addr: 0xdead, Size: 8, LoadDependent: true},
		{Class: OpStore, Count: 1, Addr: 0xbeef, Size: 2},
	}
	if len(sink.events) != len(want) {
		t.Fatalf("got %d events, want %d", len(sink.events), len(want))
	}
	for i := range want {
		if sink.events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, sink.events[i], want[i])
		}
	}
}

func TestSnapshotSince(t *testing.T) {
	m := NewMeter(nil)
	m.Exec(OpALU, 10)
	s := m.Snapshot()
	m.Load(0x10, 8, false)
	m.Exec(OpALU, 4)
	d := m.Since(s)
	if d.Instructions != 5 || d.MemAccesses != 1 {
		t.Errorf("Since = %+v, want {5 1}", d)
	}
}

// Property: for any sequence of charges, Instructions equals the sum of
// all Exec counts plus one per memory op, and MemAccesses equals the
// number of memory ops.
func TestMeterAccountingProperty(t *testing.T) {
	f := func(execs []uint8, memOps []bool) bool {
		m := NewMeter(nil)
		var wantIC, wantMA uint64
		for _, e := range execs {
			m.Exec(OpALU, uint64(e))
			wantIC += uint64(e)
		}
		for _, isLoad := range memOps {
			if isLoad {
				m.Load(0x40, 8, false)
			} else {
				m.Store(0x40, 8)
			}
			wantIC++
			wantMA++
		}
		return m.Instructions() == wantIC && m.MemAccesses() == wantMA
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
