package experiments

import (
	"strings"
	"testing"
)

func TestTable4BridgeContract(t *testing.T) {
	rows, ct, err := Table4(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The published Table 4 structure: the known-MAC class carries
	// 245·e + 144·c + 36·t + 82·e·c + 19·e·t; the unknown class 50·t;
	// the rehash class additionally 124·o + 14·t·o and a large constant.
	known := rows[0].Instructions
	for _, frag := range []string{"144·c", "245·e", "36·t", "82·c·e", "19·e·t"} {
		if !strings.Contains(known, frag) {
			t.Errorf("known-MAC row %q missing %s", known, frag)
		}
	}
	if !strings.Contains(rows[1].Instructions, "50·t") {
		t.Errorf("unknown-MAC row %q missing 50·t", rows[1].Instructions)
	}
	rehash := rows[2].Instructions
	for _, frag := range []string{"124·o", "14·o·t"} {
		if !strings.Contains(rehash, frag) {
			t.Errorf("rehash row %q missing %s", rehash, frag)
		}
	}
	// The rehash cliff: its constant dwarfs the others (the paper's
	// 984069-style term from reallocating every bucket).
	if ct.NumClasses() == 0 {
		t.Error("contract has no classes")
	}
	out := RenderTable4(rows)
	if !strings.Contains(out, "Rehashing") {
		t.Error("render incomplete")
	}
	t.Logf("\n%s", out)
}

func TestFigure2DistillerAnalysis(t *testing.T) {
	pts, err := Figure2(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// CCDF must be non-increasing and the prediction non-decreasing in t.
	for i := 1; i < len(pts); i++ {
		if pts[i].CCDF > pts[i-1].CCDF {
			t.Errorf("CCDF not monotone at %d", i)
		}
		if pts[i].PredictedIC < pts[i-1].PredictedIC {
			t.Errorf("prediction not monotone in traversals at %d", i)
		}
	}
	// The vast majority of packets incur few traversals — the basis for
	// placing the rehash threshold (§5.2: <0.2% beyond 6 traversals).
	for _, p := range pts {
		if p.Traversals >= 6 && p.CCDF > 0.01 {
			t.Errorf("t=%d still has CCDF %.4f; uniform workload should be compact", p.Traversals, p.CCDF)
		}
	}
	t.Logf("\n%s", RenderFigure2(pts))
}

func TestTable5AndFigure3Chain(t *testing.T) {
	t5, _, _, _, err := ChainContracts(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Router options class must carry the 79·n term; the chain's
	// no-options class must not mention b.n at all (options never reach
	// the router).
	if !strings.Contains(t5.Router[1][1], "79·n") {
		t.Errorf("router options row = %q, want 79·n term", t5.Router[1][1])
	}
	for _, row := range t5.Chain {
		if strings.Contains(row[1], "b.n") {
			t.Errorf("chain row %q leaks the router's options PCV", row[1])
		}
	}
	t.Logf("\n%s", RenderTable5(t5))

	rows, err := Figure3(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Figure3Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	naive, comp := byName["Naive-Add"], byName["Composite-Bolt"]
	if comp.PredictedIC >= naive.PredictedIC {
		t.Errorf("composite %d should beat naive %d (Figure 3)", comp.PredictedIC, naive.PredictedIC)
	}
	if comp.MeasuredIC > comp.PredictedIC {
		t.Errorf("composite unsound: measured %d > predicted %d", comp.MeasuredIC, comp.PredictedIC)
	}
	// The composite should be much closer to the chain's real worst case.
	naiveGap := float64(naive.PredictedIC-naive.MeasuredIC) / float64(naive.MeasuredIC)
	compGap := float64(comp.PredictedIC-comp.MeasuredIC) / float64(comp.MeasuredIC)
	if compGap >= naiveGap {
		t.Errorf("composite gap %.2f should be smaller than naive gap %.2f", compGap, naiveGap)
	}
	t.Logf("\n%s", RenderFigure3(rows))
}

func TestTable6VigNATContract(t *testing.T) {
	rows, err := Table6(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every class carries the expiry terms; known flows carry 30·c+18·t.
	for _, r := range rows {
		if !strings.Contains(r[1], "359·e") {
			t.Errorf("%s: %q missing 359·e", r[0], r[1])
		}
		if !strings.Contains(r[1], "80·c·e") || !strings.Contains(r[1], "38·e·t") {
			t.Errorf("%s: %q missing expiry cross terms", r[0], r[1])
		}
	}
	if !strings.Contains(rows[1][1], "30·c") || !strings.Contains(rows[1][1], "18·t") {
		t.Errorf("known flows row = %q", rows[1][1])
	}
	if !strings.Contains(rows[4][1], "44·t") {
		t.Errorf("new internal flows row = %q, want 44·t", rows[4][1])
	}
	t.Logf("\n%s", RenderTable6(rows))
}

func TestFigure4ExpiryBatching(t *testing.T) {
	second, milli, err := Figure4(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Tables 7/8: with coarse granularity, most packets see zero
	// expirations but a few see large batches; with fine granularity the
	// distribution concentrates on 0/1/2.
	maxBatch := func(s *VigNATStudy) uint64 {
		var m uint64
		for _, b := range s.ExpiryHistogram {
			if b.Value > m {
				m = b.Value
			}
		}
		return m
	}
	if mb := maxBatch(second); mb < 20 {
		t.Errorf("coarse granularity max batch = %d, want ≥ 20 (batching)", mb)
	}
	if mb := maxBatch(milli); mb > 8 {
		t.Errorf("fine granularity max batch = %d, want small", mb)
	}
	// Figure 4: the fix eliminates the long tail.
	if milli.Tail >= second.Tail {
		t.Errorf("fixed tail %d should be below buggy tail %d", milli.Tail, second.Tail)
	}
	if second.Tail < 4*second.Median {
		t.Errorf("buggy run should have a heavy tail: median %d, p99.9 %d", second.Median, second.Tail)
	}
	t.Logf("\n%s", RenderFigure4(second, milli))
	t.Logf("\n%s", RenderExpiryHistogram("Coarse granularity (Table 7 analog):", second.ExpiryHistogram))
	t.Logf("\n%s", RenderExpiryHistogram("Fine granularity (Table 8 analog):", milli.ExpiryHistogram))
}

func TestFigure5AllocatorChoice(t *testing.T) {
	scenarios, err := AllocatorStudy(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) != 4 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	aLow, bLow := Find(scenarios, "A", "low"), Find(scenarios, "B", "low")
	aHigh, bHigh := Find(scenarios, "A", "high"), Find(scenarios, "B", "high")

	// Low churn / high occupancy: A outperforms B (B's scans are long).
	if !(aLow.PredictedCycles < bLow.PredictedCycles) {
		t.Errorf("low churn: predicted A %d should beat B %d", aLow.PredictedCycles, bLow.PredictedCycles)
	}
	if !(aLow.MeanIC < bLow.MeanIC) {
		t.Errorf("low churn: measured A %.0f IC should beat B %.0f", aLow.MeanIC, bLow.MeanIC)
	}
	// High churn / low occupancy: B outperforms A.
	if !(bHigh.PredictedCycles < aHigh.PredictedCycles) {
		t.Errorf("high churn: predicted B %d should beat A %d", bHigh.PredictedCycles, aHigh.PredictedCycles)
	}
	if !(bHigh.MeanIC < aHigh.MeanIC) {
		t.Errorf("high churn: measured B %.0f IC should beat A %.0f", bHigh.MeanIC, aHigh.MeanIC)
	}
	t.Logf("\n%s", RenderFigure5(scenarios))
}
