package experiments

import (
	"context"
	"testing"

	"gobolt/internal/core"
	"gobolt/internal/store"
)

// diskScale returns a QuickScale wired to a fresh disk-backed cache over
// dir — the in-test stand-in for one process run with -store dir.
func diskScale(t *testing.T, dir string) (Scale, *core.ContractCache) {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewContractCache()
	c.AttachDisk(s)
	sc := QuickScale()
	sc.Cache = c
	return sc, c
}

// TestFigure1WarmFromDisk pins cross-process warmth for the paper's full
// evaluation set: after one run populates a store, a second run with a
// fresh memory cache (as a new process would have) builds all fourteen
// Figure-1 scenario contracts from disk alone — zero pipeline runs.
func TestFigure1WarmFromDisk(t *testing.T) {
	dir := t.TempDir()

	cold, coldCache := diskScale(t, dir)
	if _, err := Scenarios(cold); err != nil {
		t.Fatal(err)
	}
	cts := coldCache.TierStats()
	if cts.Misses == 0 {
		t.Fatalf("cold run reported no misses: %+v", cts)
	}
	if cts.DiskHits != 0 {
		t.Fatalf("cold run over an empty store hit disk: %+v", cts)
	}

	warm, warmCache := diskScale(t, dir)
	scens, err := Scenarios(warm)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 14 {
		t.Fatalf("expected 14 scenarios, got %d", len(scens))
	}
	wts := warmCache.TierStats()
	if wts.Misses != 0 {
		t.Fatalf("warm-from-disk run still ran the pipeline %d times: %+v", wts.Misses, wts)
	}
	if wts.DiskHits == 0 {
		t.Fatalf("warm run never touched the disk tier: %+v", wts)
	}
	if wts.DiskErrs != 0 {
		t.Fatalf("warm run hit disk errors: %+v", wts)
	}
}

// TestChainFoldPrefixesWarmFromDisk pins that composed fold prefixes
// survive a restart too: a fresh cache over a store populated by a
// 4-stage chain composition re-composes the same chain with every fold
// served from disk, and extends to a 5th stage paying only the new fold.
func TestChainFoldPrefixesWarmFromDisk(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	cold, _ := diskScale(t, dir)
	stages, _, err := ChainBenchStages(cold)
	if err != nil {
		t.Fatal(err)
	}
	coldCt, coldStats, err := core.ComposeManyStats(ctx, cold.Generator(), stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range coldStats {
		if fs.Cached {
			t.Fatalf("cold compose reported fold %d cached", fs.Fold)
		}
	}

	// Restart: fresh memory, same store. Every fold of the re-composed
	// chain must come back cached, with zero pipeline misses.
	warm, warmCache := diskScale(t, dir)
	warmStages, _, err := ChainBenchStages(warm)
	if err != nil {
		t.Fatal(err)
	}
	warmCt, warmStats, err := core.ComposeManyStats(ctx, warm.Generator(), warmStages[:4])
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range warmStats {
		if !fs.Cached {
			t.Fatalf("warm compose re-joined fold %d instead of loading it", fs.Fold)
		}
	}
	ts := warmCache.TierStats()
	if ts.Misses != 0 {
		t.Fatalf("warm compose ran the pipeline: %+v", ts)
	}
	if ts.DiskHits == 0 {
		t.Fatalf("warm compose never read the store: %+v", ts)
	}
	if len(warmCt.Paths) != len(coldCt.Paths) {
		t.Fatalf("warm chain has %d paths, cold had %d", len(warmCt.Paths), len(coldCt.Paths))
	}

	// Extending the chain pays only the new fold: folds 1–3 cached,
	// fold 4 joined fresh.
	ext, _ := diskScale(t, dir)
	extStages, _, err := ChainBenchStages(ext)
	if err != nil {
		t.Fatal(err)
	}
	_, extStats, err := core.ComposeManyStats(ctx, ext.Generator(), extStages[:5])
	if err != nil {
		t.Fatal(err)
	}
	for _, fs := range extStats[:3] {
		if !fs.Cached {
			t.Fatalf("extension re-joined prefix fold %d", fs.Fold)
		}
	}
	if extStats[3].Cached {
		t.Fatalf("extension fold 4 claimed cached on first composition")
	}
}
