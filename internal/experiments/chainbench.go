package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"gobolt/internal/core"
	"gobolt/internal/nf"
	"gobolt/internal/par"
	"gobolt/internal/store"
)

// ChainBenchRow is one chain length of the composition-engine ablation:
// the same chain composed serially vs on the worker pool, with the
// incremental join solver vs the reference engine, with the join index
// vs exhaustive pairing, with composite coalescing on vs off, and cold
// vs warm against a private contract cache. Composites are verified
// identical across modes before any timing is recorded: exhaustive and
// indexed pairing must keep byte-identical composites (and the same
// per-fold kept-pair counts), and the coalesced composite must be
// byte-identical between serial and pooled runs.
//
// Chains longer than maxExhaustiveNFs are benchmarked only in the
// pruned configuration (join index + coalescing): their exhaustive
// uncoalesced composites are out of reach, which is exactly the point
// of the pruning levers. Those rows set PrunedOnly and leave the
// exhaustive columns zero.
//
// Every timing covers the full ComposeMany call — stage generation plus
// the pairwise joins — because that is the operation a caller pays for;
// the ablation modes share the generation cost, so the reported ratios
// understate the join-only effect.
type ChainBenchRow struct {
	// NFs is the chain length; Stages names the roster prefix.
	NFs    int    `json:"nfs"`
	Stages string `json:"stages"`
	// Paths is the uncoalesced composite's path count (identical in
	// every uncoalesced mode — that identity is checked, not assumed).
	// Zero for PrunedOnly rows.
	Paths int `json:"paths"`
	// PrunedOnly marks chains composed only with index + coalescing.
	PrunedOnly bool `json:"pruned_only,omitempty"`
	// NoIndexNS disables the join index (exhaustive pairing), serially;
	// SerialNS is the same run with the index on. Both uncoalesced.
	NoIndexNS    uint64  `json:"noindex_ns,omitempty"`
	SerialNS     uint64  `json:"serial_ns,omitempty"`
	IndexSpeedup float64 `json:"index_speedup,omitempty"`
	// ParallelNS runs the indexed composition on the worker pool.
	ParallelNS      uint64  `json:"parallel_ns,omitempty"`
	ParallelWorkers int     `json:"parallel_workers"`
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// ReferenceNS swaps every join feasibility check (and the stage
	// generations) to the pre-incremental reference solver, serially —
	// the NoIncremental ablation.
	ReferenceNS        uint64  `json:"reference_ns,omitempty"`
	IncrementalSpeedup float64 `json:"incremental_speedup,omitempty"`
	// CoalesceNS turns composite coalescing on (serial, index on);
	// CoalescedPaths is that composite's path count and CoalesceSpeedup
	// compares against SerialNS.
	CoalesceNS      uint64  `json:"coalesce_ns"`
	CoalescedPaths  int     `json:"coalesced_paths"`
	CoalesceSpeedup float64 `json:"coalesce_speedup,omitempty"`
	// ColdNS composes in the deep-chain configuration (index +
	// coalescing) against an empty private contract cache; WarmNS
	// re-composes the identical chain against the now-populated cache
	// (the fold prefix is content-addressed, so it is one lookup).
	ColdNS      uint64  `json:"cold_ns"`
	WarmNS      uint64  `json:"warm_ns"`
	WarmSpeedup float64 `json:"warm_speedup"`
	// WarmDiskNS simulates a process restart: the chain re-composes
	// against a fresh memory cache whose disk tier was populated by a
	// cold pass, so every stage and fold prefix is decoded from stored
	// artifacts (TierStats: zero misses, all hits on the disk tier).
	WarmDiskNS      uint64  `json:"warm_disk_ns"`
	WarmDiskSpeedup float64 `json:"warm_disk_speedup"`
	// Folds is the per-fold join-pruning record of the deep-chain
	// configuration (index + coalescing, serial): pairs considered,
	// pairs skipped by the index, pairs rejected by the static
	// pre-filter, pairs refuted by the solver, pairs kept, composites
	// merged by coalescing.
	Folds []core.JoinStats `json:"folds,omitempty"`
}

// ChainBenchResult is the chainbench experiment: rows for chains of 2–8
// NFs drawn from one fixed roster.
type ChainBenchResult struct {
	Workload string          `json:"workload"`
	Runs     int             `json:"runs"`
	Rows     []ChainBenchRow `json:"rows"`
}

// maxExhaustiveNFs is the longest chain still benchmarked with
// exhaustive pairing and no coalescing; longer chains run pruned-only.
const maxExhaustiveNFs = 6

// ChainBenchStages builds the benchmark roster — firewall → NAT →
// bridge → LB → static router → LPM router → egress firewall → edge
// router — sized by the scale. Chains of length n use the first n
// stages, so longer chains strictly extend shorter ones (which also
// exercises the fold-prefix cache reuse). Every stage comes from the
// shared internal/nf roster, so the stage cache keys — and therefore
// any on-disk store — line up with what bolt and the other tools build.
func ChainBenchStages(sc Scale) ([]core.ChainStage, []string, error) {
	// Display names keep the historical chainbench labels; the first
	// stage is the roster's "ingress-firewall" (the rule-bearing chain
	// head), distinct from the bare default-deny "firewall".
	rosterNames := []string{"ingress-firewall", "nat", "bridge", "lb", "static-router", "lpm-router", "egress-firewall", "edge-router"}
	names := []string{"firewall", "nat", "bridge", "lb", "static-router", "lpm-router", "egress-firewall", "edge-router"}
	stages := make([]core.ChainStage, len(rosterNames))
	for i, rn := range rosterNames {
		inst, err := nf.Build(rn, nf.BuildParams{Capacity: sc.TableCapacity})
		if err != nil {
			return nil, nil, err
		}
		stages[i] = core.ChainStage{Prog: inst.Prog, Models: inst.Models}
	}
	return stages, names, nil
}

// ChainBench runs the composition ablations over chains of 2–8 NFs.
// Parallelism for the pooled mode comes from the scale (≤1 means one
// worker per CPU); every other mode runs at Parallelism=1 so each
// ablation changes exactly one variable.
func ChainBench(sc Scale) (ChainBenchResult, error) {
	stages, names, err := ChainBenchStages(sc)
	if err != nil {
		return ChainBenchResult{}, err
	}
	workers := sc.Parallelism
	if workers <= 1 {
		workers = 0 // one worker per CPU
	}
	res := ChainBenchResult{
		Workload: strings.Join(names, "+"),
		Runs:     3,
	}
	ctx := context.Background()

	type mode struct {
		parallelism int
		noInc       bool
		noIndex     bool
		coalesce    bool
	}
	compose := func(n int, m mode, cache *core.ContractCache) (*core.Contract, []core.JoinStats, time.Duration, error) {
		g := core.NewGenerator()
		g.Parallelism = m.parallelism
		g.NoIncremental = m.noInc
		g.NoJoinIndex = m.noIndex
		g.Coalesce = m.coalesce
		g.Cache = cache
		start := time.Now()
		ct, stats, err := core.ComposeManyStats(ctx, g, stages[:n])
		return ct, stats, time.Since(start), err
	}
	minTime := func(n int, m mode) (time.Duration, []core.JoinStats, error) {
		best := time.Duration(0)
		var stats []core.JoinStats
		for i := 0; i < res.Runs; i++ {
			_, s, d, err := compose(n, m, nil)
			if err != nil {
				return 0, nil, err
			}
			if best == 0 || d < best {
				best, stats = d, s
			}
		}
		return best, stats, nil
	}
	marshal := func(ct *core.Contract) (string, error) {
		js, err := json.Marshal(ct)
		return string(js), err
	}

	for n := 2; n <= len(stages); n++ {
		row := ChainBenchRow{NFs: n, Stages: strings.Join(names[:n], "+"), ParallelWorkers: par.Workers(workers)}
		pruned := n > maxExhaustiveNFs
		row.PrunedOnly = pruned

		serialMode := mode{parallelism: 1}
		coalMode := mode{parallelism: 1, coalesce: true}

		if !pruned {
			// Correctness gates for the uncoalesced composite: indexed
			// pairing must keep exactly the pairs exhaustive pairing
			// keeps (byte-identical composite, same per-fold kept
			// counts), and pooled and reference-mode runs must agree.
			serialCt, serialStats, _, err := compose(n, serialMode, nil)
			if err != nil {
				return res, fmt.Errorf("chainbench %s: %w", row.Stages, err)
			}
			want, err := marshal(serialCt)
			if err != nil {
				return res, err
			}
			noixCt, noixStats, _, err := compose(n, mode{parallelism: 1, noIndex: true}, nil)
			if err != nil {
				return res, fmt.Errorf("chainbench %s (noindex): %w", row.Stages, err)
			}
			got, err := marshal(noixCt)
			if err != nil {
				return res, err
			}
			if got != want {
				return res, fmt.Errorf("chainbench %s: exhaustive composite differs from indexed", row.Stages)
			}
			for i := range serialStats {
				if serialStats[i].Kept != noixStats[i].Kept {
					return res, fmt.Errorf("chainbench %s fold %d: indexed pairing kept %d pairs, exhaustive kept %d",
						row.Stages, serialStats[i].Fold, serialStats[i].Kept, noixStats[i].Kept)
				}
			}
			for _, alt := range []struct {
				label string
				m     mode
			}{
				{"parallel", mode{parallelism: workers}},
				{"reference", mode{parallelism: 1, noInc: true}},
			} {
				ct, _, _, err := compose(n, alt.m, nil)
				if err != nil {
					return res, fmt.Errorf("chainbench %s (%s): %w", row.Stages, alt.label, err)
				}
				if got, err := marshal(ct); err != nil {
					return res, err
				} else if got != want {
					return res, fmt.Errorf("chainbench %s: %s composite differs from serial", row.Stages, alt.label)
				}
			}
			row.Paths = len(serialCt.Paths)
		}

		// Coalescing gate: serial and pooled coalesced composites must
		// be byte-identical (merge groups key on composite order, which
		// parallel assembly preserves).
		coalCt, _, _, err := compose(n, coalMode, nil)
		if err != nil {
			return res, fmt.Errorf("chainbench %s (coalesce): %w", row.Stages, err)
		}
		wantCoal, err := marshal(coalCt)
		if err != nil {
			return res, err
		}
		coalPar, _, _, err := compose(n, mode{parallelism: workers, coalesce: true}, nil)
		if err != nil {
			return res, fmt.Errorf("chainbench %s (coalesce, pooled): %w", row.Stages, err)
		}
		if got, err := marshal(coalPar); err != nil {
			return res, err
		} else if got != wantCoal {
			return res, fmt.Errorf("chainbench %s: pooled coalesced composite differs from serial", row.Stages)
		}
		row.CoalescedPaths = len(coalCt.Paths)

		// Ablation timings (no cache: every run pays generation + joins).
		if !pruned {
			noindex, _, err := minTime(n, mode{parallelism: 1, noIndex: true})
			if err != nil {
				return res, err
			}
			serial, _, err := minTime(n, serialMode)
			if err != nil {
				return res, err
			}
			parallel, _, err := minTime(n, mode{parallelism: workers})
			if err != nil {
				return res, err
			}
			reference, _, err := minTime(n, mode{parallelism: 1, noInc: true})
			if err != nil {
				return res, err
			}
			row.NoIndexNS = uint64(noindex.Nanoseconds())
			row.SerialNS = uint64(serial.Nanoseconds())
			row.ParallelNS = uint64(parallel.Nanoseconds())
			row.ReferenceNS = uint64(reference.Nanoseconds())
			if serial > 0 {
				row.IndexSpeedup = float64(noindex) / float64(serial)
				row.IncrementalSpeedup = float64(reference) / float64(serial)
			}
			if parallel > 0 {
				row.ParallelSpeedup = float64(serial) / float64(parallel)
			}
		}
		coalesce, coalStats, err := minTime(n, coalMode)
		if err != nil {
			return res, err
		}
		row.CoalesceNS = uint64(coalesce.Nanoseconds())
		if !pruned && coalesce > 0 {
			row.CoalesceSpeedup = float64(row.SerialNS) / float64(row.CoalesceNS)
		}
		row.Folds = coalStats

		// Cold vs warm in the deep-chain configuration against a
		// private cache: the cold pass populates per-stage and
		// fold-prefix entries, the warm pass must come back through the
		// content-addressed composite.
		cache := core.NewContractCache()
		coldCt, _, cold, err := compose(n, coalMode, cache)
		if err != nil {
			return res, err
		}
		warm := time.Duration(0)
		for i := 0; i < res.Runs; i++ {
			warmCt, _, d, err := compose(n, coalMode, cache)
			if err != nil {
				return res, err
			}
			if warmCt != coldCt {
				return res, fmt.Errorf("chainbench %s: warm re-compose did not return the cached composite", row.Stages)
			}
			if warm == 0 || d < warm {
				warm = d
			}
		}
		if warm >= cold {
			return res, fmt.Errorf("chainbench %s: warm re-compose (%v) not faster than cold (%v)", row.Stages, warm, cold)
		}
		row.ColdNS = uint64(cold.Nanoseconds())
		row.WarmNS = uint64(warm.Nanoseconds())
		if warm > 0 {
			row.WarmSpeedup = float64(cold) / float64(warm)
		}

		// Warm-from-disk: a cold pass through a disk-backed cache persists
		// every stage contract and fold prefix; each timed pass then
		// "restarts the process" — a fresh memory tier over the same store
		// — and must re-compose the identical chain purely from decoded
		// artifacts.
		diskDir, err := os.MkdirTemp("", "chainbench-store-")
		if err != nil {
			return res, err
		}
		st, err := store.Open(diskDir)
		if err != nil {
			os.RemoveAll(diskDir)
			return res, err
		}
		diskWarm, err := func() (time.Duration, error) {
			seed := core.NewContractCache()
			seed.AttachDisk(st)
			if _, _, _, err := compose(n, coalMode, seed); err != nil {
				return 0, err
			}
			best := time.Duration(0)
			for i := 0; i < res.Runs; i++ {
				restart := core.NewContractCache()
				restart.AttachDisk(st)
				dwCt, _, d, err := compose(n, coalMode, restart)
				if err != nil {
					return 0, err
				}
				if got, err := marshal(dwCt); err != nil {
					return 0, err
				} else if got != wantCoal {
					return 0, fmt.Errorf("chainbench %s: disk-warm composite differs from serial coalesced", row.Stages)
				}
				ts := restart.TierStats()
				if ts.Misses != 0 || ts.DiskHits == 0 {
					return 0, fmt.Errorf("chainbench %s: disk-warm re-compose was not served from the store (%d misses, %d disk hits)",
						row.Stages, ts.Misses, ts.DiskHits)
				}
				if best == 0 || d < best {
					best = d
				}
			}
			return best, nil
		}()
		os.RemoveAll(diskDir)
		if err != nil {
			return res, err
		}
		row.WarmDiskNS = uint64(diskWarm.Nanoseconds())
		if diskWarm > 0 {
			row.WarmDiskSpeedup = float64(cold) / float64(diskWarm)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RenderChainBench prints the ablation as a table. Pruned-only rows
// (chains beyond exhaustive reach) render "-" in the exhaustive columns.
func RenderChainBench(r ChainBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chain composition ablations (roster %s; min of %d runs)\n", r.Workload, r.Runs)
	fmt.Fprintf(&b, "%-4s %6s %12s %12s %7s %12s %7s %12s %7s %12s %7s %7s %12s %12s %8s %12s %8s\n",
		"NFs", "paths", "noindex", "serial", "idx x", "parallel", "par x",
		"reference", "inc x", "coalesce", "paths", "co x", "cold", "warm", "warm x", "diskwarm", "disk x")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 170))
	rd := func(ns uint64) string {
		if ns == 0 {
			return "-"
		}
		return time.Duration(ns).Round(10 * time.Microsecond).String()
	}
	rx := func(x float64) string {
		if x == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", x)
	}
	for _, row := range r.Rows {
		paths := "-"
		if row.Paths > 0 {
			paths = fmt.Sprintf("%d", row.Paths)
		}
		fmt.Fprintf(&b, "%-4d %6s %12s %12s %7s %12s %7s %12s %7s %12s %7d %7s %12s %12s %7.0fx %12s %7.0fx\n",
			row.NFs, paths, rd(row.NoIndexNS), rd(row.SerialNS), rx(row.IndexSpeedup),
			rd(row.ParallelNS), rx(row.ParallelSpeedup),
			rd(row.ReferenceNS), rx(row.IncrementalSpeedup),
			rd(row.CoalesceNS), row.CoalescedPaths, rx(row.CoalesceSpeedup),
			rd(row.ColdNS), rd(row.WarmNS), row.WarmSpeedup,
			rd(row.WarmDiskNS), row.WarmDiskSpeedup)
	}
	return b.String()
}

// RenderChainBenchFolds prints the per-fold join-pruning record of the
// deep-chain configuration — the boltbench -v view.
func RenderChainBenchFolds(r ChainBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "per-fold join pruning (index + coalescing, serial)\n")
	fmt.Fprintf(&b, "%-4s %-4s %8s %8s %8s %10s %9s %8s %8s %8s %7s\n",
		"NFs", "fold", "a-paths", "b-paths", "pairs", "idx-skip", "prefilter", "refuted", "kept", "merged", "out")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 92))
	for _, row := range r.Rows {
		skipped, kept, pairs := uint64(0), uint64(0), uint64(0)
		for _, f := range row.Folds {
			cached := ""
			if f.Cached {
				cached = " (cached)"
			}
			fmt.Fprintf(&b, "%-4d %-4d %8d %8d %8d %10d %9d %8d %8d %8d %7d%s\n",
				row.NFs, f.Fold, f.APaths, f.BPaths, f.Pairs, f.IndexSkipped,
				f.PreFiltered, f.SolverRefuted, f.Kept, f.CoalesceMerged, f.PathsOut, cached)
			skipped += f.IndexSkipped
			kept += f.Kept
			pairs += f.Pairs
		}
		if pairs > 0 {
			fmt.Fprintf(&b, "%-4d  = %d/%d pairs index-skipped (%.1f%%), %d joined\n",
				row.NFs, skipped, pairs, 100*float64(skipped)/float64(pairs), kept)
		}
	}
	return b.String()
}

// WriteChainBenchJSON records the result for tracking across commits.
func WriteChainBenchJSON(path string, r ChainBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
