package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"gobolt/internal/core"
	"gobolt/internal/dslib"
	"gobolt/internal/nf"
	"gobolt/internal/par"
)

// ChainBenchRow is one chain length of the composition-engine ablation:
// the same chain composed serially vs on the worker pool, with the
// incremental join solver vs the reference engine, and cold vs warm
// against a private contract cache. Composites are verified
// byte-identical across all modes before any timing is recorded.
//
// Every timing covers the full ComposeMany call — stage generation plus
// the pairwise joins — because that is the operation a caller pays for;
// the ablation modes share the generation cost, so the reported ratios
// understate the join-only effect.
type ChainBenchRow struct {
	// NFs is the chain length; Stages names the roster prefix.
	NFs    int    `json:"nfs"`
	Stages string `json:"stages"`
	// Paths is the composite contract's path count (identical in every
	// mode — that identity is checked, not assumed).
	Paths int `json:"paths"`
	// SerialNS is Parallelism=1 with the incremental join solver; it is
	// the baseline of the parallel ablation and the subject of the
	// solver ablation.
	SerialNS uint64 `json:"serial_ns"`
	// ParallelNS runs the same composition on the worker pool.
	ParallelNS      uint64  `json:"parallel_ns"`
	ParallelWorkers int     `json:"parallel_workers"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// ReferenceNS swaps every join feasibility check (and the stage
	// generations) to the pre-incremental reference solver, serially —
	// the NoIncremental ablation.
	ReferenceNS        uint64  `json:"reference_ns"`
	IncrementalSpeedup float64 `json:"incremental_speedup"`
	// ColdNS composes against an empty private contract cache; WarmNS
	// re-composes the identical chain against the now-populated cache
	// (the fold prefix is content-addressed, so it is one lookup).
	ColdNS      uint64  `json:"cold_ns"`
	WarmNS      uint64  `json:"warm_ns"`
	WarmSpeedup float64 `json:"warm_speedup"`
}

// ChainBenchResult is the chainbench experiment: rows for chains of 2–6
// NFs drawn from one fixed roster.
type ChainBenchResult struct {
	Workload string          `json:"workload"`
	Runs     int             `json:"runs"`
	Rows     []ChainBenchRow `json:"rows"`
}

// ChainBenchStages builds the benchmark roster — firewall → NAT →
// bridge → LB → static router → LPM router — sized by the scale. Chains
// of length n use the first n stages, so longer chains strictly extend
// shorter ones (which also exercises the fold-prefix cache reuse).
func ChainBenchStages(sc Scale) ([]core.ChainStage, []string, error) {
	const hour = uint64(3_600_000_000_000)
	fw := nf.NewFirewall(nf.FirewallConfig{
		Rules: []dslib.Rule{
			{SrcMask: 0xFF000000, SrcVal: 0x7F000000, Action: 0}, // deny loopback
			{SrcMask: 0xFF000000, SrcVal: 0x0A000000, Action: 1}, // accept 10/8
		},
		DefaultAccept: false,
	})
	nat := nf.NewNAT(nf.NATConfig{
		ExternalIP: 0xC0A80001, Capacity: sc.TableCapacity,
		TimeoutNS: hour, GranularityNS: 1_000_000,
	})
	br := nf.NewBridge(nf.BridgeConfig{
		Ports: 4, Capacity: sc.TableCapacity,
		TimeoutNS: hour, GranularityNS: 1_000_000, RehashThreshold: 6,
	})
	lb, err := nf.NewLB(nf.LBConfig{
		Backends: 16, RingSize: 4099, BackendIPBase: 0xAC100000,
		FlowCapacity: sc.TableCapacity, TimeoutNS: hour, GranularityNS: 1_000_000,
		HeartbeatTimeoutNS: hour,
	})
	if err != nil {
		return nil, nil, err
	}
	sr := nf.NewStaticRouter(nf.StaticRouterConfig{Ports: 4})
	lpm := nf.NewLPMRouter(nf.LPMRouterConfig{Ports: 8})

	insts := []*nf.Instance{fw.Instance, nat.Instance, br.Instance, lb.Instance, sr.Instance, lpm.Instance}
	names := []string{"firewall", "nat", "bridge", "lb", "static-router", "lpm-router"}
	stages := make([]core.ChainStage, len(insts))
	for i, inst := range insts {
		stages[i] = core.ChainStage{Prog: inst.Prog, Models: inst.Models}
	}
	return stages, names, nil
}

// ChainBench runs the composition ablations over chains of 2–6 NFs.
// Parallelism for the pooled mode comes from the scale (≤1 means one
// worker per CPU); the serial, reference and cache modes always run at
// Parallelism=1 so each ablation changes exactly one variable.
func ChainBench(sc Scale) (ChainBenchResult, error) {
	stages, names, err := ChainBenchStages(sc)
	if err != nil {
		return ChainBenchResult{}, err
	}
	workers := sc.Parallelism
	if workers <= 1 {
		workers = 0 // one worker per CPU
	}
	res := ChainBenchResult{
		Workload: strings.Join(names, "+"),
		Runs:     3,
	}
	ctx := context.Background()

	compose := func(n, parallelism int, noInc bool, cache *core.ContractCache) (*core.Contract, time.Duration, error) {
		g := core.NewGenerator()
		g.Parallelism = parallelism
		g.NoIncremental = noInc
		g.Cache = cache
		start := time.Now()
		ct, err := core.ComposeManyContext(ctx, g, stages[:n])
		return ct, time.Since(start), err
	}
	minTime := func(n, parallelism int, noInc bool) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < res.Runs; i++ {
			_, d, err := compose(n, parallelism, noInc, nil)
			if err != nil {
				return 0, err
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	for n := 2; n <= len(stages); n++ {
		row := ChainBenchRow{NFs: n, Stages: strings.Join(names[:n], "+"), ParallelWorkers: par.Workers(workers)}

		// Correctness gate: serial, pooled and reference-mode composites
		// must be byte-identical before any timing is trusted.
		serialCt, _, err := compose(n, 1, false, nil)
		if err != nil {
			return res, fmt.Errorf("chainbench %s: %w", row.Stages, err)
		}
		want, err := json.Marshal(serialCt)
		if err != nil {
			return res, err
		}
		for _, mode := range []struct {
			label       string
			parallelism int
			noInc       bool
		}{
			{"parallel", workers, false},
			{"reference", 1, true},
		} {
			ct, _, err := compose(n, mode.parallelism, mode.noInc, nil)
			if err != nil {
				return res, fmt.Errorf("chainbench %s (%s): %w", row.Stages, mode.label, err)
			}
			got, err := json.Marshal(ct)
			if err != nil {
				return res, err
			}
			if string(got) != string(want) {
				return res, fmt.Errorf("chainbench %s: %s composite differs from serial", row.Stages, mode.label)
			}
		}
		row.Paths = len(serialCt.Paths)

		// Ablation timings (no cache: every run pays generation + joins).
		serial, err := minTime(n, 1, false)
		if err != nil {
			return res, err
		}
		parallel, err := minTime(n, workers, false)
		if err != nil {
			return res, err
		}
		reference, err := minTime(n, 1, true)
		if err != nil {
			return res, err
		}
		row.SerialNS = uint64(serial.Nanoseconds())
		row.ParallelNS = uint64(parallel.Nanoseconds())
		row.ReferenceNS = uint64(reference.Nanoseconds())
		if parallel > 0 {
			row.ParallelSpeedup = float64(serial) / float64(parallel)
		}
		if serial > 0 {
			row.IncrementalSpeedup = float64(reference) / float64(serial)
		}

		// Cold vs warm against a private cache: the cold pass populates
		// per-stage and fold-prefix entries, the warm pass must come back
		// through the content-addressed composite.
		cache := core.NewContractCache()
		coldCt, cold, err := compose(n, 1, false, cache)
		if err != nil {
			return res, err
		}
		warm := time.Duration(0)
		for i := 0; i < res.Runs; i++ {
			warmCt, d, err := compose(n, 1, false, cache)
			if err != nil {
				return res, err
			}
			if warmCt != coldCt {
				return res, fmt.Errorf("chainbench %s: warm re-compose did not return the cached composite", row.Stages)
			}
			if warm == 0 || d < warm {
				warm = d
			}
		}
		if warm >= cold {
			return res, fmt.Errorf("chainbench %s: warm re-compose (%v) not faster than cold (%v)", row.Stages, warm, cold)
		}
		row.ColdNS = uint64(cold.Nanoseconds())
		row.WarmNS = uint64(warm.Nanoseconds())
		if warm > 0 {
			row.WarmSpeedup = float64(cold) / float64(warm)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RenderChainBench prints the ablation as a table.
func RenderChainBench(r ChainBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "chain composition ablations (roster %s; min of %d runs)\n", r.Workload, r.Runs)
	fmt.Fprintf(&b, "%-4s %6s %12s %12s %8s %12s %8s %12s %12s %8s\n",
		"NFs", "paths", "serial", "parallel", "par x", "reference", "inc x", "cold", "warm", "warm x")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 102))
	rd := func(ns uint64) string {
		return time.Duration(ns).Round(10 * time.Microsecond).String()
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-4d %6d %12s %12s %7.2fx %12s %7.2fx %12s %12s %7.2fx\n",
			row.NFs, row.Paths, rd(row.SerialNS), rd(row.ParallelNS), row.ParallelSpeedup,
			rd(row.ReferenceNS), row.IncrementalSpeedup, rd(row.ColdNS), rd(row.WarmNS), row.WarmSpeedup)
	}
	return b.String()
}

// WriteChainBenchJSON records the result for tracking across commits.
func WriteChainBenchJSON(path string, r ChainBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
