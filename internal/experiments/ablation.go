package experiments

import (
	"fmt"
	"strings"

	"gobolt/internal/distill"
	"gobolt/internal/dslib"
	"gobolt/internal/nf"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// AblationRow quantifies one over-estimation source (§6): the same
// NF+workload analysed with a configuration that removes the source.
type AblationRow struct {
	Variant   string
	Predicted uint64
	Measured  uint64
	OverPct   float64
}

// AblationCoalescing isolates the paper's two stated over-estimation
// sources on the bridge's unicast class:
//
//   - "coalesced" is the shipped configuration: chain walks charge every
//     step as a full key comparison (the tag shortcut is coalesced away)
//     and each stateful call carries the analysis-build padding.
//   - "exact-walk" removes source 1: the data-structure implementation
//     pays the full comparison on every step, so contract and execution
//     agree step-for-step.
//   - "no-padding" additionally removes source 2 (a zero-pad Generator).
//
// The paper's §6 claim — source 1 dominates and the gap "can be reduced
// to 0" by exposing finer PCVs — falls out as the rows' ordering.
func AblationCoalescing(sc Scale) ([]AblationRow, error) {
	type variant struct {
		name    string
		costs   dslib.FlowTableCosts
		padding bool
	}
	exact := dslib.BridgeCosts()
	exact.GetWalk.ShortSave = dslib.StepCost{}
	exact.PutWalk.ShortSave = dslib.StepCost{}
	exact.ExpireWalk.ShortSave = dslib.StepCost{}
	variants := []variant{
		{"coalesced (shipped)", dslib.BridgeCosts(), true},
		{"exact-walk", exact, true},
		{"exact-walk, no padding", exact, false},
	}

	var out []AblationRow
	for _, v := range variants {
		br := nf.NewBridgeWithCosts(nf.BridgeConfig{
			Ports: 4, Capacity: sc.TableCapacity,
			TimeoutNS: hourNS, GranularityNS: 1_000_000, Seed: 21,
		}, v.costs)
		g := sc.Generator()
		if !v.padding {
			g.CallPadIC, g.CallPadMA = 0, 0
		}
		ct, err := g.Generate(br.Prog, br.Models)
		if err != nil {
			return nil, err
		}
		warm := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: warmupFor(sc, classFlows(sc)), MACs: classFlows(sc), Ports: 4, RoundRobin: true,
			StartNS: 1_000, GapNS: 1_000, Seed: 6,
		})
		uni := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: sc.Packets, MACs: classFlows(sc), Ports: 4, RoundRobin: true,
			StartNS: 1_000 + uint64(warmupFor(sc, classFlows(sc)))*1_000, GapNS: 1_000, Seed: 6,
		})
		runner := &distill.Runner{}
		if _, err := runner.Run(br.Instance, warm); err != nil {
			return nil, err
		}
		recs, err := runner.Run(br.Instance, uni)
		if err != nil {
			return nil, err
		}
		rep := &distill.Report{Records: recs}
		filt := has("mac.put:known", "mac.peek:hit")
		var predMax, measMax uint64
		for _, rec := range recs {
			pred, _ := ct.Bound(perf.Instructions, filt, rec.PCVs)
			if rec.IC > pred {
				return nil, fmt.Errorf("ablation %s: unsound: %d > %d", v.name, rec.IC, pred)
			}
			if pred > predMax {
				predMax = pred
			}
		}
		measMax = distill.Max(rep.Series(perf.Instructions))
		out = append(out, AblationRow{
			Variant:   v.name,
			Predicted: predMax,
			Measured:  measMax,
			OverPct:   overPct(predMax, measMax),
		})
	}
	return out, nil
}

// RenderAblation prints the rows.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %12s %12s %8s\n", "Variant", "Predicted", "Measured", "Over%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %12d %12d %7.2f%%\n", r.Variant, r.Predicted, r.Measured, r.OverPct)
	}
	return b.String()
}
