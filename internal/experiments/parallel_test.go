package experiments

import (
	"context"
	"encoding/json"
	"testing"

	"gobolt/internal/distill"
	"gobolt/internal/nf"
	"gobolt/internal/traffic"
)

// TestContractsDeterministicAcrossParallelism generates every NF the
// experiments use at worker counts 1, 2, and 8 and requires the JSON
// contract to be byte-identical — the acceptance criterion for the
// parallel pipeline. Caching is disabled so each run exercises the full
// pipeline rather than returning the same pointer.
func TestContractsDeterministicAcrossParallelism(t *testing.T) {
	sc := QuickScale()
	builders := []struct {
		name  string
		build func() (*nf.Instance, error)
	}{
		{"example-lpm", func() (*nf.Instance, error) {
			return nf.NewExampleLPM(nf.ExampleLPMConfig{Ports: 4}).Instance, nil
		}},
		{"lpm-router", func() (*nf.Instance, error) {
			return nf.NewLPMRouter(nf.LPMRouterConfig{Ports: 16}).Instance, nil
		}},
		{"firewall", func() (*nf.Instance, error) {
			return nf.NewFirewall(nf.FirewallConfig{}).Instance, nil
		}},
		{"static-router", func() (*nf.Instance, error) {
			return nf.NewStaticRouter(nf.StaticRouterConfig{Ports: 4}).Instance, nil
		}},
		{"bridge", func() (*nf.Instance, error) {
			return nf.NewBridge(nf.BridgeConfig{
				Ports: 4, Capacity: sc.TableCapacity, TimeoutNS: hourNS,
				RehashThreshold: 6,
			}).Instance, nil
		}},
		{"nat", func() (*nf.Instance, error) {
			return nf.NewNAT(nf.NATConfig{
				ExternalIP: 1, Capacity: sc.TableCapacity, TimeoutNS: hourNS,
			}).Instance, nil
		}},
		{"lb", func() (*nf.Instance, error) {
			lb, err := nf.NewLB(nf.LBConfig{
				Backends: 16, RingSize: 4099, FlowCapacity: sc.TableCapacity,
				TimeoutNS: hourNS, HeartbeatTimeoutNS: hourNS,
			})
			if err != nil {
				return nil, err
			}
			return lb.Instance, nil
		}},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			var ref []byte
			for _, workers := range []int{1, 2, 8} {
				inst, err := b.build()
				if err != nil {
					t.Fatal(err)
				}
				s := sc
				s.Parallelism = workers
				s.NoCache = true
				ct, err := s.Generator().Generate(inst.Prog, inst.Models)
				if err != nil {
					t.Fatalf("parallelism %d: %v", workers, err)
				}
				js, err := json.Marshal(ct)
				if err != nil {
					t.Fatal(err)
				}
				if workers == 1 {
					ref = js
				} else if string(js) != string(ref) {
					t.Errorf("parallelism %d: contract differs from serial", workers)
				}
			}
		})
	}
}

// TestRunManyMatchesSerialRuns: the concurrent measurement pool must
// return exactly what per-job serial Run calls produce, in job order.
func TestRunManyMatchesSerialRuns(t *testing.T) {
	mkJob := func(seed int64) distill.Job {
		br := nf.NewBridge(nf.BridgeConfig{
			Ports: 4, Capacity: 256, TimeoutNS: hourNS, GranularityNS: 1_000_000,
		})
		pkts := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: 64, MACs: 16, Ports: 4, StartNS: 1_000, GapNS: 1_000, Seed: seed,
		})
		return distill.Job{Inst: br.Instance, Pkts: pkts}
	}
	serial := make([][]distill.Record, 3)
	for i := range serial {
		job := mkJob(int64(i + 1))
		recs, err := (&distill.Runner{}).Run(job.Inst, job.Pkts)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = recs
	}
	jobs := []distill.Job{mkJob(1), mkJob(2), mkJob(3)}
	parallel, err := distill.RunMany(context.Background(), 3, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if len(parallel[i]) != len(serial[i]) {
			t.Fatalf("job %d: %d records vs %d serial", i, len(parallel[i]), len(serial[i]))
		}
		for j := range serial[i] {
			if parallel[i][j].IC != serial[i][j].IC || parallel[i][j].MA != serial[i][j].MA {
				t.Fatalf("job %d record %d: parallel %+v vs serial %+v",
					i, j, parallel[i][j], serial[i][j])
			}
		}
	}
}
