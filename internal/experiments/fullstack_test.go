package experiments

import (
	"strings"
	"testing"
)

// The §3.5 two-level claim: full-stack measurements exceed the NF-only
// bound (the framework is real work) and stay within the full-stack
// bound.
func TestFullStackLevels(t *testing.T) {
	rows, err := FullStack(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FullMeasured <= r.NFOnlyPred {
			t.Errorf("%s: full-stack measurement %d should exceed the NF-only bound %d",
				r.NF, r.FullMeasured, r.NFOnlyPred)
		}
		if r.FullMeasured > r.FullPred {
			t.Errorf("%s: full-stack measurement %d exceeds the full-stack bound %d",
				r.NF, r.FullMeasured, r.FullPred)
		}
		if r.FullPred <= r.NFOnlyPred {
			t.Errorf("%s: full-stack bound %d should exceed NF-only %d",
				r.NF, r.FullPred, r.NFOnlyPred)
		}
	}
	out := RenderFullStack(rows)
	if !strings.Contains(out, "nat (established)") {
		t.Error("render incomplete")
	}
	t.Logf("\n%s", out)
}
