package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/netip"
	"strings"

	"gobolt/internal/distill"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nf"
	"gobolt/internal/packet"
	"gobolt/internal/par"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// AllocScenario is one (allocator, churn) cell of the §5.3 comparison.
// The measured distribution is over flow-setup packets — the packets
// whose latency the port allocator actually determines.
type AllocScenario struct {
	Allocator string
	Churn     string
	// PredictedCycles is the contract bound for the new-flow class at
	// the Distiller-observed PCVs (Figure 5's bars).
	PredictedCycles uint64
	// MeasuredCDF is the flow-setup latency distribution (Figures 6/7).
	MeasuredCDF []distill.CCDFPoint
	// MeanCycles and MeanIC summarise the measured setups.
	MeanCycles float64
	MeanIC     float64
}

// AllocatorStudy runs the four scenarios: allocators A and B under low
// churn (long-lived flows, high port occupancy — long scans for B) and
// high churn (short-lived flows, low occupancy — B's cheap fast path).
// Each scenario builds its own NAT, so the four run concurrently;
// results keep the serial (A/low, A/high, B/low, B/high) order.
func AllocatorStudy(sc Scale) ([]AllocScenario, error) {
	type cell struct{ alloc, churn string }
	cells := []cell{{"A", "low"}, {"A", "high"}, {"B", "low"}, {"B", "high"}}
	out := make([]AllocScenario, len(cells))
	err := par.ForEach(context.Background(), sc.workers(), len(cells), func(i int) error {
		s, err := allocScenario(sc, cells[i].alloc, cells[i].churn)
		if err != nil {
			return err
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// natFlowPacket builds one internal-side packet for flow id.
func natFlowPacket(id int, t uint64) traffic.Packet {
	src := netip.AddrFrom4([4]byte{10, byte(id >> 16), byte(id >> 8), byte(id)})
	dst := netip.AddrFrom4([4]byte{192, 168, 1, 1})
	frame := packet.NewBuilder().
		Ethernet(packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2}, packet.EtherTypeIPv4).
		IPv4(src, dst, packet.ProtoUDP, 64, nil).
		UDP(uint16(10000+id%50000), 80).
		Bytes()
	return traffic.Packet{Data: frame, Time: t, InPort: nf.NATPortInternal}
}

func allocScenario(sc Scale, alloc, churn string) (AllocScenario, error) {
	// The allocator trade-off is about port-space *occupancy*, not table
	// scale, so the experiment uses a fixed 512-port NAT at any Scale.
	const capacity = 512
	const timeout = 150_000_000 // 150 ms
	nat := nf.NewNAT(nf.NATConfig{
		ExternalIP: 0xC0A80001, Capacity: capacity,
		TimeoutNS: timeout, GranularityNS: 1_000_000,
		PortCount: capacity, Seed: 9, Allocator: alloc,
	})
	ct, err := sc.Generator().Generate(nat.Prog, nat.Models)
	if err != nil {
		return AllocScenario{}, err
	}

	rng := rand.New(rand.NewSource(1234))
	var pkts []traffic.Packet
	var isSetup []bool
	now := uint64(1_000_000)

	if churn == "low" {
		// Long-lived flows at ~98% port occupancy: the refresh rate is
		// set so a flow's expected refresh interval is timeout/4 (about
		// 2% of flows randomly age out at any time). Their randomly
		// scattered freed ports are what the occasional new flow must
		// scan for — allocator B's long-scan regime.
		const nWarm = capacity
		gap := uint64(timeout * 15 / (64 * nWarm)) // ≈ timeout/(4.3·n) per packet
		for i := 0; i < nWarm; i++ {
			pkts = append(pkts, natFlowPacket(i, now))
			isSetup = append(isSetup, false) // warmup, excluded below
			now += gap
		}
		nextID := nWarm
		steady := 6 * 64 * nWarm / 15 // ≈ six timeouts of turnover
		if steady < sc.Packets*4 {
			steady = sc.Packets * 4
		}
		for i := 0; i < steady; i++ {
			if i%16 == 0 {
				pkts = append(pkts, natFlowPacket(nextID, now))
				isSetup = append(isSetup, true)
				nextID++
			} else {
				pkts = append(pkts, natFlowPacket(rng.Intn(nWarm), now))
				isSetup = append(isSetup, false)
			}
			now += gap
		}
	} else {
		// High churn: every packet a brand-new flow; old flows expire
		// long before the table fills, so occupancy stays near zero.
		for i := 0; i < sc.Packets*2; i++ {
			pkts = append(pkts, natFlowPacket(i, now))
			isSetup = append(isSetup, true)
			now += 50_000_000 // 50 ms per packet
		}
	}

	det := hwmodel.NewDetailed()
	recs, err := (&distill.Runner{Detailed: det}).Run(nat.Instance, pkts)
	if err != nil {
		return AllocScenario{}, err
	}
	skip := len(recs) / 3 // settle into steady state
	var setupCycles, setupIC []uint64
	setupRecs := make([]distill.Record, 0)
	for i := skip; i < len(recs); i++ {
		if isSetup[i] {
			setupCycles = append(setupCycles, recs[i].Cycles)
			setupIC = append(setupIC, recs[i].IC)
			setupRecs = append(setupRecs, recs[i])
		}
	}
	if len(setupCycles) == 0 {
		return AllocScenario{}, fmt.Errorf("alloc %s/%s: no setup packets measured", alloc, churn)
	}
	rep := &distill.Report{Records: setupRecs}
	pcvs := rep.MaxPCVs()
	for _, p := range ct.Paths {
		for v := range p.PCVRanges {
			if _, ok := pcvs[v]; !ok {
				pcvs[v] = 0
			}
		}
	}
	pred, _ := ct.Bound(perf.Cycles, has("flows.add:ok"), pcvs)
	return AllocScenario{
		Allocator:       alloc,
		Churn:           churn,
		PredictedCycles: pred,
		MeasuredCDF:     distill.CDF(setupCycles),
		MeanCycles:      distill.Mean(setupCycles),
		MeanIC:          distill.Mean(setupIC),
	}, nil
}

// RenderFigure5 prints the predicted-cycles comparison (Figure 5) plus
// the measured means backing Figures 6/7.
func RenderFigure5(scenarios []AllocScenario) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %18s %16s %12s\n", "Allocator", "Churn", "Predicted cycles", "Measured mean", "Mean IC")
	for _, s := range scenarios {
		fmt.Fprintf(&b, "%-10s %-8s %18d %16.0f %12.0f\n", s.Allocator, s.Churn, s.PredictedCycles, s.MeanCycles, s.MeanIC)
	}
	return b.String()
}

// Find returns the scenario for (allocator, churn).
func Find(scenarios []AllocScenario, alloc, churn string) *AllocScenario {
	for i := range scenarios {
		if scenarios[i].Allocator == alloc && scenarios[i].Churn == churn {
			return &scenarios[i]
		}
	}
	return nil
}
