package experiments

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"gobolt/internal/core"
)

// The 4-stage chainbench chain (firewall→nat→bridge→lb) is the CI smoke
// anchor: its composite path count is pinned (composition is
// deterministic, so any drift signals a join-algebra change), the
// composite is identical across worker counts and solver engines, and a
// warm-cache re-compose must beat the cold one.
func TestChainBenchFourStageQuick(t *testing.T) {
	stages, names, err := ChainBenchStages(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 8 || names[3] != "lb" {
		t.Fatalf("unexpected roster %v", names)
	}

	serial := core.NewGenerator()
	serial.Parallelism = 1
	ct, err := core.ComposeMany(serial, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	const wantPaths = 582
	if len(ct.Paths) != wantPaths {
		t.Errorf("firewall+nat+bridge+lb composite has %d paths, want %d", len(ct.Paths), wantPaths)
	}
	want, _ := json.Marshal(ct)

	pooled := core.NewGenerator()
	pooled.Parallelism = 4
	pooledCt, err := core.ComposeMany(pooled, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(pooledCt); string(got) != string(want) {
		t.Error("pooled composite differs from serial")
	}

	ref := core.NewGenerator()
	ref.Parallelism = 1
	ref.NoIncremental = true
	refCt, err := core.ComposeMany(ref, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(refCt); string(got) != string(want) {
		t.Error("reference-mode composite differs from incremental")
	}

	cached := core.NewGenerator()
	cached.Cache = core.NewContractCache()
	start := time.Now()
	coldCt, err := core.ComposeMany(cached, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	start = time.Now()
	warmCt, err := core.ComposeMany(cached, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)
	if warmCt != coldCt {
		t.Error("warm re-compose did not return the cached composite")
	}
	if warm >= cold {
		t.Errorf("warm re-compose (%v) not faster than cold (%v)", warm, cold)
	}
}

// Seven-stage chains are out of exhaustive reach (the uncoalesced
// composite grows multiplicatively per fold) but must complete in the
// deep-chain configuration: join index plus composite coalescing. This
// is the CI anchor for the pruned rows of ChainBench.
func TestChainBenchDeepChainPruned(t *testing.T) {
	stages, names, err := ChainBenchStages(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 7 {
		t.Fatalf("roster too short for a deep chain: %v", names)
	}
	g := core.NewGenerator()
	g.Parallelism = 1
	g.Coalesce = true
	start := time.Now()
	ct, stats, err := core.ComposeManyStats(context.Background(), g, stages[:7])
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(ct.Paths) == 0 {
		t.Fatal("deep chain composed to zero paths")
	}
	if len(stats) != 6 {
		t.Fatalf("expected 6 fold stat records, got %d", len(stats))
	}
	var skipped, pairs uint64
	for _, f := range stats {
		if f.IndexSkipped+f.PreFiltered+f.SolverRefuted+f.Kept != f.Pairs {
			t.Errorf("fold %d: pruning stats do not partition the pair count: %+v", f.Fold, f)
		}
		skipped += f.IndexSkipped
		pairs += f.Pairs
	}
	if skipped == 0 {
		t.Error("join index skipped no pairs on a 7-stage chain")
	}
	t.Logf("7-stage chain: %d paths, %d/%d pairs index-skipped, %v", len(ct.Paths), skipped, pairs, elapsed)
}
