package experiments

import (
	"encoding/json"
	"testing"
	"time"

	"gobolt/internal/core"
)

// The 4-stage chainbench chain (firewall→nat→bridge→lb) is the CI smoke
// anchor: its composite path count is pinned (composition is
// deterministic, so any drift signals a join-algebra change), the
// composite is identical across worker counts and solver engines, and a
// warm-cache re-compose must beat the cold one.
func TestChainBenchFourStageQuick(t *testing.T) {
	stages, names, err := ChainBenchStages(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 6 || names[3] != "lb" {
		t.Fatalf("unexpected roster %v", names)
	}

	serial := core.NewGenerator()
	serial.Parallelism = 1
	ct, err := core.ComposeMany(serial, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	const wantPaths = 582
	if len(ct.Paths) != wantPaths {
		t.Errorf("firewall+nat+bridge+lb composite has %d paths, want %d", len(ct.Paths), wantPaths)
	}
	want, _ := json.Marshal(ct)

	pooled := core.NewGenerator()
	pooled.Parallelism = 4
	pooledCt, err := core.ComposeMany(pooled, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(pooledCt); string(got) != string(want) {
		t.Error("pooled composite differs from serial")
	}

	ref := core.NewGenerator()
	ref.Parallelism = 1
	ref.NoIncremental = true
	refCt, err := core.ComposeMany(ref, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(refCt); string(got) != string(want) {
		t.Error("reference-mode composite differs from incremental")
	}

	cached := core.NewGenerator()
	cached.Cache = core.NewContractCache()
	start := time.Now()
	coldCt, err := core.ComposeMany(cached, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	start = time.Now()
	warmCt, err := core.ComposeMany(cached, stages[:4])
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)
	if warmCt != coldCt {
		t.Error("warm re-compose did not return the cached composite")
	}
	if warm >= cold {
		t.Errorf("warm re-compose (%v) not faster than cold (%v)", warm, cold)
	}
}
