package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"gobolt/internal/core"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/symb"
)

// SolverBenchResult quantifies the incremental solver engine on the
// solver-heaviest workload in the repository: cold-cache contract
// generation of NAT + bridge + LB. Baseline re-prepares every constraint
// set from scratch (the pre-incremental engine, reachable through the
// NoIncremental ablation knob); Incremental is the production
// configuration — sessions forked per branch, prefix-memoized
// feasibility, compiled constraint programs.
type SolverBenchResult struct {
	// Workload names the NFs generated per run.
	Workload string `json:"workload"`
	// Runs is how many timed repetitions each mode ran; the reported
	// times are the per-mode minimum (least-noise estimate).
	Runs int `json:"runs"`
	// BaselineNS / IncrementalNS are wall-clock nanoseconds for one full
	// cold-cache generation of the workload in each mode.
	BaselineNS    uint64 `json:"baseline_ns"`
	IncrementalNS uint64 `json:"incremental_ns"`
	// Speedup is BaselineNS / IncrementalNS.
	Speedup float64 `json:"speedup"`
	// Paths is the total path count across the workload's contracts, the
	// same in both modes.
	Paths int `json:"paths"`
	// Per-branch feasibility check on a representative path-constraint
	// shape, nanoseconds per check: re-preparing the whole set from
	// scratch, forking a prepared session and asserting one constraint,
	// and reconverging on a memoized set.
	FeasFromScratchNS uint64 `json:"feas_from_scratch_ns"`
	FeasIncrementalNS uint64 `json:"feas_incremental_ns"`
	FeasMemoHitNS     uint64 `json:"feas_memo_hit_ns"`
	// FeasSpeedup is FeasFromScratchNS / FeasIncrementalNS.
	FeasSpeedup float64 `json:"feas_speedup"`
}

// solverBenchNFs builds the workload: the three stateful NFs whose
// exploration issues the most feasibility checks and whose paths carry
// the largest constraint sets.
func solverBenchNFs(capacity int) ([]*nf.Instance, error) {
	const hour = uint64(3_600_000_000_000)
	nat := nf.NewNAT(nf.NATConfig{
		ExternalIP: 0xC0A80001, Capacity: capacity,
		TimeoutNS: hour, GranularityNS: 1_000_000,
	})
	br := nf.NewBridge(nf.BridgeConfig{
		Ports: 4, Capacity: capacity,
		TimeoutNS: hour, GranularityNS: 1_000_000, RehashThreshold: 6,
	})
	lb, err := nf.NewLB(nf.LBConfig{
		Backends: 16, RingSize: 4099, BackendIPBase: 0xAC100000,
		FlowCapacity: capacity, TimeoutNS: hour, GranularityNS: 1_000_000,
		HeartbeatTimeoutNS: hour,
	})
	if err != nil {
		return nil, err
	}
	return []*nf.Instance{nat.Instance, br.Instance, lb.Instance}, nil
}

// SolverBench times cold-cache generation of the workload with the
// incremental engine off and on. Caching is disabled in both modes so
// every run pays the full pipeline; contracts are verified identical
// across modes before any timing is trusted.
func SolverBench(sc Scale) (SolverBenchResult, error) {
	insts, err := solverBenchNFs(sc.TableCapacity)
	if err != nil {
		return SolverBenchResult{}, err
	}
	res := SolverBenchResult{
		Workload: "nat+bridge+lb",
		Runs:     5,
	}

	generate := func(noInc bool) (time.Duration, int, []string, error) {
		g := core.NewGenerator()
		g.Parallelism = sc.Parallelism
		g.NoIncremental = noInc
		paths := 0
		var rendered []string
		start := time.Now()
		for _, inst := range insts {
			ct, err := g.Generate(inst.Prog, inst.Models)
			if err != nil {
				return 0, 0, nil, err
			}
			paths += len(ct.Paths)
			js, err := json.Marshal(ct)
			if err != nil {
				return 0, 0, nil, err
			}
			rendered = append(rendered, string(js))
		}
		return time.Since(start), paths, rendered, nil
	}

	// Warm-up run per mode (JIT-free, but page cache / branch predictors
	// settle), with the contract-identity check riding along.
	_, basePaths, baseCT, err := generate(true)
	if err != nil {
		return res, fmt.Errorf("solverbench baseline: %w", err)
	}
	_, incPaths, incCT, err := generate(false)
	if err != nil {
		return res, fmt.Errorf("solverbench incremental: %w", err)
	}
	if basePaths != incPaths {
		return res, fmt.Errorf("solverbench: path counts diverge (%d baseline, %d incremental)", basePaths, incPaths)
	}
	for i := range baseCT {
		if baseCT[i] != incCT[i] {
			return res, fmt.Errorf("solverbench: contract %d differs between modes", i)
		}
	}
	res.Paths = incPaths

	min := func(noInc bool) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < res.Runs; i++ {
			d, _, _, err := generate(noInc)
			if err != nil {
				return 0, err
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	base, err := min(true)
	if err != nil {
		return res, err
	}
	inc, err := min(false)
	if err != nil {
		return res, err
	}
	res.BaselineNS = uint64(base.Nanoseconds())
	res.IncrementalNS = uint64(inc.Nanoseconds())
	if inc > 0 {
		res.Speedup = float64(base) / float64(inc)
	}
	res.FeasFromScratchNS, res.FeasIncrementalNS, res.FeasMemoHitNS = feasibilityMicro()
	if res.FeasIncrementalNS > 0 {
		res.FeasSpeedup = float64(res.FeasFromScratchNS) / float64(res.FeasIncrementalNS)
	}
	return res, nil
}

// feasibilityMicro times one branch-shaped feasibility check in the
// three regimes the exploration engine hits: a from-scratch solve on
// the reference (pre-incremental) implementation, an incremental
// fork+assert, and a memo-table reconvergence. It mirrors
// internal/symb's benchmarks but runs standalone so boltbench can record
// the numbers without the testing harness.
func feasibilityMicro() (fromScratch, incremental, memoHit uint64) {
	cs := []symb.Expr{
		symb.B(symb.Eq, symb.S("pkt_12_2"), symb.C(0x0800)),
		symb.B(symb.Ne, symb.S("pkt_23_1"), symb.C(6)),
		symb.B(symb.Eq, symb.S("pkt_23_1"), symb.C(17)),
		symb.B(symb.Ult, symb.S("in_port"), symb.C(2)),
	}
	dom := map[string]symb.Domain{
		"pkt_12_2": symb.Word, "pkt_23_1": symb.Byte, "in_port": symb.Byte,
	}
	sv := &symb.Solver{MaxNodes: nfir.DefaultFeasibilityMaxNodes, Samples: nfir.DefaultFeasibilitySamples}
	ref := &symb.Solver{MaxNodes: sv.MaxNodes, Samples: sv.Samples, Reference: true}
	ctx := context.Background()
	const iters = 2000

	// fresh yields a per-iteration unique disequality on the already
	// pinned Word symbol: it leaves the search work unchanged but gives
	// every iteration a distinct constraint set, so the memo cannot
	// answer and the incremental machinery itself is measured.
	fresh := func(i int) symb.Expr {
		v := uint64(i) + 1
		if v >= 0x0800 {
			v++ // never contradict pkt_12_2 == 0x0800
		}
		return symb.B(symb.Ne, symb.S("pkt_12_2"), symb.C(v))
	}

	start := time.Now()
	for i := 0; i < iters; i++ {
		ref.FeasibleContext(ctx, append(cs[:len(cs):len(cs)], fresh(i)), dom)
	}
	fromScratch = uint64(time.Since(start).Nanoseconds() / iters)

	eng := symb.NewIncremental()
	parent := eng.NewSession()
	for n, d := range dom {
		parent.SetDomain(n, d)
	}
	for _, c := range cs {
		parent.Assert(c)
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		child := parent.Fork()
		child.Assert(fresh(i))
		child.FeasibleContext(ctx, sv)
	}
	incremental = uint64(time.Since(start).Nanoseconds() / iters)

	// Memo reconvergence: identical set re-checked, as when sibling
	// branches collapse to the same constraints.
	full := parent.Fork()
	full.Assert(fresh(0))
	full.FeasibleContext(ctx, sv) // populate the memo
	start = time.Now()
	for i := 0; i < iters; i++ {
		c := parent.Fork()
		c.Assert(fresh(0))
		c.FeasibleContext(ctx, sv)
	}
	memoHit = uint64(time.Since(start).Nanoseconds() / iters)
	return fromScratch, incremental, memoHit
}

// RenderSolverBench prints the ablation as a small table.
func RenderSolverBench(r SolverBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %14s %10s\n", "cold generation ("+r.Workload+")", "wall time", "speedup")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 60))
	fmt.Fprintf(&b, "%-34s %14s %10s\n", "from-scratch solver (baseline)",
		time.Duration(r.BaselineNS).Round(10*time.Microsecond), "1.00x")
	fmt.Fprintf(&b, "%-34s %14s %9.2fx\n", "incremental engine",
		time.Duration(r.IncrementalNS).Round(10*time.Microsecond), r.Speedup)
	fmt.Fprintf(&b, "(%d paths per run, min of %d runs per mode, contracts verified identical)\n\n",
		r.Paths, r.Runs)
	fmt.Fprintf(&b, "%-34s %14s %10s\n", "per-branch feasibility check", "ns/check", "speedup")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 60))
	fmt.Fprintf(&b, "%-34s %14d %10s\n", "from-scratch solve", r.FeasFromScratchNS, "1.00x")
	fmt.Fprintf(&b, "%-34s %14d %9.2fx\n", "session fork + assert", r.FeasIncrementalNS, r.FeasSpeedup)
	if r.FeasMemoHitNS > 0 {
		fmt.Fprintf(&b, "%-34s %14d %9.2fx\n", "memo reconvergence", r.FeasMemoHitNS,
			float64(r.FeasFromScratchNS)/float64(r.FeasMemoHitNS))
	}
	return b.String()
}

// WriteSolverBenchJSON records the result for tracking across commits.
func WriteSolverBenchJSON(path string, r SolverBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
