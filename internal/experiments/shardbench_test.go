package experiments

import "testing"

// TestShardBenchQuick is the tier-1 gate on the shard dimension: the
// full sweep at quick scale must hold the per-packet soundness
// invariant (ShardBench errors on any violation), classify every
// measured packet to a contract path, keep contention-free NFs flat in
// the shard count, and stay within the calibrated fidelity tolerance on
// the core validation set.
func TestShardBenchQuick(t *testing.T) {
	rows, err := ShardBench(QuickScale())
	if err != nil {
		t.Fatal(err) // includes any per-packet SOUNDNESS VIOLATION
	}
	if want := len(shardBenchNFs) * len(ShardCounts); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}

	base := map[string]ShardRow{} // S=1 row per NF
	for _, r := range rows {
		if r.Shards == 1 {
			base[r.NF] = r
		}
	}
	// Calibrated fidelity ceilings (quick scale, observed ~9-28x at S=1
	// and ~37-60x at S=8 on this set — the conservative-vs-detailed gap
	// of Table 3 plus the pessimistic WorstXfer contention charge).
	tight := map[string]float64{
		"nat": 75, "lb": 75, "lpm": 75, "firewall": 75,
		"bvm-ratelimit": 90, "bvm-acl": 90, "bvm-decap": 75,
	}
	for _, r := range rows {
		if r.Packets == 0 {
			t.Errorf("%s S=%d: measured no packets", r.NF, r.Shards)
			continue
		}
		if r.Unclassified != 0 {
			t.Errorf("%s S=%d: %d packets unclassified", r.NF, r.Shards, r.Unclassified)
		}
		if r.PredictedCycles < r.MeasuredCycles {
			t.Errorf("%s S=%d: worst prediction %d below worst measurement %d",
				r.NF, r.Shards, r.PredictedCycles, r.MeasuredCycles)
		}
		b := base[r.NF]
		if r.SharedCalls == 0 && r.PredictedCycles != b.PredictedCycles {
			t.Errorf("%s S=%d: contention-free NF's bound moved: %d vs %d at S=1",
				r.NF, r.Shards, r.PredictedCycles, b.PredictedCycles)
		}
		if r.PredictedCycles < b.PredictedCycles {
			t.Errorf("%s S=%d: bound %d shrank below the S=1 bound %d",
				r.NF, r.Shards, r.PredictedCycles, b.PredictedCycles)
		}
		if ceil, ok := tight[r.NF]; ok && r.Ratio() > ceil {
			t.Errorf("%s S=%d: prediction %.1fx measured, calibrated ceiling %.0fx",
				r.NF, r.Shards, r.Ratio(), ceil)
		}
	}
	// The sweep must actually exercise contention somewhere: flow-rich
	// traffic through the NAT's shared port allocator ping-pongs lines.
	var anyXfer bool
	for _, r := range rows {
		if r.Shards > 1 && r.Transfers > 0 {
			anyXfer = true
		}
		if r.Shards == 1 && r.Transfers != 0 {
			t.Errorf("%s S=1 charged %d transfers; a single shard has no contenders", r.NF, r.Transfers)
		}
	}
	if !anyXfer {
		t.Error("no NF charged a single coherence transfer at S>1; the shared brackets are not wired")
	}
}
