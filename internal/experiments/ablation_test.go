package experiments

import (
	"strings"
	"testing"
)

func TestAblationCoalescing(t *testing.T) {
	rows, err := AblationCoalescing(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	shipped, exact, bare := rows[0], rows[1], rows[2]
	// Removing the coalesced walk shortcut must shrink the gap, and
	// additionally removing the padding must shrink it to (near) zero —
	// the paper's §6 decomposition of its 7% over-estimation.
	if !(exact.OverPct < shipped.OverPct) {
		t.Errorf("exact-walk gap %.2f%% should be below shipped %.2f%%", exact.OverPct, shipped.OverPct)
	}
	if !(bare.OverPct <= exact.OverPct) {
		t.Errorf("no-padding gap %.2f%% should not exceed exact-walk %.2f%%", bare.OverPct, exact.OverPct)
	}
	if bare.OverPct > 1.0 {
		t.Errorf("with both sources removed the gap should be ≈0, got %.2f%%", bare.OverPct)
	}
	out := RenderAblation(rows)
	if !strings.Contains(out, "coalesced (shipped)") {
		t.Error("render incomplete")
	}
	t.Logf("\n%s", out)
}
