package experiments

import (
	"context"
	"fmt"
	"strings"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// Table6 renders the VigNAT contract's five published classes.
func Table6(sc Scale) ([][2]string, error) {
	nat := nf.NewNAT(nf.NATConfig{
		ExternalIP: 0xC0A80001, Capacity: sc.TableCapacity,
		TimeoutNS: hourNS, GranularityNS: 1_000_000, Seed: 3,
	})
	ct, err := sc.Generator().Generate(nat.Prog, nat.Models)
	if err != nil {
		return nil, err
	}
	worstExpr := func(filter func(*core.PathContract) bool) string {
		var worst *core.PathContract
		var worstVal uint64
		for _, p := range ct.Paths {
			if !filter(p) {
				continue
			}
			v := p.BoundAt(perf.Instructions, nil)
			if worst == nil || v > worstVal {
				worst, worstVal = p, v
			}
		}
		if worst == nil {
			return "(no path)"
		}
		return worst.Cost[perf.Instructions].String()
	}
	drop, fwd := acts(nfir.ActionDrop), acts(nfir.ActionForward)
	return [][2]string{
		{"Invalid packets (dropped)", worstExpr(core.And(drop, hasNot("lookup"), hasNot("add")))},
		{"Known flows (forwarded)", worstExpr(core.And(fwd, has("flows.lookup_int:hit")))},
		{"New external flows (dropped)", worstExpr(core.And(drop, has("flows.lookup_ext:miss")))},
		{"New internal flows; table full (dropped)", worstExpr(core.And(drop, has("flows.add:full")))},
		{"New internal flows; table not full (forwarded)", worstExpr(core.And(fwd, has("flows.add:ok")))},
	}, nil
}

// VigNATStudy is the §5.3 expiry-batching investigation: the same NAT
// and workload measured with second-granularity flow timestamps (the
// original VigNAT bug) and millisecond granularity (the fix).
type VigNATStudy struct {
	// ExpiryHistogram is the Distiller report of Tables 7/8: expired
	// flows per packet → probability density (%).
	ExpiryHistogram []distill.HistogramBin
	// LatencyCCDF is Figure 4's per-granularity curve (detailed-model
	// cycles as the latency stand-in).
	LatencyCCDF []distill.CCDFPoint
	// Median and Tail (99.9th percentile) summarise the CCDF.
	Median, Tail uint64
}

// Figure4 runs the study for both granularities. The workload is
// uniform random traffic with churn, scaled so flows expire throughout
// the run: with coarse stamps, all flows stamped within one quantum
// expire in a single batch when the quantum ticks over (the paper's
// inadvertent batching); with fine stamps they expire one or two at a
// time.
func Figure4(sc Scale) (secondGran, milliGran *VigNATStudy, err error) {
	const (
		gap     = 500_000     // 0.5 ms between packets
		timeout = 300_000_000 // 300 ms flow timeout
		coarse  = 100_000_000 // "second-granularity" analog: 100 ms quanta
		fine    = 1_000_000   // the fix: 1 ms quanta
	)
	// The two granularities are independent NAT instances over the same
	// workload shape, so they measure concurrently via distill.RunMany.
	jobs := make([]distill.Job, 0, 2)
	for _, gran := range []uint64{coarse, fine} {
		nat := nf.NewNAT(nf.NATConfig{
			ExternalIP: 0xC0A80001, Capacity: sc.TableCapacity,
			TimeoutNS: timeout, GranularityNS: gran, Seed: 3,
		})
		pkts := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets * 8, Flows: 256, NewFlowEvery: 4,
			StartNS: 1_000_000, GapNS: gap, Seed: 17, InPort: nf.NATPortInternal,
		})
		jobs = append(jobs, distill.Job{Inst: nat.Instance, Pkts: pkts, Detailed: hwmodel.NewDetailed()})
	}
	results, err := distill.RunMany(context.Background(), sc.workers(), jobs)
	if err != nil {
		return nil, nil, err
	}
	summarise := func(recs []distill.Record) *VigNATStudy {
		warm := len(recs) / 4 // let the flow table and expiry reach steady state
		rep := &distill.Report{Records: recs[warm:]}
		cycles := rep.Series(perf.Cycles)
		return &VigNATStudy{
			ExpiryHistogram: rep.PCVHistogram("e"),
			LatencyCCDF:     distill.CCDF(cycles),
			Median:          distill.Quantile(cycles, 0.5),
			Tail:            distill.Quantile(cycles, 0.999),
		}
	}
	return summarise(results[0]), summarise(results[1]), nil
}

// RenderTable6 prints the VigNAT contract.
func RenderTable6(rows [][2]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-48s %s\n", "Traffic Type", "Instructions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-48s %s\n", r[0], r[1])
	}
	return b.String()
}

// RenderExpiryHistogram prints a Table 7/8-style distribution.
func RenderExpiryHistogram(title string, bins []distill.HistogramBin) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-24s %s\n", title, "Number of Expired Flows", "Probability Density(%)")
	for _, bin := range bins {
		fmt.Fprintf(&b, "%-24d %7.3f\n", bin.Value, bin.Percent)
	}
	return b.String()
}

// RenderFigure4 summarises both latency CCDFs.
func RenderFigure4(second, milli *VigNATStudy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Per-packet latency (detailed-model cycles):\n")
	fmt.Fprintf(&b, "  %-28s median %8d   p99.9 %8d\n", "Coarse granularity (bug):", second.Median, second.Tail)
	fmt.Fprintf(&b, "  %-28s median %8d   p99.9 %8d\n", "Fine granularity (fixed):", milli.Median, milli.Tail)
	return b.String()
}
