package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/monitor"
	"gobolt/internal/nf"
	"gobolt/internal/traffic"
)

// This file holds the monitor subsystem's evaluation: the online §5.2
// reproduction (the bridge collision attack is detected from the
// contract's *predictions* before the rehash cliff), and the overhead
// benchmark (monitored replay vs bare distill.Runner).

// attackRehashThreshold arms the §5.2 defence far enough out that the
// experiment can show the monitor paging well before the cliff: the
// colliding chain must grow this long before the table rehashes.
const attackRehashThreshold = 16

// AttackBridge builds the defended bridge the attack experiments run
// against, with its generated contract.
func AttackBridge(sc Scale) (*nf.Bridge, *core.Contract, error) {
	br := nf.NewBridge(nf.BridgeConfig{
		Ports: 4, Capacity: sc.TableCapacity,
		TimeoutNS: hourNS, GranularityNS: 1_000_000,
		RehashThreshold: attackRehashThreshold, Seed: 77,
	})
	ct, err := sc.Generator().Generate(br.Prog, br.Models)
	return br, ct, err
}

// attackBenign is the benign bridge workload all three phases share the
// shape of (population, rate); the seed varies so the control burst is
// not the calibration trace replayed.
func attackBenign(sc Scale, packets int, startNS uint64, seed int64) []traffic.Packet {
	return traffic.BridgeFrames(traffic.BridgeConfig{
		Packets: packets, MACs: classFlows(sc), Ports: 4,
		StartNS: startNS, GapNS: 1_000, Seed: seed,
	})
}

// AttackDetectionResult is the online §5.2 outcome.
type AttackDetectionResult struct {
	// Budget is the calibrated overload threshold (IC per packet).
	Budget uint64
	// AlertPacket is the attack-trace packet index (within the monitored
	// run) of the first overload alert; -1 if none fired.
	AlertPacket int
	// RehashPacket is the attack-trace index of the first packet whose
	// run actually rehashed the table (PCV o > 0) — the throughput
	// cliff; -1 when the trace never got there.
	RehashPacket int
	// Alert is the first overload alert, with its class, observed PCVs
	// and exceeded bound.
	Alert *monitor.Alert
	// BenignOverloads counts overload alerts on the equal-rate benign
	// burst (must be 0).
	BenignOverloads int
	// Violations across all three phases (must be 0: the attack degrades
	// performance *within* the contract, §5.2's point).
	Violations int
	// AttackReport and BenignReport are the rendered monitor states.
	AttackReport, BenignReport string
}

// Detected reports whether the §5.2 claim held online: the attack paged
// before the cliff and the benign control stayed quiet.
func (r *AttackDetectionResult) Detected() bool {
	if r.AlertPacket < 0 || r.BenignOverloads > 0 || r.Violations > 0 {
		return false
	}
	return r.RehashPacket < 0 || r.AlertPacket < r.RehashPacket
}

// AttackDetection reproduces §5.2 as an online result. Three phases,
// each on a fresh defended bridge warmed with the same benign traffic:
//
//  1. Calibrate: replay benign traffic through an unbudgeted monitor;
//     budget = 1.25 × the worst contract-predicted IC.
//  2. Attack: replay colliding-MAC frames (the CASTAN-substitute
//     generator). Every frame grows one bucket's chain, the contract's
//     predicted IC climbs with the traversal PCV, and the monitor must
//     page before the chain reaches the rehash threshold.
//  3. Control: an equal-rate benign burst (fresh seed) must not page.
func AttackDetection(sc Scale) (*AttackDetectionResult, error) {
	warmN := warmupFor(sc, classFlows(sc))
	mcfg := monitor.Config{Trigger: 3, Clear: 8}
	ctx := context.Background()

	// Phase 1: calibration.
	br, ct, err := AttackBridge(sc)
	if err != nil {
		return nil, err
	}
	budget, err := monitor.Calibrate(ctx, ct, mcfg, br.Instance,
		attackBenign(sc, warmN+sc.Packets, 1_000, 41), 1.25)
	if err != nil {
		return nil, err
	}
	res := &AttackDetectionResult{Budget: budget, AlertPacket: -1, RehashPacket: -1}

	// Phase 2: the attack. Warm a fresh bridge with benign traffic, then
	// replay the colliding trace at the same rate.
	br2, ct2, err := AttackBridge(sc)
	if err != nil {
		return nil, err
	}
	mcfg.Budget = budget
	mon, err := monitor.New(ct2, mcfg)
	if err != nil {
		return nil, err
	}
	warm := attackBenign(sc, warmN, 1_000, 42)
	if err := mon.Warm(ctx, br2.Instance, warm); err != nil {
		return nil, err
	}
	attackStart := 1_000 + uint64(warmN)*1_000
	attack := traffic.CollidingFrames(br2.Table, attackRehashThreshold*2, attackStart, 1_000, 43)
	if attack == nil {
		return nil, fmt.Errorf("attack detection: collision search found no colliding MACs")
	}
	recs, err := mon.Run(ctx, br2.Instance, attack)
	if err != nil {
		return nil, err
	}
	for i, rec := range recs {
		if rec.PCVs["o"] > 0 {
			res.RehashPacket = i
			break
		}
	}
	for _, a := range mon.Alerts() {
		if a.Kind == monitor.AlertOverload {
			al := a
			res.Alert = &al
			// Alert indices count from the monitor's first observed packet;
			// the monitored run saw only the attack trace.
			res.AlertPacket = a.PacketIndex
			break
		}
	}
	res.Violations += mon.Violations()
	res.AttackReport = mon.Report()

	// Phase 3: the equal-rate benign control.
	br3, ct3, err := AttackBridge(sc)
	if err != nil {
		return nil, err
	}
	ctl, err := monitor.New(ct3, mcfg)
	if err != nil {
		return nil, err
	}
	if err := ctl.Warm(ctx, br3.Instance, attackBenign(sc, warmN, 1_000, 42)); err != nil {
		return nil, err
	}
	burst := attackBenign(sc, attackRehashThreshold*2, attackStart, 44)
	if _, err := ctl.Run(ctx, br3.Instance, burst); err != nil {
		return nil, err
	}
	for _, a := range ctl.Alerts() {
		if a.Kind == monitor.AlertOverload {
			res.BenignOverloads++
		}
	}
	res.Violations += ctl.Violations()
	res.BenignReport = ctl.Report()
	return res, nil
}

// RenderAttackDetection prints the online §5.2 outcome.
func RenderAttackDetection(r *AttackDetectionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online rehash-attack detection (budget %d IC/pkt)\n", r.Budget)
	switch {
	case r.AlertPacket < 0:
		fmt.Fprintf(&b, "  attack: NO ALERT\n")
	case r.RehashPacket < 0:
		fmt.Fprintf(&b, "  attack: paged at packet %d, rehash cliff never reached\n", r.AlertPacket)
	default:
		fmt.Fprintf(&b, "  attack: paged at packet %d, %d packets before the rehash cliff (packet %d)\n",
			r.AlertPacket, r.RehashPacket-r.AlertPacket, r.RehashPacket)
	}
	if r.Alert != nil {
		fmt.Fprintf(&b, "  %s\n", r.Alert)
	}
	fmt.Fprintf(&b, "  benign control: %d overload alerts\n", r.BenignOverloads)
	fmt.Fprintf(&b, "  soundness violations: %d\n", r.Violations)
	fmt.Fprintf(&b, "  detected: %v\n", r.Detected())
	b.WriteString("\nAttack monitor state:\n")
	b.WriteString(indent(r.AttackReport))
	b.WriteString("Benign monitor state:\n")
	b.WriteString(indent(r.BenignReport))
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

// MonitorBenchResult quantifies the monitor's per-packet overhead.
type MonitorBenchResult struct {
	Workload   string  `json:"workload"`
	Packets    int     `json:"packets"`
	Runs       int     `json:"runs"`
	BareNsPkt  float64 `json:"bare_ns_per_pkt"`
	MonNsPkt   float64 `json:"monitored_ns_per_pkt"`
	BarePPS    float64 `json:"bare_pkts_per_sec"`
	MonPPS     float64 `json:"monitored_pkts_per_sec"`
	OverheadPc float64 `json:"overhead_pct"`
}

// MonitorBench times a bridge replay bare (distill.Runner only) and
// monitored (classification + bound evaluation + streaming state per
// packet) and reports the per-packet cost of online enforcement. Each
// mode takes the best of runs passes over a freshly warmed instance.
func MonitorBench(sc Scale, runs int) (MonitorBenchResult, error) {
	if runs <= 0 {
		runs = 3
	}
	warmN := warmupFor(sc, classFlows(sc))
	n := sc.Packets * 4
	res := MonitorBenchResult{Workload: "bridge-uniform", Packets: n, Runs: runs}
	ctx := context.Background()

	bare := func() (time.Duration, error) {
		br, _, err := AttackBridge(sc)
		if err != nil {
			return 0, err
		}
		runner := &distill.Runner{}
		if _, err := runner.Run(br.Instance, attackBenign(sc, warmN, 1_000, 42)); err != nil {
			return 0, err
		}
		pkts := attackBenign(sc, n, 1_000+uint64(warmN)*1_000, 13)
		start := time.Now()
		_, err = runner.Run(br.Instance, pkts)
		return time.Since(start), err
	}
	monitored := func() (time.Duration, error) {
		br, ct, err := AttackBridge(sc)
		if err != nil {
			return 0, err
		}
		mon, err := monitor.New(ct, monitor.Config{})
		if err != nil {
			return 0, err
		}
		if err := mon.Warm(ctx, br.Instance, attackBenign(sc, warmN, 1_000, 42)); err != nil {
			return 0, err
		}
		pkts := attackBenign(sc, n, 1_000+uint64(warmN)*1_000, 13)
		start := time.Now()
		_, err = mon.Run(ctx, br.Instance, pkts)
		if err == nil && mon.Unclassified() > 0 {
			err = fmt.Errorf("monitorbench: %d packets unclassified", mon.Unclassified())
		}
		return time.Since(start), err
	}

	best := func(f func() (time.Duration, error)) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < runs; i++ {
			d, err := f()
			if err != nil {
				return 0, err
			}
			if i == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}
	bareD, err := best(bare)
	if err != nil {
		return res, err
	}
	monD, err := best(monitored)
	if err != nil {
		return res, err
	}
	res.BareNsPkt = float64(bareD.Nanoseconds()) / float64(n)
	res.MonNsPkt = float64(monD.Nanoseconds()) / float64(n)
	res.BarePPS = float64(n) / bareD.Seconds()
	res.MonPPS = float64(n) / monD.Seconds()
	res.OverheadPc = 100 * (res.MonNsPkt - res.BareNsPkt) / res.BareNsPkt
	return res, nil
}

// RenderMonitorBench prints the overhead comparison.
func RenderMonitorBench(r MonitorBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %14s\n", "replay ("+r.Workload+")", "ns/pkt", "pkts/sec")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 56))
	fmt.Fprintf(&b, "%-28s %12.0f %14.0f\n", "bare distill.Runner", r.BareNsPkt, r.BarePPS)
	fmt.Fprintf(&b, "%-28s %12.0f %14.0f\n", "monitored", r.MonNsPkt, r.MonPPS)
	fmt.Fprintf(&b, "(%d packets, best of %d runs, overhead %.1f%%)\n", r.Packets, r.Runs, r.OverheadPc)
	return b.String()
}

// WriteMonitorBenchJSON records the result for tracking across commits.
func WriteMonitorBenchJSON(path string, r MonitorBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
