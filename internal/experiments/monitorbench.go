package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/monitor"
	"gobolt/internal/nf"
	"gobolt/internal/ring"
	"gobolt/internal/traffic"
)

// This file holds the monitor subsystem's evaluation: the online §5.2
// reproduction (the bridge collision attack is detected from the
// contract's *predictions* before the rehash cliff), and the overhead
// benchmark (monitored replay vs bare distill.Runner).

// attackRehashThreshold arms the §5.2 defence far enough out that the
// experiment can show the monitor paging well before the cliff: the
// colliding chain must grow this long before the table rehashes.
const attackRehashThreshold = 16

// AttackBridge builds the defended bridge the attack experiments run
// against, with its generated contract.
func AttackBridge(sc Scale) (*nf.Bridge, *core.Contract, error) {
	br := nf.NewBridge(nf.BridgeConfig{
		Ports: 4, Capacity: sc.TableCapacity,
		TimeoutNS: hourNS, GranularityNS: 1_000_000,
		RehashThreshold: attackRehashThreshold, Seed: 77,
	})
	ct, err := sc.Generator().Generate(br.Prog, br.Models)
	return br, ct, err
}

// attackBenign is the benign bridge workload all three phases share the
// shape of (population, rate); the seed varies so the control burst is
// not the calibration trace replayed.
func attackBenign(sc Scale, packets int, startNS uint64, seed int64) []traffic.Packet {
	return traffic.BridgeFrames(traffic.BridgeConfig{
		Packets: packets, MACs: classFlows(sc), Ports: 4,
		StartNS: startNS, GapNS: 1_000, Seed: seed,
	})
}

// AttackDetectionResult is the online §5.2 outcome.
type AttackDetectionResult struct {
	// Budget is the calibrated overload threshold (IC per packet).
	Budget uint64
	// AlertPacket is the attack-trace packet index (within the monitored
	// run) of the first overload alert; -1 if none fired.
	AlertPacket int
	// RehashPacket is the attack-trace index of the first packet whose
	// run actually rehashed the table (PCV o > 0) — the throughput
	// cliff; -1 when the trace never got there.
	RehashPacket int
	// Alert is the first overload alert, with its class, observed PCVs
	// and exceeded bound.
	Alert *monitor.Alert
	// BenignOverloads counts overload alerts on the equal-rate benign
	// burst (must be 0).
	BenignOverloads int
	// Violations across all three phases (must be 0: the attack degrades
	// performance *within* the contract, §5.2's point).
	Violations int
	// AttackReport and BenignReport are the rendered monitor states.
	AttackReport, BenignReport string
}

// Detected reports whether the §5.2 claim held online: the attack paged
// before the cliff and the benign control stayed quiet.
func (r *AttackDetectionResult) Detected() bool {
	if r.AlertPacket < 0 || r.BenignOverloads > 0 || r.Violations > 0 {
		return false
	}
	return r.RehashPacket < 0 || r.AlertPacket < r.RehashPacket
}

// AttackDetection reproduces §5.2 as an online result. Three phases,
// each on a fresh defended bridge warmed with the same benign traffic:
//
//  1. Calibrate: replay benign traffic through an unbudgeted monitor;
//     budget = 1.25 × the worst contract-predicted IC.
//  2. Attack: replay colliding-MAC frames (the CASTAN-substitute
//     generator). Every frame grows one bucket's chain, the contract's
//     predicted IC climbs with the traversal PCV, and the monitor must
//     page before the chain reaches the rehash threshold.
//  3. Control: an equal-rate benign burst (fresh seed) must not page.
func AttackDetection(sc Scale) (*AttackDetectionResult, error) {
	warmN := warmupFor(sc, classFlows(sc))
	mcfg := monitor.Config{
		Trigger: 3, Clear: 8,
		Shards: sc.MonitorShards, Batch: sc.MonitorBatch,
		Queue: sc.MonitorQueue, NoRing: sc.MonitorNoRing,
	}
	ctx := context.Background()

	// Phase 1: calibration.
	br, ct, err := AttackBridge(sc)
	if err != nil {
		return nil, err
	}
	budget, err := monitor.Calibrate(ctx, ct, mcfg, br.Instance,
		attackBenign(sc, warmN+sc.Packets, 1_000, 41), 1.25)
	if err != nil {
		return nil, err
	}
	res := &AttackDetectionResult{Budget: budget, AlertPacket: -1, RehashPacket: -1}

	// Phase 2: the attack. Warm a fresh bridge with benign traffic, then
	// replay the colliding trace at the same rate.
	br2, ct2, err := AttackBridge(sc)
	if err != nil {
		return nil, err
	}
	mcfg.Budget = budget
	mon, err := monitor.New(ct2, mcfg)
	if err != nil {
		return nil, err
	}
	warm := attackBenign(sc, warmN, 1_000, 42)
	if err := mon.Warm(ctx, br2.Instance, warm); err != nil {
		return nil, err
	}
	attackStart := 1_000 + uint64(warmN)*1_000
	attack := traffic.CollidingFrames(br2.Table, attackRehashThreshold*2, attackStart, 1_000, 43)
	if attack == nil {
		return nil, fmt.Errorf("attack detection: collision search found no colliding MACs")
	}
	recs, err := mon.Run(ctx, br2.Instance, attack)
	if err != nil {
		return nil, err
	}
	for i, rec := range recs {
		if rec.PCVs["o"] > 0 {
			res.RehashPacket = i
			break
		}
	}
	for _, a := range mon.Alerts() {
		if a.Kind == monitor.AlertOverload {
			al := a
			res.Alert = &al
			// Alert indices count from the monitor's first observed packet;
			// the monitored run saw only the attack trace.
			res.AlertPacket = a.PacketIndex
			break
		}
	}
	res.Violations += mon.Violations()
	res.AttackReport = mon.Report()

	// Phase 3: the equal-rate benign control.
	br3, ct3, err := AttackBridge(sc)
	if err != nil {
		return nil, err
	}
	ctl, err := monitor.New(ct3, mcfg)
	if err != nil {
		return nil, err
	}
	if err := ctl.Warm(ctx, br3.Instance, attackBenign(sc, warmN, 1_000, 42)); err != nil {
		return nil, err
	}
	burst := attackBenign(sc, attackRehashThreshold*2, attackStart, 44)
	if _, err := ctl.Run(ctx, br3.Instance, burst); err != nil {
		return nil, err
	}
	for _, a := range ctl.Alerts() {
		if a.Kind == monitor.AlertOverload {
			res.BenignOverloads++
		}
	}
	res.Violations += ctl.Violations()
	res.BenignReport = ctl.Report()
	return res, nil
}

// RenderAttackDetection prints the online §5.2 outcome.
func RenderAttackDetection(r *AttackDetectionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online rehash-attack detection (budget %d IC/pkt)\n", r.Budget)
	switch {
	case r.AlertPacket < 0:
		fmt.Fprintf(&b, "  attack: NO ALERT\n")
	case r.RehashPacket < 0:
		fmt.Fprintf(&b, "  attack: paged at packet %d, rehash cliff never reached\n", r.AlertPacket)
	default:
		fmt.Fprintf(&b, "  attack: paged at packet %d, %d packets before the rehash cliff (packet %d)\n",
			r.AlertPacket, r.RehashPacket-r.AlertPacket, r.RehashPacket)
	}
	if r.Alert != nil {
		fmt.Fprintf(&b, "  %s\n", r.Alert)
	}
	fmt.Fprintf(&b, "  benign control: %d overload alerts\n", r.BenignOverloads)
	fmt.Fprintf(&b, "  soundness violations: %d\n", r.Violations)
	fmt.Fprintf(&b, "  detected: %v\n", r.Detected())
	b.WriteString("\nAttack monitor state:\n")
	b.WriteString(indent(r.AttackReport))
	b.WriteString("Benign monitor state:\n")
	b.WriteString(indent(r.BenignReport))
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

// benchStreamCount is the flow population of the overhead benchmark: 8
// independent L2 conversations, enough for the flow hash to spread them
// across every shard count the ablation sweeps.
const benchStreamCount = 8

// benchWorkload builds the shared benchmark workload: benchStreamCount
// independent bridge conversations, interleaved into a warmup trace
// (every station learned) and a measured trace. The measured trace is
// stream-consistent — each conversation keeps one L3 identity — so every
// monitored mode, serial through 8 shards, produces the identical merged
// report over it.
func benchWorkload(sc Scale) (warm, meas []traffic.Packet) {
	warmN := warmupFor(sc, classFlows(sc))
	warmPer := (warmN + benchStreamCount - 1) / benchStreamCount
	measPer := sc.Packets * 4 / benchStreamCount
	streams := traffic.BridgeStreams(traffic.StreamConfig{
		Streams: benchStreamCount, PacketsPerStream: warmPer + measPer, Seed: 13,
	})
	warmStreams := make([][]traffic.Packet, len(streams))
	measStreams := make([][]traffic.Packet, len(streams))
	for i, s := range streams {
		warmStreams[i], measStreams[i] = s[:warmPer], s[warmPer:]
	}
	warm = traffic.Interleave(42, 1_000, 1_000, warmStreams...)
	meas = traffic.Interleave(43, 1_000+uint64(len(warm))*1_000, 1_000, measStreams...)
	return warm, meas
}

// MonitorBenchRow is one monitored mode's cost in the ablation.
type MonitorBenchRow struct {
	// Mode is "unpooled" (the pre-pooling per-packet path: fresh
	// observation and call-record allocations per packet), "pooled" (the
	// serial arena-pooled fast path), or "sharded" (flow-hashed batched
	// ingest into Shards engines).
	Mode   string `json:"mode"`
	Shards int    `json:"shards,omitempty"`
	Batch  int    `json:"batch,omitempty"`
	// Ingest is the sharded hop's transport: "ring" (the SPSC
	// queue+freelist pair, the default) or "chan" (the Config.NoRing
	// channel + sync.Pool ablation). Empty on serial rows.
	Ingest string `json:"ingest,omitempty"`
	// Queue is the per-shard ingest queue depth in batches (sharded rows
	// only; the ring transport rounds it up to a power of two).
	Queue      int     `json:"queue,omitempty"`
	NsPkt      float64 `json:"ns_per_pkt"`
	PPS        float64 `json:"pkts_per_sec"`
	OverheadPc float64 `json:"overhead_pct"`
}

// HopBenchRow is one transport's raw handoff cost: a single
// producer/consumer pair cycling pointer-sized batches through a
// depth-4 queue with buffer recycling, no monitor work attached.
type HopBenchRow struct {
	Ingest string `json:"ingest"`
	// NsHop is wall time per producer→consumer handoff.
	NsHop float64 `json:"ns_per_handoff"`
	// AllocsHop is heap allocations per handoff; the ring transport must
	// report 0 — its freelist recycles without sync.Pool or GC churn.
	AllocsHop float64 `json:"allocs_per_handoff"`
}

// MonitorBenchResult quantifies the monitor's per-packet overhead across
// the pooling/sharding/batching/ingest ablation, against the bare replay.
type MonitorBenchResult struct {
	Workload  string            `json:"workload"`
	Packets   int               `json:"packets"`
	Runs      int               `json:"runs"`
	BareNsPkt float64           `json:"bare_ns_per_pkt"`
	BarePPS   float64           `json:"bare_pkts_per_sec"`
	Rows      []MonitorBenchRow `json:"rows"`
	// Hop isolates the ingest transports' handoff cost from the monitor
	// work they carry.
	Hop []HopBenchRow `json:"hop,omitempty"`
}

// Overhead returns the named row's overhead percentage (the headline
// number is mode "pooled"; sharded rows are keyed by ingest transport
// and queue depth too — pass "" / 0 for serial modes); ok is false when
// the row was not measured.
func (r MonitorBenchResult) Overhead(mode string, shards, batch int, ingest string, queue int) (float64, bool) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.Shards == shards && row.Batch == batch &&
			row.Ingest == ingest && row.Queue == queue {
			return row.OverheadPc, true
		}
	}
	return 0, false
}

// MonitorBench times the multi-stream bridge replay bare (distill.Runner
// only) and under each monitor configuration of the ablation:
//
//   - unpooled: the per-packet path as it shipped pre-pooling (NoPool —
//     fresh observation + call-record copies per packet),
//   - pooled: the serial arena-pooled fast path (the default),
//   - sharded {1,2,4} × batch 64, plus shards 2 × batch 1 as the
//     batched-vs-unbatched ablation.
//
// Every mode replays the identical workload over a freshly warmed
// instance and takes the best of runs passes. Note the NF execution
// itself is serial (the instance is shared state); sharding parallelises
// only the monitoring work, so on a single-CPU box the sharded rows
// measure fan-out overhead, not speedup.
func MonitorBench(sc Scale, runs int) (MonitorBenchResult, error) {
	if runs <= 0 {
		runs = 3
	}
	warm, meas := benchWorkload(sc)
	n := len(meas)
	res := MonitorBenchResult{
		Workload: fmt.Sprintf("bridge-streams(%d)", benchStreamCount),
		Packets:  n, Runs: runs,
	}
	ctx := context.Background()

	bare := func() (time.Duration, error) {
		br, _, err := AttackBridge(sc)
		if err != nil {
			return 0, err
		}
		runner := &distill.Runner{}
		if _, err := runner.Run(br.Instance, warm); err != nil {
			return 0, err
		}
		start := time.Now()
		_, err = runner.Run(br.Instance, meas)
		return time.Since(start), err
	}
	monitored := func(mcfg monitor.Config) func() (time.Duration, error) {
		return func() (time.Duration, error) {
			br, ct, err := AttackBridge(sc)
			if err != nil {
				return 0, err
			}
			mon, err := monitor.New(ct, mcfg)
			if err != nil {
				return 0, err
			}
			if err := mon.Warm(ctx, br.Instance, warm); err != nil {
				return 0, err
			}
			start := time.Now()
			_, err = mon.Run(ctx, br.Instance, meas)
			d := time.Since(start)
			if err == nil && mon.Unclassified() > 0 {
				err = fmt.Errorf("monitorbench: %d packets unclassified", mon.Unclassified())
			}
			return d, err
		}
	}

	best := func(f func() (time.Duration, error)) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < runs; i++ {
			d, err := f()
			if err != nil {
				return 0, err
			}
			if i == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}
	bareD, err := best(bare)
	if err != nil {
		return res, err
	}
	res.BareNsPkt = float64(bareD.Nanoseconds()) / float64(n)
	res.BarePPS = float64(n) / bareD.Seconds()

	sharded := func(shards, batch, queue int, noring bool) struct {
		row MonitorBenchRow
		cfg monitor.Config
	} {
		ingest := "ring"
		if noring {
			ingest = "chan"
		}
		return struct {
			row MonitorBenchRow
			cfg monitor.Config
		}{
			MonitorBenchRow{Mode: "sharded", Shards: shards, Batch: batch, Ingest: ingest, Queue: queue},
			monitor.Config{Shards: shards, Batch: batch, Queue: queue, NoRing: noring},
		}
	}
	modes := []struct {
		row MonitorBenchRow
		cfg monitor.Config
	}{
		{MonitorBenchRow{Mode: "unpooled"}, monitor.Config{NoPool: true}},
		{MonitorBenchRow{Mode: "pooled"}, monitor.Config{}},
		// The ring-vs-channel ablation at each shard count...
		sharded(1, 64, 4, false),
		sharded(1, 64, 4, true),
		sharded(2, 64, 4, false),
		sharded(2, 64, 4, true),
		sharded(4, 64, 4, false),
		sharded(4, 64, 4, true),
		// ...the batched-vs-unbatched ablation...
		sharded(2, 1, 4, false),
		// ...and the queue-depth sweep around the default of 4.
		sharded(2, 64, 2, false),
		sharded(2, 64, 8, false),
	}
	for _, m := range modes {
		d, err := best(monitored(m.cfg))
		if err != nil {
			return res, fmt.Errorf("mode %s/s%d/b%d/%s/q%d: %w",
				m.row.Mode, m.row.Shards, m.row.Batch, m.row.Ingest, m.row.Queue, err)
		}
		row := m.row
		row.NsPkt = float64(d.Nanoseconds()) / float64(n)
		row.PPS = float64(n) / d.Seconds()
		row.OverheadPc = 100 * (row.NsPkt - res.BareNsPkt) / res.BareNsPkt
		res.Rows = append(res.Rows, row)
	}
	res.Hop = HopBench(runs)
	return res, nil
}

// hopBatch stands in for the monitor's batch buffer in the handoff
// microbenchmark: pointer-sized handoff, a cache line of payload.
type hopBatch struct {
	seq uint64
	pad [7]uint64
}

// hopIters is one HopBench measurement pass; large enough that the
// per-handoff quotient is stable, small enough to keep -bench runs fast.
const hopIters = 200_000

// HopBench isolates the sharded ingest hop: how long one
// producer→consumer handoff takes on each transport, and how many heap
// allocations it costs, with the monitor work stripped away. The ring
// row must report 0 allocs — its paired freelist recycles buffers
// without sync.Pool. Best-of-runs wall time, single measurement pass
// for the alloc count.
func HopBench(runs int) []HopBenchRow {
	if runs <= 0 {
		runs = 3
	}
	measure := func(f func(iters int)) (nsHop, allocsHop float64) {
		f(hopIters / 10) // warmup: steady-state pools/freelists
		var best time.Duration
		for i := 0; i < runs; i++ {
			start := time.Now()
			f(hopIters)
			if d := time.Since(start); i == 0 || d < best {
				best = d
			}
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		f(hopIters)
		runtime.ReadMemStats(&after)
		// Integer division, the same accounting testing.B prints: setup
		// noise (the ring itself, the consumer goroutine) must not smear a
		// fractional alloc across a 0-alloc steady state.
		return float64(best.Nanoseconds()) / float64(hopIters),
			float64((after.Mallocs - before.Mallocs) / uint64(hopIters))
	}

	ringHop := func(iters int) {
		queue, err := ring.New[*hopBatch](4)
		if err != nil {
			panic(err)
		}
		free, err := ring.New[*hopBatch](8)
		if err != nil {
			panic(err)
		}
		for i := 0; i < free.Cap(); i++ {
			free.TryPush(&hopBatch{})
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				b, ok := queue.Pop()
				if !ok {
					return
				}
				free.TryPush(b)
			}
		}()
		for i := 0; i < iters; i++ {
			b, ok := free.TryPop()
			if !ok {
				b = &hopBatch{}
			}
			b.seq = uint64(i)
			queue.Push(b)
		}
		queue.Close()
		<-done
	}
	chanHop := func(iters int) {
		queue := make(chan *hopBatch, 4)
		var pool sync.Pool
		pool.New = func() any { return &hopBatch{} }
		done := make(chan struct{})
		go func() {
			defer close(done)
			for b := range queue {
				pool.Put(b)
			}
		}()
		for i := 0; i < iters; i++ {
			b := pool.Get().(*hopBatch)
			b.seq = uint64(i)
			queue <- b
		}
		close(queue)
		<-done
	}

	rows := make([]HopBenchRow, 0, 2)
	for _, tr := range []struct {
		name string
		f    func(int)
	}{{"ring", ringHop}, {"chan", chanHop}} {
		ns, allocs := measure(tr.f)
		rows = append(rows, HopBenchRow{Ingest: tr.name, NsHop: ns, AllocsHop: allocs})
	}
	return rows
}

// RenderMonitorBench prints the overhead ablation.
func RenderMonitorBench(r MonitorBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %14s %10s\n", "replay ("+r.Workload+")", "ns/pkt", "pkts/sec", "overhead")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 68))
	fmt.Fprintf(&b, "%-28s %12.0f %14.0f %10s\n", "bare distill.Runner", r.BareNsPkt, r.BarePPS, "-")
	for _, row := range r.Rows {
		name := "monitored " + row.Mode
		if row.Mode == "sharded" {
			name = fmt.Sprintf("monitored s=%d b=%d %s q=%d", row.Shards, row.Batch, row.Ingest, row.Queue)
		}
		fmt.Fprintf(&b, "%-28s %12.0f %14.0f %9.1f%%\n", name, row.NsPkt, row.PPS, row.OverheadPc)
	}
	fmt.Fprintf(&b, "(%d packets, best of %d runs)\n", r.Packets, r.Runs)
	if len(r.Hop) > 0 {
		fmt.Fprintf(&b, "\ningest hop (producer→consumer handoff, no monitor work):\n")
		for _, h := range r.Hop {
			fmt.Fprintf(&b, "  %-6s %8.1f ns/handoff %6.0f allocs/handoff\n", h.Ingest, h.NsHop, h.AllocsHop)
		}
	}
	return b.String()
}

// WriteMonitorBenchJSON records the result for tracking across commits.
func WriteMonitorBenchJSON(path string, r MonitorBenchResult) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
