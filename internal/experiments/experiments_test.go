package experiments

import (
	"strings"
	"testing"
)

func TestFigure1QuickScale(t *testing.T) {
	rows, err := Figure1(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"NAT1", "NAT2", "NAT3", "NAT4", "Br1", "Br2", "Br3",
		"LB1", "LB2", "LB3", "LB4", "LB5", "LPM1", "LPM2"}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	byName := map[string]ClassResult{}
	for i, r := range rows {
		if r.Scenario != want[i] {
			t.Errorf("row %d = %s, want %s", i, r.Scenario, want[i])
		}
		byName[r.Scenario] = r
		// Conservative and non-vacuous for every class.
		if r.MeasuredIC == 0 || r.PredictedIC < r.MeasuredIC {
			t.Errorf("%s: IC pred %d vs meas %d", r.Scenario, r.PredictedIC, r.MeasuredIC)
		}
		if r.PredictedMA < r.MeasuredMA {
			t.Errorf("%s: MA pred %d vs meas %d", r.Scenario, r.PredictedMA, r.MeasuredMA)
		}
		if r.PredictedCycles < r.MeasuredCycles {
			t.Errorf("%s: cycles pred %d vs meas %d", r.Scenario, r.PredictedCycles, r.MeasuredCycles)
		}
	}

	// The paper's headline: IC/MA over-estimation ≤ 7.5%/7.6% for
	// typical classes, ≤ ~2.4%/3% for the pathological ones.
	for _, name := range []string{"NAT2", "NAT3", "NAT4", "Br2", "Br3", "LB2", "LB3", "LB4", "LB5", "LPM1", "LPM2"} {
		r := byName[name]
		if r.OverIC() > 12 {
			t.Errorf("%s: IC over-estimation %.2f%% exceeds the expected regime", name, r.OverIC())
		}
		if r.OverMA() > 15 {
			t.Errorf("%s: MA over-estimation %.2f%% exceeds the expected regime", name, r.OverMA())
		}
	}
	for _, name := range []string{"NAT1", "Br1", "LB1"} {
		r := byName[name]
		if r.OverIC() > 5 {
			t.Errorf("%s: pathological IC over-estimation %.2f%%, want ≤ ~2.4%%-ish", name, r.OverIC())
		}
		// Pathological runs must dwarf typical ones (the paper's "8
		// orders of magnitude" at full scale; several orders at test
		// scale).
		if r.MeasuredIC < 100*byName["NAT3"].MeasuredIC {
			t.Errorf("%s: pathological IC %d not dramatically above typical", name, r.MeasuredIC)
		}
	}

	// Cycle ratios (Table 3): conservative model above the detailed one,
	// more so for the pathological scans that prefetch/MLP accelerate.
	for _, r := range rows {
		if r.CycleRatio() < 1 {
			t.Errorf("%s: cycle ratio %.2f < 1 (unsound)", r.Scenario, r.CycleRatio())
		}
	}
	// The full typical-vs-pathological cycle-ratio shape (Table 3) needs
	// DefaultScale working sets; at QuickScale everything is cache-hot,
	// so here we only assert conservativeness (ratio ≥ 1, checked above).

	out := RenderFigure1(rows)
	if !strings.Contains(out, "NAT1") || !strings.Contains(out, "LPM2") {
		t.Error("RenderFigure1 missing rows")
	}
	t3 := RenderTable3(rows)
	if !strings.Contains(t3, "Ratio") {
		t.Error("RenderTable3 missing header")
	}
}
