package experiments

import (
	"strings"
	"testing"
)

func TestCensus(t *testing.T) {
	rows, err := Census(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]CensusRow{}
	for _, r := range rows {
		byName[r.NF] = r
		if r.Paths == 0 || r.Classes == 0 || r.Classes > r.Paths {
			t.Errorf("%s: paths=%d classes=%d", r.NF, r.Paths, r.Classes)
		}
	}
	// The running example has exactly its two published classes; the
	// stateful NFs have richer structure.
	if byName["example-lpm"].Paths != 2 {
		t.Errorf("example-lpm paths = %d", byName["example-lpm"].Paths)
	}
	if byName["lb"].Paths < byName["example-lpm"].Paths {
		t.Error("the LB should subsume more paths than the running example")
	}
	out := RenderCensus(rows)
	if !strings.Contains(out, "bridge") {
		t.Error("render incomplete")
	}
	t.Logf("\n%s", out)
}
