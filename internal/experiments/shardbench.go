package experiments

// shardbench validates the shard dimension of contracts (core/shard.go):
// for each NF it generates the shard-annotated contract once, then
// simulates the NF deployed across S ∈ {1,2,4,8} shards and compares
// the contract's per-shard bound against the worst simulated packet.
//
// The simulated deployment follows the sharability analysis, the way
// NFork physically partitions state the analysis proves partitionable:
// packets route to shards by monitor.FlowKey (the same dispatch the
// sharded online monitor uses), each shard runs on its own warm
// detailed core model with a private address partition, and only the
// calls the contract classified shared-rw run at real addresses
// through a cache-coherence directory that charges cross-core line
// transfers (hwmodel.ShardSim). The prediction side charges
// hwmodel.WorstXfer per contending shard for every shared access —
// pessimistic against the ≤ XferCycles a real transfer costs, the same
// way the conservative compute model dominates the detailed one.
//
// The container runs on one CPU, so shardbench measures model fidelity
// (is the bound sound, and how loose is it per shard count?), not
// wall-clock speedup.

import (
	"fmt"
	"strings"

	"gobolt/internal/core"
	"gobolt/internal/hwmodel"
	"gobolt/internal/monitor"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// ShardCounts are the shard counts shardbench sweeps.
var ShardCounts = []int{1, 2, 4, 8}

// ShardRow is one (NF, shard count) cell of the shardbench table.
type ShardRow struct {
	NF     string
	Shards int
	// SharedCalls is the number of distinct (ds, method) pairs the
	// contract classified shared-rw (0 = the NF scales flat).
	SharedCalls int
	// PredictedCycles is the worst per-packet shard-aware bound over the
	// measured packets, each evaluated at its own observed PCVs.
	PredictedCycles uint64
	// MeasuredCycles is the worst simulated per-packet cycle count
	// (detailed core model plus coherence transfer charges).
	MeasuredCycles uint64
	// Transfers is the total number of cross-shard cache-line transfers
	// the coherence directory charged during measurement.
	Transfers uint64
	Packets   int
	// Unclassified counts measured packets whose call trace matched no
	// contract path (those fall back to the worst same-action path).
	Unclassified int
}

// Ratio is predicted ÷ measured cycles.
func (r ShardRow) Ratio() float64 {
	if r.MeasuredCycles == 0 {
		return 0
	}
	return float64(r.PredictedCycles) / float64(r.MeasuredCycles)
}

// shardBenchNFs are the roster NFs shardbench sweeps: the stateful
// builtins spanning all three verdicts (shard-local flow state, shared
// allocators and sweeps, read-only rings and tables) plus the four
// bytecode NFs.
var shardBenchNFs = []string{
	"nat", "bridge", "lb", "lpm", "firewall",
	"bvm-ratelimit", "bvm-acl", "bvm-decap", "bvm-scrub",
}

// ShardBench runs the sweep.
func ShardBench(sc Scale) ([]ShardRow, error) {
	var rows []ShardRow
	for _, name := range shardBenchNFs {
		nfRows, err := shardBenchNF(sc, name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, nfRows...)
	}
	return rows, nil
}

// sharedCallPairs collects the (ds, method) pairs the contract
// classified shared-rw — or could not classify, which shard-aware
// evaluation treats the same way.
func sharedCallPairs(ct *core.Contract) map[string]bool {
	pairs := make(map[string]bool)
	for _, p := range ct.Paths {
		for _, ev := range p.Trace {
			if ev.Sharing.Class == nfir.SharingSharedRW || ev.Sharing.Class == nfir.SharingUnknown {
				pairs[ev.DS+"."+ev.Method] = true
			}
		}
	}
	return pairs
}

// sharedBracketDS wraps a concrete data structure so that the methods
// the contract classified shared-rw execute inside a ShardSim shared
// bracket (real addresses, coherence directory); everything else stays
// in the current shard's private partition.
type sharedBracketDS struct {
	name   string
	inner  nfir.ConcreteDS
	sim    *hwmodel.ShardSim
	shared map[string]bool // full "ds.method" names
}

// Invoke implements nfir.ConcreteDS.
func (d *sharedBracketDS) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	if d.shared[d.name+"."+method] {
		d.sim.SetShared(true)
		defer d.sim.SetShared(false)
	}
	return d.inner.Invoke(method, args, env)
}

// attachSharedBrackets wraps every concrete DS of the environment.
func attachSharedBrackets(env *nfir.Env, sim *hwmodel.ShardSim, shared map[string]bool) {
	for name, ds := range env.DS {
		env.DS[name] = &sharedBracketDS{name: name, inner: ds, sim: sim, shared: shared}
	}
}

func shardBenchNF(sc Scale, name string) ([]ShardRow, error) {
	inst, err := nf.Build(name, nf.BuildParams{Capacity: sc.TableCapacity})
	if err != nil {
		return nil, fmt.Errorf("shardbench %s: %w", name, err)
	}
	ct, err := sc.Generator().Generate(inst.Prog, inst.Models)
	if err != nil {
		return nil, fmt.Errorf("shardbench %s: generate: %w", name, err)
	}
	shared := sharedCallPairs(ct)
	pcvNames := make(map[string]bool)
	for _, p := range ct.Paths {
		for v := range p.PCVRanges {
			pcvNames[v] = true
		}
	}

	warm, measure := shardWorkload(name, sc)
	var rows []ShardRow
	for _, shards := range ShardCounts {
		row, err := runSharded(sc, name, ct, shared, pcvNames, warm, measure, shards)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runSharded simulates one shard count: a fresh instance (each
// deployment starts from empty state), the packets routed by flow hash,
// warmup excluded from measurement the way every other experiment
// excludes it.
func runSharded(sc Scale, name string, ct *core.Contract, shared map[string]bool,
	pcvNames map[string]bool, warm, measure []traffic.Packet, shards int) (ShardRow, error) {

	inst, err := nf.Build(name, nf.BuildParams{Capacity: sc.TableCapacity})
	if err != nil {
		return ShardRow{}, fmt.Errorf("shardbench %s: %w", name, err)
	}
	sim := hwmodel.NewShardSim(shards)
	inst.Env.Meter = perf.NewMeter(sim)
	attachSharedBrackets(inst.Env, sim, shared)
	// The call log wraps the shared brackets, so every recorded call
	// still executes inside its bracket.
	cl, err := core.NewClassifier(ct)
	if err != nil {
		return ShardRow{}, fmt.Errorf("shardbench %s: classifier: %w", name, err)
	}
	var log core.CallLog
	core.AttachCallLog(inst.Env, &log)
	pktBuf := make([]byte, nfir.MaxPacket)

	run := func(pkts []traffic.Packet, check bool, row *ShardRow) error {
		binding := make(map[string]uint64, len(pcvNames))
		for i, p := range pkts {
			shard := int(monitor.FlowKey(p.Data, p.InPort) % uint64(shards))
			sim.SetShard(shard)
			before := sim.Cycles(shard)
			// Classify against the pre-run bytes (the NF may rewrite the
			// packet in place).
			n := copy(pktBuf, p.Data)
			for j := n; j < len(pktBuf); j++ {
				pktBuf[j] = 0
			}
			log.Reset()
			inst.Env.ResetPacket(p.Data, p.InPort, p.Time)
			act, err := inst.Env.Run(inst.Prog)
			if err != nil {
				return fmt.Errorf("shardbench %s S=%d packet %d: %w", name, shards, i, err)
			}
			if !check {
				continue
			}
			meas := sim.Cycles(shard) - before
			for v := range pcvNames {
				binding[v] = inst.Env.PCVs()[v]
			}
			// The prediction is scoped to the packet's input class, the
			// paper's contract semantics: classify the observed trace to
			// its contract path and evaluate that path's shard-aware
			// bound at the observed PCVs. Packets the classifier cannot
			// place fall back to the worst same-action path.
			obs := &core.PacketObservation{
				Pkt: pktBuf, InPort: p.InPort, Time: p.Time,
				PktLen: uint64(len(p.Data)), Action: act.Kind, Calls: log.Records(),
			}
			var pred uint64
			if pc, ok := cl.Classify(obs); ok {
				pred = pc.ShardBoundAt(perf.Cycles, shards, binding)
			} else {
				row.Unclassified++
				filter := func(p *core.PathContract) bool { return p.Action == act.Kind }
				pred, _ = ct.ShardBound(perf.Cycles, shards, filter, binding)
			}
			if meas > pred {
				return fmt.Errorf("shardbench %s S=%d packet %d: SOUNDNESS VIOLATION: measured %d cycles > predicted %d (pcvs %v)",
					name, shards, i, meas, pred, binding)
			}
			if meas > row.MeasuredCycles {
				row.MeasuredCycles = meas
			}
			if pred > row.PredictedCycles {
				row.PredictedCycles = pred
			}
			row.Packets++
		}
		return nil
	}

	row := ShardRow{NF: name, Shards: shards, SharedCalls: len(shared)}
	if err := run(warm, false, &row); err != nil {
		return ShardRow{}, err
	}
	sim.ResetCycles()
	if err := run(measure, true, &row); err != nil {
		return ShardRow{}, err
	}
	row.Transfers = sim.Transfers()
	return row, nil
}

// shardWorkload builds the warmup and measurement streams for one NF.
// Flow-rich traffic spreads across shards; the bytecode NFs reuse their
// branch-covering workloads.
func shardWorkload(name string, sc Scale) (warm, measure []traffic.Packet) {
	n := sc.Warmup + sc.Packets
	var pkts []traffic.Packet
	switch name {
	case "bridge":
		pkts = traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: n, MACs: sc.TableCapacity / 4, Ports: 4,
			StartNS: 1_000, GapNS: 1_000, Seed: 21,
		})
	case "bvm-ratelimit", "bvm-acl", "bvm-decap", "bvm-scrub":
		pkts = bvmWorkload(name, Scale{Packets: n, TableCapacity: sc.TableCapacity})
	default:
		pkts = traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: n, Flows: sc.TableCapacity / 4, NewFlowEvery: 16,
			StartNS: 1_000, GapNS: 1_000, Seed: 17,
		})
	}
	if len(pkts) <= sc.Warmup {
		return nil, pkts
	}
	return pkts[:sc.Warmup], pkts[sc.Warmup:]
}

// RenderShardBench formats the sweep as a fidelity table.
func RenderShardBench(rows []ShardRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %7s %7s %12s %12s %7s %9s %8s\n",
		"NF", "SHARDS", "SHARED", "PRED(cyc)", "MEAS(cyc)", "RATIO", "XFERS", "UNCLASS")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %7d %7d %12d %12d %6.1fx %9d %8d\n",
			r.NF, r.Shards, r.SharedCalls, r.PredictedCycles, r.MeasuredCycles, r.Ratio(), r.Transfers, r.Unclassified)
	}
	return b.String()
}
