package experiments

import (
	"context"
	"fmt"
	"strings"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/par"
	"gobolt/internal/traffic"
)

// Path filters used to carve the paper's input classes out of a
// contract.
func has(frags ...string) func(*core.PathContract) bool {
	return func(p *core.PathContract) bool {
		for _, f := range frags {
			if !strings.Contains(p.Events, f) {
				return false
			}
		}
		return true
	}
}

func hasNot(frag string) func(*core.PathContract) bool {
	return func(p *core.PathContract) bool { return !strings.Contains(p.Events, frag) }
}

func acts(kind nfir.ActionKind) func(*core.PathContract) bool {
	return func(p *core.PathContract) bool { return p.Action == kind }
}

const hourNS = uint64(3_600_000_000_000)

// Scenario is one of the §5.1 NF/packet-class measurements, packaged so
// other harnesses (Figure1 itself, the online monitor's differential
// tests) can replay exactly the published methodology: warm the
// instance, synthesize any unreachable state, then measure the class.
type Scenario struct {
	// Name is the Figure 1 row label (NAT1 … LPM2).
	Name string
	// Instance is the freshly built NF with its generated contract.
	Instance *nf.Instance
	Contract *core.Contract
	// Warmup packets run through the measuring runner before Prepare.
	Warmup []traffic.Packet
	// Prepare synthesizes state between warmup and measurement (mass-aged
	// tables for the pathological classes, dead backends for LB3); nil
	// when the class needs none.
	Prepare func() error
	// Measure is the class's packet workload.
	Measure []traffic.Packet
	// Filter selects the class's contract paths (nil = whole contract).
	Filter func(*core.PathContract) bool
}

// Figure1 runs the 14 NF/packet-class scenarios of §5.1 and returns
// their predicted-vs-measured rows (IC and MA in Figure 1, cycles in
// Table 3 — the same runs produce both). The four NF families are
// independent (each scenario builds a fresh instance), so they run
// concurrently on the scale's worker pool; rows keep the serial order.
func Figure1(sc Scale) ([]ClassResult, error) {
	families := []func(Scale) ([]Scenario, error){
		natScenarios, bridgeScenarios, lbScenarios, lpmScenarios,
	}
	rows := make([][]ClassResult, len(families))
	err := par.ForEach(context.Background(), sc.workers(), len(families), func(i int) error {
		scens, err := families[i](sc)
		if err != nil {
			return err
		}
		for _, s := range scens {
			res, err := measureScenario(s)
			if err != nil {
				return err
			}
			rows[i] = append(rows[i], res)
		}
		return nil
	})
	var out []ClassResult
	for _, rs := range rows {
		out = append(out, rs...)
	}
	return out, err
}

// Scenarios builds all 14 Figure-1 scenarios without measuring them, in
// row order. Each carries a fresh instance, so a caller can run the
// class through any harness (the monitor's zero-false-positive test).
func Scenarios(sc Scale) ([]Scenario, error) {
	var out []Scenario
	for _, family := range []func(Scale) ([]Scenario, error){
		natScenarios, bridgeScenarios, lbScenarios, lpmScenarios,
	} {
		scens, err := family(sc)
		if err != nil {
			return nil, err
		}
		out = append(out, scens...)
	}
	return out, nil
}

// classFlows sizes the steady-state flow population so the working set
// scales with the table (keeping cache behaviour — and thus the Table 3
// cycle ratios — representative rather than toy-sized).
func classFlows(sc Scale) int {
	f := sc.TableCapacity / 4
	if f < 64 {
		f = 64
	}
	return f
}

func warmupFor(sc Scale, flows int) int {
	if sc.Warmup > flows {
		return sc.Warmup
	}
	return flows
}

func natScenarios(sc Scale) ([]Scenario, error) {
	build := func() (*nf.NAT, *core.Contract, error) {
		nat := nf.NewNAT(nf.NATConfig{
			ExternalIP: 0xC0A80001, Capacity: sc.TableCapacity,
			TimeoutNS: hourNS, GranularityNS: 1_000_000, Seed: 11,
		})
		ct, err := sc.Generator().Generate(nat.Prog, nat.Models)
		return nat, ct, err
	}
	var out []Scenario

	// NAT1: unconstrained traffic / pathological synthesized state — a
	// full, fully-collided, fully-aged flow table mass-expired by one
	// packet (paper §5.1 methodology).
	{
		nat, ct, err := build()
		if err != nil {
			return nil, err
		}
		now := hourNS * 2
		trigger := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: 1, Flows: 1, StartNS: now, Seed: 1, InPort: nf.NATPortInternal,
		})
		out = append(out, Scenario{
			Name: "NAT1", Instance: nat.Instance, Contract: ct,
			Prepare: func() error {
				nat.Map.SynthesizePathological(nat.Env, sc.PathoEntries, now)
				return nil
			},
			Measure: trigger,
		})
	}

	// NAT2: packets from the internal network belonging to new
	// connections.
	{
		nat, ct, err := build()
		if err != nil {
			return nil, err
		}
		pkts := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: sc.Packets, NewFlowEvery: 1,
			StartNS: 1_000, GapNS: 1_000, Seed: 2, InPort: nf.NATPortInternal,
		})
		out = append(out, Scenario{
			Name: "NAT2", Instance: nat.Instance, Contract: ct, Measure: pkts,
			Filter: core.And(acts(nfir.ActionForward), has("flows.add:ok")),
		})
	}

	// NAT3: established connections.
	{
		nat, ct, err := build()
		if err != nil {
			return nil, err
		}
		population := classFlows(sc)
		warmN := warmupFor(sc, population)
		flows := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: warmN, Flows: population, RoundRobin: true,
			StartNS: 1_000, GapNS: 1_000, Seed: 3, InPort: nf.NATPortInternal,
		})
		replay := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: population,
			StartNS: 1_000 + uint64(warmN)*1_000, GapNS: 1_000, Seed: 3, InPort: nf.NATPortInternal,
		})
		out = append(out, Scenario{
			Name: "NAT3", Instance: nat.Instance, Contract: ct,
			Warmup: flows, Measure: replay,
			Filter: core.And(acts(nfir.ActionForward), has("flows.lookup_int:hit")),
		})
	}

	// NAT4: external packets with no matching allocation (dropped).
	{
		nat, ct, err := build()
		if err != nil {
			return nil, err
		}
		pkts := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: 64,
			StartNS: 1_000, GapNS: 1_000, Seed: 4, InPort: nf.NATPortExternal,
		})
		out = append(out, Scenario{
			Name: "NAT4", Instance: nat.Instance, Contract: ct, Measure: pkts,
			Filter: core.And(acts(nfir.ActionDrop), has("flows.lookup_ext:miss")),
		})
	}
	return out, nil
}

func bridgeScenarios(sc Scale) ([]Scenario, error) {
	build := func() (*nf.Bridge, *core.Contract, error) {
		br := nf.NewBridge(nf.BridgeConfig{
			Ports: 4, Capacity: sc.TableCapacity,
			TimeoutNS: hourNS, GranularityNS: 1_000_000, Seed: 21,
		})
		ct, err := sc.Generator().Generate(br.Prog, br.Models)
		return br, ct, err
	}
	var out []Scenario

	// Br1: pathological mass expiry.
	{
		br, ct, err := build()
		if err != nil {
			return nil, err
		}
		now := hourNS * 2
		trigger := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: 1, MACs: 4, Ports: 4, StartNS: now, Seed: 1,
		})
		out = append(out, Scenario{
			Name: "Br1", Instance: br.Instance, Contract: ct,
			Prepare: func() error {
				br.Table.SynthesizePathological(br.Env, sc.PathoEntries, now)
				return nil
			},
			Measure: trigger,
		})
	}

	// Br2: broadcast frames from known stations.
	{
		br, ct, err := build()
		if err != nil {
			return nil, err
		}
		warm := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: warmupFor(sc, classFlows(sc)), MACs: classFlows(sc), Ports: 4, RoundRobin: true,
			StartNS: 1_000, GapNS: 1_000, Seed: 5,
		})
		bcast := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: sc.Packets, MACs: classFlows(sc), BroadcastFraction: 1.0, Ports: 4, RoundRobin: true,
			StartNS: 1_000 + uint64(warmupFor(sc, classFlows(sc)))*1_000, GapNS: 1_000, Seed: 5,
		})
		out = append(out, Scenario{
			Name: "Br2", Instance: br.Instance, Contract: ct,
			Warmup: warm, Measure: bcast,
			Filter: core.And(has("mac.put:known"), hasNot("mac.peek")),
		})
	}

	// Br3: unicast frames between known stations.
	{
		br, ct, err := build()
		if err != nil {
			return nil, err
		}
		warm := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: warmupFor(sc, classFlows(sc)), MACs: classFlows(sc), Ports: 4, RoundRobin: true,
			StartNS: 1_000, GapNS: 1_000, Seed: 6,
		})
		uni := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: sc.Packets, MACs: classFlows(sc), Ports: 4, RoundRobin: true,
			StartNS: 1_000 + uint64(warmupFor(sc, classFlows(sc)))*1_000, GapNS: 1_000, Seed: 6,
		})
		out = append(out, Scenario{
			Name: "Br3", Instance: br.Instance, Contract: ct,
			Warmup: warm, Measure: uni,
			Filter: has("mac.put:known", "mac.peek:hit"),
		})
	}
	return out, nil
}

func lbScenarios(sc Scale) ([]Scenario, error) {
	const backends = 16
	build := func() (*nf.LB, *core.Contract, error) {
		lb, err := nf.NewLB(nf.LBConfig{
			Backends: backends, RingSize: 4099, BackendIPBase: 0xAC100000,
			FlowCapacity: sc.TableCapacity,
			TimeoutNS:    hourNS, GranularityNS: 1_000_000,
			HeartbeatTimeoutNS: hourNS, Seed: 31,
		})
		if err != nil {
			return nil, nil, err
		}
		ct, err := sc.Generator().Generate(lb.Prog, lb.Models)
		return lb, ct, err
	}
	heartbeatAll := func(t uint64) []traffic.Packet {
		var hb []traffic.Packet
		for b := uint64(0); b < backends; b++ {
			hb = append(hb, traffic.Heartbeat(b, nf.LBHeartbeatPort, t+b))
		}
		return hb
	}
	var out []Scenario

	// LB1: pathological mass expiry of the flow table.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		now := hourNS * 2
		trigger := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: 1, Flows: 1, StartNS: now, Seed: 1, InPort: nf.LBPortClient,
		})
		out = append(out, Scenario{
			Name: "LB1", Instance: lb.Instance, Contract: ct,
			Prepare: func() error {
				lb.Flows.SynthesizePathological(lb.Env, sc.PathoEntries, now)
				for b := 0; b < backends; b++ {
					lb.Ring.SetHeartbeat(b, now)
				}
				return nil
			},
			Measure: trigger,
		})
	}

	// LB2: new flows from the external network, all backends live.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		warm := heartbeatAll(1_000)
		pkts := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: sc.Packets, NewFlowEvery: 1,
			StartNS: 10_000, GapNS: 1_000, Seed: 7, InPort: nf.LBPortClient,
		})
		out = append(out, Scenario{
			Name: "LB2", Instance: lb.Instance, Contract: ct,
			Warmup: warm, Measure: pkts,
			Filter: has("flows.get:miss", "ring.pick_alive:direct"),
		})
	}

	// LB3: existing flows whose backend became unresponsive: warm flows
	// with all backends alive, then mark every backend dead except one.
	// The warmup runs through a bare runner inside Prepare (not the
	// measuring runner), preserving the original cold-cache measurement.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		warm := append(heartbeatAll(1_000), traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: sc.Packets, RoundRobin: true,
			StartNS: 10_000, GapNS: 1_000, Seed: 8, InPort: nf.LBPortClient,
		})...)
		replay := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: sc.Packets, RoundRobin: true,
			StartNS: 10_000 + uint64(sc.Packets)*1_000, GapNS: 1_000, Seed: 8, InPort: nf.LBPortClient,
		})
		out = append(out, Scenario{
			Name: "LB3", Instance: lb.Instance, Contract: ct,
			Prepare: func() error {
				if _, err := (&distill.Runner{}).Run(lb.Instance, warm); err != nil {
					return err
				}
				// Kill all backends but 0 (state synthesis, as the paper does
				// for states traffic cannot reach quickly).
				for b := 1; b < backends; b++ {
					lb.Ring.SetHeartbeat(b, 0)
				}
				lb.Ring.TimeoutNS = 1 // everything not re-heartbeated is dead
				lb.Ring.SetHeartbeat(0, hourNS*3)
				return nil
			},
			Measure: replay,
			Filter: core.And(has("flows.get:hit", "ring.alive:dead", "flows.put:known"),
				hasNot("ring.pick_alive:none")),
		})
	}

	// LB4: existing flows with live backends.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		population := classFlows(sc)
		warmN := warmupFor(sc, population)
		warm := append(heartbeatAll(1_000), traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: warmN, Flows: population, RoundRobin: true,
			StartNS: 10_000, GapNS: 1_000, Seed: 9, InPort: nf.LBPortClient,
		})...)
		replay := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: population,
			StartNS: 10_000 + uint64(warmN)*1_000, GapNS: 1_000, Seed: 9, InPort: nf.LBPortClient,
		})
		out = append(out, Scenario{
			Name: "LB4", Instance: lb.Instance, Contract: ct,
			Warmup: warm, Measure: replay,
			Filter: has("flows.get:hit", "ring.alive:alive"),
		})
	}

	// LB5: heartbeat packets from backends.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		var pkts []traffic.Packet
		for i := 0; i < sc.Packets; i++ {
			pkts = append(pkts, traffic.Heartbeat(uint64(i%backends), nf.LBHeartbeatPort, uint64(1_000+i*1_000)))
		}
		out = append(out, Scenario{
			Name: "LB5", Instance: lb.Instance, Contract: ct, Measure: pkts,
			Filter: has("ring.heartbeat:ok"),
		})
	}
	return out, nil
}

func lpmScenarios(sc Scale) ([]Scenario, error) {
	build := func() (*nf.LPMRouter, *core.Contract, error) {
		r := nf.NewLPMRouter(nf.LPMRouterConfig{Ports: 16, DefaultPort: 0, MaxTbl8Groups: 64})
		routes := []struct {
			prefix uint32
			length int
			port   uint16
		}{
			{0x0A000000, 8, 1},
			{0x0A010000, 16, 2},
			{0xC0A80100, 24, 3},
			{0xC0A80180, 25, 4}, // long prefixes: the LPM1 class
			{0xC0A801C0, 26, 5},
			{0x08080800, 29, 6},
		}
		for _, rt := range routes {
			if err := r.Table.AddRoute(rt.prefix, rt.length, rt.port); err != nil {
				return nil, nil, err
			}
		}
		ct, err := sc.Generator().Generate(r.Prog, r.Models)
		return r, ct, err
	}
	var out []Scenario

	// LPM1: unconstrained traffic — CASTAN-style adversarial generation
	// drives every packet into the two-read path (>24-bit matches).
	{
		r, ct, err := build()
		if err != nil {
			return nil, err
		}
		pkts := traffic.AdversarialLPM(r.Table, sc.Packets, 1_000, 1_000, 10)
		out = append(out, Scenario{
			Name: "LPM1", Instance: r.Instance, Contract: ct, Measure: pkts,
			Filter: has("lpm.get:long"),
		})
	}

	// LPM2: matched prefixes ≤ 24 bits — exactly one table read.
	{
		r, ct, err := build()
		if err != nil {
			return nil, err
		}
		// Note: destinations must avoid tbl24 slots extended by the >24
		// routes — in DIR-24-8 those take two reads even for ≤24-bit
		// matches, which is precisely why the paper phrases LPM2 as a
		// *constraint on the input class*.
		pkts := traffic.LPMPackets(traffic.LPMConfig{
			Packets: sc.Packets,
			Dsts:    []uint32{0x0A020304, 0x0A010505, 0x0B000001, 0x01020304},
			StartNS: 1_000, GapNS: 1_000, Seed: 11,
		})
		out = append(out, Scenario{
			Name: "LPM2", Instance: r.Instance, Contract: ct, Measure: pkts,
			Filter: has("lpm.get:short"),
		})
	}
	return out, nil
}

// RenderFigure1 prints the Figure 1 rows as a text table.
func RenderFigure1(rows []ClassResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %14s %14s %8s %12s %12s %8s\n",
		"Class", "Predicted IC", "Measured IC", "Over%", "Pred MA", "Meas MA", "Over%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %14d %14d %7.2f%% %12d %12d %7.2f%%\n",
			r.Scenario, r.PredictedIC, r.MeasuredIC, r.OverIC(),
			r.PredictedMA, r.MeasuredMA, r.OverMA())
	}
	return b.String()
}

// RenderTable3 prints the cycle rows (Table 3).
func RenderTable3(rows []ClassResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %18s %18s %8s\n", "Class", "Predicted Bound", "Measured Cycles", "Ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %18d %18d %8.2f\n",
			r.Scenario, r.PredictedCycles, r.MeasuredCycles, r.CycleRatio())
	}
	return b.String()
}
