package experiments

import (
	"context"
	"fmt"
	"strings"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/par"
	"gobolt/internal/traffic"
)

// Path filters used to carve the paper's input classes out of a
// contract.
func has(frags ...string) func(*core.PathContract) bool {
	return func(p *core.PathContract) bool {
		for _, f := range frags {
			if !strings.Contains(p.Events, f) {
				return false
			}
		}
		return true
	}
}

func hasNot(frag string) func(*core.PathContract) bool {
	return func(p *core.PathContract) bool { return !strings.Contains(p.Events, frag) }
}

func acts(kind nfir.ActionKind) func(*core.PathContract) bool {
	return func(p *core.PathContract) bool { return p.Action == kind }
}

const hourNS = uint64(3_600_000_000_000)

// Figure1 runs the 14 NF/packet-class scenarios of §5.1 and returns
// their predicted-vs-measured rows (IC and MA in Figure 1, cycles in
// Table 3 — the same runs produce both). The four NF families are
// independent (each scenario builds a fresh instance), so they run
// concurrently on the scale's worker pool; rows keep the serial order.
func Figure1(sc Scale) ([]ClassResult, error) {
	families := []func(Scale) ([]ClassResult, error){
		natScenarios, bridgeScenarios, lbScenarios, lpmScenarios,
	}
	rows := make([][]ClassResult, len(families))
	err := par.ForEach(context.Background(), sc.workers(), len(families), func(i int) error {
		rs, err := families[i](sc)
		rows[i] = rs
		return err
	})
	var out []ClassResult
	for _, rs := range rows {
		out = append(out, rs...)
	}
	return out, err
}

// classFlows sizes the steady-state flow population so the working set
// scales with the table (keeping cache behaviour — and thus the Table 3
// cycle ratios — representative rather than toy-sized).
func classFlows(sc Scale) int {
	f := sc.TableCapacity / 4
	if f < 64 {
		f = 64
	}
	return f
}

func warmupFor(sc Scale, flows int) int {
	if sc.Warmup > flows {
		return sc.Warmup
	}
	return flows
}

func natScenarios(sc Scale) ([]ClassResult, error) {
	build := func() (*nf.NAT, *core.Contract, error) {
		nat := nf.NewNAT(nf.NATConfig{
			ExternalIP: 0xC0A80001, Capacity: sc.TableCapacity,
			TimeoutNS: hourNS, GranularityNS: 1_000_000, Seed: 11,
		})
		ct, err := sc.Generator().Generate(nat.Prog, nat.Models)
		return nat, ct, err
	}
	var out []ClassResult

	// NAT1: unconstrained traffic / pathological synthesized state — a
	// full, fully-collided, fully-aged flow table mass-expired by one
	// packet (paper §5.1 methodology).
	{
		nat, ct, err := build()
		if err != nil {
			return nil, err
		}
		now := hourNS * 2
		nat.Map.SynthesizePathological(nat.Env, sc.PathoEntries, now)
		trigger := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: 1, Flows: 1, StartNS: now, Seed: 1, InPort: nf.NATPortInternal,
		})
		res, err := measureClass("NAT1", nat.Instance, ct, nil, trigger, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// NAT2: packets from the internal network belonging to new
	// connections.
	{
		nat, ct, err := build()
		if err != nil {
			return nil, err
		}
		pkts := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: sc.Packets, NewFlowEvery: 1,
			StartNS: 1_000, GapNS: 1_000, Seed: 2, InPort: nf.NATPortInternal,
		})
		res, err := measureClass("NAT2", nat.Instance, ct, nil, pkts,
			core.And(acts(nfir.ActionForward), has("flows.add:ok")))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// NAT3: established connections.
	{
		nat, ct, err := build()
		if err != nil {
			return nil, err
		}
		population := classFlows(sc)
		warmN := warmupFor(sc, population)
		flows := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: warmN, Flows: population, RoundRobin: true,
			StartNS: 1_000, GapNS: 1_000, Seed: 3, InPort: nf.NATPortInternal,
		})
		replay := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: population,
			StartNS: 1_000 + uint64(warmN)*1_000, GapNS: 1_000, Seed: 3, InPort: nf.NATPortInternal,
		})
		res, err := measureClass("NAT3", nat.Instance, ct, flows, replay,
			core.And(acts(nfir.ActionForward), has("flows.lookup_int:hit")))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// NAT4: external packets with no matching allocation (dropped).
	{
		nat, ct, err := build()
		if err != nil {
			return nil, err
		}
		pkts := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: 64,
			StartNS: 1_000, GapNS: 1_000, Seed: 4, InPort: nf.NATPortExternal,
		})
		res, err := measureClass("NAT4", nat.Instance, ct, nil, pkts,
			core.And(acts(nfir.ActionDrop), has("flows.lookup_ext:miss")))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func bridgeScenarios(sc Scale) ([]ClassResult, error) {
	build := func() (*nf.Bridge, *core.Contract, error) {
		br := nf.NewBridge(nf.BridgeConfig{
			Ports: 4, Capacity: sc.TableCapacity,
			TimeoutNS: hourNS, GranularityNS: 1_000_000, Seed: 21,
		})
		ct, err := sc.Generator().Generate(br.Prog, br.Models)
		return br, ct, err
	}
	var out []ClassResult

	// Br1: pathological mass expiry.
	{
		br, ct, err := build()
		if err != nil {
			return nil, err
		}
		now := hourNS * 2
		br.Table.SynthesizePathological(br.Env, sc.PathoEntries, now)
		trigger := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: 1, MACs: 4, Ports: 4, StartNS: now, Seed: 1,
		})
		res, err := measureClass("Br1", br.Instance, ct, nil, trigger, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// Br2: broadcast frames from known stations.
	{
		br, ct, err := build()
		if err != nil {
			return nil, err
		}
		warm := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: warmupFor(sc, classFlows(sc)), MACs: classFlows(sc), Ports: 4, RoundRobin: true,
			StartNS: 1_000, GapNS: 1_000, Seed: 5,
		})
		bcast := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: sc.Packets, MACs: classFlows(sc), BroadcastFraction: 1.0, Ports: 4, RoundRobin: true,
			StartNS: 1_000 + uint64(warmupFor(sc, classFlows(sc)))*1_000, GapNS: 1_000, Seed: 5,
		})
		res, err := measureClass("Br2", br.Instance, ct, warm, bcast,
			core.And(has("mac.put:known"), hasNot("mac.peek")))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// Br3: unicast frames between known stations.
	{
		br, ct, err := build()
		if err != nil {
			return nil, err
		}
		warm := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: warmupFor(sc, classFlows(sc)), MACs: classFlows(sc), Ports: 4, RoundRobin: true,
			StartNS: 1_000, GapNS: 1_000, Seed: 6,
		})
		uni := traffic.BridgeFrames(traffic.BridgeConfig{
			Packets: sc.Packets, MACs: classFlows(sc), Ports: 4, RoundRobin: true,
			StartNS: 1_000 + uint64(warmupFor(sc, classFlows(sc)))*1_000, GapNS: 1_000, Seed: 6,
		})
		res, err := measureClass("Br3", br.Instance, ct, warm, uni,
			has("mac.put:known", "mac.peek:hit"))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func lbScenarios(sc Scale) ([]ClassResult, error) {
	const backends = 16
	build := func() (*nf.LB, *core.Contract, error) {
		lb, err := nf.NewLB(nf.LBConfig{
			Backends: backends, RingSize: 4099, BackendIPBase: 0xAC100000,
			FlowCapacity: sc.TableCapacity,
			TimeoutNS:    hourNS, GranularityNS: 1_000_000,
			HeartbeatTimeoutNS: hourNS, Seed: 31,
		})
		if err != nil {
			return nil, nil, err
		}
		ct, err := sc.Generator().Generate(lb.Prog, lb.Models)
		return lb, ct, err
	}
	heartbeatAll := func(t uint64) []traffic.Packet {
		var hb []traffic.Packet
		for b := uint64(0); b < backends; b++ {
			hb = append(hb, traffic.Heartbeat(b, nf.LBHeartbeatPort, t+b))
		}
		return hb
	}
	var out []ClassResult

	// LB1: pathological mass expiry of the flow table.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		now := hourNS * 2
		lb.Flows.SynthesizePathological(lb.Env, sc.PathoEntries, now)
		for b := 0; b < backends; b++ {
			lb.Ring.SetHeartbeat(b, now)
		}
		trigger := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: 1, Flows: 1, StartNS: now, Seed: 1, InPort: nf.LBPortClient,
		})
		res, err := measureClass("LB1", lb.Instance, ct, nil, trigger, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// LB2: new flows from the external network, all backends live.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		warm := heartbeatAll(1_000)
		pkts := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: sc.Packets, NewFlowEvery: 1,
			StartNS: 10_000, GapNS: 1_000, Seed: 7, InPort: nf.LBPortClient,
		})
		res, err := measureClass("LB2", lb.Instance, ct, warm, pkts,
			has("flows.get:miss", "ring.pick_alive:direct"))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// LB3: existing flows whose backend became unresponsive: warm flows
	// with all backends alive, then mark every backend dead except one.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		warm := append(heartbeatAll(1_000), traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: sc.Packets, RoundRobin: true,
			StartNS: 10_000, GapNS: 1_000, Seed: 8, InPort: nf.LBPortClient,
		})...)
		// Kill all backends but 0 (state synthesis, as the paper does for
		// states traffic cannot reach quickly).
		prep := func() {
			for b := 1; b < backends; b++ {
				lb.Ring.SetHeartbeat(b, 0)
			}
			lb.Ring.TimeoutNS = 1 // everything not re-heartbeated is dead
			lb.Ring.SetHeartbeat(0, hourNS*3)
		}
		replay := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: sc.Packets, RoundRobin: true,
			StartNS: 10_000 + uint64(sc.Packets)*1_000, GapNS: 1_000, Seed: 8, InPort: nf.LBPortClient,
		})
		if _, err := (&distill.Runner{}).Run(lb.Instance, warm); err != nil {
			return nil, err
		}
		prep()
		res, err := measureClass("LB3", lb.Instance, ct, nil, replay,
			core.And(has("flows.get:hit", "ring.alive:dead", "flows.put:known"),
				hasNot("ring.pick_alive:none")))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// LB4: existing flows with live backends.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		population := classFlows(sc)
		warmN := warmupFor(sc, population)
		warm := append(heartbeatAll(1_000), traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: warmN, Flows: population, RoundRobin: true,
			StartNS: 10_000, GapNS: 1_000, Seed: 9, InPort: nf.LBPortClient,
		})...)
		replay := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: population,
			StartNS: 10_000 + uint64(warmN)*1_000, GapNS: 1_000, Seed: 9, InPort: nf.LBPortClient,
		})
		res, err := measureClass("LB4", lb.Instance, ct, warm, replay,
			has("flows.get:hit", "ring.alive:alive"))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// LB5: heartbeat packets from backends.
	{
		lb, ct, err := build()
		if err != nil {
			return nil, err
		}
		var pkts []traffic.Packet
		for i := 0; i < sc.Packets; i++ {
			pkts = append(pkts, traffic.Heartbeat(uint64(i%backends), nf.LBHeartbeatPort, uint64(1_000+i*1_000)))
		}
		res, err := measureClass("LB5", lb.Instance, ct, nil, pkts, has("ring.heartbeat:ok"))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

func lpmScenarios(sc Scale) ([]ClassResult, error) {
	build := func() (*nf.LPMRouter, *core.Contract, error) {
		r := nf.NewLPMRouter(nf.LPMRouterConfig{Ports: 16, DefaultPort: 0, MaxTbl8Groups: 64})
		routes := []struct {
			prefix uint32
			length int
			port   uint16
		}{
			{0x0A000000, 8, 1},
			{0x0A010000, 16, 2},
			{0xC0A80100, 24, 3},
			{0xC0A80180, 25, 4}, // long prefixes: the LPM1 class
			{0xC0A801C0, 26, 5},
			{0x08080800, 29, 6},
		}
		for _, rt := range routes {
			if err := r.Table.AddRoute(rt.prefix, rt.length, rt.port); err != nil {
				return nil, nil, err
			}
		}
		ct, err := sc.Generator().Generate(r.Prog, r.Models)
		return r, ct, err
	}
	var out []ClassResult

	// LPM1: unconstrained traffic — CASTAN-style adversarial generation
	// drives every packet into the two-read path (>24-bit matches).
	{
		r, ct, err := build()
		if err != nil {
			return nil, err
		}
		pkts := traffic.AdversarialLPM(r.Table, sc.Packets, 1_000, 1_000, 10)
		res, err := measureClass("LPM1", r.Instance, ct, nil, pkts, has("lpm.get:long"))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}

	// LPM2: matched prefixes ≤ 24 bits — exactly one table read.
	{
		r, ct, err := build()
		if err != nil {
			return nil, err
		}
		// Note: destinations must avoid tbl24 slots extended by the >24
		// routes — in DIR-24-8 those take two reads even for ≤24-bit
		// matches, which is precisely why the paper phrases LPM2 as a
		// *constraint on the input class*.
		pkts := traffic.LPMPackets(traffic.LPMConfig{
			Packets: sc.Packets,
			Dsts:    []uint32{0x0A020304, 0x0A010505, 0x0B000001, 0x01020304},
			StartNS: 1_000, GapNS: 1_000, Seed: 11,
		})
		res, err := measureClass("LPM2", r.Instance, ct, nil, pkts, has("lpm.get:short"))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderFigure1 prints the Figure 1 rows as a text table.
func RenderFigure1(rows []ClassResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %14s %14s %8s %12s %12s %8s\n",
		"Class", "Predicted IC", "Measured IC", "Over%", "Pred MA", "Meas MA", "Over%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %14d %14d %7.2f%% %12d %12d %7.2f%%\n",
			r.Scenario, r.PredictedIC, r.MeasuredIC, r.OverIC(),
			r.PredictedMA, r.MeasuredMA, r.OverMA())
	}
	return b.String()
}

// RenderTable3 prints the cycle rows (Table 3).
func RenderTable3(rows []ClassResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %18s %18s %8s\n", "Class", "Predicted Bound", "Measured Cycles", "Ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %18d %18d %8.2f\n",
			r.Scenario, r.PredictedCycles, r.MeasuredCycles, r.CycleRatio())
	}
	return b.String()
}
