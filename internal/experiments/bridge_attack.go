package experiments

import (
	"fmt"
	"strings"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/dpdk"
	"gobolt/internal/nf"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// Table4Row is one class of the bridge contract (paper Table 4).
type Table4Row struct {
	TrafficType  string
	Instructions string
}

// Table4 generates the bridge contract with the rehash defence enabled
// and renders its three published classes.
func Table4(sc Scale) ([]Table4Row, *core.Contract, error) {
	br := nf.NewBridge(nf.BridgeConfig{
		Ports: 4, Capacity: sc.TableCapacity,
		TimeoutNS: hourNS, GranularityNS: 1_000_000,
		RehashThreshold: 6, Seed: 77,
	})
	ct, err := sc.Generator().Generate(br.Prog, br.Models)
	if err != nil {
		return nil, nil, err
	}
	pick := func(name string, filter func(*core.PathContract) bool) (Table4Row, error) {
		var worst *core.PathContract
		for _, p := range ct.Paths {
			if !filter(p) {
				continue
			}
			if worst == nil || p.Cost[perf.Instructions].ConstTerm() > worst.Cost[perf.Instructions].ConstTerm() {
				worst = p
			}
		}
		if worst == nil {
			return Table4Row{}, fmt.Errorf("table4: no path for class %q", name)
		}
		return Table4Row{TrafficType: name, Instructions: worst.Cost[perf.Instructions].String()}, nil
	}
	rows := make([]Table4Row, 0, 3)
	for _, cls := range []struct {
		name   string
		filter func(*core.PathContract) bool
	}{
		{"Known Source MAC", has("mac.put:known", "mac.peek:hit")},
		{"Unknown Source MAC; No Rehashing", has("mac.put:new", "mac.peek:hit")},
		{"Unknown Source MAC; Rehashing", has("mac.put:rehash", "mac.peek:hit")},
	} {
		row, err := pick(cls.name, cls.filter)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
	}
	return rows, ct, nil
}

// Figure2Point is one x-position of Figure 2: the CCDF of bucket
// traversals under a uniform random workload, alongside the contract's
// predicted IC at that traversal count.
type Figure2Point struct {
	Traversals  uint64
	CCDF        float64
	PredictedIC uint64
}

// Figure2 runs the Distiller over a uniform random workload against the
// defended bridge and overlays the per-traversal prediction, the
// analysis an operator uses to place the rehash threshold (§5.2).
func Figure2(sc Scale) ([]Figure2Point, error) {
	br := nf.NewBridge(nf.BridgeConfig{
		Ports: 4, Capacity: sc.TableCapacity,
		TimeoutNS: hourNS, GranularityNS: 1_000_000,
		RehashThreshold: uint64(sc.TableCapacity), // defence armed but out of reach
		Seed:            77,
	})
	ct, err := sc.Generator().Generate(br.Prog, br.Models)
	if err != nil {
		return nil, err
	}
	pkts := traffic.BridgeFrames(traffic.BridgeConfig{
		Packets: sc.Packets * 4, MACs: sc.TableCapacity / 2, Ports: 4,
		StartNS: 1_000, GapNS: 1_000, Seed: 13,
	})
	rep, err := distill.Distill(br.Instance, pkts, dpdk.NFOnly)
	if err != nil {
		return nil, err
	}
	// CCDF of the t PCV.
	var ts []uint64
	for _, r := range rep.Records {
		ts = append(ts, r.PCVs["t"])
	}
	ccdf := distill.CCDF(ts)
	// Prediction as a function of t for the no-rehash unknown-MAC class
	// with the distilled collision bound (the Figure 2 overlay line).
	cBound := rep.MaxPCVs()["c"]
	filter := has("mac.put:new", "mac.peek")
	out := make([]Figure2Point, 0, len(ccdf))
	for _, pt := range ccdf {
		pred, _ := ct.Bound(perf.Instructions, filter,
			map[string]uint64{"t": pt.Value, "c": cBound, "e": 0, "o": 0})
		out = append(out, Figure2Point{Traversals: pt.Value, CCDF: pt.Frac, PredictedIC: pred})
	}
	return out, nil
}

// RenderTable4 prints the bridge contract rows.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %s\n", "Traffic Type", "Instructions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-36s %s\n", r.TrafficType, r.Instructions)
	}
	return b.String()
}

// RenderFigure2 prints the traversal CCDF and prediction series.
func RenderFigure2(pts []Figure2Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s %10s %14s\n", "Traversals", "CCDF", "Predicted IC")
	for _, p := range pts {
		fmt.Fprintf(&b, "%12d %10.4f %14d\n", p.Traversals, p.CCDF, p.PredictedIC)
	}
	return b.String()
}
