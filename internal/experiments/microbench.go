package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"gobolt/internal/expr"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// MicrobenchRow is one row of the §5.1 hardware-model validation: the
// conservative model's cycle prediction against the detailed model for
// three memory-access patterns.
type MicrobenchRow struct {
	Program   string
	Predicted uint64
	Measured  uint64
}

// Ratio is predicted ÷ measured.
func (r MicrobenchRow) Ratio() float64 {
	if r.Measured == 0 {
		return 0
	}
	return float64(r.Predicted) / float64(r.Measured)
}

// traversal is the expert-analysed data structure backing P1–P3: a walk
// over n nodes with a configurable layout. Its contract is written the
// way §3.2 prescribes — including the conservative model's provable-hit
// reasoning (an array packs 8 elements per line, so 7 of every 8 loads
// provably hit L1).
type traversal struct {
	addrs     []uint64
	dependent bool
	// elemsPerLine > 1 marks same-line packing (the array case).
	elemsPerLine int
}

const traversalALUPerNode = 2 // advance + accumulate

func (tr *traversal) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	if method != "walk" || len(args) != 1 {
		return nil, fmt.Errorf("traversal: unknown method %q", method)
	}
	n := int(args[0])
	if n > len(tr.addrs) {
		n = len(tr.addrs)
	}
	var sum uint64
	for i := 0; i < n; i++ {
		env.Meter.Exec(perf.OpALU, traversalALUPerNode)
		env.Meter.Load(tr.addrs[i], 8, tr.dependent)
		sum += tr.addrs[i]
	}
	env.ObservePCV("n", uint64(n))
	return []uint64{sum}, nil
}

// Model returns the single-outcome model with the expert cycle contract.
func (tr *traversal) Model() nfir.Model { return travModel{tr: tr} }

type travModel struct{ tr *traversal }

func (m travModel) Outcomes(method string, args []symb.Expr, fresh nfir.FreshFn) []nfir.Outcome {
	if method != "walk" {
		return nil
	}
	sum := fresh("sum")
	n := uint64(len(m.tr.addrs))
	// Conservative per-node cycles: worst-case ALU plus the memory
	// charge. With k elements per line, the expert can prove that k-1 of
	// every k accesses hit L1D (spatial locality, §3.5); everything else
	// is DRAM.
	k := uint64(1)
	if m.tr.elemsPerLine > 1 {
		k = uint64(m.tr.elemsPerLine)
	}
	perNodeTimesK := traversalALUPerNode*hwmodel.WorstALU*float64(k) +
		(hwmodel.MemIssue + hwmodel.LatDRAM) +
		float64(k-1)*(hwmodel.MemIssue+hwmodel.LatL1)
	perNode := uint64(perNodeTimesK/float64(k)) + 1
	return []nfir.Outcome{{
		Label:   "ok",
		Results: []symb.Expr{sum},
		Domains: map[string]symb.Domain{sum.Name: symb.Full},
		Cost: map[perf.Metric]expr.Poly{
			perf.Instructions: expr.Term(traversalALUPerNode+1, "n"),
			perf.MemAccesses:  expr.Term(1, "n"),
			perf.Cycles:       expr.Term(perNode, "n"),
		},
		PCVs: []nfir.PCV{{Name: "n", Range: expr.Range{Lo: 0, Hi: n}}},
	}}
}

// Microbench runs the P1–P3 experiment with n nodes each.
//
//	P1: linked list, nodes scattered (no prefetch, no MLP)  → ratio ≈ 1
//	P2: linked list in one contiguous chunk (prefetch only) → ratio ≈ 6
//	P3: array (prefetch + MLP)                              → ratio ≈ 9
func Microbench(n int) ([]MicrobenchRow, error) {
	rng := rand.New(rand.NewSource(42))

	scattered := make([]uint64, n)
	for i := range scattered {
		scattered[i] = 0x4000_0000 + uint64(rng.Intn(1<<24))*64
	}
	contiguous := make([]uint64, n)
	for i := range contiguous {
		contiguous[i] = 0x5000_0000 + uint64(i)*64
	}
	array := make([]uint64, n)
	for i := range array {
		array[i] = 0x6000_0000 + uint64(i)*8
	}

	programs := []struct {
		name string
		tr   *traversal
	}{
		{"P1 (scattered linked list)", &traversal{addrs: scattered, dependent: true}},
		{"P2 (contiguous linked list)", &traversal{addrs: contiguous, dependent: true}},
		{"P3 (array)", &traversal{addrs: array, dependent: false, elemsPerLine: 8}},
	}

	var rows []MicrobenchRow
	for _, p := range programs {
		prog := &nfir.Program{
			Name: p.name,
			Body: []nfir.Stmt{
				nfir.Invoke("mem", "walk", []nfir.Expr{nfir.C(uint64(n))}, "sum"),
				nfir.Fwd(nfir.C(0)),
			},
		}
		// Predicted: the contract's cycle polynomial at n.
		outs := p.tr.Model().Outcomes("walk", nil, func(h string) symb.Sym { return symb.Sym{Name: h} })
		predicted := outs[0].Cost[perf.Cycles].Eval(map[string]uint64{"n": uint64(n)})

		// Measured: the detailed model over the production run.
		det := hwmodel.NewDetailed()
		env := nfir.NewEnv()
		env.Meter = perf.NewMeter(det)
		env.DS["mem"] = p.tr
		env.ResetPacket(nil, 0, 0)
		if _, err := env.Run(prog); err != nil {
			return nil, err
		}
		rows = append(rows, MicrobenchRow{
			Program:   p.name,
			Predicted: predicted,
			Measured:  det.Cycles(),
		})
	}
	return rows, nil
}

// RenderMicrobench prints the P1–P3 rows.
func RenderMicrobench(rows []MicrobenchRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %12s %12s %8s\n", "Program", "Predicted", "Measured", "Ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %12d %12d %8.2f\n", r.Program, r.Predicted, r.Measured, r.Ratio())
	}
	return b.String()
}
