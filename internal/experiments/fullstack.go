package experiments

import (
	"fmt"
	"strings"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/dpdk"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// FullStackRow compares the two §3.5 analysis levels on one NF: the
// NF-only contract, the full-stack contract (driver RX + mbuf + TX/drop
// included), and a full-stack measurement.
type FullStackRow struct {
	NF           string
	NFOnlyPred   uint64
	FullPred     uint64
	FullMeasured uint64
}

// FullStack runs the comparison for the LPM router and the NAT's
// established-flow class.
func FullStack(sc Scale) ([]FullStackRow, error) {
	var out []FullStackRow

	// LPM router, short-prefix class.
	{
		build := func() (*nf.LPMRouter, error) {
			r := nf.NewLPMRouter(nf.LPMRouterConfig{Ports: 16})
			return r, r.Table.AddRoute(0x0A000000, 8, 1)
		}
		r, err := build()
		if err != nil {
			return nil, err
		}
		nfCt, err := sc.Generator().Generate(r.Prog, r.Models)
		if err != nil {
			return nil, err
		}
		g := sc.Generator()
		g.Level = dpdk.FullStack
		fullCt, err := g.Generate(r.Prog, r.Models)
		if err != nil {
			return nil, err
		}
		pkts := traffic.LPMPackets(traffic.LPMConfig{
			Packets: sc.Packets, Dsts: []uint32{0x0A010203}, StartNS: 1_000, GapNS: 1_000, Seed: 1,
		})
		recs, err := (&distill.Runner{Level: dpdk.FullStack}).Run(r.Instance, pkts)
		if err != nil {
			return nil, err
		}
		rep := &distill.Report{Records: recs}
		filt := has("lpm.get:short")
		nfPred, _ := nfCt.Bound(perf.Instructions, filt, rep.MaxPCVs())
		fullPred, _ := fullCt.Bound(perf.Instructions, filt, rep.MaxPCVs())
		out = append(out, FullStackRow{
			NF: "lpm-router (short)", NFOnlyPred: nfPred, FullPred: fullPred,
			FullMeasured: distill.Max(rep.Series(perf.Instructions)),
		})
	}

	// NAT, established flows.
	{
		nat := nf.NewNAT(nf.NATConfig{
			ExternalIP: 0xC0A80001, Capacity: sc.TableCapacity,
			TimeoutNS: hourNS, GranularityNS: 1_000_000, Seed: 11,
		})
		nfCt, err := sc.Generator().Generate(nat.Prog, nat.Models)
		if err != nil {
			return nil, err
		}
		g := sc.Generator()
		g.Level = dpdk.FullStack
		fullCt, err := g.Generate(nat.Prog, nat.Models)
		if err != nil {
			return nil, err
		}
		warm := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: 64, Flows: 64, RoundRobin: true,
			StartNS: 1_000, GapNS: 1_000, Seed: 3, InPort: nf.NATPortInternal,
		})
		runner := &distill.Runner{Level: dpdk.FullStack}
		if _, err := runner.Run(nat.Instance, warm); err != nil {
			return nil, err
		}
		replay := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: sc.Packets, Flows: 64, RoundRobin: true,
			StartNS: 100_000, GapNS: 1_000, Seed: 3, InPort: nf.NATPortInternal,
		})
		recs, err := runner.Run(nat.Instance, replay)
		if err != nil {
			return nil, err
		}
		rep := &distill.Report{Records: recs}
		filt := core.And(acts(nfir.ActionForward), has("flows.lookup_int:hit"))
		binding := rep.MaxPCVs()
		nfPred, _ := nfCt.Bound(perf.Instructions, filt, binding)
		fullPred, _ := fullCt.Bound(perf.Instructions, filt, binding)
		out = append(out, FullStackRow{
			NF: "nat (established)", NFOnlyPred: nfPred, FullPred: fullPred,
			FullMeasured: distill.Max(rep.Series(perf.Instructions)),
		})
	}
	return out, nil
}

// RenderFullStack prints the comparison.
func RenderFullStack(rows []FullStackRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %14s %14s %16s\n", "NF (class)", "NF-only pred", "Full pred", "Full measured")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %14d %14d %16d\n", r.NF, r.NFOnlyPred, r.FullPred, r.FullMeasured)
	}
	return b.String()
}
