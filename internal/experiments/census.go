package experiments

import (
	"context"
	"fmt"
	"strings"

	"gobolt/internal/nf"
	"gobolt/internal/par"
)

// CensusRow reports how many feasible paths and coalesced input classes
// one NF's contract subsumes — the §5.1 observation that "each such
// contract subsumes from several hundred to a few thousand unique
// execution paths". The IR-level NFs here are far more compact than
// compiled C, so the counts run tens rather than thousands; the class
// structure, which is what contracts expose, is the same.
type CensusRow struct {
	NF      string
	Paths   int
	Classes int
}

// Census generates contracts for all seven NFs and counts their paths
// and classes.
func Census(sc Scale) ([]CensusRow, error) {
	builders := []struct {
		name  string
		build func() (*nf.Instance, error)
	}{
		{"example-lpm", func() (*nf.Instance, error) {
			return nf.NewExampleLPM(nf.ExampleLPMConfig{Ports: 4}).Instance, nil
		}},
		{"lpm-router", func() (*nf.Instance, error) {
			return nf.NewLPMRouter(nf.LPMRouterConfig{Ports: 16}).Instance, nil
		}},
		{"firewall", func() (*nf.Instance, error) {
			return nf.NewFirewall(nf.FirewallConfig{}).Instance, nil
		}},
		{"static-router", func() (*nf.Instance, error) {
			return nf.NewStaticRouter(nf.StaticRouterConfig{Ports: 4}).Instance, nil
		}},
		{"bridge", func() (*nf.Instance, error) {
			return nf.NewBridge(nf.BridgeConfig{
				Ports: 4, Capacity: sc.TableCapacity, TimeoutNS: hourNS,
				RehashThreshold: 6,
			}).Instance, nil
		}},
		{"nat", func() (*nf.Instance, error) {
			return nf.NewNAT(nf.NATConfig{
				ExternalIP: 1, Capacity: sc.TableCapacity, TimeoutNS: hourNS,
			}).Instance, nil
		}},
		{"lb", func() (*nf.Instance, error) {
			lb, err := nf.NewLB(nf.LBConfig{
				Backends: 16, RingSize: 4099, FlowCapacity: sc.TableCapacity,
				TimeoutNS: hourNS, HeartbeatTimeoutNS: hourNS,
			})
			if err != nil {
				return nil, err
			}
			return lb.Instance, nil
		}},
	}
	// The seven NFs are independent, so their contracts generate
	// concurrently; rows land in builder order.
	out := make([]CensusRow, len(builders))
	err := par.ForEach(context.Background(), sc.workers(), len(builders), func(i int) error {
		b := builders[i]
		inst, err := b.build()
		if err != nil {
			return err
		}
		ct, err := sc.Generator().Generate(inst.Prog, inst.Models)
		if err != nil {
			return fmt.Errorf("census %s: %w", b.name, err)
		}
		out[i] = CensusRow{NF: b.name, Paths: len(ct.Paths), Classes: ct.NumClasses()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderCensus prints the census.
func RenderCensus(rows []CensusRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %8s\n", "NF", "Paths", "Classes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %8d\n", r.NF, r.Paths, r.Classes)
	}
	return b.String()
}
