// Package experiments defines the paper's evaluation (§5) as runnable
// scenarios: the 14 NF/packet-class accuracy measurements of Figure 1
// and Table 3, the P1–P3 hardware-model microbenchmarks, the bridge
// rehash analysis (Table 4, Figure 2), the firewall+router chain
// (Table 5, Figure 3), the VigNAT expiry-batching study (Tables 6–8,
// Figure 4), and the allocator comparison (Figures 5–7).
//
// Every experiment follows the paper's methodology: BOLT generates the
// contract from the code alone; the workload generator produces a
// packet class; the production build measures; the Distiller binds the
// PCVs; and the report compares the conservative prediction with the
// measurement.
package experiments

import (
	"fmt"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/hwmodel"
	"gobolt/internal/par"
	"gobolt/internal/perf"
)

// Scale sizes the experiments. The paper's testbed used tables of tens
// of thousands of entries; Default keeps runs in seconds on a laptop
// while preserving every qualitative effect, and tests use Quick.
type Scale struct {
	// TableCapacity sizes flow/MAC tables for the typical classes.
	TableCapacity int
	// PathoEntries is the synthesized-state size for Br1/NAT1/LB1; the
	// expiry work grows quadratically in it.
	PathoEntries int
	// Packets per measured class.
	Packets int
	// Warmup packets before measurement.
	Warmup int
	// Parallelism bounds the worker pool for contract generation and the
	// independent scenario runs: 0 means one worker per CPU, 1 reproduces
	// the serial harness exactly.
	Parallelism int
	// NoCache disables the process-wide contract cache, forcing every
	// generation through the full pipeline (used by the cold benchmarks).
	NoCache bool
	// Cache, when non-nil, is used instead of the process-wide
	// SharedCache (and overrides NoCache). The -store tooling and the
	// warm-restart tests inject a disk-backed cache this way.
	Cache *core.ContractCache
	// MonitorShards and MonitorBatch configure the online monitor the
	// attack experiments build (boltmon -shards/-batch): shard count for
	// the flow-hashed engines and packets per ingest batch. Zero means
	// the monitor defaults (serial, batch 64).
	MonitorShards int
	MonitorBatch  int
	// MonitorQueue is the per-shard ingest queue depth in batches
	// (boltmon -queue; zero means the default of 4). MonitorNoRing swaps
	// the SPSC-ring ingest hop for the channel + sync.Pool ablation
	// (boltmon -noring); it never changes what the monitor reports.
	MonitorQueue  int
	MonitorNoRing bool
}

// Generator returns the production generator configured for this scale:
// the padded NewGenerator defaults plus the scale's worker pool and —
// unless NoCache is set — the process-wide contract cache, so the many
// experiments that regenerate the same NF share one pipeline run.
func (sc Scale) Generator() *core.Generator {
	g := core.NewGenerator()
	g.Parallelism = sc.Parallelism
	switch {
	case sc.Cache != nil:
		g.Cache = sc.Cache
	case !sc.NoCache:
		g.Cache = core.SharedCache()
	}
	return g
}

// workers resolves Parallelism the same way core.Generator does, for the
// harness-level fan-out over independent scenarios.
func (sc Scale) workers() int { return par.Workers(sc.Parallelism) }

// DefaultScale is used by cmd/boltbench and the benchmarks.
func DefaultScale() Scale {
	return Scale{TableCapacity: 8192, PathoEntries: 4096, Packets: 2000, Warmup: 1500}
}

// QuickScale keeps the unit-test suite fast.
func QuickScale() Scale {
	return Scale{TableCapacity: 512, PathoEntries: 192, Packets: 250, Warmup: 200}
}

// ClassResult is one row of Figure 1 / Table 3: a packet class's
// predicted bounds versus its measured worst case.
type ClassResult struct {
	Scenario string
	// Predicted vs measured dynamic instruction count.
	PredictedIC, MeasuredIC uint64
	// Predicted vs measured memory accesses.
	PredictedMA, MeasuredMA uint64
	// Predicted (conservative model) vs measured (detailed model) cycles.
	PredictedCycles, MeasuredCycles uint64
	// Packets measured in the class.
	Packets int
}

// OverIC is the relative IC over-estimation in percent.
func (r ClassResult) OverIC() float64 { return overPct(r.PredictedIC, r.MeasuredIC) }

// OverMA is the relative MA over-estimation in percent.
func (r ClassResult) OverMA() float64 { return overPct(r.PredictedMA, r.MeasuredMA) }

// CycleRatio is predicted ÷ measured cycles (Table 3's "Ratio").
func (r ClassResult) CycleRatio() float64 {
	if r.MeasuredCycles == 0 {
		return 0
	}
	return float64(r.PredictedCycles) / float64(r.MeasuredCycles)
}

func overPct(pred, meas uint64) float64 {
	if meas == 0 {
		return 0
	}
	return 100 * (float64(pred) - float64(meas)) / float64(meas)
}

// measureScenario runs one packet class against its instance and
// compares it with the contract: the prediction is the contract's worst
// matching path evaluated at the Distiller-observed PCVs; the
// measurement is the worst packet observed. It errors if any packet
// beats the bound (soundness violation).
func measureScenario(s Scenario) (ClassResult, error) {
	name, ct, filter := s.Name, s.Contract, s.Filter
	det := hwmodel.NewDetailed()
	runner := &distill.Runner{Detailed: det}
	if len(s.Warmup) > 0 {
		if _, err := runner.Run(s.Instance, s.Warmup); err != nil {
			return ClassResult{}, fmt.Errorf("%s warmup: %w", name, err)
		}
	}
	if s.Prepare != nil {
		if err := s.Prepare(); err != nil {
			return ClassResult{}, fmt.Errorf("%s prepare: %w", name, err)
		}
	}
	recs, err := runner.Run(s.Instance, s.Measure)
	if err != nil {
		return ClassResult{}, fmt.Errorf("%s: %w", name, err)
	}
	rep := &distill.Report{Records: recs}

	// Per-packet predictions: the Distiller reports which assumptions
	// (PCV values) held for each packet (§4); the contract predicts the
	// worst matching path under exactly those assumptions. The class row
	// is the worst packet on each side. Soundness is checked per packet.
	res := ClassResult{Scenario: name, Packets: len(recs)}
	pcvNames := make(map[string]bool)
	for _, p := range ct.Paths {
		for v := range p.PCVRanges {
			pcvNames[v] = true
		}
	}
	for i, rec := range recs {
		binding := make(map[string]uint64, len(pcvNames))
		for v := range pcvNames {
			binding[v] = rec.PCVs[v] // unobserved PCVs held at 0
		}
		predIC, _ := ct.Bound(perf.Instructions, filter, binding)
		predMA, _ := ct.Bound(perf.MemAccesses, filter, binding)
		predCyc, _ := ct.Bound(perf.Cycles, filter, binding)
		if rec.IC > predIC {
			return res, fmt.Errorf("%s packet %d: SOUNDNESS VIOLATION: measured IC %d > predicted %d (pcvs %v)",
				name, i, rec.IC, predIC, binding)
		}
		if rec.MA > predMA {
			return res, fmt.Errorf("%s packet %d: SOUNDNESS VIOLATION: measured MA %d > predicted %d",
				name, i, rec.MA, predMA)
		}
		if rec.Cycles > predCyc {
			return res, fmt.Errorf("%s packet %d: SOUNDNESS VIOLATION: measured cycles %d > predicted %d",
				name, i, rec.Cycles, predCyc)
		}
		if predIC > res.PredictedIC {
			res.PredictedIC = predIC
		}
		if predMA > res.PredictedMA {
			res.PredictedMA = predMA
		}
		if predCyc > res.PredictedCycles {
			res.PredictedCycles = predCyc
		}
	}
	res.MeasuredIC = distill.Max(rep.Series(perf.Instructions))
	res.MeasuredMA = distill.Max(rep.Series(perf.MemAccesses))
	res.MeasuredCycles = distill.Max(rep.Series(perf.Cycles))
	return res, nil
}
