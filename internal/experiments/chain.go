package experiments

import (
	"fmt"
	"strings"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/dslib"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// Table5 holds the three §5.2 chain contracts: the firewall, the static
// router, and their composition.
type Table5 struct {
	Firewall [][2]string
	Router   [][2]string
	Chain    [][2]string
}

// Figure3Row compares composition strategies on the chain's worst case.
type Figure3Row struct {
	Name        string
	PredictedIC uint64
	PredictedMA uint64
	MeasuredIC  uint64
	MeasuredMA  uint64
}

func buildChain() (*nf.Firewall, *nf.StaticRouter, error) {
	// Deny rules first, accepts last: legitimate traffic traverses the
	// whole scan, as in a defence-in-depth rule set.
	fw := nf.NewFirewall(nf.FirewallConfig{
		Rules: []dslib.Rule{
			{SrcMask: 0xFF000000, SrcVal: 0x7F000000, Action: 0}, // deny loopback
			{ProtoVal: 1, SrcMask: 0, SrcVal: 0, Action: 0},      // deny ICMP
			{SrcMask: 0xFFFF0000, SrcVal: 0xC0A80000, Action: 1}, // accept 192.168/16
			{SrcMask: 0xFF000000, SrcVal: 0x0A000000, Action: 1}, // accept 10/8
		},
		DefaultAccept: false,
	})
	sr := nf.NewStaticRouter(nf.StaticRouterConfig{Ports: 4})
	if err := sr.Table.AddRoute(0xC0A80100, 24, 1); err != nil {
		return nil, nil, err
	}
	if err := sr.Table.AddRoute(0x0A000000, 8, 2); err != nil {
		return nil, nil, err
	}
	return fw, sr, nil
}

// ChainContracts generates the three contracts of Table 5, rendered as
// (traffic type, instruction expression) rows.
func ChainContracts(sc Scale) (*Table5, *core.Contract, *core.Contract, *core.Contract, error) {
	fw, sr, err := buildChain()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	g := sc.Generator()
	fwCt, fwPaths, err := g.GenerateWithPaths(fw.Prog, fw.Models)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	srCt, err := g.Generate(sr.Prog, sr.Models)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	comp, err := core.Compose(g, fwCt, fwPaths, sr.Prog, sr.Models)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	worstExpr := func(ct *core.Contract, filter func(*core.PathContract) bool) string {
		var worst *core.PathContract
		var worstVal uint64
		for _, p := range ct.Paths {
			if filter != nil && !filter(p) {
				continue
			}
			v := p.BoundAt(perf.Instructions, nil)
			if worst == nil || v > worstVal {
				worst, worstVal = p, v
			}
		}
		if worst == nil {
			return "(no path)"
		}
		return worst.Cost[perf.Instructions].String()
	}
	fwd := acts(nfir.ActionForward)
	drop := acts(nfir.ActionDrop)
	t5 := &Table5{
		Firewall: [][2]string{
			{"No IP options (rule scan)", worstExpr(fwCt, fwd)},
			{"IP options (dropped)", worstExpr(fwCt, core.And(drop, hasNot("rules.match")))},
		},
		Router: [][2]string{
			{"No IP options", worstExpr(srCt, core.And(fwd, has("optproc.process:none")))},
			{"IP options", worstExpr(srCt, core.And(fwd, has("optproc.process:options")))},
		},
		Chain: [][2]string{
			{"No IP options", worstExpr(comp, fwd)},
			{"IP options (dropped at firewall)", worstExpr(comp, drop)},
		},
	}
	return t5, fwCt, srCt, comp, nil
}

// Figure3 compares the naive addition of the two contracts against the
// composite contract, with chain measurements as ground truth.
func Figure3(sc Scale) ([]Figure3Row, error) {
	_, fwCt, srCt, comp, err := ChainContracts(sc)
	if err != nil {
		return nil, err
	}
	fw, sr, err := buildChain()
	if err != nil {
		return nil, err
	}

	// Workload: accepted traffic (10/8 sources, no options) plus
	// option-carrying and denied packets.
	var pkts []traffic.Packet
	pkts = append(pkts, traffic.UDPFlows(traffic.UDPFlowConfig{
		Packets: sc.Packets, Flows: 64, Seed: 5, StartNS: 1_000, GapNS: 1_000,
	})...)
	for n := 1; n <= 8; n++ {
		pkts = append(pkts, traffic.WithOptions(n, uint64(2_000_000+n*1000), 0))
	}
	runner := &distill.Runner{}
	fwRecs, err := runner.Run(fw.Instance, pkts)
	if err != nil {
		return nil, err
	}
	var fwMaxIC, fwMaxMA, chainMaxIC, chainMaxMA, srMaxIC, srMaxMA uint64
	for i, rec := range fwRecs {
		totalIC, totalMA := rec.IC, rec.MA
		if rec.Action.Kind == nfir.ActionForward {
			srRecs, err := runner.Run(sr.Instance, pkts[i:i+1])
			if err != nil {
				return nil, err
			}
			totalIC += srRecs[0].IC
			totalMA += srRecs[0].MA
			if srRecs[0].IC > srMaxIC {
				srMaxIC = srRecs[0].IC
			}
			if srRecs[0].MA > srMaxMA {
				srMaxMA = srRecs[0].MA
			}
		}
		if rec.IC > fwMaxIC {
			fwMaxIC = rec.IC
		}
		if rec.MA > fwMaxMA {
			fwMaxMA = rec.MA
		}
		if totalIC > chainMaxIC {
			chainMaxIC = totalIC
		}
		if totalMA > chainMaxMA {
			chainMaxMA = totalMA
		}
	}

	// The router alone, facing the unfiltered workload (its own worst
	// case includes option processing).
	srAlone, err := buildRouterAlone()
	if err != nil {
		return nil, err
	}
	srAloneRecs, err := runner.Run(srAlone.Instance, pkts)
	if err != nil {
		return nil, err
	}
	var srAloneMaxIC, srAloneMaxMA uint64
	for _, rec := range srAloneRecs {
		if rec.IC > srAloneMaxIC {
			srAloneMaxIC = rec.IC
		}
		if rec.MA > srAloneMaxMA {
			srAloneMaxMA = rec.MA
		}
	}

	fwPredIC, _ := fwCt.Bound(perf.Instructions, nil, nil)
	fwPredMA, _ := fwCt.Bound(perf.MemAccesses, nil, nil)
	srPredIC, _ := srCt.Bound(perf.Instructions, nil, nil)
	srPredMA, _ := srCt.Bound(perf.MemAccesses, nil, nil)
	compIC, _ := comp.Bound(perf.Instructions, nil, nil)
	compMA, _ := comp.Bound(perf.MemAccesses, nil, nil)

	return []Figure3Row{
		{Name: "Firewall", PredictedIC: fwPredIC, PredictedMA: fwPredMA, MeasuredIC: fwMaxIC, MeasuredMA: fwMaxMA},
		{Name: "Router", PredictedIC: srPredIC, PredictedMA: srPredMA, MeasuredIC: srAloneMaxIC, MeasuredMA: srAloneMaxMA},
		{Name: "Naive-Add", PredictedIC: fwPredIC + srPredIC, PredictedMA: fwPredMA + srPredMA, MeasuredIC: chainMaxIC, MeasuredMA: chainMaxMA},
		{Name: "Composite-Bolt", PredictedIC: compIC, PredictedMA: compMA, MeasuredIC: chainMaxIC, MeasuredMA: chainMaxMA},
	}, nil
}

func buildRouterAlone() (*nf.StaticRouter, error) {
	sr := nf.NewStaticRouter(nf.StaticRouterConfig{Ports: 4})
	if err := sr.Table.AddRoute(0xC0A80100, 24, 1); err != nil {
		return nil, err
	}
	if err := sr.Table.AddRoute(0x0A000000, 8, 2); err != nil {
		return nil, err
	}
	return sr, nil
}

// RenderTable5 prints the three contracts.
func RenderTable5(t5 *Table5) string {
	var b strings.Builder
	section := func(title string, rows [][2]string) {
		fmt.Fprintf(&b, "%s:\n", title)
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-34s %s\n", r[0], r[1])
		}
	}
	section("(a) Firewall", t5.Firewall)
	section("(b) Static Router", t5.Router)
	section("(c) Firewall+Router chain", t5.Chain)
	return b.String()
}

// RenderFigure3 prints the composition comparison.
func RenderFigure3(rows []Figure3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s\n", "NF", "Pred IC", "Meas IC", "Pred MA", "Meas MA")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12d %12d %12d %12d\n", r.Name, r.PredictedIC, r.MeasuredIC, r.PredictedMA, r.MeasuredMA)
	}
	return b.String()
}
