package experiments

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"gobolt/internal/bvm"
	"gobolt/internal/core"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// BVMRow is one bytecode roster NF's end-to-end result: contract
// generation from the compiled nfir, then an interpreter-driven replay
// classified against that contract. Unclassified must be zero — the
// bytecode frontend's acceptance bar.
type BVMRow struct {
	NF        string
	Frontend  string
	Paths     int
	GenMS     float64
	Packets   int
	Unclass   int
	MaxObsIC  uint64
	MaxPredIC string
}

// BVMBench runs every bytecode NF in the roster through the whole
// pipeline: load → verify → compile → contract → interpreter replay →
// classification.
func BVMBench(sc Scale) ([]BVMRow, error) {
	var rows []BVMRow
	for _, e := range nf.Roster() {
		if e.Provenance == "" {
			continue
		}
		unit, inst, err, ok := nf.BVMUnit(e.Name, nf.BuildParams{Capacity: sc.TableCapacity})
		if !ok {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		start := time.Now()
		ct, err := sc.Generator().Generate(inst.Prog, inst.Models)
		if err != nil {
			return nil, fmt.Errorf("%s: generate: %w", e.Name, err)
		}
		genMS := float64(time.Since(start).Microseconds()) / 1000
		cl, err := core.NewClassifier(ct)
		if err != nil {
			return nil, fmt.Errorf("%s: classifier: %w", e.Name, err)
		}

		row := BVMRow{NF: e.Name, Frontend: e.Provenance, Paths: len(ct.Paths), GenMS: genMS}
		var log core.CallLog
		core.AttachCallLog(inst.Env, &log)
		meter := perf.NewMeter(nil)
		inst.Env.Meter = meter
		pktBuf := make([]byte, nfir.MaxPacket)
		for i, p := range bvmWorkload(e.Name, sc) {
			inst.Env.ResetPacket(p.Data, p.InPort, p.Time)
			log.Reset()
			before := meter.Snapshot()
			act, err := bvm.Run(unit.BC, inst.Env)
			if err != nil {
				return nil, fmt.Errorf("%s: packet %d: %w", e.Name, i, err)
			}
			obsIC := meter.Since(before).Instructions
			if obsIC > row.MaxObsIC {
				row.MaxObsIC = obsIC
			}
			// Classify against the pre-run bytes (the NF may rewrite the
			// packet in place, e.g. decap's TTL decrement).
			n := copy(pktBuf, p.Data)
			for j := n; j < len(pktBuf); j++ {
				pktBuf[j] = 0
			}
			obs := &core.PacketObservation{
				Pkt: pktBuf, InPort: p.InPort, Time: p.Time,
				PktLen: uint64(len(p.Data)), Action: act.Kind, Calls: log.Records(),
			}
			pc, ok := cl.Classify(obs)
			if !ok {
				row.Unclass++
			} else if row.MaxPredIC == "" || pc.Cost[perf.Instructions].String() > row.MaxPredIC {
				row.MaxPredIC = pc.Cost[perf.Instructions].String()
			}
			row.Packets++
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// bvmWorkload builds a branch-covering workload for one bytecode NF.
func bvmWorkload(name string, sc Scale) []traffic.Packet {
	n := sc.Packets
	if n <= 0 {
		n = 1000
	}
	switch name {
	case "bvm-decap":
		endpoint := uint32(0x0A636363)
		innerDsts := []uint32{0x0A010101, 0xC0A80505, 0xAC10FF01, 0x08080808}
		var pkts []traffic.Packet
		now := uint64(1_000)
		for i := 0; i < n; i++ {
			b := make([]byte, 64)
			b[12], b[13] = 0x08, 0x00
			b[14] = 0x45
			b[22] = 64
			b[23] = 4
			binary.BigEndian.PutUint32(b[30:], endpoint)
			b[34] = 0x45
			b[42] = byte(1 + i%8)
			binary.BigEndian.PutUint32(b[50:], innerDsts[i%len(innerDsts)])
			switch i % 17 { // sprinkle the drop branches in
			case 5:
				b[23] = 17 // not IPIP
			case 11:
				binary.BigEndian.PutUint32(b[30:], endpoint+1) // not for us
			}
			pkts = append(pkts, traffic.Packet{Data: b, Time: now, InPort: uint64(i % 4)})
			now += 1_000
		}
		return pkts
	case "bvm-acl":
		inside := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: n / 2, Flows: sc.TableCapacity / 4, StartNS: 1_000, GapNS: 1_000, Seed: 11,
		})
		var pkts []traffic.Packet
		for i, p := range inside {
			pkts = append(pkts, p)
			if i%2 == 0 { // reply direction through the pinhole
				r := append([]byte(nil), p.Data...)
				copy(r[26:30], p.Data[30:34])
				copy(r[30:34], p.Data[26:30])
				pkts = append(pkts, traffic.Packet{Data: r, Time: p.Time + 500, InPort: 1})
			}
		}
		return pkts
	case "bvm-scrub":
		// Few flows at a high rate: heavy sources cross the threshold.
		return traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: n, Flows: 3, StartNS: 1_000, GapNS: 2_000_000, Seed: 3,
		})
	default:
		return traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: n, Flows: sc.TableCapacity / 4, NewFlowEvery: 16,
			StartNS: 1_000, GapNS: 1_000, Seed: 7,
		})
	}
}

// RenderBVMBench formats the bytecode frontend results.
func RenderBVMBench(rows []BVMRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %-20s %6s %9s %9s %8s %9s\n",
		"NF", "FRONTEND", "PATHS", "GEN(ms)", "PACKETS", "UNCLASS", "maxIC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %-20s %6d %9.1f %9d %8d %9d\n",
			r.NF, r.Frontend, r.Paths, r.GenMS, r.Packets, r.Unclass, r.MaxObsIC)
	}
	return b.String()
}
