package experiments

import (
	"strings"
	"testing"
)

func TestMicrobenchRatios(t *testing.T) {
	rows, err := Microbench(4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	r1, r2, r3 := rows[0].Ratio(), rows[1].Ratio(), rows[2].Ratio()
	// §5.1: P1 within ~5% of measured; P2 ~6×; P3 ~9×.
	if r1 < 0.95 || r1 > 1.35 {
		t.Errorf("P1 ratio = %.2f, want ≈1", r1)
	}
	if r2 < 4.5 || r2 > 8 {
		t.Errorf("P2 ratio = %.2f, want ≈6", r2)
	}
	if r3 < 7 || r3 > 12 {
		t.Errorf("P3 ratio = %.2f, want ≈9", r3)
	}
	// Soundness: prediction never below measurement.
	for _, r := range rows {
		if r.Predicted < r.Measured {
			t.Errorf("%s: predicted %d < measured %d", r.Program, r.Predicted, r.Measured)
		}
	}
	out := RenderMicrobench(rows)
	if !strings.Contains(out, "P3") {
		t.Error("render missing P3")
	}
	t.Logf("\n%s", out)
}
