package distill

import (
	"context"
	"fmt"

	"gobolt/internal/dpdk"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nf"
	"gobolt/internal/par"
	"gobolt/internal/traffic"
)

// Job is one independent measurement run: an instance, its workload,
// and the runner configuration. Jobs must not share an Instance — the
// runner mutates the instance's environment and state.
type Job struct {
	Inst     *nf.Instance
	Pkts     []traffic.Packet
	Level    dpdk.AnalysisLevel
	Detailed *hwmodel.Detailed
}

// RunMany measures independent jobs concurrently on a bounded worker
// pool (parallelism 0 means one worker per CPU, 1 is serial). Each job
// gets a private Runner, and results land in job order, so RunMany with
// any parallelism returns exactly what serial Run calls would.
func RunMany(ctx context.Context, parallelism int, jobs []Job) ([][]Record, error) {
	out := make([][]Record, len(jobs))
	err := par.ForEach(ctx, par.Workers(parallelism), len(jobs), func(i int) error {
		r := &Runner{Level: jobs[i].Level, Detailed: jobs[i].Detailed}
		recs, err := r.Run(jobs[i].Inst, jobs[i].Pkts)
		if err != nil {
			return fmt.Errorf("distill: job %d: %w", i, err)
		}
		out[i] = recs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
