package distill

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobolt/internal/dpdk"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

func buildBridge(t *testing.T) *nf.Bridge {
	t.Helper()
	return nf.NewBridge(nf.BridgeConfig{
		Ports: 4, Capacity: 128, TimeoutNS: 1 << 50, GranularityNS: 1,
	})
}

func TestRunnerRecordsPerPacket(t *testing.T) {
	br := buildBridge(t)
	pkts := traffic.BridgeFrames(traffic.BridgeConfig{
		Packets: 100, MACs: 16, Ports: 4, Seed: 1, StartNS: 1_000, GapNS: 1_000,
	})
	recs, err := (&Runner{}).Run(br.Instance, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, r := range recs {
		if r.IC == 0 || r.MA == 0 {
			t.Fatalf("record %d has zero cost", i)
		}
		if r.Cycles != 0 {
			t.Fatalf("record %d has cycles without a detailed model", i)
		}
		if r.Action.Kind != nfir.ActionForward {
			t.Fatalf("record %d action %v", i, r.Action.Kind)
		}
		if _, ok := r.PCVs["t"]; !ok {
			t.Fatalf("record %d missing t PCV", i)
		}
	}
}

func TestRunnerDetailedCycles(t *testing.T) {
	br := buildBridge(t)
	pkts := traffic.BridgeFrames(traffic.BridgeConfig{
		Packets: 50, MACs: 8, Ports: 4, Seed: 2, StartNS: 1_000, GapNS: 1_000,
	})
	det := hwmodel.NewDetailed()
	recs, err := (&Runner{Detailed: det}).Run(br.Instance, pkts)
	if err != nil {
		t.Fatal(err)
	}
	var withCycles int
	for _, r := range recs {
		if r.Cycles > 0 {
			withCycles++
		}
	}
	if withCycles != len(recs) {
		t.Errorf("%d/%d records have cycles", withCycles, len(recs))
	}
	// Warm caches: later identical-shape packets should not cost more
	// than the very first (cold) one.
	if recs[len(recs)-1].Cycles > recs[0].Cycles*2 {
		t.Errorf("no warmup effect: first %d, last %d", recs[0].Cycles, recs[len(recs)-1].Cycles)
	}
}

func TestRunnerFullStackNoMbufLeak(t *testing.T) {
	br := buildBridge(t)
	pkts := traffic.BridgeFrames(traffic.BridgeConfig{
		Packets: 600, MACs: 8, BroadcastFraction: 0.3, Ports: 4, Seed: 3,
		StartNS: 1_000, GapNS: 1_000,
	})
	before := br.Stack.FreeMbufs()
	recs, err := (&Runner{Level: dpdk.FullStack}).Run(br.Instance, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if br.Stack.FreeMbufs() != before {
		t.Errorf("mbuf leak: %d → %d", before, br.Stack.FreeMbufs())
	}
	// Full-stack accounting strictly exceeds NF-only for the same load.
	br2 := buildBridge(t)
	nfOnly, err := (&Runner{}).Run(br2.Instance, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if recs[10].IC <= nfOnly[10].IC {
		t.Errorf("full-stack IC %d should exceed NF-only %d", recs[10].IC, nfOnly[10].IC)
	}
}

func TestReportHistogramAndMaxPCVs(t *testing.T) {
	rep := &Report{Records: []Record{
		{PCVs: map[string]uint64{"e": 0, "t": 1}},
		{PCVs: map[string]uint64{"e": 0, "t": 3}},
		{PCVs: map[string]uint64{"e": 2, "t": 0}},
		{PCVs: map[string]uint64{"e": 0, "t": 1}},
	}}
	bins := rep.PCVHistogram("e")
	if len(bins) != 2 || bins[0].Value != 0 || bins[0].Percent != 75 || bins[1].Value != 2 {
		t.Errorf("histogram = %+v", bins)
	}
	maxes := rep.MaxPCVs()
	if maxes["e"] != 2 || maxes["t"] != 3 {
		t.Errorf("MaxPCVs = %v", maxes)
	}
}

func TestSeriesAndStats(t *testing.T) {
	rep := &Report{Records: []Record{
		{IC: 10, MA: 1, Cycles: 100},
		{IC: 30, MA: 3, Cycles: 300},
		{IC: 20, MA: 2, Cycles: 200},
	}}
	ic := rep.Series(perf.Instructions)
	if len(ic) != 3 || ic[1] != 30 {
		t.Errorf("IC series = %v", ic)
	}
	if got := rep.Series(perf.MemAccesses); got[2] != 2 {
		t.Errorf("MA series = %v", got)
	}
	if got := rep.Series(perf.Cycles); got[0] != 100 {
		t.Errorf("cycles series = %v", got)
	}
	if Max(ic) != 30 || Mean(ic) != 20 {
		t.Errorf("Max/Mean = %d/%f", Max(ic), Mean(ic))
	}
	if Quantile(ic, 0) != 10 || Quantile(ic, 1) != 30 || Quantile(ic, 0.5) != 20 {
		t.Error("Quantile endpoints")
	}
	if Max(nil) != 0 || Mean(nil) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty-series stats")
	}
}

func TestCCDFAndCDF(t *testing.T) {
	series := []uint64{1, 1, 2, 3, 3, 3}
	ccdf := CCDF(series)
	// values 1,2,3 with P(X>1)=4/6, P(X>2)=3/6, P(X>3)=0.
	if len(ccdf) != 3 {
		t.Fatalf("ccdf = %+v", ccdf)
	}
	if ccdf[0].Value != 1 || ccdf[0].Frac != 4.0/6 {
		t.Errorf("ccdf[0] = %+v", ccdf[0])
	}
	if ccdf[2].Frac != 0 {
		t.Errorf("ccdf tail = %+v", ccdf[2])
	}
	cdf := CDF(series)
	if cdf[2].Frac != 1 {
		t.Errorf("cdf tail = %+v", cdf[2])
	}
	if CCDF(nil) != nil {
		t.Error("empty CCDF")
	}
}

// Property: CCDF is monotonically non-increasing with values sorted.
func TestCCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		series := make([]uint64, 1+rng.Intn(200))
		for i := range series {
			series[i] = uint64(rng.Intn(50))
		}
		ccdf := CCDF(series)
		for i := 1; i < len(ccdf); i++ {
			if ccdf[i].Value <= ccdf[i-1].Value || ccdf[i].Frac > ccdf[i-1].Frac {
				return false
			}
		}
		return len(ccdf) > 0 && ccdf[len(ccdf)-1].Frac == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSensitivityGrouping(t *testing.T) {
	rep := &Report{Records: []Record{
		{IC: 100, PCVs: map[string]uint64{"t": 1}},
		{IC: 150, PCVs: map[string]uint64{"t": 1}},
		{IC: 400, PCVs: map[string]uint64{"t": 5}},
	}}
	rows := rep.Sensitivity("t")
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].PCVValue != 1 || rows[0].Count != 2 || rows[0].MaxIC != 150 || rows[0].MeanIC != 125 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].PCVValue != 5 || rows[1].MaxIC != 400 {
		t.Errorf("row 1 = %+v", rows[1])
	}
}

func TestDistillEndToEnd(t *testing.T) {
	br := buildBridge(t)
	pkts := traffic.BridgeFrames(traffic.BridgeConfig{
		Packets: 200, MACs: 32, Ports: 4, Seed: 5, StartNS: 1_000, GapNS: 1_000,
	})
	rep, err := Distill(br.Instance, pkts, dpdk.NFOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 200 {
		t.Fatalf("records = %d", len(rep.Records))
	}
	bins := rep.PCVHistogram("t")
	var total float64
	for _, b := range bins {
		total += b.Percent
	}
	if total < 99.9 || total > 100.1 {
		t.Errorf("histogram percentages sum to %f", total)
	}
}
