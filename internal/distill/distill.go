// Package distill implements the production-side tooling of the paper:
// the testbed runner that measures an NF on a workload (the DUT of
// §5.1), and the BOLT Distiller (§4), which feeds traffic through the NF
// and reports the PCV values each packet induced, so operators and
// developers can bind the PCVs in a contract to realistic values.
package distill

import (
	"context"
	"fmt"
	"sort"

	"gobolt/internal/dpdk"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// Record is the measurement of one processed packet.
type Record struct {
	Action nfir.Action
	IC     uint64
	MA     uint64
	// Cycles is the detailed-model ("real hardware") cycle count; zero
	// when the runner has no cycle model attached.
	Cycles uint64
	// PCVs are the per-packet PCV observations (e, c, t, o, l, n, s, b).
	PCVs map[string]uint64
}

// Runner drives an NF instance over a workload, one packet at a time.
type Runner struct {
	// Level selects NF-only or full-stack measurement.
	Level dpdk.AnalysisLevel
	// Detailed, when set, plays the testbed's hardware: caches stay warm
	// across packets and per-packet cycles are recorded.
	Detailed *hwmodel.Detailed
	// Observer, when set, sees each packet's record the moment it is
	// measured, before the next packet runs — the online monitor's tap.
	// The record is the same value appended to the returned slice.
	Observer func(i int, pkt traffic.Packet, rec *Record)
}

// Run processes the workload through the instance's production build.
// The instance keeps its state across calls, so warmup and measurement
// phases can be separate Run invocations.
func (r *Runner) Run(inst *nf.Instance, pkts []traffic.Packet) ([]Record, error) {
	return r.RunContext(context.Background(), inst, pkts)
}

// RunContext is Run with cancellation between packets: a long replay
// stops at the next packet boundary when ctx is done, returning the
// records measured so far alongside the context's error.
func (r *Runner) RunContext(ctx context.Context, inst *nf.Instance, pkts []traffic.Packet) ([]Record, error) {
	var sink perf.TraceSink
	if r.Detailed != nil {
		sink = r.Detailed
	}
	meter := perf.NewMeter(sink)
	inst.Env.Meter = meter

	out := make([]Record, 0, len(pkts))
	for i, p := range pkts {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("distill: interrupted before packet %d: %w", i, err)
		}
		inst.Env.ResetPacket(p.Data, p.InPort, p.Time)
		before := meter.Snapshot()
		var cyclesBefore uint64
		if r.Detailed != nil {
			cyclesBefore = r.Detailed.Cycles()
		}

		var mbuf uint64
		if r.Level == dpdk.FullStack {
			var err error
			mbuf, err = inst.Stack.ChargeRx(inst.Env)
			if err != nil {
				return out, fmt.Errorf("distill: packet %d: %w", i, err)
			}
		}
		act, err := inst.Env.Run(inst.Prog)
		if err != nil {
			return out, fmt.Errorf("distill: packet %d: %w", i, err)
		}
		if r.Level == dpdk.FullStack {
			if act.Kind == nfir.ActionForward {
				inst.Stack.ChargeTx(inst.Env, mbuf)
			} else {
				inst.Stack.ChargeDrop(inst.Env, mbuf)
			}
		}

		delta := meter.Since(before)
		rec := Record{
			Action: act,
			IC:     delta.Instructions,
			MA:     delta.MemAccesses,
			PCVs:   make(map[string]uint64, len(inst.Env.PCVs())),
		}
		if r.Detailed != nil {
			rec.Cycles = r.Detailed.Cycles() - cyclesBefore
		}
		for k, v := range inst.Env.PCVs() {
			rec.PCVs[k] = v
		}
		out = append(out, rec)
		if r.Observer != nil {
			r.Observer(i, p, &out[len(out)-1])
		}
	}
	return out, nil
}

// Report is the Distiller's digest of a workload run (§4): per-PCV value
// distributions plus per-packet metric series for CCDFs and sensitivity
// analyses.
type Report struct {
	Records []Record
}

// Distill runs the workload and wraps the records in a Report.
func Distill(inst *nf.Instance, pkts []traffic.Packet, level dpdk.AnalysisLevel) (*Report, error) {
	r := &Runner{Level: level}
	recs, err := r.Run(inst, pkts)
	if err != nil {
		return nil, err
	}
	return &Report{Records: recs}, nil
}

// HistogramBin is one row of a PCV distribution (the paper's Tables 7/8:
// "Number of Expired Flows → Probability Density (%)").
type HistogramBin struct {
	Value   uint64
	Percent float64
}

// PCVHistogram computes the probability density of a PCV's per-packet
// values.
func (rp *Report) PCVHistogram(pcv string) []HistogramBin {
	counts := make(map[uint64]int)
	for _, r := range rp.Records {
		counts[r.PCVs[pcv]]++
	}
	values := make([]uint64, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	out := make([]HistogramBin, len(values))
	total := float64(len(rp.Records))
	for i, v := range values {
		out[i] = HistogramBin{Value: v, Percent: 100 * float64(counts[v]) / total}
	}
	return out
}

// MaxPCVs returns the per-PCV maxima over the run — the binding that
// turns a contract into a workload-specific bound.
func (rp *Report) MaxPCVs() map[string]uint64 {
	out := make(map[string]uint64)
	for _, r := range rp.Records {
		for k, v := range r.PCVs {
			if cur, ok := out[k]; !ok || v > cur {
				out[k] = v
			}
		}
	}
	return out
}

// Series extracts a per-packet metric series.
func (rp *Report) Series(metric perf.Metric) []uint64 {
	out := make([]uint64, len(rp.Records))
	for i, r := range rp.Records {
		switch metric {
		case perf.Instructions:
			out[i] = r.IC
		case perf.MemAccesses:
			out[i] = r.MA
		case perf.Cycles:
			out[i] = r.Cycles
		}
	}
	return out
}

// CCDFPoint is one point of a complementary CDF.
type CCDFPoint struct {
	Value uint64
	// Frac is P(X > Value).
	Frac float64
}

// CCDF computes the complementary CDF of a series (Figures 2 and 4).
func CCDF(series []uint64) []CCDFPoint {
	if len(series) == 0 {
		return nil
	}
	sorted := append([]uint64(nil), series...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []CCDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, CCDFPoint{Value: sorted[i], Frac: float64(len(sorted)-j) / n})
		i = j
	}
	return out
}

// CDF computes the CDF of a series (Figures 6 and 7).
func CDF(series []uint64) []CCDFPoint {
	ccdf := CCDF(series)
	for i := range ccdf {
		ccdf[i].Frac = 1 - ccdf[i].Frac
	}
	return ccdf
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a series.
func Quantile(series []uint64, q float64) uint64 {
	if len(series) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), series...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Max returns the maximum of a series.
func Max(series []uint64) uint64 {
	var m uint64
	for _, v := range series {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the mean of a series.
func Mean(series []uint64) float64 {
	if len(series) == 0 {
		return 0
	}
	var sum float64
	for _, v := range series {
		sum += float64(v)
	}
	return sum / float64(len(series))
}

// SensitivityRow relates a PCV value to the performance packets with
// that value experienced (the §4 sensitivity analysis and Figure 2's
// predicted-IC-vs-traversals line).
type SensitivityRow struct {
	PCVValue uint64
	Count    int
	MaxIC    uint64
	MeanIC   float64
}

// Sensitivity groups packets by a PCV's value.
func (rp *Report) Sensitivity(pcv string) []SensitivityRow {
	groups := make(map[uint64][]uint64)
	for _, r := range rp.Records {
		v := r.PCVs[pcv]
		groups[v] = append(groups[v], r.IC)
	}
	values := make([]uint64, 0, len(groups))
	for v := range groups {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	out := make([]SensitivityRow, len(values))
	for i, v := range values {
		out[i] = SensitivityRow{
			PCVValue: v,
			Count:    len(groups[v]),
			MaxIC:    Max(groups[v]),
			MeanIC:   Mean(groups[v]),
		}
	}
	return out
}
