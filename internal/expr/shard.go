package expr

// ShardPCV is the reserved PCV name for the shard dimension of a
// contract. Its value is the number of *contending* shards — S−1 when
// the NF runs sharded S ways — so that every polynomial of the form
//
//	cycles ≤ base + γ·ShardPCV·sharedMA
//
// collapses exactly to the single-core bound at S=1 (the shard
// dimension is strictly additive: binding ShardPCV to zero recovers
// today's contracts bit-for-bit). The name is reserved: data-structure
// contracts must not introduce a PCV with this name, and chain
// composition never renames it (shard-aware evaluation binds every
// occurrence to the same shard count — all stages of a chain run on the
// same cores).
const ShardPCV = "contenders"

// MaxContenders bounds ShardPCV's range: one less than the monitor's
// maximum shard count (monitor.FlowKey distributes over at most 1024
// shards; a test in internal/monitor pins the two constants together).
const MaxContenders = 1023
