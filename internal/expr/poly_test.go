package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMonoCanonical(t *testing.T) {
	if NewMono("t", "e") != NewMono("e", "t") {
		t.Error("monomials must be order independent")
	}
	if NewMono() != ConstMono {
		t.Error("empty monomial must be the constant")
	}
	if got := NewMono("e", "e"); got != Mono("e^2") {
		t.Errorf("e*e = %q, want e^2", got)
	}
	if got := NewMono("c", "e", "e"); got != Mono("c*e^2") {
		t.Errorf("c*e*e = %q, want c*e^2", got)
	}
}

func TestMonoPowersRoundTrip(t *testing.T) {
	m := NewMono("a", "b", "b", "c", "c", "c")
	pow := m.Powers()
	if pow["a"] != 1 || pow["b"] != 2 || pow["c"] != 3 {
		t.Errorf("Powers = %v", pow)
	}
	if monoFromPowers(pow) != m {
		t.Error("powers round trip failed")
	}
	if m.Degree() != 6 {
		t.Errorf("Degree = %d, want 6", m.Degree())
	}
}

func TestPolyBasics(t *testing.T) {
	p := Term(4, "l").Add(Const(5)) // the paper's lpmGet-derived 4·l+5
	if got := p.String(); got != "4·l + 5" {
		t.Errorf("String = %q, want 4·l + 5", got)
	}
	if got := p.Eval(map[string]uint64{"l": 24}); got != 101 {
		t.Errorf("Eval(l=24) = %d, want 101", got)
	}
	if got := p.Eval(map[string]uint64{"l": 32}); got != 133 {
		t.Errorf("Eval(l=32) = %d, want 133", got)
	}
	if p.Degree() != 1 || !p.IsMultilinear() {
		t.Error("4·l+5 should be degree-1 multilinear")
	}
}

func TestPolyBridgeRendering(t *testing.T) {
	// Table 4, known-source-MAC row.
	p := Term(245, "e").
		Add(Term(144, "c")).
		Add(Term(36, "t")).
		Add(Term(82, "e", "c")).
		Add(Term(19, "e", "t")).
		Add(Const(882))
	want := "144·c + 245·e + 36·t + 82·c·e + 19·e·t + 882"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	// Spot check against the paper's arithmetic: e=0,c=0,t=0 → 882.
	if got := p.Eval(map[string]uint64{"e": 0, "c": 0, "t": 0}); got != 882 {
		t.Errorf("Eval(0) = %d", got)
	}
}

func TestPolyZero(t *testing.T) {
	z := Zero()
	if !z.IsZero() || z.String() != "0" {
		t.Error("zero polynomial misbehaves")
	}
	if got := Const(0); !got.IsZero() {
		t.Error("Const(0) must be zero")
	}
	if got := Term(0, "x"); !got.IsZero() {
		t.Error("Term(0) must be zero")
	}
	if p := Var("x").Scale(0); !p.IsZero() {
		t.Error("Scale(0) must be zero")
	}
	if !z.Add(z).IsZero() || !z.Mul(Var("x")).IsZero() {
		t.Error("zero arithmetic")
	}
}

func TestPolyMul(t *testing.T) {
	// (e + 2)·(c + 3) = e·c + 3e + 2c + 6
	p := Var("e").Add(Const(2))
	q := Var("c").Add(Const(3))
	got := p.Mul(q)
	if got.Coef(NewMono("e", "c")) != 1 || got.Coef(NewMono("e")) != 3 ||
		got.Coef(NewMono("c")) != 2 || got.ConstTerm() != 6 {
		t.Errorf("Mul = %v", got)
	}
	if mv := Var("e").MulVar("e"); mv.Coef(NewMono("e", "e")) != 1 {
		t.Errorf("MulVar square = %v", mv)
	}
}

func TestPolyVars(t *testing.T) {
	p := Term(1, "t", "o").Add(Term(2, "e"))
	got := p.Vars()
	if len(got) != 3 || got[0] != "e" || got[1] != "o" || got[2] != "t" {
		t.Errorf("Vars = %v", got)
	}
}

func TestEvalPanicsOnUnbound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with unbound PCV should panic")
		}
	}()
	Var("l").Eval(map[string]uint64{})
}

func TestUpperEnvelope(t *testing.T) {
	p := Term(4, "l").Add(Const(5))
	q := Term(3, "l").Add(Const(9))
	env := UpperEnvelope(p, q)
	if env.Coef(NewMono("l")) != 4 || env.ConstTerm() != 9 {
		t.Errorf("UpperEnvelope = %v", env)
	}
}

func TestCompareAssuming(t *testing.T) {
	p := Term(4, "l").Add(Const(5))
	q := Term(4, "l").Add(Const(7))
	r := map[string]Range{"l": {0, 32}}
	if got := CompareAssuming(p, q, r); got != AlwaysLeq {
		t.Errorf("p vs q = %v, want AlwaysLeq", got)
	}
	if got := CompareAssuming(q, p, r); got != AlwaysGeq {
		t.Errorf("q vs p = %v, want AlwaysGeq", got)
	}
	if got := CompareAssuming(p, p, r); got != AlwaysEq {
		t.Errorf("p vs p = %v, want AlwaysEq", got)
	}
	// Crossing lines: 10·l vs 100 over l∈[0,32] cross at l=10.
	a, b := Term(10, "l"), Const(100)
	if got := CompareAssuming(a, b, r); got != Incomparable {
		t.Errorf("crossing = %v, want Incomparable", got)
	}
	// But over l∈[0,10] 10·l ≤ 100 everywhere.
	if got := CompareAssuming(a, b, map[string]Range{"l": {0, 10}}); got != AlwaysLeq {
		t.Errorf("bounded crossing = %v, want AlwaysLeq", got)
	}
}

func TestMaxAssuming(t *testing.T) {
	p := Term(4, "l").Add(Const(5))
	q := Term(4, "l").Add(Const(7))
	r := map[string]Range{"l": {0, 32}}
	if got := MaxAssuming(p, q, r); got.String() != q.String() {
		t.Errorf("MaxAssuming = %v, want q", got)
	}
	// Incomparable pair falls back to envelope.
	a, b := Term(10, "l"), Const(100)
	env := MaxAssuming(a, b, r)
	if env.Coef(NewMono("l")) != 10 || env.ConstTerm() != 100 {
		t.Errorf("envelope fallback = %v", env)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"4·l + 5",
		"0",
		"882",
		"144·c + 245·e + 36·t + 82·c·e + 19·e·t + 882",
		"l",
		"2·l^2 + 3",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q → %q", s, got)
		}
	}
	// ASCII '*' accepted too.
	p, err := Parse("82*c*e + 1")
	if err != nil || p.Coef(NewMono("c", "e")) != 82 {
		t.Errorf("ASCII parse failed: %v %v", p, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "+", "4·", "l·4", "x^0", "x^-1", "a + + b"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

// randPoly builds a small random polynomial from a seed.
func randPoly(r *rand.Rand) Poly {
	names := []string{"c", "e", "t", "o", "l"}
	p := Const(uint64(r.Intn(1000)))
	for i := 0; i < r.Intn(5); i++ {
		var vars []string
		for j := 0; j < 1+r.Intn(2); j++ {
			vars = append(vars, names[r.Intn(len(names))])
		}
		p = p.Add(Term(uint64(r.Intn(500)), vars...))
	}
	return p
}

func randBinding(r *rand.Rand) map[string]uint64 {
	b := make(map[string]uint64)
	for _, n := range []string{"c", "e", "t", "o", "l"} {
		b[n] = uint64(r.Intn(64))
	}
	return b
}

// Property: evaluation is a homomorphism for Add, Scale and Mul.
func TestEvalHomomorphism(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randPoly(r), randPoly(r)
		b := randBinding(r)
		k := uint64(r.Intn(16))
		if p.Add(q).Eval(b) != p.Eval(b)+q.Eval(b) {
			return false
		}
		if p.Scale(k).Eval(b) != k*p.Eval(b) {
			return false
		}
		return p.Mul(q).Eval(b) == p.Eval(b)*q.Eval(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String→Parse round trips for random polynomials.
func TestStringParseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r)
		q, err := Parse(p.String())
		if err != nil {
			return false
		}
		b := randBinding(r)
		return p.Eval(b) == q.Eval(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: UpperEnvelope dominates both arguments pointwise.
func TestUpperEnvelopeDominates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randPoly(r), randPoly(r)
		env := UpperEnvelope(p, q)
		for i := 0; i < 10; i++ {
			b := randBinding(r)
			if env.Eval(b) < p.Eval(b) || env.Eval(b) < q.Eval(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxAssuming dominates both arguments on samples inside the box.
func TestMaxAssumingDominates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randPoly(r), randPoly(r)
		ranges := map[string]Range{}
		for _, n := range []string{"c", "e", "t", "o", "l"} {
			ranges[n] = Range{0, 63}
		}
		m := MaxAssuming(p, q, ranges)
		for i := 0; i < 10; i++ {
			b := randBinding(r)
			if m.Eval(b) < p.Eval(b) || m.Eval(b) < q.Eval(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalFloat(t *testing.T) {
	p := Term(4, "l").Add(Const(5))
	got := p.EvalFloat(map[string]float64{"l": 2.5})
	if got != 15 {
		t.Errorf("EvalFloat = %v, want 15", got)
	}
}

func TestFromTermsDropsZeros(t *testing.T) {
	p := FromTerms(map[Mono]uint64{NewMono("x"): 0, ConstMono: 3})
	if len(p.Monos()) != 1 || p.ConstTerm() != 3 {
		t.Errorf("FromTerms = %v", p)
	}
	if q := FromTerms(map[Mono]uint64{NewMono("x"): 0}); !q.IsZero() {
		t.Error("all-zero FromTerms must be zero")
	}
}

func TestDerivative(t *testing.T) {
	// d/dt (245e + 36t + 19et + 882) = 36 + 19e
	p := Term(245, "e").Add(Term(36, "t")).Add(Term(19, "e", "t")).Add(Const(882))
	d := p.Derivative("t")
	if d.ConstTerm() != 36 || d.Coef(NewMono("e")) != 19 || len(d.Monos()) != 2 {
		t.Errorf("derivative = %v", d)
	}
	// d/dl (4l + 5) = 4; d/dx = 0.
	q := Term(4, "l").Add(Const(5))
	if got := q.Derivative("l"); got.ConstTerm() != 4 || len(got.Monos()) != 1 {
		t.Errorf("d/dl = %v", got)
	}
	if got := q.Derivative("x"); !got.IsZero() {
		t.Errorf("d/dx = %v", got)
	}
	// Powers: d/de (3e²) = 6e.
	sq := Term(3, "e", "e")
	if got := sq.Derivative("e"); got.Coef(NewMono("e")) != 6 {
		t.Errorf("d/de 3e² = %v", got)
	}
}

// Property: the derivative satisfies the discrete bound p(v+1) - p(v) ≥
// derivative at v for non-negative coefficients (convexity upward).
func TestDerivativeDiscreteProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r)
		b := randBinding(r)
		b2 := map[string]uint64{}
		for k, v := range b {
			b2[k] = v
		}
		b2["t"] = b["t"] + 1
		diff := p.Eval(b2) - p.Eval(b)
		return diff >= p.Derivative("t").Eval(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
