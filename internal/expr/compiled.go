package expr

import (
	"fmt"
	"sort"
)

// varPow is one variable factor of a compiled term: which slot of the
// value vector, raised to which power.
type varPow struct {
	idx int
	pow int
}

type compiledTerm struct {
	coef    uint64
	factors []varPow
}

// CompiledPoly is a Poly lowered onto a fixed variable order: evaluation
// reads a flat value vector and touches neither maps nor monomial
// strings. The online monitor compiles each contract path's bound once
// and evaluates it on every packet.
type CompiledPoly struct {
	c     uint64
	terms []compiledTerm
}

// Compile lowers the polynomial onto the variable order vars. Every
// variable the polynomial mentions must appear in vars; Eval then takes
// the variables' values in exactly this order.
func (p Poly) Compile(vars []string) (*CompiledPoly, error) {
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	cp := &CompiledPoly{}
	for _, m := range p.Monos() {
		coef := p.Coef(m)
		if m == ConstMono {
			cp.c += coef
			continue
		}
		pows := m.Powers()
		names := make([]string, 0, len(pows))
		for v := range pows {
			names = append(names, v)
		}
		sort.Strings(names)
		t := compiledTerm{coef: coef, factors: make([]varPow, 0, len(names))}
		for _, v := range names {
			i, ok := idx[v]
			if !ok {
				return nil, fmt.Errorf("expr: compile: variable %q not in the value-vector order", v)
			}
			t.factors = append(t.factors, varPow{idx: i, pow: pows[v]})
		}
		cp.terms = append(cp.terms, t)
	}
	return cp, nil
}

// Eval computes the polynomial at the value vector whose order Compile
// fixed. Arithmetic wraps exactly like Poly.Eval.
func (cp *CompiledPoly) Eval(vals []uint64) uint64 {
	total := cp.c
	for _, t := range cp.terms {
		v := t.coef
		for _, f := range t.factors {
			x := vals[f.idx]
			for k := 0; k < f.pow; k++ {
				v *= x
			}
		}
		total += v
	}
	return total
}
