// Package expr implements the algebra of performance expressions used in
// performance contracts.
//
// A contract maps an input class to a function of performance-critical
// variables (PCVs), e.g. the paper's bridge contract (Table 4):
//
//	245·e + 144·c + 36·t + 82·e·c + 19·e·t + 882
//
// These functions are polynomials with non-negative integer coefficients
// over named PCVs. The package provides construction, arithmetic,
// evaluation, legible formatting, parsing (for round-trip tests), and
// sound comparison under PCV range assumptions — the operation BOLT uses
// to coalesce execution paths into the most expensive representative.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Mono is a canonical monomial: PCV names sorted lexicographically and
// joined with '*', with powers rendered as "name^k" for k > 1. The empty
// Mono is the constant monomial.
type Mono string

// ConstMono is the monomial of the constant term.
const ConstMono Mono = ""

// NewMono builds the canonical monomial for the product of the given PCV
// names; repeat a name to raise its power ("e","e" → "e^2").
func NewMono(vars ...string) Mono {
	if len(vars) == 0 {
		return ConstMono
	}
	pow := make(map[string]int, len(vars))
	for _, v := range vars {
		pow[v]++
	}
	return monoFromPowers(pow)
}

func monoFromPowers(pow map[string]int) Mono {
	names := make([]string, 0, len(pow))
	for v, k := range pow {
		if k > 0 {
			names = append(names, v)
		}
	}
	if len(names) == 0 {
		return ConstMono
	}
	sort.Strings(names)
	var b strings.Builder
	for i, v := range names {
		if i > 0 {
			b.WriteByte('*')
		}
		b.WriteString(v)
		if k := pow[v]; k > 1 {
			b.WriteByte('^')
			b.WriteString(strconv.Itoa(k))
		}
	}
	return Mono(b.String())
}

// ParseMono validates an externally supplied monomial spelling and
// returns it as a Mono. It accepts exactly the canonical form NewMono
// produces — factors sorted lexicographically, powers > 1 rendered as
// "name^k", no duplicate factors — so the contract codec can reject
// corrupted or non-canonical stored polynomials instead of panicking in
// Powers. The empty string is the constant monomial.
func ParseMono(s string) (Mono, error) {
	if s == "" {
		return ConstMono, nil
	}
	pow := make(map[string]int)
	prev := ""
	for _, f := range strings.Split(s, "*") {
		name, k := f, 1
		if i := strings.IndexByte(f, '^'); i >= 0 {
			name = f[:i]
			var err error
			k, err = strconv.Atoi(f[i+1:])
			if err != nil || k < 2 {
				return ConstMono, fmt.Errorf("expr: malformed monomial factor %q in %q", f, s)
			}
		}
		if name == "" || strings.ContainsAny(name, "*^") {
			return ConstMono, fmt.Errorf("expr: malformed monomial factor %q in %q", f, s)
		}
		if prev != "" && name <= prev {
			return ConstMono, fmt.Errorf("expr: non-canonical monomial %q (factors unsorted or repeated)", s)
		}
		prev = name
		pow[name] = k
	}
	m := monoFromPowers(pow)
	if string(m) != s {
		return ConstMono, fmt.Errorf("expr: non-canonical monomial %q", s)
	}
	return m, nil
}

// Powers decomposes the monomial into its per-variable powers.
func (m Mono) Powers() map[string]int {
	pow := make(map[string]int)
	if m == ConstMono {
		return pow
	}
	for _, f := range strings.Split(string(m), "*") {
		name, k := f, 1
		if i := strings.IndexByte(f, '^'); i >= 0 {
			name = f[:i]
			var err error
			k, err = strconv.Atoi(f[i+1:])
			if err != nil {
				panic("expr: malformed monomial " + string(m))
			}
		}
		pow[name] += k
	}
	return pow
}

// Degree is the total degree of the monomial.
func (m Mono) Degree() int {
	d := 0
	for _, k := range m.Powers() {
		d += k
	}
	return d
}

// mul returns the product of two monomials.
func (m Mono) mul(o Mono) Mono {
	if m == ConstMono {
		return o
	}
	if o == ConstMono {
		return m
	}
	pow := m.Powers()
	for v, k := range o.Powers() {
		pow[v] += k
	}
	return monoFromPowers(pow)
}

// eval computes the monomial's value under the binding.
func (m Mono) eval(binding map[string]uint64) uint64 {
	v := uint64(1)
	for name, k := range m.Powers() {
		x, ok := binding[name]
		if !ok {
			panic("expr: unbound PCV " + name)
		}
		for i := 0; i < k; i++ {
			v *= x
		}
	}
	return v
}

// Poly is a performance expression: a polynomial over PCVs with uint64
// coefficients. The zero value is the zero polynomial. Poly values are
// immutable once shared; all operations return new polynomials.
type Poly struct {
	terms map[Mono]uint64
}

// Zero returns the zero polynomial.
func Zero() Poly { return Poly{} }

// Const returns the constant polynomial c.
func Const(c uint64) Poly {
	if c == 0 {
		return Poly{}
	}
	return Poly{terms: map[Mono]uint64{ConstMono: c}}
}

// Var returns the polynomial 1·name.
func Var(name string) Poly {
	return Poly{terms: map[Mono]uint64{NewMono(name): 1}}
}

// Term returns the polynomial coef·mono.
func Term(coef uint64, vars ...string) Poly {
	if coef == 0 {
		return Poly{}
	}
	return Poly{terms: map[Mono]uint64{NewMono(vars...): coef}}
}

// FromTerms builds a polynomial from a monomial→coefficient map; zero
// coefficients are dropped. The input map is copied.
func FromTerms(terms map[Mono]uint64) Poly {
	p := Poly{terms: make(map[Mono]uint64, len(terms))}
	for m, c := range terms {
		if c != 0 {
			p.terms[m] = c
		}
	}
	if len(p.terms) == 0 {
		return Poly{}
	}
	return p
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// Coef returns the coefficient of the given monomial (0 if absent).
func (p Poly) Coef(m Mono) uint64 { return p.terms[m] }

// ConstTerm returns the constant coefficient.
func (p Poly) ConstTerm() uint64 { return p.terms[ConstMono] }

// Monos returns the monomials with non-zero coefficients, in display order.
func (p Poly) Monos() []Mono {
	ms := make([]Mono, 0, len(p.terms))
	for m := range p.terms {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return displayLess(ms[i], ms[j]) })
	return ms
}

// Vars returns the sorted set of PCV names appearing in p.
func (p Poly) Vars() []string {
	seen := make(map[string]bool)
	for m := range p.terms {
		for v := range m.Powers() {
			seen[v] = true
		}
	}
	vars := make([]string, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// Degree returns the total degree of p (0 for constants and zero).
func (p Poly) Degree() int {
	d := 0
	for m := range p.terms {
		if md := m.Degree(); md > d {
			d = md
		}
	}
	return d
}

// IsMultilinear reports whether no PCV appears with power > 1 in any term.
// Multilinear polynomials attain their extrema over a box at its corners,
// which CompareAssuming exploits for exact comparison.
func (p Poly) IsMultilinear() bool {
	for m := range p.terms {
		for _, k := range m.Powers() {
			if k > 1 {
				return false
			}
		}
	}
	return true
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	out := make(map[Mono]uint64, len(p.terms)+len(q.terms))
	for m, c := range p.terms {
		out[m] = c
	}
	for m, c := range q.terms {
		out[m] += c
	}
	return FromTerms(out)
}

// Scale returns k·p.
func (p Poly) Scale(k uint64) Poly {
	if k == 0 {
		return Poly{}
	}
	out := make(map[Mono]uint64, len(p.terms))
	for m, c := range p.terms {
		out[m] = c * k
	}
	return FromTerms(out)
}

// Mul returns p · q.
func (p Poly) Mul(q Poly) Poly {
	out := make(map[Mono]uint64, len(p.terms)*len(q.terms))
	for m1, c1 := range p.terms {
		for m2, c2 := range q.terms {
			out[m1.mul(m2)] += c1 * c2
		}
	}
	return FromTerms(out)
}

// MulVar returns p · name, a common operation when an expert contract
// charges a per-iteration cost "per expired entry" etc.
func (p Poly) MulVar(name string) Poly { return p.Mul(Var(name)) }

// Eval computes p under the given PCV binding. It panics on unbound PCVs,
// because silently defaulting a PCV to zero hides contract-evaluation bugs.
func (p Poly) Eval(binding map[string]uint64) uint64 {
	var total uint64
	for m, c := range p.terms {
		total += c * m.eval(binding)
	}
	return total
}

// UpperEnvelope returns the per-monomial maximum of p and q. Because PCVs
// and coefficients are non-negative, the result bounds both p and q from
// above everywhere; it is the cheap sound coalescing operation used when
// no single path dominates the others.
func UpperEnvelope(p, q Poly) Poly {
	out := make(map[Mono]uint64, len(p.terms)+len(q.terms))
	for m, c := range p.terms {
		out[m] = c
	}
	for m, c := range q.terms {
		if c > out[m] {
			out[m] = c
		}
	}
	return FromTerms(out)
}

// Range bounds a PCV's value for comparison purposes.
type Range struct {
	Lo, Hi uint64
}

// Ordering is the result of comparing two polynomials over a box.
type Ordering int

const (
	// Incomparable: neither dominates over the whole box.
	Incomparable Ordering = iota
	// AlwaysLeq: p ≤ q everywhere on the box.
	AlwaysLeq
	// AlwaysGeq: p ≥ q everywhere on the box.
	AlwaysGeq
	// AlwaysEq: p = q (as polynomials restricted to the box corners).
	AlwaysEq
)

// CompareAssuming compares p and q for all PCV values within ranges.
// PCVs absent from ranges default to [0, DefaultHi].
//
// The verdict is always sound. For multilinear pairs the difference is
// multilinear, so it attains its extrema at the box corners and the
// corner check is exact. For anything else only the termwise
// coefficient comparison is used (sound because PCVs are non-negative),
// which may report Incomparable for inputs that are in fact ordered —
// the conservative direction for coalescing.
func CompareAssuming(p, q Poly, ranges map[string]Range) Ordering {
	// Termwise ordering decides any pair soundly, including
	// non-multilinear ones.
	pLeq, qLeq := termwiseLeq(p, q), termwiseLeq(q, p)
	switch {
	case pLeq && qLeq:
		return AlwaysEq
	case pLeq:
		return AlwaysLeq
	case qLeq:
		return AlwaysGeq
	}
	if !(p.IsMultilinear() && q.IsMultilinear()) {
		return Incomparable
	}
	vars := unionVars(p, q)
	if len(vars) > 16 {
		// Corner enumeration would explode; callers with that many PCVs
		// should compare term-wise instead.
		return Incomparable
	}
	points := boxPoints(vars, ranges)
	leq, geq := true, true
	for _, pt := range points {
		pv, qv := p.Eval(pt), q.Eval(pt)
		if pv > qv {
			leq = false
		}
		if pv < qv {
			geq = false
		}
	}
	switch {
	case leq && geq:
		return AlwaysEq
	case leq:
		return AlwaysLeq
	case geq:
		return AlwaysGeq
	default:
		return Incomparable
	}
}

// termwiseLeq reports whether every coefficient of p is ≤ the matching
// coefficient of q — a sound pointwise-≤ certificate for non-negative
// PCVs.
func termwiseLeq(p, q Poly) bool {
	for m, c := range p.terms {
		if c > q.terms[m] {
			return false
		}
	}
	return true
}

// DefaultHi is the upper bound assumed for PCVs without an explicit range.
const DefaultHi = 1 << 20

func unionVars(p, q Poly) []string {
	seen := make(map[string]bool)
	for _, v := range p.Vars() {
		seen[v] = true
	}
	for _, v := range q.Vars() {
		seen[v] = true
	}
	vars := make([]string, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// boxPoints enumerates the corners of the box.
func boxPoints(vars []string, ranges map[string]Range) []map[string]uint64 {
	if len(vars) == 0 {
		return []map[string]uint64{{}}
	}
	candidates := make([][]uint64, len(vars))
	for i, v := range vars {
		r, ok := ranges[v]
		if !ok {
			r = Range{0, DefaultHi}
		}
		vals := []uint64{r.Lo}
		if r.Hi != r.Lo {
			vals = append(vals, r.Hi)
		}
		candidates[i] = vals
	}
	var points []map[string]uint64
	var rec func(i int, cur map[string]uint64)
	rec = func(i int, cur map[string]uint64) {
		if i == len(vars) {
			cp := make(map[string]uint64, len(cur))
			for k, v := range cur {
				cp[k] = v
			}
			points = append(points, cp)
			return
		}
		for _, val := range candidates[i] {
			cur[vars[i]] = val
			rec(i+1, cur)
		}
	}
	rec(0, make(map[string]uint64, len(vars)))
	return points
}

// MaxAssuming returns the pointwise-larger of p and q over the box if one
// dominates, and otherwise their UpperEnvelope (sound but possibly loose).
func MaxAssuming(p, q Poly, ranges map[string]Range) Poly {
	switch CompareAssuming(p, q, ranges) {
	case AlwaysLeq, AlwaysEq:
		return q
	case AlwaysGeq:
		return p
	default:
		return UpperEnvelope(p, q)
	}
}

// displayLess orders monomials for display: non-constant terms first by
// ascending degree then lexicographic variable order, the constant last.
// This yields the paper's rendering, e.g. "4·l + 5" and
// "245·e + 144·c + 36·t + 82·e·c + 19·e·t + 882".
func displayLess(a, b Mono) bool {
	if a == ConstMono {
		return false
	}
	if b == ConstMono {
		return true
	}
	da, db := a.Degree(), b.Degree()
	if da != db {
		return da < db
	}
	// Same degree: order by the paper's convention of appearance is not
	// recoverable, so use stable lexicographic order of the canonical form.
	return a < b
}

// String renders the polynomial legibly with '·' for products, e.g.
// "4·l + 5". The zero polynomial renders as "0".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	for i, m := range p.Monos() {
		if i > 0 {
			b.WriteString(" + ")
		}
		c := p.terms[m]
		if m == ConstMono {
			b.WriteString(strconv.FormatUint(c, 10))
			continue
		}
		if c != 1 {
			b.WriteString(strconv.FormatUint(c, 10))
			b.WriteString("·")
		}
		b.WriteString(strings.ReplaceAll(string(m), "*", "·"))
	}
	return b.String()
}

// Parse parses the String rendering back into a polynomial. It accepts
// '·' or '*' as the product sign and arbitrary spacing around '+'.
func Parse(s string) (Poly, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Poly{}, fmt.Errorf("expr: empty polynomial")
	}
	if s == "0" {
		return Poly{}, nil
	}
	out := make(map[Mono]uint64)
	for _, raw := range strings.Split(s, "+") {
		term := strings.TrimSpace(raw)
		if term == "" {
			return Poly{}, fmt.Errorf("expr: empty term in %q", s)
		}
		if strings.HasPrefix(term, "·") || strings.HasSuffix(term, "·") ||
			strings.HasPrefix(term, "*") || strings.HasSuffix(term, "*") {
			return Poly{}, fmt.Errorf("expr: dangling product sign in %q", term)
		}
		coef := uint64(1)
		var vars []string
		factors := strings.FieldsFunc(term, func(r rune) bool { return r == '·' || r == '*' })
		for i, f := range factors {
			f = strings.TrimSpace(f)
			if f == "" {
				return Poly{}, fmt.Errorf("expr: empty factor in %q", term)
			}
			if c, err := strconv.ParseUint(f, 10, 64); err == nil {
				if i != 0 {
					return Poly{}, fmt.Errorf("expr: numeric factor %q must lead the term", f)
				}
				coef = c
				continue
			}
			name, k := f, 1
			if j := strings.IndexByte(f, '^'); j >= 0 {
				var err error
				k, err = strconv.Atoi(f[j+1:])
				if err != nil || k < 1 {
					return Poly{}, fmt.Errorf("expr: bad power in %q", f)
				}
				name = f[:j]
			}
			for x := 0; x < k; x++ {
				vars = append(vars, name)
			}
		}
		out[NewMono(vars...)] += coef
	}
	return FromTerms(out), nil
}

// Derivative returns ∂p/∂v, the formal derivative with respect to one
// PCV. Operators use it for sensitivity statements like Figure 2's
// "each extra traversal costs 50 instructions": the derivative of the
// class expression with respect to t.
func (p Poly) Derivative(v string) Poly {
	out := make(map[Mono]uint64)
	for m, c := range p.terms {
		pow := m.Powers()
		k, ok := pow[v]
		if !ok {
			continue
		}
		pow[v] = k - 1
		out[monoFromPowers(pow)] += c * uint64(k)
	}
	return FromTerms(out)
}

// RenameVars rewrites every PCV name through fn; chain composition uses
// it to namespace the PCVs of each NF in a composite contract.
func (p Poly) RenameVars(fn func(string) string) Poly {
	out := make(map[Mono]uint64, len(p.terms))
	for m, c := range p.terms {
		pow := m.Powers()
		renamed := make(map[string]int, len(pow))
		for v, k := range pow {
			renamed[fn(v)] += k
		}
		out[monoFromPowers(renamed)] += c
	}
	return FromTerms(out)
}

// EvalFloat computes p under a float binding; used by reports that bind
// PCVs to workload averages rather than integers.
func (p Poly) EvalFloat(binding map[string]float64) float64 {
	total := 0.0
	for m, c := range p.terms {
		v := float64(c)
		for name, k := range m.Powers() {
			x, ok := binding[name]
			if !ok {
				panic("expr: unbound PCV " + name)
			}
			v *= math.Pow(x, float64(k))
		}
		total += v
	}
	return total
}
