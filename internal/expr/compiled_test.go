package expr

import "testing"

func TestCompiledPolyMatchesEval(t *testing.T) {
	// 7 + 3e + 2et + 5c² — constants, linear, product, and power terms.
	p := Const(7).
		Add(Var("e").Scale(3)).
		Add(Var("e").MulVar("t").Scale(2)).
		Add(Var("c").MulVar("c").Scale(5))
	vars := []string{"b", "c", "e", "t"} // superset, monitor-style order
	cp, err := p.Compile(vars)
	if err != nil {
		t.Fatal(err)
	}
	cases := []map[string]uint64{
		{"b": 0, "c": 0, "e": 0, "t": 0},
		{"b": 9, "c": 1, "e": 2, "t": 3},
		{"b": 0, "c": 250, "e": 512, "t": 512},
		{"b": 1, "c": 0, "e": 1 << 30, "t": 1 << 30}, // wrap like Poly.Eval
	}
	for _, binding := range cases {
		vals := make([]uint64, len(vars))
		for i, v := range vars {
			vals[i] = binding[v]
		}
		if got, want := cp.Eval(vals), p.Eval(binding); got != want {
			t.Errorf("binding %v: compiled %d, tree %d", binding, got, want)
		}
	}
}

func TestCompileRejectsUncoveredVariable(t *testing.T) {
	p := Var("e").MulVar("t")
	if _, err := p.Compile([]string{"e"}); err == nil {
		t.Fatal("Compile accepted an order missing variable t")
	}
}
