package expr_test

import (
	"fmt"

	"gobolt/internal/expr"
)

// Performance expressions render the way the paper prints them.
func ExamplePoly_String() {
	// Table 4's known-source-MAC row.
	p := expr.Term(245, "e").
		Add(expr.Term(144, "c")).
		Add(expr.Term(36, "t")).
		Add(expr.Term(82, "e", "c")).
		Add(expr.Term(19, "e", "t")).
		Add(expr.Const(882))
	fmt.Println(p)
	// Output: 144·c + 245·e + 36·t + 82·c·e + 19·e·t + 882
}

// Binding PCVs evaluates a contract expression: the paper's §5.2
// calculation 144×5 + 50×6 + 918 = 1938… with its own numbers.
func ExamplePoly_Eval() {
	p := expr.Term(4, "l").Add(expr.Const(5))
	fmt.Println(p.Eval(map[string]uint64{"l": 24}))
	fmt.Println(p.Eval(map[string]uint64{"l": 32}))
	// Output:
	// 101
	// 133
}

// The derivative answers "what does one more traversal cost?" — the
// sensitivity statement behind Figure 2's threshold analysis.
func ExamplePoly_Derivative() {
	p := expr.Term(36, "t").Add(expr.Term(19, "e", "t")).Add(expr.Const(882))
	fmt.Println(p.Derivative("t"))
	// Output: 19·e + 36
}
