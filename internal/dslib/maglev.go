package dslib

import (
	"fmt"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/symb"
)

// MaglevRing is the consistent-hashing backend selector of the
// Maglev-like load balancer [paper ref 17], combined with the backend
// liveness tracking the LB's input classes LB3/LB4/LB5 exercise:
//
//   - pick(hash)             -> backend            (ring lookup)
//   - pick_alive(hash, now)  -> backend, found     (skip dead backends)
//   - heartbeat(idx, now)    -> ok
//   - alive(idx, now)        -> 1/0
//
// The ring is populated with Maglev's permutation-fill algorithm: each
// backend fills table slots in the order offset, offset+skip, … so that
// backends own nearly equal shares and a backend's removal only moves
// its own slots.
type MaglevRing struct {
	table    []int
	nb       int
	m        int
	hbStamp  []uint64
	hbAddr   uint64
	ringAddr uint64
	// TimeoutNS: a backend with no heartbeat for this long is dead.
	TimeoutNS uint64
}

// Maglev step costs.
var (
	maglevPick     = StepCost{ALU: 6, Mul: 1, Branch: 1, Load: 1}             // ring lookup
	maglevAliveChk = StepCost{ALU: 4, Branch: 2, Load: 1}                     // liveness check
	maglevFallStep = StepCost{ALU: 5, Branch: 2, Load: 2}                     // per fallback probe
	maglevHB       = StepCost{ALU: 6, Branch: 1, Load: 1, Store: 1, Lines: 1} // heartbeat store
)

// PCVBackendProbes is the PCV counting fallback probes over the ring
// when the primary backend is dead ("b" in reports).
const PCVBackendProbes = "b"

// NewMaglevRing builds a ring of size m (prime, per the Maglev paper)
// over nb backends, all initially alive at time 0.
func NewMaglevRing(env *nfir.Env, nb, m int, timeoutNS uint64) (*MaglevRing, error) {
	if nb <= 0 || m < nb {
		return nil, fmt.Errorf("maglev: need 0 < backends ≤ table size, got %d/%d", nb, m)
	}
	r := &MaglevRing{
		table:     make([]int, m),
		nb:        nb,
		m:         m,
		hbStamp:   make([]uint64, nb),
		TimeoutNS: timeoutNS,
		hbAddr:    env.Heap.Alloc(uint64(nb) * 8),
		ringAddr:  env.Heap.Alloc(uint64(m) * 8),
	}
	r.populate()
	return r, nil
}

// populate runs Maglev's permutation fill.
func (r *MaglevRing) populate() {
	offset := make([]int, r.nb)
	skip := make([]int, r.nb)
	nextIdx := make([]int, r.nb)
	for b := 0; b < r.nb; b++ {
		h1 := mix([]uint64{uint64(b)}, 0xa5a5a5a5)
		h2 := mix([]uint64{uint64(b)}, 0x5a5a5a5a)
		offset[b] = int(h1 % uint64(r.m))
		skip[b] = int(h2%uint64(r.m-1)) + 1
	}
	for i := range r.table {
		r.table[i] = -1
	}
	filled := 0
	for filled < r.m {
		for b := 0; b < r.nb && filled < r.m; b++ {
			c := (offset[b] + nextIdx[b]*skip[b]) % r.m
			for r.table[c] >= 0 {
				nextIdx[b]++
				c = (offset[b] + nextIdx[b]*skip[b]) % r.m
			}
			r.table[c] = b
			nextIdx[b]++
			filled++
		}
	}
}

// Backends returns the backend count.
func (r *MaglevRing) Backends() int { return r.nb }

// TableSize returns the ring size.
func (r *MaglevRing) TableSize() int { return r.m }

// Share returns how many ring slots backend b owns (for balance tests).
func (r *MaglevRing) Share(b int) int {
	n := 0
	for _, v := range r.table {
		if v == b {
			n++
		}
	}
	return n
}

// SetHeartbeat force-sets a backend's last heartbeat (state synthesis).
func (r *MaglevRing) SetHeartbeat(b int, stamp uint64) { r.hbStamp[b] = stamp }

func (r *MaglevRing) isAlive(b int, now uint64) bool {
	return r.hbStamp[b]+r.TimeoutNS > now
}

// Invoke implements nfir.ConcreteDS.
func (r *MaglevRing) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	switch method {
	case "pick":
		if len(args) != 1 {
			return nil, fmt.Errorf("maglev: pick wants (hash)")
		}
		slot := args[0] % uint64(r.m)
		charge(env, maglevPick, []uint64{r.ringAddr + slot*8}, false)
		return []uint64{uint64(r.table[slot])}, nil

	case "pick_alive":
		if len(args) != 2 {
			return nil, fmt.Errorf("maglev: pick_alive wants (hash, now)")
		}
		hash, now := args[0], args[1]
		slot := hash % uint64(r.m)
		charge(env, maglevPick, []uint64{r.ringAddr + slot*8}, false)
		b := r.table[slot]
		charge(env, maglevAliveChk, []uint64{r.hbAddr + uint64(b)*8}, true)
		if r.isAlive(b, now) {
			// direct and fallback both return (backend, 1): the branch is
			// invisible in the results, so report it explicitly.
			env.ObserveOutcome("direct")
			return []uint64{uint64(b), 1}, nil
		}
		// Fallback: probe successive ring slots for an alive backend.
		var probes uint64
		for i := uint64(1); i < uint64(r.m); i++ {
			probes++
			s := (slot + i) % uint64(r.m)
			cand := r.table[s]
			charge(env, maglevFallStep, []uint64{r.ringAddr + s*8, r.hbAddr + uint64(cand)*8}, true)
			if r.isAlive(cand, now) {
				env.ObservePCVMax(PCVBackendProbes, probes)
				env.ObserveOutcome("fallback")
				return []uint64{uint64(cand), 1}, nil
			}
		}
		env.ObservePCVMax(PCVBackendProbes, probes)
		env.ObserveOutcome("none")
		return []uint64{0, 0}, nil

	case "heartbeat":
		if len(args) != 2 {
			return nil, fmt.Errorf("maglev: heartbeat wants (idx, now)")
		}
		idx := args[0]
		if idx >= uint64(r.nb) {
			return nil, fmt.Errorf("maglev: backend %d out of range", idx)
		}
		charge(env, maglevHB, []uint64{r.hbAddr + idx*8}, false)
		r.hbStamp[idx] = args[1]
		return nil, nil

	case "alive":
		if len(args) != 2 {
			return nil, fmt.Errorf("maglev: alive wants (idx, now)")
		}
		idx := args[0]
		if idx >= uint64(r.nb) {
			return nil, fmt.Errorf("maglev: backend %d out of range", idx)
		}
		charge(env, maglevAliveChk, []uint64{r.hbAddr + idx*8}, false)
		if r.isAlive(int(idx), args[1]) {
			return []uint64{1}, nil
		}
		return []uint64{0}, nil
	default:
		return nil, fmt.Errorf("maglev: unknown method %q", method)
	}
}

// Model returns the ring's symbolic model and contract.
func (r *MaglevRing) Model() nfir.Model { return maglevModel{r: r} }

type maglevModel struct{ r *MaglevRing }

func (m maglevModel) Outcomes(method string, args []symb.Expr, fresh nfir.FreshFn) []nfir.Outcome {
	nb := uint64(m.r.nb)
	switch method {
	case "pick":
		b := fresh("backend")
		return []nfir.Outcome{{
			Label:   "ok",
			Results: []symb.Expr{b},
			Domains: map[string]symb.Domain{b.Name: {Lo: 0, Hi: nb - 1}},
			Cost:    buildCost(costTerm{maglevPick, nil}),
		}}
	case "pick_alive":
		direct := fresh("backend")
		fallback := fresh("backend")
		return []nfir.Outcome{
			{
				Label:   "direct",
				Results: []symb.Expr{direct, symb.C(1)},
				Domains: map[string]symb.Domain{direct.Name: {Lo: 0, Hi: nb - 1}},
				Cost:    buildCost(costTerm{maglevPick, nil}, costTerm{maglevAliveChk, nil}),
			},
			{
				Label:   "fallback",
				Results: []symb.Expr{fallback, symb.C(1)},
				Domains: map[string]symb.Domain{fallback.Name: {Lo: 0, Hi: nb - 1}},
				Cost: buildCost(
					costTerm{maglevPick, nil},
					costTerm{maglevAliveChk, nil},
					costTerm{maglevFallStep, []string{PCVBackendProbes}},
				),
				PCVs: []nfir.PCV{{Name: PCVBackendProbes, Range: expr.Range{Lo: 1, Hi: uint64(m.r.m) - 1}}},
			},
			{
				Label:   "none",
				Results: []symb.Expr{symb.C(0), symb.C(0)},
				Cost: buildCost(
					costTerm{maglevPick, nil},
					costTerm{maglevAliveChk, nil},
					costTerm{scaleStep(maglevFallStep, uint64(m.r.m)-1), nil},
				),
			},
		}
	case "heartbeat":
		return []nfir.Outcome{{
			Label: "ok",
			Cost:  buildCost(costTerm{maglevHB, nil}),
		}}
	case "alive":
		return []nfir.Outcome{
			{Label: "alive", Results: []symb.Expr{symb.C(1)}, Cost: buildCost(costTerm{maglevAliveChk, nil})},
			{Label: "dead", Results: []symb.Expr{symb.C(0)}, Cost: buildCost(costTerm{maglevAliveChk, nil})},
		}
	default:
		return nil
	}
}
