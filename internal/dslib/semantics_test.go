package dslib

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refEntry mirrors one table entry for the reference-model comparison.
type refEntry struct {
	val   uint64
	stamp uint64
}

// Property: the flow table behaves exactly like a reference map with
// timeout semantics, under arbitrary interleavings of put/get/peek/
// expire. This pins the functional behaviour independently of the
// performance machinery.
func TestFlowTableMatchesReferenceMap(t *testing.T) {
	const timeout = 1_000
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := newTestEnv()
		ft := NewFlowTable(env, FlowTableConfig{
			Name: "ref", Capacity: 16, KeyWords: 1,
			TimeoutNS: timeout, GranularityNS: 1,
			Costs: VigNATCosts(), Seed: uint64(seed) | 1,
		})
		ref := map[uint64]refEntry{}
		now := uint64(1)

		refExpire := func() {
			for k, e := range ref {
				if e.stamp+timeout <= now {
					delete(ref, k)
				}
			}
		}

		for op := 0; op < 400; op++ {
			now += uint64(rng.Intn(300))
			env.Time = now
			key := uint64(rng.Intn(24))
			switch rng.Intn(4) {
			case 0: // put
				res, err := ft.Invoke("put", []uint64{key, key * 3, now}, env)
				if err != nil {
					return false
				}
				_, exists := ref[key]
				switch res[0] {
				case PutStatusKnown:
					if !exists {
						return false
					}
					ref[key] = refEntry{val: key * 3, stamp: now}
				case PutStatusNew:
					if exists || len(ref) >= 16 {
						return false
					}
					ref[key] = refEntry{val: key * 3, stamp: now}
				case PutStatusFull:
					if exists || len(ref) < 16 {
						return false
					}
				default:
					return false
				}
			case 1: // get (refreshes)
				res, err := ft.Invoke("get", []uint64{key, now}, env)
				if err != nil {
					return false
				}
				e, exists := ref[key]
				if (res[1] == 1) != exists {
					return false
				}
				if exists {
					if res[0] != e.val {
						return false
					}
					ref[key] = refEntry{val: e.val, stamp: now}
				}
			case 2: // peek (no refresh)
				res, err := ft.Invoke("peek", []uint64{key}, env)
				if err != nil {
					return false
				}
				e, exists := ref[key]
				if (res[1] == 1) != exists || (exists && res[0] != e.val) {
					return false
				}
			default: // expire
				res, err := ft.Invoke("expire", []uint64{now}, env)
				if err != nil {
					return false
				}
				before := len(ref)
				refExpire()
				if res[0] != uint64(before-len(ref)) {
					return false
				}
				if ft.Count() != len(ref) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the NAT map's two sides stay consistent — every internal
// mapping is reachable by its external port with matching intInfo, ports
// are never shared, and expiry releases exactly the mapped ports.
func TestNATMapBidirectionalConsistency(t *testing.T) {
	const timeout = 1_000
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := newTestEnv()
		nm := NewNATMap(env, NATMapConfig{
			Name: "ref", Capacity: 12, TimeoutNS: timeout, GranularityNS: 1,
			Costs: VigNATCosts(), FirstPort: 100, PortCount: 12,
			Seed: uint64(seed) | 1,
		}, NewAllocatorA(env, 100, 12))

		type flow struct {
			port uint64
			info uint64
		}
		ref := map[[3]uint64]flow{}
		stamps := map[[3]uint64]uint64{}
		now := uint64(1)

		refExpire := func() {
			for k, s := range stamps {
				if s+timeout <= now {
					delete(stamps, k)
					delete(ref, k)
				}
			}
		}

		for op := 0; op < 300; op++ {
			now += uint64(rng.Intn(250))
			env.Time = now
			key := [3]uint64{uint64(rng.Intn(20)), uint64(rng.Intn(3)), 17}
			switch rng.Intn(3) {
			case 0: // add
				info := uint64(rng.Intn(1 << 20))
				res, err := nm.Invoke("add", []uint64{key[0], key[1], key[2], info, now}, env)
				if err != nil {
					return false
				}
				if res[1] == AddStatusOK {
					if fl, exists := ref[key]; exists {
						// Idempotent add: the existing mapping survives.
						if res[0] != fl.port {
							return false
						}
						stamps[key] = now
						break
					}
					// Port uniqueness across live flows.
					for _, fl := range ref {
						if fl.port == res[0] {
							return false
						}
					}
					ref[key] = flow{port: res[0], info: info}
					stamps[key] = now
				}
			case 1: // lookup both directions
				res, err := nm.Invoke("lookup_int", []uint64{key[0], key[1], key[2], now}, env)
				if err != nil {
					return false
				}
				fl, exists := ref[key]
				if (res[1] == 1) != exists {
					return false
				}
				if exists {
					if res[0] != fl.port {
						return false
					}
					stamps[key] = now
					ext, err := nm.Invoke("lookup_ext", []uint64{fl.port, now}, env)
					if err != nil || ext[1] != 1 || ext[0] != fl.info&0xffff_ffff_ffff {
						return false
					}
				}
			default: // expire
				res, err := nm.Invoke("expire", []uint64{now}, env)
				if err != nil {
					return false
				}
				before := len(ref)
				refExpire()
				if res[0] != uint64(before-len(ref)) {
					return false
				}
				if nm.Allocator().InUse() != len(ref) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
