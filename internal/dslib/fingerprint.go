package dslib

import (
	"fmt"
	"strings"

	"gobolt/internal/expr"
	"gobolt/internal/perf"
)

// This file implements nfir.Fingerprinter for every symbolic model in
// the library, enabling the core contract cache. Each fingerprint covers
// exactly the inputs its model's Outcomes reads — configuration and
// expert-contract constants, never live state or addresses — so equal
// fingerprints guarantee identical outcome sets. Bump a model's version
// tag whenever its Outcomes gains a new dependency.

// ModelFingerprint implements nfir.Fingerprinter. Outcomes depends on
// the table configuration (capacity, buckets, timeouts, rehash
// threshold, costs, value domain) and the config-derived hash cost.
func (m ftModel) ModelFingerprint() string {
	cfg := m.t.cfg
	vd := "nil"
	if cfg.ValueDomain != nil {
		vd = fmt.Sprintf("%+v", *cfg.ValueDomain)
	}
	cfg.ValueDomain = nil // a pointer would print an address
	return fmt.Sprintf("flowtable/v1 %+v valueDomain=%s hash=%+v", cfg, vd, m.t.ch.hashCost())
}

// ModelFingerprint implements nfir.Fingerprinter. Outcomes depends on
// the map configuration, the hash cost, and the port allocator's expert
// contract (its cost polynomials and PCVs).
func (m natModel) ModelFingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "natmap/v1 %+v hash=%+v alloc=%T cap=%d",
		m.n.cfg, m.n.ch.hashCost(), m.n.alloc, m.n.alloc.Capacity())
	writeCostFingerprint(&b, "allocCost", m.n.alloc.AllocCost())
	writeCostFingerprint(&b, "freeCost", m.n.alloc.FreeCost())
	for _, p := range m.n.alloc.PCVs() {
		fmt.Fprintf(&b, " pcv=%s[%d,%d]", p.Name, p.Range.Lo, p.Range.Hi)
	}
	return b.String()
}

// ModelFingerprint implements nfir.Fingerprinter. Outcomes depends only
// on the backend count and ring size.
func (m maglevModel) ModelFingerprint() string {
	return fmt.Sprintf("maglev/v1 nb=%d m=%d", m.r.nb, m.r.m)
}

// ModelFingerprint implements nfir.Fingerprinter. Outcomes depends only
// on the number of rules (the scan cost is linear in it).
func (m rulesModel) ModelFingerprint() string {
	return fmt.Sprintf("rules/v1 n=%d", len(m.r.rules))
}

// ModelFingerprint implements nfir.Fingerprinter; the model is
// configuration-free.
func (dirModel) ModelFingerprint() string { return "dir248/v1" }

// ModelFingerprint implements nfir.Fingerprinter; the model is
// configuration-free.
func (patModel) ModelFingerprint() string { return "patricia/v1" }

// ModelFingerprint implements nfir.Fingerprinter; the model is
// configuration-free.
func (optModel) ModelFingerprint() string { return "optproc/v1" }

// writeCostFingerprint renders a contract cost map in fixed metric order.
func writeCostFingerprint(b *strings.Builder, label string, cost map[perf.Metric]expr.Poly) {
	fmt.Fprintf(b, " %s{", label)
	for _, m := range perf.Metrics {
		if p, ok := cost[m]; ok {
			fmt.Fprintf(b, "%v=%s;", m, p.String())
		}
	}
	b.WriteString("}")
}
