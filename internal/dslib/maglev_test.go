package dslib

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newRing(t *testing.T, nb, m int) (*MaglevRing, func() uint64) {
	t.Helper()
	env := newTestEnv()
	r, err := NewMaglevRing(env, nb, m, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return r, func() uint64 { return env.Time }
}

func TestMaglevPopulationBalanced(t *testing.T) {
	r, _ := newRing(t, 7, 1031) // prime table size, as Maglev prescribes
	total := 0
	min, max := r.TableSize(), 0
	for b := 0; b < r.Backends(); b++ {
		s := r.Share(b)
		total += s
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if total != r.TableSize() {
		t.Fatalf("shares sum to %d, want %d", total, r.TableSize())
	}
	// Maglev guarantees near-perfect balance: max/min ≤ 2 easily.
	if max > 2*min {
		t.Errorf("imbalanced ring: min %d, max %d", min, max)
	}
}

func TestMaglevConsistency(t *testing.T) {
	// The same flow hash always maps to the same backend.
	env := newTestEnv()
	r, err := NewMaglevRing(env, 5, 503, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h := uint64(i) * 0x9E3779B97F4A7C15
		r1, _, _ := invoke(t, env, r, "pick", h)
		r2, _, _ := invoke(t, env, r, "pick", h)
		if r1[0] != r2[0] {
			t.Fatalf("pick(%d) unstable: %d vs %d", h, r1[0], r2[0])
		}
		if r1[0] >= 5 {
			t.Fatalf("backend %d out of range", r1[0])
		}
	}
}

func TestMaglevHeartbeatLiveness(t *testing.T) {
	env := newTestEnv()
	r, err := NewMaglevRing(env, 3, 97, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(5_000_000_000)
	env.Time = now
	// No heartbeats since t=0 → all dead at t=5s.
	res, _, _ := invoke(t, env, r, "alive", 0, now)
	if res[0] != 0 {
		t.Fatal("backend should be dead without heartbeats")
	}
	invoke(t, env, r, "heartbeat", 0, now)
	res, _, _ = invoke(t, env, r, "alive", 0, now+500_000_000)
	if res[0] != 1 {
		t.Fatal("backend should be alive after heartbeat")
	}
	res, _, _ = invoke(t, env, r, "alive", 0, now+2_000_000_000)
	if res[0] != 0 {
		t.Fatal("backend should expire after timeout")
	}
}

func TestMaglevPickAliveFallback(t *testing.T) {
	env := newTestEnv()
	r, err := NewMaglevRing(env, 4, 211, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(10_000_000_000)
	env.Time = now
	// All alive.
	for b := 0; b < 4; b++ {
		invoke(t, env, r, "heartbeat", uint64(b), now)
	}
	res, direct, _ := invoke(t, env, r, "pick_alive", 12345, now)
	if res[1] != 1 {
		t.Fatal("pick_alive with all alive must succeed")
	}
	primary := res[0]

	// Kill the primary: fallback must find another backend, costing more.
	r.SetHeartbeat(int(primary), 0)
	res, fb, pcvs := invoke(t, env, r, "pick_alive", 12345, now)
	if res[1] != 1 {
		t.Fatal("fallback must find an alive backend")
	}
	if res[0] == primary {
		t.Fatal("fallback returned the dead backend")
	}
	if fb.Instructions <= direct.Instructions {
		t.Errorf("fallback IC %d must exceed direct %d", fb.Instructions, direct.Instructions)
	}
	if pcvs[PCVBackendProbes] == 0 {
		t.Error("fallback must observe the probes PCV")
	}
	checkOutcome(t, r.Model(), "pick_alive", "fallback", fb, pcvs)

	// Kill everyone: outcome "none".
	for b := 0; b < 4; b++ {
		r.SetHeartbeat(b, 0)
	}
	res, none, pcvs := invoke(t, env, r, "pick_alive", 12345, now)
	if res[1] != 0 {
		t.Fatal("pick_alive with all dead must fail")
	}
	checkOutcome(t, r.Model(), "pick_alive", "none", none, pcvs)
}

func TestMaglevContractSoundnessRandom(t *testing.T) {
	env := newTestEnv()
	r, err := NewMaglevRing(env, 6, 307, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	model := r.Model()
	rng := rand.New(rand.NewSource(11))
	now := uint64(1)
	for i := 0; i < 1500; i++ {
		now += uint64(rng.Intn(100_000_000))
		env.Time = now
		switch rng.Intn(3) {
		case 0:
			_, delta, pcvs := invoke(t, env, r, "heartbeat", uint64(rng.Intn(6)), now)
			checkOutcome(t, model, "heartbeat", "ok", delta, pcvs)
		case 1:
			res, delta, pcvs := invoke(t, env, r, "pick", rng.Uint64())
			if res[0] >= 6 {
				t.Fatal("backend out of range")
			}
			checkOutcome(t, model, "pick", "ok", delta, pcvs)
		default:
			res, delta, pcvs := invoke(t, env, r, "pick_alive", rng.Uint64(), now)
			label := "none"
			if res[1] == 1 {
				if pcvs[PCVBackendProbes] > 0 {
					label = "fallback"
				} else {
					label = "direct"
				}
			}
			checkOutcome(t, model, "pick_alive", label, delta, pcvs)
		}
	}
}

func TestMaglevErrors(t *testing.T) {
	env := newTestEnv()
	if _, err := NewMaglevRing(env, 0, 10, 1); err == nil {
		t.Error("zero backends must fail")
	}
	if _, err := NewMaglevRing(env, 10, 5, 1); err == nil {
		t.Error("table smaller than backends must fail")
	}
	r, _ := NewMaglevRing(env, 2, 13, 1)
	for _, c := range []struct {
		m    string
		args []uint64
	}{
		{"pick", nil},
		{"pick_alive", []uint64{1}},
		{"heartbeat", []uint64{9, 1}},
		{"alive", []uint64{9, 1}},
		{"bogus", nil},
	} {
		if _, err := r.Invoke(c.m, c.args, env); err == nil {
			t.Errorf("%s(%v) should fail", c.m, c.args)
		}
	}
}

// Property: removing one backend only remaps flows that mapped to it
// (the consistent-hashing property, checked via ring shares).
func TestMaglevMinimalDisruptionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := newTestEnv()
		nb := 3 + rng.Intn(5)
		r, err := NewMaglevRing(env, nb, 503, 1_000_000_000)
		if err != nil {
			return false
		}
		now := uint64(10_000_000_000)
		for b := 0; b < nb; b++ {
			r.SetHeartbeat(b, now)
		}
		dead := rng.Intn(nb)
		// Flows on live backends keep their assignment when `dead` dies.
		for i := 0; i < 40; i++ {
			h := rng.Uint64()
			before, err1 := r.Invoke("pick_alive", []uint64{h, now}, env)
			if err1 != nil {
				return false
			}
			r.SetHeartbeat(dead, 0)
			after, err2 := r.Invoke("pick_alive", []uint64{h, now}, env)
			r.SetHeartbeat(dead, now)
			if err2 != nil {
				return false
			}
			if before[0] != uint64(dead) && before[0] != after[0] {
				return false // a flow on a live backend moved
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
