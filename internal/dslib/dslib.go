// Package dslib is the library of stateful NF data structures that BOLT's
// analysis builds on (paper §3.2): for every structure it provides
//
//   - a concrete implementation, instrumented to charge its exact cost to
//     the execution's Meter and to record the performance-critical
//     variables (PCVs) each call induced;
//   - a symbolic model used during symbolic execution, which replaces the
//     implementation and enumerates abstract outcomes (hit/miss,
//     inserted/full/rehash, …); and
//   - an expert-written performance contract per method and outcome —
//     polynomials over PCVs, folded into the model's outcomes.
//
// Contracts are conservative: for every execution, the metered cost is
// ≤ the contract evaluated at the observed PCVs. The deliberate gap
// (path coalescing, e.g. charging every key comparison as a full-length
// compare) reproduces the paper's ≤7% over-estimation.
//
// The structures provided are the ones the paper's four NFs need: a
// chained hash table with age-based expiry and an optional keyed-hash
// rehash defence (bridge MAC table, NAT and load-balancer flow tables),
// a DIR-24-8 two-tier LPM (DPDK's), a Patricia-trie LPM (the §2.1
// running example), two port allocators with different constant factors
// (§5.3), and a Maglev-style consistent-hash backend ring.
package dslib

import (
	"math"

	"gobolt/internal/expr"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

// Canonical PCV names, matching the paper's contracts.
const (
	PCVExpired    = "e" // entries expired by this packet
	PCVCollisions = "c" // hash collisions in one hash-table operation (max per packet)
	PCVTraversals = "t" // bucket-chain traversals in one operation (max per packet)
	PCVOccupancy  = "o" // table occupancy at rehash time
	PCVPrefixLen  = "l" // matched prefix length (LPM)
	PCVScan       = "s" // allocator scan length (allocator B)
	PCVOptions    = "n" // number of IP options processed
)

// StepCost is the instruction mix of one unit of data-structure work
// (a fixed method prologue, one chain traversal, one expired entry, …).
// It is the quantum contracts and charging share, so they cannot drift
// apart.
type StepCost struct {
	ALU    uint64
	Mul    uint64
	Branch uint64
	Load   uint64
	Store  uint64
	// Lines is the number of distinct cache lines the step's accesses
	// touch; accesses beyond the first on each line are provably L1D
	// hits in the conservative model (§3.5's spatial-locality tracking,
	// applied by the expert when writing the cycle contract). Zero means
	// "assume every access is a distinct line" (all DRAM).
	Lines uint64
}

// IC is the step's instruction count.
func (s StepCost) IC() uint64 { return s.ALU + s.Mul + s.Branch + s.Load + s.Store }

// MA is the step's memory-access count.
func (s StepCost) MA() uint64 { return s.Load + s.Store }

// ConsCycles is the step's conservative cycle cost: worst-case latency
// per compute op; one DRAM charge per distinct line, the rest provable
// L1D hits (paper §3.5).
func (s StepCost) ConsCycles() uint64 {
	dram := s.MA()
	if s.Lines > 0 && s.Lines < dram {
		dram = s.Lines
	}
	l1 := s.MA() - dram
	c := float64(s.ALU)*hwmodel.WorstALU +
		float64(s.Mul)*hwmodel.WorstMul +
		float64(s.Branch)*hwmodel.WorstBranch +
		float64(dram)*(hwmodel.MemIssue+hwmodel.LatDRAM) +
		float64(l1)*(hwmodel.MemIssue+hwmodel.LatL1)
	return uint64(math.Ceil(c))
}

// Add returns the component-wise sum.
func (s StepCost) Add(o StepCost) StepCost {
	return StepCost{
		ALU:    s.ALU + o.ALU,
		Mul:    s.Mul + o.Mul,
		Branch: s.Branch + o.Branch,
		Load:   s.Load + o.Load,
		Store:  s.Store + o.Store,
		Lines:  s.Lines + o.Lines,
	}
}

// charge meters one step. Memory operations touch the given addresses in
// order, cycling if the step has more accesses than addresses; loads come
// first, then stores. dep marks loads as pointer-chasing (dependent).
func charge(env *nfir.Env, s StepCost, addrs []uint64, dep bool) {
	m := env.Meter
	m.Exec(perf.OpALU, s.ALU)
	m.Exec(perf.OpMul, s.Mul)
	m.Exec(perf.OpBranch, s.Branch)
	ai := 0
	next := func() uint64 {
		if len(addrs) == 0 {
			return 0
		}
		a := addrs[ai%len(addrs)]
		ai++
		return a
	}
	for i := uint64(0); i < s.Load; i++ {
		m.Load(next(), 8, dep)
	}
	for i := uint64(0); i < s.Store; i++ {
		m.Store(next(), 8)
	}
}

// term builds a one-PCV contract term from a step cost: IC, MA and
// conservative cycles per unit of the PCV.
func term(s StepCost, pcvs ...string) map[perf.Metric]expr.Poly {
	return map[perf.Metric]expr.Poly{
		perf.Instructions: expr.Term(s.IC(), pcvs...),
		perf.MemAccesses:  expr.Term(s.MA(), pcvs...),
		perf.Cycles:       expr.Term(s.ConsCycles(), pcvs...),
	}
}

// addCost sums contract-cost maps metric-wise.
func addCost(dst map[perf.Metric]expr.Poly, srcs ...map[perf.Metric]expr.Poly) map[perf.Metric]expr.Poly {
	if dst == nil {
		dst = map[perf.Metric]expr.Poly{}
	}
	for _, src := range srcs {
		for m, p := range src {
			dst[m] = dst[m].Add(p)
		}
	}
	return dst
}

// ceilDiv is ⌈a/b⌉ for b > 0.
func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// costOf composes a contract cost map from (step, PCV-monomial) pairs.
type costTerm struct {
	step StepCost
	pcvs []string
}

func buildCost(terms ...costTerm) map[perf.Metric]expr.Poly {
	out := map[perf.Metric]expr.Poly{}
	for _, t := range terms {
		out = addCost(out, term(t.step, t.pcvs...))
	}
	return out
}
