package dslib

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobolt/internal/perf"
)

func TestPatriciaTable2Contract(t *testing.T) {
	// The contract must be exactly the paper's Table 2: 4·l+2 IC, l+1 MA.
	env := newTestEnv()
	p := NewPatricia(env, 0)
	outs := p.Model().Outcomes("get", nil, testFresh())
	if len(outs) != 1 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	ic := outs[0].Cost[perf.Instructions]
	ma := outs[0].Cost[perf.MemAccesses]
	if ic.String() != "4·l + 2" {
		t.Errorf("IC contract = %q, want 4·l + 2", ic.String())
	}
	if ma.String() != "l + 1" {
		t.Errorf("MA contract = %q, want l + 1", ma.String())
	}
}

func TestPatriciaLookupAndCost(t *testing.T) {
	env := newTestEnv()
	p := NewPatricia(env, 99)
	mustAdd := func(prefix uint32, length int, port uint64) {
		t.Helper()
		if err := p.AddRoute(prefix, length, port); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0x0A000000, 8, 1)  // 10.0.0.0/8 → 1
	mustAdd(0x0A010000, 16, 2) // 10.1.0.0/16 → 2
	mustAdd(0xC0A80100, 24, 3) // 192.168.1.0/24 → 3

	cases := []struct {
		ip       uint64
		port     uint64
		matchLen uint64
	}{
		{0x0A020304, 1, 8},  // 10.2.3.4 → /8 (descends 8 levels, then stops)
		{0x0A010305, 2, 16}, // 10.1.3.5 → /16
		{0xC0A80142, 3, 24}, // 192.168.1.66 → /24
		{0x08080808, 99, 0}, // 8.8.8.8 → default
	}
	for _, c := range cases {
		res, delta, pcvs := invoke(t, env, p, "get", c.ip)
		if res[0] != c.port {
			t.Errorf("get(%#x) = %d, want %d", c.ip, res[0], c.port)
		}
		l := pcvs[PCVPrefixLen]
		if l < c.matchLen {
			t.Errorf("get(%#x) depth %d, want ≥ %d", c.ip, l, c.matchLen)
		}
		// Soundness: measured ≤ 4·l+2 / l+1 at the observed depth.
		if delta.Instructions > 4*l+2 {
			t.Errorf("IC %d > 4·%d+2", delta.Instructions, l)
		}
		if delta.MemAccesses > l+1 {
			t.Errorf("MA %d > %d+1", delta.MemAccesses, l)
		}
	}
}

// Property: Patricia agrees with a brute-force longest-prefix scan.
func TestPatriciaMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := newTestEnv()
		p := NewPatricia(env, 9999)
		type route struct {
			prefix uint32
			length int
			port   uint64
		}
		var routes []route
		for i := 0; i < 20; i++ {
			length := rng.Intn(33)
			prefix := uint32(rng.Uint64())
			if length < 32 {
				prefix &= ^uint32(0) << (32 - length)
			}
			r := route{prefix, length, uint64(i + 1)}
			routes = append(routes, r)
			if err := p.AddRoute(r.prefix, r.length, r.port); err != nil {
				return false
			}
		}
		for trial := 0; trial < 30; trial++ {
			ip := uint32(rng.Uint64())
			if trial%3 == 0 && len(routes) > 0 {
				ip = routes[rng.Intn(len(routes))].prefix | uint32(rng.Intn(256))
			}
			// Brute force: longest matching route wins; later insert wins ties.
			want, bestLen := uint64(9999), -1
			for _, r := range routes {
				if r.length == 32 && ip != r.prefix {
					continue
				}
				if r.length < 32 && (ip>>(32-r.length)) != (r.prefix>>(32-r.length)) && r.length != 0 {
					continue
				}
				if r.length >= bestLen {
					if r.length > bestLen || true {
						// ties: AddRoute overwrote, so the last added wins
					}
					if r.length > bestLen {
						bestLen = r.length
						want = r.port
					} else if r.length == bestLen {
						want = r.port // last added with same prefix+len overwrites
					}
				}
			}
			res, err := p.Invoke("get", []uint64{uint64(ip)}, newTestEnv())
			if err != nil {
				return false
			}
			if res[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPatriciaBadRoute(t *testing.T) {
	env := newTestEnv()
	p := NewPatricia(env, 0)
	if err := p.AddRoute(0, 33, 1); err == nil {
		t.Error("length 33 must fail")
	}
	if err := p.AddRoute(0, -1, 1); err == nil {
		t.Error("negative length must fail")
	}
	if _, err := p.Invoke("put", []uint64{1}, env); err == nil {
		t.Error("unknown method must fail")
	}
}

func TestDir248ShortVsLong(t *testing.T) {
	env := newTestEnv()
	d := NewDir248(env, 999, 16)
	if err := d.AddRoute(0x0A000000, 8, 1); err != nil { // 10/8
		t.Fatal(err)
	}
	if err := d.AddRoute(0xC0A80180, 25, 2); err != nil { // 192.168.1.128/25
		t.Fatal(err)
	}

	// ≤24-bit match: exactly one table read (the LPM2 class).
	res, delta, _ := invoke(t, env, d, "get", 0x0A010203)
	if res[0] != 1 {
		t.Fatalf("short lookup = %d, want 1", res[0])
	}
	if delta.MemAccesses != 1 {
		t.Errorf("short lookup MA = %d, want 1", delta.MemAccesses)
	}
	shortIC := delta.Instructions

	// >24-bit match: two reads (the LPM1 class).
	res, delta, _ = invoke(t, env, d, "get", 0xC0A801FF)
	if res[0] != 2 {
		t.Fatalf("long lookup = %d, want 2", res[0])
	}
	if delta.MemAccesses != 2 {
		t.Errorf("long lookup MA = %d, want 2", delta.MemAccesses)
	}
	if delta.Instructions <= shortIC {
		t.Errorf("long lookup IC %d must exceed short %d", delta.Instructions, shortIC)
	}

	// An address inside the /24 slot but outside the /25 range falls back
	// to the covering shorter route (here: default, since only /25 set).
	res, _, _ = invoke(t, env, d, "get", 0xC0A80110)
	if res[0] != 999 {
		t.Fatalf("sub-slot miss = %d, want default", res[0])
	}
}

func TestDir248LongerPrefixWins(t *testing.T) {
	env := newTestEnv()
	d := NewDir248(env, 0, 16)
	if err := d.AddRoute(0x0A000000, 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRoute(0x0A010000, 16, 2); err != nil {
		t.Fatal(err)
	}
	// Re-adding the /8 must not clobber the /16.
	if err := d.AddRoute(0x0A000000, 8, 3); err != nil {
		t.Fatal(err)
	}
	res, _, _ := invoke(t, env, d, "get", 0x0A010101)
	if res[0] != 2 {
		t.Errorf("lookup = %d, want 2 (/16 wins)", res[0])
	}
	res, _, _ = invoke(t, env, d, "get", 0x0A020101)
	if res[0] != 3 {
		t.Errorf("lookup = %d, want 3 (updated /8)", res[0])
	}
}

// Property: DIR-24-8 agrees with the Patricia trie on random route sets.
func TestDir248MatchesPatricia(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := newTestEnv()
		d := NewDir248(env, 0, 64)
		p := NewPatricia(env, 0)
		for i := 0; i < 15; i++ {
			length := 1 + rng.Intn(32)
			prefix := uint32(rng.Uint64()) &^ (uint32(0xFFFFFFFF) >> length)
			port := uint64(i + 1)
			if err := d.AddRoute(prefix, length, uint16(port)); err != nil {
				return true // ran out of tbl8 groups: skip this case
			}
			if err := p.AddRoute(prefix, length, port); err != nil {
				return false
			}
		}
		for trial := 0; trial < 50; trial++ {
			ip := uint64(uint32(rng.Uint64()))
			rd, err1 := d.Invoke("get", []uint64{ip}, newTestEnv())
			rp, err2 := p.Invoke("get", []uint64{ip}, newTestEnv())
			if err1 != nil || err2 != nil || rd[0] != rp[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDir248ModelOutcomes(t *testing.T) {
	env := newTestEnv()
	d := NewDir248(env, 0, 4)
	outs := d.Model().Outcomes("get", nil, testFresh())
	if len(outs) != 2 || outs[0].Label != "short" || outs[1].Label != "long" {
		t.Fatalf("outcomes = %+v", outs)
	}
	sIC := outs[0].Cost[perf.Instructions].ConstTerm()
	lIC := outs[1].Cost[perf.Instructions].ConstTerm()
	if lIC <= sIC {
		t.Errorf("long class (%d) must cost more than short (%d)", lIC, sIC)
	}
	if outs[0].Cost[perf.MemAccesses].ConstTerm() != 1 ||
		outs[1].Cost[perf.MemAccesses].ConstTerm() != 2 {
		t.Error("MA contract must be 1 (short) and 2 (long)")
	}
}

func TestDir248GroupExhaustion(t *testing.T) {
	env := newTestEnv()
	d := NewDir248(env, 0, 1)
	if err := d.AddRoute(0x01000000, 25, 1); err != nil {
		t.Fatal(err)
	}
	// A second distinct /25 slot needs a second group.
	if err := d.AddRoute(0x02000000, 25, 2); err == nil {
		t.Error("expected tbl8 exhaustion")
	}
}
