package dslib

import (
	"fmt"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/symb"
)

// Patricia is the binary-trie LPM of the paper's running example (§2.1,
// Algorithm 1). Its published contract (Table 2) is
//
//	instructions: 4·l + 2      memory accesses: l + 1
//
// where l is the matched prefix length. The implementation descends one
// trie level per bit; a level costs 4 instructions and 1 memory access
// when the bit is 1 but only 3 instructions when it is 0 (the pointer
// arithmetic the paper describes compiling into conditional jumps), and
// the expert contract coalesces both into the worst case — exactly the
// §3.2 precision/legibility trade-off.
//
// IR method: get(ip) -> port.
type Patricia struct {
	root        *trieNode
	defaultPort uint64
	nodeAddrs   func() uint64
}

type trieNode struct {
	children [2]*trieNode
	port     uint64
	hasPort  bool
	addr     uint64
}

// Per-level and fixed step costs (4·l+2 IC, l+1 MA).
var (
	patriciaLevelBit1 = StepCost{ALU: 2, Branch: 1, Load: 1} // 4 IC, 1 MA
	patriciaLevelBit0 = StepCost{ALU: 1, Branch: 1, Load: 1} // 3 IC — coalesced to 4
	patriciaExit      = StepCost{ALU: 1, Load: 1}            // 2 IC, 1 MA
)

// NewPatricia builds an empty trie whose nodes draw simulated addresses
// from the environment's heap.
func NewPatricia(env *nfir.Env, defaultPort uint64) *Patricia {
	alloc := func() uint64 { return env.Heap.Alloc(64) }
	return &Patricia{
		root:        &trieNode{port: defaultPort, hasPort: true, addr: alloc()},
		defaultPort: defaultPort,
		nodeAddrs:   alloc,
	}
}

// AddRoute inserts prefix/length → port (control plane, unmetered).
func (p *Patricia) AddRoute(prefix uint32, length int, port uint64) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("patricia: prefix length %d out of range", length)
	}
	n := p.root
	for i := 0; i < length; i++ {
		bit := (prefix >> (31 - i)) & 1
		if n.children[bit] == nil {
			n.children[bit] = &trieNode{addr: p.nodeAddrs()}
		}
		n = n.children[bit]
	}
	n.port = port
	n.hasPort = true
	return nil
}

// Invoke implements nfir.ConcreteDS.
func (p *Patricia) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	if method != "get" || len(args) != 1 {
		return nil, fmt.Errorf("patricia: unknown method %q/%d", method, len(args))
	}
	ip := uint32(args[0])
	n := p.root
	port, depth := p.defaultPort, uint64(0)
	if n.hasPort {
		port = n.port
	}
	for i := 0; i < 32; i++ {
		bit := (ip >> (31 - i)) & 1
		child := n.children[bit]
		if child == nil {
			break
		}
		if bit == 1 {
			charge(env, patriciaLevelBit1, []uint64{child.addr}, true)
		} else {
			charge(env, patriciaLevelBit0, []uint64{child.addr}, true)
		}
		n = child
		depth++
		if n.hasPort {
			port = n.port
		}
	}
	charge(env, patriciaExit, []uint64{n.addr}, true)
	env.ObservePCVMax(PCVPrefixLen, depth)
	return []uint64{port}, nil
}

// Model implements the §3.3 symbolic model (Algorithm 3: return a fresh
// symbol) with the Table 2 contract attached.
func (p *Patricia) Model() nfir.Model { return patModel{} }

type patModel struct{}

func (patModel) Outcomes(method string, args []symb.Expr, fresh nfir.FreshFn) []nfir.Outcome {
	if method != "get" {
		return nil
	}
	port := fresh("lpm_port")
	cost := buildCost(
		costTerm{patriciaLevelBit1, []string{PCVPrefixLen}}, // 4·l, 1·l MA
		costTerm{patriciaExit, nil},                         // +2, +1 MA
	)
	return []nfir.Outcome{{
		Label:   "ok",
		Results: []symb.Expr{port},
		Domains: map[string]symb.Domain{port.Name: {Lo: 0, Hi: 255}},
		Cost:    cost,
		PCVs:    []nfir.PCV{{Name: PCVPrefixLen, Range: expr.Range{Lo: 0, Hi: 32}}},
	}}
}
