package dslib

import "gobolt/internal/nfir"

// Sharability descriptions for the library's symbolic models
// (nfir.SharabilityModel): how each method addresses its structure's
// state, feeding the shard dimension of generated contracts (see
// internal/core/shard.go). The descriptions mirror the concrete
// implementations:
//
//   - keyed single-entry operations (flow-table get/put/peek, NAT
//     lookups) partition by key, so they are shard-local whenever the
//     key pins the dispatcher's flow-hash fields;
//   - expiry sweeps walk entries of every flow and mutate them;
//   - the NAT's add consults the shared external-port allocator on top
//     of the keyed entry it writes;
//   - the Maglev ring's lookup side is read-only (the table replicates
//     per core, as in the Maglev paper), while heartbeat stamps are
//     mutable cross-flow state;
//   - the routing structures and rulesets only read.

func keyArgs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// StateAccess implements nfir.SharabilityModel for the flow table.
func (m ftModel) StateAccess(method string) (nfir.StateAccess, bool) {
	kw := m.t.cfg.KeyWords
	switch method {
	case "get", "put":
		// get(key..., now) / put(key..., value, now): keyed mutators
		// (get refreshes the entry's timestamp).
		return nfir.StateAccess{Keyed: true, KeyArgs: keyArgs(kw)}, true
	case "peek":
		// peek(key...): keyed, does not touch timestamps.
		return nfir.StateAccess{Keyed: true, KeyArgs: keyArgs(kw), ReadOnly: true}, true
	case "expire":
		return nfir.StateAccess{Reason: "expiry sweep over cross-flow state"}, true
	}
	return nfir.StateAccess{}, false
}

// StateAccess implements nfir.SharabilityModel for the NAT map.
func (m natModel) StateAccess(method string) (nfir.StateAccess, bool) {
	switch method {
	case "lookup_int":
		// lookup_int(k1, k2, proto, now)
		return nfir.StateAccess{Keyed: true, KeyArgs: []int{0, 1, 2}}, true
	case "lookup_ext":
		// lookup_ext(extPort, now): keyed by the allocated external
		// port, which carries no relation to the packet's hash fields.
		return nfir.StateAccess{Keyed: true, KeyArgs: []int{0},
			Reason: "keyed by the allocated external port, not the flow-hash fields"}, true
	case "add":
		return nfir.StateAccess{Keyed: true, KeyArgs: []int{0, 1, 2}, Shared: true,
			Reason: "allocates from the shared external-port pool"}, true
	case "expire":
		return nfir.StateAccess{Reason: "expiry sweep over cross-flow state"}, true
	}
	return nfir.StateAccess{}, false
}

// StateAccess implements nfir.SharabilityModel for the Maglev ring.
func (m maglevModel) StateAccess(method string) (nfir.StateAccess, bool) {
	switch method {
	case "pick", "pick_alive", "alive":
		return nfir.StateAccess{ReadOnly: true,
			Reason: "the lookup ring replicates per core"}, true
	case "heartbeat":
		return nfir.StateAccess{
			Reason: "backend liveness stamps are mutable cross-flow state"}, true
	}
	return nfir.StateAccess{}, false
}

// StateAccess implements nfir.SharabilityModel for the directory trie.
func (dirModel) StateAccess(method string) (nfir.StateAccess, bool) {
	if method != "get" {
		return nfir.StateAccess{}, false
	}
	return nfir.StateAccess{ReadOnly: true, Reason: "the routing table replicates per core"}, true
}

// StateAccess implements nfir.SharabilityModel for the Patricia trie.
func (patModel) StateAccess(method string) (nfir.StateAccess, bool) {
	if method != "get" {
		return nfir.StateAccess{}, false
	}
	return nfir.StateAccess{ReadOnly: true, Reason: "the routing table replicates per core"}, true
}

// StateAccess implements nfir.SharabilityModel for the rule set.
func (m rulesModel) StateAccess(method string) (nfir.StateAccess, bool) {
	if method != "match" {
		return nfir.StateAccess{}, false
	}
	return nfir.StateAccess{ReadOnly: true, Reason: "the ruleset replicates per core"}, true
}

// StateAccess implements nfir.SharabilityModel for the optimised
// processor, which keeps no per-flow state at all.
func (optModel) StateAccess(method string) (nfir.StateAccess, bool) {
	if method != "process" {
		return nfir.StateAccess{}, false
	}
	return nfir.StateAccess{ReadOnly: true, Reason: "stateless per-packet processing"}, true
}
