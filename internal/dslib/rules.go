package dslib

import (
	"fmt"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/symb"
)

// RuleSet is the firewall's 5-tuple rule table (§5.2's firewall NF): a
// linear scan over mask/value rules with an accept/deny verdict. The
// expert contract coalesces the scan to its full length, so both
// outcomes cost the same constant — matching the shape of the paper's
// Table 5a, where the firewall's cost per class is a constant.
//
// IR method: match(src, dst, sport, dport, proto) -> action (1 accept,
// 0 deny).
type RuleSet struct {
	rules []Rule
	addr  uint64
	deflt uint64
}

// Rule matches masked fields; Action 1 accepts, 0 denies.
type Rule struct {
	SrcMask, SrcVal uint64
	DstMask, DstVal uint64
	ProtoVal        uint64 // 0 = any
	Action          uint64
}

var (
	ruleStep     = StepCost{ALU: 22, Branch: 5, Load: 6, Lines: 1} // per rule
	ruleFixed    = StepCost{ALU: 20, Branch: 4, Load: 4, Lines: 2} // prologue + verdict
	ruleStepSave = StepCost{ALU: 6, Load: 2}                       // early field mismatch
)

// NewRuleSet builds a rule table; the default action applies when no
// rule matches.
func NewRuleSet(env *nfir.Env, rules []Rule, defaultAction uint64) *RuleSet {
	return &RuleSet{
		rules: rules,
		addr:  env.Heap.Alloc(uint64(len(rules)+1) * 64),
		deflt: defaultAction,
	}
}

// Invoke implements nfir.ConcreteDS.
func (r *RuleSet) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	if method != "match" || len(args) != 5 {
		return nil, fmt.Errorf("ruleset: unknown method %q/%d", method, len(args))
	}
	src, dst, proto := args[0], args[1], args[4]
	charge(env, ruleFixed, []uint64{r.addr}, false)
	action := r.deflt
	for i, rule := range r.rules {
		ra := r.addr + uint64(i+1)*64
		if src&rule.SrcMask != rule.SrcVal {
			charge(env, subStep(ruleStep, ruleStepSave), []uint64{ra}, false)
			continue
		}
		charge(env, ruleStep, []uint64{ra}, false)
		if dst&rule.DstMask != rule.DstVal {
			continue
		}
		if rule.ProtoVal != 0 && rule.ProtoVal != proto {
			continue
		}
		action = rule.Action
		break
	}
	return []uint64{action}, nil
}

// Model returns the accept/deny model with the coalesced full-scan
// contract.
func (r *RuleSet) Model() nfir.Model { return rulesModel{r: r} }

type rulesModel struct{ r *RuleSet }

func (m rulesModel) Outcomes(method string, args []symb.Expr, fresh nfir.FreshFn) []nfir.Outcome {
	if method != "match" {
		return nil
	}
	cost := buildCost(
		costTerm{ruleFixed, nil},
		costTerm{scaleStep(ruleStep, uint64(len(m.r.rules))), nil},
	)
	return []nfir.Outcome{
		{Label: "accept", Results: []symb.Expr{symb.C(1)}, Cost: cost},
		{Label: "deny", Results: []symb.Expr{symb.C(0)}, Cost: cost},
	}
}

// OptionProcessor implements the §5.2 static router's IP-option
// handling: it walks the options area of the current packet and fills
// timestamp-option slots (RFC 781), the operation whose cost the paper
// summarises as 79·n + 646 (Table 5b). The per-option coefficient here
// is exactly 79; n is the PCV counting processed 4-byte option slots.
//
// IR method: process(ihl) -> nOptions. The method reads and writes the
// packet buffer through the environment.
type OptionProcessor struct{}

var (
	optPerSlot  = StepCost{ALU: 60, Branch: 7, Load: 8, Store: 4, Lines: 1} // 79·n
	optFixed    = StepCost{ALU: 24, Branch: 6, Load: 5, Lines: 2}           // options-present prologue
	optSlotSave = StepCost{ALU: 10, Store: 4}                               // non-timestamp slot: no write-back
)

// MaxIPOptions bounds the option slots ((15-5)*4 bytes / 4 per slot).
const MaxIPOptions = 10

// ipHeaderOff is the IPv4 header offset within the frame.
const ipHeaderOff = 14

// Invoke implements nfir.ConcreteDS.
func (OptionProcessor) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	if method != "process" || len(args) != 1 {
		return nil, fmt.Errorf("optproc: unknown method %q/%d", method, len(args))
	}
	ihl := args[0]
	if ihl <= 5 {
		// No options: free at this level (the caller's branch covers it).
		env.ObservePCV(PCVOptions, 0)
		return []uint64{0}, nil
	}
	if ihl > 15 {
		ihl = 15
	}
	charge(env, optFixed, []uint64{env.PktAddr + ipHeaderOff}, false)
	optBytes := (ihl - 5) * 4
	var n uint64
	for off := uint64(0); off+4 <= optBytes; off += 4 {
		p := ipHeaderOff + 20 + off
		slotAddr := env.PktAddr + p
		n++
		if env.Pkt[p] == 68 { // timestamp option: fill a slot
			charge(env, optPerSlot, []uint64{slotAddr}, false)
			env.Pkt[p+2] = byte(env.Time) // a stand-in timestamp byte
		} else {
			charge(env, subStep(optPerSlot, optSlotSave), []uint64{slotAddr}, false)
		}
	}
	env.ObservePCV(PCVOptions, n)
	return []uint64{n}, nil
}

// Model returns the two-outcome model: "none" (ihl = 5) and "options"
// (ihl > 5, cost 79·n + fixed over the PCV n).
func (OptionProcessor) Model() nfir.Model { return optModel{} }

type optModel struct{}

func (optModel) Outcomes(method string, args []symb.Expr, fresh nfir.FreshFn) []nfir.Outcome {
	if method != "process" {
		return nil
	}
	var ihl symb.Expr = symb.C(5)
	if len(args) > 0 {
		ihl = args[0]
	}
	n := fresh("nopts")
	return []nfir.Outcome{
		{
			Label:       "none",
			Results:     []symb.Expr{symb.C(0)},
			Constraints: []symb.Expr{symb.B(symb.Ule, ihl, symb.C(5))},
			Cost:        buildCost(),
		},
		{
			Label:       "options",
			Results:     []symb.Expr{n},
			Constraints: []symb.Expr{symb.B(symb.Ugt, ihl, symb.C(5))},
			Domains:     map[string]symb.Domain{n.Name: {Lo: 1, Hi: MaxIPOptions}},
			Cost: buildCost(
				costTerm{optFixed, nil},
				costTerm{optPerSlot, []string{PCVOptions}},
			),
			PCVs: []nfir.PCV{{Name: PCVOptions, Range: expr.Range{Lo: 1, Hi: MaxIPOptions}}},
		},
	}
}
