package dslib

import (
	"gobolt/internal/nfir"
)

// chainCosts parameterises the metered cost of one bucket-chain walk; the
// same quanta appear as the PCV coefficients of the owning structure's
// contract, so implementation and contract cannot drift apart.
type chainCosts struct {
	// Step is the full cost of inspecting one chain entry, including a
	// complete key comparison (the contract's per-traversal coefficient).
	Step StepCost
	// ShortSave is what the implementation saves when the 16-bit tag
	// already differs and the full key comparison is skipped. The
	// contract coalesces this away (paper §6, over-estimation source 1).
	ShortSave StepCost
	// Collision is the extra work when the tag matches but the key
	// differs (the contract's per-collision coefficient).
	Collision StepCost
}

// centry is one hash-table entry. Entries form per-bucket chains (Go
// slices standing for the linked chains, with per-entry simulated
// addresses) and one global age-ordered list for expiry.
type centry struct {
	keys  []uint64
	tag   uint16
	val   uint64
	stamp uint64
	addr  uint64

	prevAge, nextAge *centry
	bucket           int
}

// chains is a keyed chained hash index with an age list. It meters every
// inspected entry and reports the walk's traversal and collision counts,
// from which callers observe the t and c PCVs.
type chains struct {
	nbuckets    int
	hashKey     uint64
	keyLen      int
	buckets     [][]*centry
	count       int
	bucketsAddr uint64

	oldest, newest *centry
}

func newChains(env *nfir.Env, nbuckets, keyLen int, seed uint64) *chains {
	c := &chains{
		nbuckets: nbuckets,
		hashKey:  seed,
		keyLen:   keyLen,
		buckets:  make([][]*centry, nbuckets),
	}
	c.bucketsAddr = env.Heap.Alloc(uint64(nbuckets) * 8)
	return c
}

// mix is the keyed hash: splitmix64-style finalisation over the key words
// XORed with the secret. The low 16 bits are the tag; the bucket comes
// from the bits above, so tag collisions and bucket collisions are
// (mostly) independent, as in a tagged cuckoo/chained table.
func mix(keys []uint64, hashKey uint64) uint64 {
	h := hashKey
	for _, k := range keys {
		h ^= k
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

func (c *chains) locate(keys []uint64) (bucket int, tag uint16) {
	h := mix(keys, c.hashKey)
	return int((h >> 16) % uint64(c.nbuckets)), uint16(h)
}

// hashCost is the metered cost of computing the keyed hash (2 multiplies
// and a few ALU ops per key word) plus the bucket-head load.
func (c *chains) hashCost() StepCost {
	return StepCost{ALU: uint64(3 * c.keyLen), Mul: uint64(2 * c.keyLen), Load: 1}
}

// walk inspects the bucket chain for keys, charging per costs, and
// returns the matching entry (nil if absent) plus the traversal and
// collision counts. The caller observes the PCVs.
func (c *chains) walk(env *nfir.Env, keys []uint64, costs chainCosts) (e *centry, t, col uint64) {
	bucket, tag := c.locate(keys)
	charge(env, c.hashCost(), []uint64{c.bucketsAddr + uint64(bucket)*8}, false)
	var found *centry
	for _, ent := range c.buckets[bucket] {
		t++
		if ent.tag != tag {
			// Tag mismatch: the full key comparison is skipped. The
			// contract charges the full Step anyway.
			charge(env, subStep(costs.Step, costs.ShortSave), []uint64{ent.addr}, true)
			continue
		}
		charge(env, costs.Step, []uint64{ent.addr}, true)
		if keysEqual(ent.keys, keys) {
			found = ent
			break
		}
		col++
		charge(env, costs.Collision, []uint64{ent.addr}, true)
	}
	return found, t, col
}

// findEntry walks the entry's own bucket until the entry itself is found
// (a pointer-identity walk, as expiry does); it must be present.
func (c *chains) findEntry(env *nfir.Env, target *centry, costs chainCosts) (t, col uint64) {
	for _, ent := range c.buckets[target.bucket] {
		t++
		if ent == target {
			charge(env, subStep(costs.Step, costs.ShortSave), []uint64{ent.addr}, true)
			return t, col
		}
		if ent.tag == target.tag {
			col++
			charge(env, costs.Step.Add(costs.Collision), []uint64{ent.addr}, true)
		} else {
			charge(env, subStep(costs.Step, costs.ShortSave), []uint64{ent.addr}, true)
		}
	}
	panic("dslib: entry missing from its own bucket")
}

// insert adds a fresh entry at the chain tail and age-list tail. The walk
// cost has already been charged by the caller.
func (c *chains) insert(env *nfir.Env, keys []uint64, val, stamp uint64) *centry {
	bucket, tag := c.locate(keys)
	e := &centry{
		keys:   append([]uint64(nil), keys...),
		tag:    tag,
		val:    val,
		stamp:  stamp,
		addr:   env.Heap.Alloc(64),
		bucket: bucket,
	}
	c.buckets[bucket] = append(c.buckets[bucket], e)
	c.ageAppend(e)
	c.count++
	return e
}

// remove unlinks the entry from its bucket chain and the age list.
func (c *chains) remove(e *centry) {
	chain := c.buckets[e.bucket]
	for i, ent := range chain {
		if ent == e {
			c.buckets[e.bucket] = append(chain[:i], chain[i+1:]...)
			break
		}
	}
	c.ageRemove(e)
	c.count--
}

func (c *chains) ageAppend(e *centry) {
	e.prevAge, e.nextAge = c.newest, nil
	if c.newest != nil {
		c.newest.nextAge = e
	}
	c.newest = e
	if c.oldest == nil {
		c.oldest = e
	}
}

func (c *chains) ageRemove(e *centry) {
	if e.prevAge != nil {
		e.prevAge.nextAge = e.nextAge
	} else {
		c.oldest = e.nextAge
	}
	if e.nextAge != nil {
		e.nextAge.prevAge = e.prevAge
	} else {
		c.newest = e.prevAge
	}
	e.prevAge, e.nextAge = nil, nil
}

// refresh moves the entry to the age-list tail with a new stamp.
func (c *chains) refresh(e *centry, stamp uint64) {
	c.ageRemove(e)
	e.stamp = stamp
	c.ageAppend(e)
}

// rekey rebuilds every bucket under a new hash secret, returning the
// per-entry mean insertion traversal, rounded up (for the t·o contract
// term: the total re-insert walk cost is exactly occupancy·mean).
func (c *chains) rekey(env *nfir.Env, newKey uint64, perEntry StepCost, perStep StepCost) uint64 {
	c.hashKey = newKey
	old := c.buckets
	c.buckets = make([][]*centry, c.nbuckets)
	var sum, n uint64
	for _, chain := range old {
		for _, e := range chain {
			bucket, tag := c.locate(e.keys)
			e.bucket, e.tag = bucket, tag
			c.buckets[bucket] = append(c.buckets[bucket], e)
			pos := uint64(len(c.buckets[bucket]))
			charge(env, perEntry, []uint64{e.addr}, false)
			for i := uint64(0); i < pos; i++ {
				charge(env, perStep, []uint64{e.addr}, true)
			}
			sum += pos
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return (sum + n - 1) / n
}

func keysEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subStep subtracts the savings from a full step, clamping at zero.
func subStep(full, save StepCost) StepCost {
	sub := func(a, b uint64) uint64 {
		if b > a {
			return 0
		}
		return a - b
	}
	return StepCost{
		ALU:    sub(full.ALU, save.ALU),
		Mul:    sub(full.Mul, save.Mul),
		Branch: sub(full.Branch, save.Branch),
		Load:   sub(full.Load, save.Load),
		Store:  sub(full.Store, save.Store),
		Lines:  full.Lines,
	}
}
