package dslib

import (
	"math/rand"
	"testing"

	"gobolt/internal/nfir"
)

func newNAT(env *nfir.Env, alloc PortAllocator, gran uint64) *NATMap {
	return NewNATMap(env, NATMapConfig{
		Name:          "nat",
		Capacity:      64,
		TimeoutNS:     1_000_000_000,
		GranularityNS: gran,
		Costs:         VigNATCosts(),
		FirstPort:     1024,
		PortCount:     64,
	}, alloc)
}

func TestNATMapTranslationLifecycle(t *testing.T) {
	env := newTestEnv()
	nm := newNAT(env, NewAllocatorA(env, 1024, 64), 1_000_000)
	now := uint64(1_000_000)
	env.Time = now

	// New internal flow: allocates a port.
	res, _, _ := invoke(t, env, nm, "add", 0xAAAA, 0xBBBB, 17, 0x0A00000150D0, now)
	if res[1] != AddStatusOK {
		t.Fatalf("add status = %d", res[1])
	}
	port := res[0]
	if port < 1024 || port >= 1088 {
		t.Fatalf("port %d out of range", port)
	}

	// Internal lookup finds the mapping.
	res, _, _ = invoke(t, env, nm, "lookup_int", 0xAAAA, 0xBBBB, 17, now)
	if res[1] != 1 || res[0] != port {
		t.Fatalf("lookup_int = %v, want port %d", res, port)
	}

	// External lookup by port returns the internal info (low 48 bits).
	res, _, _ = invoke(t, env, nm, "lookup_ext", port, now)
	if res[1] != 1 || res[0] != 0x0A00000150D0&uint64(0xffff_ffff_ffff) {
		t.Fatalf("lookup_ext = %v", res)
	}

	// Unknown external port: miss (the NAT4 drop class).
	res, _, _ = invoke(t, env, nm, "lookup_ext", port+1, now)
	if res[1] != 0 {
		t.Fatalf("foreign port lookup = %v", res)
	}

	// Expiry frees the port back to the allocator.
	res, _, _ = invoke(t, env, nm, "expire", now+2_000_000_000)
	if res[0] != 1 {
		t.Fatalf("expire = %d", res[0])
	}
	if nm.Allocator().InUse() != 0 {
		t.Errorf("port not freed: in use %d", nm.Allocator().InUse())
	}
	res, _, _ = invoke(t, env, nm, "lookup_int", 0xAAAA, 0xBBBB, 17, now+2_000_000_000)
	if res[1] != 0 {
		t.Error("expired flow still found")
	}
}

func TestNATMapPortExhaustion(t *testing.T) {
	env := newTestEnv()
	// 4 ports only.
	nm := NewNATMap(env, NATMapConfig{
		Name: "nat", Capacity: 64, TimeoutNS: 1_000_000_000,
		Costs: VigNATCosts(), FirstPort: 2000, PortCount: 4,
	}, NewAllocatorA(env, 2000, 4))
	now := uint64(1)
	for i := uint64(0); i < 4; i++ {
		res, _, _ := invoke(t, env, nm, "add", i, i, 6, i, now)
		if res[1] != AddStatusOK {
			t.Fatalf("add %d = %v", i, res)
		}
	}
	res, _, _ := invoke(t, env, nm, "add", 99, 99, 6, 99, now)
	if res[1] != AddStatusFull {
		t.Fatalf("exhausted add = %v", res)
	}
}

func TestNATMapCapacityFull(t *testing.T) {
	env := newTestEnv()
	nm := NewNATMap(env, NATMapConfig{
		Name: "nat", Capacity: 2, TimeoutNS: 1_000_000_000,
		Costs: VigNATCosts(), FirstPort: 2000, PortCount: 64,
	}, NewAllocatorA(env, 2000, 64))
	now := uint64(1)
	invoke(t, env, nm, "add", 1, 1, 6, 1, now)
	invoke(t, env, nm, "add", 2, 2, 6, 2, now)
	res, _, _ := invoke(t, env, nm, "add", 3, 3, 6, 3, now)
	if res[1] != AddStatusFull {
		t.Fatalf("over-capacity add = %v", res)
	}
}

func TestNATMapContractSoundnessRandom(t *testing.T) {
	for _, allocName := range []string{"A", "B"} {
		t.Run(allocName, func(t *testing.T) {
			env := newTestEnv()
			var alloc PortAllocator
			if allocName == "A" {
				alloc = NewAllocatorA(env, 1024, 64)
			} else {
				alloc = NewAllocatorB(env, 1024, 64)
			}
			nm := newNAT(env, alloc, 1_000_000)
			model := nm.Model()
			rng := rand.New(rand.NewSource(21))
			now := uint64(1)
			for i := 0; i < 2500; i++ {
				now += uint64(rng.Intn(50_000_000))
				env.Time = now
				k := uint64(rng.Intn(48))
				switch rng.Intn(4) {
				case 0:
					res, delta, pcvs := invoke(t, env, nm, "add", k, k+1, 17, k, now)
					label := "ok"
					if res[1] == AddStatusFull {
						label = "full"
					}
					checkOutcome(t, model, "add", label, delta, pcvs)
				case 1:
					res, delta, pcvs := invoke(t, env, nm, "lookup_int", k, k+1, 17, now)
					label := "miss"
					if res[1] == 1 {
						label = "hit"
					}
					checkOutcome(t, model, "lookup_int", label, delta, pcvs)
				case 2:
					res, delta, pcvs := invoke(t, env, nm, "lookup_ext", 1024+uint64(rng.Intn(64)), now)
					label := "miss"
					if res[1] == 1 {
						label = "hit"
					}
					checkOutcome(t, model, "lookup_ext", label, delta, pcvs)
				default:
					_, delta, pcvs := invoke(t, env, nm, "expire", now)
					checkOutcome(t, model, "expire", "ok", delta, pcvs)
				}
			}
		})
	}
}

func TestNATMapExpiryBatchingByGranularity(t *testing.T) {
	const sec = 1_000_000_000
	run := func(gran uint64) (maxBatch uint64) {
		env := newTestEnv()
		nm := NewNATMap(env, NATMapConfig{
			Name: "nat", Capacity: 256, TimeoutNS: 10 * sec, GranularityNS: gran,
			Costs: VigNATCosts(), FirstPort: 1024, PortCount: 256,
		}, NewAllocatorA(env, 1024, 256))
		for i := uint64(0); i < 100; i++ {
			now := sec + i*10_000_000
			invoke(t, env, nm, "add", i, i, 6, i, now)
		}
		for i := uint64(0); i < 300; i++ {
			now := 11*sec + i*10_000_000
			res, _, _ := invoke(t, env, nm, "expire", now)
			if res[0] > maxBatch {
				maxBatch = res[0]
			}
		}
		return maxBatch
	}
	if b := run(sec); b < 50 {
		t.Errorf("second granularity: max batch %d, want ≥ 50", b)
	}
	if b := run(1_000_000); b > 3 {
		t.Errorf("millisecond granularity: max batch %d, want ≤ 3", b)
	}
}

func TestNATMapPathologicalState(t *testing.T) {
	env := newTestEnv()
	nm := NewNATMap(env, NATMapConfig{
		Name: "nat", Capacity: 256, TimeoutNS: 1_000_000_000,
		Costs: VigNATCosts(), FirstPort: 1024, PortCount: 256,
	}, NewAllocatorA(env, 1024, 256))
	now := uint64(10_000_000_000)
	nm.SynthesizePathological(env, 128, now)
	if nm.Count() != 128 {
		t.Fatalf("count = %d", nm.Count())
	}
	env.Time = now
	res, delta, pcvs := invoke(t, env, nm, "expire", now)
	if res[0] != 128 {
		t.Fatalf("mass expiry = %d", res[0])
	}
	// Triangular walks: the distilled t is the per-entry mean ⌈(N+1)/2⌉.
	if pcvs[PCVTraversals] != 65 {
		t.Errorf("mean traversals = %d, want 65", pcvs[PCVTraversals])
	}
	checkOutcome(t, nm.Model(), "expire", "ok", delta, pcvs)
	if nm.Allocator().InUse() != 0 {
		t.Error("pathological expiry must free all ports")
	}
}

func TestNATMapErrors(t *testing.T) {
	env := newTestEnv()
	nm := newNAT(env, NewAllocatorA(env, 1024, 64), 1)
	for _, c := range []struct {
		m    string
		args []uint64
	}{
		{"expire", nil},
		{"lookup_int", []uint64{1, 2, 3}},
		{"lookup_ext", []uint64{1}},
		{"add", []uint64{1, 2, 3, 4}},
		{"bogus", []uint64{1}},
	} {
		if _, err := nm.Invoke(c.m, c.args, env); err == nil {
			t.Errorf("%s(%v) should fail", c.m, c.args)
		}
	}
}
