package dslib

import (
	"fmt"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// NATMap is VigNAT's stateful core [paper refs 4, 47]: a double-sided
// flow map plus a port allocator. Internal packets are matched by their
// flow 5-tuple (three key words); external packets by the allocated
// external port, which indexes a direct-mapped array. Expiring a flow
// unlinks it from both sides and returns its port to the allocator, so
// the allocator's constants surface in the e coefficient — the effect
// the §5.3 allocator-selection experiment measures.
//
// IR methods:
//
//	expire(now)                  -> expired-count
//	lookup_int(k1,k2,k3, now)    -> extPort, found    (refreshes age)
//	lookup_ext(extPort, now)     -> intInfo, found    (refreshes age)
//	add(k1,k2,k3, intInfo, now)  -> extPort, status   (0 ok, 1 full)
type NATMap struct {
	cfg    NATMapConfig
	ch     *chains
	byPort []*centry
	alloc  PortAllocator

	byPortAddr uint64
}

// Add status codes.
const (
	AddStatusOK   = 0
	AddStatusFull = 1
)

// NATMapConfig configures the NAT map.
type NATMapConfig struct {
	Name string
	// Capacity bounds the number of concurrent flows.
	Capacity int
	Buckets  int
	// TimeoutNS and GranularityNS as in FlowTableConfig; GranularityNS
	// of one second reproduces the VigNAT expiry-batching bug (§5.3).
	TimeoutNS     uint64
	GranularityNS uint64
	Seed          uint64
	Costs         FlowTableCosts
	// FirstPort and PortCount define the external port range.
	FirstPort, PortCount int
}

// Fixed costs of the direct-mapped external-side operations.
var (
	natExtHit  = StepCost{ALU: 34, Branch: 6, Load: 8, Store: 4, Lines: 3}
	natExtMiss = StepCost{ALU: 16, Branch: 4, Load: 3, Lines: 1}
)

// NewNATMap builds the map with the given allocator implementation (the
// §5.3 experiment swaps AllocatorA for AllocatorB here).
func NewNATMap(env *nfir.Env, cfg NATMapConfig, alloc PortAllocator) *NATMap {
	if cfg.Buckets == 0 {
		cfg.Buckets = cfg.Capacity
	}
	if cfg.GranularityNS == 0 {
		cfg.GranularityNS = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x243f6a8885a308d3
	}
	return &NATMap{
		cfg:        cfg,
		ch:         newChains(env, cfg.Buckets, 3, seed),
		byPort:     make([]*centry, cfg.PortCount),
		alloc:      alloc,
		byPortAddr: env.Heap.Alloc(uint64(cfg.PortCount) * 8),
	}
}

// Count returns the number of live flows.
func (n *NATMap) Count() int { return n.ch.count }

// Allocator exposes the port allocator (for experiment setup).
func (n *NATMap) Allocator() PortAllocator { return n.alloc }

func (n *NATMap) quantize(now uint64) uint64 { return now - now%n.cfg.GranularityNS }

// SynthesizePathological fills the map with flows that all collide into
// one bucket and are long expired (the NAT1 worst-case state).
func (n *NATMap) SynthesizePathological(env *nfir.Env, count int, now uint64) {
	var created []*centry
	for i := 0; i < count && n.ch.count < n.cfg.Capacity; i++ {
		port, ok := n.alloc.Alloc(nil2(env))
		if !ok {
			break
		}
		e := &centry{
			keys:   []uint64{uint64(i) + 1, uint64(i) + 2, 0},
			tag:    0,
			val:    port<<48 | uint64(i), // val packs (extPort, intInfo48)
			stamp:  0,
			addr:   env.Heap.Alloc(64),
			bucket: 0,
		}
		n.ch.buckets[0] = append(n.ch.buckets[0], e)
		created = append(created, e)
		n.ch.count++
		n.byPort[int(port)-n.cfg.FirstPort] = e
	}
	// Reversed age order forces full-chain walks per expiry (see
	// FlowTable.SynthesizePathological).
	for i := len(created) - 1; i >= 0; i-- {
		n.ch.ageAppend(created[i])
	}
}

// nil2 returns an env whose meter discards (state synthesis is free).
func nil2(env *nfir.Env) *nfir.Env {
	cp := *env
	cp.Meter = nil
	return &cp
}

// Invoke implements nfir.ConcreteDS.
func (n *NATMap) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	switch method {
	case "expire":
		if len(args) != 1 {
			return nil, fmt.Errorf("natmap: expire wants (now)")
		}
		return []uint64{n.expire(env, args[0])}, nil
	case "lookup_int":
		if len(args) != 4 {
			return nil, fmt.Errorf("natmap: lookup_int wants (k1,k2,k3, now)")
		}
		return n.lookupInt(env, args[:3], args[3]), nil
	case "lookup_ext":
		if len(args) != 2 {
			return nil, fmt.Errorf("natmap: lookup_ext wants (extPort, now)")
		}
		return n.lookupExt(env, args[0], args[1]), nil
	case "add":
		if len(args) != 5 {
			return nil, fmt.Errorf("natmap: add wants (k1,k2,k3, intInfo, now)")
		}
		return n.add(env, args[:3], args[3], args[4]), nil
	default:
		return nil, fmt.Errorf("natmap %s: unknown method %q", n.cfg.Name, method)
	}
}

func (n *NATMap) expire(env *nfir.Env, now uint64) uint64 {
	charge(env, n.cfg.Costs.ExpireCall, []uint64{n.ch.bucketsAddr}, false)
	var e uint64
	if n.cfg.TimeoutNS == 0 {
		env.ObservePCV(PCVExpired, 0)
		return 0
	}
	var sumT, sumC uint64
	for n.ch.oldest != nil && n.ch.oldest.stamp+n.cfg.TimeoutNS <= now {
		victim := n.ch.oldest
		wt, wc := n.ch.findEntry(env, victim, n.cfg.Costs.ExpireWalk)
		sumT += wt
		sumC += wc
		charge(env, n.cfg.Costs.ExpirePerEntry, []uint64{victim.addr, n.ch.bucketsAddr + uint64(victim.bucket)*8}, false)
		port := victim.val >> 48
		n.byPort[int(port)-n.cfg.FirstPort] = nil
		n.alloc.Free(env, port)
		n.ch.remove(victim)
		e++
	}
	// Per-entry means, as in FlowTable.expire: keeps e·t / e·c tight for
	// mass expiry (the paper's ≤2.4% pathological over-estimation).
	if e > 0 {
		env.ObservePCVMax(PCVTraversals, ceilDiv(sumT, e))
		env.ObservePCVMax(PCVCollisions, ceilDiv(sumC, e))
	}
	env.ObservePCV(PCVExpired, e)
	return e
}

func (n *NATMap) lookupInt(env *nfir.Env, keys []uint64, now uint64) []uint64 {
	ent, wt, wc := n.ch.walk(env, keys, n.cfg.Costs.GetWalk)
	env.ObservePCVMax(PCVTraversals, wt)
	env.ObservePCVMax(PCVCollisions, wc)
	if ent == nil {
		charge(env, n.cfg.Costs.GetMiss, []uint64{n.ch.bucketsAddr}, false)
		return []uint64{0, 0}
	}
	charge(env, n.cfg.Costs.GetHit, []uint64{ent.addr}, false)
	n.ch.refresh(ent, n.quantize(now))
	return []uint64{ent.val >> 48, 1}
}

func (n *NATMap) lookupExt(env *nfir.Env, extPort, now uint64) []uint64 {
	idx := int(extPort) - n.cfg.FirstPort
	if idx < 0 || idx >= len(n.byPort) || n.byPort[idx] == nil {
		charge(env, natExtMiss, []uint64{n.byPortAddr + uint64(maxInt(idx, 0))*8}, false)
		return []uint64{0, 0}
	}
	ent := n.byPort[idx]
	charge(env, natExtHit, []uint64{n.byPortAddr + uint64(idx)*8, ent.addr}, true)
	n.ch.refresh(ent, n.quantize(now))
	return []uint64{ent.val & 0xffff_ffff_ffff, 1}
}

func (n *NATMap) add(env *nfir.Env, keys []uint64, intInfo, now uint64) []uint64 {
	existing, wt, wc := n.ch.walk(env, keys, n.cfg.Costs.PutWalk)
	env.ObservePCVMax(PCVTraversals, wt)
	env.ObservePCVMax(PCVCollisions, wc)
	if existing != nil {
		// Idempotent add, as VigNAT's allocation path behaves: the flow
		// keeps its mapping and is refreshed. Covered by the "ok"
		// outcome's contract (which budgets for the costlier insert).
		charge(env, n.cfg.Costs.PutKnown, []uint64{existing.addr}, false)
		n.ch.refresh(existing, n.quantize(now))
		return []uint64{existing.val >> 48, AddStatusOK}
	}
	if n.ch.count >= n.cfg.Capacity {
		charge(env, n.cfg.Costs.PutFull, []uint64{n.ch.bucketsAddr}, false)
		return []uint64{0, AddStatusFull}
	}
	port, ok := n.alloc.Alloc(env)
	if !ok {
		charge(env, n.cfg.Costs.PutFull, []uint64{n.ch.bucketsAddr}, false)
		return []uint64{0, AddStatusFull}
	}
	e := n.ch.insert(env, keys, port<<48|(intInfo&0xffff_ffff_ffff), n.quantize(now))
	for i := uint64(0); i < wt; i++ {
		charge(env, n.cfg.Costs.InsertPerTraversal, []uint64{e.addr}, true)
	}
	charge(env, n.cfg.Costs.PutNew, []uint64{e.addr, n.byPortAddr + (port-uint64(n.cfg.FirstPort))*8}, false)
	n.byPort[int(port)-n.cfg.FirstPort] = e
	return []uint64{port, AddStatusOK}
}

// Model returns the NAT map's symbolic model; the contract composes the
// chain quanta with the configured allocator's contract (paper §2.2:
// contracts compose recursively).
func (n *NATMap) Model() nfir.Model { return natModel{n: n} }

type natModel struct{ n *NATMap }

func (m natModel) Outcomes(method string, args []symb.Expr, fresh nfir.FreshFn) []nfir.Outcome {
	cfg := m.n.cfg
	cap64 := uint64(cfg.Capacity)
	cPCVs := []nfir.PCV{
		{Name: PCVCollisions, Range: expr.Range{Lo: 0, Hi: cap64}},
		{Name: PCVTraversals, Range: expr.Range{Lo: 0, Hi: cap64}},
	}
	walkCost := func(w chainCosts) map[perf.Metric]expr.Poly {
		return buildCost(
			costTerm{w.Step, []string{PCVTraversals}},
			costTerm{w.Collision, []string{PCVCollisions}},
		)
	}
	fixed := func(s StepCost) map[perf.Metric]expr.Poly {
		return buildCost(costTerm{s.Add(m.n.ch.hashCost()), nil})
	}

	switch method {
	case "expire":
		e := fresh("expired")
		// Per expired entry: unlink + bucket walk + allocator free.
		perEntryFree := scaleCostByVar(m.n.alloc.FreeCost(), PCVExpired)
		cost := addCost(nil,
			buildCost(
				costTerm{cfg.Costs.ExpireCall, nil},
				costTerm{cfg.Costs.ExpirePerEntry, []string{PCVExpired}},
				costTerm{cfg.Costs.ExpireWalk.Step, []string{PCVExpired, PCVTraversals}},
				costTerm{cfg.Costs.ExpireWalk.Collision, []string{PCVExpired, PCVCollisions}},
			),
			perEntryFree,
		)
		return []nfir.Outcome{{
			Label:   "ok",
			Results: []symb.Expr{e},
			Domains: map[string]symb.Domain{e.Name: {Lo: 0, Hi: cap64}},
			Cost:    cost,
			PCVs: append([]nfir.PCV{
				{Name: PCVExpired, Range: expr.Range{Lo: 0, Hi: cap64}},
			}, cPCVs...),
		}}

	case "lookup_int":
		port := fresh("ext_port")
		return []nfir.Outcome{
			{
				Label:   "hit",
				Results: []symb.Expr{port, symb.C(1)},
				Domains: map[string]symb.Domain{port.Name: {Lo: uint64(cfg.FirstPort), Hi: uint64(cfg.FirstPort + cfg.PortCount - 1)}},
				Cost:    addCost(nil, fixed(cfg.Costs.GetHit), walkCost(cfg.Costs.GetWalk)),
				PCVs:    cPCVs,
			},
			{
				Label:   "miss",
				Results: []symb.Expr{symb.C(0), symb.C(0)},
				Cost:    addCost(nil, fixed(cfg.Costs.GetMiss), walkCost(cfg.Costs.GetWalk)),
				PCVs:    cPCVs,
			},
		}

	case "lookup_ext":
		info := fresh("int_info")
		return []nfir.Outcome{
			{
				Label:   "hit",
				Results: []symb.Expr{info, symb.C(1)},
				Domains: map[string]symb.Domain{info.Name: {Lo: 0, Hi: 0xffff_ffff_ffff}},
				Cost:    buildCost(costTerm{natExtHit, nil}),
			},
			{
				Label:   "miss",
				Results: []symb.Expr{symb.C(0), symb.C(0)},
				Cost:    buildCost(costTerm{natExtMiss, nil}),
			},
		}

	case "add":
		port := fresh("ext_port")
		okCost := addCost(nil,
			fixed(cfg.Costs.PutNew),
			walkCost(cfg.Costs.PutWalk),
			buildCost(costTerm{cfg.Costs.InsertPerTraversal, []string{PCVTraversals}}),
			m.n.alloc.AllocCost(),
		)
		return []nfir.Outcome{
			{
				Label:   "ok",
				Results: []symb.Expr{port, symb.C(AddStatusOK)},
				Domains: map[string]symb.Domain{port.Name: {Lo: uint64(cfg.FirstPort), Hi: uint64(cfg.FirstPort + cfg.PortCount - 1)}},
				Cost:    okCost,
				PCVs:    append(append([]nfir.PCV{}, cPCVs...), m.n.alloc.PCVs()...),
			},
			{
				Label:   "full",
				Results: []symb.Expr{symb.C(0), symb.C(AddStatusFull)},
				Cost: addCost(nil,
					fixed(cfg.Costs.PutFull),
					walkCost(cfg.Costs.PutWalk),
					m.n.alloc.AllocCost(), // exhaustion may be discovered by the allocator
				),
				PCVs: append(append([]nfir.PCV{}, cPCVs...), m.n.alloc.PCVs()...),
			},
		}
	default:
		return nil
	}
}

// scaleCostByVar multiplies every metric polynomial by a PCV (per-entry
// contract terms).
func scaleCostByVar(cost map[perf.Metric]expr.Poly, pcv string) map[perf.Metric]expr.Poly {
	out := map[perf.Metric]expr.Poly{}
	for m, p := range cost {
		out[m] = p.MulVar(pcv)
	}
	return out
}
