package dslib

import (
	"math/rand"
	"testing"

	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

func newTestEnv() *nfir.Env {
	env := nfir.NewEnv()
	env.Meter = perf.NewMeter(nil)
	env.ResetPacket(nil, 0, 0)
	return env
}

func testFresh() nfir.FreshFn {
	n := 0
	return func(hint string) symb.Sym {
		n++
		return symb.Sym{Name: hint + "_t"}
	}
}

// invoke runs one DS op in a fresh PCV scope and returns results, the
// metered delta, and the per-op PCV observations.
func invoke(t *testing.T, env *nfir.Env, ds nfir.ConcreteDS, method string, args ...uint64) ([]uint64, perf.Snapshot, map[string]uint64) {
	t.Helper()
	env.ResetPacket(nil, env.InPort, env.Time)
	before := env.Meter.Snapshot()
	res, err := ds.Invoke(method, args, env)
	if err != nil {
		t.Fatalf("%s(%v): %v", method, args, err)
	}
	pcvs := make(map[string]uint64, len(env.PCVs()))
	for k, v := range env.PCVs() {
		pcvs[k] = v
	}
	return res, env.Meter.Since(before), pcvs
}

// checkOutcome asserts contract soundness: the metered IC/MA of the call
// are ≤ the outcome's contract evaluated at the observed PCVs.
func checkOutcome(t *testing.T, model nfir.Model, method, label string, delta perf.Snapshot, pcvs map[string]uint64) {
	t.Helper()
	outs := model.Outcomes(method, nil, testFresh())
	for _, out := range outs {
		if out.Label != label {
			continue
		}
		binding := map[string]uint64{}
		for _, pcv := range out.PCVs {
			binding[pcv.Name] = pcvs[pcv.Name]
		}
		ic := out.Cost[perf.Instructions].Eval(binding)
		ma := out.Cost[perf.MemAccesses].Eval(binding)
		if delta.Instructions > ic {
			t.Errorf("%s:%s IC %d exceeds contract %d (pcvs %v)", method, label, delta.Instructions, ic, binding)
		}
		if delta.MemAccesses > ma {
			t.Errorf("%s:%s MA %d exceeds contract %d (pcvs %v)", method, label, delta.MemAccesses, ma, binding)
		}
		if cyc := out.Cost[perf.Cycles].Eval(binding); cyc < ic {
			t.Errorf("%s:%s cycle bound %d below IC %d", method, label, cyc, ic)
		}
		return
	}
	t.Fatalf("no outcome %q for method %q", label, method)
}

func newBridgeTable(env *nfir.Env, capacity int, threshold uint64) *FlowTable {
	return NewFlowTable(env, FlowTableConfig{
		Name:            "mac",
		Capacity:        capacity,
		KeyWords:        1,
		TimeoutNS:       1_000_000_000, // 1s
		GranularityNS:   1_000_000,     // 1ms
		RehashThreshold: threshold,
		Costs:           BridgeCosts(),
	})
}

func TestFlowTablePutGetSemantics(t *testing.T) {
	env := newTestEnv()
	ft := newBridgeTable(env, 64, 0)
	env.Time = 1_000_000

	res, _, _ := invoke(t, env, ft, "put", 0xAABB, 3, env.Time)
	if res[0] != PutStatusNew {
		t.Fatalf("first put status = %d", res[0])
	}
	res, _, _ = invoke(t, env, ft, "get", 0xAABB, env.Time)
	if res[1] != 1 || res[0] != 3 {
		t.Fatalf("get = %v, want [3 1]", res)
	}
	res, _, _ = invoke(t, env, ft, "peek", 0xAABB)
	if res[1] != 1 || res[0] != 3 {
		t.Fatalf("peek = %v", res)
	}
	res, _, _ = invoke(t, env, ft, "get", 0xCCDD, env.Time)
	if res[1] != 0 {
		t.Fatalf("get missing = %v", res)
	}
	res, _, _ = invoke(t, env, ft, "put", 0xAABB, 5, env.Time)
	if res[0] != PutStatusKnown {
		t.Fatalf("re-put status = %d", res[0])
	}
	res, _, _ = invoke(t, env, ft, "peek", 0xAABB)
	if res[0] != 5 {
		t.Fatalf("value not updated: %v", res)
	}
	if ft.Count() != 1 {
		t.Fatalf("count = %d", ft.Count())
	}
}

func TestFlowTableCapacityFull(t *testing.T) {
	env := newTestEnv()
	ft := newBridgeTable(env, 4, 0)
	env.Time = 1
	for i := uint64(0); i < 4; i++ {
		res, _, _ := invoke(t, env, ft, "put", 0x100+i, i, env.Time)
		if res[0] != PutStatusNew {
			t.Fatalf("put %d status = %d", i, res[0])
		}
	}
	res, _, _ := invoke(t, env, ft, "put", 0x999, 9, env.Time)
	if res[0] != PutStatusFull {
		t.Fatalf("full put status = %d", res[0])
	}
}

func TestFlowTableExpiry(t *testing.T) {
	env := newTestEnv()
	ft := newBridgeTable(env, 64, 0)
	env.Time = 1_000_000 // 1ms
	for i := uint64(0); i < 5; i++ {
		invoke(t, env, ft, "put", 0x100+i, i, env.Time)
	}
	// Before timeout: nothing expires.
	res, _, _ := invoke(t, env, ft, "expire", env.Time+500_000_000)
	if res[0] != 0 {
		t.Fatalf("early expire = %d", res[0])
	}
	// After timeout: all five.
	res, _, pcvs := invoke(t, env, ft, "expire", env.Time+2_000_000_000)
	if res[0] != 5 {
		t.Fatalf("expire = %d, want 5", res[0])
	}
	if pcvs[PCVExpired] != 5 {
		t.Errorf("PCV e = %d", pcvs[PCVExpired])
	}
	if ft.Count() != 0 {
		t.Errorf("count after expiry = %d", ft.Count())
	}
}

func TestFlowTableRefreshPreventsExpiry(t *testing.T) {
	env := newTestEnv()
	ft := newBridgeTable(env, 64, 0)
	env.Time = 1_000_000
	invoke(t, env, ft, "put", 0xA, 1, env.Time)
	invoke(t, env, ft, "put", 0xB, 2, env.Time)
	// Refresh A halfway through the timeout.
	half := env.Time + 600_000_000
	invoke(t, env, ft, "get", 0xA, half)
	// At 1.2s, only B (stamped at 1ms) is past its 1s timeout.
	res, _, _ := invoke(t, env, ft, "expire", env.Time+1_200_000_000)
	if res[0] != 1 {
		t.Fatalf("expire = %d, want 1", res[0])
	}
	res, _, _ = invoke(t, env, ft, "peek", 0xA)
	if res[1] != 1 {
		t.Error("refreshed entry A was expired")
	}
}

func TestFlowTableGranularityBatching(t *testing.T) {
	// With second granularity, flows stamped within the same second
	// expire together (the VigNAT bug, §5.3); with millisecond
	// granularity they expire one at a time.
	const sec = 1_000_000_000
	run := func(gran uint64) (maxBatch uint64) {
		env := newTestEnv()
		ft := NewFlowTable(env, FlowTableConfig{
			Name: "nat", Capacity: 1024, KeyWords: 1,
			TimeoutNS: 10 * sec, GranularityNS: gran,
			Costs: VigNATCosts(),
		})
		// 100 flows spread uniformly over one second.
		for i := uint64(0); i < 100; i++ {
			now := sec + i*10_000_000 // every 10ms
			invoke(t, env, ft, "put", 0x1000+i, i, now)
		}
		// Then probe expiry every 10ms after the timeout window opens.
		for i := uint64(0); i < 300; i++ {
			now := 11*sec + i*10_000_000
			res, _, _ := invoke(t, env, ft, "expire", now)
			if res[0] > maxBatch {
				maxBatch = res[0]
			}
		}
		return maxBatch
	}
	batchSec := run(sec)
	batchMS := run(1_000_000)
	if batchSec < 50 {
		t.Errorf("second granularity max batch = %d, want ≥ 50 (batching)", batchSec)
	}
	if batchMS > 3 {
		t.Errorf("millisecond granularity max batch = %d, want ≤ 3", batchMS)
	}
}

func TestFlowTableContractSoundnessRandomOps(t *testing.T) {
	env := newTestEnv()
	ft := NewFlowTable(env, FlowTableConfig{
		Name: "rand", Capacity: 128, KeyWords: 2,
		TimeoutNS: 1_000_000, GranularityNS: 1000,
		Costs: VigNATCosts(),
	})
	model := ft.Model()
	rng := rand.New(rand.NewSource(7))
	now := uint64(1)
	for i := 0; i < 3000; i++ {
		now += uint64(rng.Intn(5000))
		env.Time = now
		k1, k2 := uint64(rng.Intn(64)), uint64(rng.Intn(4))
		switch rng.Intn(4) {
		case 0:
			res, delta, pcvs := invoke(t, env, ft, "put", k1, k2, 42, now)
			label := map[uint64]string{PutStatusNew: "new", PutStatusKnown: "known", PutStatusFull: "full"}[res[0]]
			checkOutcome(t, model, "put", label, delta, pcvs)
		case 1:
			res, delta, pcvs := invoke(t, env, ft, "get", k1, k2, now)
			label := "miss"
			if res[1] == 1 {
				label = "hit"
			}
			checkOutcome(t, model, "get", label, delta, pcvs)
		case 2:
			res, delta, pcvs := invoke(t, env, ft, "peek", k1, k2)
			label := "miss"
			if res[1] == 1 {
				label = "hit"
			}
			checkOutcome(t, model, "peek", label, delta, pcvs)
		default:
			_, delta, pcvs := invoke(t, env, ft, "expire", now)
			checkOutcome(t, model, "expire", "ok", delta, pcvs)
		}
	}
}

func TestFlowTableRehashDefence(t *testing.T) {
	env := newTestEnv()
	ft := newBridgeTable(env, 256, 3)
	env.Time = 1
	// Build adversarial keys that collide into one bucket under the
	// current secret (the CASTAN-substitute's job).
	var keys []uint64
	wantBucket := -1
	for k := uint64(1); len(keys) < 6; k++ {
		b, _ := ft.BucketOf([]uint64{k})
		if wantBucket < 0 {
			wantBucket = b
		}
		if b == wantBucket {
			keys = append(keys, k)
		}
	}
	secretBefore := ft.HashSecret()
	var sawRehash bool
	for i, k := range keys {
		res, delta, pcvs := invoke(t, env, ft, "put", k, uint64(i), env.Time)
		switch res[0] {
		case PutStatusNew:
		case PutStatusRehash:
			sawRehash = true
			checkOutcome(t, ft.Model(), "put", "rehash", delta, pcvs)
			if pcvs[PCVOccupancy] == 0 {
				t.Error("rehash must observe occupancy PCV")
			}
		default:
			t.Fatalf("unexpected status %d", res[0])
		}
	}
	if !sawRehash {
		t.Fatal("expected the 4th colliding insert to trigger a rehash")
	}
	if ft.HashSecret() == secretBefore {
		t.Error("rehash must renew the hash secret")
	}
	// All entries still reachable after rehash.
	for i, k := range keys {
		res, _, _ := invoke(t, env, ft, "peek", k)
		if res[1] != 1 || res[0] != uint64(i) {
			t.Errorf("key %#x lost after rehash: %v", k, res)
		}
	}
}

func TestFlowTablePathologicalState(t *testing.T) {
	env := newTestEnv()
	ft := newBridgeTable(env, 512, 0)
	now := uint64(10_000_000_000)
	ft.SynthesizePathological(env, 256, now)
	if ft.Count() != 256 {
		t.Fatalf("count = %d", ft.Count())
	}
	env.Time = now
	res, delta, pcvs := invoke(t, env, ft, "expire", now)
	if res[0] != 256 {
		t.Fatalf("mass expiry = %d, want 256", res[0])
	}
	// All entries in one bucket → quadratic work: Σ t_i = 256·257/2, so
	// the distilled per-entry mean is ⌈257/2⌉ = 129.
	if pcvs[PCVTraversals] != 129 {
		t.Errorf("mean traversals = %d, want 129", pcvs[PCVTraversals])
	}
	checkOutcome(t, ft.Model(), "expire", "ok", delta, pcvs)
	// The quadratic blow-up: ≥ e·t/2 chain steps of ≥ 13 IC each.
	if delta.Instructions < 256*257/2*13 {
		t.Errorf("pathological expiry IC = %d, suspiciously small", delta.Instructions)
	}
}

func TestFlowTableModelOutcomeLabels(t *testing.T) {
	env := newTestEnv()
	ft := newBridgeTable(env, 16, 2)
	model := ft.Model()
	wantLabels := map[string][]string{
		"expire": {"ok"},
		"get":    {"hit", "miss"},
		"peek":   {"hit", "miss"},
		"put":    {"known", "new", "full", "rehash"},
	}
	for method, want := range wantLabels {
		outs := model.Outcomes(method, nil, testFresh())
		if len(outs) != len(want) {
			t.Errorf("%s: %d outcomes, want %d", method, len(outs), len(want))
			continue
		}
		for i, w := range want {
			if outs[i].Label != w {
				t.Errorf("%s outcome %d = %q, want %q", method, i, outs[i].Label, w)
			}
		}
	}
	if outs := model.Outcomes("bogus", nil, testFresh()); outs != nil {
		t.Error("unknown method must return nil outcomes")
	}
	// Without a rehash threshold, put has only three outcomes.
	ft2 := newBridgeTable(env, 16, 0)
	if outs := ft2.Model().Outcomes("put", nil, testFresh()); len(outs) != 3 {
		t.Errorf("put outcomes without defence = %d, want 3", len(outs))
	}
}

func TestFlowTableVigNATCoefficients(t *testing.T) {
	// The expert contract must reproduce the paper's Table 6
	// coefficients for the VigNAT cost set.
	env := newTestEnv()
	ft := NewFlowTable(env, FlowTableConfig{
		Name: "vignat", Capacity: 64, KeyWords: 3, TimeoutNS: 1, Costs: VigNATCosts(),
	})
	outs := ft.Model().Outcomes("expire", nil, testFresh())
	ic := outs[0].Cost[perf.Instructions]
	// 301 here; the NAT map's allocator free (58·e) completes the
	// paper's 359·e — checked in the core-level Table 6 test.
	if got := ic.Coef("e"); got != 301 {
		t.Errorf("e coefficient = %d, want 301", got)
	}
	if got := ic.Coef("c*e"); got != 80 {
		t.Errorf("e·c coefficient = %d, want 80", got)
	}
	if got := ic.Coef("e*t"); got != 38 {
		t.Errorf("e·t coefficient = %d, want 38", got)
	}
	gets := ft.Model().Outcomes("get", nil, testFresh())
	icGet := gets[0].Cost[perf.Instructions]
	if got := icGet.Coef("c"); got != 30 {
		t.Errorf("get c coefficient = %d, want 30", got)
	}
	if got := icGet.Coef("t"); got != 18 {
		t.Errorf("get t coefficient = %d, want 18", got)
	}
	puts := ft.Model().Outcomes("put", nil, testFresh())
	icPut := puts[1].Cost[perf.Instructions] // "new": walk 18 + insert extra 8
	if got := icPut.Coef("t"); got != 26 {
		t.Errorf("put t coefficient = %d, want 26", got)
	}
}

func TestFlowTableBridgeCoefficients(t *testing.T) {
	env := newTestEnv()
	ft := newBridgeTable(env, 64, 3)
	outs := ft.Model().Outcomes("expire", nil, testFresh())
	ic := outs[0].Cost[perf.Instructions]
	if got := ic.Coef("e"); got != 245 {
		t.Errorf("e coefficient = %d, want 245", got)
	}
	if got := ic.Coef("c*e"); got != 82 {
		t.Errorf("e·c coefficient = %d, want 82", got)
	}
	if got := ic.Coef("e*t"); got != 19 {
		t.Errorf("e·t coefficient = %d, want 19", got)
	}
	puts := ft.Model().Outcomes("put", nil, testFresh())
	var rehash *nfir.Outcome
	for i := range puts {
		if puts[i].Label == "rehash" {
			rehash = &puts[i]
		}
	}
	if rehash == nil {
		t.Fatal("no rehash outcome")
	}
	icR := rehash.Cost[perf.Instructions]
	if got := icR.Coef("o"); got != 124 {
		t.Errorf("o coefficient = %d, want 124", got)
	}
	if got := icR.Coef("o*t"); got != 14 {
		t.Errorf("t·o coefficient = %d, want 14", got)
	}
	// The rehash fixed term includes the per-bucket reallocation
	// (15 × 64 buckets) — the paper's 984069-style cliff constant.
	if got := icR.ConstTerm(); got < 15*64 {
		t.Errorf("rehash constant = %d, want ≥ %d", got, 15*64)
	}
}

func TestFlowTableErrors(t *testing.T) {
	env := newTestEnv()
	ft := newBridgeTable(env, 8, 0)
	for _, c := range []struct {
		method string
		args   []uint64
	}{
		{"expire", nil},
		{"get", []uint64{1}},
		{"peek", []uint64{1, 2}},
		{"put", []uint64{1}},
		{"nosuch", []uint64{1}},
	} {
		if _, err := ft.Invoke(c.method, c.args, env); err == nil {
			t.Errorf("%s(%v) should fail", c.method, c.args)
		}
	}
}
