package dslib

import (
	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

// PortAllocator is the NAT's port allocator. §5.3 compares two
// implementations with identical O(1) big-O but different constants:
//
//   - Allocator A: a doubly-linked free list. Allocation and
//     deallocation cost the same regardless of occupancy or churn.
//   - Allocator B: an array (bitmap) scanned from a rotating hint, plus
//     a singly-linked structure for frees. Allocation is cheaper than
//     A's at low occupancy (the scan finds a free slot immediately) and
//     much more expensive at high occupancy (long scans).
//
// The contract captures this with the scan-length PCV s.
type PortAllocator interface {
	// Alloc charges the environment and returns an allocated port.
	Alloc(env *nfir.Env) (port uint64, ok bool)
	// Free releases a previously allocated port.
	Free(env *nfir.Env, port uint64)
	// AllocCost is the expert contract for one allocation.
	AllocCost() map[perf.Metric]expr.Poly
	// FreeCost is the expert contract for one deallocation.
	FreeCost() map[perf.Metric]expr.Poly
	// PCVs lists the PCVs AllocCost ranges over.
	PCVs() []nfir.PCV
	// InUse reports the number of allocated ports.
	InUse() int
	// Capacity reports the total port count.
	Capacity() int
}

// Allocator A cost quanta: pointer surgery on a doubly-linked list,
// occupancy-independent.
var (
	allocACost = StepCost{ALU: 38, Branch: 4, Load: 10, Store: 6, Lines: 3} // 58 IC
	freeACost  = StepCost{ALU: 36, Branch: 4, Load: 8, Store: 10, Lines: 3} // 58 IC
)

// AllocatorA is the doubly-linked free-list allocator.
type AllocatorA struct {
	next, prev []int // free-list links; -1 = not linked
	head       int
	inUse      int
	base       uint64
	n          int
	firstPort  int
}

// NewAllocatorA builds an allocator over ports [firstPort,
// firstPort+count); ports are returned as firstPort+index.
func NewAllocatorA(env *nfir.Env, firstPort, count int) *AllocatorA {
	a := &AllocatorA{
		next: make([]int, count),
		prev: make([]int, count),
		head: 0,
		n:    count,
		base: env.Heap.Alloc(uint64(count) * 16),
	}
	for i := 0; i < count; i++ {
		a.next[i] = i + 1
		a.prev[i] = i - 1
	}
	a.next[count-1] = -1
	a.firstPort = firstPort
	return a
}

// Alloc implements PortAllocator.
func (a *AllocatorA) Alloc(env *nfir.Env) (uint64, bool) {
	charge(env, allocACost, []uint64{a.base + uint64(maxInt(a.head, 0))*16}, true)
	if a.head < 0 {
		return 0, false
	}
	i := a.head
	a.head = a.next[i]
	if a.head >= 0 {
		a.prev[a.head] = -1
	}
	a.next[i], a.prev[i] = -2, -2 // allocated marker
	a.inUse++
	return uint64(a.firstPort + i), true
}

// Free implements PortAllocator.
func (a *AllocatorA) Free(env *nfir.Env, port uint64) {
	i := int(port) - a.firstPort
	charge(env, freeACost, []uint64{a.base + uint64(i)*16}, true)
	if i < 0 || i >= a.n || a.next[i] != -2 {
		return // double free or foreign port: ignore, as the C code would not
	}
	a.next[i] = a.head
	a.prev[i] = -1
	if a.head >= 0 {
		a.prev[a.head] = i
	}
	a.head = i
	a.inUse--
}

// AllocCost implements PortAllocator.
func (a *AllocatorA) AllocCost() map[perf.Metric]expr.Poly {
	return buildCost(costTerm{allocACost, nil})
}

// FreeCost implements PortAllocator.
func (a *AllocatorA) FreeCost() map[perf.Metric]expr.Poly {
	return buildCost(costTerm{freeACost, nil})
}

// PCVs implements PortAllocator (A's contract is constant).
func (a *AllocatorA) PCVs() []nfir.PCV { return nil }

// InUse implements PortAllocator.
func (a *AllocatorA) InUse() int { return a.inUse }

// Capacity implements PortAllocator.
func (a *AllocatorA) Capacity() int { return a.n }

// Allocator B cost quanta: cheap fixed parts plus a per-scan-step cost.
var (
	allocBFixed = StepCost{ALU: 12, Branch: 2, Load: 2, Store: 2, Lines: 2} // 18 IC
	allocBStep  = StepCost{ALU: 3, Branch: 1, Load: 1, Lines: 1}            // 5·s
	freeBCost   = StepCost{ALU: 30, Branch: 4, Load: 8, Store: 8, Lines: 2} // 50 IC
)

// AllocatorB is the array-scan allocator.
type AllocatorB struct {
	used      []bool
	hint      int
	inUse     int
	base      uint64
	n         int
	firstPort int
}

// NewAllocatorB builds the scanning allocator over the same port range
// convention as NewAllocatorA.
func NewAllocatorB(env *nfir.Env, firstPort, count int) *AllocatorB {
	return &AllocatorB{
		used:      make([]bool, count),
		n:         count,
		base:      env.Heap.Alloc(uint64(count)),
		firstPort: firstPort,
	}
}

// Alloc implements PortAllocator: scan from the rotating hint.
func (b *AllocatorB) Alloc(env *nfir.Env) (uint64, bool) {
	charge(env, allocBFixed, []uint64{b.base}, false)
	if b.inUse >= b.n {
		env.ObservePCVMax(PCVScan, uint64(b.n))
		// A full scan discovers exhaustion.
		for s := 0; s < b.n; s++ {
			charge(env, allocBStep, []uint64{b.base + uint64((b.hint+s)%b.n)}, false)
		}
		return 0, false
	}
	var scan uint64
	for {
		scan++
		i := b.hint
		b.hint = (b.hint + 1) % b.n
		charge(env, allocBStep, []uint64{b.base + uint64(i)}, false)
		if !b.used[i] {
			b.used[i] = true
			b.inUse++
			env.ObservePCVMax(PCVScan, scan)
			return uint64(b.firstPort + i), true
		}
	}
}

// Free implements PortAllocator.
func (b *AllocatorB) Free(env *nfir.Env, port uint64) {
	i := int(port) - b.firstPort
	charge(env, freeBCost, []uint64{b.base + uint64(maxInt(i, 0))}, false)
	if i < 0 || i >= b.n || !b.used[i] {
		return
	}
	b.used[i] = false
	b.inUse--
}

// AllocCost implements PortAllocator: 18 + 5·s.
func (b *AllocatorB) AllocCost() map[perf.Metric]expr.Poly {
	return buildCost(costTerm{allocBFixed, nil}, costTerm{allocBStep, []string{PCVScan}})
}

// FreeCost implements PortAllocator.
func (b *AllocatorB) FreeCost() map[perf.Metric]expr.Poly {
	return buildCost(costTerm{freeBCost, nil})
}

// PCVs implements PortAllocator.
func (b *AllocatorB) PCVs() []nfir.PCV {
	return []nfir.PCV{{Name: PCVScan, Range: expr.Range{Lo: 1, Hi: uint64(b.n)}}}
}

// InUse implements PortAllocator.
func (b *AllocatorB) InUse() int { return b.inUse }

// Capacity implements PortAllocator.
func (b *AllocatorB) Capacity() int { return b.n }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
