package dslib

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

func allocators(env *nfir.Env, first, count int) map[string]PortAllocator {
	return map[string]PortAllocator{
		"A": NewAllocatorA(env, first, count),
		"B": NewAllocatorB(env, first, count),
	}
}

func TestAllocatorsBasicCycle(t *testing.T) {
	env := newTestEnv()
	for name, a := range allocators(env, 1024, 8) {
		t.Run(name, func(t *testing.T) {
			seen := map[uint64]bool{}
			for i := 0; i < 8; i++ {
				p, ok := a.Alloc(env)
				if !ok {
					t.Fatalf("alloc %d failed", i)
				}
				if p < 1024 || p >= 1032 {
					t.Fatalf("port %d out of range", p)
				}
				if seen[p] {
					t.Fatalf("double allocation of %d", p)
				}
				seen[p] = true
			}
			if _, ok := a.Alloc(env); ok {
				t.Fatal("9th alloc must fail")
			}
			if a.InUse() != 8 {
				t.Fatalf("InUse = %d", a.InUse())
			}
			for p := range seen {
				a.Free(env, p)
			}
			if a.InUse() != 0 {
				t.Fatalf("InUse after frees = %d", a.InUse())
			}
			if _, ok := a.Alloc(env); !ok {
				t.Fatal("alloc after frees must succeed")
			}
		})
	}
}

func TestAllocatorsDoubleFreeIgnored(t *testing.T) {
	env := newTestEnv()
	for name, a := range allocators(env, 100, 4) {
		t.Run(name, func(t *testing.T) {
			p, _ := a.Alloc(env)
			a.Free(env, p)
			a.Free(env, p)    // double free
			a.Free(env, 9999) // foreign port
			if a.InUse() != 0 {
				t.Fatalf("InUse = %d", a.InUse())
			}
			// The freed port pool must still be consistent: 4 allocs fine.
			for i := 0; i < 4; i++ {
				if _, ok := a.Alloc(env); !ok {
					t.Fatalf("alloc %d failed after double free", i)
				}
			}
			if _, ok := a.Alloc(env); ok {
				t.Fatal("5th alloc must fail")
			}
		})
	}
}

func TestAllocatorAOccupancyIndependent(t *testing.T) {
	env := newTestEnv()
	a := NewAllocatorA(env, 0, 1024)
	cost := func() uint64 {
		before := env.Meter.Snapshot()
		p, ok := a.Alloc(env)
		if !ok {
			t.Fatal("alloc failed")
		}
		defer func() { _ = p }()
		return env.Meter.Since(before).Instructions
	}
	low := cost()
	// Fill to 90%.
	for a.InUse() < 920 {
		if _, ok := a.Alloc(env); !ok {
			t.Fatal("fill failed")
		}
	}
	high := cost()
	if low != high {
		t.Errorf("allocator A cost changed with occupancy: %d vs %d", low, high)
	}
}

func TestAllocatorBScanScalesWithOccupancy(t *testing.T) {
	env := newTestEnv()
	b := NewAllocatorB(env, 0, 1024)
	measure := func() uint64 {
		env.ResetPacket(nil, 0, 0)
		before := env.Meter.Snapshot()
		if _, ok := b.Alloc(env); !ok {
			t.Fatal("alloc failed")
		}
		return env.Meter.Since(before).Instructions
	}
	low := measure() // nearly empty: scan length 1
	for b.InUse() < 1024 {
		if _, ok := b.Alloc(env); !ok {
			t.Fatal("fill failed")
		}
	}
	// Free one port far ahead of the hint to force a long scan.
	b.Free(env, uint64((b.hint+512)%1024))
	high := measure()
	if high < low*10 {
		t.Errorf("allocator B at high occupancy (%d IC) should dwarf low occupancy (%d IC)", high, low)
	}
}

func TestAllocatorBLowOccupancyCheaperThanA(t *testing.T) {
	// The §5.3 trade-off: B beats A when the table is mostly empty.
	env := newTestEnv()
	a := NewAllocatorA(env, 0, 256)
	b := NewAllocatorB(env, 0, 256)
	costA := func() uint64 {
		before := env.Meter.Snapshot()
		a.Alloc(env)
		return env.Meter.Since(before).Instructions
	}()
	costB := func() uint64 {
		before := env.Meter.Snapshot()
		b.Alloc(env)
		return env.Meter.Since(before).Instructions
	}()
	if costB >= costA {
		t.Errorf("B at low occupancy (%d) must be cheaper than A (%d)", costB, costA)
	}
}

func TestAllocatorContractSoundness(t *testing.T) {
	env := newTestEnv()
	for name, a := range allocators(env, 0, 64) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			var live []uint64
			for i := 0; i < 2000; i++ {
				env.ResetPacket(nil, 0, 0)
				if rng.Intn(2) == 0 || len(live) == 0 {
					before := env.Meter.Snapshot()
					p, ok := a.Alloc(env)
					delta := env.Meter.Since(before)
					binding := map[string]uint64{}
					for _, pcv := range a.PCVs() {
						binding[pcv.Name] = env.PCVs()[pcv.Name]
					}
					ic := a.AllocCost()[perf.Instructions].Eval(binding)
					if delta.Instructions > ic {
						t.Fatalf("alloc IC %d > contract %d (pcvs %v)", delta.Instructions, ic, binding)
					}
					if ok {
						live = append(live, p)
					}
				} else {
					i := rng.Intn(len(live))
					p := live[i]
					live = append(live[:i], live[i+1:]...)
					before := env.Meter.Snapshot()
					a.Free(env, p)
					delta := env.Meter.Since(before)
					ic := a.FreeCost()[perf.Instructions].Eval(map[string]uint64{})
					if delta.Instructions > ic {
						t.Fatalf("free IC %d > contract %d", delta.Instructions, ic)
					}
				}
			}
		})
	}
}

// Property: allocators never hand out a port twice while it is live.
func TestAllocatorNoDoubleAllocationProperty(t *testing.T) {
	f := func(seed int64, useB bool) bool {
		env := newTestEnv()
		var a PortAllocator
		if useB {
			a = NewAllocatorB(env, 0, 32)
		} else {
			a = NewAllocatorA(env, 0, 32)
		}
		rng := rand.New(rand.NewSource(seed))
		live := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			if rng.Intn(2) == 0 {
				p, ok := a.Alloc(env)
				if !ok {
					if len(live) != 32 {
						return false // spurious exhaustion
					}
					continue
				}
				if live[p] {
					return false // double allocation
				}
				live[p] = true
			} else {
				for p := range live {
					a.Free(env, p)
					delete(live, p)
					break
				}
			}
			if a.InUse() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
