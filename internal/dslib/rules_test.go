package dslib

import (
	"testing"

	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

func TestRuleSetMatching(t *testing.T) {
	env := newTestEnv()
	rs := NewRuleSet(env, []Rule{
		{SrcMask: 0xFF000000, SrcVal: 0x0A000000, DstMask: 0, DstVal: 0, Action: 1},               // accept 10/8
		{SrcMask: 0xFFFF0000, SrcVal: 0xC0A80000, ProtoVal: 17, DstMask: 0, DstVal: 0, Action: 0}, // deny 192.168/16 UDP
	}, 0)

	res, _, _ := invoke(t, env, rs, "match", 0x0A010101, 0x01020304, 80, 443, 6)
	if res[0] != 1 {
		t.Errorf("10.x src should accept, got %d", res[0])
	}
	res, _, _ = invoke(t, env, rs, "match", 0xC0A80001, 0x01020304, 80, 443, 17)
	if res[0] != 0 {
		t.Errorf("192.168 UDP should deny, got %d", res[0])
	}
	res, _, _ = invoke(t, env, rs, "match", 0x08080808, 0, 0, 0, 6)
	if res[0] != 0 {
		t.Errorf("default action should apply, got %d", res[0])
	}
}

func TestRuleSetContractDominates(t *testing.T) {
	env := newTestEnv()
	rules := make([]Rule, 10)
	for i := range rules {
		rules[i] = Rule{SrcMask: 0xFFFFFFFF, SrcVal: uint64(i), Action: 1}
	}
	rs := NewRuleSet(env, rules, 0)
	outs := rs.Model().Outcomes("match", nil, testFresh())
	contractIC := outs[0].Cost[perf.Instructions].ConstTerm()
	for _, src := range []uint64{0, 5, 9, 1234} {
		_, delta, _ := invoke(t, env, rs, "match", src, 0, 0, 0, 6)
		if delta.Instructions > contractIC {
			t.Errorf("match(%d) IC %d > contract %d", src, delta.Instructions, contractIC)
		}
	}
	// A full-miss scan is the coalesced worst case; an early match is
	// strictly cheaper (the contract's deliberate over-estimation).
	_, miss, _ := invoke(t, env, rs, "match", 9999, 0, 0, 0, 6)
	_, hit, _ := invoke(t, env, rs, "match", 0, 0, 0, 0, 6)
	if hit.Instructions >= miss.Instructions {
		t.Errorf("early match (%d) should beat full scan (%d)", hit.Instructions, miss.Instructions)
	}
}

func TestOptionProcessorCounts(t *testing.T) {
	env := newTestEnv()
	op := OptionProcessor{}

	// No options.
	res, delta, pcvs := invoke(t, env, op, "process", 5)
	if res[0] != 0 || pcvs[PCVOptions] != 0 {
		t.Fatalf("ihl=5: %v %v", res, pcvs)
	}
	if delta.Instructions != 0 {
		t.Errorf("ihl=5 must be free, IC = %d", delta.Instructions)
	}

	// Three timestamp slots (ihl = 8): write the option bytes first.
	pkt := make([]byte, 128)
	for slot := 0; slot < 3; slot++ {
		pkt[34+slot*4] = 68
	}
	env.ResetPacket(pkt, 0, 42)
	res, delta, pcvs = invoke2(t, env, op, "process", 8)
	if res[0] != 3 || pcvs[PCVOptions] != 3 {
		t.Fatalf("ihl=8: %v %v", res, pcvs)
	}
	// Contract: 79·n + fixed.
	outs := op.Model().Outcomes("process", nil, testFresh())
	ic := outs[1].Cost[perf.Instructions]
	if ic.Coef("n") != 79 {
		t.Errorf("per-option coefficient = %d, want 79", ic.Coef("n"))
	}
	bound := ic.Eval(map[string]uint64{"n": 3})
	if delta.Instructions > bound {
		t.Errorf("IC %d > contract %d", delta.Instructions, bound)
	}
	// Timestamp slots were filled.
	if env.Pkt[36] != 42 {
		t.Error("timestamp slot not written")
	}
}

// invoke2 is invoke without the packet reset (the packet carries state).
func invoke2(t *testing.T, env *nfir.Env, ds nfir.ConcreteDS, method string, args ...uint64) ([]uint64, perf.Snapshot, map[string]uint64) {
	t.Helper()
	before := env.Meter.Snapshot()
	res, err := ds.Invoke(method, args, env)
	if err != nil {
		t.Fatalf("%s(%v): %v", method, args, err)
	}
	return res, env.Meter.Since(before), env.PCVs()
}

func TestOptionProcessorNonTimestampCheaper(t *testing.T) {
	env := newTestEnv()
	op := OptionProcessor{}
	pktTS := make([]byte, 128)
	pktNop := make([]byte, 128)
	for slot := 0; slot < 4; slot++ {
		pktTS[34+slot*4] = 68
		pktNop[34+slot*4] = 1 // NOP
	}
	env.ResetPacket(pktTS, 0, 1)
	_, dTS, _ := invoke2(t, env, op, "process", 9)
	env.ResetPacket(pktNop, 0, 1)
	_, dNop, _ := invoke2(t, env, op, "process", 9)
	if dNop.Instructions >= dTS.Instructions {
		t.Errorf("non-timestamp slots (%d IC) should be cheaper than timestamp (%d IC)",
			dNop.Instructions, dTS.Instructions)
	}
	// ihl beyond 15 is clamped, not a crash.
	env.ResetPacket(pktTS, 0, 1)
	if _, err := op.Invoke("process", []uint64{99}, env); err != nil {
		t.Error(err)
	}
}
