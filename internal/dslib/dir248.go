package dslib

import (
	"fmt"

	"gobolt/internal/nfir"
	"gobolt/internal/symb"
)

// Dir248 is DPDK's DIR-24-8 two-tier LPM table [paper ref 3], used by the
// evaluated LPM router. Lookups for prefixes of length ≤ 24 read one
// entry in the 2^24-wide first tier; longer prefixes take a second read
// in an 8-bit second-tier group. This structure is what makes the
// paper's two LPM input classes (LPM1: unconstrained / two reads, LPM2:
// ≤ 24-bit matches / one read) structural rather than data-dependent.
//
// IR method: get(ip) -> port.
type Dir248 struct {
	tbl24 []uint16
	tbl8  []uint16
	// depth24 tracks the prefix length that wrote each tbl24 slot so
	// longer prefixes are never overwritten by shorter ones.
	depth24 []uint8
	depth8  []uint8

	tbl24Addr, tbl8Addr uint64
	defaultPort         uint16
	groups              int
}

const (
	dirExtFlag = 0x8000 // tbl24 value is a tbl8 group index
	dirTbl24   = 1 << 24
	dirTbl8    = 256
)

// Lookup step costs. The two outcomes are the paper's LPM2 (one read)
// and LPM1 (two reads) classes.
var (
	dir248First  = StepCost{ALU: 4, Branch: 1, Load: 1} // shift, index, bound-check, read
	dir248Second = StepCost{ALU: 3, Branch: 1, Load: 1}
)

// NewDir248 builds an empty table with the given default port and room
// for maxGroups second-tier groups.
func NewDir248(env *nfir.Env, defaultPort uint16, maxGroups int) *Dir248 {
	d := &Dir248{
		tbl24:       make([]uint16, dirTbl24),
		depth24:     make([]uint8, dirTbl24),
		tbl8:        make([]uint16, 0, maxGroups*dirTbl8),
		defaultPort: defaultPort,
	}
	for i := range d.tbl24 {
		d.tbl24[i] = defaultPort
	}
	d.tbl24Addr = env.Heap.Alloc(uint64(dirTbl24) * 2)
	d.tbl8Addr = env.Heap.Alloc(uint64(maxGroups) * dirTbl8 * 2)
	d.groups = maxGroups
	return d
}

// AddRoute installs prefix/length → port (control plane, unmetered).
func (d *Dir248) AddRoute(prefix uint32, length int, port uint16) error {
	if length < 0 || length > 32 {
		return fmt.Errorf("dir248: prefix length %d out of range", length)
	}
	if port >= dirExtFlag {
		return fmt.Errorf("dir248: port %d exceeds 15 bits", port)
	}
	prefix &= ^uint32(0) << (32 - length)
	if length == 0 {
		prefix = 0
	}
	if length <= 24 {
		start := prefix >> 8
		count := uint32(1) << (24 - length)
		for i := start; i < start+count; i++ {
			if d.tbl24[i]&dirExtFlag != 0 {
				// Propagate into the existing group where not shadowed.
				g := int(d.tbl24[i] &^ dirExtFlag)
				for j := 0; j < dirTbl8; j++ {
					idx := g*dirTbl8 + j
					if d.depth8[idx] <= uint8(length) {
						d.tbl8[idx] = port
						d.depth8[idx] = uint8(length)
					}
				}
			} else if d.depth24[i] <= uint8(length) {
				d.tbl24[i] = port
				d.depth24[i] = uint8(length)
			}
		}
		return nil
	}
	// Long prefix: route through a tbl8 group.
	slot := prefix >> 8
	var g int
	if d.tbl24[slot]&dirExtFlag != 0 {
		g = int(d.tbl24[slot] &^ dirExtFlag)
	} else {
		if len(d.tbl8)/dirTbl8 >= d.groups {
			return fmt.Errorf("dir248: out of tbl8 groups (max %d)", d.groups)
		}
		g = len(d.tbl8) / dirTbl8
		base := d.tbl24[slot]
		baseDepth := d.depth24[slot]
		for j := 0; j < dirTbl8; j++ {
			d.tbl8 = append(d.tbl8, base)
			d.depth8 = append(d.depth8, baseDepth)
		}
		d.tbl24[slot] = dirExtFlag | uint16(g)
		d.depth24[slot] = 24 // slot now owned by the group
	}
	start := int(prefix & 0xff)
	count := 1 << (32 - length)
	for j := start; j < start+count; j++ {
		idx := g*dirTbl8 + j
		if d.depth8[idx] <= uint8(length) {
			d.tbl8[idx] = port
			d.depth8[idx] = uint8(length)
		}
	}
	return nil
}

// Invoke implements nfir.ConcreteDS.
func (d *Dir248) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	if method != "get" || len(args) != 1 {
		return nil, fmt.Errorf("dir248: unknown method %q/%d", method, len(args))
	}
	ip := uint32(args[0])
	slot := ip >> 8
	charge(env, dir248First, []uint64{d.tbl24Addr + uint64(slot)*2}, false)
	v := d.tbl24[slot]
	if v&dirExtFlag == 0 {
		env.ObservePCVMax(PCVPrefixLen, uint64(d.depth24[slot]))
		// The short and long outcomes both return one port value, so the
		// branch taken is invisible in the results; report it explicitly.
		env.ObserveOutcome("short")
		return []uint64{uint64(v)}, nil
	}
	g := int(v &^ dirExtFlag)
	idx := g*dirTbl8 + int(ip&0xff)
	charge(env, dir248Second, []uint64{d.tbl8Addr + uint64(idx)*2}, true)
	env.ObservePCVMax(PCVPrefixLen, uint64(d.depth8[idx]))
	env.ObserveOutcome("long")
	return []uint64{uint64(d.tbl8[idx])}, nil
}

// ExtendedSlots lists the tbl24 slots routed through a second-tier
// group — the slots whose addresses take the expensive two-read path.
// The CASTAN-substitute adversarial generator uses it the way CASTAN
// used whitebox knowledge of the LPM structure (paper §5.1: LPM1).
func (d *Dir248) ExtendedSlots() []uint32 {
	var out []uint32
	for i, v := range d.tbl24 {
		if v&dirExtFlag != 0 {
			out = append(out, uint32(i))
		}
	}
	return out
}

// Model returns the two-outcome symbolic model: "short" (≤ 24-bit match,
// one table read) and "long" (two reads).
func (d *Dir248) Model() nfir.Model { return dirModel{} }

type dirModel struct{}

func (dirModel) Outcomes(method string, args []symb.Expr, fresh nfir.FreshFn) []nfir.Outcome {
	if method != "get" {
		return nil
	}
	shortPort := fresh("lpm_port")
	longPort := fresh("lpm_port")
	return []nfir.Outcome{
		{
			Label:   "short",
			Results: []symb.Expr{shortPort},
			Domains: map[string]symb.Domain{shortPort.Name: {Lo: 0, Hi: dirExtFlag - 1}},
			Cost:    buildCost(costTerm{dir248First, nil}),
		},
		{
			Label:   "long",
			Results: []symb.Expr{longPort},
			Domains: map[string]symb.Domain{longPort.Name: {Lo: 0, Hi: dirExtFlag - 1}},
			Cost:    buildCost(costTerm{dir248First, nil}, costTerm{dir248Second, nil}),
		},
	}
}
