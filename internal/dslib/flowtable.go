package dslib

import (
	"fmt"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// Put status codes returned by the "put" method; NF code branches on
// them. They are concrete in both builds, so the branch does not fork.
const (
	PutStatusNew    = 0
	PutStatusKnown  = 1
	PutStatusFull   = 2
	PutStatusRehash = 3
)

// FlowTableCosts parameterises a table instance's cost quanta; they are
// simultaneously the charging schedule of the implementation and the
// coefficients of the expert contract. Fixed parts exclude the keyed
// hash, which is added automatically.
type FlowTableCosts struct {
	GetWalk    chainCosts
	PutWalk    chainCosts
	ExpireWalk chainCosts
	// InsertPerTraversal is extra per-traversal work when a put inserts
	// a new entry (chain relink/dirtying); it is what makes the paper's
	// insert classes carry a larger t coefficient (50·t vs 36·t in
	// Table 4, 44·t in Table 6).
	InsertPerTraversal StepCost

	GetHit, GetMiss   StepCost // get refreshes the entry's age on hit
	PeekHit, PeekMiss StepCost // peek does not
	PutNew            StepCost
	PutKnown          StepCost
	PutFull           StepCost
	ExpireCall        StepCost // fixed per expire() call
	ExpirePerEntry    StepCost // per expired entry (unlink, free)

	RehashPerBucket StepCost // × bucket count (table re-allocation)
	RehashPerEntry  StepCost // × occupancy (re-hash + re-link)
	RehashPerStep   StepCost // × occupancy × traversals (re-insert walks)
}

// VigNATCosts mirror the paper's VigNAT contract (Table 6): 359·e +
// 80·e·c + 38·e·t from expiry, 30·c + 18·t per lookup, 44·t per insert
// walk.
func VigNATCosts() FlowTableCosts {
	return FlowTableCosts{
		GetWalk: chainCosts{
			Step:      StepCost{ALU: 12, Branch: 2, Load: 4, Lines: 1}, // 18·t, one entry line
			ShortSave: StepCost{ALU: 2, Load: 1},                       // coalesced away
			Collision: StepCost{ALU: 22, Branch: 2, Load: 6, Lines: 1}, // 30·c
		},
		PutWalk: chainCosts{
			Step:      StepCost{ALU: 12, Branch: 2, Load: 4, Lines: 1}, // 18·t
			ShortSave: StepCost{ALU: 2, Load: 1},
			Collision: StepCost{ALU: 22, Branch: 2, Load: 6, Lines: 1}, // 30·c
		},
		InsertPerTraversal: StepCost{ALU: 5, Branch: 1, Load: 2, Lines: 1}, // +8·t on insert → 44·t per new flow
		ExpireWalk: chainCosts{
			Step:      StepCost{ALU: 28, Branch: 2, Load: 8, Lines: 1}, // 38·(e·t)
			ShortSave: StepCost{ALU: 2, Load: 1},
			Collision: StepCost{ALU: 64, Branch: 4, Load: 12, Lines: 2}, // 80·(e·c)
		},
		GetHit:     StepCost{ALU: 80, Branch: 10, Load: 14, Store: 10, Lines: 4},
		GetMiss:    StepCost{ALU: 28, Branch: 6, Load: 6, Lines: 2},
		PeekHit:    StepCost{ALU: 60, Branch: 8, Load: 12, Lines: 3},
		PeekMiss:   StepCost{ALU: 28, Branch: 6, Load: 6, Lines: 2},
		PutNew:     StepCost{ALU: 180, Branch: 14, Load: 30, Store: 26, Lines: 6},
		PutKnown:   StepCost{ALU: 70, Branch: 8, Load: 12, Store: 10, Lines: 4},
		PutFull:    StepCost{ALU: 52, Branch: 8, Load: 10, Lines: 3},
		ExpireCall: StepCost{ALU: 8, Branch: 2, Load: 2, Lines: 1},
		// 301·e here; the NAT map adds the allocator's 58·e free cost,
		// landing on the paper's 359·e (Table 6).
		ExpirePerEntry: StepCost{ALU: 250, Branch: 13, Load: 24, Store: 14, Lines: 5},
	}
}

// BridgeCosts mirror the bridge contract (Table 4): 245·e + 82·e·c +
// 19·e·t from expiry, 72·c and 18·t per operation (two table operations
// per packet → the published 144·c and 36·t), a costlier insert walk
// (+14·t → the published 50·t), and the rehash defence's 124·o + 14·t·o
// plus a large fixed bucket-reallocation term.
func BridgeCosts() FlowTableCosts {
	return FlowTableCosts{
		GetWalk: chainCosts{
			Step:      StepCost{ALU: 12, Branch: 2, Load: 4, Lines: 1}, // 18·t
			ShortSave: StepCost{ALU: 1, Load: 1},
			Collision: StepCost{ALU: 56, Branch: 4, Load: 12, Lines: 2}, // 72·c
		},
		PutWalk: chainCosts{
			Step:      StepCost{ALU: 12, Branch: 2, Load: 4, Lines: 1}, // 18·t
			ShortSave: StepCost{ALU: 1, Load: 1},
			Collision: StepCost{ALU: 56, Branch: 4, Load: 12, Lines: 2}, // 72·c
		},
		InsertPerTraversal: StepCost{ALU: 10, Branch: 1, Load: 3, Lines: 1}, // +14·t on insert → the published 50·t
		ExpireWalk: chainCosts{
			Step:      StepCost{ALU: 13, Branch: 2, Load: 4, Lines: 1}, // 19·(e·t)
			ShortSave: StepCost{ALU: 1, Load: 1},
			Collision: StepCost{ALU: 66, Branch: 4, Load: 12, Lines: 2}, // 82·(e·c)
		},
		GetHit:          StepCost{ALU: 48, Branch: 8, Load: 10, Lines: 3},
		GetMiss:         StepCost{ALU: 22, Branch: 5, Load: 5, Lines: 2},
		PeekHit:         StepCost{ALU: 48, Branch: 8, Load: 10, Lines: 3},
		PeekMiss:        StepCost{ALU: 22, Branch: 5, Load: 5, Lines: 2},
		PutNew:          StepCost{ALU: 120, Branch: 10, Load: 22, Store: 20, Lines: 5},
		PutKnown:        StepCost{ALU: 50, Branch: 6, Load: 10, Store: 8, Lines: 3},
		PutFull:         StepCost{ALU: 40, Branch: 6, Load: 8, Lines: 3},
		ExpireCall:      StepCost{ALU: 8, Branch: 2, Load: 2, Lines: 1},
		ExpirePerEntry:  StepCost{ALU: 200, Branch: 13, Load: 20, Store: 12, Lines: 4}, // 245·e
		RehashPerBucket: StepCost{ALU: 12, Branch: 1, Store: 2, Lines: 1},              // 15 × buckets
		RehashPerEntry:  StepCost{ALU: 96, Branch: 8, Load: 12, Store: 8, Lines: 3},    // 124·o
		RehashPerStep:   StepCost{ALU: 10, Branch: 1, Load: 3, Lines: 1},               // 14·t·o
	}
}

// FlowTableConfig configures one table instance.
type FlowTableConfig struct {
	// Name labels the instance in errors.
	Name string
	// Capacity is the maximum number of entries; Buckets defaults to it.
	Capacity int
	Buckets  int
	// KeyWords is the key width in 64-bit words (1 for a MAC address).
	KeyWords int
	// TimeoutNS ages entries out; 0 disables expiry.
	TimeoutNS uint64
	// GranularityNS quantises entry timestamps. VigNAT's bug (§5.3) is
	// this set to one second; the fix is one millisecond.
	GranularityNS uint64
	// RehashThreshold enables the keyed-hash defence (§5.2): a put whose
	// walk exceeds it renews the hash secret and rebuilds the table.
	RehashThreshold uint64
	// Seed seeds the hash secret (deterministic for reproducibility).
	Seed  uint64
	Costs FlowTableCosts
	// ValueDomain bounds stored values in the symbolic model (e.g. a
	// bridge stores port numbers < Ports); nil means unconstrained.
	ValueDomain *symb.Domain
}

// FlowTable is the chained hash table with expiry that backs the bridge's
// MAC table and the NAT/LB flow tables. It implements nfir.ConcreteDS.
//
// IR methods:
//
//	expire(now)            -> expired-count
//	get(k..., now)         -> value, found     (refreshes age on hit)
//	peek(k...)             -> value, found
//	put(k..., value, now)  -> status           (see PutStatus*)
type FlowTable struct {
	cfg FlowTableConfig
	ch  *chains
	rng uint64
}

// NewFlowTable builds a table registered against the environment's heap
// (for stable simulated addresses).
func NewFlowTable(env *nfir.Env, cfg FlowTableConfig) *FlowTable {
	if cfg.Buckets == 0 {
		cfg.Buckets = cfg.Capacity
	}
	if cfg.KeyWords <= 0 {
		cfg.KeyWords = 1
	}
	if cfg.GranularityNS == 0 {
		cfg.GranularityNS = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &FlowTable{
		cfg: cfg,
		ch:  newChains(env, cfg.Buckets, cfg.KeyWords, seed),
		rng: seed * 0x2545f4914f6cdd1d,
	}
}

// Count returns the current occupancy.
func (t *FlowTable) Count() int { return t.ch.count }

// HashSecret exposes the current keyed-hash secret so the adversarial
// traffic generator (the CASTAN stand-in) can search for colliding keys,
// playing the attacker who knows the algorithm and, in the white-box
// worst case, the key.
func (t *FlowTable) HashSecret() uint64 { return t.ch.hashKey }

// BucketOf returns the bucket index and tag a key currently maps to
// (adversarial-generation helper).
func (t *FlowTable) BucketOf(keys []uint64) (int, uint16) { return t.ch.locate(keys) }

func (t *FlowTable) quantize(now uint64) uint64 { return now - now%t.cfg.GranularityNS }

// SynthesizePathological fills the table with n entries that all collide
// into one bucket with identical tags and stamps old enough that any
// packet at time `now` mass-expires them. This reproduces the paper's
// methodology for Br1/NAT1/LB1: "we modified the NF to synthesise the
// necessary state" because no PCAP file reaches it.
func (t *FlowTable) SynthesizePathological(env *nfir.Env, n int, now uint64) {
	stamp := uint64(0)
	if now > t.cfg.TimeoutNS+1 {
		stamp = 0 // long expired
	}
	var created []*centry
	for i := 0; i < n && t.ch.count < t.cfg.Capacity; i++ {
		keys := make([]uint64, t.cfg.KeyWords)
		keys[0] = uint64(i) + 1
		e := &centry{
			keys:   keys,
			tag:    0,
			val:    uint64(i),
			stamp:  stamp,
			addr:   env.Heap.Alloc(64),
			bucket: 0,
		}
		t.ch.buckets[0] = append(t.ch.buckets[0], e)
		created = append(created, e)
		t.ch.count++
	}
	// Age order reversed w.r.t. chain order: the oldest entry sits at the
	// chain tail, so each expiry walks the whole remaining chain — the
	// quadratic worst case the e·t contract term bounds.
	for i := len(created) - 1; i >= 0; i-- {
		t.ch.ageAppend(created[i])
	}
}

// Invoke implements nfir.ConcreteDS.
func (t *FlowTable) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	kw := t.cfg.KeyWords
	switch method {
	case "expire":
		if len(args) != 1 {
			return nil, fmt.Errorf("expire wants (now), got %d args", len(args))
		}
		return []uint64{t.expire(env, args[0])}, nil
	case "get":
		if len(args) != kw+1 {
			return nil, fmt.Errorf("get wants (%d key words, now), got %d args", kw, len(args))
		}
		return t.get(env, args[:kw], args[kw]), nil
	case "peek":
		if len(args) != kw {
			return nil, fmt.Errorf("peek wants %d key words, got %d args", kw, len(args))
		}
		return t.peek(env, args), nil
	case "put":
		if len(args) != kw+2 {
			return nil, fmt.Errorf("put wants (%d key words, value, now), got %d args", kw, len(args))
		}
		return []uint64{t.put(env, args[:kw], args[kw], args[kw+1])}, nil
	default:
		return nil, fmt.Errorf("flowtable %s: unknown method %q", t.cfg.Name, method)
	}
}

func (t *FlowTable) expire(env *nfir.Env, now uint64) uint64 {
	charge(env, t.cfg.Costs.ExpireCall, []uint64{t.ch.bucketsAddr}, false)
	var e uint64
	if t.cfg.TimeoutNS == 0 {
		env.ObservePCV(PCVExpired, 0)
		return 0
	}
	var sumT, sumC uint64
	for t.ch.oldest != nil && t.ch.oldest.stamp+t.cfg.TimeoutNS <= now {
		victim := t.ch.oldest
		wt, wc := t.ch.findEntry(env, victim, t.cfg.Costs.ExpireWalk)
		sumT += wt
		sumC += wc
		charge(env, t.cfg.Costs.ExpirePerEntry, []uint64{victim.addr, t.ch.bucketsAddr + uint64(victim.bucket)*8}, false)
		t.ch.remove(victim)
		e++
	}
	// Expiry observes t and c as per-entry means (rounded up): the
	// expiry cost is exactly e·mean, so the e·t / e·c contract terms stay
	// tight even for the pathological mass-expiry state whose walks are
	// triangular — the reason the paper's over-estimation stays ≤2.4%
	// even when performance degrades by orders of magnitude (§5.1).
	if e > 0 {
		env.ObservePCVMax(PCVTraversals, ceilDiv(sumT, e))
		env.ObservePCVMax(PCVCollisions, ceilDiv(sumC, e))
	}
	env.ObservePCV(PCVExpired, e)
	return e
}

func (t *FlowTable) get(env *nfir.Env, keys []uint64, now uint64) []uint64 {
	ent, wt, wc := t.ch.walk(env, keys, t.cfg.Costs.GetWalk)
	env.ObservePCVMax(PCVTraversals, wt)
	env.ObservePCVMax(PCVCollisions, wc)
	if ent == nil {
		charge(env, t.cfg.Costs.GetMiss, []uint64{t.ch.bucketsAddr}, false)
		return []uint64{0, 0}
	}
	charge(env, t.cfg.Costs.GetHit, []uint64{ent.addr}, false)
	t.ch.refresh(ent, t.quantize(now))
	return []uint64{ent.val, 1}
}

func (t *FlowTable) peek(env *nfir.Env, keys []uint64) []uint64 {
	ent, wt, wc := t.ch.walk(env, keys, t.cfg.Costs.GetWalk)
	env.ObservePCVMax(PCVTraversals, wt)
	env.ObservePCVMax(PCVCollisions, wc)
	if ent == nil {
		charge(env, t.cfg.Costs.PeekMiss, []uint64{t.ch.bucketsAddr}, false)
		return []uint64{0, 0}
	}
	charge(env, t.cfg.Costs.PeekHit, []uint64{ent.addr}, false)
	return []uint64{ent.val, 1}
}

func (t *FlowTable) put(env *nfir.Env, keys []uint64, value, now uint64) uint64 {
	ent, wt, wc := t.ch.walk(env, keys, t.cfg.Costs.PutWalk)
	env.ObservePCVMax(PCVTraversals, wt)
	env.ObservePCVMax(PCVCollisions, wc)
	if ent != nil {
		charge(env, t.cfg.Costs.PutKnown, []uint64{ent.addr}, false)
		ent.val = value
		t.ch.refresh(ent, t.quantize(now))
		return PutStatusKnown
	}
	if t.ch.count >= t.cfg.Capacity {
		charge(env, t.cfg.Costs.PutFull, []uint64{t.ch.bucketsAddr}, false)
		return PutStatusFull
	}
	e := t.ch.insert(env, keys, value, t.quantize(now))
	for i := uint64(0); i < wt; i++ {
		charge(env, t.cfg.Costs.InsertPerTraversal, []uint64{e.addr}, true)
	}
	charge(env, t.cfg.Costs.PutNew, []uint64{e.addr, t.ch.bucketsAddr + uint64(e.bucket)*8}, false)
	if t.cfg.RehashThreshold > 0 && wt > t.cfg.RehashThreshold {
		t.rehash(env)
		return PutStatusRehash
	}
	return PutStatusNew
}

// rehash renews the hash secret and rebuilds the table — the bridge's
// collision-attack defence, whose cost cliff §5.2 analyses.
func (t *FlowTable) rehash(env *nfir.Env) {
	occupancy := uint64(t.ch.count)
	env.ObservePCVMax(PCVOccupancy, occupancy)
	// Bucket-array reallocation: a bulk charge per bucket.
	pb := t.cfg.Costs.RehashPerBucket
	env.Meter.Exec(perf.OpALU, pb.ALU*uint64(t.cfg.Buckets))
	env.Meter.Exec(perf.OpBranch, pb.Branch*uint64(t.cfg.Buckets))
	for i := 0; i < t.cfg.Buckets; i++ {
		for s := uint64(0); s < pb.Store; s++ {
			env.Meter.Store(t.ch.bucketsAddr+uint64(i)*8, 8)
		}
	}
	t.rng = t.rng*6364136223846793005 + 1442695040888963407
	meanT := t.ch.rekey(env, t.rng, t.cfg.Costs.RehashPerEntry, t.cfg.Costs.RehashPerStep)
	env.ObservePCVMax(PCVTraversals, meanT)
}

// Model returns the symbolic model + contract for this table instance
// (paper §3.2: written once per library structure by experts).
func (t *FlowTable) Model() nfir.Model { return ftModel{t: t} }

type ftModel struct{ t *FlowTable }

func (m ftModel) Outcomes(method string, args []symb.Expr, fresh nfir.FreshFn) []nfir.Outcome {
	cfg := m.t.cfg
	cap64 := uint64(cfg.Capacity)
	cPCVs := []nfir.PCV{
		{Name: PCVCollisions, Range: expr.Range{Lo: 0, Hi: cap64}},
		{Name: PCVTraversals, Range: expr.Range{Lo: 0, Hi: cap64}},
	}
	walkCost := func(w chainCosts) map[perf.Metric]expr.Poly {
		return buildCost(
			costTerm{w.Step, []string{PCVTraversals}},
			costTerm{w.Collision, []string{PCVCollisions}},
		)
	}
	fixed := func(s StepCost) map[perf.Metric]expr.Poly {
		return buildCost(costTerm{s.Add(m.t.ch.hashCost()), nil})
	}
	fixedNoHash := func(s StepCost) map[perf.Metric]expr.Poly {
		return buildCost(costTerm{s, nil})
	}

	switch method {
	case "expire":
		e := fresh("expired")
		cost := addCost(nil,
			fixedNoHash(cfg.Costs.ExpireCall),
			buildCost(
				costTerm{cfg.Costs.ExpirePerEntry, []string{PCVExpired}},
				costTerm{cfg.Costs.ExpireWalk.Step, []string{PCVExpired, PCVTraversals}},
				costTerm{cfg.Costs.ExpireWalk.Collision, []string{PCVExpired, PCVCollisions}},
			),
		)
		return []nfir.Outcome{{
			Label:   "ok",
			Results: []symb.Expr{e},
			Domains: map[string]symb.Domain{e.Name: {Lo: 0, Hi: cap64}},
			Cost:    cost,
			PCVs: append([]nfir.PCV{
				{Name: PCVExpired, Range: expr.Range{Lo: 0, Hi: cap64}},
			}, cPCVs...),
		}}

	case "get", "peek":
		hitFixed, missFixed := cfg.Costs.GetHit, cfg.Costs.GetMiss
		if method == "peek" {
			hitFixed, missFixed = cfg.Costs.PeekHit, cfg.Costs.PeekMiss
		}
		val := fresh("val")
		valDomain := symb.Full
		if cfg.ValueDomain != nil {
			valDomain = *cfg.ValueDomain
		}
		return []nfir.Outcome{
			{
				Label:   "hit",
				Results: []symb.Expr{val, symb.C(1)},
				Domains: map[string]symb.Domain{val.Name: valDomain},
				Cost:    addCost(nil, fixed(hitFixed), walkCost(cfg.Costs.GetWalk)),
				PCVs:    cPCVs,
			},
			{
				Label:   "miss",
				Results: []symb.Expr{symb.C(0), symb.C(0)},
				Cost:    addCost(nil, fixed(missFixed), walkCost(cfg.Costs.GetWalk)),
				PCVs:    cPCVs,
			},
		}

	case "put":
		outcomes := []nfir.Outcome{
			{
				Label:   "known",
				Results: []symb.Expr{symb.C(PutStatusKnown)},
				Cost:    addCost(nil, fixed(cfg.Costs.PutKnown), walkCost(cfg.Costs.PutWalk)),
				PCVs:    cPCVs,
			},
			{
				Label:   "new",
				Results: []symb.Expr{symb.C(PutStatusNew)},
				Cost: addCost(nil, fixed(cfg.Costs.PutNew), walkCost(cfg.Costs.PutWalk),
					buildCost(costTerm{cfg.Costs.InsertPerTraversal, []string{PCVTraversals}})),
				PCVs: cPCVs,
			},
			{
				Label:   "full",
				Results: []symb.Expr{symb.C(PutStatusFull)},
				Cost:    addCost(nil, fixed(cfg.Costs.PutFull), walkCost(cfg.Costs.PutWalk)),
				PCVs:    cPCVs,
			},
		}
		if cfg.RehashThreshold > 0 {
			rehashCost := addCost(nil,
				fixed(cfg.Costs.PutNew),
				walkCost(cfg.Costs.PutWalk),
				buildCost(costTerm{cfg.Costs.InsertPerTraversal, []string{PCVTraversals}}),
				buildCost(
					costTerm{scaleStep(cfg.Costs.RehashPerBucket, uint64(cfg.Buckets)), nil},
					costTerm{cfg.Costs.RehashPerEntry, []string{PCVOccupancy}},
					costTerm{cfg.Costs.RehashPerStep, []string{PCVTraversals, PCVOccupancy}},
				),
			)
			outcomes = append(outcomes, nfir.Outcome{
				Label:   "rehash",
				Results: []symb.Expr{symb.C(PutStatusRehash)},
				Cost:    rehashCost,
				PCVs: append([]nfir.PCV{
					{Name: PCVOccupancy, Range: expr.Range{Lo: 0, Hi: cap64}},
				}, cPCVs...),
			})
		}
		return outcomes
	default:
		return nil
	}
}

func scaleStep(s StepCost, k uint64) StepCost {
	return StepCost{ALU: s.ALU * k, Mul: s.Mul * k, Branch: s.Branch * k,
		Load: s.Load * k, Store: s.Store * k, Lines: s.Lines * k}
}
