package nfir

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"gobolt/internal/expr"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// fieldKey identifies a packet field by concrete offset and width.
type fieldKey struct {
	off  uint64
	size int
}

// FieldSymName is the canonical symbol name for the packet field at a
// concrete offset ("pkt_12_2" is the 16-bit field at offset 12).
func FieldSymName(off uint64, size int) string {
	return "pkt_" + strconv.FormatUint(off, 10) + "_" + strconv.Itoa(size)
}

// ParseFieldSym decodes a canonical packet-field symbol name; ok is false
// for other symbols.
func ParseFieldSym(name string) (off uint64, size int, ok bool) {
	if !strings.HasPrefix(name, "pkt_") {
		return 0, 0, false
	}
	parts := strings.Split(name[4:], "_")
	if len(parts) != 2 {
		return 0, 0, false
	}
	o, err1 := strconv.ParseUint(parts[0], 10, 64)
	s, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return 0, 0, false
	}
	return o, s, true
}

// Well-known input symbol names.
const (
	SymInPort = "in_port"
	SymNow    = "now"
	SymPktLen = "pkt_len"
)

// SymAccess is one stateless memory access recorded along a symbolic
// path; the conservative cycle model classifies it L1-hit or DRAM.
// Accesses whose address is symbolic are Known=false and always charged
// as DRAM.
type SymAccess struct {
	Known bool
	Addr  uint64
	Size  uint8
	Store bool
}

// Path is one feasible execution path through the stateless NF code: its
// input-class constraints, the stateful calls it makes (with chosen
// outcomes), its stateless cost, and its terminal action (paper §3.3).
type Path struct {
	ID          int
	Constraints []symb.Expr
	Domains     map[string]symb.Domain
	Events      []CallEvent
	Action      ActionKind
	// Port is the (possibly symbolic) output port when Action is forward.
	Port symb.Expr
	// StatelessIC/StatelessMA is the cost of the stateless code alone.
	StatelessIC uint64
	StatelessMA uint64
	// Ops tallies stateless instructions by class for the cycle model.
	Ops map[perf.OpClass]uint64
	// Accesses lists stateless memory accesses in program order.
	Accesses []SymAccess
	// PCVRanges unions the PCVs introduced by the path's call events.
	PCVRanges map[string]expr.Range
	// PktWrites maps packet fields rewritten by the NF to their symbolic
	// values (chain composition connects these to the next NF's inputs).
	PktWrites map[uint64]PktWrite
	// Session is the incremental solver state accumulated while exploring
	// this path (constraints flattened, compiled and propagated). Witness
	// solving reuses it instead of re-preparing Constraints/Domains from
	// scratch; it is nil for paths built outside exploration.
	Session *symb.Session
}

// PktWrite is one rewritten packet field.
type PktWrite struct {
	Size int
	Val  symb.Expr
}

// Engine symbolically executes a Program with stateful calls replaced by
// models, enumerating all feasible paths (Algorithm 2, lines 2–3).
type Engine struct {
	// Models maps data-structure names to their symbolic models.
	Models map[string]Model
	// MaxPaths aborts runaway exploration; 0 means DefaultMaxPaths.
	MaxPaths int
	// Feasibility is the solver used to prune dead branches; nil gets a
	// bounded default (DefaultFeasibilityMaxNodes/DefaultFeasibilitySamples).
	// Unknown verdicts keep the path (conservative).
	Feasibility *symb.Solver
	// NoIncremental disables the incremental solver engine: every
	// feasibility check re-prepares the full constraint set and paths
	// carry no Session. Verdicts and paths are identical either way; the
	// knob exists for the solver-ablation benchmark (see
	// experiments.SolverBench), not for production use.
	NoIncremental bool

	freshCtr int
	paths    []*Path
	ctx      context.Context
	inc      *symb.Incremental
}

// DefaultFeasibilityMaxNodes and DefaultFeasibilitySamples are the search
// budget of the branch-pruning solver when Feasibility is nil. They are
// deliberately small: pruning only needs to refute obviously dead
// branches, and Unknown keeps the branch anyway.
const (
	DefaultFeasibilityMaxNodes = 4000
	DefaultFeasibilitySamples  = 8
)

// DefaultMaxPaths bounds exploration; the paper reports NFs with several
// hundred to a few thousand paths.
const DefaultMaxPaths = 50000

type symState struct {
	locals      map[string]symb.Expr
	fields      map[fieldKey]symb.Expr
	writes      map[uint64]PktWrite
	constraints []symb.Expr
	domains     map[string]symb.Domain
	events      []CallEvent
	ic, ma      uint64
	ops         map[perf.OpClass]uint64
	accesses    []SymAccess
	pcvs        map[string]expr.Range
	// sess mirrors constraints+domains as incrementally maintained solver
	// state, so each feasibility check costs only the newly added
	// constraint instead of re-preparing the whole set.
	sess *symb.Session
}

// addConstraint appends a path constraint, keeping the solver session in
// sync with the constraints slice.
func (st *symState) addConstraint(c symb.Expr) {
	st.constraints = append(st.constraints, c)
	st.sess.Assert(c)
}

// setDomain bounds a symbol, keeping the solver session in sync. Every
// domain is introduced exactly once (packet fields are guarded by
// st.fields, fresh symbols are globally unique), so the session's
// intersect semantics coincide with the map write.
func (st *symState) setDomain(name string, d symb.Domain) {
	st.domains[name] = d
	st.sess.SetDomain(name, d)
}

func (st *symState) clone() *symState {
	cp := &symState{
		locals:      make(map[string]symb.Expr, len(st.locals)),
		fields:      make(map[fieldKey]symb.Expr, len(st.fields)),
		writes:      make(map[uint64]PktWrite, len(st.writes)),
		constraints: append([]symb.Expr(nil), st.constraints...),
		domains:     make(map[string]symb.Domain, len(st.domains)),
		events:      append([]CallEvent(nil), st.events...),
		ic:          st.ic,
		ma:          st.ma,
		ops:         make(map[perf.OpClass]uint64, len(st.ops)),
		accesses:    append([]SymAccess(nil), st.accesses...),
		pcvs:        make(map[string]expr.Range, len(st.pcvs)),
		sess:        st.sess.Fork(),
	}
	for k, v := range st.locals {
		cp.locals[k] = v
	}
	for k, v := range st.fields {
		cp.fields[k] = v
	}
	for k, v := range st.writes {
		cp.writes[k] = v
	}
	for k, v := range st.domains {
		cp.domains[k] = v
	}
	for k, v := range st.ops {
		cp.ops[k] = v
	}
	for k, v := range st.pcvs {
		cp.pcvs[k] = v
	}
	return cp
}

func (st *symState) exec(class perf.OpClass, n uint64) {
	st.ic += n
	st.ops[class] += n
}

// Explore runs the symbolic execution and returns all feasible paths.
func (en *Engine) Explore(p *Program) ([]*Path, error) {
	return en.ExploreContext(context.Background(), p)
}

// ExploreContext is Explore with cancellation: every path fork checks the
// context, so a runaway exploration stops promptly with a wrapped
// context error that reports how many paths had been completed.
func (en *Engine) ExploreContext(ctx context.Context, p *Program) ([]*Path, error) {
	en.ctx = ctx
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("nfir: exploring %s: %w", p.Name, err)
	}
	if en.Feasibility == nil {
		en.Feasibility = &symb.Solver{
			MaxNodes: DefaultFeasibilityMaxNodes,
			Samples:  DefaultFeasibilitySamples,
		}
	}
	if !en.NoIncremental {
		en.inc = symb.NewIncremental()
	}
	maxPaths := en.MaxPaths
	if maxPaths == 0 {
		maxPaths = DefaultMaxPaths
	}
	en.paths = nil
	st := &symState{
		locals:  make(map[string]symb.Expr),
		fields:  make(map[fieldKey]symb.Expr),
		writes:  make(map[uint64]PktWrite),
		domains: make(map[string]symb.Domain),
		ops:     make(map[perf.OpClass]uint64),
		pcvs:    make(map[string]expr.Range),
	}
	if en.inc != nil {
		st.sess = en.inc.NewSession()
	}
	st.setDomain(SymPktLen, symb.Domain{Lo: 0, Hi: MaxPacket})
	if p.NumPorts > 0 {
		st.setDomain(SymInPort, symb.Domain{Lo: 0, Hi: p.NumPorts - 1})
	}
	err := en.run(st, p.Body, func(*symState) error {
		return fmt.Errorf("nfir: %s: path fell off the end without Forward/Drop", p.Name)
	}, maxPaths)
	if err != nil {
		return nil, fmt.Errorf("nfir: exploring %s: %w", p.Name, err)
	}
	return en.paths, nil
}

type contFn func(*symState) error

func (en *Engine) run(st *symState, stmts []Stmt, k contFn, maxPaths int) error {
	if len(stmts) == 0 {
		return k(st)
	}
	s, rest := stmts[0], stmts[1:]
	next := func(st *symState) error { return en.run(st, rest, k, maxPaths) }

	switch x := s.(type) {
	case Assign:
		v := en.evalSym(st, x.E)
		st.locals[x.Dst] = v
		return next(st)

	case If:
		cond := en.evalCondSym(st, x.Cond)
		return en.fork(st, cond,
			func(st *symState) error { return en.run(st, x.Then, next, maxPaths) },
			func(st *symState) error { return en.run(st, x.Else, next, maxPaths) },
			maxPaths)

	case While:
		maxIter := x.MaxIter
		if maxIter <= 0 {
			maxIter = 64
		}
		var iterate func(st *symState, iter int) error
		iterate = func(st *symState, iter int) error {
			cond := en.evalCondSym(st, x.Cond)
			if iter >= maxIter {
				// The loop bound is part of the analysis contract: a
				// still-feasible continuation means the NF violated the
				// bounded-loop discipline.
				if c, ok := cond.(symb.Const); ok && c.V == 0 {
					return next(st)
				}
				stillFeasible := false
				if st.sess != nil {
					probe := st.sess.Fork()
					probe.Assert(cond)
					stillFeasible = probe.FeasibleContext(en.ctx, en.Feasibility)
				} else {
					cs := append(append([]symb.Expr(nil), st.constraints...), cond)
					stillFeasible = en.Feasibility.FeasibleContext(en.ctx, cs, st.domains)
				}
				if stillFeasible {
					return fmt.Errorf("while loop feasible beyond MaxIter=%d", maxIter)
				}
				return next(st)
			}
			return en.fork(st, cond,
				func(st *symState) error {
					return en.run(st, x.Body, func(st *symState) error { return iterate(st, iter+1) }, maxPaths)
				},
				next,
				maxPaths)
		}
		return iterate(st, 0)

	case Call:
		args := make([]symb.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = en.evalSym(st, a)
		}
		model, ok := en.Models[x.DS]
		if !ok {
			return fmt.Errorf("no model for data structure %q", x.DS)
		}
		outcomes := model.Outcomes(x.Method, args, en.fresh)
		if len(outcomes) == 0 {
			return fmt.Errorf("%s.%s: model returned no outcomes", x.DS, x.Method)
		}
		for i, out := range outcomes {
			branch := st
			if i < len(outcomes)-1 {
				branch = st.clone()
			}
			for _, c := range out.Constraints {
				branch.addConstraint(c)
			}
			for name, d := range out.Domains {
				branch.setDomain(name, d)
			}
			if len(out.Constraints) > 0 && !en.feasible(branch) {
				continue
			}
			if len(out.Results) < len(x.Dsts) {
				return fmt.Errorf("%s.%s: outcome %q has %d results, want ≥ %d",
					x.DS, x.Method, out.Label, len(out.Results), len(x.Dsts))
			}
			resultSyms := make([]string, len(out.Results))
			for ri, r := range out.Results {
				if sym, ok := r.(symb.Sym); ok {
					resultSyms[ri] = sym.Name
				}
			}
			branch.events = append(branch.events, CallEvent{
				DS: x.DS, Method: x.Method, Outcome: out, ResultSyms: resultSyms,
				Args: args,
			})
			for _, pcv := range out.PCVs {
				r, seen := branch.pcvs[pcv.Name]
				if !seen {
					branch.pcvs[pcv.Name] = pcv.Range
				} else {
					if pcv.Range.Lo < r.Lo {
						r.Lo = pcv.Range.Lo
					}
					if pcv.Range.Hi > r.Hi {
						r.Hi = pcv.Range.Hi
					}
					branch.pcvs[pcv.Name] = r
				}
			}
			for di, dst := range x.Dsts {
				branch.locals[dst] = out.Results[di]
			}
			if err := next(branch); err != nil {
				return err
			}
		}
		return nil

	case PktStore:
		offE := en.evalSym(st, x.Off)
		val := en.evalSym(st, x.Val)
		st.ic++
		st.ma++
		st.ops[perf.OpStore]++
		off, concrete := offE.(symb.Const)
		if !concrete {
			return fmt.Errorf("packet store at symbolic offset is not supported")
		}
		st.accesses = append(st.accesses, SymAccess{Known: true, Addr: pktBaseAddr + off.V, Size: uint8(x.Size), Store: true})
		val = truncStore(st, val, x.Size)
		st.fields[fieldKey{off.V, x.Size}] = val
		st.writes[off.V] = PktWrite{Size: x.Size, Val: val}
		return next(st)

	case MemStore:
		addrE := en.evalSym(st, x.Addr)
		en.evalSym(st, x.Val)
		st.ic++
		st.ma++
		st.ops[perf.OpStore]++
		if a, ok := addrE.(symb.Const); ok {
			st.accesses = append(st.accesses, SymAccess{Known: true, Addr: a.V, Size: uint8(x.Size), Store: true})
		} else {
			st.accesses = append(st.accesses, SymAccess{Known: false, Size: uint8(x.Size), Store: true})
		}
		// Heap contents are not tracked symbolically: a later MemLoad
		// yields a fresh symbol, which over-approximates.
		return next(st)

	case Forward:
		port := en.evalSym(st, x.Port)
		en.finish(st, ActionForward, port)
		return nil

	case DropStmt:
		en.finish(st, ActionDrop, nil)
		return nil

	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

// truncStore narrows a value to the width of the packet slot it is
// stored into, matching the concrete machine (a size-byte store keeps
// only the low size*8 bits). The expression is left untouched when it
// provably fits — a constant in range, or a symbol whose domain is
// within the store width — so the common matched-width stores keep
// their legacy constraint shape.
func truncStore(st *symState, val symb.Expr, size int) symb.Expr {
	if size >= 8 {
		return val
	}
	mask := uint64(1)<<(8*size) - 1
	switch v := val.(type) {
	case symb.Const:
		if v.V <= mask {
			return val
		}
		return symb.C(v.V & mask)
	case symb.Sym:
		if d, ok := st.domains[v.Name]; ok && d.Hi <= mask {
			return val
		}
	}
	return symb.B(symb.And, val, symb.C(mask))
}

// pktBaseAddr and txDescAddr mirror the concrete Env defaults so replayed
// traces and symbolic access lists agree.
const (
	pktBaseAddr = 0x10_0000
	txDescAddr  = 0x20_0000
)

// feasible reports whether st's constraint set might still be
// satisfiable: through the state's incremental session normally, or with
// a from-scratch solve under the NoIncremental ablation.
func (en *Engine) feasible(st *symState) bool {
	if st.sess != nil {
		return st.sess.FeasibleContext(en.ctx, en.Feasibility)
	}
	return en.Feasibility.FeasibleContext(en.ctx, st.constraints, st.domains)
}

func (en *Engine) fork(st *symState, cond symb.Expr, thenK, elseK contFn, maxPaths int) error {
	if c, ok := cond.(symb.Const); ok {
		if c.V != 0 {
			return thenK(st)
		}
		return elseK(st)
	}
	if err := en.ctx.Err(); err != nil {
		return fmt.Errorf("exploration cancelled after %d paths: %w", len(en.paths), err)
	}
	if len(en.paths) >= maxPaths {
		return fmt.Errorf("exceeded MaxPaths=%d", maxPaths)
	}
	tSt := st.clone()
	tSt.addConstraint(cond)
	fSt := st
	fSt.addConstraint(symb.Negate(cond))

	if en.feasible(tSt) {
		if err := thenK(tSt); err != nil {
			return err
		}
	}
	if en.feasible(fSt) {
		return elseK(fSt)
	}
	return nil
}

func (en *Engine) finish(st *symState, action ActionKind, port symb.Expr) {
	p := &Path{
		ID:          len(en.paths),
		Constraints: st.constraints,
		Domains:     st.domains,
		Events:      st.events,
		Action:      action,
		Port:        port,
		StatelessIC: st.ic,
		StatelessMA: st.ma,
		Ops:         st.ops,
		Accesses:    st.accesses,
		PCVRanges:   st.pcvs,
		PktWrites:   st.writes,
		Session:     st.sess,
	}
	en.paths = append(en.paths, p)
}

func (en *Engine) fresh(hint string) symb.Sym {
	en.freshCtr++
	return symb.Sym{Name: fmt.Sprintf("%s#%d", hint, en.freshCtr)}
}

// evalCondSym evaluates a branch condition, charging the extra explicit
// branch when it is not comparison-shaped (same rule as the concrete
// interpreter).
func (en *Engine) evalCondSym(st *symState, cond Expr) symb.Expr {
	v := en.evalSym(st, cond)
	if !isCmpShaped(cond) {
		st.exec(perf.OpBranch, 1)
	}
	return v
}

// evalSym evaluates an IR expression to a symbolic value, charging the
// identical cost the concrete interpreter would.
func (en *Engine) evalSym(st *symState, x Expr) symb.Expr {
	switch ex := x.(type) {
	case Const:
		return symb.C(ex.V)
	case Local:
		v, ok := st.locals[ex.Name]
		if !ok {
			panic(fmt.Sprintf("nfir: symbolic read of unassigned local %q", ex.Name))
		}
		return v
	case Now:
		return symb.S(SymNow)
	case InPort:
		return symb.S(SymInPort)
	case PktLen:
		return symb.S(SymPktLen)
	case Not:
		return symb.Negate(en.evalSym(st, ex.X))
	case Bin:
		l := en.evalSym(st, ex.L)
		r := en.evalSym(st, ex.R)
		st.exec(opClass(ex.Op), 1)
		return symb.B(ex.Op, l, r)
	case PktLoad:
		offE := en.evalSym(st, ex.Off)
		st.ic++
		st.ma++
		st.ops[perf.OpLoad]++
		if off, ok := offE.(symb.Const); ok {
			st.accesses = append(st.accesses, SymAccess{Known: true, Addr: pktBaseAddr + off.V, Size: uint8(ex.Size)})
			key := fieldKey{off.V, ex.Size}
			if v, seen := st.fields[key]; seen {
				return v
			}
			name := FieldSymName(off.V, ex.Size)
			st.setDomain(name, widthDomain(ex.Size))
			sym := symb.S(name)
			st.fields[key] = sym
			return sym
		}
		// Symbolic offset: unconstrained fresh read.
		st.accesses = append(st.accesses, SymAccess{Known: false, Size: uint8(ex.Size)})
		s := en.fresh("pktload")
		st.setDomain(s.Name, widthDomain(ex.Size))
		return s
	case MemLoad:
		addrE := en.evalSym(st, ex.Addr)
		st.ic++
		st.ma++
		st.ops[perf.OpLoad]++
		if a, ok := addrE.(symb.Const); ok {
			st.accesses = append(st.accesses, SymAccess{Known: true, Addr: a.V, Size: uint8(ex.Size)})
		} else {
			st.accesses = append(st.accesses, SymAccess{Known: false, Size: uint8(ex.Size)})
		}
		s := en.fresh("memload")
		st.setDomain(s.Name, widthDomain(ex.Size))
		return s
	default:
		panic(fmt.Sprintf("nfir: unknown expression %T", x))
	}
}

func widthDomain(size int) symb.Domain {
	switch size {
	case 1:
		return symb.Byte
	case 2:
		return symb.Word
	case 4:
		return symb.DWord
	default:
		return symb.QWord
	}
}

// InputSymbols lists the canonical input symbols (packet fields and
// metadata) a path's constraints mention, sorted.
func (p *Path) InputSymbols() []string {
	all := symb.Symbols(p.Constraints...)
	var in []string
	for _, s := range all {
		if _, _, ok := ParseFieldSym(s); ok || s == SymInPort || s == SymNow || s == SymPktLen {
			in = append(in, s)
		}
	}
	sort.Strings(in)
	return in
}

// EventSummary renders the path's stateful-call outcomes compactly, e.g.
// "flowtable.get:hit flowtable.refresh:ok"; it is the backbone of
// input-class labels.
func (p *Path) EventSummary() string {
	parts := make([]string, len(p.Events))
	for i, ev := range p.Events {
		parts[i] = ev.DS + "." + ev.Method + ":" + ev.Outcome.Label
	}
	return strings.Join(parts, " ")
}
