// Package nfir defines the intermediate representation (IR) in which the
// NFs analysed by BOLT are written, together with its two interpreters:
//
//   - a concrete interpreter that executes an NF on a real packet while
//     metering instructions and memory accesses (the stand-in for running
//     the compiled NF under Intel PIN, paper §3.5), and
//   - a symbolic interpreter that exhaustively explores the stateless
//     code's feasible paths with stateful calls replaced by models
//     (paper §3.3, Algorithm 2).
//
// The IR is deliberately small: straight-line assignments, branches,
// bounded loops, packet and heap accesses, and calls into the stateful
// data-structure library. This mirrors the Vigor discipline the paper
// assumes: stateless NF logic with simple control flow, all interesting
// state behind pre-analysed library calls.
//
// Cost model. Every construct charges a fixed number of instructions and
// memory accesses, playing the role of the x86 instruction stream:
//
//   - binary ALU ops: 1 instruction (multiplies and divides are classed
//     separately for the cycle model);
//   - comparisons: 1 instruction, classed as a branch — the fused
//     cmp+jcc macro-op when used as a condition;
//   - packet/heap loads and stores: 1 instruction + 1 memory access;
//   - If/While: the condition's cost, plus 1 branch instruction if the
//     condition is not itself a comparison;
//   - Call: the arguments' cost only — the call linkage is considered
//     inlined, matching the paper's stylised §2.1 accounting;
//   - Forward and Drop: free at the NF analysis level; the TX/drop work
//     belongs to the framework layer (package dpdk) and is charged only
//     in full-stack analyses (§3.5).
//
// Logical && and || are evaluated strictly (both sides), so a path's cost
// does not depend on operand order; this matches how a compiler lowers
// short, side-effect-free conditions with setcc/and.
package nfir

import (
	"gobolt/internal/symb"
)

// MaxPacket is the size of the packet buffer every NF sees. Packet
// length is metadata (PktLen), as with a real NIC's fixed-size mbuf.
const MaxPacket = 1514

// Expr is an IR expression producing a 64-bit value.
type Expr interface{ irExpr() }

// Const is a literal.
type Const struct{ V uint64 }

// Local reads a local variable; reading an unassigned local is an error.
type Local struct{ Name string }

// Bin applies a binary operator (shared semantics with package symb).
type Bin struct {
	Op   symb.Op
	L, R Expr
}

// Not is logical negation (1 if X == 0, else 0). It is free: branch
// polarity absorbs it.
type Not struct{ X Expr }

// PktLoad reads Size ∈ {1,2,4,8} bytes big-endian (network order) at
// byte offset Off into the packet buffer.
type PktLoad struct {
	Off  Expr
	Size int
}

// MemLoad reads Size bytes little-endian from the simulated heap; used
// by the microbenchmark programs (P1–P3) that chase pointers.
type MemLoad struct {
	Addr Expr
	Size int
}

// Now is the packet's arrival timestamp in nanoseconds.
type Now struct{}

// InPort is the index of the interface the packet arrived on.
type InPort struct{}

// PktLen is the packet's length in bytes (≤ MaxPacket).
type PktLen struct{}

func (Const) irExpr()   {}
func (Local) irExpr()   {}
func (Bin) irExpr()     {}
func (Not) irExpr()     {}
func (PktLoad) irExpr() {}
func (MemLoad) irExpr() {}
func (Now) irExpr()     {}
func (InPort) irExpr()  {}
func (PktLen) irExpr()  {}

// Stmt is an IR statement.
type Stmt interface{ irStmt() }

// Assign evaluates E into local Dst. The move itself is free (register
// renaming); only E's operations are charged.
type Assign struct {
	Dst string
	E   Expr
}

// If branches on Cond ≠ 0.
type If struct {
	Cond       Expr
	Then, Else []Stmt
}

// While repeats Body while Cond ≠ 0, at most MaxIter times. Symbolic
// execution unrolls it, forking at each check; exceeding MaxIter on a
// feasible path is reported as an analysis error, so NF authors must
// bound their loops (the Vigor discipline).
type While struct {
	Cond    Expr
	Body    []Stmt
	MaxIter int
}

// Call invokes a stateful data-structure method. Dsts receive the
// results (may be empty).
type Call struct {
	DS     string
	Method string
	Args   []Expr
	Dsts   []string
}

// PktStore writes Size bytes big-endian at byte offset Off into the
// packet (e.g. a NAT rewriting addresses).
type PktStore struct {
	Off  Expr
	Size int
	Val  Expr
}

// MemStore writes Size bytes little-endian to the simulated heap.
type MemStore struct {
	Addr Expr
	Size int
	Val  Expr
}

// Forward terminates processing, sending the packet out of Port.
type Forward struct{ Port Expr }

// DropStmt terminates processing, discarding the packet.
type DropStmt struct{}

func (Assign) irStmt()   {}
func (If) irStmt()       {}
func (While) irStmt()    {}
func (Call) irStmt()     {}
func (PktStore) irStmt() {}
func (MemStore) irStmt() {}
func (Forward) irStmt()  {}
func (DropStmt) irStmt() {}

// Program is one NF's stateless packet-processing code plus the names of
// the stateful data structures it uses.
type Program struct {
	// Name identifies the NF in contracts and reports.
	Name string
	// Body is the per-packet processing code; it must terminate with
	// Forward or Drop on every path.
	Body []Stmt
	// NumPorts bounds InPort (domain [0, NumPorts-1]).
	NumPorts uint64
	// Source records the frontend that produced the program (e.g.
	// "bvm:ratelimit.bvm"); empty means a hand-written builtin. It is
	// part of the program's printed identity (and therefore its contract
	// cache key) only when set, so builtin keys are unchanged.
	Source string
}

// Convenience constructors keep NF definitions readable.

// C is a constant expression.
func C(v uint64) Expr { return Const{V: v} }

// L reads a local.
func L(name string) Expr { return Local{Name: name} }

// Op builds a binary expression.
func Op(op symb.Op, l, r Expr) Expr { return Bin{Op: op, L: l, R: r} }

// Eq, Ne, Lt, Le, Gt, Ge, Add, Sub, Mul, Div, Mod, And2, Or2, Band, Shr,
// Shl and Xor are operator shorthands.
func Eq(l, r Expr) Expr   { return Bin{Op: symb.Eq, L: l, R: r} }
func Ne(l, r Expr) Expr   { return Bin{Op: symb.Ne, L: l, R: r} }
func Lt(l, r Expr) Expr   { return Bin{Op: symb.Ult, L: l, R: r} }
func Le(l, r Expr) Expr   { return Bin{Op: symb.Ule, L: l, R: r} }
func Gt(l, r Expr) Expr   { return Bin{Op: symb.Ugt, L: l, R: r} }
func Ge(l, r Expr) Expr   { return Bin{Op: symb.Uge, L: l, R: r} }
func Add(l, r Expr) Expr  { return Bin{Op: symb.Add, L: l, R: r} }
func Sub(l, r Expr) Expr  { return Bin{Op: symb.Sub, L: l, R: r} }
func Mul(l, r Expr) Expr  { return Bin{Op: symb.Mul, L: l, R: r} }
func Div(l, r Expr) Expr  { return Bin{Op: symb.Div, L: l, R: r} }
func Mod(l, r Expr) Expr  { return Bin{Op: symb.Mod, L: l, R: r} }
func And2(l, r Expr) Expr { return Bin{Op: symb.LAnd, L: l, R: r} }
func Or2(l, r Expr) Expr  { return Bin{Op: symb.LOr, L: l, R: r} }
func Band(l, r Expr) Expr { return Bin{Op: symb.And, L: l, R: r} }
func Bor(l, r Expr) Expr  { return Bin{Op: symb.Or, L: l, R: r} }
func Shr(l, r Expr) Expr  { return Bin{Op: symb.Shr, L: l, R: r} }
func Shl(l, r Expr) Expr  { return Bin{Op: symb.Shl, L: l, R: r} }
func Xor(l, r Expr) Expr  { return Bin{Op: symb.Xor, L: l, R: r} }

// Field reads a packet field at a constant offset.
func Field(off uint64, size int) Expr { return PktLoad{Off: Const{V: off}, Size: size} }

// Set assigns a local.
func Set(dst string, e Expr) Stmt { return Assign{Dst: dst, E: e} }

// Then builds an If without an else branch.
func Then(cond Expr, then ...Stmt) Stmt { return If{Cond: cond, Then: then} }

// IfElse builds a two-armed If.
func IfElse(cond Expr, then, els []Stmt) Stmt { return If{Cond: cond, Then: then, Else: els} }

// Invoke builds a stateful call.
func Invoke(ds, method string, args []Expr, dsts ...string) Stmt {
	return Call{DS: ds, Method: method, Args: args, Dsts: dsts}
}

// Drop is the drop statement.
func Drop() Stmt { return DropStmt{} }

// Fwd forwards out of a port.
func Fwd(port Expr) Stmt { return Forward{Port: port} }
