package nfir

import (
	"fmt"
)

// Validate statically checks a program for the mistakes the interpreters
// would otherwise only catch on the specific packet that trips them:
// paths that can fall off the end, reads of never-assigned locals,
// constant packet accesses out of bounds, unbounded loops, calls to
// unregistered data structures, and unreachable statements. dsNames may
// be nil to skip the registry check.
func (p *Program) Validate(dsNames map[string]bool) []error {
	v := &validator{ds: dsNames}
	return v.run(p)
}

// DSSig describes one data-structure method for signature-aware
// validation: the exact argument count its Invoke expects and how many
// results it returns.
type DSSig struct {
	Args    int
	Results int
}

// ValidateWithSigs runs Validate's checks plus the signature-level ones
// a code-generating frontend needs and a hand author usually gets right
// by construction: calls must name a known method and match its arity,
// must not bind more results than the method returns (a read of such a
// local would observe a value — often a model PCV — the runtime never
// produced), and constant Forward ports must be within NumPorts.
// Hand-written NFs use pseudo-ports (the bridge's flood port) on
// purpose, which is why the port-range check lives here and not in
// Validate.
func (p *Program) ValidateWithSigs(sigs map[string]map[string]DSSig) []error {
	ds := make(map[string]bool, len(sigs))
	for name := range sigs {
		ds[name] = true
	}
	v := &validator{ds: ds, sigs: sigs, strictPorts: true, ports: p.NumPorts}
	return v.run(p)
}

type validator struct {
	ds          map[string]bool
	sigs        map[string]map[string]DSSig
	strictPorts bool
	ports       uint64
	errs        []error
}

func (v *validator) run(p *Program) []error {
	defined := map[string]bool{}
	terminates := v.checkStmts(p.Body, defined, "body")
	if !terminates {
		v.errs = append(v.errs, fmt.Errorf("%s: not every path ends in Forward or Drop", p.Name))
	}
	return v.errs
}

// checkStmts validates a statement list, updating the defined-locals set
// in place, and reports whether the list terminates on every path.
func (v *validator) checkStmts(stmts []Stmt, defined map[string]bool, where string) bool {
	for i, s := range stmts {
		if v.checkStmt(s, defined, where) {
			if i != len(stmts)-1 {
				v.errs = append(v.errs, fmt.Errorf("%s: unreachable statements after position %d", where, i))
			}
			return true
		}
	}
	return false
}

// checkStmt validates one statement; true means it terminates every path.
func (v *validator) checkStmt(s Stmt, defined map[string]bool, where string) bool {
	switch x := s.(type) {
	case Assign:
		v.checkExpr(x.E, defined, where)
		defined[x.Dst] = true
		return false
	case If:
		v.checkExpr(x.Cond, defined, where)
		thenDef := copySet(defined)
		elseDef := copySet(defined)
		thenTerm := v.checkStmts(x.Then, thenDef, where+"/then")
		elseTerm := v.checkStmts(x.Else, elseDef, where+"/else")
		// Locals surviving the If are those defined on both live arms.
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceSet(defined, elseDef)
		case elseTerm:
			replaceSet(defined, thenDef)
		default:
			replaceSet(defined, intersect(thenDef, elseDef))
		}
		return false
	case While:
		v.checkExpr(x.Cond, defined, where)
		if x.MaxIter <= 0 {
			v.errs = append(v.errs, fmt.Errorf("%s: while loop without a MaxIter bound", where))
		}
		// The body may execute zero times: its definitions don't escape.
		bodyDef := copySet(defined)
		if v.checkStmts(x.Body, bodyDef, where+"/loop") {
			v.errs = append(v.errs, fmt.Errorf("%s: loop body terminates unconditionally", where))
		}
		return false
	case Call:
		for _, a := range x.Args {
			v.checkExpr(a, defined, where)
		}
		if v.ds != nil && !v.ds[x.DS] {
			v.errs = append(v.errs, fmt.Errorf("%s: call to unregistered data structure %q", where, x.DS))
		} else if v.sigs != nil {
			sig, ok := v.sigs[x.DS][x.Method]
			switch {
			case !ok:
				v.errs = append(v.errs, fmt.Errorf("%s: %s has no method %q", where, x.DS, x.Method))
			case len(x.Args) != sig.Args:
				v.errs = append(v.errs, fmt.Errorf("%s: %s.%s wants %d args, call passes %d", where, x.DS, x.Method, sig.Args, len(x.Args)))
			case len(x.Dsts) > sig.Results:
				v.errs = append(v.errs, fmt.Errorf("%s: %s.%s returns %d results, call binds %d", where, x.DS, x.Method, sig.Results, len(x.Dsts)))
			}
		}
		for _, d := range x.Dsts {
			defined[d] = true
		}
		return false
	case PktStore:
		v.checkExpr(x.Off, defined, where)
		v.checkExpr(x.Val, defined, where)
		v.checkAccessSize(x.Size, where)
		if off, ok := x.Off.(Const); ok && off.V+uint64(x.Size) > MaxPacket {
			v.errs = append(v.errs, fmt.Errorf("%s: packet store at %d..%d exceeds MaxPacket", where, off.V, off.V+uint64(x.Size)))
		}
		return false
	case MemStore:
		v.checkExpr(x.Addr, defined, where)
		v.checkExpr(x.Val, defined, where)
		v.checkAccessSize(x.Size, where)
		return false
	case Forward:
		v.checkExpr(x.Port, defined, where)
		if v.strictPorts && v.ports > 0 {
			if c, ok := x.Port.(Const); ok && c.V >= v.ports {
				v.errs = append(v.errs, fmt.Errorf("%s: forward to constant port %d out of range (ports=%d)", where, c.V, v.ports))
			}
		}
		return true
	case DropStmt:
		return true
	default:
		v.errs = append(v.errs, fmt.Errorf("%s: unknown statement %T", where, s))
		return false
	}
}

func (v *validator) checkExpr(e Expr, defined map[string]bool, where string) {
	switch x := e.(type) {
	case Const, Now, InPort, PktLen:
	case Local:
		if !defined[x.Name] {
			v.errs = append(v.errs, fmt.Errorf("%s: read of possibly-unassigned local %q", where, x.Name))
		}
	case Not:
		v.checkExpr(x.X, defined, where)
	case Bin:
		v.checkExpr(x.L, defined, where)
		v.checkExpr(x.R, defined, where)
	case PktLoad:
		v.checkExpr(x.Off, defined, where)
		v.checkAccessSize(x.Size, where)
		if off, ok := x.Off.(Const); ok && off.V+uint64(x.Size) > MaxPacket {
			v.errs = append(v.errs, fmt.Errorf("%s: packet load at %d..%d exceeds MaxPacket", where, off.V, off.V+uint64(x.Size)))
		}
	case MemLoad:
		v.checkExpr(x.Addr, defined, where)
		v.checkAccessSize(x.Size, where)
	default:
		v.errs = append(v.errs, fmt.Errorf("%s: unknown expression %T", where, e))
	}
}

func (v *validator) checkAccessSize(size int, where string) {
	switch size {
	case 1, 2, 4, 8:
	default:
		v.errs = append(v.errs, fmt.Errorf("%s: unsupported access size %d", where, size))
	}
}

func copySet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func replaceSet(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}
