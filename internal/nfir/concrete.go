package nfir

import (
	"encoding/binary"
	"fmt"

	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// Heap is the simulated flat memory used by MemLoad/MemStore and by the
// data-structure library to reserve address ranges (so access traces have
// realistic, stable addresses). It is byte-addressed and sparse.
type Heap struct {
	mem  map[uint64]byte
	next uint64
}

// heapBase leaves low addresses free so packet buffers and device rings
// can live below the heap.
const heapBase = 0x1000_0000

// NewHeap returns an empty heap.
func NewHeap() *Heap {
	return &Heap{mem: make(map[uint64]byte), next: heapBase}
}

// Alloc reserves size bytes and returns the base address. The region is
// zeroed. Alignment is 64 bytes so distinct objects never share a cache
// line.
func (h *Heap) Alloc(size uint64) uint64 {
	const align = 64
	h.next = (h.next + align - 1) &^ (align - 1)
	base := h.next
	h.next += size
	return base
}

// Read loads size ∈ {1,2,4,8} bytes little-endian at addr.
func (h *Heap) Read(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(h.mem[addr+uint64(i)]) << (8 * i)
	}
	return v
}

// Write stores size ∈ {1,2,4,8} bytes little-endian at addr.
func (h *Heap) Write(addr uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		h.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

// Env is the execution environment for one packet through the concrete
// interpreter. Reuse an Env across packets via ResetPacket to keep the
// data structures' state.
type Env struct {
	// Pkt is the packet buffer (length MaxPacket); PktLen is the actual
	// packet length.
	Pkt    []byte
	PktLen uint64
	// PktAddr is the simulated address of the packet buffer.
	PktAddr uint64
	// InPort is the arrival interface index.
	InPort uint64
	// Time is the packet's arrival timestamp in nanoseconds.
	Time uint64
	// Meter accounts the execution's cost; may be nil to run unmetered.
	Meter *perf.Meter
	// Heap is the simulated memory; shared across packets.
	Heap *Heap
	// DS maps data-structure names to their linked implementations —
	// real ones in the production build, replay stubs during analysis.
	DS map[string]ConcreteDS
	// Action is the processing outcome, valid after Run returns.
	Action Action

	// TxAddr is the simulated TX-descriptor address charged by Forward.
	TxAddr uint64

	locals   map[string]uint64
	localDep map[string]bool
	pcvs     map[string]uint64
	outcome  string
}

// NewEnv builds an environment with a fresh heap and packet buffer.
func NewEnv() *Env {
	h := NewHeap()
	return &Env{
		Pkt:      make([]byte, MaxPacket),
		PktAddr:  0x10_0000,
		TxAddr:   0x20_0000,
		Heap:     h,
		DS:       make(map[string]ConcreteDS),
		locals:   make(map[string]uint64),
		localDep: make(map[string]bool),
		pcvs:     make(map[string]uint64),
	}
}

// ResetPacket prepares the Env for the next packet: locals, PCV
// observations and the previous action are cleared; data-structure state
// and the heap persist.
func (e *Env) ResetPacket(pkt []byte, inPort, timeNS uint64) {
	if len(pkt) > MaxPacket {
		pkt = pkt[:MaxPacket]
	}
	copy(e.Pkt, pkt)
	for i := len(pkt); i < MaxPacket; i++ {
		e.Pkt[i] = 0
	}
	e.PktLen = uint64(len(pkt))
	e.InPort = inPort
	e.Time = timeNS
	e.Action = Action{}
	clear(e.locals)
	clear(e.localDep)
	clear(e.pcvs)
}

// ObservePCV accumulates an observation of a performance-critical
// variable for the current packet; the Distiller and the soundness tests
// read the per-packet totals via PCVs. Counting PCVs (expired entries)
// sum across calls.
func (e *Env) ObservePCV(name string, v uint64) { e.pcvs[name] += v }

// ObservePCVMax records a per-operation PCV with max semantics: PCVs like
// "hash collisions" and "bucket traversals" denote the worst single
// operation the packet induced, which is what makes per-call contract
// terms sum soundly into the per-packet contract.
func (e *Env) ObservePCVMax(name string, v uint64) {
	if cur, ok := e.pcvs[name]; !ok || v > cur {
		e.pcvs[name] = v
	}
}

// PCVs returns the PCV observations accumulated for the current packet.
// The map is live; copy it before the next ResetPacket.
func (e *Env) PCVs() map[string]uint64 { return e.pcvs }

// ObserveOutcome reports which of the running method's model outcomes
// (by Outcome.Label) the concrete execution took. Only data structures
// whose sibling outcomes are not distinguishable from their results
// alone need to call it — e.g. an LPM get whose short and long branches
// both return one port value — so the online classifier has direct
// branch evidence where result matching is blind.
func (e *Env) ObserveOutcome(label string) { e.outcome = label }

// TakeOutcome returns and clears the last reported outcome label. Call
// recorders use it to bracket a single Invoke: clear before, read after.
func (e *Env) TakeOutcome() string {
	o := e.outcome
	e.outcome = ""
	return o
}

// Local returns a local's value, for tests and replay validation.
func (e *Env) Local(name string) (uint64, bool) {
	v, ok := e.locals[name]
	return v, ok
}

// Run executes the program's body on the current packet. It returns the
// resulting action; every path must end in Forward or Drop.
func (e *Env) Run(p *Program) (Action, error) {
	done, err := e.execStmts(p.Body)
	if err != nil {
		return Action{}, fmt.Errorf("nfir: %s: %w", p.Name, err)
	}
	if !done {
		return Action{}, fmt.Errorf("nfir: %s: fell off the end without Forward/Drop", p.Name)
	}
	return e.Action, nil
}

func (e *Env) execStmts(stmts []Stmt) (done bool, err error) {
	for _, s := range stmts {
		done, err = e.execStmt(s)
		if err != nil || done {
			return done, err
		}
	}
	return false, nil
}

func (e *Env) execStmt(s Stmt) (done bool, err error) {
	switch st := s.(type) {
	case Assign:
		v, dep, err := e.eval(st.E)
		if err != nil {
			return false, err
		}
		e.locals[st.Dst] = v
		e.localDep[st.Dst] = dep
		return false, nil
	case If:
		v, _, err := e.evalCond(st.Cond)
		if err != nil {
			return false, err
		}
		if v != 0 {
			return e.execStmts(st.Then)
		}
		return e.execStmts(st.Else)
	case While:
		for iter := 0; ; iter++ {
			if st.MaxIter > 0 && iter > st.MaxIter {
				return false, fmt.Errorf("loop exceeded MaxIter=%d", st.MaxIter)
			}
			v, _, err := e.evalCond(st.Cond)
			if err != nil {
				return false, err
			}
			if v == 0 {
				return false, nil
			}
			done, err := e.execStmts(st.Body)
			if err != nil || done {
				return done, err
			}
		}
	case Call:
		args := make([]uint64, len(st.Args))
		for i, a := range st.Args {
			v, _, err := e.eval(a)
			if err != nil {
				return false, err
			}
			args[i] = v
		}
		ds, ok := e.DS[st.DS]
		if !ok {
			return false, fmt.Errorf("unknown data structure %q", st.DS)
		}
		results, err := ds.Invoke(st.Method, args, e)
		if err != nil {
			return false, fmt.Errorf("%s.%s: %w", st.DS, st.Method, err)
		}
		if len(results) < len(st.Dsts) {
			return false, fmt.Errorf("%s.%s returned %d values, want ≥ %d", st.DS, st.Method, len(results), len(st.Dsts))
		}
		for i, dst := range st.Dsts {
			e.locals[dst] = results[i]
			e.localDep[dst] = true // model results flow through memory
		}
		return false, nil
	case PktStore:
		off, _, err := e.eval(st.Off)
		if err != nil {
			return false, err
		}
		v, _, err := e.eval(st.Val)
		if err != nil {
			return false, err
		}
		if off+uint64(st.Size) > MaxPacket {
			return false, fmt.Errorf("packet store out of bounds: off=%d size=%d", off, st.Size)
		}
		e.Meter.Store(e.PktAddr+off, uint8(st.Size))
		putBE(e.Pkt[off:], st.Size, v)
		return false, nil
	case MemStore:
		addr, _, err := e.eval(st.Addr)
		if err != nil {
			return false, err
		}
		v, _, err := e.eval(st.Val)
		if err != nil {
			return false, err
		}
		e.Meter.Store(addr, uint8(st.Size))
		e.Heap.Write(addr, st.Size, v)
		return false, nil
	case Forward:
		port, _, err := e.eval(st.Port)
		if err != nil {
			return false, err
		}
		e.Action = Action{Kind: ActionForward, Port: port}
		return true, nil
	case DropStmt:
		e.Action = Action{Kind: ActionDrop}
		return true, nil
	default:
		return false, fmt.Errorf("unknown statement %T", s)
	}
}

// evalCond evaluates a branch condition, charging the extra branch
// instruction when the condition is not itself comparison-shaped (a bare
// value needs an explicit test+jump).
func (e *Env) evalCond(cond Expr) (uint64, bool, error) {
	v, dep, err := e.eval(cond)
	if err != nil {
		return 0, false, err
	}
	if !isCmpShaped(cond) {
		e.Meter.Exec(perf.OpBranch, 1)
	}
	return v, dep, nil
}

// isCmpShaped reports whether evaluating the expression already ends in a
// comparison whose result feeds the branch (so cmp+jcc fuse).
func isCmpShaped(e Expr) bool {
	switch x := e.(type) {
	case Bin:
		return x.Op.IsComparison()
	case Not:
		return isCmpShaped(x.X)
	}
	return false
}

// eval computes an expression, charging its cost. The bool result is the
// load-dependence taint used by the detailed hardware model to decide
// which misses can overlap.
func (e *Env) eval(x Expr) (uint64, bool, error) {
	switch ex := x.(type) {
	case Const:
		return ex.V, false, nil
	case Local:
		v, ok := e.locals[ex.Name]
		if !ok {
			return 0, false, fmt.Errorf("read of unassigned local %q", ex.Name)
		}
		return v, e.localDep[ex.Name], nil
	case Now:
		return e.Time, false, nil
	case InPort:
		return e.InPort, false, nil
	case PktLen:
		return e.PktLen, false, nil
	case Not:
		v, dep, err := e.eval(ex.X)
		if err != nil {
			return 0, false, err
		}
		if v == 0 {
			return 1, dep, nil
		}
		return 0, dep, nil
	case Bin:
		l, ldep, err := e.eval(ex.L)
		if err != nil {
			return 0, false, err
		}
		r, rdep, err := e.eval(ex.R)
		if err != nil {
			return 0, false, err
		}
		e.Meter.Exec(opClass(ex.Op), 1)
		return symb.ApplyOp(ex.Op, l, r), ldep || rdep, nil
	case PktLoad:
		off, _, err := e.eval(ex.Off)
		if err != nil {
			return 0, false, err
		}
		if off+uint64(ex.Size) > MaxPacket {
			return 0, false, fmt.Errorf("packet load out of bounds: off=%d size=%d", off, ex.Size)
		}
		e.Meter.Load(e.PktAddr+off, uint8(ex.Size), false)
		return getBE(e.Pkt[off:], ex.Size), true, nil
	case MemLoad:
		addr, adep, err := e.eval(ex.Addr)
		if err != nil {
			return 0, false, err
		}
		e.Meter.Load(addr, uint8(ex.Size), adep)
		return e.Heap.Read(addr, ex.Size), true, nil
	default:
		return 0, false, fmt.Errorf("unknown expression %T", x)
	}
}

// opClass maps an operator to its hardware cost class.
func opClass(op symb.Op) perf.OpClass {
	switch {
	case op == symb.Mul:
		return perf.OpMul
	case op == symb.Div || op == symb.Mod:
		return perf.OpDiv
	case op.IsComparison():
		return perf.OpBranch
	default:
		return perf.OpALU
	}
}

func getBE(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.BigEndian.Uint16(b))
	case 4:
		return uint64(binary.BigEndian.Uint32(b))
	case 8:
		return binary.BigEndian.Uint64(b)
	default:
		panic("nfir: unsupported access size")
	}
}

func putBE(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.BigEndian.PutUint16(b, uint16(v))
	case 4:
		binary.BigEndian.PutUint32(b, uint32(v))
	case 8:
		binary.BigEndian.PutUint64(b, v)
	default:
		panic("nfir: unsupported access size")
	}
}
