package nfir

import (
	"strings"
	"testing"
)

func errorsContain(errs []error, frag string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), frag) {
			return true
		}
	}
	return false
}

func TestValidateCleanProgram(t *testing.T) {
	p := &Program{
		Name:     "clean",
		NumPorts: 2,
		Body: []Stmt{
			Set("x", Field(12, 2)),
			IfElse(Eq(L("x"), C(0x0800)),
				[]Stmt{
					nfInvoke(),
					Fwd(L("port")),
				},
				[]Stmt{Drop()},
			),
		},
	}
	if errs := p.Validate(map[string]bool{"lpm": true}); len(errs) != 0 {
		t.Fatalf("clean program reported: %v", errs)
	}
}

func nfInvoke() Stmt {
	return Invoke("lpm", "get", []Expr{Field(30, 4)}, "port")
}

func TestValidateMissingTerminator(t *testing.T) {
	p := &Program{Name: "noend", Body: []Stmt{Set("x", C(1))}}
	if errs := p.Validate(nil); !errorsContain(errs, "Forward or Drop") {
		t.Errorf("errs = %v", errs)
	}
	// One-armed If does not terminate all paths.
	p2 := &Program{Name: "oneArm", Body: []Stmt{Then(Eq(Field(0, 1), C(1)), Drop())}}
	if errs := p2.Validate(nil); !errorsContain(errs, "Forward or Drop") {
		t.Errorf("errs = %v", errs)
	}
}

func TestValidateUnassignedLocal(t *testing.T) {
	p := &Program{Name: "ghost", Body: []Stmt{Fwd(L("nope"))}}
	if errs := p.Validate(nil); !errorsContain(errs, `unassigned local "nope"`) {
		t.Errorf("errs = %v", errs)
	}
	// A local defined in only one branch of an If is possibly unassigned
	// afterwards.
	p2 := &Program{
		Name: "branchdef",
		Body: []Stmt{
			IfElse(Eq(Field(0, 1), C(1)),
				[]Stmt{Set("y", C(1))},
				[]Stmt{Set("z", C(2))},
			),
			Fwd(L("y")),
		},
	}
	if errs := p2.Validate(nil); !errorsContain(errs, `unassigned local "y"`) {
		t.Errorf("errs = %v", errs)
	}
	// But a local defined before a terminating branch survives.
	p3 := &Program{
		Name: "okdef",
		Body: []Stmt{
			IfElse(Eq(Field(0, 1), C(1)),
				[]Stmt{Drop()},
				[]Stmt{Set("y", C(2))},
			),
			Fwd(L("y")),
		},
	}
	if errs := p3.Validate(nil); len(errs) != 0 {
		t.Errorf("terminating-branch definition rejected: %v", errs)
	}
}

func TestValidateOutOfBoundsAccess(t *testing.T) {
	p := &Program{Name: "oob", Body: []Stmt{Set("x", Field(MaxPacket, 2)), Drop()}}
	if errs := p.Validate(nil); !errorsContain(errs, "exceeds MaxPacket") {
		t.Errorf("errs = %v", errs)
	}
	p2 := &Program{Name: "oobw", Body: []Stmt{PktStore{Off: C(MaxPacket - 1), Size: 4, Val: C(0)}, Drop()}}
	if errs := p2.Validate(nil); !errorsContain(errs, "exceeds MaxPacket") {
		t.Errorf("errs = %v", errs)
	}
	p3 := &Program{Name: "badsize", Body: []Stmt{Set("x", Field(0, 3)), Drop()}}
	if errs := p3.Validate(nil); !errorsContain(errs, "unsupported access size") {
		t.Errorf("errs = %v", errs)
	}
}

func TestValidateLoops(t *testing.T) {
	unbounded := &Program{
		Name: "loop",
		Body: []Stmt{
			Set("i", C(0)),
			While{Cond: Lt(L("i"), C(4)), Body: []Stmt{Set("i", Add(L("i"), C(1)))}},
			Drop(),
		},
	}
	if errs := unbounded.Validate(nil); !errorsContain(errs, "MaxIter") {
		t.Errorf("errs = %v", errs)
	}
	alwaysExit := &Program{
		Name: "exitloop",
		Body: []Stmt{
			While{Cond: C(1), MaxIter: 3, Body: []Stmt{Drop()}},
			Drop(),
		},
	}
	if errs := alwaysExit.Validate(nil); !errorsContain(errs, "terminates unconditionally") {
		t.Errorf("errs = %v", errs)
	}
	// Loop-body definitions must not leak (zero-iteration case).
	leak := &Program{
		Name: "leak",
		Body: []Stmt{
			Set("i", C(0)),
			While{Cond: Lt(L("i"), Field(0, 1)), MaxIter: 4, Body: []Stmt{
				Set("v", C(7)),
				Set("i", Add(L("i"), C(1))),
			}},
			Fwd(L("v")),
		},
	}
	if errs := leak.Validate(nil); !errorsContain(errs, `unassigned local "v"`) {
		t.Errorf("errs = %v", errs)
	}
}

func TestValidateUnreachableAndRegistry(t *testing.T) {
	p := &Program{
		Name: "dead",
		Body: []Stmt{
			Drop(),
			Set("x", C(1)),
		},
	}
	if errs := p.Validate(nil); !errorsContain(errs, "unreachable") {
		t.Errorf("errs = %v", errs)
	}
	p2 := &Program{
		Name: "ghostds",
		Body: []Stmt{
			Invoke("ghost", "m", nil),
			Drop(),
		},
	}
	if errs := p2.Validate(map[string]bool{"real": true}); !errorsContain(errs, `unregistered data structure "ghost"`) {
		t.Errorf("errs = %v", errs)
	}
	// nil registry skips the DS check.
	if errs := p2.Validate(nil); errorsContain(errs, "unregistered") {
		t.Errorf("nil registry should skip DS check: %v", errs)
	}
}

// All shipped NFs must validate cleanly — this pins the validator to the
// real corpus.
func TestValidateShippedPrograms(t *testing.T) {
	progs := shippedPrograms(t)
	for _, tc := range progs {
		names := map[string]bool{}
		for n := range tc.ds {
			names[n] = true
		}
		if errs := tc.prog.Validate(names); len(errs) != 0 {
			t.Errorf("%s: %v", tc.prog.Name, errs)
		}
	}
}

type shipped struct {
	prog *Program
	ds   map[string]bool
}

// shippedPrograms is populated from the nf package via a tiny local
// mirror to avoid an import cycle (nf imports nfir); the real NFs are
// validated in the core integration tests instead, and here we cover a
// representative structural corpus.
func shippedPrograms(t *testing.T) []shipped {
	t.Helper()
	router := &Program{
		Name:     "router",
		NumPorts: 4,
		Body: []Stmt{
			Then(Ne(Field(12, 2), C(0x0800)), Drop()),
			Invoke("lpm", "get", []Expr{Field(30, 4)}, "port"),
			Fwd(L("port")),
		},
	}
	return []shipped{{prog: router, ds: map[string]bool{"lpm": true}}}
}

// TestValidateWithSigs covers the signature-aware layer the bytecode
// compiler self-checks against: method existence, call arity, result
// binding and strict constant-port range — shapes a frontend bug would
// emit but hand-written builtins never do.
func TestValidateWithSigs(t *testing.T) {
	sigs := map[string]map[string]DSSig{
		"tbl": {
			"get": {Args: 2, Results: 2},
			"put": {Args: 3, Results: 1},
		},
	}
	base := func(body ...Stmt) *Program {
		return &Program{Name: "sig-test", NumPorts: 2, Body: body}
	}
	cases := []struct {
		name string
		prog *Program
		want string // "" means must validate cleanly
	}{
		{
			name: "clean",
			prog: base(
				Invoke("tbl", "get", []Expr{C(1), Now{}}, "v", "ok"),
				IfElse(Eq(L("ok"), C(1)), []Stmt{Fwd(C(1))}, []Stmt{Drop()}),
			),
		},
		{
			name: "unknown method",
			prog: base(Invoke("tbl", "evict", []Expr{C(1)}, "v"), Drop()),
			want: `tbl has no method "evict"`,
		},
		{
			name: "arity mismatch",
			prog: base(Invoke("tbl", "get", []Expr{C(1)}, "v"), Drop()),
			want: "tbl.get wants 2 args, call passes 1",
		},
		{
			name: "excess result binding",
			prog: base(Invoke("tbl", "put", []Expr{C(1), C(2), Now{}}, "st", "extra"), Drop()),
			want: "tbl.put returns 1 results, call binds 2",
		},
		{
			name: "constant port out of range",
			prog: base(Fwd(C(7))),
			want: "forward to constant port 7 out of range (ports=2)",
		},
		{
			name: "undeclared data structure",
			prog: base(Invoke("ghost", "get", []Expr{C(1), Now{}}, "v"), Drop()),
			want: `call to unregistered data structure "ghost"`,
		},
		{
			name: "unbound result read",
			prog: base(
				Invoke("tbl", "get", []Expr{C(1), Now{}}, "v"),
				Fwd(L("missing")),
			),
			want: `"missing"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := tc.prog.ValidateWithSigs(sigs)
			if tc.want == "" {
				if len(errs) != 0 {
					t.Fatalf("clean program reported: %v", errs)
				}
				return
			}
			if !errorsContain(errs, tc.want) {
				t.Fatalf("errs = %v, want one containing %q", errs, tc.want)
			}
		})
	}
}

// TestValidateWithSigsKeepsFloodPorts pins that the strict port check
// lives only in the signature-aware layer: the base Validate must keep
// accepting the bridge's flood-port sentinel (0xFFFF ≥ NumPorts).
func TestValidateWithSigsKeepsFloodPorts(t *testing.T) {
	p := &Program{Name: "flood", NumPorts: 4, Body: []Stmt{Fwd(C(0xFFFF))}}
	if errs := p.Validate(nil); len(errs) != 0 {
		t.Fatalf("base Validate rejected the flood sentinel: %v", errs)
	}
	if errs := p.ValidateWithSigs(nil); !errorsContain(errs, "out of range") {
		t.Fatalf("strict validation accepted port 0xFFFF: %v", errs)
	}
}
