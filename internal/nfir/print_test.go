package nfir

import (
	"strings"
	"testing"
)

func TestProgramString(t *testing.T) {
	p := &Program{
		Name:     "demo",
		NumPorts: 2,
		Body: []Stmt{
			Set("ttl", Field(22, 1)),
			IfElse(Eq(Field(12, 2), C(0x0800)),
				[]Stmt{
					While{Cond: Lt(L("ttl"), C(5)), MaxIter: 8, Body: []Stmt{
						Set("ttl", Add(L("ttl"), C(1))),
					}},
					Invoke("table", "get", []Expr{Field(30, 4), Now{}}, "port", "found"),
					PktStore{Off: C(22), Size: 1, Val: L("ttl")},
					MemStore{Addr: C(0x100), Size: 8, Val: InPort{}},
					Fwd(L("port")),
				},
				[]Stmt{Drop()},
			),
		},
	}
	out := p.String()
	for _, want := range []string{
		"nf demo(ports=2):",
		"ttl = pkt[22:1]",
		"if (pkt[12:2] == 0x800):",
		"while (ttl < 5) (max 8):",
		"port, found = table.get(pkt[30:4], now())",
		"pkt[22:1] = ttl",
		"mem[0x100:8] = in_port()",
		"FORWARD(port)",
		"else:",
		"DROP",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestExprString(t *testing.T) {
	cases := map[string]Expr{
		"(a + 3)":        Add(L("a"), C(3)),
		"!(a == 1)":      Not{X: Eq(L("a"), C(1))},
		"pkt_len()":      PktLen{},
		"mem[ptr:8]":     MemLoad{Addr: L("ptr"), Size: 8},
		"((a << 2) | b)": Bor(Shl(L("a"), C(2)), L("b")),
	}
	for want, e := range cases {
		if got := ExprString(e); got != want {
			t.Errorf("ExprString = %q, want %q", got, want)
		}
	}
}
