package nfir

// This file defines the vocabulary of the sharability analysis (the
// shard dimension of performance contracts): how a stateful method
// addresses state (StateAccess, reported by models that implement
// SharabilityModel) and the per-call verdict the analysis derives from
// it (Sharing, attached to CallEvents).
//
// The analysis follows the state taxonomy of the NFork/automatic-
// parallelization line of work: state a call touches is *shard-local*
// when the call is keyed and the key determines the flow-hash fields an
// RSS-style dispatcher (monitor.FlowKey) routes by — the owning shard
// is then the only shard that ever touches the entry. Everything else
// is *shared*: read-only shared state replicates per core without
// contention (routing tables, match rulesets, the Maglev ring), while
// mutable shared state (expiry sweeps, port allocators, backend
// heartbeat stamps) is charged a per-contender coherence penalty.

// SharingClass is the three-way sharability verdict for one stateful
// call. The zero value is SharingUnknown: calls decoded from version-1
// artifacts predate the analysis and are treated as shared-rw
// (conservative) by shard-aware evaluation.
type SharingClass int

const (
	// SharingUnknown means the call was never analysed (version-1
	// artifacts); evaluation treats it as shared-rw.
	SharingUnknown SharingClass = iota
	// SharingLocal: the call is keyed and its key pins the flow-hash
	// fields, so under flow-hash sharding only the owning shard ever
	// touches the addressed entry. No contention charge.
	SharingLocal
	// SharingSharedRO: the call reads state no call of the structure
	// mutates per packet in a flow-crossing way; the state replicates
	// per shard and costs nothing extra.
	SharingSharedRO
	// SharingSharedRW: the call touches mutable cross-flow state; each
	// of its memory accesses is charged the per-contender coherence
	// transfer in the shard-aware bound.
	SharingSharedRW
)

// String returns the wire spelling ("" for unknown — version-2
// artifacts omit the field for unanalysed calls).
func (c SharingClass) String() string {
	switch c {
	case SharingLocal:
		return "local"
	case SharingSharedRO:
		return "shared-ro"
	case SharingSharedRW:
		return "shared-rw"
	default:
		return ""
	}
}

// ParseSharingClass is the strict inverse of String, used by the
// contract codec.
func ParseSharingClass(s string) (SharingClass, bool) {
	switch s {
	case "local":
		return SharingLocal, true
	case "shared-ro":
		return SharingSharedRO, true
	case "shared-rw":
		return SharingSharedRW, true
	case "":
		return SharingUnknown, true
	}
	return SharingUnknown, false
}

// Sharing is the sharability verdict attached to one analysed call.
type Sharing struct {
	Class SharingClass
	// Reason is a short, stable explanation ("key pins the flow-hash
	// fields", "expiry sweep over cross-flow state", …) rendered by
	// boltctl inspect and round-tripped by the codec.
	Reason string
}

// StateAccess describes how one method of a stateful data structure
// addresses the structure's state. Models report it through
// SharabilityModel; the analysis combines it with the call's symbolic
// arguments and the path's constraints to classify the call.
type StateAccess struct {
	// Keyed: the method addresses a single entry identified by the
	// argument words at KeyArgs (indices into the call's argument
	// list). Unkeyed methods scan or mutate state across entries.
	Keyed   bool
	KeyArgs []int
	// ReadOnly: the method never mutates the structure. Read-only
	// state replicates per shard, so unpinned read-only calls classify
	// shared-ro instead of shared-rw.
	ReadOnly bool
	// Shared forces a shared-rw verdict regardless of keying — for
	// methods that consult global resources besides the keyed entry
	// (e.g. a NAT add allocating from the shared port pool).
	Shared bool
	// Reason, when non-empty, overrides the generic explanation in the
	// recorded Sharing.
	Reason string
}

// SharabilityModel is an optional extension of Model: models that can
// describe how each method addresses state implement it, enabling the
// shard dimension of generated contracts. Methods of models that do not
// implement it (and methods StateAccess does not know) classify
// shared-rw — conservative, never unsound.
type SharabilityModel interface {
	StateAccess(method string) (StateAccess, bool)
}
