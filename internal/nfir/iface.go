package nfir

import (
	"gobolt/internal/expr"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// ActionKind classifies how packet processing ended.
type ActionKind int

const (
	// ActionNone means execution has not terminated yet (internal).
	ActionNone ActionKind = iota
	// ActionForward sends the packet out of Action.Port.
	ActionForward
	// ActionDrop discards the packet.
	ActionDrop
)

// ParseActionKind resolves an action's String name; unknown names
// report ok=false. It is the strict inverse the contract codec decodes
// stored paths with.
func ParseActionKind(s string) (ActionKind, bool) {
	switch s {
	case "forward":
		return ActionForward, true
	case "drop":
		return ActionDrop, true
	case "none":
		return ActionNone, true
	}
	return ActionNone, false
}

// String names the action.
func (k ActionKind) String() string {
	switch k {
	case ActionForward:
		return "forward"
	case ActionDrop:
		return "drop"
	default:
		return "none"
	}
}

// Action is the concrete result of processing one packet.
type Action struct {
	Kind ActionKind
	Port uint64
}

// ConcreteDS is a stateful data structure as linked into the production
// build: it executes for real, charges its cost to the environment's
// Meter, and records the PCV values the call induced (for the Distiller
// and for soundness checks).
type ConcreteDS interface {
	// Invoke runs a method. It must charge env.Meter for its cost and
	// add observed PCV values via env.ObservePCV.
	Invoke(method string, args []uint64, env *Env) ([]uint64, error)
}

// PCV describes one performance-critical variable introduced by a model
// outcome: its name and the value range the contract assumes.
type PCV struct {
	Name  string
	Range expr.Range
}

// Outcome is one branch of a stateful method's symbolic model, e.g.
// "flow present" vs "flow absent" for a flow-table get (paper §3.3).
// Each outcome forks the symbolic path.
type Outcome struct {
	// Label names the outcome; it appears in input-class descriptions
	// and selects the matching branch of the method's contract.
	Label string
	// Results are the method's return values, typically fresh symbols.
	Results []symb.Expr
	// Constraints are added to the path (constraints on the arguments
	// and on the abstract state, the paper's second constraint category).
	Constraints []symb.Expr
	// Domains bounds any fresh symbols in Results.
	Domains map[string]symb.Domain
	// Cost is the method's performance contract for this outcome, one
	// polynomial per metric, over the PCVs below.
	Cost map[perf.Metric]expr.Poly
	// PCVs lists the performance-critical variables Cost ranges over.
	PCVs []PCV
}

// FreshFn mints path-unique symbol names for model results.
type FreshFn func(hint string) symb.Sym

// Model is the symbolic model of a stateful data structure: for each
// method invocation it enumerates the possible abstract outcomes.
type Model interface {
	// Outcomes returns the feasible abstract results of calling method
	// with the given (possibly symbolic) arguments. Returning a single
	// outcome models a non-branching method.
	Outcomes(method string, args []symb.Expr, fresh FreshFn) []Outcome
}

// Fingerprinter is an optional extension of Model for contract caching:
// ModelFingerprint returns a deterministic string covering exactly the
// configuration that Outcomes depends on (and nothing address- or
// state-dependent), so two models with equal fingerprints produce
// identical outcome sets for every method. Models that cannot promise
// this simply do not implement the interface, which makes any generation
// using them uncacheable rather than unsound.
type Fingerprinter interface {
	ModelFingerprint() string
}

// DS bundles the three artefacts the library provides per data structure
// (paper §3.2): the concrete implementation, the symbolic model, and —
// folded into the model's outcomes — the expert-written contract.
type DS struct {
	Concrete ConcreteDS
	Model    Model
}

// CallEvent records one stateful call along an explored path: which
// data structure and method, which outcome the path took, and the fresh
// symbols standing for its results (needed to replay the path).
type CallEvent struct {
	DS      string
	Method  string
	Outcome Outcome
	// ResultSyms are the names of the fresh symbols in Outcome.Results,
	// in result order, where results are symbols ("" otherwise).
	ResultSyms []string
	// Args are the symbolic argument expressions the call was made with,
	// recorded so the sharability analysis can decide whether a keyed
	// call's key pins the flow-hash fields of the path.
	Args []symb.Expr
	// Sharing is the sharability verdict for this call, filled in by the
	// generator's analysis stage (zero / SharingUnknown on paths decoded
	// from version-1 artifacts).
	Sharing Sharing
}
