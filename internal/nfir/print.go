package nfir

import (
	"fmt"
	"strings"
)

// String renders the program as readable pseudocode, in the style of the
// paper's Algorithm 1 listings. It is meant for documentation and
// debugging output (cmd/bolt -paths, DESIGN.md listings).
func (p *Program) String() string {
	var b strings.Builder
	if p.Source != "" {
		fmt.Fprintf(&b, "nf %s(ports=%d, src=%s):\n", p.Name, p.NumPorts, p.Source)
	} else {
		fmt.Fprintf(&b, "nf %s(ports=%d):\n", p.Name, p.NumPorts)
	}
	printStmts(&b, p.Body, 1)
	return b.String()
}

func printStmts(b *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch x := s.(type) {
		case Assign:
			fmt.Fprintf(b, "%s%s = %s\n", indent, x.Dst, ExprString(x.E))
		case If:
			fmt.Fprintf(b, "%sif %s:\n", indent, ExprString(x.Cond))
			printStmts(b, x.Then, depth+1)
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%selse:\n", indent)
				printStmts(b, x.Else, depth+1)
			}
		case While:
			fmt.Fprintf(b, "%swhile %s (max %d):\n", indent, ExprString(x.Cond), x.MaxIter)
			printStmts(b, x.Body, depth+1)
		case Call:
			args := make([]string, len(x.Args))
			for i, a := range x.Args {
				args[i] = ExprString(a)
			}
			call := fmt.Sprintf("%s.%s(%s)", x.DS, x.Method, strings.Join(args, ", "))
			if len(x.Dsts) > 0 {
				fmt.Fprintf(b, "%s%s = %s\n", indent, strings.Join(x.Dsts, ", "), call)
			} else {
				fmt.Fprintf(b, "%s%s\n", indent, call)
			}
		case PktStore:
			fmt.Fprintf(b, "%spkt[%s:%d] = %s\n", indent, ExprString(x.Off), x.Size, ExprString(x.Val))
		case MemStore:
			fmt.Fprintf(b, "%smem[%s:%d] = %s\n", indent, ExprString(x.Addr), x.Size, ExprString(x.Val))
		case Forward:
			fmt.Fprintf(b, "%sFORWARD(%s)\n", indent, ExprString(x.Port))
		case DropStmt:
			fmt.Fprintf(b, "%sDROP\n", indent)
		default:
			fmt.Fprintf(b, "%s<unknown %T>\n", indent, s)
		}
	}
}

// ExprString renders an IR expression.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case Const:
		if x.V > 255 {
			return fmt.Sprintf("%#x", x.V)
		}
		return fmt.Sprintf("%d", x.V)
	case Local:
		return x.Name
	case Now:
		return "now()"
	case InPort:
		return "in_port()"
	case PktLen:
		return "pkt_len()"
	case Not:
		return "!" + ExprString(x.X)
	case PktLoad:
		return fmt.Sprintf("pkt[%s:%d]", ExprString(x.Off), x.Size)
	case MemLoad:
		return fmt.Sprintf("mem[%s:%d]", ExprString(x.Addr), x.Size)
	case Bin:
		return "(" + ExprString(x.L) + " " + x.Op.String() + " " + ExprString(x.R) + ")"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
