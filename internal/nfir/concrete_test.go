package nfir

import (
	"testing"

	"gobolt/internal/perf"
)

// etherTypeProgram is the stylised §2.1 router's stateless skeleton:
// drop non-IPv4, otherwise consult a stateful lookup and forward.
func etherTypeProgram() *Program {
	return &Program{
		Name:     "mini-router",
		NumPorts: 4,
		Body: []Stmt{
			IfElse(Eq(Field(12, 2), C(0x0800)),
				[]Stmt{
					Invoke("lpm", "get", []Expr{Field(30, 4)}, "port"),
					Fwd(L("port")),
				},
				[]Stmt{Drop()},
			),
		},
	}
}

// fixedDS returns constant results and charges a fixed cost.
type fixedDS struct {
	results []uint64
	ic, ma  uint64
}

func (f *fixedDS) Invoke(method string, args []uint64, env *Env) ([]uint64, error) {
	if f.ic > f.ma {
		env.Meter.Exec(perf.OpALU, f.ic-f.ma)
	}
	for i := uint64(0); i < f.ma; i++ {
		env.Meter.Load(0x5000_0000+i*64, 8, false)
	}
	return f.results, nil
}

func ipv4Packet() []byte {
	pkt := make([]byte, 64)
	pkt[12], pkt[13] = 0x08, 0x00
	return pkt
}

func arpPacket() []byte {
	pkt := make([]byte, 64)
	pkt[12], pkt[13] = 0x08, 0x06
	return pkt
}

func TestConcreteInvalidPacketCost(t *testing.T) {
	env := NewEnv()
	env.Meter = perf.NewMeter(nil)
	env.DS["lpm"] = &fixedDS{results: []uint64{0}}
	env.ResetPacket(arpPacket(), 0, 0)
	act, err := env.Run(etherTypeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if act.Kind != ActionDrop {
		t.Fatalf("action = %v, want drop", act.Kind)
	}
	// Paper Table 1, invalid packets: 2 instructions, 1 memory access
	// (field load + fused compare-branch; DROP is free).
	if got := env.Meter.Instructions(); got != 2 {
		t.Errorf("IC = %d, want 2", got)
	}
	if got := env.Meter.MemAccesses(); got != 1 {
		t.Errorf("MA = %d, want 1", got)
	}
}

func TestConcreteValidPacketStatelessCost(t *testing.T) {
	env := NewEnv()
	env.Meter = perf.NewMeter(nil)
	env.DS["lpm"] = &fixedDS{results: []uint64{3}} // zero-cost stub
	env.ResetPacket(ipv4Packet(), 0, 0)
	act, err := env.Run(etherTypeProgram())
	if err != nil {
		t.Fatal(err)
	}
	if act.Kind != ActionForward || act.Port != 3 {
		t.Fatalf("action = %+v", act)
	}
	// Paper Table 1 vs Table 2: the stateless share of the valid path is
	// 3 IC / 2 MA: ethertype load + fused branch + dst-address load. The
	// call is inlined and Forward is free at the NF analysis level (§2.1
	// assumes the framework below costs nothing); the DPDK substrate
	// charges TX at the full-stack level.
	if got := env.Meter.Instructions(); got != 3 {
		t.Errorf("IC = %d, want 3", got)
	}
	if got := env.Meter.MemAccesses(); got != 2 {
		t.Errorf("MA = %d, want 2", got)
	}
}

func TestConcreteDSCostCharged(t *testing.T) {
	env := NewEnv()
	env.Meter = perf.NewMeter(nil)
	env.DS["lpm"] = &fixedDS{results: []uint64{1}, ic: 10, ma: 4}
	env.ResetPacket(ipv4Packet(), 0, 0)
	if _, err := env.Run(etherTypeProgram()); err != nil {
		t.Fatal(err)
	}
	if got := env.Meter.Instructions(); got != 3+10 {
		t.Errorf("IC = %d, want 13", got)
	}
	if got := env.Meter.MemAccesses(); got != 2+4 {
		t.Errorf("MA = %d, want 6", got)
	}
}

func TestConcreteArithmeticAndLocals(t *testing.T) {
	p := &Program{
		Name: "arith",
		Body: []Stmt{
			Set("x", C(10)),
			Set("y", Add(L("x"), C(5))),
			Set("z", Mul(L("y"), L("y"))),
			Then(Gt(L("z"), C(200)), Fwd(C(1))),
			Drop(),
		},
	}
	env := NewEnv()
	env.Meter = perf.NewMeter(nil)
	env.ResetPacket(nil, 0, 0)
	act, err := env.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if act.Kind != ActionForward {
		t.Fatalf("15*15=225 > 200 should forward, got %v", act.Kind)
	}
	if v, _ := env.Local("z"); v != 225 {
		t.Errorf("z = %d", v)
	}
	// add(1) + mul(1) + fused cmp-branch(1); Forward is free = 3
	if got := env.Meter.Instructions(); got != 3 {
		t.Errorf("IC = %d, want 3", got)
	}
}

func TestConcreteWhileLoop(t *testing.T) {
	p := &Program{
		Name: "loop",
		Body: []Stmt{
			Set("i", C(0)),
			Set("sum", C(0)),
			While{
				Cond:    Lt(L("i"), C(5)),
				MaxIter: 10,
				Body: []Stmt{
					Set("sum", Add(L("sum"), L("i"))),
					Set("i", Add(L("i"), C(1))),
				},
			},
			Fwd(L("sum")),
		},
	}
	env := NewEnv()
	env.Meter = perf.NewMeter(nil)
	env.ResetPacket(nil, 0, 0)
	act, err := env.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if act.Port != 10 {
		t.Errorf("sum = %d, want 10", act.Port)
	}
	// 6 condition checks (1 each, fused) + 5*(add+add) = 16
	if got := env.Meter.Instructions(); got != 16 {
		t.Errorf("IC = %d, want 16", got)
	}
}

func TestConcreteWhileMaxIterViolation(t *testing.T) {
	p := &Program{
		Name: "infinite",
		Body: []Stmt{
			Set("i", C(0)),
			While{Cond: C(1), MaxIter: 3, Body: []Stmt{Set("i", Add(L("i"), C(1)))}},
			Drop(),
		},
	}
	env := NewEnv()
	env.ResetPacket(nil, 0, 0)
	if _, err := env.Run(p); err == nil {
		t.Fatal("expected MaxIter violation")
	}
}

func TestConcretePacketReadWrite(t *testing.T) {
	p := &Program{
		Name: "rewrite",
		Body: []Stmt{
			Set("src", Field(26, 4)),
			PktStore{Off: C(26), Size: 4, Val: C(0x0A000001)},
			Set("after", Field(26, 4)),
			Fwd(C(0)),
		},
	}
	pkt := make([]byte, 64)
	pkt[26], pkt[27], pkt[28], pkt[29] = 192, 168, 1, 7
	env := NewEnv()
	env.Meter = perf.NewMeter(nil)
	env.ResetPacket(pkt, 0, 0)
	if _, err := env.Run(p); err != nil {
		t.Fatal(err)
	}
	if v, _ := env.Local("src"); v != 0xC0A80107 {
		t.Errorf("src = %#x", v)
	}
	if v, _ := env.Local("after"); v != 0x0A000001 {
		t.Errorf("after = %#x", v)
	}
	if env.Pkt[26] != 0x0A || env.Pkt[29] != 0x01 {
		t.Error("packet bytes not rewritten")
	}
}

func TestConcretePacketBounds(t *testing.T) {
	over := &Program{Name: "oob", Body: []Stmt{Set("x", Field(MaxPacket-1, 4)), Drop()}}
	env := NewEnv()
	env.ResetPacket(nil, 0, 0)
	if _, err := env.Run(over); err == nil {
		t.Fatal("out-of-bounds load must fail")
	}
	overStore := &Program{Name: "oobw", Body: []Stmt{PktStore{Off: C(MaxPacket), Size: 1, Val: C(0)}, Drop()}}
	env.ResetPacket(nil, 0, 0)
	if _, err := env.Run(overStore); err == nil {
		t.Fatal("out-of-bounds store must fail")
	}
}

func TestConcreteHeapOps(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(16)
	b := h.Alloc(16)
	if a == b || b < a+16 {
		t.Fatalf("allocations overlap: %#x %#x", a, b)
	}
	if a%64 != 0 || b%64 != 0 {
		t.Error("allocations must be cache-line aligned")
	}
	h.Write(a, 8, 0xdeadbeefcafe)
	if got := h.Read(a, 8); got != 0xdeadbeefcafe {
		t.Errorf("Read = %#x", got)
	}
	if got := h.Read(a, 2); got != 0xcafe {
		t.Errorf("partial Read = %#x", got)
	}
	if got := h.Read(b, 8); got != 0 {
		t.Errorf("fresh memory = %#x, want 0", got)
	}
}

func TestConcreteMemLoadStore(t *testing.T) {
	env := NewEnv()
	env.Meter = perf.NewMeter(nil)
	base := env.Heap.Alloc(64)
	p := &Program{
		Name: "mem",
		Body: []Stmt{
			MemStore{Addr: C(base), Size: 8, Val: C(41)},
			Set("v", Add(MemLoad{Addr: C(base), Size: 8}, C(1))),
			Fwd(L("v")),
		},
	}
	env.ResetPacket(nil, 0, 0)
	act, err := env.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if act.Port != 42 {
		t.Errorf("port = %d", act.Port)
	}
	if env.Meter.MemAccesses() != 2 { // store + load
		t.Errorf("MA = %d, want 2", env.Meter.MemAccesses())
	}
}

func TestConcreteLoadDependenceTaint(t *testing.T) {
	var events []perf.Access
	sink := sinkFunc(func(ev perf.Access) { events = append(events, ev) })
	env := NewEnv()
	env.Meter = perf.NewMeter(sink)
	base := env.Heap.Alloc(128)
	env.Heap.Write(base, 8, base+64)
	p := &Program{
		Name: "chase",
		Body: []Stmt{
			Set("ptr", MemLoad{Addr: C(base), Size: 8}),
			Set("v", MemLoad{Addr: L("ptr"), Size: 8}), // dependent
			Set("w", MemLoad{Addr: C(base), Size: 8}),  // independent
			Drop(),
		},
	}
	env.ResetPacket(nil, 0, 0)
	if _, err := env.Run(p); err != nil {
		t.Fatal(err)
	}
	var loads []perf.Access
	for _, ev := range events {
		if ev.Class == perf.OpLoad {
			loads = append(loads, ev)
		}
	}
	if len(loads) != 3 {
		t.Fatalf("got %d loads", len(loads))
	}
	if loads[0].LoadDependent || !loads[1].LoadDependent || loads[2].LoadDependent {
		t.Errorf("taint = %v %v %v, want false true false",
			loads[0].LoadDependent, loads[1].LoadDependent, loads[2].LoadDependent)
	}
}

type sinkFunc func(perf.Access)

func (f sinkFunc) Op(ev perf.Access) { f(ev) }

func TestConcreteMetadataExprs(t *testing.T) {
	p := &Program{
		Name:     "meta",
		NumPorts: 2,
		Body: []Stmt{
			Set("t", Now{}),
			Set("p", InPort{}),
			Set("l", PktLen{}),
			Fwd(L("p")),
		},
	}
	env := NewEnv()
	env.ResetPacket(make([]byte, 100), 1, 5_000_000)
	act, err := env.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if act.Port != 1 {
		t.Errorf("port = %d", act.Port)
	}
	if v, _ := env.Local("t"); v != 5_000_000 {
		t.Errorf("now = %d", v)
	}
	if v, _ := env.Local("l"); v != 100 {
		t.Errorf("len = %d", v)
	}
}

func TestConcreteErrors(t *testing.T) {
	env := NewEnv()
	env.ResetPacket(nil, 0, 0)
	if _, err := env.Run(&Program{Name: "unassigned", Body: []Stmt{Fwd(L("nope"))}}); err == nil {
		t.Error("unassigned local must fail")
	}
	env.ResetPacket(nil, 0, 0)
	if _, err := env.Run(&Program{Name: "noend", Body: []Stmt{Set("x", C(1))}}); err == nil {
		t.Error("missing terminator must fail")
	}
	env.ResetPacket(nil, 0, 0)
	if _, err := env.Run(&Program{Name: "nods", Body: []Stmt{Invoke("ghost", "m", nil), Drop()}}); err == nil {
		t.Error("unknown DS must fail")
	}
}

func TestObservePCV(t *testing.T) {
	env := NewEnv()
	env.ObservePCV("e", 3)
	env.ObservePCV("e", 2)
	env.ObservePCV("c", 1)
	if env.PCVs()["e"] != 5 || env.PCVs()["c"] != 1 {
		t.Errorf("PCVs = %v", env.PCVs())
	}
	env.ResetPacket(nil, 0, 0)
	if len(env.PCVs()) != 0 {
		t.Error("ResetPacket must clear PCVs")
	}
}

// Strict && / || evaluation: both sides always charged.
func TestConcreteStrictLogicalOps(t *testing.T) {
	env := NewEnv()
	env.Meter = perf.NewMeter(nil)
	p := &Program{
		Name: "strict",
		Body: []Stmt{
			// false && (x == 1): both comparisons charged + the && itself.
			Then(And2(Eq(C(0), C(1)), Eq(C(1), C(1))), Fwd(C(0))),
			Drop(),
		},
	}
	env.ResetPacket(nil, 0, 0)
	if _, err := env.Run(p); err != nil {
		t.Fatal(err)
	}
	if got := env.Meter.Instructions(); got != 3 {
		t.Errorf("IC = %d, want 3 (two cmps + fused and-branch)", got)
	}
}
