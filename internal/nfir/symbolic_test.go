package nfir

import (
	"testing"

	"gobolt/internal/expr"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// lookupModel models a one-method lookup with hit/miss outcomes, like a
// flow-table get: hit returns a fresh port, miss returns nothing useful.
type lookupModel struct{}

func (lookupModel) Outcomes(method string, args []symb.Expr, fresh FreshFn) []Outcome {
	switch method {
	case "get":
		port := fresh("port")
		return []Outcome{
			{
				Label:       "hit",
				Results:     []symb.Expr{port, symb.C(1)},
				Domains:     map[string]symb.Domain{port.Name: {Lo: 0, Hi: 3}},
				Cost:        map[perf.Metric]expr.Poly{perf.Instructions: expr.Term(3, "t").Add(expr.Const(10))},
				PCVs:        []PCV{{Name: "t", Range: expr.Range{Lo: 0, Hi: 8}}},
				Constraints: nil,
			},
			{
				Label:   "miss",
				Results: []symb.Expr{symb.C(0), symb.C(0)},
				Cost:    map[perf.Metric]expr.Poly{perf.Instructions: expr.Const(7)},
			},
		}
	default:
		return []Outcome{{Label: "ok", Results: []symb.Expr{symb.C(0)}}}
	}
}

func symRouterProgram() *Program {
	return &Program{
		Name:     "sym-router",
		NumPorts: 4,
		Body: []Stmt{
			IfElse(Eq(Field(12, 2), C(0x0800)),
				[]Stmt{
					Invoke("table", "get", []Expr{Field(30, 4)}, "port", "found"),
					IfElse(Eq(L("found"), C(1)),
						[]Stmt{Fwd(L("port"))},
						[]Stmt{Drop()},
					),
				},
				[]Stmt{Drop()},
			),
		},
	}
}

func explore(t *testing.T, p *Program, models map[string]Model) []*Path {
	t.Helper()
	en := &Engine{Models: models}
	paths, err := en.Explore(p)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func TestSymbolicPathEnumeration(t *testing.T) {
	paths := explore(t, symRouterProgram(), map[string]Model{"table": lookupModel{}})
	// Expect 3 paths: non-IPv4 drop, IPv4+hit forward, IPv4+miss drop.
	// (The model's "found" result is concrete per outcome, so the inner
	// If does not fork further.)
	if len(paths) != 3 {
		for _, p := range paths {
			t.Logf("path %d: action=%v events=%q constraints=%s",
				p.ID, p.Action, p.EventSummary(), symb.ConjString(p.Constraints))
		}
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	var forwards, drops int
	for _, p := range paths {
		switch p.Action {
		case ActionForward:
			forwards++
			if p.EventSummary() != "table.get:hit" {
				t.Errorf("forward path events = %q", p.EventSummary())
			}
			if p.PCVRanges["t"] != (expr.Range{Lo: 0, Hi: 8}) {
				t.Errorf("PCV range = %+v", p.PCVRanges["t"])
			}
		case ActionDrop:
			drops++
		}
	}
	if forwards != 1 || drops != 2 {
		t.Errorf("forwards=%d drops=%d", forwards, drops)
	}
}

func TestSymbolicInfeasiblePruned(t *testing.T) {
	p := &Program{
		Name: "contradiction",
		Body: []Stmt{
			IfElse(Eq(Field(0, 1), C(5)),
				[]Stmt{
					// Inside etherByte==5, the check etherByte==6 is dead.
					IfElse(Eq(Field(0, 1), C(6)),
						[]Stmt{Fwd(C(0))},
						[]Stmt{Drop()},
					),
				},
				[]Stmt{Drop()},
			),
		},
	}
	paths := explore(t, p, nil)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (dead branch pruned)", len(paths))
	}
	for _, pa := range paths {
		if pa.Action == ActionForward {
			t.Error("infeasible forward path survived")
		}
	}
}

func TestSymbolicStatelessCostMatchesConcrete(t *testing.T) {
	prog := symRouterProgram()
	paths := explore(t, prog, map[string]Model{"table": lookupModel{}})

	// Solve each path for a witness, replay concretely with a free stub
	// honouring the outcome, and compare stateless cost.
	for _, pa := range paths {
		var s symb.Solver
		model, res := s.Solve(pa.Constraints, pa.Domains)
		if res != symb.Sat {
			t.Fatalf("path %d: solver %v", pa.ID, res)
		}
		pkt := make([]byte, MaxPacket)
		for name, v := range model {
			if off, size, ok := ParseFieldSym(name); ok {
				putBE(pkt[off:], size, v)
			}
		}
		env := NewEnv()
		env.Meter = perf.NewMeter(nil)
		// Replay stub: return the witness values for the recorded events.
		idx := 0
		env.DS["table"] = replayStub{events: pa.Events, model: model, idx: &idx}
		env.ResetPacket(pkt, model[SymInPort], model[SymNow])
		act, err := env.Run(prog)
		if err != nil {
			t.Fatalf("path %d replay: %v", pa.ID, err)
		}
		if act.Kind != pa.Action {
			t.Errorf("path %d: action %v, want %v", pa.ID, act.Kind, pa.Action)
		}
		// The stub charges nothing, so the meter shows stateless cost
		// plus one OpCall per event, which the engine also charged.
		if got := env.Meter.Instructions(); got != pa.StatelessIC {
			t.Errorf("path %d: concrete IC %d != symbolic %d", pa.ID, got, pa.StatelessIC)
		}
		if got := env.Meter.MemAccesses(); got != pa.StatelessMA {
			t.Errorf("path %d: concrete MA %d != symbolic %d", pa.ID, got, pa.StatelessMA)
		}
	}
}

// replayStub replays recorded model outcomes using witness values.
type replayStub struct {
	events []CallEvent
	model  map[string]uint64
	idx    *int
}

func (r replayStub) Invoke(method string, args []uint64, env *Env) ([]uint64, error) {
	ev := r.events[*r.idx]
	*r.idx++
	out := make([]uint64, len(ev.Outcome.Results))
	for i, res := range ev.Outcome.Results {
		out[i] = res.Eval(r.model)
	}
	return out, nil
}

func TestSymbolicLoopUnrolling(t *testing.T) {
	// Count trailing option bytes equal to 1, up to 4: forks per length.
	p := &Program{
		Name: "optloop",
		Body: []Stmt{
			Set("i", C(0)),
			While{
				Cond:    And2(Lt(L("i"), C(4)), Eq(PktLoad{Off: Add(C(14), L("i")), Size: 1}, C(1))),
				MaxIter: 8,
				Body:    []Stmt{Set("i", Add(L("i"), C(1)))},
			},
			Fwd(L("i")),
		},
	}
	paths := explore(t, p, nil)
	// i = 0..4 → 5 paths.
	if len(paths) != 5 {
		t.Fatalf("got %d paths, want 5", len(paths))
	}
}

func TestSymbolicLoopBoundViolation(t *testing.T) {
	p := &Program{
		Name: "unbounded",
		Body: []Stmt{
			Set("i", C(0)),
			While{
				// Condition depends on a symbolic field and i never makes
				// it false structurally.
				Cond:    Ne(Field(0, 1), C(0)),
				MaxIter: 3,
				Body:    []Stmt{Set("i", Add(L("i"), C(1)))},
			},
			Drop(),
		},
	}
	en := &Engine{Models: nil}
	if _, err := en.Explore(p); err == nil {
		t.Fatal("expected loop bound violation")
	}
}

func TestSymbolicPacketWriteVisibleToChain(t *testing.T) {
	p := &Program{
		Name: "nat-ish",
		Body: []Stmt{
			PktStore{Off: C(26), Size: 4, Val: C(0x0A000001)},
			Fwd(C(0)),
		},
	}
	paths := explore(t, p, nil)
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	w, ok := paths[0].PktWrites[26]
	if !ok {
		t.Fatal("write at offset 26 not recorded")
	}
	if c, isConst := w.Val.(symb.Const); !isConst || c.V != 0x0A000001 {
		t.Errorf("write value = %v", w.Val)
	}
	if w.Size != 4 {
		t.Errorf("write size = %d", w.Size)
	}
}

func TestSymbolicWriteThenReadSeesValue(t *testing.T) {
	p := &Program{
		Name: "rw",
		Body: []Stmt{
			PktStore{Off: C(26), Size: 4, Val: C(7)},
			IfElse(Eq(Field(26, 4), C(7)),
				[]Stmt{Fwd(C(0))},
				[]Stmt{Drop()},
			),
		},
	}
	paths := explore(t, p, nil)
	if len(paths) != 1 || paths[0].Action != ActionForward {
		t.Fatalf("write-then-read must fold to a single forward path, got %d paths", len(paths))
	}
}

func TestSymbolicFieldSymCanonical(t *testing.T) {
	// Reading the same field twice yields one symbol, so the second
	// branch folds.
	p := &Program{
		Name: "canon",
		Body: []Stmt{
			IfElse(Eq(Field(12, 2), C(0x0800)),
				[]Stmt{
					IfElse(Eq(Field(12, 2), C(0x0800)),
						[]Stmt{Fwd(C(0))},
						[]Stmt{Drop()}),
				},
				[]Stmt{Drop()},
			),
		},
	}
	paths := explore(t, p, nil)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
}

func TestParseFieldSym(t *testing.T) {
	off, size, ok := ParseFieldSym(FieldSymName(30, 4))
	if !ok || off != 30 || size != 4 {
		t.Errorf("round trip failed: %d %d %v", off, size, ok)
	}
	for _, bad := range []string{"in_port", "now", "pkt_", "pkt_x_2", "pkt_1_z", "pkt_1", "foo"} {
		if _, _, ok := ParseFieldSym(bad); ok {
			t.Errorf("ParseFieldSym(%q) should fail", bad)
		}
	}
}

func TestSymbolicInPortDomain(t *testing.T) {
	p := &Program{
		Name:     "portcheck",
		NumPorts: 2,
		Body: []Stmt{
			IfElse(Eq(InPort{}, C(5)), // impossible: ports are 0..1
				[]Stmt{Fwd(C(0))},
				[]Stmt{Drop()},
			),
		},
	}
	paths := explore(t, p, nil)
	if len(paths) != 1 || paths[0].Action != ActionDrop {
		t.Fatalf("in_port=5 must be infeasible with 2 ports; got %d paths", len(paths))
	}
}

func TestEventSummaryAndInputSymbols(t *testing.T) {
	paths := explore(t, symRouterProgram(), map[string]Model{"table": lookupModel{}})
	for _, pa := range paths {
		if pa.Action == ActionForward {
			syms := pa.InputSymbols()
			// Constraints mention the ethertype field at least.
			found := false
			for _, s := range syms {
				if s == FieldSymName(12, 2) {
					found = true
				}
			}
			if !found {
				t.Errorf("InputSymbols = %v, missing ethertype", syms)
			}
		}
	}
}

// Regression: a narrow PktStore must truncate a wider symbolic value to
// the slot width, exactly as the concrete machine keeps only the low
// Size bytes. Before the fix, storing a 4-byte load into a 1-byte slot
// recorded the unmasked value, so a read-after-write branched on the
// full 32-bit quantity and diverged from concrete execution.
func TestPktStoreTruncatesWideValue(t *testing.T) {
	p := &Program{
		Name: "trunc-store",
		Body: []Stmt{
			PktStore{Off: C(10), Size: 1, Val: Field(25, 4)},
			IfElse(Lt(Field(10, 1), C(220)),
				[]Stmt{Fwd(C(0))},
				[]Stmt{Drop()},
			),
		},
	}
	paths := explore(t, p, nil)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	src := FieldSymName(25, 4)
	for _, pa := range paths {
		// Bind the source field to 0x200: the low byte is 0 (< 220), the
		// unmasked value is 512 (>= 220). Only the masked constraint puts
		// this binding on the Forward path.
		takesForward := symb.CheckModel(pa.Constraints, map[string]uint64{src: 0x200})
		switch pa.Action {
		case ActionForward:
			if !takesForward {
				t.Errorf("forward path constraint %s ignores store truncation", symb.ConjString(pa.Constraints))
			}
		case ActionDrop:
			if takesForward {
				t.Errorf("drop path constraint %s ignores store truncation", symb.ConjString(pa.Constraints))
			}
		}
		// The rewritten field recorded for chain composition must be the
		// truncated expression as well.
		w, ok := pa.PktWrites[10]
		if !ok || w.Size != 1 {
			t.Fatalf("missing 1-byte PktWrite at offset 10: %+v", pa.PktWrites)
		}
		if got := w.Val.Eval(map[string]uint64{src: 0x200}); got != 0 {
			t.Errorf("stored value = %d under src=0x200, want 0 (low byte)", got)
		}
	}
}

// A value that provably fits the slot must be stored untouched — no
// gratuitous mask wrapping (legacy constraint shapes depend on it).
func TestPktStoreKeepsFittingValue(t *testing.T) {
	p := &Program{
		Name: "fit-store",
		Body: []Stmt{
			PktStore{Off: C(10), Size: 1, Val: Field(25, 1)}, // 1-byte load fits
			IfElse(Lt(Field(10, 1), C(220)),
				[]Stmt{Fwd(C(0))},
				[]Stmt{Drop()},
			),
		},
	}
	paths := explore(t, p, nil)
	for _, pa := range paths {
		if pa.Action != ActionForward {
			continue
		}
		want := "(" + FieldSymName(25, 1) + " < 220)"
		if got := symb.ConjString(pa.Constraints); got != want {
			t.Errorf("constraint = %s, want %s (unmasked)", got, want)
		}
	}
}
