package nfir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// randomProgram builds a small random (but valid) stateless program:
// field reads, arithmetic over locals, nested branches, packet writes.
func randomProgram(rng *rand.Rand) *Program {
	p := &Program{Name: "random", NumPorts: 4}
	defined := []string{}
	var genStmts func(depth, budget int) []Stmt
	genExpr := func() Expr {
		switch rng.Intn(4) {
		case 0:
			return C(uint64(rng.Intn(256)))
		case 1:
			return Field(uint64(rng.Intn(64)), []int{1, 2, 4}[rng.Intn(3)])
		case 2:
			if len(defined) > 0 {
				return L(defined[rng.Intn(len(defined))])
			}
			return C(uint64(rng.Intn(16)))
		default:
			ops := []func(Expr, Expr) Expr{Add, Sub, Mul, Band, Xor}
			return ops[rng.Intn(len(ops))](
				Field(uint64(rng.Intn(64)), 1),
				C(uint64(1+rng.Intn(32))),
			)
		}
	}
	genCond := func() Expr {
		cmps := []func(Expr, Expr) Expr{Eq, Ne, Lt, Ge}
		return cmps[rng.Intn(len(cmps))](genExpr(), C(uint64(rng.Intn(300))))
	}
	genStmts = func(depth, budget int) []Stmt {
		var out []Stmt
		n := 1 + rng.Intn(3)
		for i := 0; i < n && budget > 0; i++ {
			budget--
			switch rng.Intn(4) {
			case 0:
				name := []string{"a", "b", "c"}[rng.Intn(3)]
				out = append(out, Set(name, genExpr()))
				defined = append(defined, name)
			case 1:
				if depth < 3 {
					out = append(out, IfElse(genCond(),
						genStmts(depth+1, budget),
						genStmts(depth+1, budget)))
				}
			case 2:
				out = append(out, PktStore{
					Off: C(uint64(rng.Intn(64))), Size: 1, Val: genExpr(),
				})
			default:
				out = append(out, Set("tmp", genExpr()))
				defined = append(defined, "tmp")
			}
		}
		return out
	}
	p.Body = genStmts(0, 8)
	// Deterministic terminator.
	p.Body = append(p.Body, IfElse(genCond(),
		[]Stmt{Fwd(C(uint64(rng.Intn(4))))},
		[]Stmt{Drop()},
	))
	return p
}

// Property (the replay-validation invariant, program-generically): for a
// random stateless program and a random packet, exactly one explored
// path's constraints accept the packet, and the concrete execution's
// action/IC/MA equal that path's symbolic accounting.
func TestSymbolicConcreteEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomProgram(rng)
		if errs := prog.Validate(nil); len(errs) > 0 {
			return true // undefined-local shapes are rejected upstream
		}
		en := &Engine{}
		paths, err := en.Explore(prog)
		if err != nil {
			return true // loop-bound style rejections are fine
		}

		for trial := 0; trial < 5; trial++ {
			pkt := make([]byte, 128)
			rng.Read(pkt)
			// Bind the canonical field symbols from the packet bytes.
			binding := func(p *Path) map[string]uint64 {
				m := map[string]uint64{
					SymInPort: uint64(rng.Intn(4)),
					SymNow:    0,
					SymPktLen: 128,
				}
				for _, s := range symb.Symbols(p.Constraints...) {
					if off, size, ok := ParseFieldSym(s); ok {
						m[s] = getBE(pkt[off:], size)
					}
				}
				return m
			}

			var matched *Path
			for _, pa := range paths {
				if symb.CheckModel(pa.Constraints, binding(pa)) {
					if matched != nil {
						return false // paths must partition the input space
					}
					matched = pa
				}
			}
			if matched == nil {
				return false // some path must accept every packet
			}

			env := NewEnv()
			env.Meter = perf.NewMeter(nil)
			env.ResetPacket(pkt, 0, 0)
			act, err := env.Run(prog)
			if err != nil {
				return false
			}
			if act.Kind != matched.Action {
				return false
			}
			if env.Meter.Instructions() != matched.StatelessIC ||
				env.Meter.MemAccesses() != matched.StatelessMA {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
