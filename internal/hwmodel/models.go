package hwmodel

import (
	"math"

	"gobolt/internal/perf"
)

// Conservative-model constants: worst-case latencies in the spirit of the
// Intel optimisation manual's per-instruction upper bounds, plus the
// memory charges of §3.5 (DRAM unless provably L1D-resident).
const (
	WorstALU    = 1.0
	WorstMul    = 5.0
	WorstDiv    = 45.0
	WorstBranch = 3.0 // taken-branch redirect, no predictor credit
	WorstCall   = 3.0
	MemIssue    = 1.0 // address generation + issue, charged per access
	LatL1       = 4.0
	LatDRAM     = 200.0
)

// Detailed-model constants: steady-state averages for a wide out-of-order
// core with a stride prefetcher and ~10 outstanding misses.
const (
	AvgALU      = 0.5 // ~2 effective IPC on pointer-heavy NF code
	AvgMul      = 1.0
	AvgDiv      = 20.0
	AvgBranch   = 1.0 // predicted
	AvgCall     = 1.0
	DetL1       = 1.0 // partially hidden by OoO
	DetL2       = 12.0
	DetL3       = 40.0
	DetDRAM     = 200.0
	PrefetchHit = 30.0 // stream-covered miss: DRAM bandwidth bound
	MLPWidth    = 10.0 // independent misses overlap this much
)

// worstCost maps op classes to conservative per-instruction cycles.
func worstCost(c perf.OpClass) float64 {
	switch c {
	case perf.OpMul:
		return WorstMul
	case perf.OpDiv:
		return WorstDiv
	case perf.OpBranch:
		return WorstBranch
	case perf.OpCall:
		return WorstCall
	default:
		return WorstALU
	}
}

// avgCost maps op classes to detailed-model per-instruction cycles.
func avgCost(c perf.OpClass) float64 {
	switch c {
	case perf.OpMul:
		return AvgMul
	case perf.OpDiv:
		return AvgDiv
	case perf.OpBranch:
		return AvgBranch
	case perf.OpCall:
		return AvgCall
	default:
		return AvgALU
	}
}

// Conservative is BOLT's prediction-side cycle model. It implements
// perf.TraceSink so a replayed path can be streamed through it.
//
// Its L1D tracker starts cold for every packet (Reset); a memory access
// is charged LatL1 only if an earlier access on the same path touched
// the same line — the "definitively prove" condition of §3.5 — and
// LatDRAM otherwise.
type Conservative struct {
	l1     *Cache
	cycles float64
}

// NewConservative builds the conservative model with a 32 KiB, 8-way L1D
// used purely as the provable-hit tracker.
func NewConservative() *Conservative {
	return &Conservative{l1: NewCache(64, 8)}
}

// Reset clears the per-path tracker and the accumulated cycles.
func (m *Conservative) Reset() {
	m.l1.Reset()
	m.cycles = 0
}

// Op implements perf.TraceSink.
func (m *Conservative) Op(ev perf.Access) {
	switch ev.Class {
	case perf.OpLoad, perf.OpStore:
		m.cycles += MemIssue
		n := 1
		if SpansLines(ev.Addr, ev.Size) {
			n = 2
		}
		for i := 0; i < n; i++ {
			addr := ev.Addr + uint64(i)*(1<<LineBits)
			if m.l1.Touch(addr) {
				m.cycles += LatL1
			} else {
				m.cycles += LatDRAM
			}
		}
	default:
		m.cycles += worstCost(ev.Class) * float64(ev.Count)
	}
}

// ChargeUnknown charges an access whose address the analysis could not
// concretise: always DRAM, and it contributes no locality.
func (m *Conservative) ChargeUnknown() { m.cycles += MemIssue + LatDRAM }

// Cycles returns the accumulated conservative cycle count, rounded up.
func (m *Conservative) Cycles() uint64 { return uint64(math.Ceil(m.cycles)) }

// Detailed is the measurement-side cycle model standing in for real
// hardware. State (cache contents, prefetch streams) persists across
// packets, as on a warm testbed.
type Detailed struct {
	l1, l2, l3 *Cache
	prefetched map[uint64]bool
	lastLine   uint64
	haveLast   bool
	cycles     float64
}

// NewDetailed builds the detailed model: 32 KiB/8-way L1D, 256 KiB/8-way
// L2, 8 MiB/16-way L3.
func NewDetailed() *Detailed {
	return &Detailed{
		l1:         NewCache(64, 8),
		l2:         NewCache(512, 8),
		l3:         NewCache(8192, 16),
		prefetched: make(map[uint64]bool),
	}
}

// ResetCycles clears the cycle accumulator but keeps the cache state
// (measurements exclude warmup but caches stay warm).
func (m *Detailed) ResetCycles() { m.cycles = 0 }

// ResetAll clears both cycles and all cache/prefetch state.
func (m *Detailed) ResetAll() {
	m.l1.Reset()
	m.l2.Reset()
	m.l3.Reset()
	m.prefetched = make(map[uint64]bool)
	m.haveLast = false
	m.cycles = 0
}

// Op implements perf.TraceSink.
func (m *Detailed) Op(ev perf.Access) {
	switch ev.Class {
	case perf.OpLoad, perf.OpStore:
		n := 1
		if SpansLines(ev.Addr, ev.Size) {
			n = 2
		}
		for i := 0; i < n; i++ {
			m.access(ev.Addr+uint64(i)*(1<<LineBits), ev.LoadDependent)
		}
	default:
		m.cycles += avgCost(ev.Class) * float64(ev.Count)
	}
}

func (m *Detailed) access(addr uint64, dependent bool) {
	line := lineOf(addr)
	defer func() {
		m.lastLine = line
		m.haveLast = true
	}()

	if m.l1.Contains(addr) {
		if m.prefetched[line] {
			delete(m.prefetched, line)
			if dependent {
				// The stream prefetch covered this line but the chase
				// still serialises on it: bandwidth-bound per line.
				m.cycles += PrefetchHit
			} else {
				// Independent consumers overlap with the stream: the
				// effective per-line cost is the MLP-overlapped fetch.
				m.cycles += DetDRAM / MLPWidth
			}
		} else {
			m.cycles += DetL1
		}
		m.maybePrefetch(line)
		return
	}

	var lat float64
	switch {
	case m.l2.Contains(addr):
		lat = DetL2
	case m.l3.Contains(addr):
		lat = DetL3
	default:
		lat = DetDRAM
	}
	if !dependent && lat >= DetL3 {
		// Independent long-latency misses overlap in the load queue.
		lat /= MLPWidth
	}
	m.cycles += lat
	m.fill(addr)
	m.maybePrefetch(line)
}

// maybePrefetch issues a next-line prefetch when the access continues an
// ascending stream (previous access was to this or the preceding line).
func (m *Detailed) maybePrefetch(line uint64) {
	if !m.haveLast {
		return
	}
	if line == m.lastLine || line == m.lastLine+1 {
		next := (line + 1) << LineBits
		if !m.l1.Contains(next) {
			m.fill(next)
			m.prefetched[line+1] = true
		}
	}
}

func (m *Detailed) fill(addr uint64) {
	m.l1.Insert(addr)
	m.l2.Insert(addr)
	m.l3.Insert(addr)
}

// Cycles returns the accumulated detailed cycle count, rounded up.
func (m *Detailed) Cycles() uint64 { return uint64(math.Ceil(m.cycles)) }

// ConservativeStatic computes the conservative cycle cost of an
// instruction mix without an address trace (every access charged as
// DRAM). Data-structure contract authors use it to derive cycle
// polynomial coefficients from IC/MA counts.
func ConservativeStatic(ops map[perf.OpClass]uint64, memAccesses uint64) float64 {
	total := float64(memAccesses) * (MemIssue + LatDRAM)
	for c, n := range ops {
		if c == perf.OpLoad || c == perf.OpStore {
			continue
		}
		total += worstCost(c) * float64(n)
	}
	return total
}

// CyclesPerMemDRAM and CyclesPerALU are exported for contract authors
// who write cycle polynomials by hand: one DRAM-charged access and one
// worst-case ALU op.
const (
	CyclesPerMemDRAM = MemIssue + LatDRAM
	CyclesPerALU     = WorstALU
)
