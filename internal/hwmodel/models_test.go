package hwmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gobolt/internal/perf"
)

func TestCacheBasic(t *testing.T) {
	c := NewCache(4, 2)
	if c.Contains(0x1000) {
		t.Fatal("empty cache cannot hit")
	}
	c.Insert(0x1000)
	if !c.Contains(0x1000) {
		t.Fatal("inserted line must hit")
	}
	if !c.Contains(0x1010) { // same 64-byte line
		t.Fatal("same-line address must hit")
	}
	if c.Contains(0x1040) { // next line
		t.Fatal("adjacent line must miss")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2) // one set, two ways
	c.Insert(0 << LineBits)
	c.Insert(1 << LineBits)
	if !c.Contains(0 << LineBits) {
		t.Fatal("line 0 should be resident")
	}
	// Touch line 0 (now MRU), insert line 2 → line 1 evicted.
	c.Insert(2 << LineBits)
	if !c.Contains(0<<LineBits) || c.Contains(1<<LineBits) || !c.Contains(2<<LineBits) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(4, 2)
	c.Insert(0x40)
	c.Reset()
	if c.Contains(0x40) {
		t.Fatal("reset cache must be empty")
	}
}

func TestCacheBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(3, 2) },
		func() { NewCache(0, 2) },
		func() { NewCache(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad cache params")
				}
			}()
			f()
		}()
	}
}

func TestSpansLines(t *testing.T) {
	if SpansLines(0, 8) {
		t.Error("aligned 8B access must not span")
	}
	if !SpansLines(60, 8) {
		t.Error("access crossing byte 64 must span")
	}
	if SpansLines(63, 1) {
		t.Error("1-byte access cannot span")
	}
}

func TestConservativeColdThenWarm(t *testing.T) {
	m := NewConservative()
	m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: 0x1000, Size: 8})
	first := m.Cycles()
	if first != uint64(MemIssue+LatDRAM) {
		t.Errorf("cold access = %d cycles, want %d", first, uint64(MemIssue+LatDRAM))
	}
	m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: 0x1008, Size: 8})
	if got := m.Cycles() - first; got != uint64(MemIssue+LatL1) {
		t.Errorf("provable hit = %d cycles, want %d", got, uint64(MemIssue+LatL1))
	}
}

func TestConservativeResetForgetsLocality(t *testing.T) {
	m := NewConservative()
	m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: 0x1000, Size: 8})
	m.Reset()
	if m.Cycles() != 0 {
		t.Fatal("reset must clear cycles")
	}
	m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: 0x1000, Size: 8})
	if m.Cycles() != uint64(MemIssue+LatDRAM) {
		t.Error("post-reset access must be charged as DRAM")
	}
}

func TestConservativeComputeCosts(t *testing.T) {
	m := NewConservative()
	m.Op(perf.Access{Class: perf.OpALU, Count: 10})
	m.Op(perf.Access{Class: perf.OpDiv, Count: 1})
	m.Op(perf.Access{Class: perf.OpBranch, Count: 2})
	want := uint64(10*WorstALU + WorstDiv + 2*WorstBranch)
	if got := m.Cycles(); got != want {
		t.Errorf("cycles = %d, want %d", got, want)
	}
}

func TestConservativeUnknownAccess(t *testing.T) {
	m := NewConservative()
	m.ChargeUnknown()
	if m.Cycles() != uint64(MemIssue+LatDRAM) {
		t.Errorf("unknown access = %d", m.Cycles())
	}
}

func TestConservativeSpanningAccess(t *testing.T) {
	m := NewConservative()
	m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: 60, Size: 8})
	want := uint64(MemIssue + 2*LatDRAM)
	if got := m.Cycles(); got != want {
		t.Errorf("spanning access = %d, want %d", got, want)
	}
}

func TestDetailedWarmCacheCheaper(t *testing.T) {
	m := NewDetailed()
	m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: 0x10000, Size: 8})
	cold := m.Cycles()
	m.ResetCycles()
	m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: 0x10000, Size: 8})
	warm := m.Cycles()
	if warm >= cold {
		t.Errorf("warm access (%d) must be cheaper than cold (%d)", warm, cold)
	}
}

func TestDetailedMLPOverlap(t *testing.T) {
	// Independent far-apart misses should be ~MLPWidth cheaper than
	// dependent ones.
	indep := NewDetailed()
	dep := NewDetailed()
	for i := uint64(0); i < 100; i++ {
		addr := 0x100000 + i*4096*7 // avoid streams
		indep.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: addr, Size: 8})
		dep.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: addr, Size: 8, LoadDependent: true})
	}
	ratio := float64(dep.Cycles()) / float64(indep.Cycles())
	if ratio < MLPWidth*0.8 || ratio > MLPWidth*1.2 {
		t.Errorf("dependent/independent ratio = %.2f, want ≈%v", ratio, MLPWidth)
	}
}

func TestDetailedPrefetchStream(t *testing.T) {
	// A sequential dependent walk: after the first miss, subsequent lines
	// are prefetch-covered, far below DRAM latency.
	m := NewDetailed()
	var addrs []uint64
	for i := uint64(0); i < 64; i++ {
		addrs = append(addrs, 0x200000+i*64)
	}
	for _, a := range addrs {
		m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: a, Size: 8, LoadDependent: true})
	}
	perLine := float64(m.Cycles()) / float64(len(addrs))
	if perLine > PrefetchHit*1.5 {
		t.Errorf("prefetched stream costs %.1f cycles/line, want ≲%v", perLine, PrefetchHit*1.5)
	}
}

// The three-program experiment of §5.1: the conservative/detailed ratio
// must be ≈1 for random pointer chasing, ≈6 with prefetching only, and
// ≈9 with prefetching + MLP. The full experiment lives in
// internal/experiments; this is the model-level sanity check.
func TestP1P2P3Ratios(t *testing.T) {
	runBoth := func(addrs []uint64, dependent bool) (consRatio float64) {
		cons := NewConservative()
		det := NewDetailed()
		for _, a := range addrs {
			ev := perf.Access{Class: perf.OpLoad, Count: 1, Addr: a, Size: 8, LoadDependent: dependent}
			cons.Op(ev)
			det.Op(ev)
		}
		return float64(cons.Cycles()) / float64(det.Cycles())
	}

	rng := rand.New(rand.NewSource(1))
	// P1: random 64-bit-ish pointer chase, dependent.
	var p1 []uint64
	for i := 0; i < 4000; i++ {
		p1 = append(p1, uint64(rng.Intn(1<<28))&^63|0x4000_0000)
	}
	r1 := runBoth(p1, true)
	if r1 < 0.9 || r1 > 1.3 {
		t.Errorf("P1 ratio = %.2f, want ≈1", r1)
	}

	// P2: contiguous 64-byte nodes, dependent (linked list in one chunk).
	var p2 []uint64
	for i := uint64(0); i < 4000; i++ {
		p2 = append(p2, 0x5000_0000+i*64)
	}
	r2 := runBoth(p2, true)
	if r2 < 4.5 || r2 > 8 {
		t.Errorf("P2 ratio = %.2f, want ≈6", r2)
	}

	// P3: array of 8-byte elements, independent loads.
	var p3 []uint64
	for i := uint64(0); i < 32000; i++ {
		p3 = append(p3, 0x6000_0000+i*8)
	}
	r3 := runBoth(p3, false)
	if r3 < 7 || r3 > 12 {
		t.Errorf("P3 ratio = %.2f, want ≈9", r3)
	}
}

func TestConservativeStatic(t *testing.T) {
	ops := map[perf.OpClass]uint64{
		perf.OpALU:    10,
		perf.OpBranch: 2,
		perf.OpLoad:   3, // ignored: memory charged via the second arg
	}
	got := ConservativeStatic(ops, 3)
	want := 10*WorstALU + 2*WorstBranch + 3*(MemIssue+LatDRAM)
	if got != want {
		t.Errorf("ConservativeStatic = %v, want %v", got, want)
	}
}

// Property: the conservative model never predicts fewer cycles than the
// detailed model measures for the same trace — the soundness direction
// of Table 3.
func TestConservativeDominatesDetailed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cons := NewConservative()
		det := NewDetailed()
		for i := 0; i < 300; i++ {
			var ev perf.Access
			switch rng.Intn(4) {
			case 0:
				ev = perf.Access{Class: perf.OpALU, Count: uint64(1 + rng.Intn(5))}
			case 1:
				ev = perf.Access{Class: perf.OpBranch, Count: 1}
			default:
				ev = perf.Access{
					Class:         perf.OpLoad,
					Count:         1,
					Addr:          uint64(rng.Intn(1 << 16)),
					Size:          8,
					LoadDependent: rng.Intn(2) == 0,
				}
			}
			cons.Op(ev)
			det.Op(ev)
		}
		return cons.Cycles() >= det.Cycles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDetailedResetAll(t *testing.T) {
	m := NewDetailed()
	m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: 0x1000, Size: 8})
	m.ResetAll()
	if m.Cycles() != 0 {
		t.Fatal("ResetAll must clear cycles")
	}
	m.Op(perf.Access{Class: perf.OpLoad, Count: 1, Addr: 0x1000, Size: 8})
	if m.Cycles() < uint64(DetDRAM/MLPWidth) {
		t.Error("post-reset access should miss")
	}
}
