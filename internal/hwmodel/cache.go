// Package hwmodel provides the two hardware models BOLT's cycle metric
// relies on (paper §3.5 and §5.1):
//
//   - Conservative: the model BOLT uses to *predict* cycles. Compute
//     instructions are charged their worst-case manual latency; every
//     memory access is charged as served from main memory unless the
//     model can definitively prove an L1D hit by tracking the spatial
//     and temporal locality of earlier accesses on the same path. No
//     prefetching, no memory-level parallelism, no shared caches.
//
//   - Detailed: the stand-in for the paper's Xeon testbed, used to
//     *measure* cycles. It keeps caches warm across packets, models a
//     three-level hierarchy, a next-line prefetcher, overlap of
//     independent misses (MLP), and average-case instruction costs.
//
// The paper's headline result for cycles is the ratio between the two:
// ~2–4× for typical workloads, ~9× for pathological ones, ≈1× for
// pointer chasing (its P1 microbenchmark), ~6× with prefetching only
// (P2) and ~9× with prefetching and MLP (P3).
package hwmodel

// LineBits is log2 of the cache line size (64-byte lines).
const LineBits = 6

// Cache is a set-associative cache with LRU replacement, keyed by line
// address. It tracks presence only (no data).
type Cache struct {
	sets    []cacheSet
	setMask uint64
	ways    int
	tick    uint64
}

type cacheSet struct {
	lines []cacheLine
}

type cacheLine struct {
	tag  uint64
	used uint64
}

// NewCache builds a cache with the given number of sets (power of two)
// and ways.
func NewCache(sets, ways int) *Cache {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("hwmodel: sets must be a positive power of two")
	}
	if ways <= 0 {
		panic("hwmodel: ways must be positive")
	}
	return &Cache{
		sets:    make([]cacheSet, sets),
		setMask: uint64(sets - 1),
		ways:    ways,
	}
}

// lineOf returns the line address of a byte address.
func lineOf(addr uint64) uint64 { return addr >> LineBits }

// Contains reports whether the line holding addr is cached, updating LRU
// state on hit.
func (c *Cache) Contains(addr uint64) bool {
	line := lineOf(addr)
	set := &c.sets[line&c.setMask]
	for i := range set.lines {
		if set.lines[i].tag == line {
			c.tick++
			set.lines[i].used = c.tick
			return true
		}
	}
	return false
}

// Insert caches the line holding addr, evicting the LRU line if the set
// is full.
func (c *Cache) Insert(addr uint64) {
	line := lineOf(addr)
	set := &c.sets[line&c.setMask]
	c.tick++
	for i := range set.lines {
		if set.lines[i].tag == line {
			set.lines[i].used = c.tick
			return
		}
	}
	if len(set.lines) < c.ways {
		set.lines = append(set.lines, cacheLine{tag: line, used: c.tick})
		return
	}
	victim := 0
	for i := range set.lines {
		if set.lines[i].used < set.lines[victim].used {
			victim = i
		}
	}
	set.lines[victim] = cacheLine{tag: line, used: c.tick}
}

// Reset empties the cache.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i].lines = c.sets[i].lines[:0]
	}
	c.tick = 0
}

// Touch performs a combined lookup-and-fill, returning whether it hit.
func (c *Cache) Touch(addr uint64) bool {
	if c.Contains(addr) {
		return true
	}
	c.Insert(addr)
	return false
}

// SpansLines reports whether an access of size bytes at addr crosses a
// line boundary (such accesses are charged as two).
func SpansLines(addr uint64, size uint8) bool {
	return size > 0 && lineOf(addr) != lineOf(addr+uint64(size)-1)
}
