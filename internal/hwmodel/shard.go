package hwmodel

import (
	"math"

	"gobolt/internal/perf"
)

// Cross-core coherence constants for the shard dimension of contracts.
//
// When an NF is sharded across S cores, accesses to mutable shared state
// (expiry sweeps, port allocators, heartbeat stamps) can find their cache
// line in a remote core's private cache and pay a core-to-core transfer.
const (
	// XferCycles is the detailed-model cost of one cache-line transfer
	// between cores (a coherence miss served from a remote private
	// cache): slower than an L3 hit, faster than DRAM.
	XferCycles = 60.0

	// WorstXfer is the conservative prediction-side charge: each memory
	// access a path makes to shared mutable state is charged
	// WorstXfer·(S−1) extra cycles at S shards. The per-contender form is
	// deliberately pessimistic — it dominates the detailed simulation,
	// where a line ping-pongs at most once per access (≤ XferCycles)
	// regardless of S, the same way WorstALU/LatDRAM dominate the
	// detailed compute and memory costs. shardbench (internal/
	// experiments) validates the ordering empirically.
	WorstXfer = 100.0
)

// lineState is one cache line's entry in the ShardSim coherence
// directory.
type lineState struct {
	owner   int32
	written bool
}

// ShardSim is the measurement-side model of an NF sharded S ways: one
// warm Detailed core model per shard, plus a line-granular coherence
// directory over the shared address space. It implements
// perf.TraceSink; the caller routes each packet to its shard (SetShard,
// normally monitor.FlowKey mod S) and brackets concrete data-structure
// calls that the contract classified shared-rw with
// SetShared(true)/SetShared(false).
//
// The simulated deployment follows the sharability analysis, the way
// NFork physically partitions state the analysis proves shard-local:
// outside a shared bracket — stateless code, shard-local keyed state,
// read-only replicas — addresses are virtualised per shard (each core
// owns its partition; the interpreter reuses one address space, so the
// simulator separates them by a per-shard stride). Inside a shared
// bracket, accesses hit real addresses through the coherence directory:
// a line that has ever been written charges XferCycles each time a
// different shard touches it, so mutable shared state ping-pongs
// exactly as on hardware. shardbench compares the resulting per-packet
// cycles against the contract's WorstXfer·(S−1)·SharedMA bound.
type ShardSim struct {
	cores      []*Detailed
	cur        int
	shared     bool
	lines      map[uint64]lineState
	xferByCore []float64
	transfers  uint64
}

// shardStride separates the virtualised stateless address spaces; it is
// far above the interpreter's packet-buffer region and the Go heap
// addresses dslib structures report.
const shardStride = uint64(1) << 44

// NewShardSim builds a simulator with `shards` warm cores.
func NewShardSim(shards int) *ShardSim {
	if shards < 1 {
		shards = 1
	}
	s := &ShardSim{
		cores:      make([]*Detailed, shards),
		lines:      make(map[uint64]lineState),
		xferByCore: make([]float64, shards),
	}
	for i := range s.cores {
		s.cores[i] = NewDetailed()
	}
	return s
}

// Shards returns the configured shard count.
func (s *ShardSim) Shards() int { return len(s.cores) }

// SetShard routes subsequent accesses to shard i's core.
func (s *ShardSim) SetShard(i int) { s.cur = i }

// SetShared brackets calls into shared mutable state: inside a bracket
// addresses are real and tracked by the coherence directory; outside,
// they are virtualised into the current shard's private partition.
func (s *ShardSim) SetShared(on bool) { s.shared = on }

// Op implements perf.TraceSink.
func (s *ShardSim) Op(ev perf.Access) {
	core := s.cores[s.cur]
	if ev.Class != perf.OpLoad && ev.Class != perf.OpStore {
		core.Op(ev)
		return
	}
	if !s.shared {
		ev.Addr += uint64(s.cur) * shardStride
		core.Op(ev)
		return
	}
	n := 1
	if SpansLines(ev.Addr, ev.Size) {
		n = 2
	}
	me := int32(s.cur)
	for i := 0; i < n; i++ {
		line := lineOf(ev.Addr + uint64(i)*(1<<LineBits))
		st, seen := s.lines[line]
		if seen && st.written && st.owner != me {
			s.xferByCore[s.cur] += XferCycles
			s.transfers++
		}
		st.owner = me
		st.written = st.written || ev.Class == perf.OpStore
		s.lines[line] = st
	}
	core.Op(ev)
}

// Cycles returns shard i's accumulated cycles including its coherence
// transfer charges, rounded up like Detailed.Cycles.
func (s *ShardSim) Cycles(i int) uint64 {
	return uint64(math.Ceil(s.cores[i].cycles + s.xferByCore[i]))
}

// Transfers returns the total number of cross-shard line transfers
// charged so far.
func (s *ShardSim) Transfers() uint64 { return s.transfers }

// ResetCycles clears every shard's cycle accumulator and transfer
// charges but keeps cache and directory state warm (measurements exclude
// warmup the way Detailed.ResetCycles does).
func (s *ShardSim) ResetCycles() {
	for i, c := range s.cores {
		c.ResetCycles()
		s.xferByCore[i] = 0
	}
	s.transfers = 0
}
