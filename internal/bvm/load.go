package bvm

import (
	"fmt"
	"os"
	"path/filepath"

	"gobolt/internal/nfir"
)

// Options configure Load.
type Options struct {
	// Source is the provenance label recorded on the compiled program
	// and its contracts (conventionally "bvm:<basename>").
	Source string
	// Build tunes data-structure instantiation.
	Build BuildOptions
}

// Unit is a loaded bytecode NF: the verified bytecode and its compiled
// nfir form, ready to be instantiated any number of times.
type Unit struct {
	BC     *Program
	Prog   *nfir.Program
	Source string
	opts   BuildOptions
}

// Instantiate links the unit's declared data structures into env and
// returns their symbolic models, honoring the build options Load was
// given so every instance of the unit is configured identically.
func (u *Unit) Instantiate(env *nfir.Env) (map[string]nfir.Model, error) {
	return u.BC.BuildDS(env, u.opts)
}

// Load assembles, verifies and compiles one .bvm source text. The
// returned Unit shares one compiled program across instantiations, so
// every instance has the same contract cache key.
func Load(src string, opts Options) (*Unit, error) {
	bc, err := Assemble(src)
	if err != nil {
		return nil, err
	}
	if err := Verify(bc); err != nil {
		return nil, err
	}
	prog, err := Compile(bc, opts.Source)
	if err != nil {
		return nil, err
	}
	return &Unit{BC: bc, Prog: prog, Source: opts.Source, opts: opts.Build}, nil
}

// LoadFile is Load on a file, with provenance "bvm:<basename>" — the
// basename (not the full path) so loading the same program from
// different directories, or from the embedded roster data, yields the
// same contract identity.
func LoadFile(path string, build BuildOptions) (*Unit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bvm: %w", err)
	}
	return Load(string(data), Options{Source: "bvm:" + filepath.Base(path), Build: build})
}
