package bvm

import (
	"reflect"
	"strings"
	"testing"
)

// stripLines zeroes the source-line annotations so structural equality
// can be checked across an assemble → disassemble → assemble trip (the
// disassembly has its own line numbering).
func stripLines(p *Program) *Program {
	q := *p
	q.Insts = append([]Inst(nil), p.Insts...)
	for i := range q.Insts {
		q.Insts[i].Line = 0
	}
	return &q
}

// TestRoundTrip pins the golden property of the text format: for every
// shipped program, disassembling and reassembling yields a structurally
// identical program, and the disassembly is a fixed point (disasm ∘ asm ∘
// disasm = disasm).
func TestRoundTrip(t *testing.T) {
	for _, sh := range shippedSources(t) {
		p1, err := Assemble(sh.Src)
		if err != nil {
			t.Fatalf("%s: %v", sh.File, err)
		}
		text := Disassemble(p1)
		p2, err := Assemble(text)
		if err != nil {
			t.Fatalf("%s: reassemble disassembly: %v\n%s", sh.File, err, text)
		}
		if !reflect.DeepEqual(stripLines(p1), stripLines(p2)) {
			t.Errorf("%s: round-trip changed the program\noriginal: %#v\nround-trip: %#v", sh.File, p1, p2)
		}
		if again := Disassemble(p2); again != text {
			t.Errorf("%s: disassembly is not a fixed point\nfirst:\n%s\nsecond:\n%s", sh.File, text, again)
		}
	}
}

// TestRoundTripLoop covers the jump/label machinery the shipped programs
// use lightly: a bounded loop with a backward conditional edge and a
// forward unconditional one.
func TestRoundTripLoop(t *testing.T) {
	src := `
.name looper
.ports 2
  mov r6, 0
  mov r7, 0
loop:
  add r7, 3
  add r6, 1
  jlt r6, 8, loop
  jeq r7, 24, out
  drop
out:
  fwd 1
`
	p1, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p1); err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p1)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(stripLines(p1), stripLines(p2)) {
		t.Errorf("round-trip changed the program\n%s", text)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing name", ".ports 2\n drop\n", "missing .name"},
		{"missing ports", ".name x\n drop\n", "missing .ports"},
		{"bad register", ".name x\n.ports 2\n mov r11, 1\n drop\n", "bad register"},
		{"unknown mnemonic", ".name x\n.ports 2\n frob r1, 1\n", "unknown instruction"},
		{"undefined label", ".name x\n.ports 2\n ja nowhere\n", "undefined label"},
		{"duplicate label", ".name x\n.ports 2\na:\na:\n drop\n", "duplicate label"},
		{"bad size", ".name x\n.ports 2\n ldpkt r1, 0, 3\n drop\n", "size"},
		{"bad ds kind", ".name x\n.ports 2\n.ds t ring\n drop\n", "kind"},
		{"route on non-lpm", ".name x\n.ports 2\n.ds t flowtable keys=1\n.route t 0x0A000000/8 1\n drop\n", "lpm"},
		{"ports range", ".name x\n.ports 0\n drop\n", "ports"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Assemble(tc.src)
			if err == nil {
				t.Fatalf("assembled without error, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
			if !strings.HasPrefix(err.Error(), "bvm:") {
				t.Errorf("error %q is missing the bvm prefix", err)
			}
		})
	}
}
