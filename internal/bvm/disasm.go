package bvm

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders a program back into the text assembly format.
// The output reassembles to a structurally identical program (modulo
// source line numbers) — the round-trip the golden tests pin.
func Disassemble(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".name %s\n", p.Name)
	fmt.Fprintf(&b, ".ports %d\n", p.Ports)
	for i := range p.DS {
		d := &p.DS[i]
		switch d.Kind {
		case KindFlowTable:
			fmt.Fprintf(&b, ".ds %s flowtable keys=%d capacity=%d timeout_ns=%d granularity_ns=%d\n",
				d.Name, d.Keys, d.Capacity, d.TimeoutNS, d.GranularityNS)
		case KindLPM:
			fmt.Fprintf(&b, ".ds %s lpm default=%d groups=%d\n", d.Name, d.DefaultPort, d.MaxGroups)
			for _, r := range d.Routes {
				fmt.Fprintf(&b, ".route %s 0x%08x/%d %d\n", d.Name, r.Prefix, r.Length, r.Port)
			}
		case KindRules:
			fmt.Fprintf(&b, ".ds %s rules default=%d\n", d.Name, d.DefaultAction)
			for _, r := range d.Rules {
				fmt.Fprintf(&b, ".rule %s smask=0x%x sval=0x%x dmask=0x%x dval=0x%x proto=%d action=%d\n",
					d.Name, r.SrcMask, r.SrcVal, r.DstMask, r.DstVal, r.ProtoVal, r.Action)
			}
		}
	}

	// Name every jump target L<index>.
	targets := map[int]bool{}
	for _, in := range p.Insts {
		if in.Op.IsJump() {
			targets[in.Target] = true
		}
	}
	var order []int
	for t := range targets {
		order = append(order, t)
	}
	sort.Ints(order)
	label := func(t int) string { return fmt.Sprintf("L%d", t) }

	b.WriteByte('\n')
	for i, in := range p.Insts {
		if targets[i] {
			fmt.Fprintf(&b, "%s:\n", label(i))
		}
		switch {
		case in.Op == OpMov || in.Op.IsALU():
			fmt.Fprintf(&b, "  %s %s, %s\n", in.Op, regName(in.Reg), in.A)
		case in.Op == OpLdPkt:
			fmt.Fprintf(&b, "  ldpkt %s, %s, %d\n", regName(in.Reg), in.A, in.Size)
		case in.Op == OpStPkt:
			fmt.Fprintf(&b, "  stpkt %s, %s, %d\n", in.A, in.B, in.Size)
		case in.Op == OpJa:
			fmt.Fprintf(&b, "  ja %s\n", label(in.Target))
		case in.Op.IsCondJump():
			fmt.Fprintf(&b, "  %s %s, %s, %s\n", in.Op, regName(in.Reg), in.A, label(in.Target))
		case in.Op == OpCall:
			fmt.Fprintf(&b, "  call %s.%s\n", in.DS, in.Method)
		case in.Op == OpFwd:
			fmt.Fprintf(&b, "  fwd %s\n", in.A)
		case in.Op == OpDrop:
			fmt.Fprintf(&b, "  drop\n")
		default:
			fmt.Fprintf(&b, "  ; unknown %s\n", in.Op)
		}
	}
	if targets[len(p.Insts)] {
		fmt.Fprintf(&b, "%s:\n", label(len(p.Insts)))
	}
	return b.String()
}
