package bvm

import (
	"fmt"
	"math"
	"math/bits"
)

// Verification limits. The walk budget bounds the verifier's (and
// compiler's) own work on the unrolled control-flow tree; MaxLoopTrips
// bounds any single proven loop.
const (
	MaxLoopTrips = 100_000
	walkBudget   = 200_000
)

// Verify is the safety gate between untrusted bytecode and the
// pipeline. It rejects, with a specific diagnostic and never a panic:
//
//   - malformed encodings (bad opcodes, registers, sizes, jump targets)
//   - calls to undeclared data structures or unknown methods
//   - unreachable instructions and control that can fall off the end
//   - unbounded loops: every back-edge must be a bottom-tested
//     jlt/jle on a counter register that the loop body only ever
//     advances by a constant, giving a provable trip count
//   - reads of uninitialized registers, including r1..r5 after a call
//     clobbers them (tracked path-sensitively over the unrolled walk)
//   - packet loads/stores whose offset interval may exceed MaxPacket
//   - divisions whose divisor interval contains zero
//
// The same interval-tracking walk backs the compiler, so "verified"
// means exactly "compilable": Compile cannot fail on a verified
// program.
func Verify(p *Program) error {
	if err := verifyStructure(p); err != nil {
		return err
	}
	_, err := newWalker(p).run()
	return err
}

func instErr(p *Program, pc int, format string, args ...any) error {
	loc := fmt.Sprintf("inst %d", pc)
	if pc >= 0 && pc < len(p.Insts) && p.Insts[pc].Line > 0 {
		loc = fmt.Sprintf("inst %d (line %d)", pc, p.Insts[pc].Line)
	}
	return fmt.Errorf("bvm: %s: %s: %s", p.Name, loc, fmt.Sprintf(format, args...))
}

// verifyStructure runs the flow-insensitive checks: encoding validity,
// declaration lookups, reachability and the back-edge trip-count proof.
func verifyStructure(p *Program) error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("bvm: %s: empty program", p.Name)
	}
	if len(p.Insts) > MaxInsts {
		return fmt.Errorf("bvm: %s: program too long (%d insts, max %d)", p.Name, len(p.Insts), MaxInsts)
	}
	if p.Ports == 0 || p.Ports > 256 {
		return fmt.Errorf("bvm: %s: ports must be 1..256, got %d", p.Name, p.Ports)
	}
	for i := range p.DS {
		d := &p.DS[i]
		if d.Kind > KindRules {
			return fmt.Errorf("bvm: %s: data structure %q has unknown kind %d", p.Name, d.Name, d.Kind)
		}
		if d.Kind == KindFlowTable && (d.Keys < 1 || d.Keys > 3) {
			return fmt.Errorf("bvm: %s: flowtable %q keys must be 1..3, got %d", p.Name, d.Name, d.Keys)
		}
		for j := range p.DS[:i] {
			if p.DS[j].Name == d.Name {
				return fmt.Errorf("bvm: %s: data structure %q redeclared", p.Name, d.Name)
			}
		}
	}

	for pc := range p.Insts {
		in := &p.Insts[pc]
		if in.Op >= opEnd {
			return instErr(p, pc, "invalid opcode %d", uint8(in.Op))
		}
		if in.Reg >= NumRegs {
			return instErr(p, pc, "invalid register r%d", in.Reg)
		}
		for _, o := range []Operand{in.A, in.B} {
			if o.IsReg && o.Reg >= NumRegs {
				return instErr(p, pc, "invalid register r%d", o.Reg)
			}
		}
		switch {
		case in.Op == OpLdPkt || in.Op == OpStPkt:
			switch in.Size {
			case 1, 2, 4, 8:
			default:
				return instErr(p, pc, "unsupported access size %d", in.Size)
			}
			if in.Op == OpStPkt && in.A.IsReg {
				// The symbolic engine cannot model stores at symbolic
				// offsets, so the ISA pins store offsets to immediates.
				return instErr(p, pc, "stpkt offset must be an immediate")
			}
		case in.Op.IsJump():
			if in.Target < 0 || in.Target >= len(p.Insts) {
				return instErr(p, pc, "jump target %d out of range", in.Target)
			}
		case in.Op == OpCall:
			d := p.Decl(in.DS)
			if d == nil {
				return instErr(p, pc, "call to undeclared data structure %q", in.DS)
			}
			sig, ok := d.Methods()[in.Method]
			if !ok {
				return instErr(p, pc, "%s %s has no method %q", d.Kind, in.DS, in.Method)
			}
			if sig.Args > MaxCallArgs {
				return instErr(p, pc, "helper %s.%s wants %d args, only r1..r%d exist", in.DS, in.Method, sig.Args, MaxCallArgs)
			}
		case in.Op == OpFwd:
			if !in.A.IsReg && in.A.Imm >= p.Ports {
				return instErr(p, pc, "forward to port %d out of range (ports=%d)", in.A.Imm, p.Ports)
			}
		case (in.Op == OpDiv || in.Op == OpMod) && !in.A.IsReg && in.A.Imm == 0:
			return instErr(p, pc, "division by zero immediate")
		}
	}

	// Reachability over the static CFG.
	reach := make([]bool, len(p.Insts))
	work := []int{0}
	reach[0] = true
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		in := &p.Insts[pc]
		push := func(t int) {
			if t < len(p.Insts) && !reach[t] {
				reach[t] = true
				work = append(work, t)
			}
		}
		switch {
		case in.Op == OpFwd || in.Op == OpDrop:
		case in.Op == OpJa:
			push(in.Target)
		case in.Op.IsCondJump():
			push(in.Target)
			push(pc + 1)
		default:
			push(pc + 1)
		}
	}
	for pc, r := range reach {
		if !r {
			return instErr(p, pc, "instruction is unreachable")
		}
	}

	// Back-edge trip-count proof: loops must be bottom-tested on a
	// counter the body provably advances.
	for pc := range p.Insts {
		in := &p.Insts[pc]
		if !in.Op.IsJump() || in.Target > pc {
			continue
		}
		if in.Op == OpJa {
			return instErr(p, pc, "unbounded loop: unconditional back-edge (loops must be bottom-tested with jlt/jle)")
		}
		if in.Op != OpJlt && in.Op != OpJle {
			return instErr(p, pc, "unbounded loop: back-edge must be jlt/jle on a counter register")
		}
		if in.A.IsReg {
			return instErr(p, pc, "unbounded loop: back-edge comparison bound must be an immediate")
		}
		counter, bound := in.Reg, in.A.Imm
		minStep := uint64(math.MaxUint64)
		for b := in.Target; b <= pc; b++ {
			body := &p.Insts[b]
			writes := false
			switch {
			case body.Op == OpMov || body.Op.IsALU():
				writes = body.Reg == counter
			case body.Op == OpLdPkt:
				writes = body.Reg == counter
			case body.Op == OpCall:
				if counter <= MaxCallArgs {
					return instErr(p, pc, "call at inst %d clobbers loop counter r%d (use r6..r10)", b, counter)
				}
			}
			if !writes {
				continue
			}
			if b == pc {
				continue
			}
			if body.Op != OpAdd || body.A.IsReg {
				return instErr(p, pc, "loop counter r%d must only be advanced by 'add r%d, imm' in the body (inst %d)", counter, counter, b)
			}
			if body.A.Imm == 0 {
				return instErr(p, pc, "loop counter increment at inst %d must be ≥ 1", b)
			}
			if body.A.Imm < minStep {
				minStep = body.A.Imm
			}
		}
		if minStep == math.MaxUint64 {
			return instErr(p, pc, "unbounded loop: body never advances counter r%d", counter)
		}
		trips := bound/minStep + 2
		if trips > MaxLoopTrips {
			return instErr(p, pc, "loop trip bound %d exceeds %d", trips, MaxLoopTrips)
		}
	}
	return nil
}

// ival is the abstract value of one register: an unsigned interval plus
// an initialization bit. Uninitialized registers have init == false and
// any read of one is rejected.
type ival struct {
	init   bool
	lo, hi uint64
}

func exact(v uint64) ival { return ival{init: true, lo: v, hi: v} }

var fullIval = ival{init: true, lo: 0, hi: math.MaxUint64}

func (v ival) singleton() bool { return v.lo == v.hi }

// aluIval is the interval transfer function for ALU ops. It is sound
// but deliberately simple: anything it cannot bound becomes the full
// interval. Semantics mirror symb.ApplyOp (the shared concrete
// semantics), including shift-beyond-width and the verifier separately
// rejecting divisors whose interval contains zero.
func aluIval(op Op, a, b ival) ival {
	switch op {
	case OpAdd:
		if a.hi > math.MaxUint64-b.hi {
			return fullIval
		}
		return ival{init: true, lo: a.lo + b.lo, hi: a.hi + b.hi}
	case OpSub:
		if a.lo >= b.hi {
			return ival{init: true, lo: a.lo - b.hi, hi: a.hi - b.lo}
		}
		return fullIval
	case OpMul:
		if a.hi != 0 && b.hi != 0 && a.hi > math.MaxUint64/b.hi {
			return fullIval
		}
		return ival{init: true, lo: a.lo * b.lo, hi: a.hi * b.hi}
	case OpDiv:
		if b.lo == 0 {
			return fullIval // rejected separately; keep the transfer total
		}
		return ival{init: true, lo: a.lo / b.hi, hi: a.hi / b.lo}
	case OpMod:
		if b.lo == 0 {
			return fullIval
		}
		return ival{init: true, lo: 0, hi: b.hi - 1}
	case OpAnd:
		return ival{init: true, lo: 0, hi: min(a.hi, b.hi)}
	case OpOr, OpXor:
		m := a.hi | b.hi
		if m == math.MaxUint64 {
			return fullIval
		}
		// Result fits in the union of the operands' bit widths.
		return ival{init: true, lo: 0, hi: 1<<bits.Len64(m) - 1}
	case OpLsh:
		if b.singleton() {
			s := b.lo
			if s >= 64 {
				return exact(0) // symb.ApplyOp: shift ≥ width yields 0
			}
			if a.hi <= math.MaxUint64>>s {
				return ival{init: true, lo: a.lo << s, hi: a.hi << s}
			}
		}
		return fullIval
	case OpRsh:
		if b.singleton() {
			s := b.lo
			if s >= 64 {
				return exact(0)
			}
			return ival{init: true, lo: a.lo >> s, hi: a.hi >> s}
		}
		return ival{init: true, lo: 0, hi: a.hi}
	}
	return fullIval
}

// decideCmp evaluates a comparison over intervals: decided reports
// whether every concrete pair in a×b agrees, and then taken is that
// shared verdict.
func decideCmp(op Op, a, b ival) (decided, taken bool) {
	switch op {
	case OpJeq:
		if a.hi < b.lo || b.hi < a.lo {
			return true, false
		}
		if a.singleton() && b.singleton() && a.lo == b.lo {
			return true, true
		}
	case OpJne:
		d, t := decideCmp(OpJeq, a, b)
		return d, d && !t
	case OpJlt:
		if a.hi < b.lo {
			return true, true
		}
		if a.lo >= b.hi {
			return true, false
		}
	case OpJle:
		if a.hi <= b.lo {
			return true, true
		}
		if a.lo > b.hi {
			return true, false
		}
	case OpJgt:
		d, t := decideCmp(OpJle, a, b)
		return d, d && !t
	case OpJge:
		d, t := decideCmp(OpJlt, a, b)
		return d, d && !t
	}
	return false, false
}

// refineCmp narrows a register's interval after an undecided comparison
// against a singleton bound k, on the branch where the comparison's
// outcome is known. Because the comparison was undecided, the edge
// cases that would underflow (k == 0 for jlt) cannot arise.
func refineCmp(op Op, v ival, k uint64, taken bool) ival {
	switch op {
	case OpJeq:
		if taken {
			return exact(k)
		}
		return excludeEdge(v, k)
	case OpJne:
		if taken {
			return excludeEdge(v, k)
		}
		return exact(k)
	case OpJlt:
		if taken {
			v.hi = min(v.hi, k-1)
		} else {
			v.lo = max(v.lo, k)
		}
	case OpJle:
		if taken {
			v.hi = min(v.hi, k)
		} else {
			v.lo = max(v.lo, k+1)
		}
	case OpJgt:
		if taken {
			v.lo = max(v.lo, k+1)
		} else {
			v.hi = min(v.hi, k)
		}
	case OpJge:
		if taken {
			v.lo = max(v.lo, k)
		} else {
			v.hi = min(v.hi, k-1)
		}
	}
	return v
}

// excludeEdge removes k from the interval when k sits on an edge (the
// only exclusion an interval can represent).
func excludeEdge(v ival, k uint64) ival {
	if v.lo == k && v.hi > k {
		v.lo = k + 1
	} else if v.hi == k && v.lo < k {
		v.hi = k - 1
	}
	return v
}
