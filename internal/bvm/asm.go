package bvm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembler defaults: a flow table declared without explicit sizing gets
// the roster's canonical evaluation configuration, so .bvm NFs line up
// with the builtins they sit next to.
const (
	defaultCapacity      = 4096
	defaultTimeoutNS     = uint64(3_600_000_000_000) // one hour
	defaultGranularityNS = uint64(1_000_000)         // one millisecond
	defaultLPMGroups     = 64
)

// Assemble parses the text assembly format into a Program. The format:
//
//	; comment
//	.name  bvm-ratelimit          ; required: NF name
//	.ports 2                      ; required: output port count
//	.ds    flows flowtable keys=1 capacity=4096 timeout_ns=... granularity_ns=...
//	.ds    tbl   lpm default=0 groups=64
//	.route tbl   0x0A000000/8 1
//	.ds    acl   rules default=0
//	.rule  acl   smask=0xFF000000 sval=0x0A000000 action=1
//
//	start:                        ; labels end with ':'
//	  ldpkt r4, 12, 2             ; operands: rN registers or immediates
//	  jne   r4, 0x800, reject
//	  call  flows.get
//	  fwd   r0
//	reject:
//	  drop
//
// Assemble only checks syntax (and declaration well-formedness); Verify
// is the safety gate.
func Assemble(src string) (*Program, error) {
	p := &Program{}
	labels := map[string]int{}
	type patch struct {
		inst  int
		label string
		line  int
	}
	var patches []patch
	sawName, sawPorts := false, false

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		n := lineNo + 1

		// Labels: one or more "name:" prefixes, then an optional
		// instruction on the same line.
		for {
			fields := strings.Fields(line)
			if len(fields) == 0 {
				break
			}
			first := fields[0]
			if !strings.HasSuffix(first, ":") {
				break
			}
			name := strings.TrimSuffix(first, ":")
			if !isIdent(name) {
				return nil, fmt.Errorf("bvm: line %d: bad label %q", n, first)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("bvm: line %d: duplicate label %q", n, name)
			}
			labels[name] = len(p.Insts)
			line = strings.TrimSpace(strings.TrimPrefix(line, first))
		}
		if line == "" {
			continue
		}

		if strings.HasPrefix(line, ".") {
			if err := parseDirective(p, line, n, &sawName, &sawPorts); err != nil {
				return nil, err
			}
			continue
		}

		inst, labelRef, err := parseInst(p, line, n)
		if err != nil {
			return nil, err
		}
		if labelRef != "" {
			patches = append(patches, patch{inst: len(p.Insts), label: labelRef, line: n})
		}
		p.Insts = append(p.Insts, inst)
	}

	if !sawName {
		return nil, fmt.Errorf("bvm: missing .name directive")
	}
	if !sawPorts {
		return nil, fmt.Errorf("bvm: missing .ports directive")
	}
	for _, pt := range patches {
		tgt, ok := labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("bvm: line %d: undefined label %q", pt.line, pt.label)
		}
		p.Insts[pt.inst].Target = tgt
	}
	return p, nil
}

func parseDirective(p *Program, line string, n int, sawName, sawPorts *bool) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".name":
		if len(fields) != 2 || !isIdent(fields[1]) {
			return fmt.Errorf("bvm: line %d: usage: .name IDENT", n)
		}
		p.Name = fields[1]
		*sawName = true
	case ".ports":
		if len(fields) != 2 {
			return fmt.Errorf("bvm: line %d: usage: .ports N", n)
		}
		v, err := parseNum(fields[1])
		if err != nil || v == 0 || v > 256 {
			return fmt.Errorf("bvm: line %d: .ports wants 1..256, got %q", n, fields[1])
		}
		p.Ports = v
		*sawPorts = true
	case ".ds":
		if len(fields) < 3 {
			return fmt.Errorf("bvm: line %d: usage: .ds NAME KIND [k=v ...]", n)
		}
		name := fields[1]
		if !isIdent(name) {
			return fmt.Errorf("bvm: line %d: bad data-structure name %q", n, name)
		}
		if p.Decl(name) != nil {
			return fmt.Errorf("bvm: line %d: data structure %q redeclared", n, name)
		}
		d := DSDecl{Name: name}
		switch fields[2] {
		case "flowtable":
			d.Kind = KindFlowTable
			d.Keys = 1
			d.Capacity = defaultCapacity
			d.TimeoutNS = defaultTimeoutNS
			d.GranularityNS = defaultGranularityNS
		case "lpm":
			d.Kind = KindLPM
			d.MaxGroups = defaultLPMGroups
		case "rules":
			d.Kind = KindRules
		default:
			return fmt.Errorf("bvm: line %d: unknown data-structure kind %q (want flowtable, lpm, rules)", n, fields[2])
		}
		for _, kv := range fields[3:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bvm: line %d: bad option %q (want key=value)", n, kv)
			}
			v, err := parseNum(val)
			if err != nil {
				return fmt.Errorf("bvm: line %d: bad value in %q: %v", n, kv, err)
			}
			switch {
			case d.Kind == KindFlowTable && key == "keys":
				d.Keys = int(v)
			case d.Kind == KindFlowTable && key == "capacity":
				d.Capacity = int(v)
			case d.Kind == KindFlowTable && key == "timeout_ns":
				d.TimeoutNS = v
			case d.Kind == KindFlowTable && key == "granularity_ns":
				d.GranularityNS = v
			case d.Kind == KindLPM && key == "default":
				d.DefaultPort = v
			case d.Kind == KindLPM && key == "groups":
				d.MaxGroups = int(v)
			case d.Kind == KindRules && key == "default":
				d.DefaultAction = v
			default:
				return fmt.Errorf("bvm: line %d: unknown %s option %q", n, d.Kind, key)
			}
		}
		if d.Kind == KindFlowTable {
			if d.Keys < 1 || d.Keys > 3 {
				return fmt.Errorf("bvm: line %d: flowtable keys wants 1..3, got %d", n, d.Keys)
			}
			if d.Capacity < 1 {
				return fmt.Errorf("bvm: line %d: flowtable capacity must be positive", n)
			}
		}
		p.DS = append(p.DS, d)
	case ".route":
		if len(fields) != 4 {
			return fmt.Errorf("bvm: line %d: usage: .route DS PREFIX/LEN PORT", n)
		}
		d := p.Decl(fields[1])
		if d == nil || d.Kind != KindLPM {
			return fmt.Errorf("bvm: line %d: .route wants a declared lpm, got %q", n, fields[1])
		}
		pfxStr, lenStr, ok := strings.Cut(fields[2], "/")
		if !ok {
			return fmt.Errorf("bvm: line %d: bad route %q (want PREFIX/LEN)", n, fields[2])
		}
		pfx, err := parseNum(pfxStr)
		if err != nil || pfx > 0xFFFFFFFF {
			return fmt.Errorf("bvm: line %d: bad route prefix %q", n, pfxStr)
		}
		length, err := parseNum(lenStr)
		if err != nil || length > 32 {
			return fmt.Errorf("bvm: line %d: bad route length %q", n, lenStr)
		}
		port, err := parseNum(fields[3])
		if err != nil || port > 0xFFFF {
			return fmt.Errorf("bvm: line %d: bad route port %q", n, fields[3])
		}
		d.Routes = append(d.Routes, RouteDecl{Prefix: uint32(pfx), Length: int(length), Port: uint16(port)})
	case ".rule":
		if len(fields) < 2 {
			return fmt.Errorf("bvm: line %d: usage: .rule DS [smask= sval= dmask= dval= proto= action=]", n)
		}
		d := p.Decl(fields[1])
		if d == nil || d.Kind != KindRules {
			return fmt.Errorf("bvm: line %d: .rule wants a declared rules set, got %q", n, fields[1])
		}
		var r RuleDecl
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bvm: line %d: bad option %q (want key=value)", n, kv)
			}
			v, err := parseNum(val)
			if err != nil {
				return fmt.Errorf("bvm: line %d: bad value in %q: %v", n, kv, err)
			}
			switch key {
			case "smask":
				r.SrcMask = v
			case "sval":
				r.SrcVal = v
			case "dmask":
				r.DstMask = v
			case "dval":
				r.DstVal = v
			case "proto":
				r.ProtoVal = v
			case "action":
				r.Action = v
			default:
				return fmt.Errorf("bvm: line %d: unknown rule option %q", n, key)
			}
		}
		d.Rules = append(d.Rules, r)
	default:
		return fmt.Errorf("bvm: line %d: unknown directive %q", n, fields[0])
	}
	return nil
}

// parseInst parses one instruction line. A returned non-empty labelRef
// means Target must be patched once all labels are known.
func parseInst(p *Program, line string, n int) (Inst, string, error) {
	fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
	if len(fields) == 0 {
		return Inst{}, "", fmt.Errorf("bvm: line %d: empty instruction", n)
	}
	mnem := fields[0]
	args := fields[1:]
	inst := Inst{Line: n}
	bad := func(usage string) (Inst, string, error) {
		return Inst{}, "", fmt.Errorf("bvm: line %d: usage: %s", n, usage)
	}

	switch mnem {
	case "mov", "add", "sub", "mul", "div", "mod", "and", "or", "xor", "lsh", "rsh":
		inst.Op = map[string]Op{
			"mov": OpMov, "add": OpAdd, "sub": OpSub, "mul": OpMul,
			"div": OpDiv, "mod": OpMod, "and": OpAnd, "or": OpOr,
			"xor": OpXor, "lsh": OpLsh, "rsh": OpRsh,
		}[mnem]
		if len(args) != 2 {
			return bad(mnem + " rd, (rs|imm)")
		}
		rd, ok := parseReg(args[0])
		if !ok {
			return Inst{}, "", fmt.Errorf("bvm: line %d: bad register %q", n, args[0])
		}
		src, err := parseOperand(args[1], n)
		if err != nil {
			return Inst{}, "", err
		}
		inst.Reg, inst.A = rd, src
	case "ldpkt":
		inst.Op = OpLdPkt
		if len(args) != 3 {
			return bad("ldpkt rd, (rs|imm), size")
		}
		rd, ok := parseReg(args[0])
		if !ok {
			return Inst{}, "", fmt.Errorf("bvm: line %d: bad register %q", n, args[0])
		}
		off, err := parseOperand(args[1], n)
		if err != nil {
			return Inst{}, "", err
		}
		size, err := parseSize(args[2], n)
		if err != nil {
			return Inst{}, "", err
		}
		inst.Reg, inst.A, inst.Size = rd, off, size
	case "stpkt":
		inst.Op = OpStPkt
		if len(args) != 3 {
			return bad("stpkt off, (rs|imm), size")
		}
		off, err := parseOperand(args[0], n)
		if err != nil {
			return Inst{}, "", err
		}
		val, err := parseOperand(args[1], n)
		if err != nil {
			return Inst{}, "", err
		}
		size, err := parseSize(args[2], n)
		if err != nil {
			return Inst{}, "", err
		}
		inst.A, inst.B, inst.Size = off, val, size
	case "ja":
		inst.Op = OpJa
		if len(args) != 1 || !isIdent(args[0]) {
			return bad("ja LABEL")
		}
		return inst, args[0], nil
	case "jeq", "jne", "jlt", "jle", "jgt", "jge":
		inst.Op = map[string]Op{
			"jeq": OpJeq, "jne": OpJne, "jlt": OpJlt,
			"jle": OpJle, "jgt": OpJgt, "jge": OpJge,
		}[mnem]
		if len(args) != 3 {
			return bad(mnem + " rA, (rB|imm), LABEL")
		}
		ra, ok := parseReg(args[0])
		if !ok {
			return Inst{}, "", fmt.Errorf("bvm: line %d: bad register %q", n, args[0])
		}
		src, err := parseOperand(args[1], n)
		if err != nil {
			return Inst{}, "", err
		}
		if !isIdent(args[2]) {
			return Inst{}, "", fmt.Errorf("bvm: line %d: bad label %q", n, args[2])
		}
		inst.Reg, inst.A = ra, src
		return inst, args[2], nil
	case "call":
		inst.Op = OpCall
		if len(args) != 1 {
			return bad("call ds.method")
		}
		ds, method, ok := strings.Cut(args[0], ".")
		if !ok || !isIdent(ds) || !isIdent(method) {
			return bad("call ds.method")
		}
		inst.DS, inst.Method = ds, method
	case "fwd":
		inst.Op = OpFwd
		if len(args) != 1 {
			return bad("fwd (rs|imm)")
		}
		src, err := parseOperand(args[0], n)
		if err != nil {
			return Inst{}, "", err
		}
		inst.A = src
	case "drop":
		inst.Op = OpDrop
		if len(args) != 0 {
			return bad("drop")
		}
	default:
		return Inst{}, "", fmt.Errorf("bvm: line %d: unknown instruction %q", n, mnem)
	}
	return inst, "", nil
}

func parseReg(s string) (uint8, bool) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, false
	}
	v, err := strconv.ParseUint(s[1:], 10, 8)
	if err != nil || v >= NumRegs {
		return 0, false
	}
	return uint8(v), true
}

func parseOperand(s string, n int) (Operand, error) {
	if r, ok := parseReg(s); ok {
		return R(r), nil
	}
	v, err := parseNum(s)
	if err != nil {
		return Operand{}, fmt.Errorf("bvm: line %d: bad operand %q (want rN or a number)", n, s)
	}
	return Imm(v), nil
}

func parseSize(s string, n int) (int, error) {
	v, err := parseNum(s)
	if err != nil {
		return 0, fmt.Errorf("bvm: line %d: bad size %q", n, s)
	}
	switch v {
	case 1, 2, 4, 8:
		return int(v), nil
	}
	return 0, fmt.Errorf("bvm: line %d: unsupported access size %d (want 1, 2, 4 or 8)", n, v)
}

func parseNum(s string) (uint64, error) {
	return strconv.ParseUint(s, 0, 64)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
