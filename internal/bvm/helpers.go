package bvm

import (
	"fmt"

	"gobolt/internal/dslib"
	"gobolt/internal/nfir"
)

// BuildOptions tune instantiation without touching the program text,
// mirroring nf.BuildParams so .bvm NFs parameterize exactly like
// builtins (and their contract cache keys line up across tools).
type BuildOptions struct {
	// Capacity overrides every declared flow table's capacity (0 keeps
	// the declaration's).
	Capacity int
	// TimeoutNS overrides every declared flow table's expiry window.
	TimeoutNS uint64
}

// BuildDS instantiates the program's declared data structures against
// env — linking concrete implementations into env.DS — and returns the
// symbolic models contract generation needs. Flow tables use the
// VigNAT cost preset (the library's canonical hash-table contract).
func (p *Program) BuildDS(env *nfir.Env, opts BuildOptions) (map[string]nfir.Model, error) {
	models := make(map[string]nfir.Model, len(p.DS))
	for i := range p.DS {
		d := &p.DS[i]
		switch d.Kind {
		case KindFlowTable:
			capacity := d.Capacity
			if opts.Capacity > 0 {
				capacity = opts.Capacity
			}
			timeout := d.TimeoutNS
			if opts.TimeoutNS > 0 {
				timeout = opts.TimeoutNS
			}
			t := dslib.NewFlowTable(env, dslib.FlowTableConfig{
				Name: d.Name, Capacity: capacity, KeyWords: d.Keys,
				TimeoutNS: timeout, GranularityNS: d.GranularityNS,
				Costs: dslib.VigNATCosts(),
			})
			env.DS[d.Name] = t
			models[d.Name] = t.Model()
		case KindLPM:
			if d.DefaultPort >= p.Ports {
				return nil, fmt.Errorf("bvm: %s: lpm %q default port %d out of range (ports=%d)", p.Name, d.Name, d.DefaultPort, p.Ports)
			}
			dir := dslib.NewDir248(env, uint16(d.DefaultPort), d.MaxGroups)
			for _, r := range d.Routes {
				if uint64(r.Port) >= p.Ports {
					return nil, fmt.Errorf("bvm: %s: lpm %q route port %d out of range (ports=%d)", p.Name, d.Name, r.Port, p.Ports)
				}
				if err := dir.AddRoute(r.Prefix, r.Length, r.Port); err != nil {
					return nil, fmt.Errorf("bvm: %s: lpm %q: %w", p.Name, d.Name, err)
				}
			}
			env.DS[d.Name] = dir
			models[d.Name] = dir.Model()
		case KindRules:
			rules := make([]dslib.Rule, len(d.Rules))
			for j, r := range d.Rules {
				rules[j] = dslib.Rule{
					SrcMask: r.SrcMask, SrcVal: r.SrcVal,
					DstMask: r.DstMask, DstVal: r.DstVal,
					ProtoVal: r.ProtoVal, Action: r.Action,
				}
			}
			rs := dslib.NewRuleSet(env, rules, d.DefaultAction)
			env.DS[d.Name] = rs
			models[d.Name] = rs.Model()
		default:
			return nil, fmt.Errorf("bvm: %s: data structure %q has unknown kind %d", p.Name, d.Name, d.Kind)
		}
	}
	return models, nil
}
