package bvm

import (
	"encoding/binary"
	"fmt"

	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// Run executes verified bytecode directly against an nfir.Env — the
// same environment, data structures, meter and PCV channel the compiled
// program runs in — and is the differential oracle for the compiler:
// for any packet, Run and nfir's concrete execution of Compile's output
// must agree on action, instruction count, memory accesses, PCV
// observations and data-structure state evolution. Per-instruction
// charging mirrors the lowering table in the package comment.
//
// Run assumes p passed Verify; on unverified programs it still never
// corrupts the environment (bounds and step budgets are enforced) but
// may return errors the compiled form reports differently.
func Run(p *Program, env *nfir.Env) (nfir.Action, error) {
	var regs [NumRegs]uint64
	regs[1] = env.InPort
	regs[2] = env.PktLen
	regs[3] = env.Time

	val := func(o Operand) uint64 {
		if o.IsReg {
			return regs[o.Reg]
		}
		return o.Imm
	}

	pc := 0
	for steps := 0; ; steps++ {
		if steps >= walkBudget {
			return nfir.Action{}, fmt.Errorf("bvm: %s: interpreter step budget exceeded", p.Name)
		}
		if pc < 0 || pc >= len(p.Insts) {
			return nfir.Action{}, fmt.Errorf("bvm: %s: control fell off the end", p.Name)
		}
		in := &p.Insts[pc]
		switch {
		case in.Op == OpMov:
			regs[in.Reg] = val(in.A)
			pc++

		case in.Op.IsALU():
			env.Meter.Exec(aluClass(in.Op), 1)
			regs[in.Reg] = symb.ApplyOp(aluSymbOp[in.Op], regs[in.Reg], val(in.A))
			pc++

		case in.Op == OpLdPkt:
			off := val(in.A)
			if off > nfir.MaxPacket-uint64(in.Size) {
				return nfir.Action{}, fmt.Errorf("bvm: %s: packet load out of bounds: off=%d size=%d", p.Name, off, in.Size)
			}
			env.Meter.Load(env.PktAddr+off, uint8(in.Size), false)
			regs[in.Reg] = beLoad(env.Pkt[off:], in.Size)
			pc++

		case in.Op == OpStPkt:
			off := val(in.A)
			if off > nfir.MaxPacket-uint64(in.Size) {
				return nfir.Action{}, fmt.Errorf("bvm: %s: packet store out of bounds: off=%d size=%d", p.Name, off, in.Size)
			}
			env.Meter.Store(env.PktAddr+off, uint8(in.Size))
			beStore(env.Pkt[off:], in.Size, val(in.B))
			pc++

		case in.Op == OpJa:
			pc = in.Target

		case in.Op.IsCondJump():
			env.Meter.Exec(perf.OpBranch, 1)
			if symb.ApplyOp(cmpSymbOp[in.Op], regs[in.Reg], val(in.A)) != 0 {
				pc = in.Target
			} else {
				pc++
			}

		case in.Op == OpCall:
			d := p.Decl(in.DS)
			if d == nil {
				return nfir.Action{}, fmt.Errorf("bvm: %s: call to undeclared data structure %q", p.Name, in.DS)
			}
			sig, ok := d.Methods()[in.Method]
			if !ok {
				return nfir.Action{}, fmt.Errorf("bvm: %s: %s has no method %q", p.Name, in.DS, in.Method)
			}
			ds, ok := env.DS[in.DS]
			if !ok {
				return nfir.Action{}, fmt.Errorf("bvm: %s: data structure %q not linked into env", p.Name, in.DS)
			}
			args := make([]uint64, sig.Args)
			for i := range args {
				args[i] = regs[i+1]
			}
			results, err := ds.Invoke(in.Method, args, env)
			if err != nil {
				return nfir.Action{}, fmt.Errorf("bvm: %s: %s.%s: %w", p.Name, in.DS, in.Method, err)
			}
			if len(results) < sig.Results {
				return nfir.Action{}, fmt.Errorf("bvm: %s: %s.%s returned %d values, want %d", p.Name, in.DS, in.Method, len(results), sig.Results)
			}
			regs[0] = results[0]
			if sig.Results > 1 {
				regs[1] = results[1]
			}
			pc++

		case in.Op == OpFwd:
			env.Action = nfir.Action{Kind: nfir.ActionForward, Port: val(in.A)}
			return env.Action, nil

		case in.Op == OpDrop:
			env.Action = nfir.Action{Kind: nfir.ActionDrop}
			return env.Action, nil

		default:
			return nfir.Action{}, fmt.Errorf("bvm: %s: invalid opcode %d", p.Name, uint8(in.Op))
		}
	}
}

// aluClass mirrors nfir's opClass for the ALU subset.
func aluClass(op Op) perf.OpClass {
	switch op {
	case OpMul:
		return perf.OpMul
	case OpDiv, OpMod:
		return perf.OpDiv
	default:
		return perf.OpALU
	}
}

// beLoad/beStore mirror nfir's big-endian packet accessors.
func beLoad(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.BigEndian.Uint16(b))
	case 4:
		return uint64(binary.BigEndian.Uint32(b))
	default:
		return binary.BigEndian.Uint64(b)
	}
}

func beStore(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.BigEndian.PutUint16(b, uint16(v))
	case 4:
		binary.BigEndian.PutUint32(b, uint32(v))
	default:
		binary.BigEndian.PutUint64(b, v)
	}
}
