// Package bvm is the bytecode frontend: an eBPF-flavored register
// machine whose programs are data (a human-writable assembly format),
// verified before use and compiled into nfir for the existing contract
// pipeline. A concrete interpreter executes the same bytecode directly
// against an nfir.Env — sharing the data-structure library, the PCV
// observation channel and the perf.Meter — and serves as the
// differential oracle for the compiler: interpreting a verified program
// and concretely executing its compiled nfir must agree packet for
// packet on action, instruction count, memory accesses and PCVs.
//
// The machine has eleven 64-bit registers r0..r10. At entry r1 holds
// the arrival port, r2 the packet length and r3 the arrival timestamp
// in nanoseconds. Helper calls (call ds.method) take their arguments in
// r1..r5, return their first result in r0 and their second (if any) in
// r1, and clobber r1..r5: the verifier rejects reads of r1..r5 after a
// call until they are written again, which is what lets the interpreter
// and compiled code leave the physical values alone. r6..r10 survive
// calls.
//
// Every instruction lowers to a fixed nfir shape with a fixed cost, so
// cost parity with the compiled program holds by construction:
//
//	mov           → Assign (free)
//	alu op        → Assign of a Bin (1 instruction of the op's class)
//	ldpkt         → Assign of a PktLoad (1 instruction + 1 memory access)
//	stpkt         → PktStore (1 instruction + 1 memory access)
//	jcc           → If with a comparison condition (1 branch instruction)
//	ja            → free (control structure only)
//	call          → Call with register arguments (the helper charges itself)
//	fwd / drop    → Forward / Drop (free)
package bvm

import "fmt"

// NumRegs is the register file size (r0..r10).
const NumRegs = 11

// MaxInsts bounds program length; the verifier rejects longer programs.
const MaxInsts = 4096

// MaxCallArgs is the number of argument registers (r1..r5).
const MaxCallArgs = 5

// Op is a bytecode opcode.
type Op uint8

const (
	OpMov Op = iota // mov rd, src
	OpAdd           // add rd, src   (rd = rd op src; likewise below)
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpLsh
	OpRsh
	OpLdPkt // ldpkt rd, off, size  (big-endian packet load)
	OpStPkt // stpkt off, val, size (big-endian packet store)
	OpJa    // ja LABEL
	OpJeq   // jeq rA, src, LABEL   (conditional jumps, unsigned compares)
	OpJne
	OpJlt
	OpJle
	OpJgt
	OpJge
	OpCall // call ds.method
	OpFwd  // fwd src
	OpDrop // drop
	opEnd  // sentinel: first invalid opcode
)

var opNames = [...]string{
	OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpMod: "mod", OpAnd: "and", OpOr: "or", OpXor: "xor", OpLsh: "lsh",
	OpRsh: "rsh", OpLdPkt: "ldpkt", OpStPkt: "stpkt", OpJa: "ja",
	OpJeq: "jeq", OpJne: "jne", OpJlt: "jlt", OpJle: "jle", OpJgt: "jgt",
	OpJge: "jge", OpCall: "call", OpFwd: "fwd", OpDrop: "drop",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsALU reports whether op is a two-operand ALU instruction (not mov).
func (op Op) IsALU() bool { return op >= OpAdd && op <= OpRsh }

// IsJump reports whether op transfers control to Target.
func (op Op) IsJump() bool { return op >= OpJa && op <= OpJge }

// IsCondJump reports whether op is a conditional jump.
func (op Op) IsCondJump() bool { return op >= OpJeq && op <= OpJge }

// Operand is a register-or-immediate source operand.
type Operand struct {
	IsReg bool
	Reg   uint8
	Imm   uint64
}

// R makes a register operand.
func R(r uint8) Operand { return Operand{IsReg: true, Reg: r} }

// Imm makes an immediate operand.
func Imm(v uint64) Operand { return Operand{Imm: v} }

func (o Operand) String() string {
	if o.IsReg {
		return fmt.Sprintf("r%d", o.Reg)
	}
	if o.Imm > 255 {
		return fmt.Sprintf("0x%x", o.Imm)
	}
	return fmt.Sprintf("%d", o.Imm)
}

// Inst is one decoded instruction. Field use by opcode:
//
//	mov/alu : Reg = destination, A = source
//	ldpkt   : Reg = destination, A = packet offset, Size
//	stpkt   : A = packet offset (immediate only), B = value, Size
//	jcc     : Reg = left operand, A = right operand, Target
//	ja      : Target
//	call    : DS, Method
//	fwd     : A = output port
type Inst struct {
	Op     Op
	Reg    uint8
	A      Operand
	B      Operand
	Size   int
	Target int
	DS     string
	Method string
	// Line is the 1-based source line, for diagnostics; zero when the
	// instruction was built programmatically.
	Line int
}

// DSKind enumerates the data-structure kinds a program can declare.
type DSKind uint8

const (
	KindFlowTable DSKind = iota // dslib.FlowTable: expire/get/peek/put
	KindLPM                     // dslib.Dir248: get
	KindRules                   // dslib.RuleSet: match
)

func (k DSKind) String() string {
	switch k {
	case KindFlowTable:
		return "flowtable"
	case KindLPM:
		return "lpm"
	case KindRules:
		return "rules"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// RouteDecl is one .route line of an lpm declaration.
type RouteDecl struct {
	Prefix uint32
	Length int
	Port   uint16
}

// RuleDecl is one .rule line of a rules declaration.
type RuleDecl struct {
	SrcMask, SrcVal uint64
	DstMask, DstVal uint64
	ProtoVal        uint64
	Action          uint64
}

// DSDecl is one declared data-structure instance (.ds directive).
type DSDecl struct {
	Name string
	Kind DSKind

	// Flowtable configuration.
	Keys          int
	Capacity      int
	TimeoutNS     uint64
	GranularityNS uint64

	// LPM configuration.
	DefaultPort uint64
	MaxGroups   int
	Routes      []RouteDecl

	// Rules configuration.
	DefaultAction uint64
	Rules         []RuleDecl
}

// Sig is one helper method's calling convention: Args values are taken
// from r1..rArgs, the first result lands in r0, the second in r1.
type Sig struct {
	Args    int
	Results int
}

// Methods returns the helper table of a declaration: every callable
// method with its signature. The flow-table arities depend on the
// declared key width.
func (d *DSDecl) Methods() map[string]Sig {
	switch d.Kind {
	case KindFlowTable:
		k := d.Keys
		return map[string]Sig{
			"expire": {Args: 1, Results: 1},     // (now) → expired-count
			"get":    {Args: k + 1, Results: 2}, // (key..., now) → value, found
			"peek":   {Args: k, Results: 2},     // (key...) → value, found
			"put":    {Args: k + 2, Results: 1}, // (key..., value, now) → status
		}
	case KindLPM:
		return map[string]Sig{
			"get": {Args: 1, Results: 1}, // (ip) → port
		}
	case KindRules:
		return map[string]Sig{
			"match": {Args: 5, Results: 1}, // (src, dst, sport, dport, proto) → action
		}
	}
	return nil
}

// Program is one assembled bytecode unit: header, data-structure
// declarations and the instruction stream.
type Program struct {
	Name  string
	Ports uint64
	DS    []DSDecl
	Insts []Inst
}

// Decl returns the declaration named name, or nil.
func (p *Program) Decl(name string) *DSDecl {
	for i := range p.DS {
		if p.DS[i].Name == name {
			return &p.DS[i]
		}
	}
	return nil
}

func regName(r uint8) string { return fmt.Sprintf("r%d", r) }
