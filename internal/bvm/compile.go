package bvm

import (
	"fmt"

	"gobolt/internal/nfir"
	"gobolt/internal/symb"
)

// Compile lowers a program to nfir by walking its control-flow graph
// with the verifier's interval tracking and unrolling it into an
// If-tree: every dynamic instruction sequence of the bytecode becomes a
// straight-line arm of nested Ifs, so the compiled program executes —
// and is charged — exactly the instructions the interpreter executes.
// Bounded loops disappear into repetition; branches the intervals
// decide keep their comparison (it is executed and charged either way)
// but get a Drop placeholder on the provably-dead arm, which concrete
// execution never enters and symbolic execution either const-folds away
// (ground conditions) or prunes as infeasible.
//
// source becomes the program's provenance (nfir.Program.Source), part
// of its printed identity and therefore its contract cache key.
//
// Compile verifies first; it cannot fail on a program Verify accepts.
func Compile(p *Program, source string) (*nfir.Program, error) {
	if err := verifyStructure(p); err != nil {
		return nil, err
	}
	body, err := newWalker(p).run()
	if err != nil {
		return nil, err
	}
	// ABI prologue: r1 = arrival port, r2 = packet length, r3 = now.
	// All three are free in every engine (plain environment reads).
	prologue := []nfir.Stmt{
		nfir.Set("r1", nfir.InPort{}),
		nfir.Set("r2", nfir.PktLen{}),
		nfir.Set("r3", nfir.Now{}),
	}
	prog := &nfir.Program{
		Name:     p.Name,
		NumPorts: p.Ports,
		Body:     append(prologue, body...),
		Source:   source,
	}
	// Defense in depth: the compiled shape must satisfy the hardened
	// nfir validator (arity, result binding, constant port range).
	if errs := prog.ValidateWithSigs(p.NFIRSigs()); len(errs) > 0 {
		return nil, fmt.Errorf("bvm: %s: compiled program failed nfir validation: %w", p.Name, errs[0])
	}
	return prog, nil
}

// NFIRSigs exports the declared helper table in the form
// nfir.ValidateWithSigs consumes.
func (p *Program) NFIRSigs() map[string]map[string]nfir.DSSig {
	out := make(map[string]map[string]nfir.DSSig, len(p.DS))
	for i := range p.DS {
		d := &p.DS[i]
		ms := make(map[string]nfir.DSSig)
		for name, sig := range d.Methods() {
			ms[name] = nfir.DSSig{Args: sig.Args, Results: sig.Results}
		}
		out[d.Name] = ms
	}
	return out
}

var aluSymbOp = map[Op]symb.Op{
	OpAdd: symb.Add, OpSub: symb.Sub, OpMul: symb.Mul, OpDiv: symb.Div,
	OpMod: symb.Mod, OpAnd: symb.And, OpOr: symb.Or, OpXor: symb.Xor,
	OpLsh: symb.Shl, OpRsh: symb.Shr,
}

var cmpSymbOp = map[Op]symb.Op{
	OpJeq: symb.Eq, OpJne: symb.Ne, OpJlt: symb.Ult,
	OpJle: symb.Ule, OpJgt: symb.Ugt, OpJge: symb.Uge,
}

// regState is the abstract register file at one walk point.
type regState [NumRegs]ival

// walker unrolls the bytecode CFG, simultaneously checking the
// flow-sensitive safety properties and emitting the nfir lowering. One
// budget covers the whole tree, so the walker itself always terminates:
// a loop the trip proof missed (e.g. a counter advanced on only one
// body path) exhausts the budget and is rejected as too complex.
type walker struct {
	p      *Program
	budget int
}

func newWalker(p *Program) *walker { return &walker{p: p, budget: walkBudget} }

func (w *walker) run() ([]nfir.Stmt, error) {
	var regs regState
	regs[1] = ival{init: true, lo: 0, hi: w.p.Ports - 1}
	regs[2] = ival{init: true, lo: 0, hi: nfir.MaxPacket}
	regs[3] = fullIval
	return w.walk(0, regs)
}

// operand resolves a source operand to its interval and nfir expression,
// rejecting reads of uninitialized registers.
func (w *walker) operand(pc int, o Operand, regs *regState) (ival, nfir.Expr, error) {
	if o.IsReg {
		v := regs[o.Reg]
		if !v.init {
			return ival{}, nil, instErr(w.p, pc, "read of uninitialized register r%d", o.Reg)
		}
		return v, nfir.L(regName(o.Reg)), nil
	}
	return exact(o.Imm), nfir.C(o.Imm), nil
}

func (w *walker) walk(pc int, regs regState) ([]nfir.Stmt, error) {
	var out []nfir.Stmt
	for {
		if pc >= len(w.p.Insts) {
			return nil, fmt.Errorf("bvm: %s: control falls off the end of the program", w.p.Name)
		}
		w.budget--
		if w.budget < 0 {
			return nil, fmt.Errorf("bvm: %s: program too complex: unrolled walk exceeds %d nodes", w.p.Name, walkBudget)
		}
		in := &w.p.Insts[pc]
		rd := regName(in.Reg)
		switch {
		case in.Op == OpMov:
			v, e, err := w.operand(pc, in.A, &regs)
			if err != nil {
				return nil, err
			}
			regs[in.Reg] = v
			out = append(out, nfir.Set(rd, e))
			pc++

		case in.Op.IsALU():
			d := regs[in.Reg]
			if !d.init {
				return nil, instErr(w.p, pc, "read of uninitialized register r%d", in.Reg)
			}
			s, e, err := w.operand(pc, in.A, &regs)
			if err != nil {
				return nil, err
			}
			if (in.Op == OpDiv || in.Op == OpMod) && s.lo == 0 {
				return nil, instErr(w.p, pc, "possible division by zero (divisor interval contains 0)")
			}
			regs[in.Reg] = aluIval(in.Op, d, s)
			out = append(out, nfir.Set(rd, nfir.Bin{Op: aluSymbOp[in.Op], L: nfir.L(rd), R: e}))
			pc++

		case in.Op == OpLdPkt:
			off, e, err := w.operand(pc, in.A, &regs)
			if err != nil {
				return nil, err
			}
			if off.hi > nfir.MaxPacket-uint64(in.Size) {
				return nil, instErr(w.p, pc, "packet load at offset [%d..%d]+%d may exceed MaxPacket (%d)",
					off.lo, off.hi, in.Size, nfir.MaxPacket)
			}
			regs[in.Reg] = ival{init: true, lo: 0, hi: sizeMax(in.Size)}
			out = append(out, nfir.Set(rd, nfir.PktLoad{Off: e, Size: in.Size}))
			pc++

		case in.Op == OpStPkt:
			if in.A.Imm > nfir.MaxPacket-uint64(in.Size) {
				return nil, instErr(w.p, pc, "packet store at offset %d+%d exceeds MaxPacket (%d)",
					in.A.Imm, in.Size, nfir.MaxPacket)
			}
			_, val, err := w.operand(pc, in.B, &regs)
			if err != nil {
				return nil, err
			}
			out = append(out, nfir.PktStore{Off: nfir.C(in.A.Imm), Size: in.Size, Val: val})
			pc++

		case in.Op == OpJa:
			pc = in.Target

		case in.Op.IsCondJump():
			a := regs[in.Reg]
			if !a.init {
				return nil, instErr(w.p, pc, "read of uninitialized register r%d", in.Reg)
			}
			b, be, err := w.operand(pc, in.A, &regs)
			if err != nil {
				return nil, err
			}
			cond := nfir.Bin{Op: cmpSymbOp[in.Op], L: nfir.L(rd), R: be}
			if decided, taken := decideCmp(in.Op, a, b); decided {
				// The comparison still executes (and is charged) at
				// runtime; only the dead arm is pruned from the walk.
				live, err := w.walk(liveTarget(pc, in.Target, taken), regs)
				if err != nil {
					return nil, err
				}
				dead := []nfir.Stmt{nfir.Drop()}
				if taken {
					return append(out, nfir.IfElse(cond, live, dead)), nil
				}
				return append(out, nfir.IfElse(cond, dead, live)), nil
			}
			takenRegs, fallRegs := regs, regs
			if b.singleton() {
				takenRegs[in.Reg] = refineCmp(in.Op, a, b.lo, true)
				fallRegs[in.Reg] = refineCmp(in.Op, a, b.lo, false)
			}
			then, err := w.walk(in.Target, takenRegs)
			if err != nil {
				return nil, err
			}
			els, err := w.walk(pc+1, fallRegs)
			if err != nil {
				return nil, err
			}
			return append(out, nfir.IfElse(cond, then, els)), nil

		case in.Op == OpCall:
			d := w.p.Decl(in.DS)
			sig := d.Methods()[in.Method]
			args := make([]nfir.Expr, sig.Args)
			for i := 0; i < sig.Args; i++ {
				r := uint8(i + 1)
				if !regs[r].init {
					return nil, instErr(w.p, pc, "call %s.%s needs %d args in r1..r%d, but r%d is not initialized",
						in.DS, in.Method, sig.Args, sig.Args, r)
				}
				args[i] = nfir.L(regName(r))
			}
			dsts := []string{"r0"}
			if sig.Results > 1 {
				dsts = append(dsts, "r1")
			}
			// Helper ABI: r1..r5 are clobbered (reads rejected until
			// rewritten), results land in r0 (and r1).
			for r := 1; r <= MaxCallArgs; r++ {
				regs[r] = ival{}
			}
			regs[0] = fullIval
			if sig.Results > 1 {
				regs[1] = fullIval
			}
			out = append(out, nfir.Invoke(in.DS, in.Method, args, dsts...))
			pc++

		case in.Op == OpFwd:
			_, e, err := w.operand(pc, in.A, &regs)
			if err != nil {
				return nil, err
			}
			return append(out, nfir.Fwd(e)), nil

		case in.Op == OpDrop:
			return append(out, nfir.Drop()), nil

		default:
			return nil, instErr(w.p, pc, "invalid opcode %d", uint8(in.Op))
		}
	}
}

func liveTarget(pc, target int, taken bool) int {
	if taken {
		return target
	}
	return pc + 1
}

func sizeMax(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return 1<<(8*size) - 1
}
