package bvm

import (
	"maps"
	"testing"

	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

// equivNF holds one bytecode program instantiated twice with identical
// state: one copy driven by the interpreter, one by nfir's concrete
// execution of the compiled program. Feeding both the same packet
// sequence pins the compiler: actions, instruction counts, memory
// accesses, PCV observations and data-structure evolution must agree
// packet-for-packet.
type equivNF struct {
	unit       *Unit
	envI, envC *nfir.Env
	mI, mC     *perf.Meter
}

func newEquivNF(t testing.TB, unit *Unit) *equivNF {
	t.Helper()
	e := &equivNF{unit: unit, envI: nfir.NewEnv(), envC: nfir.NewEnv()}
	if _, err := unit.Instantiate(e.envI); err != nil {
		t.Fatalf("instantiate interpreter env: %v", err)
	}
	if _, err := unit.Instantiate(e.envC); err != nil {
		t.Fatalf("instantiate compiled env: %v", err)
	}
	e.mI, e.mC = perf.NewMeter(nil), perf.NewMeter(nil)
	e.envI.Meter, e.envC.Meter = e.mI, e.mC
	return e
}

// step runs one packet through both engines and cross-checks them.
func (e *equivNF) step(t testing.TB, pkt []byte, port, now uint64) {
	t.Helper()

	e.envI.ResetPacket(pkt, port, now)
	beforeI := e.mI.Snapshot()
	actI, errI := Run(e.unit.BC, e.envI)
	deltaI := e.mI.Since(beforeI)
	pcvI := maps.Clone(e.envI.PCVs())

	e.envC.ResetPacket(pkt, port, now)
	beforeC := e.mC.Snapshot()
	actC, errC := e.envC.Run(e.unit.Prog)
	deltaC := e.mC.Since(beforeC)

	if (errI == nil) != (errC == nil) {
		t.Fatalf("%s: error divergence: interp=%v compiled=%v", e.unit.BC.Name, errI, errC)
	}
	if errI != nil {
		return
	}
	if actI != actC {
		t.Fatalf("%s: action divergence: interp=%+v compiled=%+v", e.unit.BC.Name, actI, actC)
	}
	if deltaI != deltaC {
		t.Fatalf("%s: cost divergence: interp=%+v compiled=%+v", e.unit.BC.Name, deltaI, deltaC)
	}
	if !maps.Equal(pcvI, e.envC.PCVs()) {
		t.Fatalf("%s: PCV divergence: interp=%v compiled=%v", e.unit.BC.Name, pcvI, e.envC.PCVs())
	}
	// Mutated packet bytes (e.g. decap's TTL decrement) must agree too.
	if string(e.envI.Pkt) != string(e.envC.Pkt) {
		t.Fatalf("%s: packet mutation divergence", e.unit.BC.Name)
	}
}

// loopSrc exercises the part of the lowering the shipped programs do
// not: a bounded loop (unrolled by the compiler, iterated by the
// interpreter) with register-offset packet loads inside the body.
const loopSrc = `
.name fuzz-loop
.ports 2
  mov r6, 0
  mov r7, 0
loop:
  ldpkt r4, r6, 1
  add r7, r4
  add r6, 1
  jlt r6, 12, loop
  and r7, 1
  jeq r7, 0, even
  drop
even:
  fwd 1
`

// fuzzUnits loads the programs the compiler fuzz target pins: every
// shipped NF plus the loop program.
func fuzzUnits(t testing.TB) []*Unit {
	t.Helper()
	var units []*Unit
	for _, sh := range shippedSources(t) {
		u, err := Load(sh.Src, Options{Source: "bvm:" + sh.File})
		if err != nil {
			t.Fatalf("%s: %v", sh.File, err)
		}
		units = append(units, u)
	}
	u, err := Load(loopSrc, Options{Source: "bvm:fuzz-loop"})
	if err != nil {
		t.Fatalf("loop program: %v", err)
	}
	return append(units, u)
}

// FuzzBVMCompiler is the differential oracle required by the frontend's
// soundness story: arbitrary packet sequences (fuzzer-chosen bytes,
// ports and inter-arrival gaps) through interpreter and compiled nfir
// must be indistinguishable — same actions, same metered cost, same
// PCVs, same state evolution across packets.
func FuzzBVMCompiler(f *testing.F) {
	units := fuzzUnits(f)
	// A plausible UDP frame and some degenerate shapes.
	f.Add([]byte{
		2, 0, 0, 0, 0, 2, 2, 0, 0, 0, 0, 1, 0x08, 0x00,
		0x45, 0, 0, 46, 0, 0, 0, 0, 64, 17, 0, 0,
		10, 1, 2, 3, 192, 168, 9, 9,
		0x12, 0x34, 0x00, 0x35, 0, 26, 0, 0,
	}, uint64(1000))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0x08, 0x00, 0x45}, uint64(1<<40))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		for _, unit := range units {
			e := newEquivNF(t, unit)
			now := 1_000 + seed%(1<<40)
			rest := data
			for len(rest) > 0 {
				n := 14 + int(rest[0])%100
				if n > len(rest) {
					n = len(rest)
				}
				pkt := rest[:n]
				rest = rest[n:]
				port := uint64(pkt[0]) % unit.BC.Ports
				e.step(t, pkt, port, now)
				now += 1 + (seed^uint64(len(rest)))%1_000_000
			}
		}
	})
}

// TestEquivalenceLoop drives the loop program over packets whose bytes
// hit both parity arms, including packets shorter than the loop's read
// window (reads past PktLen see zeros in both engines).
func TestEquivalenceLoop(t *testing.T) {
	unit, err := Load(loopSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := newEquivNF(t, unit)
	pkts := [][]byte{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14},
		{1},
		{},
		{255, 255, 255},
		{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1},
	}
	for i, pkt := range pkts {
		e.step(t, pkt, uint64(i)%2, uint64(1000+i))
	}
}
