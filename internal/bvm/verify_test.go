package bvm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMalformedCorpus runs the golden corpus under testdata/malformed:
// each program's first line declares the diagnostic the verifier must
// produce ("; expect: <substring>"). Every entry must assemble (the
// defects are semantic, not syntactic), then be rejected by Verify with
// that diagnostic — never a panic — and Compile must refuse it too.
func TestMalformedCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "malformed", "*.bvm"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no malformed corpus found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			first, _, _ := strings.Cut(string(src), "\n")
			want := strings.TrimSpace(strings.TrimPrefix(first, "; expect:"))
			if want == first || want == "" {
				t.Fatalf("%s: first line must be \"; expect: <diagnostic>\"", path)
			}
			p, err := Assemble(string(src))
			if err != nil {
				t.Fatalf("corpus entry failed to assemble (defects must be semantic): %v", err)
			}
			verr := Verify(p)
			if verr == nil {
				t.Fatalf("Verify accepted the program, want diagnostic containing %q", want)
			}
			if !strings.Contains(verr.Error(), want) {
				t.Errorf("Verify() = %q, want substring %q", verr, want)
			}
			if _, cerr := Compile(p, ""); cerr == nil {
				t.Errorf("Compile accepted a program Verify rejects")
			}
		})
	}
}

// TestVerifyAcceptsBoundedLoop pins the positive side of the loop rule:
// a bottom-tested counter loop within the trip bound verifies, and its
// compiled form unrolls (no loop constructs survive into nfir).
func TestVerifyAcceptsBoundedLoop(t *testing.T) {
	src := `
.name ok-loop
.ports 2
  mov r6, 0
  mov r7, 0
loop:
  add r7, 2
  add r6, 1
  jlt r6, 16, loop
  fwd 1
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p); err != nil {
		t.Fatalf("bounded loop rejected: %v", err)
	}
	prog, err := Compile(p, "")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if s := prog.String(); strings.Contains(s, "while") {
		t.Errorf("compiled nfir still contains loop constructs:\n%s", s)
	}
	// 16 iterations of "add r7, 2" must appear unrolled in the body.
	if n := strings.Count(prog.String(), "r7 = (r7 + 2)"); n != 16 {
		t.Errorf("expected the loop body unrolled 16 times, found %d copies", n)
	}
}

// FuzzVerifier feeds arbitrary text through the whole loader: the
// assembler and verifier may reject, but must never panic, and any
// program that passes Verify must compile and self-validate.
func FuzzVerifier(f *testing.F) {
	f.Add(".name x\n.ports 2\n drop\n")
	f.Add(".name x\n.ports 2\n mov r6, 0\nloop:\n add r6, 1\n jlt r6, 8, loop\n fwd 1\n")
	f.Add(".name x\n.ports 4\n.ds t flowtable keys=2\n mov r1, 1\n mov r2, 2\n mov r3, r3\n call t.get\n fwd r0\n")
	f.Add(".name x\n.ports 2\n.ds t lpm default=1 groups=8\n.route t 0x0A000000/8 0\n ldpkt r1, 30, 4\n call t.get\n fwd r0\n")
	f.Add(".name x\n.ports 2\n ldpkt r4, 1512, 4\n drop\n")
	f.Add("garbage ; not a program")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		if err := Verify(p); err != nil {
			return
		}
		// Verified programs must lower cleanly.
		if _, err := Compile(p, "fuzz"); err != nil {
			t.Fatalf("verified program failed to compile: %v\n%s", err, src)
		}
	})
}
