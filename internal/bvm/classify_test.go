package bvm

import (
	"encoding/binary"
	"testing"

	"gobolt/internal/core"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/traffic"
)

// ipipFrame builds an Ethernet/IPv4-in-IPv4 frame for bvm-decap: the
// outer header carries proto and outerDst, the inner header (at offset
// 34) carries ttl and innerDst.
func ipipFrame(outerDst uint32, proto byte, innerDst uint32, ttl byte) []byte {
	b := make([]byte, 64)
	b[12], b[13] = 0x08, 0x00
	b[14] = 0x45 // outer IPv4, no options
	b[22] = 64   // outer TTL
	b[23] = proto
	binary.BigEndian.PutUint32(b[30:], outerDst)
	b[34] = 0x45 // inner IPv4
	b[42] = ttl
	binary.BigEndian.PutUint32(b[50:], innerDst)
	return b
}

// swapIPs returns a copy of an IPv4 frame with source and destination
// addresses exchanged — the reply direction for bvm-acl.
func swapIPs(pkt []byte) []byte {
	out := append([]byte(nil), pkt...)
	copy(out[26:30], pkt[30:34])
	copy(out[30:34], pkt[26:30])
	return out
}

const tunnelEndpoint = 0x0A636363 // 10.99.99.99

// workloadFor builds a packet sequence that exercises every reachable
// branch of a shipped NF: accepted and rejected traffic, hits and
// misses, expiry windows and (for scrub) threshold crossings.
func workloadFor(t testing.TB, name string) []traffic.Packet {
	switch name {
	case "bvm-ratelimit":
		pkts := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: 300, Flows: 8, NewFlowEvery: 16,
			StartNS: 1_000, GapNS: 1_000, Seed: 7,
		})
		// Non-IP frames take the header-check drop path.
		pkts = append(pkts, traffic.Packet{Data: make([]byte, 60), Time: 999_000, InPort: 1})
		return pkts
	case "bvm-acl":
		inside := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: 200, Flows: 8, StartNS: 1_000, GapNS: 1_000, Seed: 11,
		})
		var pkts []traffic.Packet
		for i, p := range inside {
			pkts = append(pkts, p) // port 0: rule match + pinhole insert
			if i%3 == 0 {          // port 1: reply hitting the pinhole
				pkts = append(pkts, traffic.Packet{Data: swapIPs(p.Data), Time: p.Time + 500, InPort: 1})
			}
			if i%7 == 0 { // port 1: unsolicited packet missing the table
				pkts = append(pkts, traffic.Packet{Data: p.Data, Time: p.Time + 600, InPort: 1})
			}
		}
		// Outside the accepted 10/8 range: rule-scan deny.
		denied := append([]byte(nil), inside[0].Data...)
		denied[26] = 172
		pkts = append(pkts, traffic.Packet{Data: denied, Time: 900_000, InPort: 0})
		return pkts
	case "bvm-decap":
		var pkts []traffic.Packet
		innerDsts := []uint32{0x0A010101, 0xC0A80505, 0xAC10FF01, 0x08080808}
		now := uint64(1_000)
		for i := 0; i < 40; i++ {
			ttl := byte(1 + i%4) // includes TTL 1 (expired-in-tunnel drop)
			pkts = append(pkts, traffic.Packet{
				Data: ipipFrame(tunnelEndpoint, 4, innerDsts[i%len(innerDsts)], ttl),
				Time: now, InPort: uint64(i % 4),
			})
			now += 1_000
		}
		// Not for the endpoint; not IPIP; not IPv4 at all.
		pkts = append(pkts,
			traffic.Packet{Data: ipipFrame(0x0A636364, 4, 0x0A010101, 9), Time: now, InPort: 0},
			traffic.Packet{Data: ipipFrame(tunnelEndpoint, 17, 0x0A010101, 9), Time: now + 1, InPort: 1},
			traffic.Packet{Data: make([]byte, 60), Time: now + 2, InPort: 2},
		)
		return pkts
	case "bvm-scrub":
		// A tiny flow population over a one-second window: heavy sources
		// cross the 64-packet threshold and get scrubbed; a quiet gap
		// afterwards lets expiry evict them and unblock.
		pkts := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: 400, Flows: 3, StartNS: 1_000, GapNS: 2_000_000, Seed: 3,
		})
		late := traffic.UDPFlows(traffic.UDPFlowConfig{
			Packets: 40, Flows: 3, StartNS: 5_000_000_000, GapNS: 2_000_000, Seed: 3,
		})
		return append(pkts, late...)
	default:
		t.Fatalf("no workload for %q", name)
		return nil
	}
}

// TestContractsClassifyInterpreterTraces is the end-to-end acceptance
// gate for the frontend: generate each shipped program's contract from
// its compiled nfir, then run the *interpreter* over a workload that
// visits every reachable branch and require the classifier to place
// every packet on a contract path — zero UNCLASSIFIED.
func TestContractsClassifyInterpreterTraces(t *testing.T) {
	for _, unit := range fuzzUnits(t) {
		if unit.BC.Name == "fuzz-loop" {
			continue
		}
		unit := unit
		t.Run(unit.BC.Name, func(t *testing.T) {
			env := nfir.NewEnv()
			models, err := unit.Instantiate(env)
			if err != nil {
				t.Fatal(err)
			}
			ct, err := core.NewGenerator().Generate(unit.Prog, models)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			cl, err := core.NewClassifier(ct)
			if err != nil {
				t.Fatalf("classifier: %v", err)
			}
			var log core.CallLog
			core.AttachCallLog(env, &log)
			env.Meter = perf.NewMeter(nil)

			classified := map[int]int{}
			pktBuf := make([]byte, nfir.MaxPacket)
			for i, p := range workloadFor(t, unit.BC.Name) {
				env.ResetPacket(p.Data, p.InPort, p.Time)
				log.Reset()
				act, err := Run(unit.BC, env)
				if err != nil {
					t.Fatalf("packet %d: interpreter: %v", i, err)
				}
				// Classify against the pre-run bytes: the program may
				// mutate the packet (decap rewrites the inner TTL).
				copy(pktBuf, p.Data)
				for j := len(p.Data); j < len(pktBuf); j++ {
					pktBuf[j] = 0
				}
				obs := &core.PacketObservation{
					Pkt: pktBuf, InPort: p.InPort, Time: p.Time,
					PktLen: uint64(len(p.Data)), Action: act.Kind, Calls: log.Records(),
				}
				pc, ok := cl.Classify(obs)
				if !ok {
					t.Fatalf("packet %d UNCLASSIFIED (action=%v calls=%s)", i, act.Kind, core.CallSig(log.Records()))
				}
				classified[pc.ID]++
			}
			if len(classified) < 2 {
				t.Errorf("workload only exercised %d contract path(s); want branch coverage", len(classified))
			}
			t.Logf("%s: %d paths in contract, %d visited", unit.BC.Name, len(ct.Paths), len(classified))
		})
	}
}

// TestEquivalenceShipped drives the differential oracle over the same
// realistic workloads deterministically (the fuzz target's seed corpus
// can't promise stateful coverage; this can).
func TestEquivalenceShipped(t *testing.T) {
	for _, unit := range fuzzUnits(t) {
		if unit.BC.Name == "fuzz-loop" {
			continue
		}
		unit := unit
		t.Run(unit.BC.Name, func(t *testing.T) {
			e := newEquivNF(t, unit)
			for _, p := range workloadFor(t, unit.BC.Name) {
				e.step(t, p.Data, p.InPort, p.Time)
			}
		})
	}
}
