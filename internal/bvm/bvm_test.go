package bvm

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// shippedSources returns the .bvm programs shipped in the roster
// (internal/nf/bvmdata), keyed by filename, in sorted order.
func shippedSources(t testing.TB) []struct{ File, Src string } {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "nf", "bvmdata", "*.bvm"))
	if err != nil {
		t.Fatalf("glob bvmdata: %v", err)
	}
	if len(paths) < 4 {
		t.Fatalf("expected at least 4 shipped .bvm programs, found %d", len(paths))
	}
	sort.Strings(paths)
	out := make([]struct{ File, Src string }, 0, len(paths))
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		out = append(out, struct{ File, Src string }{filepath.Base(p), string(src)})
	}
	return out
}

// TestShippedProgramsLoad is the smoke test for the whole frontend: every
// shipped program must assemble, verify, and compile to nfir that passes
// the signature-aware validator.
func TestShippedProgramsLoad(t *testing.T) {
	seen := map[string]bool{}
	for _, sh := range shippedSources(t) {
		u, err := Load(sh.Src, Options{Source: "bvm:" + sh.File})
		if err != nil {
			t.Fatalf("%s: %v", sh.File, err)
		}
		if u.Prog.Source != "bvm:"+sh.File {
			t.Errorf("%s: provenance = %q", sh.File, u.Prog.Source)
		}
		if seen[u.BC.Name] {
			t.Errorf("%s: duplicate program name %q", sh.File, u.BC.Name)
		}
		seen[u.BC.Name] = true
	}
	for _, want := range []string{"bvm-ratelimit", "bvm-acl", "bvm-decap", "bvm-scrub"} {
		if !seen[want] {
			t.Errorf("shipped set is missing %q", want)
		}
	}
}
