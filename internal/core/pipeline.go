package core

import (
	"context"
	"fmt"

	"gobolt/internal/dpdk"
	"gobolt/internal/expr"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nfir"
	"gobolt/internal/par"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// This file is the generation pipeline. Algorithm 2 runs as five named
// stages:
//
//	Explore     — symbolic execution enumerates the feasible paths
//	              (serial: the engine's state is inherently sequential)
//	AnalysePath — per path, assemble the cost polynomial from the
//	              stateless trace, the data-structure contracts the
//	              path's outcomes select, and the analysis-build padding
//	Solve       — per path, find a concrete witness for the constraints
//	Replay      — per path, execute the witness through the model-linked
//	              build and check it matches the symbolic analysis
//	Assemble    — collect the per-path contracts, in exploration order,
//	              into the Contract
//
// AnalysePath, Solve and Replay are independent across paths, so they
// run on a bounded worker pool (Generator.Parallelism). Results land in
// a slice indexed by exploration order and witness search is
// deterministic per path, which keeps the assembled contract
// byte-identical to a serial run at any pool width.

// GenerateWithPathsContext runs the full pipeline with cancellation.
// It is the ground-truth entry point every other Generate variant wraps.
func (g *Generator) GenerateWithPathsContext(ctx context.Context, prog *nfir.Program, models map[string]nfir.Model) (*Contract, []*nfir.Path, error) {
	modelNames := make(map[string]bool, len(models))
	for n := range models {
		modelNames[n] = true
	}
	if errs := prog.Validate(modelNames); len(errs) > 0 {
		return nil, nil, fmt.Errorf("core: %s fails validation: %v", prog.Name, errs[0])
	}

	key, cacheable := g.cacheKey(prog, models)
	if cacheable {
		if ct, paths, ok := g.Cache.lookup(key); ok {
			return ct, paths, nil
		}
	}

	paths, err := g.explorePaths(ctx, prog, models)
	if err != nil {
		return nil, nil, err
	}

	pcs := make([]*PathContract, len(paths))
	err = par.ForEach(ctx, g.workers(), len(paths), func(i int) error {
		pc, err := g.analysePath(ctx, prog, models, paths[i])
		if err != nil {
			return fmt.Errorf("core: %s path %d: %w", prog.Name, paths[i].ID, err)
		}
		pcs[i] = pc
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("core: generating %s: %w", prog.Name, err)
	}

	ct := g.assembleContract(prog, pcs)
	if cacheable {
		g.Cache.store(key, ct, paths)
	}
	return ct, paths, nil
}

// explorePaths is the Explore stage: symbolic execution of the stateless
// code against the models (Algorithm 2, lines 2–3).
func (g *Generator) explorePaths(ctx context.Context, prog *nfir.Program, models map[string]nfir.Model) ([]*nfir.Path, error) {
	engine := &nfir.Engine{
		Models:        models,
		MaxPaths:      g.MaxPaths,
		Feasibility:   g.feasibilitySolver(),
		NoIncremental: g.NoIncremental,
	}
	paths, err := engine.ExploreContext(ctx, prog)
	if err != nil {
		return nil, fmt.Errorf("core: symbolic execution of %s: %w", prog.Name, err)
	}
	return paths, nil
}

// analysePath runs the per-path stages in order: sharability
// classification, AnalysePath (cost assembly), Solve, and Replay.
// Each path's Events slice is private to the path (exploration clones
// it per branch), so annotating in parallel workers is race-free.
func (g *Generator) analysePath(ctx context.Context, prog *nfir.Program, models map[string]nfir.Model, pa *nfir.Path) (*PathContract, error) {
	g.annotateSharing(pa, models)
	pc := g.assembleCost(pa)
	if err := g.solvePath(ctx, prog, pa, pc); err != nil {
		return nil, err
	}
	return pc, nil
}

// assembleCost is the AnalysePath stage: the path's cost polynomial from
// its stateless trace plus the data-structure contracts its outcomes
// select (Algorithm 2 line 11) plus the per-call analysis-build padding,
// and the framework costs at full-stack level.
func (g *Generator) assembleCost(pa *nfir.Path) *PathContract {
	cost := map[perf.Metric]expr.Poly{
		perf.Instructions: expr.Const(pa.StatelessIC),
		perf.MemAccesses:  expr.Const(pa.StatelessMA),
		perf.Cycles:       expr.Const(g.statelessCycles(pa)),
	}
	pcvs := make(map[string]expr.Range, len(pa.PCVRanges))
	for v, r := range pa.PCVRanges {
		pcvs[v] = r
	}
	padCycles := uint64(float64(g.CallPadIC)*hwmodel.WorstALU) +
		uint64(float64(g.CallPadMA)*hwmodel.CyclesPerMemDRAM)
	sharedMA := expr.Const(0)
	for _, ev := range pa.Events {
		for m, p := range ev.Outcome.Cost {
			cost[m] = cost[m].Add(p)
		}
		cost[perf.Instructions] = cost[perf.Instructions].Add(expr.Const(g.CallPadIC))
		cost[perf.MemAccesses] = cost[perf.MemAccesses].Add(expr.Const(g.CallPadMA))
		cost[perf.Cycles] = cost[perf.Cycles].Add(expr.Const(padCycles))
		// Calls that touch mutable cross-flow state contribute their whole
		// MA polynomial (plus the call pad, whose access could land in the
		// structure) to the path's shared-MA bound.
		if ev.Sharing.Class == nfir.SharingSharedRW || ev.Sharing.Class == nfir.SharingUnknown {
			sharedMA = sharedMA.Add(ev.Outcome.Cost[perf.MemAccesses]).Add(expr.Const(g.CallPadMA))
		}
	}
	// Framework costs at full-stack level: RX on every path, TX or drop
	// by terminal action (§3.5, "Including DPDK and NIC driver code").
	if g.Level == dpdk.FullStack {
		for m, p := range dpdk.RxCost() {
			cost[m] = cost[m].Add(p)
		}
		tail := dpdk.DropCost()
		if pa.Action == nfir.ActionForward {
			tail = dpdk.TxCost()
		}
		for m, p := range tail {
			cost[m] = cost[m].Add(p)
		}
	}
	return &PathContract{
		Action:        pa.Action,
		Constraints:   pa.Constraints,
		Domains:       pa.Domains,
		Events:        pa.EventSummary(),
		Trace:         pa.Events,
		Cost:          cost,
		PCVRanges:     pcvs,
		SharedMA:      sharedMA,
		ShardAnalysed: true,
	}
}

// solvePath is the Solve stage (Algorithm 2 line 6) followed, on Sat, by
// the Replay stage: concrete inputs for the path, validated through the
// model-linked build. The witness search is deterministic per path (the
// solver's sampling is seeded by symbol name), so the outcome does not
// depend on which worker runs it.
func (g *Generator) solvePath(ctx context.Context, prog *nfir.Program, pa *nfir.Path, pc *PathContract) error {
	var witness map[string]uint64
	var res symb.Result
	if pa.Session != nil {
		// Reuse the prepared solver state exploration accumulated for
		// this path (flattening, union-find, propagation already done);
		// verdict and witness are identical to the from-scratch solve.
		witness, res = pa.Session.SolveContext(ctx, g.solver())
		pa.Session = nil // solved: release the session (and keep it out of the contract cache)
	} else {
		witness, res = g.solver().SolveContext(ctx, pa.Constraints, pa.Domains)
	}
	if res != symb.Sat {
		// A cancelled solve reports Unknown; surface the cancellation
		// rather than silently emitting a witness-less path the serial
		// run would have solved.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("solve interrupted: %w", err)
		}
		return nil
	}
	pc.Witness = witness
	if g.SkipReplay {
		return nil
	}
	return g.replay(prog, pa, witness)
}

// assembleContract is the Assemble stage: per-path contracts, in
// exploration order, become the Contract. IDs are assigned sequentially
// so they are stable across pool widths.
func (g *Generator) assembleContract(prog *nfir.Program, pcs []*PathContract) *Contract {
	ct := &Contract{NF: prog.Name, Level: g.Level.String(), Provenance: prog.Source, Paths: make([]*PathContract, 0, len(pcs))}
	for _, pc := range pcs {
		pc.ID = len(ct.Paths)
		ct.Paths = append(ct.Paths, pc)
	}
	return ct
}

// statelessCycles runs the path's stateless instruction mix through the
// conservative hardware model: worst-case compute costs, DRAM for every
// access not provably L1D-resident along this path.
func (g *Generator) statelessCycles(pa *nfir.Path) uint64 {
	model := hwmodel.NewConservative()
	for class, n := range pa.Ops {
		if class == perf.OpLoad || class == perf.OpStore {
			continue
		}
		model.Op(perf.Access{Class: class, Count: n})
	}
	for _, acc := range pa.Accesses {
		if !acc.Known {
			model.ChargeUnknown()
			continue
		}
		class := perf.OpLoad
		if acc.Store {
			class = perf.OpStore
		}
		model.Op(perf.Access{Class: class, Count: 1, Addr: acc.Addr, Size: acc.Size})
	}
	return model.Cycles()
}
