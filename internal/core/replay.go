package core

import (
	"fmt"

	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

// replay is the Replay stage (Algorithm 2 line 7): execute the path's
// witness through the model-linked build and check that the trace
// matches the symbolic analysis — action, stateless instruction count,
// and memory accesses. Each replay builds a private environment, so
// replays of different paths can run concurrently.
func (g *Generator) replay(prog *nfir.Program, pa *nfir.Path, witness map[string]uint64) error {
	env := nfir.NewEnv()
	env.Meter = perf.NewMeter(nil)
	pkt := make([]byte, nfir.MaxPacket)
	for name, v := range witness {
		if off, size, ok := nfir.ParseFieldSym(name); ok {
			writeBE(pkt[off:], size, v)
		}
	}
	pktLen := witness[nfir.SymPktLen]
	if pktLen == 0 || pktLen > nfir.MaxPacket {
		pktLen = nfir.MaxPacket
	}
	env.ResetPacket(pkt[:pktLen], witness[nfir.SymInPort], witness[nfir.SymNow])
	stub := &replayDS{events: pa.Events, witness: witness}
	for ds := range pathDSNames(pa) {
		env.DS[ds] = stub
	}
	act, err := env.Run(prog)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	if act.Kind != pa.Action {
		return fmt.Errorf("replay diverged: action %v, symbolic %v", act.Kind, pa.Action)
	}
	if env.Meter.Instructions() != pa.StatelessIC || env.Meter.MemAccesses() != pa.StatelessMA {
		return fmt.Errorf("replay cost mismatch: measured %d IC/%d MA, symbolic %d/%d",
			env.Meter.Instructions(), env.Meter.MemAccesses(), pa.StatelessIC, pa.StatelessMA)
	}
	return nil
}

func pathDSNames(pa *nfir.Path) map[string]bool {
	names := make(map[string]bool)
	for _, ev := range pa.Events {
		names[ev.DS] = true
	}
	return names
}

// replayDS replays the recorded model outcomes: each call returns the
// witness's values for the outcome's result symbols and charges nothing
// (the cost comes from the data-structure contract).
type replayDS struct {
	events  []nfir.CallEvent
	witness map[string]uint64
	idx     int
}

// Invoke implements nfir.ConcreteDS.
func (r *replayDS) Invoke(method string, args []uint64, env *nfir.Env) ([]uint64, error) {
	if r.idx >= len(r.events) {
		return nil, fmt.Errorf("replay: unexpected call %s (only %d events)", method, len(r.events))
	}
	ev := r.events[r.idx]
	r.idx++
	if ev.Method != method {
		return nil, fmt.Errorf("replay: call %s, recorded %s.%s", method, ev.DS, ev.Method)
	}
	out := make([]uint64, len(ev.Outcome.Results))
	for i, res := range ev.Outcome.Results {
		out[i] = res.Eval(r.witness)
	}
	return out, nil
}

func writeBE(b []byte, size int, v uint64) {
	for i := size - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}
