package core_test

import (
	"context"
	"testing"

	"gobolt/internal/core"
	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

// TestRosterSharingVerdicts pins the sharability analysis on the real
// roster NFs — the ground truth the shard-aware bounds (and shardbench's
// simulated deployment) rest on:
//
//   - the NAT's internal lookup and the LB's flow table are keyed by
//     packet 5-tuple fields that pin the flow-hash, so they are
//     shard-local under flow-hash dispatch;
//   - the NAT's reverse lookup (keyed by allocated external port), its
//     port allocator, every expiry sweep, and the LB's heartbeat stamps
//     are shared-rw;
//   - the Maglev ring reads and the bridge's MAC reads are shared-ro;
//   - the bridge's MAC table is keyed by Ethernet addresses, which do
//     NOT pin the flow-hash fields (non-IP traffic hashes over the
//     whole Ethernet header plus the ingress port), so its writes are
//     conservatively shared-rw.
func TestRosterSharingVerdicts(t *testing.T) {
	want := map[string]map[string]nfir.SharingClass{
		"nat": {
			"flows.lookup_int": nfir.SharingLocal,
			"flows.lookup_ext": nfir.SharingSharedRW,
			"flows.add":        nfir.SharingSharedRW,
			"flows.expire":     nfir.SharingSharedRW,
		},
		"lb": {
			"flows.get":       nfir.SharingLocal,
			"flows.put":       nfir.SharingLocal,
			"flows.expire":    nfir.SharingSharedRW,
			"ring.alive":      nfir.SharingSharedRO,
			"ring.pick":       nfir.SharingSharedRO,
			"ring.pick_alive": nfir.SharingSharedRO,
			"ring.heartbeat":  nfir.SharingSharedRW,
		},
		"bridge": {
			"mac.put":    nfir.SharingSharedRW,
			"mac.peek":   nfir.SharingSharedRO,
			"mac.expire": nfir.SharingSharedRW,
		},
		"lpm":      {"lpm.get": nfir.SharingSharedRO},
		"firewall": {"rules.match": nfir.SharingSharedRO},
	}

	for name, verdicts := range want {
		inst, err := nf.Build(name, nf.BuildParams{})
		if err != nil {
			t.Fatal(err)
		}
		g := core.NewGenerator()
		ct, _, err := g.GenerateWithPathsContext(context.Background(), inst.Prog, inst.Models)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seen := map[string]bool{}
		for _, p := range ct.Paths {
			if !p.ShardAnalysed {
				t.Fatalf("%s: path %d not shard-analysed", name, p.ID)
			}
			for _, ev := range p.Trace {
				call := ev.DS + "." + ev.Method
				wantClass, ok := verdicts[call]
				if !ok {
					t.Errorf("%s: unexpected call %s (add it to the verdict table)", name, call)
					continue
				}
				seen[call] = true
				if ev.Sharing.Class != wantClass {
					t.Errorf("%s: %s classified %v (%s), want %v",
						name, call, ev.Sharing.Class, ev.Sharing.Reason, wantClass)
				}
				if ev.Sharing.Reason == "" {
					t.Errorf("%s: %s verdict has no reason", name, call)
				}
			}
			// The shared-MA polynomial is bounded by the path's total
			// memory accesses at every PCV corner.
			hi := make(map[string]uint64)
			for v, r := range p.PCVRanges {
				hi[v] = r.Hi
			}
			for _, v := range p.SharedMA.Vars() {
				if _, ok := hi[v]; !ok {
					hi[v] = 0
				}
			}
			for _, v := range p.Cost[perf.MemAccesses].Vars() {
				if _, ok := hi[v]; !ok {
					hi[v] = 0
				}
			}
			if s, m := p.SharedMA.Eval(hi), p.Cost[perf.MemAccesses].Eval(hi); s > m {
				t.Errorf("%s: path %d shared MA %d exceeds total MA %d", name, p.ID, s, m)
			}
		}
		for call := range verdicts {
			if !seen[call] {
				// Not all methods appear on generated paths (pick vs
				// pick_alive depends on the program); missing ones are
				// fine, wrong ones are not.
				t.Logf("%s: %s not exercised by any path", name, call)
			}
		}
	}
}
