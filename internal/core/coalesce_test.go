package core

import (
	"encoding/json"
	"testing"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

func TestCoalesceLiveProjection(t *testing.T) {
	// A path whose constraints mix: a packet-field guard (live: shared
	// input), a local feeding a packet write (live: downstream-visible),
	// a chain local→local→write (live by closure), a ground constraint
	// (always kept), and a dead local pair witnessing an upstream branch.
	f := "pkt_10_1"
	cons := []symb.Expr{
		symb.B(symb.Eq, symb.S(f), symb.C(4)),
		symb.B(symb.Ult, symb.S("w"), symb.C(9)),
		symb.B(symb.Eq, symb.S("u"), symb.S("w")),
		symb.C(1),
		symb.B(symb.Ugt, symb.S("dead"), symb.S("dead2")),
	}
	doms := map[string]symb.Domain{
		f:      {Lo: 0, Hi: 255},
		"w":    {Lo: 0, Hi: 8},
		"dead": {Lo: 0, Hi: 3},
	}
	pc := &PathContract{Action: nfir.ActionForward, Constraints: cons, Domains: doms}
	raw := &nfir.Path{
		Constraints: cons, Domains: doms, Action: nfir.ActionForward,
		PktWrites: map[uint64]nfir.PktWrite{20: {Size: 1, Val: symb.S("w")}},
	}
	liveCons, liveDoms := liveProjection(pc, raw)
	if len(liveCons) != 4 {
		t.Fatalf("live constraints = %v, want all but the dead pair", liveCons)
	}
	for _, c := range liveCons {
		for _, s := range collectSyms(c, nil) {
			if s == "dead" || s == "dead2" {
				t.Fatalf("dead constraint survived: %v", c)
			}
		}
	}
	if _, ok := liveDoms["dead"]; ok {
		t.Error("dead symbol's domain survived")
	}
	if _, ok := liveDoms["w"]; !ok {
		t.Error("write-feeding symbol's domain dropped")
	}
	if _, ok := liveDoms[f]; !ok {
		t.Error("field domain dropped")
	}
}

func TestCoalesceMergesDeadBranchTwins(t *testing.T) {
	f := "pkt_10_1"
	mk := func(deadSym string, ic uint64) (*PathContract, *nfir.Path) {
		cons := []symb.Expr{
			symb.B(symb.Eq, symb.S(f), symb.C(4)),
			symb.B(symb.Ult, symb.S(deadSym), symb.C(7)),
		}
		cost := make(map[perf.Metric]expr.Poly)
		for _, m := range perf.Metrics {
			cost[m] = expr.Const(ic)
		}
		pc := &PathContract{Action: nfir.ActionForward, Constraints: cons, Cost: cost}
		raw := &nfir.Path{Constraints: cons, Action: nfir.ActionForward,
			PktWrites: map[uint64]nfir.PktWrite{20: {Size: 1, Val: symb.C(1)}}}
		return pc, raw
	}
	p1, r1 := mk("deadA", 10)
	p2, r2 := mk("deadB", 25)
	p3, _ := mk("deadC", 3)
	p3.Action = nfir.ActionDrop // different action: its own group
	r3 := &nfir.Path{Constraints: p3.Constraints, Action: nfir.ActionDrop}

	pcs, raws, shared, merged := coalescePaths(
		[]*PathContract{p1, p2, p3},
		[]*nfir.Path{r1, r2, r3},
		[]bool{false, true, false})
	if merged != 1 || len(pcs) != 2 || len(raws) != 2 {
		t.Fatalf("merged=%d len=%d, want 1 merge leaving 2 paths", merged, len(pcs))
	}
	rep := pcs[0]
	for _, m := range perf.Metrics {
		if got := rep.BoundAt(m, nil); got < 25 {
			t.Errorf("metric %v: representative bound %d, want >= max member (25)", m, got)
		}
	}
	for _, c := range rep.Constraints {
		for _, s := range collectSyms(c, nil) {
			if s == "deadA" || s == "deadB" {
				t.Fatalf("dead branch guard survived the merge: %v", c)
			}
		}
	}
	if shared[0] {
		t.Error("merged representative raw still marked shared")
	}
	if pcs[1].Action != nfir.ActionDrop {
		t.Error("singleton group reordered")
	}
	if pcs[1] != p3 {
		t.Error("singleton group must pass through untouched")
	}

	// No mergeable pair: everything passes through unchanged.
	pcs2, _, _, merged2 := coalescePaths([]*PathContract{p1, p3}, []*nfir.Path{r1, r3}, []bool{false, false})
	if merged2 != 0 || pcs2[0] != p1 || pcs2[1] != p3 {
		t.Error("distinct paths must not be merged")
	}
}

// TestCoalesceConservativeBound is the semantic pin for coalescing: for
// every concrete packet (witness) admitted by a path of the uncoalesced
// 3-stage composite, some path of the coalesced composite admits it too
// — coalescing only widens input classes — and the bound the coalesced
// contract assigns it is never below the uncoalesced bound.
func TestCoalesceConservativeBound(t *testing.T) {
	chain := buildChain4()[:3]
	plain := NewGenerator()
	plain.Parallelism = 1
	base, err := ComposeMany(plain, chain)
	if err != nil {
		t.Fatal(err)
	}
	cg := NewGenerator()
	cg.Parallelism = 1
	cg.Coalesce = true
	co, err := ComposeMany(cg, chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(co.Paths) >= len(base.Paths) {
		t.Fatalf("coalescing did not shrink the composite: %d -> %d paths", len(base.Paths), len(co.Paths))
	}

	sv := &symb.Solver{Reference: true, MaxNodes: DefaultComposeFeasibilityMaxNodes, Samples: DefaultComposeFeasibilitySamples}
	admits := func(pc *PathContract, w map[string]uint64) bool {
		for s, d := range pc.Domains {
			if v, ok := w[s]; ok && (v < d.Lo || v > d.Hi) {
				return false
			}
		}
		for _, c := range pc.Constraints {
			for _, s := range symb.Symbols(c) {
				if _, ok := w[s]; !ok {
					return false // witness does not cover the symbol
				}
			}
			if c.Eval(w) == 0 {
				return false
			}
		}
		return true
	}

	classified := 0
	for _, u := range base.Paths {
		w, res := sv.Solve(u.Constraints, u.Domains)
		if res != symb.Sat {
			continue // bounded search could not produce a packet for this path
		}
		// Round-trip the packet fields through wire encoding: the
		// witness describes a concrete header, and classification reads
		// it back with FieldValue.
		pkt := make([]byte, 64)
		for s, v := range w {
			if off, size, ok := nfir.ParseFieldSym(s); ok {
				for b := 0; b < size; b++ {
					pkt[int(off)+b] = byte(v >> (8 * (size - 1 - b)))
				}
			}
		}
		for s := range w {
			if off, size, ok := nfir.ParseFieldSym(s); ok {
				w[s] = FieldValue(pkt, off, size)
			}
		}
		pcvs := make(map[string]uint64)
		for v, r := range u.PCVRanges {
			pcvs[v] = r.Hi
		}
		var best *PathContract
		for _, c := range co.Paths {
			if c.Action == u.Action && admits(c, w) {
				if best == nil || c.BoundAt(perf.Instructions, pcvs) > best.BoundAt(perf.Instructions, pcvs) {
					best = c
				}
			}
		}
		if best == nil {
			t.Fatalf("no coalesced path admits the packet of uncoalesced path %d (%s)", u.ID, u.Class())
		}
		classified++
		for _, m := range perf.Metrics {
			if got, want := best.BoundAt(m, pcvs), u.BoundAt(m, pcvs); got < want {
				t.Errorf("path %d metric %v: coalesced bound %d < uncoalesced %d", u.ID, m, got, want)
			}
		}
	}
	if classified < len(base.Paths)/2 {
		t.Fatalf("only %d/%d uncoalesced paths yielded witnesses; pin too weak", classified, len(base.Paths))
	}
}

// Coalescing must stay deterministic at any worker count: merge groups
// key on first occurrence in composite order, which parallel assembly
// preserves.
func TestCoalesceParallelDeterminism(t *testing.T) {
	serial := NewGenerator()
	serial.Parallelism = 1
	serial.Coalesce = true
	want, err := ComposeMany(serial, buildChain4())
	if err != nil {
		t.Fatal(err)
	}
	wantJS, _ := json.Marshal(want)
	for _, workers := range []int{4, 8} {
		g := NewGenerator()
		g.Parallelism = workers
		g.Coalesce = true
		got, err := ComposeMany(g, buildChain4())
		if err != nil {
			t.Fatal(err)
		}
		gotJS, _ := json.Marshal(got)
		if string(wantJS) != string(gotJS) {
			t.Errorf("coalesced ComposeMany at Parallelism=%d differs from serial", workers)
		}
	}
}
