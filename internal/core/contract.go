// Package core implements the paper's primary contribution: performance
// contracts for software network functions (§2) and BOLT, the analysis
// that generates them (§3, Algorithm 2).
//
// A Contract maps every feasible execution path of an NF to a
// performance expression — a polynomial over performance-critical
// variables (PCVs) — per metric (instructions, memory accesses,
// cycles). Paths carry the input-class constraints that select them, so
// callers can bound the performance of broad packet classes ("all valid
// IPv4 packets", "packets from established flows") without running the
// NF, exactly as §5.1 does.
package core

import (
	"fmt"
	"sort"
	"strings"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// PathContract is the analysed form of one feasible execution path.
type PathContract struct {
	// ID is the path's index within the contract.
	ID int
	// Action is the path's terminal action.
	Action nfir.ActionKind
	// Constraints select the path's input class (packet-field and
	// abstract-state constraints, §3.3).
	Constraints []symb.Expr
	// Domains bound the symbols in Constraints.
	Domains map[string]symb.Domain
	// Events summarises the stateful calls ("flows.get:hit …").
	Events string
	// Trace lists the path's stateful calls as exploration recorded them
	// (data structure, method, chosen outcome, result symbols). The
	// online classifier (classify.go) needs it to match a concrete run's
	// call sequence against the path; it is nil for composed contracts,
	// whose joined paths no longer correspond to one call sequence.
	Trace []nfir.CallEvent
	// Cost is the path's performance expression per metric.
	Cost map[perf.Metric]expr.Poly
	// PCVRanges bound the PCVs appearing in Cost.
	PCVRanges map[string]expr.Range
	// SharedMA is the sub-polynomial of Cost[MemAccesses] attributable to
	// stateful calls classified shared-rw (or unknown) by the sharability
	// analysis — the accesses that touch mutable cross-flow state and pay
	// the coherence penalty when the NF runs sharded. See shard.go.
	SharedMA expr.Poly
	// ShardAnalysed records whether SharedMA was actually computed: true
	// for freshly generated and composed paths, false for paths decoded
	// from version-1 artifacts (which predate the analysis). Unanalysed
	// paths fall back to a conservative shared-MA estimate; see
	// EffectiveSharedMA.
	ShardAnalysed bool
	// Witness is a concrete input exercising the path (nil when the
	// solver returned Unknown; such paths are retained conservatively).
	Witness map[string]uint64
}

// Class returns the path's input-class label: terminal action plus the
// stateful-outcome summary.
func (p *PathContract) Class() string {
	if p.Events == "" {
		return p.Action.String()
	}
	return p.Action.String() + " [" + p.Events + "]"
}

// BoundAt evaluates the path's cost with the given PCV binding; PCVs
// absent from the binding are taken at their range maximum (the
// conservative choice the paper makes for broad classes).
func (p *PathContract) BoundAt(metric perf.Metric, pcvs map[string]uint64) uint64 {
	binding := make(map[string]uint64)
	for _, v := range p.Cost[metric].Vars() {
		if val, ok := pcvs[v]; ok {
			binding[v] = val
		} else if r, ok := p.PCVRanges[v]; ok {
			binding[v] = r.Hi
		} else {
			binding[v] = expr.DefaultHi
		}
	}
	return p.Cost[metric].Eval(binding)
}

// Contract is a performance contract C_N^U for one NF (or NF chain): the
// map from input classes — here materialised as analysed paths — to
// performance expressions (§2.2).
type Contract struct {
	// NF names the analysed function.
	NF string
	// Level records whether framework costs are included.
	Level string
	// Provenance records the frontend that produced the analysed
	// program (e.g. "bvm:ratelimit.bvm"); empty means a hand-written
	// builtin. It travels through the artifact codec so stored
	// contracts remember where they came from.
	Provenance string
	// Paths lists every feasible path.
	Paths []*PathContract
}

// Bound returns the worst-case prediction over all paths accepted by
// filter (nil accepts all), with missing PCVs at their range maxima.
// This implements the paper's query mode: "given this input class, BOLT
// reports the predicted value of the worst execution path in it".
func (ct *Contract) Bound(metric perf.Metric, filter func(*PathContract) bool, pcvs map[string]uint64) (uint64, *PathContract) {
	var worst uint64
	var worstPath *PathContract
	for _, p := range ct.Paths {
		if filter != nil && !filter(p) {
			continue
		}
		v := p.BoundAt(metric, pcvs)
		if worstPath == nil || v > worst {
			worst, worstPath = v, p
		}
	}
	return worst, worstPath
}

// ClassFilter selects paths whose event summary contains every given
// fragment and (optionally) end in the given action.
func ClassFilter(action nfir.ActionKind, fragments ...string) func(*PathContract) bool {
	return func(p *PathContract) bool {
		if action != nfir.ActionNone && p.Action != action {
			return false
		}
		for _, f := range fragments {
			if !strings.Contains(p.Events, f) {
				return false
			}
		}
		return true
	}
}

// ConstraintFilter further requires the path's constraints to be
// satisfiable together with the given extra constraints — the way §5.1
// narrows contracts to e.g. "matched prefixes ≤ 24 bits".
func ConstraintFilter(solver *symb.Solver, extra ...symb.Expr) func(*PathContract) bool {
	if solver == nil {
		solver = &symb.Solver{MaxNodes: 8000, Samples: 16}
	}
	return func(p *PathContract) bool {
		cs := append(append([]symb.Expr(nil), p.Constraints...), extra...)
		return solver.Feasible(cs, p.Domains)
	}
}

// And combines path filters conjunctively.
func And(filters ...func(*PathContract) bool) func(*PathContract) bool {
	return func(p *PathContract) bool {
		for _, f := range filters {
			if f != nil && !f(p) {
				return false
			}
		}
		return true
	}
}

// ClassSummary is one row of a rendered contract: an input class with
// its coalesced performance expression (the paper's Tables 1, 4, 5, 6).
type ClassSummary struct {
	Class string
	Count int
	// Expr is the class's coalesced expression: the dominating path's
	// polynomial, or a sound upper envelope when no single path
	// dominates over the PCV ranges.
	Expr map[perf.Metric]expr.Poly
	// PCVRanges merges the class's PCV ranges.
	PCVRanges map[string]expr.Range
}

// Classes groups paths by class label and coalesces each group into one
// legible expression per metric — the detail/legibility trade-off of
// §2.3 resolved the way the paper's published tables do.
func (ct *Contract) Classes() []ClassSummary {
	groups := make(map[string][]*PathContract)
	for _, p := range ct.Paths {
		groups[p.Class()] = append(groups[p.Class()], p)
	}
	labels := make([]string, 0, len(groups))
	for l := range groups {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]ClassSummary, 0, len(labels))
	for _, label := range labels {
		paths := groups[label]
		ranges := make(map[string]expr.Range)
		for _, p := range paths {
			for v, r := range p.PCVRanges {
				if old, ok := ranges[v]; ok {
					if r.Lo < old.Lo {
						old.Lo = r.Lo
					}
					if r.Hi > old.Hi {
						old.Hi = r.Hi
					}
					ranges[v] = old
				} else {
					ranges[v] = r
				}
			}
		}
		exprRanges := make(map[string]expr.Range, len(ranges))
		for v, r := range ranges {
			exprRanges[v] = expr.Range{Lo: r.Lo, Hi: r.Hi}
		}
		summary := ClassSummary{Class: label, Count: len(paths), PCVRanges: ranges}
		summary.Expr = make(map[perf.Metric]expr.Poly, perf.NumMetrics)
		for _, m := range perf.Metrics {
			coalesced := paths[0].Cost[m]
			for _, p := range paths[1:] {
				coalesced = expr.MaxAssuming(coalesced, p.Cost[m], exprRanges)
			}
			summary.Expr[m] = coalesced
		}
		out = append(out, summary)
	}
	return out
}

// Render prints the contract as a table of classes for one metric, in
// the style of the paper's published contracts.
func (ct *Contract) Render(metric perf.Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Performance contract: %s (%s, metric %s, %d paths)\n",
		ct.NF, ct.Level, metric, len(ct.Paths))
	for _, cls := range ct.Classes() {
		fmt.Fprintf(&b, "  %-58s %s\n", cls.Class, cls.Expr[metric])
	}
	return b.String()
}

// NumClasses reports the number of distinct input classes.
func (ct *Contract) NumClasses() int { return len(ct.Classes()) }
