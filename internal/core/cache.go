package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gobolt/internal/nfir"
)

// ContractCache is a content-addressed cache of generated contracts,
// keyed by a hash of (program text, model fingerprints, Generator
// configuration). The evaluation harness regenerates the same NF
// contracts many times across experiments — figure1 alone builds the
// same NAT four times — and a warm cache turns every repeat into a map
// lookup.
//
// Soundness rests on two conditions:
//
//   - Programs render deterministically (nfir.Program.String) and every
//     model in the set implements nfir.Fingerprinter, covering exactly
//     the configuration its Outcomes depends on. If any model does not,
//     the generation is simply uncacheable and runs the full pipeline.
//   - Cached contracts and paths are returned shared, so callers must
//     treat them as immutable. Everything in this repository already
//     does: composition copies path contracts before rewriting them, and
//     the experiment harnesses only read.
//
// A ContractCache is safe for concurrent use.
type ContractCache struct {
	mu     sync.Mutex
	byKey  map[string]cacheEntry
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	ct    *Contract
	paths []*nfir.Path
}

// NewContractCache returns an empty cache.
func NewContractCache() *ContractCache {
	return &ContractCache{byKey: make(map[string]cacheEntry)}
}

// sharedCache is the process-wide cache behind SharedCache.
var sharedCache = NewContractCache()

// SharedCache returns the process-wide contract cache. Distinct
// Generators configured identically share hits through it, which is what
// lets cmd/boltbench's experiments reuse each other's contracts.
func SharedCache() *ContractCache { return sharedCache }

// Stats reports cache traffic: hits, misses (lookups that ran the full
// pipeline), and resident entries. Uncacheable generations count neither
// as hit nor miss.
func (c *ContractCache) Stats() (hits, misses uint64, entries int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.byKey)
}

// Reset drops every entry and zeroes the counters.
func (c *ContractCache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byKey = make(map[string]cacheEntry)
	c.hits, c.misses = 0, 0
}

func (c *ContractCache) lookup(key string) (*Contract, []*nfir.Path, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byKey[key]
	if ok {
		c.hits++
		return e.ct, e.paths, true
	}
	c.misses++
	return nil, nil, false
}

func (c *ContractCache) store(key string, ct *Contract, paths []*nfir.Path) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byKey[key] = cacheEntry{ct: ct, paths: paths}
}

// cacheKey derives the content address for one generation, or reports
// the triple uncacheable: no cache attached, or some model does not
// fingerprint itself.
func (g *Generator) cacheKey(prog *nfir.Program, models map[string]nfir.Model) (string, bool) {
	if g.Cache == nil {
		return "", false
	}
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	s := g.solver()
	fmt.Fprintf(&b, "config level=%d padIC=%d padMA=%d maxPaths=%d skipReplay=%t solverNodes=%d solverSamples=%d feasNodes=%d feasSamples=%d noInc=%t\n",
		g.Level, g.CallPadIC, g.CallPadMA, g.MaxPaths, g.SkipReplay, s.MaxNodes, s.Samples,
		g.FeasibilityMaxNodes, g.FeasibilitySamples, g.NoIncremental)
	for _, n := range names {
		fp, ok := models[n].(nfir.Fingerprinter)
		if !ok {
			return "", false
		}
		fmt.Fprintf(&b, "model %s %s\n", n, fp.ModelFingerprint())
	}
	b.WriteString("program\n")
	b.WriteString(prog.String())

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), true
}

// derivedKey hashes a composition recipe — already-derived cache keys
// plus structure tags — into a new content address. Any empty part (an
// uncacheable side) or a missing cache makes the derivation uncacheable
// too, reported as "".
func (g *Generator) derivedKey(parts ...string) string {
	if g.Cache == nil {
		return ""
	}
	for _, p := range parts {
		if p == "" {
			return ""
		}
	}
	sum := sha256.Sum256([]byte(strings.Join(parts, "\n")))
	return hex.EncodeToString(sum[:])
}

// composedKey content-addresses the composition a→b from the two sides'
// keys. A composite contract is a pure function of the two stages'
// contracts and the join configuration: the stage keys already encode
// program, models, and the generator knobs the join depends on
// (feasibility budgets, NoIncremental), so hashing the pair addresses
// the whole fold prefix — which is what makes re-composing a warm chain
// one map lookup per step. Parallelism and NoJoinIndex are deliberately
// absent, as in cacheKey: neither can change the output. Coalesce CAN —
// it merges composite paths — so the recipe tag is versioned by it and
// coalesced and uncoalesced composites never alias.
func (g *Generator) composedKey(aKey, bKey string) string {
	return g.derivedKey(g.composeTag("compose"), aKey, bKey)
}

// composeTag versions a composition recipe tag by the knobs that change
// composite bytes.
func (g *Generator) composeTag(tag string) string {
	if g.Coalesce {
		return tag + "+coalesce"
	}
	return tag
}
