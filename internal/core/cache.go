package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"gobolt/internal/nfir"
	"gobolt/internal/store"
)

// ContractCache is a content-addressed cache of generated contracts,
// keyed by a hash of (program text, model fingerprints, Generator
// configuration). The evaluation harness regenerates the same NF
// contracts many times across experiments — figure1 alone builds the
// same NAT four times — and a warm cache turns every repeat into a map
// lookup.
//
// The cache is tiered. The memory tier is always present; AttachDisk
// adds an on-disk tier (internal/store) behind it, making warmth survive
// the process: a lookup that misses memory tries the disk, decodes the
// stored artifact, and promotes it; a store writes through to disk. The
// same lookup/store seam serves the Generator, chain composition's
// fold-prefix reuse, and the DAG planner, so all of them fall back to
// disk transparently. Disk failures (absent, corrupt, undecodable) are
// never fatal — they count in TierStats and the pipeline simply reruns.
//
// Soundness rests on two conditions:
//
//   - Programs render deterministically (nfir.Program.String) and every
//     model in the set implements nfir.Fingerprinter, covering exactly
//     the configuration its Outcomes depends on. If any model does not,
//     the generation is simply uncacheable and runs the full pipeline.
//   - Cached contracts and paths are returned shared, so callers must
//     treat them as immutable. Everything in this repository already
//     does: composition copies path contracts before rewriting them, and
//     the experiment harnesses only read. Disk-loaded entries are fresh
//     decodes, so immutability holds for them trivially.
//
// A ContractCache is safe for concurrent use.
type ContractCache struct {
	mu     sync.Mutex
	byKey  map[string]cacheEntry
	hits   uint64
	misses uint64

	// disk is the optional second tier; nil means memory-only. Disk I/O
	// happens outside mu so slow filesystems never serialize generation.
	disk      *store.Store
	diskHits  uint64 // lookups served by decoding a stored artifact
	diskErrs  uint64 // disk reads/writes/decodes that failed (non-fatal)
	diskSkips uint64 // write-throughs skipped because the object existed
}

type cacheEntry struct {
	ct    *Contract
	paths []*nfir.Path
}

// NewContractCache returns an empty cache.
func NewContractCache() *ContractCache {
	return &ContractCache{byKey: make(map[string]cacheEntry)}
}

// sharedCache is the process-wide cache behind SharedCache.
var sharedCache = NewContractCache()

// SharedCache returns the process-wide contract cache. Distinct
// Generators configured identically share hits through it, which is what
// lets cmd/boltbench's experiments reuse each other's contracts.
func SharedCache() *ContractCache { return sharedCache }

// AttachDisk adds (or, with nil, removes) an on-disk tier behind the
// memory tier. Existing entries stay; subsequent lookups fall back to s
// and subsequent stores write through to it.
func (c *ContractCache) AttachDisk(s *store.Store) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.disk = s
}

// Disk returns the attached on-disk tier, or nil.
func (c *ContractCache) Disk() *store.Store {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disk
}

// Stats reports cache traffic: hits (served from either tier), misses
// (lookups that ran the full pipeline), and resident memory entries.
// Uncacheable generations count neither as hit nor miss.
func (c *ContractCache) Stats() (hits, misses uint64, entries int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits + c.diskHits, c.misses, len(c.byKey)
}

// TierStats breaks cache traffic down by tier.
type TierStats struct {
	// MemHits are lookups served from the memory map.
	MemHits uint64
	// DiskHits are lookups that missed memory but decoded a stored
	// artifact (and were promoted to memory).
	DiskHits uint64
	// Misses are lookups both tiers missed: the pipeline ran.
	Misses uint64
	// DiskErrs counts non-fatal disk-tier failures (corrupt objects,
	// undecodable artifacts, failed write-throughs).
	DiskErrs uint64
	// DiskSkips counts write-throughs skipped because the object was
	// already stored.
	DiskSkips uint64
	// Entries is the resident memory-tier entry count.
	Entries int
}

// TierStats reports per-tier cache traffic.
func (c *ContractCache) TierStats() TierStats {
	if c == nil {
		return TierStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return TierStats{
		MemHits:   c.hits,
		DiskHits:  c.diskHits,
		Misses:    c.misses,
		DiskErrs:  c.diskErrs,
		DiskSkips: c.diskSkips,
		Entries:   len(c.byKey),
	}
}

// Reset drops every memory entry and zeroes the counters. An attached
// disk tier stays attached and keeps its objects.
func (c *ContractCache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byKey = make(map[string]cacheEntry)
	c.hits, c.misses = 0, 0
	c.diskHits, c.diskErrs, c.diskSkips = 0, 0, 0
}

func (c *ContractCache) lookup(key string) (*Contract, []*nfir.Path, bool) {
	c.mu.Lock()
	e, ok := c.byKey[key]
	if ok {
		c.hits++
		c.mu.Unlock()
		return e.ct, e.paths, true
	}
	disk := c.disk
	c.mu.Unlock()

	if disk != nil {
		if ct, paths, ok := c.diskLookup(disk, key); ok {
			return ct, paths, true
		}
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, nil, false
}

// diskLookup tries the disk tier and promotes a decoded artifact into
// the memory tier. Every failure mode is a plain miss.
func (c *ContractCache) diskLookup(disk *store.Store, key string) (*Contract, []*nfir.Path, bool) {
	payload, err := disk.Get(key)
	if err != nil {
		if err != store.ErrNotFound {
			c.mu.Lock()
			c.diskErrs++
			c.mu.Unlock()
		}
		return nil, nil, false
	}
	a, err := DecodeArtifact(payload)
	if err != nil || a.Key != key {
		// Undecodable or mislabeled artifact: a stale schema or a copy
		// under the wrong key. Either way the pipeline reruns.
		c.mu.Lock()
		c.diskErrs++
		c.mu.Unlock()
		return nil, nil, false
	}
	c.mu.Lock()
	c.diskHits++
	c.byKey[key] = cacheEntry{ct: a.Contract, paths: a.Paths}
	c.mu.Unlock()
	return a.Contract, a.Paths, true
}

func (c *ContractCache) store(key string, ct *Contract, paths []*nfir.Path) {
	c.mu.Lock()
	c.byKey[key] = cacheEntry{ct: ct, paths: paths}
	disk := c.disk
	c.mu.Unlock()

	if disk == nil {
		return
	}
	if disk.Has(key) {
		// Content-addressed: an existing object is byte-equivalent, so
		// rewriting it would only churn the disk.
		c.mu.Lock()
		c.diskSkips++
		c.mu.Unlock()
		return
	}
	payload, err := EncodeArtifact(&Artifact{Key: key, Contract: ct, Paths: paths})
	if err == nil {
		err = disk.Put(key, payload, store.Meta{
			Kind:  "contract",
			NF:    ct.NF,
			Level: ct.Level,
			Paths: len(ct.Paths),
		})
	}
	if err != nil {
		c.mu.Lock()
		c.diskErrs++
		c.mu.Unlock()
	}
}

// CacheKey reports the content address this generator caches (and a
// disk store persists) a generation under, or ok=false when the triple
// is uncacheable. Tools use it to label exported artifacts and to
// address stored contracts.
func (g *Generator) CacheKey(prog *nfir.Program, models map[string]nfir.Model) (string, bool) {
	return g.cacheKey(prog, models)
}

// cacheKey derives the content address for one generation, or reports
// the triple uncacheable: no cache attached, or some model does not
// fingerprint itself.
func (g *Generator) cacheKey(prog *nfir.Program, models map[string]nfir.Model) (string, bool) {
	if g.Cache == nil {
		return "", false
	}
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	s := g.solver()
	// schema=2: PR 9 added the sharability annotations (CallEvent.Args/
	// Sharing, PathContract.SharedMA); bumping the tag fences off cached
	// paths generated before the analysis existed, so every cache hit
	// carries shard verdicts.
	fmt.Fprintf(&b, "config schema=2 level=%d padIC=%d padMA=%d maxPaths=%d skipReplay=%t solverNodes=%d solverSamples=%d feasNodes=%d feasSamples=%d noInc=%t\n",
		g.Level, g.CallPadIC, g.CallPadMA, g.MaxPaths, g.SkipReplay, s.MaxNodes, s.Samples,
		g.FeasibilityMaxNodes, g.FeasibilitySamples, g.NoIncremental)
	for _, n := range names {
		fp, ok := models[n].(nfir.Fingerprinter)
		if !ok {
			return "", false
		}
		fmt.Fprintf(&b, "model %s %s\n", n, fp.ModelFingerprint())
	}
	b.WriteString("program\n")
	b.WriteString(prog.String())

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:]), true
}

// derivedKey hashes a composition recipe — already-derived cache keys
// plus structure tags — into a new content address. Any empty part (an
// uncacheable side) or a missing cache makes the derivation uncacheable
// too, reported as "".
func (g *Generator) derivedKey(parts ...string) string {
	if g.Cache == nil {
		return ""
	}
	for _, p := range parts {
		if p == "" {
			return ""
		}
	}
	sum := sha256.Sum256([]byte(strings.Join(parts, "\n")))
	return hex.EncodeToString(sum[:])
}

// composedKey content-addresses the composition a→b from the two sides'
// keys. A composite contract is a pure function of the two stages'
// contracts and the join configuration: the stage keys already encode
// program, models, and the generator knobs the join depends on
// (feasibility budgets, NoIncremental), so hashing the pair addresses
// the whole fold prefix — which is what makes re-composing a warm chain
// one map lookup per step. Parallelism and NoJoinIndex are deliberately
// absent, as in cacheKey: neither can change the output. Coalesce CAN —
// it merges composite paths — so the recipe tag is versioned by it and
// coalesced and uncoalesced composites never alias.
func (g *Generator) composedKey(aKey, bKey string) string {
	return g.derivedKey(g.composeTag("compose"), aKey, bKey)
}

// composeTag versions a composition recipe tag by the knobs that change
// composite bytes.
func (g *Generator) composeTag(tag string) string {
	if g.Coalesce {
		return tag + "+coalesce"
	}
	return tag
}
