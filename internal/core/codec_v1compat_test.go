package core_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"gobolt/internal/core"
	"gobolt/internal/nf"
)

// TestCodecNATGoldenV1 is the end-to-end version-negotiation pin on a
// real contract: testdata/artifact_v1_nat.golden.json holds the bytes a
// pre-shard build wrote for the roster NAT (capacity 64, default
// generator, raw paths included). The test checks both directions of
// compatibility:
//
//   - backward: the stored version-1 bytes still decode losslessly and
//     re-encode byte-identically (old artifacts in a store keep
//     working, unmodified);
//   - forward: regenerating the same NAT with today's shard-analysing
//     pipeline and projecting the result to version 1 reproduces the
//     golden bytes exactly — the shard dimension changed nothing in the
//     version-1 wire format, on a real contract with eight paths.
func TestCodecNATGoldenV1(t *testing.T) {
	golden := filepath.Join("testdata", "artifact_v1_nat.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading pre-shard NAT golden: %v", err)
	}

	a, err := core.DecodeArtifact(want)
	if err != nil {
		t.Fatalf("version-1 NAT golden no longer decodes: %v", err)
	}
	if a.Version != 1 {
		t.Fatalf("decoded version = %d, want 1", a.Version)
	}
	if got := len(a.Contract.Paths); got != 8 {
		t.Fatalf("NAT golden has %d paths, want 8", got)
	}
	re, err := core.EncodeArtifact(a)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, want) {
		t.Fatalf("decoded version-1 NAT artifact did not re-encode at version 1 byte-identically")
	}

	inst, err := nf.Build("nat", nf.BuildParams{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	g := core.NewGenerator()
	g.Cache = core.NewContractCache()
	ct, paths, err := g.GenerateWithPathsContext(context.Background(), inst.Prog, inst.Models)
	if err != nil {
		t.Fatalf("regenerating NAT: %v", err)
	}
	// The golden's key predates the shard-aware cache schema; reuse it so
	// the comparison is about contract content, not cache addressing.
	fresh, err := core.EncodeArtifactAt(&core.Artifact{Key: a.Key, Contract: ct, Paths: paths}, 1)
	if err != nil {
		t.Fatalf("projecting fresh NAT contract to version 1: %v", err)
	}
	if !bytes.Equal(fresh, want) {
		t.Fatalf("version-1 projection of today's NAT contract drifted from the pre-shard bytes")
	}

	// The same regeneration carries shard analysis at version 2.
	for i, p := range ct.Paths {
		if !p.ShardAnalysed {
			t.Fatalf("freshly generated NAT path %d is not shard-analysed", i)
		}
	}
}
