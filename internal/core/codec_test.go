package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// richArtifact builds an artifact exercising every wire feature: all four
// expression node kinds, nested operators, traces with PCVs and model
// costs, multi-metric polynomial costs, PCV ranges, a nil witness next to
// a populated one, and raw paths with port expressions, op tallies,
// accesses, and packet writes.
func richArtifact() *Artifact {
	eq := symb.Bin{Op: symb.Eq, L: symb.Sym{Name: "pkt.dst"}, R: symb.Const{V: 0x0A000001}}
	nested := symb.Bin{
		Op: symb.LAnd,
		L:  symb.Not{X: symb.Bin{Op: symb.Ult, L: symb.Sym{Name: "nat.occ"}, R: symb.Const{V: 4096}}},
		R:  symb.Bin{Op: symb.Ne, L: symb.Sym{Name: "pkt.proto"}, R: symb.Const{V: 17}},
	}
	ev := nfir.CallEvent{
		DS:     "flowtable",
		Method: "get",
		Outcome: nfir.Outcome{
			Label:       "absent",
			Results:     []symb.Expr{symb.Sym{Name: "ft.r0"}},
			Constraints: []symb.Expr{symb.Bin{Op: symb.Eq, L: symb.Sym{Name: "ft.r0"}, R: symb.Const{V: 0}}},
			Domains:     map[string]symb.Domain{"ft.r0": {Lo: 0, Hi: 1}},
			Cost: map[perf.Metric]expr.Poly{
				perf.Instructions: expr.FromTerms(map[expr.Mono]uint64{"": 40, "c": 7}),
				perf.MemAccesses:  expr.FromTerms(map[expr.Mono]uint64{"c": 3}),
			},
			PCVs: []nfir.PCV{{Name: "c", Range: expr.Range{Lo: 0, Hi: 6}}},
		},
		ResultSyms: []string{"ft.r0"},
		Args: []symb.Expr{
			symb.Sym{Name: "pkt_26_4"},
			symb.Bin{Op: symb.Or, L: symb.Sym{Name: "pkt_30_4"}, R: symb.Const{V: 0}},
			symb.Sym{Name: "now"},
		},
		Sharing: nfir.Sharing{Class: nfir.SharingLocal, Reason: "key pins the flow-hash fields"},
	}
	ct := &Contract{
		NF:    "test-nf",
		Level: "full",
		Paths: []*PathContract{
			{
				ID:          0,
				Action:      nfir.ActionForward,
				Constraints: []symb.Expr{eq, nested},
				Domains:     map[string]symb.Domain{"pkt.dst": {Lo: 0, Hi: 1<<32 - 1}},
				Events:      "flowtable.get:absent",
				Trace:       []nfir.CallEvent{ev},
				Cost: map[perf.Metric]expr.Poly{
					perf.Instructions: expr.FromTerms(map[expr.Mono]uint64{"": 120, "c": 7, "c^2": 2}),
					perf.MemAccesses:  expr.FromTerms(map[expr.Mono]uint64{"": 30, "c": 3}),
					perf.Cycles:       expr.FromTerms(map[expr.Mono]uint64{"": 4100, "c*m": 11}),
				},
				PCVRanges:     map[string]expr.Range{"c": {Lo: 0, Hi: 6}, "m": {Lo: 1, Hi: 64}},
				SharedMA:      expr.FromTerms(map[expr.Mono]uint64{"": 3, "c": 1}),
				ShardAnalysed: true,
				Witness:       map[string]uint64{"pkt.dst": 0x0A000001, "pkt.proto": 6},
			},
			{
				ID:      1,
				Action:  nfir.ActionDrop,
				Events:  "",
				Cost:    map[perf.Metric]expr.Poly{perf.Instructions: expr.FromTerms(map[expr.Mono]uint64{"": 55})},
				Witness: nil, // solver Unknown: retained conservatively, no witness
			},
		},
	}
	paths := []*nfir.Path{
		{
			ID:          0,
			Constraints: []symb.Expr{eq, nested},
			Domains:     map[string]symb.Domain{"pkt.dst": {Lo: 0, Hi: 1<<32 - 1}},
			Events:      []nfir.CallEvent{ev},
			Action:      nfir.ActionForward,
			Port:        symb.Bin{Op: symb.And, L: symb.Sym{Name: "ft.r0"}, R: symb.Const{V: 3}},
			StatelessIC: 80,
			StatelessMA: 20,
			Ops: map[perf.OpClass]uint64{
				perf.OpALU: 60, perf.OpBranch: 12, perf.OpLoad: 14, perf.OpStore: 6, perf.OpCall: 2,
			},
			Accesses: []nfir.SymAccess{
				{Known: true, Addr: 0x1000, Size: 8, Store: false},
				{Known: false, Size: 4, Store: true},
			},
			PCVRanges: map[string]expr.Range{"c": {Lo: 0, Hi: 6}},
			PktWrites: map[uint64]nfir.PktWrite{
				24: {Size: 4, Val: symb.Const{V: 0xC0A80001}},
				2:  {Size: 2, Val: symb.Sym{Name: "nat.port"}},
			},
		},
		{
			ID:     1,
			Action: nfir.ActionDrop,
		},
	}
	return &Artifact{Key: strings.Repeat("ab", 32), Contract: ct, Paths: paths, Version: ArtifactVersion}
}

func TestCodecRoundTripRich(t *testing.T) {
	a := richArtifact()
	data, err := EncodeArtifact(a)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeArtifact(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(a, got) {
		t.Fatalf("decode is not the inverse of encode:\n  in:  %+v\n  out: %+v", a, got)
	}
	re, err := EncodeArtifact(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, re) {
		t.Fatalf("encode is not deterministic across a round trip")
	}
	// Witness nil-vs-empty must survive: path 1 has no witness, and the
	// wire bytes must say null (not omit the field, not say {}).
	if !bytes.Contains(data, []byte(`"witness":null`)) {
		t.Fatalf("nil witness not encoded as null:\n%s", data)
	}
}

func TestCodecGolden(t *testing.T) {
	golden := filepath.Join("testdata", "artifact_v2.golden.json")
	data, err := EncodeArtifact(richArtifact())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -run TestCodecGolden -update ./internal/core` after an intentional schema change): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("artifact encoding drifted from the pinned version-%d schema; if intentional, bump ArtifactVersion and regenerate with -update", ArtifactVersion)
	}
	if _, err := DecodeArtifact(want); err != nil {
		t.Fatalf("golden artifact no longer decodes: %v", err)
	}
}

// TestShardFieldsAdditive pins that the shard dimension (v2) is
// strictly additive over the version-1 wire format:
//
//   - encoding today's richArtifact — shard annotations and all — at
//     version 1 reproduces byte-for-byte the golden bytes a pre-shard
//     build wrote for the same artifact;
//   - those version-1 bytes still decode, losslessly, with the shard
//     fields at their zero values;
//   - a decoded version-1 artifact re-encodes at version 1 (the codec
//     never silently upgrades stored bytes);
//   - upgrading is explicit (EncodeArtifactAt at version 2) and changes
//     nothing but the declared version for shard-less content.
func TestShardFieldsAdditive(t *testing.T) {
	golden := filepath.Join("testdata", "artifact_v1.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading pre-shard golden file: %v", err)
	}

	data, err := EncodeArtifactAt(richArtifact(), 1)
	if err != nil {
		t.Fatalf("encode at version 1: %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("version-1 projection drifted from the pre-shard golden bytes")
	}

	a, err := DecodeArtifact(want)
	if err != nil {
		t.Fatalf("version-1 golden no longer decodes: %v", err)
	}
	if a.Version != 1 {
		t.Fatalf("decoded version = %d, want 1", a.Version)
	}
	for i, p := range a.Contract.Paths {
		if p.ShardAnalysed || !p.SharedMA.IsZero() {
			t.Fatalf("path %d of a version-1 artifact carries shard analysis", i)
		}
	}
	for i, ev := range a.Contract.Paths[0].Trace {
		if ev.Args != nil || ev.Sharing != (nfir.Sharing{}) {
			t.Fatalf("trace event %d of a version-1 artifact carries call args or a sharing verdict", i)
		}
	}

	re, err := EncodeArtifact(a)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, want) {
		t.Fatalf("decoded version-1 artifact re-encoded at a different version")
	}

	up, err := EncodeArtifactAt(a, 2)
	if err != nil {
		t.Fatalf("explicit upgrade: %v", err)
	}
	wantUp := bytes.Replace(want, []byte(`"version":1`), []byte(`"version":2`), 1)
	if !bytes.Equal(up, wantUp) {
		t.Fatalf("upgrading shard-less version-1 content changed more than the version number")
	}
	if _, err := DecodeArtifact(up); err != nil {
		t.Fatalf("upgraded artifact does not decode: %v", err)
	}
}

func TestCodecContractOnly(t *testing.T) {
	a := &Artifact{Contract: richArtifact().Contract} // no key, no raw paths
	data, err := EncodeArtifact(a)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeArtifact(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Key != "" || got.Paths != nil {
		t.Fatalf("contract-only artifact grew key %q / %d raw paths", got.Key, len(got.Paths))
	}
	if !reflect.DeepEqual(a.Contract, got.Contract) {
		t.Fatalf("contract-only round trip diverged")
	}
}

func TestCodecEncodeRejects(t *testing.T) {
	if _, err := EncodeArtifact(nil); err == nil {
		t.Errorf("encoded a nil artifact")
	}
	if _, err := EncodeArtifact(&Artifact{}); err == nil {
		t.Errorf("encoded an artifact without a contract")
	}
	ct := &Contract{NF: "x", Paths: []*PathContract{{ID: 0}}}
	if _, err := EncodeArtifact(&Artifact{Contract: ct, Paths: []*nfir.Path{{}, {}}}); err == nil {
		t.Errorf("encoded misaligned raw paths")
	}
	if _, err := EncodeArtifact(&Artifact{Contract: &Contract{NF: "x", Paths: []*PathContract{
		{Constraints: []symb.Expr{nil}},
	}}}); err == nil {
		t.Errorf("encoded a nil expression")
	}
}

func TestCodecDecodeRejects(t *testing.T) {
	valid, err := EncodeArtifact(richArtifact())
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(old, new string) []byte {
		s := string(valid)
		if !strings.Contains(s, old) {
			t.Fatalf("mutation anchor %q not present in encoding", old)
		}
		return []byte(strings.Replace(s, old, new, 1))
	}
	cases := map[string][]byte{
		"empty input":       []byte(""),
		"not json":          []byte("boltstore1 junk"),
		"truncated":         valid[:len(valid)/2],
		"trailing data":     append(append([]byte{}, valid...), []byte(" {}")...),
		"wrong format":      mutate(`"format":"gobolt-contract"`, `"format":"gobolt-contrakt"`),
		"future version":    mutate(`"version":2`, `"version":3`),
		"unknown field":     mutate(`"nf":"test-nf"`, `"nf":"test-nf","zzz":1`),
		"unknown action":    mutate(`"action":"drop"`, `"action":"teleport"`),
		"unknown operator":  mutate(`"op":"=="`, `"op":"==="`),
		"unknown metric":    mutate(`"ic":`, `"IC":`),
		"bad monomial":      mutate(`"c^2":2`, `"c^0":2`),
		"zero coefficient":  mutate(`"c^2":2`, `"c^2":0`),
		"whitespace":        mutate(`"version":2`, `"version": 2`),
		"reordered fields":  mutate(`"format":"gobolt-contract","version":2`, `"version":2,"format":"gobolt-contract"`),
		"malformed const":   mutate(`{"k":"c","v":167772161}`, `{"k":"c","v":167772161,"n":"x"}`),
		"empty symbol name": mutate(`{"k":"s","n":"nat.port"}`, `{"k":"s","n":""}`),
		"unknown sharing":   mutate(`"sharing":"local"`, `"sharing":"lokal"`),
		"orphaned reason":   mutate(`"sharing":"local","sharing_reason":"key pins the flow-hash fields"`, `"sharing_reason":"key pins the flow-hash fields"`),
		// Version 1 does not define the shard fields; an artifact that
		// declares version 1 but smuggles them in must fail the
		// canonicality gate (re-encoding at version 1 strips them).
		"downgraded version smuggles shard fields": mutate(`"version":2`, `"version":1`),
		"witness omitted": mutate(`,"witness":null`, ``),
	}
	for name, data := range cases {
		if _, err := DecodeArtifact(data); err == nil {
			t.Errorf("%s: decode accepted corrupt artifact", name)
		}
	}
	// Misaligned raw paths: drop one raw path from the array.
	var f map[string]json.RawMessage
	if err := json.Unmarshal(valid, &f); err != nil {
		t.Fatal(err)
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(f["raw_paths"], &raws); err != nil {
		t.Fatal(err)
	}
	one, _ := json.Marshal(raws[:1])
	misaligned := bytes.Replace(valid, f["raw_paths"], one, 1)
	if _, err := DecodeArtifact(misaligned); err == nil {
		t.Errorf("decode accepted raw paths misaligned with contract paths")
	}
}

// TestCodecDecodeNeverFolds pins that decoding reconstructs expression
// trees verbatim: a stored (3 + 4) must stay Bin{Add,3,4}, not fold to 7
// the way the symb.B constructor would.
func TestCodecDecodeNeverFolds(t *testing.T) {
	a := &Artifact{Contract: &Contract{NF: "x", Paths: []*PathContract{{
		ID:          0,
		Action:      nfir.ActionDrop,
		Constraints: []symb.Expr{symb.Bin{Op: symb.Add, L: symb.Const{V: 3}, R: symb.Const{V: 4}}},
		Witness:     nil,
	}}}}
	data, err := EncodeArtifact(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := got.Contract.Paths[0].Constraints[0].(symb.Bin)
	if !ok {
		t.Fatalf("constant-foldable expression decoded as %T, want symb.Bin", got.Contract.Paths[0].Constraints[0])
	}
	if b.Op != symb.Add {
		t.Fatalf("operator rewritten to %v", b.Op)
	}
}

func FuzzContractCodec(f *testing.F) {
	valid, err := EncodeArtifact(richArtifact())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	minimal, err := EncodeArtifact(&Artifact{Contract: &Contract{NF: "m", Level: "full"}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(minimal)
	// The version-1 projection of the same artifact: a supported older
	// version that must round-trip at its own version, not upgrade.
	v1, err := EncodeArtifactAt(richArtifact(), 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(v1)
	// A version-1 envelope smuggling version-2 fields (canonicality gate
	// must reject it).
	f.Add(bytes.Replace(valid, []byte(`"version":2`), []byte(`"version":1`), 1))
	f.Add([]byte(`{"format":"gobolt-contract","version":1,"contract":{"nf":"m","level":"","paths":[]}}`))
	f.Add([]byte(`{"format":"gobolt-contract","version":9,"contract":null}`))
	f.Add(valid[:len(valid)/3])
	f.Add(bytes.ToUpper(valid))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeArtifact(data)
		if err != nil {
			return // rejected is always a fine outcome for fuzz input
		}
		// Accepted input must be the canonical encoding of its content:
		// decode ∘ encode is the identity on everything DecodeArtifact
		// lets through.
		re, err := EncodeArtifact(a)
		if err != nil {
			t.Fatalf("decoded artifact does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted non-canonical artifact:\n in: %q\nout: %q", data, re)
		}
		b, err := DecodeArtifact(re)
		if err != nil {
			t.Fatalf("re-encoded artifact does not decode: %v", err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("decode unstable across round trip")
		}
	})
}

// TestCodecProvenance pins the provenance field's wire behavior: it
// survives a round trip, is omitted entirely when empty (so every
// pre-existing artifact and the golden file are byte-stable), and is
// covered by the canonical re-encode identity.
func TestCodecProvenance(t *testing.T) {
	a := richArtifact()
	a.Contract.Provenance = "bvm:ratelimit.bvm"
	data, err := EncodeArtifact(a)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Contains(data, []byte(`"provenance":"bvm:ratelimit.bvm"`)) {
		t.Fatalf("provenance missing from wire bytes:\n%s", data)
	}
	got, err := DecodeArtifact(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Contract.Provenance != "bvm:ratelimit.bvm" {
		t.Fatalf("provenance = %q after round trip", got.Contract.Provenance)
	}

	a.Contract.Provenance = ""
	data, err = EncodeArtifact(a)
	if err != nil {
		t.Fatalf("encode empty: %v", err)
	}
	if bytes.Contains(data, []byte("provenance")) {
		t.Fatalf("empty provenance must be omitted from the wire:\n%s", data)
	}
}
