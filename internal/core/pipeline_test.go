package core

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"gobolt/internal/nf"
	"gobolt/internal/perf"
)

// TestGenerateDeterministicAcrossParallelism is the tentpole acceptance
// check: the contract must be byte-identical — JSON and rendered form —
// whatever the worker count, because paths keep exploration order and
// IDs are assigned in the serial Assemble stage.
func TestGenerateDeterministicAcrossParallelism(t *testing.T) {
	const hour = uint64(3_600_000_000_000)
	cases := []struct {
		name  string
		build func() *nf.Instance
	}{
		{"nat", func() *nf.Instance {
			return nf.NewNAT(nf.NATConfig{
				ExternalIP: 0xC0A80001, Capacity: 512,
				TimeoutNS: hour, GranularityNS: 1_000_000, Seed: 11,
			}).Instance
		}},
		{"bridge", func() *nf.Instance {
			return nf.NewBridge(nf.BridgeConfig{
				Ports: 4, Capacity: 512,
				TimeoutNS: hour, GranularityNS: 1_000_000, Seed: 21,
			}).Instance
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var refJSON []byte
			var refText string
			for _, workers := range []int{1, 2, 8} {
				inst := tc.build()
				g := NewGenerator()
				g.Parallelism = workers
				ct, err := g.Generate(inst.Prog, inst.Models)
				if err != nil {
					t.Fatalf("parallelism %d: %v", workers, err)
				}
				js, err := json.Marshal(ct)
				if err != nil {
					t.Fatalf("parallelism %d: marshal: %v", workers, err)
				}
				text := ct.Render(perf.Instructions)
				if workers == 1 {
					refJSON, refText = js, text
					continue
				}
				if string(js) != string(refJSON) {
					t.Errorf("parallelism %d: JSON differs from serial", workers)
				}
				if text != refText {
					t.Errorf("parallelism %d: rendered contract differs from serial", workers)
				}
			}
		})
	}
}

// TestGeneratePreCancelled: a cancelled context must abort promptly with
// a wrapped context.Canceled, not produce a contract.
func TestGeneratePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nat := nf.NewNAT(nf.NATConfig{
		ExternalIP: 1, Capacity: 4096, TimeoutNS: 3_600_000_000_000,
	})
	g := NewGenerator()
	g.Parallelism = 4
	start := time.Now()
	ct, err := g.GenerateContext(ctx, nat.Prog, nat.Models)
	if err == nil {
		t.Fatal("expected error from cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v should wrap context.Canceled", err)
	}
	if ct != nil {
		t.Error("cancelled generation must not return a contract")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled generation took %s, want prompt return", elapsed)
	}
}

// TestComposeManyParallelMatchesSerial: chain composition through the
// worker pool must reproduce the serial fold exactly.
func TestComposeManyParallelMatchesSerial(t *testing.T) {
	stages := func() []ChainStage {
		fw := nf.NewFirewall(nf.FirewallConfig{})
		sr := nf.NewStaticRouter(nf.StaticRouterConfig{Ports: 4})
		return []ChainStage{
			{Prog: fw.Prog, Models: fw.Models},
			{Prog: sr.Prog, Models: sr.Models},
		}
	}
	serial := NewGenerator()
	serial.Parallelism = 1
	want, err := ComposeMany(serial, stages())
	if err != nil {
		t.Fatal(err)
	}
	pooled := NewGenerator()
	pooled.Parallelism = 8
	got, err := ComposeMany(pooled, stages())
	if err != nil {
		t.Fatal(err)
	}
	wantJS, _ := json.Marshal(want)
	gotJS, _ := json.Marshal(got)
	if string(wantJS) != string(gotJS) {
		t.Error("parallel ComposeMany differs from serial")
	}
}
