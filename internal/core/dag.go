package core

import (
	"fmt"
	"sort"

	"gobolt/internal/nfir"
	"gobolt/internal/symb"
)

// ComposeDAG composes an NF with per-output-port successors — the §3.4
// generalisation beyond linear chains: "this process further generalises
// to more complex networks, so long as the topology forms a directed
// acyclic graph". A forwarding path of the root NF whose output port can
// equal p continues into successors[p] (with the constraint Port == p
// added to the pair); ports without a successor are egress links and the
// path appears unchanged. Symbolic output ports fan out to every
// feasible successor, each pairing carrying its own port constraint.
func ComposeDAG(g *Generator, root ChainStage, successors map[uint64]ChainStage) (*Contract, error) {
	g.defaults()
	rootCt, rootPaths, err := g.GenerateWithPaths(root.Prog, root.Models)
	if err != nil {
		return nil, err
	}

	// Pre-generate each successor's contract and raw paths once.
	type succ struct {
		port  uint64
		ct    *Contract
		paths []*nfir.Path
	}
	ports := make([]uint64, 0, len(successors))
	for p := range successors {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	var succs []succ
	for _, p := range ports {
		st := successors[p]
		ct, paths, err := g.GenerateWithPaths(st.Prog, st.Models)
		if err != nil {
			return nil, fmt.Errorf("core: successor on port %d: %w", p, err)
		}
		succs = append(succs, succ{port: p, ct: ct, paths: paths})
	}

	out := &Contract{NF: rootCt.NF + "+dag", Level: rootCt.Level}
	feas := &symb.Solver{MaxNodes: 20000, Samples: 24}

	for i, pa := range rootCt.Paths {
		rawA := rootPaths[i]
		if pa.Action != nfir.ActionForward || rawA.Port == nil {
			cp := *pa
			cp.ID = len(out.Paths)
			cp.Events = prefixEvents("a.", pa.Events)
			out.Paths = append(out.Paths, &cp)
			continue
		}

		// Egress: the output port matches no successor.
		egress := append([]symb.Expr(nil), pa.Constraints...)
		for _, s := range succs {
			egress = append(egress, symb.B(symb.Ne, rawA.Port, symb.C(s.port)))
		}
		if feas.Feasible(egress, pa.Domains) {
			cp := *pa
			cp.ID = len(out.Paths)
			cp.Constraints = egress
			cp.Events = prefixEvents("a.", pa.Events) + " | egress"
			out.Paths = append(out.Paths, &cp)
		}

		for _, s := range succs {
			// Narrow a's path to this output port.
			narrowed := *pa
			narrowed.Constraints = append(append([]symb.Expr(nil), pa.Constraints...),
				symb.B(symb.Eq, rawA.Port, symb.C(s.port)))
			if !feas.Feasible(narrowed.Constraints, narrowed.Domains) {
				continue
			}
			for j, pb := range s.ct.Paths {
				joined, ok := joinPair(&narrowed, rawA, pb, s.paths[j], feas)
				if !ok {
					continue
				}
				joined.ID = len(out.Paths)
				joined.Events = fmt.Sprintf("%s @port%d", joined.Events, s.port)
				out.Paths = append(out.Paths, joined)
			}
		}
	}
	if len(out.Paths) == 0 {
		return nil, fmt.Errorf("core: DAG composition produced no feasible paths")
	}
	return out, nil
}
