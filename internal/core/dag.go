package core

import (
	"context"
	"fmt"
	"sort"

	"gobolt/internal/nfir"
	"gobolt/internal/par"
	"gobolt/internal/symb"
)

// ComposeDAG composes an NF with per-output-port successors — the §3.4
// generalisation beyond linear chains: "this process further generalises
// to more complex networks, so long as the topology forms a directed
// acyclic graph". A forwarding path of the root NF whose output port can
// equal p continues into successors[p] (with the constraint Port == p
// added to the pair); ports without a successor are egress links and the
// path appears unchanged. Symbolic output ports fan out to every
// feasible successor, each pairing carrying its own port constraint.
//
// Like ComposeMany, the result is deterministic at any Parallelism,
// honours the generator's feasibility budgets, and is content-addressed
// in the contract cache when one is attached.
func ComposeDAG(g *Generator, root ChainStage, successors map[uint64]ChainStage) (*Contract, error) {
	return ComposeDAGContext(context.Background(), g, root, successors)
}

// ComposeDAGContext is ComposeDAG with cancellation; the root and every
// successor generate concurrently on the generator's worker pool, and
// the per-root-path joins then fan out over the pool into indexed slots
// (assembly restores root path order, keeping the output byte-identical
// to a serial run).
func ComposeDAGContext(ctx context.Context, g *Generator, root ChainStage, successors map[uint64]ChainStage) (*Contract, error) {
	ports := make([]uint64, 0, len(successors))
	for p := range successors {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })

	// Content-address the whole topology up front: root key plus each
	// port→successor key in port order. Keys derive from programs and
	// models alone, so a warm DAG returns before generating anything.
	rootKey, _ := g.cacheKey(root.Prog, root.Models)
	keyParts := []string{g.composeTag("dag"), rootKey}
	for _, p := range ports {
		st := successors[p]
		sk, _ := g.cacheKey(st.Prog, st.Models)
		keyParts = append(keyParts, fmt.Sprintf("port%d=%s", p, sk))
	}
	key := g.derivedKey(keyParts...)
	if key != "" {
		if ct, _, ok := g.Cache.lookup(key); ok {
			return ct, nil
		}
	}

	rootCt, rootPaths, err := g.GenerateWithPathsContext(ctx, root.Prog, root.Models)
	if err != nil {
		return nil, err
	}

	// Pre-generate each successor's contract and raw paths once, in
	// deterministic port order, and prepare each successor's join index —
	// the b-side is shared by every root path, so it is built once here.
	type succ struct {
		port  uint64
		ct    *Contract
		paths []*nfir.Path
		ix    *joinIndex
	}
	succs := make([]succ, len(ports))
	err = par.ForEach(ctx, g.workers(), len(ports), func(i int) error {
		st := successors[ports[i]]
		ct, paths, err := g.GenerateWithPathsContext(ctx, st.Prog, st.Models)
		if err != nil {
			return fmt.Errorf("core: successor on port %d: %w", ports[i], err)
		}
		succs[i] = succ{port: ports[i], ct: ct, paths: paths, ix: buildJoinIndex(ct, g.NoJoinIndex)}
		return nil
	})
	if err != nil {
		return nil, err
	}

	name := rootCt.NF + "+dag"
	jf := g.composeFeasibility()
	slots := make([][]*PathContract, len(rootCt.Paths))
	err = par.ForEach(ctx, g.workers(), len(rootCt.Paths), func(i int) error {
		pa := rootCt.Paths[i]
		rawA := rootPaths[i]
		if pa.Action != nfir.ActionForward || rawA.Port == nil {
			cp := *pa
			cp.Events = prefixEvents("a.", pa.Events)
			slots[i] = []*PathContract{&cp}
			return nil
		}
		jp := jf.prefix(pa.Constraints)
		aw := buildAJoinInfo(pa, rawA)
		var sl []*PathContract

		// Egress: the output port matches no successor.
		egress := append([]symb.Expr(nil), pa.Constraints...)
		for _, s := range succs {
			egress = append(egress, symb.B(symb.Ne, rawA.Port, symb.C(s.port)))
		}
		if jp.feasible(ctx, egress, pa.Domains) {
			cp := *pa
			cp.Constraints = egress
			cp.Events = prefixEvents("a.", pa.Events) + " | egress"
			sl = append(sl, &cp)
		}

		for _, s := range succs {
			if err := ctx.Err(); err != nil {
				return err
			}
			// Narrow a's path to this output port; the narrowed prefix
			// extends the shared session instead of re-preparing it.
			portEq := symb.B(symb.Eq, rawA.Port, symb.C(s.port))
			narrowed := *pa
			narrowed.Constraints = append(append([]symb.Expr(nil), pa.Constraints...), portEq)
			if !jp.feasible(ctx, narrowed.Constraints, narrowed.Domains) {
				continue
			}
			np := jp.extend(portEq)
			for j, pb := range s.ct.Paths {
				if s.ix.skip(aw, pa, j) {
					continue
				}
				joined, ok := joinPair(ctx, &narrowed, rawA, pb, s.paths[j], np, "b.", &s.ix.metas[j])
				if !ok {
					continue
				}
				joined.Events = fmt.Sprintf("%s @port%d", joined.Events, s.port)
				sl = append(sl, joined)
			}
		}
		slots[i] = sl
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: composing %s: %w", name, err)
	}

	var pcs []*PathContract
	for _, sl := range slots {
		pcs = append(pcs, sl...)
	}
	if g.Coalesce {
		// Terminal composites keep no raw paths; liveness anchors on
		// classification-visible symbols only (see coalescePaths).
		pcs, _, _, _ = coalescePaths(pcs, nil, nil)
	}
	out := &Contract{NF: name, Level: rootCt.Level}
	for k, pc := range pcs {
		pc.ID = k
		out.Paths = append(out.Paths, pc)
	}
	if len(out.Paths) == 0 {
		return nil, fmt.Errorf("core: DAG composition produced no feasible paths")
	}
	if key != "" {
		g.Cache.store(key, out, nil)
	}
	return out, nil
}
