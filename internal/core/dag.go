package core

import (
	"context"
	"fmt"
	"sort"

	"gobolt/internal/nfir"
	"gobolt/internal/par"
	"gobolt/internal/symb"
)

// ComposeDAG composes an NF with per-output-port successors — the §3.4
// generalisation beyond linear chains: "this process further generalises
// to more complex networks, so long as the topology forms a directed
// acyclic graph". A forwarding path of the root NF whose output port can
// equal p continues into successors[p] (with the constraint Port == p
// added to the pair); ports without a successor are egress links and the
// path appears unchanged. Symbolic output ports fan out to every
// feasible successor, each pairing carrying its own port constraint.
func ComposeDAG(g *Generator, root ChainStage, successors map[uint64]ChainStage) (*Contract, error) {
	return ComposeDAGContext(context.Background(), g, root, successors)
}

// ComposeDAGContext is ComposeDAG with cancellation; the root and every
// successor generate concurrently on the generator's worker pool.
func ComposeDAGContext(ctx context.Context, g *Generator, root ChainStage, successors map[uint64]ChainStage) (*Contract, error) {
	rootCt, rootPaths, err := g.GenerateWithPathsContext(ctx, root.Prog, root.Models)
	if err != nil {
		return nil, err
	}

	// Pre-generate each successor's contract and raw paths once, in
	// deterministic port order.
	type succ struct {
		port  uint64
		ct    *Contract
		paths []*nfir.Path
	}
	ports := make([]uint64, 0, len(successors))
	for p := range successors {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	succs := make([]succ, len(ports))
	err = par.ForEach(ctx, g.workers(), len(ports), func(i int) error {
		st := successors[ports[i]]
		ct, paths, err := g.GenerateWithPathsContext(ctx, st.Prog, st.Models)
		if err != nil {
			return fmt.Errorf("core: successor on port %d: %w", ports[i], err)
		}
		succs[i] = succ{port: ports[i], ct: ct, paths: paths}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &Contract{NF: rootCt.NF + "+dag", Level: rootCt.Level}
	feas := &symb.Solver{MaxNodes: 20000, Samples: 24}

	for i, pa := range rootCt.Paths {
		rawA := rootPaths[i]
		if pa.Action != nfir.ActionForward || rawA.Port == nil {
			cp := *pa
			cp.ID = len(out.Paths)
			cp.Events = prefixEvents("a.", pa.Events)
			out.Paths = append(out.Paths, &cp)
			continue
		}

		// Egress: the output port matches no successor.
		egress := append([]symb.Expr(nil), pa.Constraints...)
		for _, s := range succs {
			egress = append(egress, symb.B(symb.Ne, rawA.Port, symb.C(s.port)))
		}
		if feas.Feasible(egress, pa.Domains) {
			cp := *pa
			cp.ID = len(out.Paths)
			cp.Constraints = egress
			cp.Events = prefixEvents("a.", pa.Events) + " | egress"
			out.Paths = append(out.Paths, &cp)
		}

		for _, s := range succs {
			// Narrow a's path to this output port.
			narrowed := *pa
			narrowed.Constraints = append(append([]symb.Expr(nil), pa.Constraints...),
				symb.B(symb.Eq, rawA.Port, symb.C(s.port)))
			if !feas.Feasible(narrowed.Constraints, narrowed.Domains) {
				continue
			}
			for j, pb := range s.ct.Paths {
				joined, ok := joinPair(ctx, &narrowed, rawA, pb, s.paths[j], feas)
				if !ok {
					continue
				}
				joined.ID = len(out.Paths)
				joined.Events = fmt.Sprintf("%s @port%d", joined.Events, s.port)
				out.Paths = append(out.Paths, joined)
			}
		}
	}
	if len(out.Paths) == 0 {
		return nil, fmt.Errorf("core: DAG composition produced no feasible paths")
	}
	return out, nil
}
