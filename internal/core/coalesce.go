package core

import (
	"fmt"
	"sort"
	"strings"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// This file implements composite path coalescing: between fold levels,
// composite paths that differ only in dead upstream branches are merged
// into one representative. Stage k's input path count is stage k−1's
// output, so this is the lever that controls composition depth.
//
// Two paths are mergeable when their downstream-visible state is
// identical: same terminal action, same packet writes (the substitution
// the next join performs), same *live* constraint/domain projection, and
// same cost class (same PCVs with the same ranges). "Live" is the
// transitive closure of connection to anything downstream-visible —
// shared input symbols (packet fields, now, pkt_len, in_port), symbols
// feeding packet writes or the output port, and PCV names. Constraints
// over symbols disconnected from all of those only witnessed the
// upstream branch's feasibility (already established when the path was
// kept); they are dropped from the representative, which widens the
// merged input class — the conservative direction.
//
// The representative's cost is the conservative maximum of the members'
// costs over the shared PCV box (expr.MaxAssuming: the dominating
// polynomial, or a sound upper envelope). Its events, witness and trace
// come from the first member in composite order, which keeps the merge
// deterministic at any Parallelism.
//
// Coalescing changes composite bytes, so it is opt-in
// (Generator.Coalesce) and composed cache keys are versioned by it
// (see composedKey).

// isSharedInputSym reports whether s is visible outside the stage that
// introduced it: a packet field, the packet length, the clock, or the
// ingress port.
func isSharedInputSym(s string) bool {
	if _, _, ok := nfir.ParseFieldSym(s); ok {
		return true
	}
	return s == nfir.SymNow || s == nfir.SymPktLen || s == nfir.SymInPort
}

// collectSyms appends every symbol of e to dst without sorting.
func collectSyms(e symb.Expr, dst []string) []string {
	switch x := e.(type) {
	case symb.Sym:
		dst = append(dst, x.Name)
	case symb.Bin:
		dst = collectSyms(x.L, dst)
		dst = collectSyms(x.R, dst)
	case symb.Not:
		dst = collectSyms(x.X, dst)
	}
	return dst
}

// liveProjection splits a path's constraints and domains into the live
// part (connected to downstream-visible symbols) and the dead rest.
// raw may be nil for terminal composites (ComposeDAG keeps no raw
// paths); then only classification-visible symbols anchor liveness.
func liveProjection(pc *PathContract, raw *nfir.Path) ([]symb.Expr, map[string]symb.Domain) {
	live := make(map[string]bool)
	if raw != nil {
		for _, w := range raw.PktWrites {
			for _, s := range collectSyms(w.Val, nil) {
				live[s] = true
			}
		}
		if raw.Port != nil {
			for _, s := range collectSyms(raw.Port, nil) {
				live[s] = true
			}
		}
	}
	for v := range pc.PCVRanges {
		live[v] = true
	}

	consSyms := make([][]string, len(pc.Constraints))
	for i, c := range pc.Constraints {
		consSyms[i] = collectSyms(c, nil)
	}
	isLive := make([]bool, len(pc.Constraints))
	for changed := true; changed; {
		changed = false
		for i := range pc.Constraints {
			if isLive[i] {
				continue
			}
			hot := len(consSyms[i]) == 0 // ground constraints stay
			for _, s := range consSyms[i] {
				if live[s] || isSharedInputSym(s) {
					hot = true
					break
				}
			}
			if !hot {
				continue
			}
			isLive[i] = true
			changed = true
			for _, s := range consSyms[i] {
				if !live[s] {
					live[s] = true
				}
			}
		}
	}

	liveCons := make([]symb.Expr, 0, len(pc.Constraints))
	for i, c := range pc.Constraints {
		if isLive[i] {
			liveCons = append(liveCons, c)
		}
	}
	liveDoms := make(map[string]symb.Domain, len(pc.Domains))
	for s, d := range pc.Domains {
		if live[s] || isSharedInputSym(s) {
			liveDoms[s] = d
		}
	}
	return liveCons, liveDoms
}

// coalesceSig renders the downstream-visible state of a path as the
// merge key.
func coalesceSig(pc *PathContract, raw *nfir.Path, liveCons []symb.Expr, liveDoms map[string]symb.Domain) string {
	var b strings.Builder
	fmt.Fprintf(&b, "act=%d\n", pc.Action)
	if raw != nil {
		offs := make([]uint64, 0, len(raw.PktWrites))
		for off := range raw.PktWrites {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		for _, off := range offs {
			w := raw.PktWrites[off]
			fmt.Fprintf(&b, "w %d/%d=%s\n", off, w.Size, w.Val)
		}
		if raw.Port != nil {
			fmt.Fprintf(&b, "port=%s\n", raw.Port)
		}
	}
	for _, c := range liveCons {
		fmt.Fprintf(&b, "c %s\n", c)
	}
	names := make([]string, 0, len(liveDoms))
	for s := range liveDoms {
		names = append(names, s)
	}
	sort.Strings(names)
	for _, s := range names {
		d := liveDoms[s]
		fmt.Fprintf(&b, "d %s=[%d,%d]\n", s, d.Lo, d.Hi)
	}
	pcvs := make([]string, 0, len(pc.PCVRanges))
	for v := range pc.PCVRanges {
		pcvs = append(pcvs, v)
	}
	sort.Strings(pcvs)
	for _, v := range pcvs {
		r := pc.PCVRanges[v]
		fmt.Fprintf(&b, "r %s=[%d,%d]\n", v, r.Lo, r.Hi)
	}
	for _, m := range perf.Metrics {
		vars := append([]string(nil), pc.Cost[m].Vars()...)
		sort.Strings(vars)
		fmt.Fprintf(&b, "v %d %s\n", m, strings.Join(vars, ","))
	}
	return b.String()
}

// coalescePaths merges mergeable composite paths in first-occurrence
// order and returns the coalesced lists plus the number of paths merged
// away. raws/shared may be nil (terminal composites with no raw paths);
// when present, shared[i] marks raws[i] as borrowed from the a-side
// (pass-through paths), which the merge must not mutate.
func coalescePaths(pcs []*PathContract, raws []*nfir.Path, shared []bool) ([]*PathContract, []*nfir.Path, []bool, uint64) {
	type group struct {
		out      int // index in the coalesced output
		members  []*PathContract
		liveCons []symb.Expr
		liveDoms map[string]symb.Domain
	}
	groups := make(map[string]*group)
	var outPcs []*PathContract
	var outRaws []*nfir.Path
	var outShared []bool
	var order []*group
	var merged uint64

	for i, pc := range pcs {
		var raw *nfir.Path
		if raws != nil {
			raw = raws[i]
		}
		liveCons, liveDoms := liveProjection(pc, raw)
		sig := coalesceSig(pc, raw, liveCons, liveDoms)
		if grp, ok := groups[sig]; ok {
			grp.members = append(grp.members, pc)
			merged++
			continue
		}
		grp := &group{out: len(outPcs), members: []*PathContract{pc}, liveCons: liveCons, liveDoms: liveDoms}
		groups[sig] = grp
		order = append(order, grp)
		outPcs = append(outPcs, pc)
		if raws != nil {
			outRaws = append(outRaws, raws[i])
			outShared = append(outShared, shared[i])
		}
	}
	if merged == 0 {
		return pcs, raws, shared, 0
	}

	for _, grp := range order {
		if len(grp.members) == 1 {
			continue // untouched: keeps its full constraint set and raw
		}
		first := grp.members[0]
		rep := *first
		rep.Constraints = grp.liveCons
		rep.Domains = grp.liveDoms
		rep.Cost = make(map[perf.Metric]expr.Poly, perf.NumMetrics)
		for _, m := range perf.Metrics {
			coalesced := first.Cost[m]
			for _, q := range grp.members[1:] {
				coalesced = expr.MaxAssuming(coalesced, q.Cost[m], rep.PCVRanges)
			}
			rep.Cost[m] = coalesced
		}
		// Shared-MA merges like any other metric: the envelope of the
		// members' shared-access polynomials over the merged PCV ranges.
		sharedMA := first.EffectiveSharedMA()
		for _, q := range grp.members[1:] {
			sharedMA = expr.MaxAssuming(sharedMA, q.EffectiveSharedMA(), rep.PCVRanges)
		}
		rep.SharedMA = sharedMA
		rep.ShardAnalysed = true
		outPcs[grp.out] = &rep
		if outRaws != nil {
			repRaw := *outRaws[grp.out]
			repRaw.Constraints = grp.liveCons
			repRaw.Domains = grp.liveDoms
			outRaws[grp.out] = &repRaw
			outShared[grp.out] = false // fresh copy: safe to renumber
		}
	}
	return outPcs, outRaws, outShared, merged
}
