package core_test

import (
	"strings"
	"testing"

	"gobolt/internal/core"
	"gobolt/internal/distill"
	"gobolt/internal/nf"
	"gobolt/internal/traffic"
)

func TestFieldValue(t *testing.T) {
	cases := []struct {
		pkt  []byte
		off  uint64
		size int
		want uint64
	}{
		{[]byte{0x01, 0x02, 0x03, 0x04}, 0, 4, 0x01020304},
		{[]byte{0x01, 0x02, 0x03, 0x04}, 2, 2, 0x0304},
		// Reads past the packet's end zero-extend, matching the concrete
		// interpreter's zero-padded buffer.
		{[]byte{0x12, 0x34}, 1, 2, 0x3400},
		{nil, 0, 4, 0},
		{[]byte{0xff}, 0, 1, 0xff},
	}
	for _, c := range cases {
		if got := core.FieldValue(c.pkt, c.off, c.size); got != c.want {
			t.Errorf("FieldValue(%x, %d, %d) = %#x, want %#x", c.pkt, c.off, c.size, got, c.want)
		}
	}
}

// TestClassifierRejectsCompositions: a path with stateful events but no
// call trace (chain compositions, hand-built contracts) cannot be
// classified online; NewClassifier must refuse it rather than mismatch.
func TestClassifierRejectsCompositions(t *testing.T) {
	ct := &core.Contract{Paths: []*core.PathContract{{ID: 0, Events: "mac.put:new"}}}
	if _, err := core.NewClassifier(ct); err == nil {
		t.Fatal("NewClassifier accepted a path with events but no trace")
	}
}

// TestClassifierLPMLongPath is the regression test for outcome-label
// evidence: the DIR-24-8 short and long outcomes both return one port
// value, so without the concrete structure's self-reported label every
// two-read adversarial packet would fall into the cheaper short-path
// class and the monitor would raise false violations.
func TestClassifierLPMLongPath(t *testing.T) {
	r := nf.NewLPMRouter(nf.LPMRouterConfig{Ports: 16})
	if err := r.Table.AddRoute(0x0A000000, 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Table.AddRoute(0xC0A80180, 25, 2); err != nil {
		t.Fatal(err)
	}
	ct, err := core.NewGenerator().Generate(r.Prog, r.Models)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := core.NewClassifier(ct)
	if err != nil {
		t.Fatal(err)
	}
	pkts := traffic.AdversarialLPM(r.Table, 8, 1_000, 1_000, 3)
	if len(pkts) == 0 {
		t.Fatal("route table has no extended slots; nothing adversarial to send")
	}
	runner := &distill.Runner{}
	var calls []core.CallRecord
	restore := core.AttachRecorder(r.Env, &calls)
	defer restore()
	for i, p := range pkts {
		calls = calls[:0]
		recs, err := runner.Run(r.Instance, []traffic.Packet{p})
		if err != nil {
			t.Fatal(err)
		}
		obs := &core.PacketObservation{
			Pkt: p.Data, InPort: p.InPort, Time: p.Time,
			PktLen: uint64(len(p.Data)), Action: recs[0].Action.Kind, Calls: calls,
		}
		path, ok := cls.Classify(obs)
		if !ok {
			t.Fatalf("adversarial packet %d unclassified", i)
		}
		if !strings.Contains(path.Class(), "lpm.get:long") {
			t.Fatalf("adversarial two-read packet %d classified as %q; outcome-label evidence lost", i, path.Class())
		}
	}
}
