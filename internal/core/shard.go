package core

// This file is the shard dimension of performance contracts: a static
// sharability analysis over the stateful calls of each explored path,
// and the shard-aware evaluation it enables.
//
// The model (after the Automatic Parallelization of Software Network
// Functions line of work, see PAPERS.md): the NF runs S instances
// ("shards"), an RSS-style dispatcher routes each packet to the shard
// owning its flow (monitor.FlowKey mod S), and the only extra per-packet
// cost relative to one core is cache-coherence traffic on state that
// more than one shard mutates. A stateful call is
//
//   - shard-local when it is keyed and its key pins the flow-hash
//     fields of the path's traffic class: the dispatcher then guarantees
//     every packet that can touch a given entry lands on the same
//     shard, so the entry's cache lines never migrate;
//   - shared-ro when it only reads state nothing mutates per packet
//     (rulesets, tries, the Maglev ring): such state replicates per
//     core for free;
//   - shared-rw otherwise (expiry sweeps, port allocators, heartbeat
//     stamps): each of its memory accesses can find its line dirty in a
//     remote cache, charged conservatively at hwmodel.WorstXfer cycles
//     per contending shard.
//
// The resulting per-path bound is
//
//	cycles(S) ≤ Cost[Cycles] + WorstXfer·(S−1)·SharedMA
//
// which collapses to today's single-core bound at S=1 — the shard
// dimension is strictly additive (FuzzShardBound pins this).
// internal/experiments.ShardBench validates the bound against a
// detailed per-shard simulation with a coherence directory
// (hwmodel.ShardSim).

import (
	"gobolt/internal/expr"
	"gobolt/internal/hwmodel"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// flowHashEthertype mirrors the dispatcher's IPv4 discriminator: the
// 16-bit field at packet offset 12 (monitor.FlowKey checks
// pkt[12:14] == 0x0800).
const flowHashEthertype = 0x0800

// hashFields is the set of packet inputs the dispatcher's flow hash
// reads for the packets of one path: whichever of these a keyed call's
// key does not determine could hash to a different shard while still
// reaching the same entry.
type hashFields struct {
	bytes  map[uint64]bool
	inPort bool
}

// ipv4HashFields: protocol byte plus the source and destination
// addresses (monitor.FlowKey bytes 23, 26..33).
func ipv4HashFields() hashFields {
	h := hashFields{bytes: make(map[uint64]bool, 9)}
	h.bytes[23] = true
	for b := uint64(26); b < 34; b++ {
		h.bytes[b] = true
	}
	return h
}

// fallbackHashFields: the first 14 bytes (the Ethernet header) plus the
// ingress port, monitor.FlowKey's non-IPv4 fallback.
func fallbackHashFields() hashFields {
	h := hashFields{bytes: make(map[uint64]bool, 14), inPort: true}
	for b := uint64(0); b < 14; b++ {
		h.bytes[b] = true
	}
	return h
}

func mergeHashFields(a, b hashFields) hashFields {
	out := hashFields{bytes: make(map[uint64]bool, len(a.bytes)+len(b.bytes)), inPort: a.inPort || b.inPort}
	for k := range a.bytes {
		out.bytes[k] = true
	}
	for k := range b.bytes {
		out.bytes[k] = true
	}
	return out
}

// shardFeasSolver is the bounded solver behind the two hash-field
// feasibility queries; it reuses the generator's exploration-pruning
// budget so the verdicts are deterministic per configuration.
func (g *Generator) shardFeasSolver() *symb.Solver {
	if s := g.feasibilitySolver(); s != nil {
		return s
	}
	return &symb.Solver{
		MaxNodes: nfir.DefaultFeasibilityMaxNodes,
		Samples:  nfir.DefaultFeasibilitySamples,
	}
}

// pathHashFields decides which flow-hash fields the dispatcher reads for
// the packets selected by the path's constraints, by refutation: if
// "this path and not IPv4" is infeasible, every packet on the path
// hashes over the IPv4 fields; if "this path and IPv4" is infeasible,
// every packet hashes over the fallback fields; if neither is refutable
// the path admits both kinds and a key must pin the union
// (conservative — an incomplete solver can only widen the requirement,
// never shrink it).
//
// Packets shorter than the IPv4 header also fall back; NF programs do
// not constrain pkt_len, so the analysis assumes well-formed traffic
// (≥ 34-byte packets), the same assumption the roster programs' field
// reads already make.
func (g *Generator) pathHashFields(pa *nfir.Path) hashFields {
	sv := g.shardFeasSolver()
	eth := symb.S(nfir.FieldSymName(12, 2))
	with := func(extra symb.Expr) []symb.Expr {
		cs := make([]symb.Expr, 0, len(pa.Constraints)+1)
		cs = append(cs, pa.Constraints...)
		return append(cs, extra)
	}
	if !sv.Feasible(with(symb.B(symb.Ne, eth, symb.C(flowHashEthertype))), pa.Domains) {
		return ipv4HashFields()
	}
	if !sv.Feasible(with(symb.B(symb.Eq, eth, symb.C(flowHashEthertype))), pa.Domains) {
		return fallbackHashFields()
	}
	return mergeHashFields(ipv4HashFields(), fallbackHashFields())
}

// keyCover is the set of flow-hash inputs recoverable from a key
// expression: the key pins a field when the field's bytes can be read
// back out of the key value.
type keyCover struct {
	bytes  map[uint64]bool
	inPort bool
}

// argCover analyses one key argument. It recognises the invertible
// expression forms NF programs build keys from — packet-field symbols,
// constants, shifts by constants, and or/add of parts with disjoint bit
// ranges — and reports which packet bytes the argument determines plus
// the bit mask the value may occupy (for the disjointness check).
// Anything else (masked fields, model results, arithmetic with carries)
// is not invertible and contributes nothing, which can only demote a
// call towards shared — never unsoundly towards local.
func argCover(e symb.Expr) (keyCover, uint64, bool) {
	switch x := e.(type) {
	case symb.Const:
		return keyCover{}, x.V, true
	case symb.Sym:
		if off, size, ok := nfir.ParseFieldSym(x.Name); ok {
			cov := keyCover{bytes: make(map[uint64]bool, size)}
			for b := uint64(0); b < uint64(size); b++ {
				cov.bytes[off+b] = true
			}
			occ := ^uint64(0)
			if size < 8 {
				occ = (uint64(1) << (8 * uint(size))) - 1
			}
			return cov, occ, true
		}
		if x.Name == nfir.SymInPort {
			return keyCover{inPort: true}, ^uint64(0), true
		}
		return keyCover{}, 0, false
	case symb.Bin:
		switch x.Op {
		case symb.Shl:
			c, ok := x.R.(symb.Const)
			if !ok || c.V >= 64 {
				return keyCover{}, 0, false
			}
			cov, occ, ok := argCover(x.L)
			if !ok || (occ<<c.V)>>c.V != occ {
				// Shifting out occupied bits destroys them.
				return keyCover{}, 0, false
			}
			return cov, occ << c.V, true
		case symb.Or, symb.Add:
			lc, locc, lok := argCover(x.L)
			rc, rocc, rok := argCover(x.R)
			if !lok || !rok || locc&rocc != 0 {
				// Overlapping bits (or add-carries into them) make the
				// parts unrecoverable.
				return keyCover{}, 0, false
			}
			merged := keyCover{
				bytes:  make(map[uint64]bool, len(lc.bytes)+len(rc.bytes)),
				inPort: lc.inPort || rc.inPort,
			}
			for b := range lc.bytes {
				merged.bytes[b] = true
			}
			for b := range rc.bytes {
				merged.bytes[b] = true
			}
			return merged, locc | rocc, true
		}
	}
	return keyCover{}, 0, false
}

// keyPins reports whether the call's key arguments jointly determine
// every flow-hash field of the path: then two packets reaching the same
// entry necessarily have equal hash fields, hash to the same shard, and
// the entry is shard-local under flow-hash dispatch.
func keyPins(args []symb.Expr, keyArgs []int, need hashFields) bool {
	cover := keyCover{bytes: make(map[uint64]bool)}
	for _, i := range keyArgs {
		if i < 0 || i >= len(args) {
			continue
		}
		c, _, ok := argCover(args[i])
		if !ok {
			continue
		}
		cover.inPort = cover.inPort || c.inPort
		for b := range c.bytes {
			cover.bytes[b] = true
		}
	}
	if need.inPort && !cover.inPort {
		return false
	}
	for b := range need.bytes {
		if !cover.bytes[b] {
			return false
		}
	}
	return true
}

// annotateSharing classifies every stateful call of the path, writing
// the verdicts into the path's CallEvents (shared by the PathContract's
// Trace and by the cached raw path, so stored artifacts carry them).
// The default at every decision point is shared-rw: absence of a
// sharability model, an undescribed method, or an unanalysable key all
// cost contention, never soundness.
func (g *Generator) annotateSharing(pa *nfir.Path, models map[string]nfir.Model) {
	var hash hashFields
	haveHash := false
	for i := range pa.Events {
		ev := &pa.Events[i]
		sm, ok := models[ev.DS].(nfir.SharabilityModel)
		if !ok {
			ev.Sharing = nfir.Sharing{Class: nfir.SharingSharedRW, Reason: "no sharability model"}
			continue
		}
		sa, ok := sm.StateAccess(ev.Method)
		if !ok {
			ev.Sharing = nfir.Sharing{Class: nfir.SharingSharedRW, Reason: "method not described by sharability model"}
			continue
		}
		ev.Sharing = classify(sa, func() bool {
			if !haveHash {
				hash = g.pathHashFields(pa)
				haveHash = true
			}
			return keyPins(ev.Args, sa.KeyArgs, hash)
		})
	}
}

// classify derives the verdict from a method's StateAccess; pins is
// consulted lazily (the hash-field queries run only for keyed methods).
func classify(sa nfir.StateAccess, pins func() bool) nfir.Sharing {
	reason := func(generic string) string {
		if sa.Reason != "" {
			return sa.Reason
		}
		return generic
	}
	switch {
	case sa.Shared:
		return nfir.Sharing{Class: nfir.SharingSharedRW, Reason: reason("touches shared global state")}
	case sa.Keyed && pins():
		return nfir.Sharing{Class: nfir.SharingLocal, Reason: "key pins the flow-hash fields"}
	case sa.ReadOnly:
		return nfir.Sharing{Class: nfir.SharingSharedRO, Reason: reason("read-only state replicates per shard")}
	case sa.Keyed:
		return nfir.Sharing{Class: nfir.SharingSharedRW, Reason: reason("key does not pin the flow-hash fields")}
	default:
		return nfir.Sharing{Class: nfir.SharingSharedRW, Reason: reason("mutates cross-flow state")}
	}
}

// EffectiveSharedMA is the shared-MA polynomial shard-aware evaluation
// charges contention on: the analysed SharedMA when available, and the
// path's entire memory-access polynomial for paths decoded from
// version-1 artifacts — treating every access as potentially shared is
// the conservative reading of a contract that predates the analysis.
func (p *PathContract) EffectiveSharedMA() expr.Poly {
	if p.ShardAnalysed {
		return p.SharedMA
	}
	return p.Cost[perf.MemAccesses]
}

// ShardCost returns the path's cost polynomial with the shard dimension
// made explicit: for cycles it is
//
//	Cost[Cycles] + WorstXfer·contenders·sharedMA
//
// over the reserved expr.ShardPCV variable ("contenders" = S−1); other
// metrics are unchanged (sharding does not add instructions or
// accesses, it changes where the accesses are served from). Binding
// contenders to zero recovers Cost exactly.
func (p *PathContract) ShardCost(metric perf.Metric) expr.Poly {
	if metric != perf.Cycles {
		return p.Cost[metric]
	}
	shared := p.EffectiveSharedMA()
	if shared.IsZero() {
		return p.Cost[metric]
	}
	contention := shared.Scale(uint64(hwmodel.WorstXfer)).MulVar(expr.ShardPCV)
	return p.Cost[metric].Add(contention)
}

// ShardBoundAt evaluates the path's bound at a shard count: BoundAt's
// semantics (missing PCVs at their range maxima) with the contention
// term added for cycles at S ≥ 2.
func (p *PathContract) ShardBoundAt(metric perf.Metric, shards int, pcvs map[string]uint64) uint64 {
	if shards <= 1 || metric != perf.Cycles {
		return p.BoundAt(metric, pcvs)
	}
	poly := p.ShardCost(metric)
	binding := make(map[string]uint64)
	for _, v := range poly.Vars() {
		if v == expr.ShardPCV {
			binding[v] = uint64(shards - 1)
		} else if val, ok := pcvs[v]; ok {
			binding[v] = val
		} else if r, ok := p.PCVRanges[v]; ok {
			binding[v] = r.Hi
		} else {
			binding[v] = expr.DefaultHi
		}
	}
	return poly.Eval(binding)
}

// ShardBound is Bound at a shard count: the worst shard-aware
// prediction over all paths accepted by filter.
func (ct *Contract) ShardBound(metric perf.Metric, shards int, filter func(*PathContract) bool, pcvs map[string]uint64) (uint64, *PathContract) {
	var worst uint64
	var worstPath *PathContract
	for _, p := range ct.Paths {
		if filter != nil && !filter(p) {
			continue
		}
		v := p.ShardBoundAt(metric, shards, pcvs)
		if worstPath == nil || v > worst {
			worst, worstPath = v, p
		}
	}
	return worst, worstPath
}
