package core

import (
	"strings"
	"testing"

	"gobolt/internal/nf"
	"gobolt/internal/nfir"
	"gobolt/internal/perf"
)

func exampleContract(t *testing.T, defaultPort uint64) *Contract {
	t.Helper()
	ex := nf.NewExampleLPM(nf.ExampleLPMConfig{Ports: 4, DefaultPort: defaultPort})
	ct, err := (&Generator{}).Generate(ex.Prog, ex.Models)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestDiffIdenticalContracts(t *testing.T) {
	a := exampleContract(t, 0)
	b := exampleContract(t, 0)
	entries := Diff(a, b, perf.Instructions)
	if len(entries) != 0 {
		t.Fatalf("identical contracts diff: %+v", entries)
	}
	if got := RenderDiff(entries, perf.Instructions); !strings.Contains(got, "no contract changes") {
		t.Errorf("render = %q", got)
	}
}

// A "new version" of the example router that does extra per-packet work
// on valid packets: the diff must flag the regression on exactly that
// class.
func TestDiffDetectsRegression(t *testing.T) {
	old := exampleContract(t, 0)

	ex := nf.NewExampleLPM(nf.ExampleLPMConfig{Ports: 4})
	// Developer adds a (costly) checksum fixup to the forwarding path.
	body := ex.Prog.Body[0].(nfir.If)
	body.Then = append([]nfir.Stmt{
		nfir.Set("cs", nfir.Field(24, 2)),
		nfir.PktStore{Off: nfir.C(24), Size: 2, Val: nfir.Add(nfir.L("cs"), nfir.C(1))},
	}, body.Then...)
	ex.Prog.Body[0] = body
	newCt, err := (&Generator{}).Generate(ex.Prog, ex.Models)
	if err != nil {
		t.Fatal(err)
	}

	entries := Diff(old, newCt, perf.Instructions)
	if len(entries) != 1 {
		t.Fatalf("entries = %+v", entries)
	}
	e := entries[0]
	if e.Kind != "changed" || e.Verdict != "regression" {
		t.Fatalf("entry = %+v", e)
	}
	if !strings.Contains(e.Class, "forward") {
		t.Errorf("regression reported on %q, want the forwarding class", e.Class)
	}
	if !HasRegression(entries) {
		t.Error("HasRegression = false")
	}
	out := RenderDiff(entries, perf.Instructions)
	if !strings.Contains(out, "→") || !strings.Contains(out, "regression") {
		t.Errorf("render = %q", out)
	}

	// The reverse diff reads as an improvement.
	rev := Diff(newCt, old, perf.Instructions)
	if len(rev) != 1 || rev[0].Verdict != "improvement" {
		t.Fatalf("reverse = %+v", rev)
	}
	if HasRegression(rev) {
		t.Error("improvement flagged as regression")
	}
}

func TestDiffAddedAndRemovedClasses(t *testing.T) {
	// The bridge with and without the rehash defence differ in class
	// structure: the defended version has an extra put:rehash class.
	plain := nf.NewBridge(nf.BridgeConfig{Ports: 4, Capacity: 64, TimeoutNS: 1})
	defended := nf.NewBridge(nf.BridgeConfig{Ports: 4, Capacity: 64, TimeoutNS: 1, RehashThreshold: 4})
	g := NewGenerator()
	a, err := g.Generate(plain.Prog, plain.Models)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Generate(defended.Prog, defended.Models)
	if err != nil {
		t.Fatal(err)
	}
	entries := Diff(a, b, perf.Instructions)
	var added int
	for _, e := range entries {
		if e.Kind == "added" && strings.Contains(e.Class, "rehash") {
			added++
			if e.Verdict != "regression" {
				t.Errorf("new class verdict = %s", e.Verdict)
			}
		}
	}
	if added == 0 {
		t.Errorf("no rehash classes reported as added: %+v", entries)
	}
}
