package core

import (
	"context"
	"fmt"

	"gobolt/internal/expr"
	"gobolt/internal/nfir"
	"gobolt/internal/par"
	"gobolt/internal/perf"
	"gobolt/internal/symb"
)

// Compose builds the performance contract of the chain a→b (§3.4): every
// packet is processed by a; packets a forwards continue into b. Path
// pairs are joined by substituting a's output-packet expressions into
// b's input-packet symbols, conjoining the constraint sets, and keeping
// only pairs the solver cannot rule out. a's drop paths appear unchanged
// (the packet never reaches b). b's symbols and PCVs are namespaced with
// "b." so the two NFs' variables stay distinguishable, as in the
// composite contracts of Table 5c.
//
// The composition needs b's symbolic paths (not just its contract), so
// it takes the second NF's program and models and generates it.
func Compose(g *Generator, aCt *Contract, aPaths []*nfir.Path, bProg *nfir.Program, bModels map[string]nfir.Model) (*Contract, error) {
	ct, _, err := ComposeWithPaths(g, aCt, aPaths, bProg, bModels)
	return ct, err
}

// joinPair attempts to join a forwarding path of a with a path of b.
func joinPair(ctx context.Context, pa *PathContract, rawA *nfir.Path, pb *PathContract, rawB *nfir.Path, feas *symb.Solver) (*PathContract, bool) {
	// Build b's symbol substitution: packet fields written by a map to
	// a's output expressions; unwritten fields stay shared with a's
	// input; everything else is namespaced.
	subst := make(map[string]symb.Expr)
	rename := func(s string) string { return "b." + s }
	bSyms := make(map[string]bool)
	for _, s := range symb.Symbols(pb.Constraints...) {
		bSyms[s] = true
	}
	for s := range pb.Domains {
		bSyms[s] = true
	}
	for s := range bSyms {
		if off, size, isField := nfir.ParseFieldSym(s); isField {
			if w, written := rawA.PktWrites[off]; written {
				if w.Size == size {
					subst[s] = w.Val
				} else {
					// Overlapping mixed-size rewrite: sound fallback is
					// an unconstrained fresh symbol.
					subst[s] = symb.S(rename(s))
				}
			}
			// Unwritten field: shared input symbol, no substitution.
			continue
		}
		if s == nfir.SymNow || s == nfir.SymPktLen {
			continue // same packet, same instant: shared
		}
		subst[s] = symb.S(rename(s))
	}

	constraints := append([]symb.Expr(nil), pa.Constraints...)
	for _, c := range pb.Constraints {
		constraints = append(constraints, symb.Substitute(c, subst))
	}
	domains := make(map[string]symb.Domain, len(pa.Domains)+len(pb.Domains))
	for s, d := range pa.Domains {
		domains[s] = d
	}
	for s, d := range pb.Domains {
		if r, ok := subst[s]; ok {
			if sym, isSym := r.(symb.Sym); isSym {
				domains[sym.Name] = d
			}
			// Substituted to a non-symbol expression: the domain is
			// implied by a's constraints.
			continue
		}
		if old, ok := domains[s]; ok {
			// Shared symbol: intersect conservatively.
			if d.Lo > old.Lo {
				old.Lo = d.Lo
			}
			if d.Hi < old.Hi {
				old.Hi = d.Hi
			}
			domains[s] = old
		} else {
			domains[s] = d
		}
	}

	if !feas.FeasibleContext(ctx, constraints, domains) {
		return nil, false
	}

	cost := make(map[perf.Metric]expr.Poly, perf.NumMetrics)
	ranges := make(map[string]expr.Range, len(pa.PCVRanges)+len(pb.PCVRanges))
	for v, r := range pa.PCVRanges {
		ranges[v] = r
	}
	for v, r := range pb.PCVRanges {
		ranges["b."+v] = r
	}
	for _, m := range perf.Metrics {
		cost[m] = pa.Cost[m].Add(pb.Cost[m].RenameVars(func(v string) string { return "b." + v }))
	}

	return &PathContract{
		Action:      pb.Action,
		Constraints: constraints,
		Domains:     domains,
		Events:      joinEvents(pa.Events, pb.Events),
		Cost:        cost,
		PCVRanges:   ranges,
	}, true
}

func prefixEvents(prefix, events string) string {
	if events == "" {
		return ""
	}
	return prefix + events
}

// joinEvents always carries the " | " stage separator so joined pairs
// are distinguishable from a-only paths even when a stage made no
// stateful calls.
func joinEvents(a, b string) string {
	return "a." + a + " | b." + b
}

// ComposeWithPaths is Compose plus synthetic composite paths aligned
// with the returned contract, so the result can itself be composed with
// a further NF — the §3.4 extension to longer chains, which "pieces
// together compatible paths one at a time in sequence".
func ComposeWithPaths(g *Generator, aCt *Contract, aPaths []*nfir.Path, bProg *nfir.Program, bModels map[string]nfir.Model) (*Contract, []*nfir.Path, error) {
	return ComposeWithPathsContext(context.Background(), g, aCt, aPaths, bProg, bModels)
}

// ComposeWithPathsContext is ComposeWithPaths with cancellation. The
// second NF is generated through the pipeline once (contract and paths
// come from the same exploration, so they align by construction — and
// the generation hits the contract cache when one is attached).
func ComposeWithPathsContext(ctx context.Context, g *Generator, aCt *Contract, aPaths []*nfir.Path, bProg *nfir.Program, bModels map[string]nfir.Model) (*Contract, []*nfir.Path, error) {
	bCt, bPaths, err := g.GenerateWithPathsContext(ctx, bProg, bModels)
	if err != nil {
		return nil, nil, err
	}
	return composePrepared(ctx, g, aCt, aPaths, bProg.Name, bCt, bPaths)
}

// composePrepared joins an already-generated pair of stages. Splitting
// this from the generation lets ComposeMany generate every stage
// concurrently up front and then run the (cheap, order-dependent) joins
// serially.
func composePrepared(ctx context.Context, g *Generator, aCt *Contract, aPaths []*nfir.Path, bName string, bCt *Contract, bPaths []*nfir.Path) (*Contract, []*nfir.Path, error) {
	if len(aCt.Paths) != len(aPaths) {
		return nil, nil, fmt.Errorf("core: contract/path mismatch for %s", aCt.NF)
	}
	if len(bCt.Paths) != len(bPaths) {
		return nil, nil, fmt.Errorf("core: contract/path mismatch for %s", bCt.NF)
	}

	out := &Contract{NF: aCt.NF + "+" + bName, Level: aCt.Level}
	var outPaths []*nfir.Path
	feas := &symb.Solver{MaxNodes: 20000, Samples: 24}

	for i, pa := range aCt.Paths {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("core: composing %s after %d/%d paths: %w", out.NF, i, len(aCt.Paths), err)
		}
		rawA := aPaths[i]
		if pa.Action != nfir.ActionForward {
			cp := *pa
			cp.ID = len(out.Paths)
			cp.Events = prefixEvents("a.", pa.Events)
			out.Paths = append(out.Paths, &cp)
			outPaths = append(outPaths, rawA)
			continue
		}
		for j, pb := range bCt.Paths {
			joined, ok := joinPair(ctx, pa, rawA, pb, bPaths[j], feas)
			if !ok {
				continue
			}
			joined.ID = len(out.Paths)
			out.Paths = append(out.Paths, joined)
			outPaths = append(outPaths, joinRawPaths(rawA, bPaths[j], joined))
		}
	}
	return out, outPaths, nil
}

// joinRawPaths synthesises the composite symbolic path: the chain's
// output packet is b's writes (already in a-namespace terms after
// substitution) over a's writes over the original input.
func joinRawPaths(rawA, rawB *nfir.Path, joined *PathContract) *nfir.Path {
	writes := make(map[uint64]nfir.PktWrite, len(rawA.PktWrites)+len(rawB.PktWrites))
	for off, w := range rawA.PktWrites {
		writes[off] = w
	}
	// b's write values may reference b's namespaced symbols; renaming
	// was applied to constraints during joinPair. For the write
	// expressions we conservatively rename b-local symbols the same way.
	for off, w := range rawB.PktWrites {
		writes[off] = nfir.PktWrite{
			Size: w.Size,
			Val:  symb.RenameSymbols(w.Val, func(s string) string { return renameChained(s) }),
		}
	}
	return &nfir.Path{
		ID:          joined.ID,
		Constraints: joined.Constraints,
		Domains:     joined.Domains,
		Action:      joined.Action,
		PktWrites:   writes,
	}
}

// renameChained namespaces b-local symbols while leaving shared input
// symbols (packet fields, now, pkt_len, in_port is b-local) untouched.
func renameChained(s string) string {
	if _, _, ok := nfir.ParseFieldSym(s); ok {
		return s
	}
	if s == nfir.SymNow || s == nfir.SymPktLen {
		return s
	}
	return "b." + s
}

// ComposeMany folds a chain of NFs left to right: nfs[0] → nfs[1] → …
// Every stage's drop paths terminate the chain there; forwarded packets
// continue. The PCVs and model symbols of stage k are namespaced by the
// fold ("b." per level, so stage 2's PCVs appear as "b.b.x" — legible
// enough for the short chains DAG topologies use in practice).
type ChainStage struct {
	Prog   *nfir.Program
	Models map[string]nfir.Model
}

// ComposeMany composes two or more stages into one contract.
func ComposeMany(g *Generator, stages []ChainStage) (*Contract, error) {
	return ComposeManyContext(context.Background(), g, stages)
}

// ComposeManyContext generates every stage's contract concurrently on
// the generator's worker pool (the stages are independent NFs), then
// folds the joins left to right serially — the fold order is what keeps
// the composite deterministic.
func ComposeManyContext(ctx context.Context, g *Generator, stages []ChainStage) (*Contract, error) {
	if len(stages) < 2 {
		return nil, fmt.Errorf("core: a chain needs at least two stages")
	}
	type stageGen struct {
		ct    *Contract
		paths []*nfir.Path
	}
	gens := make([]stageGen, len(stages))
	err := par.ForEach(ctx, g.workers(), len(stages), func(i int) error {
		ct, paths, err := g.GenerateWithPathsContext(ctx, stages[i].Prog, stages[i].Models)
		if err != nil {
			return err
		}
		gens[i] = stageGen{ct: ct, paths: paths}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: generating chain stages: %w", err)
	}
	ct, paths := gens[0].ct, gens[0].paths
	for i, st := range stages[1:] {
		ct, paths, err = composePrepared(ctx, g, ct, paths, st.Prog.Name, gens[i+1].ct, gens[i+1].paths)
		if err != nil {
			return nil, err
		}
	}
	return ct, nil
}

// NaiveAdd is the baseline composition Figure 3 compares against:
// simply adding the two NFs' independent worst-case bounds, ignoring
// inter-NF dependencies.
func NaiveAdd(a, b *Contract, metric perf.Metric, pcvs map[string]uint64) uint64 {
	av, _ := a.Bound(metric, nil, pcvs)
	bv, _ := b.Bound(metric, nil, pcvs)
	return av + bv
}
